package pmsb_test

import (
	"testing"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// TestPoolDebugEndToEnd runs a complete DCTCP transfer (transport,
// scheduler, marking, pooled packets end to end) with the packet pool's
// poison mode on. Any ownership violation — a component using a packet
// after its terminal consumer released it, or releasing twice — either
// panics immediately or corrupts the transfer so the flow cannot
// complete with the expected byte count.
func TestPoolDebugEndToEnd(t *testing.T) {
	pkt.SetPoolDebug(true)
	defer pkt.SetPoolDebug(false)

	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{
		Senders: 2,
		Bottleneck: topo.PortProfile{
			Weights:   topo.EqualWeights(1),
			NewSched:  topo.FIFOFactory(),
			NewMarker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
		},
	})
	const size = 300_000
	completed := 0
	var flows []*transport.Flow
	for i := 0; i < 2; i++ {
		f := transport.NewFlow(eng, d.Senders[i], d.Recv, pkt.FlowID(i+1), 0, size,
			transport.Config{}, func(*transport.Sender) { completed++ })
		flows = append(flows, f)
		f.Sender.Start()
	}
	eng.RunUntil(2 * time.Second)

	if completed != 2 {
		t.Fatalf("completed %d/2 flows under pool debug mode", completed)
	}
	for i, f := range flows {
		if got := f.Receiver.Goodput(); got != size {
			t.Fatalf("flow %d goodput = %d, want %d (poisoned packet leaked into delivery?)", i, got, size)
		}
	}
}
