package obs

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/stats"
)

func newTestBufReader(raw []byte) *bufio.Reader {
	return bufio.NewReader(bytes.NewReader(raw))
}

// streamFixture synthesizes a deterministic pseudo-random trace wide
// enough to exercise every column (all kinds, all optional fields,
// zero-valued fields with clear bits) across several chunk boundaries,
// and returns both its binary encoding and the events themselves.
func streamFixture(t *testing.T, n int) ([]byte, []Event) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	events := make([]Event, n)
	tm := time.Duration(0)
	for i := range events {
		tm += time.Duration(r.Intn(2000)) * time.Nanosecond
		ev := Event{
			Seq:  uint64(i),
			T:    tm,
			Kind: Kind(1 + r.Intn(int(numKinds)-1)),
		}
		switch r.Intn(4) {
		case 0: // fully-populated port event shape
			ev.Node = pkt.NodeID(1000 + r.Intn(4))
			ev.Port = int32(r.Intn(3))
			ev.Queue = int32(r.Intn(8))
			ev.Flow = pkt.FlowID(1 + r.Intn(16))
			ev.Pkt = uint64(r.Intn(1 << 20))
			ev.Size = 1500
			ev.PortBytes = int64(1500 * r.Intn(64))
			ev.QueueBytes = int64(1500 * r.Intn(16))
			ev.V = r.Float64()
		case 1: // depth sample with zero occupancy (clear qb bit)
			ev.Kind = KindDequeue
			ev.Node = pkt.NodeID(1000 + r.Intn(4))
			ev.Queue = int32(r.Intn(8))
		case 2: // flow event shape
			ev.Flow = pkt.FlowID(1 + r.Intn(16))
			ev.Size = int64(r.Intn(1 << 24))
			ev.V = float64(r.Intn(1000)) / 16
		case 3: // drop shape
			ev.Reason = DropReason(1 + r.Intn(2))
			ev.Size = 1500
		}
		events[i] = ev
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, events); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes(), events
}

// assertStreamMatches checks a StreamStats against the materializing
// reductions over the same (already range-filtered) events.
func assertStreamMatches(t *testing.T, st *StreamStats, events []Event) {
	t.Helper()
	if st.Events != len(events) {
		t.Fatalf("streamed %d events, materialized %d", st.Events, len(events))
	}
	if want := CountKinds(events); !reflect.DeepEqual(st.Kinds, want) {
		t.Errorf("kind counts differ:\n streamed %v\n want     %v", st.Kinds, want)
	}
	sums, keys := DepthSummaries(events)
	gotKeys := st.DepthKeys()
	if !reflect.DeepEqual(gotKeys, keys) {
		t.Fatalf("depth key sets differ:\n streamed %v\n want     %v", gotKeys, keys)
	}
	for _, k := range keys {
		got, want := st.Depths[k].Samples(), sums[k].Samples()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("queue %v depth samples differ:\n streamed %v\n want     %v", k, got, want)
		}
	}
	if st.Marks != nil {
		ms, dq := MarkSeries(events, st.Marks.BinWidth())
		assertSeriesEqual(t, "marks", st.Marks, ms)
		assertSeriesEqual(t, "dequeues", st.Dequeues, dq)
	}
	if len(events) > 0 {
		minT, maxT := events[0].T, events[0].T
		for _, ev := range events {
			if ev.T < minT {
				minT = ev.T
			}
			if ev.T > maxT {
				maxT = ev.T
			}
		}
		if st.MinT != minT || st.MaxT != maxT {
			t.Errorf("time bounds [%v, %v], want [%v, %v]", st.MinT, st.MaxT, minT, maxT)
		}
	}
	if want := Segments(events); st.Segments != want {
		t.Errorf("segments = %d, want %d", st.Segments, want)
	}
}

// assertSeriesEqual compares two binned time series value by value.
func assertSeriesEqual(t *testing.T, name string, got, want *stats.TimeSeries) {
	t.Helper()
	if got.Bins() != want.Bins() {
		t.Errorf("%s series has %d bins, want %d", name, got.Bins(), want.Bins())
		return
	}
	for i := 0; i < want.Bins(); i++ {
		if got.Value(i) != want.Value(i) {
			t.Errorf("%s bin %d = %v, want %v", name, i, got.Value(i), want.Value(i))
		}
	}
}

// The streaming reduction must reproduce CountKinds, DepthSummaries and
// MarkSeries sample for sample on a multi-chunk trace covering every
// column.
func TestStreamReduceDifferential(t *testing.T) {
	raw, events := streamFixture(t, 3*writerChunkEvents/2)
	st := NewStreamStats(StreamOptions{Counts: true, Depths: true, MarkBin: 100 * time.Microsecond})
	if err := st.Reduce(bytes.NewReader(raw)); err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	assertStreamMatches(t, st, events)
}

// Range cuts must match read-then-filter, including cuts landing
// mid-chunk and cuts selecting nothing.
func TestStreamReduceRange(t *testing.T) {
	raw, events := streamFixture(t, 2000)
	last := events[len(events)-1].T
	cuts := []struct {
		name         string
		since, until time.Duration
	}{
		{"all", 0, last},
		{"prefix", 0, last / 3},
		{"suffix", last / 2, last},
		{"interior", last / 4, last / 2},
		{"empty", last + time.Second, last + 2*time.Second},
	}
	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			st := NewStreamStats(StreamOptions{
				Counts: true, Depths: true, MarkBin: 50 * time.Microsecond,
				Since: cut.since, Until: cut.until,
			})
			if err := st.Reduce(bytes.NewReader(raw)); err != nil {
				t.Fatalf("Reduce: %v", err)
			}
			assertStreamMatches(t, st, filterEvents(events, cut.since, cut.until))
		})
	}
}

// Several Reduce calls accumulate like analyzing the concatenated
// streams; the order-insensitive reductions also equal the merged
// timeline's.
func TestStreamReduceMultiFile(t *testing.T) {
	raw1, ev1 := streamFixture(t, 700)
	raw2, ev2 := streamFixture(t, 300)
	st := NewStreamStats(StreamOptions{Counts: true, Depths: true})
	for _, raw := range [][]byte{raw1, raw2} {
		if err := st.Reduce(bytes.NewReader(raw)); err != nil {
			t.Fatalf("Reduce: %v", err)
		}
	}
	all := append(append([]Event(nil), ev1...), ev2...)
	if st.Events != len(all) {
		t.Fatalf("streamed %d events, want %d", st.Events, len(all))
	}
	if want := CountKinds(all); !reflect.DeepEqual(st.Kinds, want) {
		t.Errorf("kind counts differ: %v want %v", st.Kinds, want)
	}
	// The second stream restarts virtual time, so concatenation
	// semantics see one extra segment.
	if want := Segments(all); st.Segments != want {
		t.Errorf("segments = %d, want %d", st.Segments, want)
	}
	// Depth summaries are order-insensitive: per-queue sample multisets
	// match the merged timeline's even though the fold order differs.
	sums, keys := DepthSummaries(MergeEvents(ev1, ev2))
	if got := st.DepthKeys(); !reflect.DeepEqual(got, keys) {
		t.Fatalf("depth key sets differ: %v want %v", got, keys)
	}
	for _, k := range keys {
		if st.Depths[k].Count() != sums[k].Count() ||
			st.Depths[k].Mean() != sums[k].Mean() ||
			st.Depths[k].Percentile(99) != sums[k].Percentile(99) {
			t.Errorf("queue %v summary differs from merged-timeline reduction", k)
		}
	}
}

// Disabled reductions leave their maps nil and skip their columns; the
// enabled one is unaffected.
func TestStreamReduceCountsOnly(t *testing.T) {
	raw, events := streamFixture(t, 500)
	st := NewStreamStats(StreamOptions{Counts: true})
	if err := st.Reduce(bytes.NewReader(raw)); err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if st.Depths != nil {
		t.Error("Depths map allocated without the reduction enabled")
	}
	if st.Marks != nil || st.Dequeues != nil {
		t.Error("mark series allocated without MarkBin set")
	}
	if want := CountKinds(events); !reflect.DeepEqual(st.Kinds, want) {
		t.Errorf("kind counts differ: %v want %v", st.Kinds, want)
	}
	if st.Events != len(events) {
		t.Errorf("streamed %d events, want %d", st.Events, len(events))
	}
}

// A truncated chunk must error, not silently under-count.
func TestStreamReduceTruncated(t *testing.T) {
	raw, _ := streamFixture(t, 200)
	st := NewStreamStats(StreamOptions{Counts: true, Depths: true})
	if err := st.Reduce(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated stream did not error")
	}
	if err := st.Reduce(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage stream did not error")
	}
}

// LooksBinary recognizes the magic without consuming it.
func TestLooksBinary(t *testing.T) {
	raw, _ := streamFixture(t, 10)
	br := newTestBufReader(raw)
	if !LooksBinary(br) {
		t.Error("binary trace not recognized")
	}
	if _, err := ReadBinary(br); err != nil {
		t.Errorf("peek consumed bytes: %v", err)
	}
	if LooksBinary(newTestBufReader([]byte(`{"t":1}`))) {
		t.Error("JSONL mistaken for binary")
	}
}
