package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pmsb/internal/stats"
)

// Counter is a monotonically increasing metric. Increments are direct
// int64 adds — no interface dispatch, no boxing — so they are safe on
// the packet hot path.
type Counter struct{ v int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a metric that can move in both directions (queue depth,
// current rate).
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram accumulates a sample distribution (FCTs, RTTs). It wraps
// stats.Summary, so its percentiles follow the documented interpolation
// rule. Observing a sample appends to a slice — amortized allocation —
// so histograms belong on per-flow or per-interval paths, not per
// packet.
type Histogram struct{ s stats.Summary }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.s.Add(v) }

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.s.AddDuration(d) }

// Summary exposes the underlying distribution.
func (h *Histogram) Summary() *stats.Summary { return &h.s }

// Registry is a flat namespace of named metrics. Names are dotted
// paths; per-port metrics follow "port.<node>.<index>.<metric>" and
// per-queue metrics "port.<node>.<index>.q<queue>.<metric>", so readers
// can recover the topology from the names alone. Lookup is
// get-or-create; re-registering a name with a different metric type
// panics (it is always a programming error).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Well-known simulator-wide metrics, pre-registered so bus emit
	// paths hold direct pointers.
	pfcPauses     *Counter
	blinds        *Counter
	flowsStarted  *Counter
	flowsFinished *Counter
	fct           *Histogram
}

// NewRegistry returns an empty registry with the simulator-wide metrics
// pre-registered.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.pfcPauses = r.Counter("pfc.pauses")
	r.blinds = r.Counter("pmsb.blind_suppressions")
	r.flowsStarted = r.Counter("flows.started")
	r.flowsFinished = r.Counter("flows.finished")
	r.fct = r.Histogram("flows.fct_seconds")
	return r
}

// checkFresh panics when name already exists under a different type.
func (r *Registry) checkFresh(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("obs: metric %q already registered as counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("obs: metric %q already registered as gauge", name))
	}
	if _, ok := r.hists[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("obs: metric %q already registered as histogram", name))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFresh(name, "histogram")
	h := &Histogram{}
	r.hists[name] = h
	return h
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteTo dumps every metric as "name<TAB>value" lines in sorted name
// order, so dumps are deterministic and diffable. Histograms render as
// a single line of count/mean/percentiles. It implements
// io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, name := range r.Names() {
		switch {
		case r.counters[name] != nil:
			fmt.Fprintf(&b, "%s\t%d\n", name, r.counters[name].Value())
		case r.gauges[name] != nil:
			fmt.Fprintf(&b, "%s\t%g\n", name, r.gauges[name].Value())
		default:
			s := r.hists[name].Summary()
			fmt.Fprintf(&b, "%s\tcount=%d mean=%g p50=%g p99=%g max=%g\n",
				name, s.Count(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// PortMetrics is the per-port counter block a PortProbe updates. The
// counters are also reachable by name through the registry; the struct
// exists so the per-packet path is pointer increments, not map lookups.
type PortMetrics struct {
	TxPackets, TxBytes     *Counter
	DropPackets, DropBytes *Counter
	Marks                  *Counter
	// Per-queue dequeued bytes and marks, indexed by queue.
	QueueTxBytes []*Counter
	QueueMarks   []*Counter
}

// portMetrics builds (or re-reads) the counter block for a port.
func (r *Registry) portMetrics(id PortID, numQueues int) *PortMetrics {
	prefix := fmt.Sprintf("port.%d.%d.", id.Node, id.Port)
	pm := &PortMetrics{
		TxPackets:   r.Counter(prefix + "tx_pkts"),
		TxBytes:     r.Counter(prefix + "tx_bytes"),
		DropPackets: r.Counter(prefix + "drop_pkts"),
		DropBytes:   r.Counter(prefix + "drop_bytes"),
		Marks:       r.Counter(prefix + "marks"),
	}
	for q := 0; q < numQueues; q++ {
		qp := fmt.Sprintf("%sq%d.", prefix, q)
		pm.QueueTxBytes = append(pm.QueueTxBytes, r.Counter(qp+"tx_bytes"))
		pm.QueueMarks = append(pm.QueueMarks, r.Counter(qp+"marks"))
	}
	return pm
}
