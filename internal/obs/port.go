package obs

import (
	"time"

	"pmsb/internal/pkt"
)

// PortProbe binds a switch (or NIC) output port to the bus: its
// topology identity and its pre-registered counter block. The port
// holds one pointer; a nil probe is the disabled layer and every method
// returns after a nil check, so un-observed ports pay nothing.
//
// Packet-event methods take the occupancy the port already has at hand
// (scheduler byte counts) so the probe never calls back into the port.
type PortProbe struct {
	bus *Bus
	id  PortID
	m   *PortMetrics
}

// ObservePort registers a port with the bus and returns its probe.
// numQueues sizes the per-queue counter blocks. Returns nil on a nil
// bus so callers can assign unconditionally. On a trace-only bus
// (NewTraceBus) the probe carries no counter block and packet events
// skip the metrics updates entirely.
func (b *Bus) ObservePort(id PortID, numQueues int) *PortProbe {
	if b == nil {
		return nil
	}
	p := &PortProbe{bus: b, id: id}
	if !b.lean {
		p.m = b.reg.portMetrics(id, numQueues)
	}
	return p
}

// ID returns the probe's port identity.
func (p *PortProbe) ID() PortID { return p.id }

// Enqueue records a packet admitted to queue q; portBytes/queueBytes
// are the occupancy after the enqueue.
func (p *PortProbe) Enqueue(t time.Duration, q int, packet *pkt.Packet, portBytes, queueBytes int) {
	if p == nil {
		return
	}
	if ev := p.bus.slot(t, KindEnqueue); ev != nil {
		ev.Node, ev.Port, ev.Queue = p.id.Node, p.id.Port, int32(q)
		ev.Flow, ev.Pkt, ev.Size = packet.Flow, packet.ID, int64(packet.Size)
		ev.PortBytes, ev.QueueBytes = int64(portBytes), int64(queueBytes)
	}
}

// Dequeue records a packet beginning transmission from queue q;
// portBytes/queueBytes are the occupancy after it left the queue.
func (p *PortProbe) Dequeue(t time.Duration, q int, packet *pkt.Packet, portBytes, queueBytes int) {
	if p == nil {
		return
	}
	if m := p.m; m != nil {
		m.TxPackets.Inc()
		m.TxBytes.Add(int64(packet.Size))
		if q >= 0 && q < len(m.QueueTxBytes) {
			m.QueueTxBytes[q].Add(int64(packet.Size))
		}
	}
	if ev := p.bus.slot(t, KindDequeue); ev != nil {
		ev.Node, ev.Port, ev.Queue = p.id.Node, p.id.Port, int32(q)
		ev.Flow, ev.Pkt, ev.Size = packet.Flow, packet.ID, int64(packet.Size)
		ev.PortBytes, ev.QueueBytes = int64(portBytes), int64(queueBytes)
	}
}

// Drop records a packet refused at admission by the given gate.
func (p *PortProbe) Drop(t time.Duration, q int, packet *pkt.Packet, reason DropReason) {
	if p == nil {
		return
	}
	if m := p.m; m != nil {
		m.DropPackets.Inc()
		m.DropBytes.Add(int64(packet.Size))
	}
	if ev := p.bus.slot(t, KindDrop); ev != nil {
		ev.Node, ev.Port, ev.Queue = p.id.Node, p.id.Port, int32(q)
		ev.Flow, ev.Pkt, ev.Size = packet.Flow, packet.ID, int64(packet.Size)
		ev.Reason = reason
	}
}

// Mark records the port's marker CE-marking a packet bound for (or
// leaving) queue q; portBytes/queueBytes are the occupancy the marking
// decision observed.
func (p *PortProbe) Mark(t time.Duration, q int, packet *pkt.Packet, portBytes, queueBytes int) {
	if p == nil {
		return
	}
	if m := p.m; m != nil {
		m.Marks.Inc()
		if q >= 0 && q < len(m.QueueMarks) {
			m.QueueMarks[q].Inc()
		}
	}
	if ev := p.bus.slot(t, KindMark); ev != nil {
		ev.Node, ev.Port, ev.Queue = p.id.Node, p.id.Port, int32(q)
		ev.Flow, ev.Pkt, ev.Size = packet.Flow, packet.ID, int64(packet.Size)
		ev.PortBytes, ev.QueueBytes = int64(portBytes), int64(queueBytes)
	}
}
