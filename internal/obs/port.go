package obs

import (
	"time"

	"pmsb/internal/pkt"
)

// PortProbe binds a switch (or NIC) output port to the bus: its
// topology identity and its pre-registered counter block. The port
// holds one pointer; a nil probe is the disabled layer and every method
// returns after a nil check, so un-observed ports pay nothing.
//
// Packet-event methods take the occupancy the port already has at hand
// (scheduler byte counts) so the probe never calls back into the port.
type PortProbe struct {
	bus *Bus
	id  PortID
	m   *PortMetrics
}

// ObservePort registers a port with the bus and returns its probe.
// numQueues sizes the per-queue counter blocks. Returns nil on a nil
// bus so callers can assign unconditionally.
func (b *Bus) ObservePort(id PortID, numQueues int) *PortProbe {
	if b == nil {
		return nil
	}
	return &PortProbe{bus: b, id: id, m: b.reg.portMetrics(id, numQueues)}
}

// ID returns the probe's port identity.
func (p *PortProbe) ID() PortID { return p.id }

// Enqueue records a packet admitted to queue q; portBytes/queueBytes
// are the occupancy after the enqueue.
func (p *PortProbe) Enqueue(t time.Duration, q int, packet *pkt.Packet, portBytes, queueBytes int) {
	if p == nil {
		return
	}
	p.bus.record(Event{T: t, Kind: KindEnqueue, Node: p.id.Node, Port: p.id.Port,
		Queue: int32(q), Flow: packet.Flow, Pkt: packet.ID, Size: int64(packet.Size),
		PortBytes: int64(portBytes), QueueBytes: int64(queueBytes)})
}

// Dequeue records a packet beginning transmission from queue q;
// portBytes/queueBytes are the occupancy after it left the queue.
func (p *PortProbe) Dequeue(t time.Duration, q int, packet *pkt.Packet, portBytes, queueBytes int) {
	if p == nil {
		return
	}
	p.m.TxPackets.Inc()
	p.m.TxBytes.Add(int64(packet.Size))
	if q >= 0 && q < len(p.m.QueueTxBytes) {
		p.m.QueueTxBytes[q].Add(int64(packet.Size))
	}
	p.bus.record(Event{T: t, Kind: KindDequeue, Node: p.id.Node, Port: p.id.Port,
		Queue: int32(q), Flow: packet.Flow, Pkt: packet.ID, Size: int64(packet.Size),
		PortBytes: int64(portBytes), QueueBytes: int64(queueBytes)})
}

// Drop records a packet refused at admission by the given gate.
func (p *PortProbe) Drop(t time.Duration, q int, packet *pkt.Packet, reason DropReason) {
	if p == nil {
		return
	}
	p.m.DropPackets.Inc()
	p.m.DropBytes.Add(int64(packet.Size))
	p.bus.record(Event{T: t, Kind: KindDrop, Node: p.id.Node, Port: p.id.Port,
		Queue: int32(q), Flow: packet.Flow, Pkt: packet.ID, Size: int64(packet.Size),
		Reason: reason})
}

// Mark records the port's marker CE-marking a packet bound for (or
// leaving) queue q; portBytes/queueBytes are the occupancy the marking
// decision observed.
func (p *PortProbe) Mark(t time.Duration, q int, packet *pkt.Packet, portBytes, queueBytes int) {
	if p == nil {
		return
	}
	p.m.Marks.Inc()
	if q >= 0 && q < len(p.m.QueueMarks) {
		p.m.QueueMarks[q].Inc()
	}
	p.bus.record(Event{T: t, Kind: KindMark, Node: p.id.Node, Port: p.id.Port,
		Queue: int32(q), Flow: packet.Flow, Pkt: packet.ID, Size: int64(packet.Size),
		PortBytes: int64(portBytes), QueueBytes: int64(queueBytes)})
}
