// Package runtime surfaces the simulator's self-observation: the
// coordinator/engine/pool counters collected by internal/sim and
// internal/pkt, assembled into a dump in the obs.Registry text format
// ("name\tvalue", sorted) and into a human report explaining a run —
// shard imbalance, steal efficacy, null-advance overhead, queue churn.
//
// It is deliberately separate from the packet-level trace bus
// (internal/obs): the bus records what the *simulated network* did,
// this package records what the *simulator* did. The two meet only in
// the dump format, so the same tooling can parse both.
package runtime

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/sim"
)

// Collector accumulates runtime observations across runs. The
// experiment layer calls ObserveCoordinator / ObserveEngine at the end
// of each run it executes; observations of the same shape merge
// (counters sum, high-water marks max), so a sweep of many runs keeps
// the collector bounded. Collectors are goroutine-safe: parallel
// experiment runners share one.
type Collector struct {
	mu       sync.Mutex
	runs     int
	coord    sim.CoordinatorStats
	hasCoord bool
	engines  map[int]sim.EngineStats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{engines: make(map[int]sim.EngineStats)}
}

// ObserveEngine folds one engine's self-profile into the collector
// under the given shard index.
func (c *Collector) ObserveEngine(shard int, eng *sim.Engine) {
	st := eng.Stats()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mergeEngine(shard, st)
}

func (c *Collector) mergeEngine(shard int, st sim.EngineStats) {
	prev, ok := c.engines[shard]
	if !ok {
		c.engines[shard] = st
		return
	}
	prev.Processed += st.Processed
	if st.Now > prev.Now {
		prev.Now = st.Now
	}
	if st.Pending > prev.Pending {
		prev.Pending = st.Pending
	}
	if st.HiWater > prev.HiWater {
		prev.HiWater = st.HiWater
	}
	if st.FreeList > prev.FreeList {
		prev.FreeList = st.FreeList
	}
	prev.Queue.Kind = st.Queue.Kind
	if st.Queue.Buckets > prev.Queue.Buckets {
		prev.Queue.Buckets = st.Queue.Buckets
	}
	prev.Queue.Width = st.Queue.Width
	prev.Queue.Grows += st.Queue.Grows
	prev.Queue.Shrinks += st.Queue.Shrinks
	prev.Queue.Migrations += st.Queue.Migrations
	c.engines[shard] = prev
}

// ObserveCoordinator folds a sharded run into the collector: the
// coordinator's runtime stats (when EnableRuntimeStats was on) plus
// every shard engine's self-profile. Counts as one run.
func (c *Collector) ObserveCoordinator(coord *sim.Coordinator) {
	st, ok := coord.RuntimeStats()
	shards := coord.Shards()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs++
	for _, s := range shards {
		c.mergeEngine(s.ID(), s.Engine().Stats())
	}
	if !ok {
		return
	}
	if !c.hasCoord || len(c.coord.PerShard) != len(st.PerShard) {
		c.coord, c.hasCoord = st, true
		return
	}
	// Same shape: counters and durations sum (RuntimeStats itself
	// accumulates across RunUntil calls on one coordinator, so summing
	// across *distinct* coordinators extends the same semantics).
	c.coord.Mode, c.coord.Stealing = st.Mode, st.Stealing
	c.coord.RelaxRounds += st.RelaxRounds
	c.coord.GrantCalls += st.GrantCalls
	c.coord.Wall += st.Wall
	c.coord.CoordBlocked += st.CoordBlocked
	for i := range st.PerShard {
		a, b := &c.coord.PerShard[i], st.PerShard[i]
		a.Grants += b.Grants
		a.GrantWidth += b.GrantWidth
		a.NullAdvances += b.NullAdvances
		a.Steals += b.Steals
		a.OutboxSent += b.OutboxSent
		a.Parked += b.Parked
		a.Events += b.Events
		a.Busy += b.Busy
	}
	for i := range st.PerWorker {
		a, b := &c.coord.PerWorker[i], st.PerWorker[i]
		a.Windows += b.Windows
		a.Busy += b.Busy
		a.Blocked += b.Blocked
		a.Idle += b.Idle
	}
}

// ObserveSerial folds a serial (unsharded) run into the collector:
// the engine's self-profile under shard 0, counted as one run.
func (c *Collector) ObserveSerial(eng *sim.Engine) {
	st := eng.Stats()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs++
	c.mergeEngine(0, st)
}

// Snapshot is a point-in-time copy of everything the collector has
// accumulated, plus the packet pool's profile read at snapshot time.
type Snapshot struct {
	Runs    int                     `json:"runs"`
	Coord   *sim.CoordinatorStats   `json:"coord,omitempty"`
	Engines map[int]sim.EngineStats `json:"engines"`
	Pool    pkt.PoolStats           `json:"pool"`
}

// Snapshot copies the collector's state.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{Runs: c.runs, Engines: make(map[int]sim.EngineStats, len(c.engines))}
	for k, v := range c.engines {
		s.Engines[k] = v
	}
	if c.hasCoord {
		cc := c.coord
		cc.PerShard = append([]sim.ShardStats(nil), c.coord.PerShard...)
		cc.PerWorker = append([]sim.WorkerStats(nil), c.coord.PerWorker...)
		s.Coord = &cc
	}
	s.Pool = pkt.ReadPoolStats()
	return s
}

// Values flattens the snapshot into named integer metrics, the unit the
// dump and the report both consume. Durations are nanoseconds under
// "_ns" names; enum-like values (mode, queue kind) become
// "<name>.<value>\t1" indicator rows, keeping every value numeric.
func (s Snapshot) Values() map[string]int64 {
	v := map[string]int64{
		"runtime.runs": int64(s.Runs),
	}
	if c := s.Coord; c != nil {
		v["runtime.coord.mode."+c.Mode] = 1
		v["runtime.coord.stealing"] = b2i(c.Stealing)
		v["runtime.coord.shards"] = int64(len(c.PerShard))
		v["runtime.coord.relax_rounds"] = int64(c.RelaxRounds)
		v["runtime.coord.grant_calls"] = int64(c.GrantCalls)
		v["runtime.coord.wall_ns"] = int64(c.Wall)
		v["runtime.coord.blocked_ns"] = int64(c.CoordBlocked)
		for i, sh := range c.PerShard {
			p := fmt.Sprintf("runtime.shard.%d.", i)
			v[p+"grants"] = int64(sh.Grants)
			v[p+"grant_width_ns"] = int64(sh.GrantWidth)
			v[p+"null_advances"] = int64(sh.NullAdvances)
			v[p+"steals"] = int64(sh.Steals)
			v[p+"outbox_sent"] = int64(sh.OutboxSent)
			v[p+"parked"] = int64(sh.Parked)
			v[p+"events"] = int64(sh.Events)
			v[p+"busy_ns"] = int64(sh.Busy)
		}
		for i, w := range c.PerWorker {
			p := fmt.Sprintf("runtime.worker.%d.", i)
			v[p+"windows"] = int64(w.Windows)
			v[p+"busy_ns"] = int64(w.Busy)
			v[p+"blocked_ns"] = int64(w.Blocked)
			v[p+"idle_ns"] = int64(w.Idle)
		}
	}
	for i, e := range s.Engines {
		p := fmt.Sprintf("runtime.engine.%d.", i)
		v[p+"processed"] = int64(e.Processed)
		v[p+"pending"] = int64(e.Pending)
		v[p+"hiwater"] = int64(e.HiWater)
		v[p+"freelist"] = int64(e.FreeList)
		if e.Queue.Kind != "" {
			v[p+"queue.kind."+e.Queue.Kind] = 1
		}
		v[p+"queue.buckets"] = int64(e.Queue.Buckets)
		v[p+"queue.width_ns"] = int64(e.Queue.Width)
		v[p+"queue.grows"] = int64(e.Queue.Grows)
		v[p+"queue.shrinks"] = int64(e.Queue.Shrinks)
		v[p+"queue.migrations"] = int64(e.Queue.Migrations)
	}
	v["runtime.pool.gets"] = int64(s.Pool.Gets)
	v["runtime.pool.releases"] = int64(s.Pool.Releases)
	v["runtime.pool.inuse"] = s.Pool.InUse
	v["runtime.pool.inuse_hiwater"] = s.Pool.HiWater
	return v
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// WriteTo dumps the snapshot as sorted "name\tvalue" lines — the
// obs.Registry dump format (and io.WriterTo contract), so the same
// tooling (and pmsbstat -runtime) parses both.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	vals := s.Values()
	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	var total int64
	for _, n := range names {
		n, err := fmt.Fprintf(w, "%s\t%d\n", n, vals[n])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ParseDump reads a "name\tvalue" dump (as written by Snapshot.WriteTo
// or obs.Registry.WriteTo) back into a value map. Histogram rows and
// other non-integer values are skipped, not errors, so a combined
// metrics dump parses cleanly.
func ParseDump(r io.Reader) (map[string]int64, error) {
	vals := make(map[string]int64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		name, val, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			continue
		}
		vals[name] = n
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runtime: parse dump: %w", err)
	}
	return vals, nil
}

// dur renders a nanosecond metric as a duration.
func dur(ns int64) time.Duration { return time.Duration(ns) }
