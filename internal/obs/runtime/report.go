package runtime

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Report renders a human explanation of a runtime dump: the per-shard
// table, then the derived diagnoses — shard imbalance, steal efficacy,
// null-advance overhead, worker utilization, queue churn, pool
// pressure. vals is a ParseDump result (from a -runtimestats file).
func Report(w io.Writer, vals map[string]int64) error {
	bw := &strings.Builder{}

	mode := indicator(vals, "runtime.coord.mode.")
	shards := int(vals["runtime.coord.shards"])
	if mode != "" {
		steal := "off"
		if vals["runtime.coord.stealing"] != 0 {
			steal = "on"
		}
		fmt.Fprintf(bw, "# coordinator: mode %s, %d shards, stealing %s\n", mode, shards, steal)
		wall := dur(vals["runtime.coord.wall_ns"])
		blocked := dur(vals["runtime.coord.blocked_ns"])
		fmt.Fprintf(bw, "wall %v", wall.Round(time.Microsecond))
		if wall > 0 {
			fmt.Fprintf(bw, ", coordinator blocked %v (%.0f%%)",
				blocked.Round(time.Microsecond), pct(int64(blocked), int64(wall)))
		}
		fmt.Fprintln(bw)
		shardTable(bw, vals, shards)
		imbalance(bw, vals, shards)
		stealEfficacy(bw, vals, shards)
		nullOverhead(bw, vals, shards)
		workerUtilization(bw, vals, shards)
	} else {
		fmt.Fprintf(bw, "# serial run (no coordinator stats)\n")
	}
	queueChurn(bw, vals)
	poolPressure(bw, vals)

	_, err := io.WriteString(w, bw.String())
	return err
}

// indicator finds the suffix of the single "<prefix><value>\t1" row.
func indicator(vals map[string]int64, prefix string) string {
	for n, v := range vals {
		if v == 1 && strings.HasPrefix(n, prefix) {
			return strings.TrimPrefix(n, prefix)
		}
	}
	return ""
}

func shardKey(vals map[string]int64, i int, field string) int64 {
	return vals[fmt.Sprintf("runtime.shard.%d.%s", i, field)]
}

func workerKey(vals map[string]int64, i int, field string) int64 {
	return vals[fmt.Sprintf("runtime.worker.%d.%s", i, field)]
}

func shardTable(w io.Writer, vals map[string]int64, shards int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "shard\tgrants\tsteals\tnull-adv\toutbox\tparked\tevents\tbusy\tbusy-share")
	var totalBusy int64
	for i := 0; i < shards; i++ {
		totalBusy += shardKey(vals, i, "busy_ns")
	}
	for i := 0; i < shards; i++ {
		busy := shardKey(vals, i, "busy_ns")
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%.0f%%\n",
			i,
			shardKey(vals, i, "grants"),
			shardKey(vals, i, "steals"),
			shardKey(vals, i, "null_advances"),
			shardKey(vals, i, "outbox_sent"),
			shardKey(vals, i, "parked"),
			shardKey(vals, i, "events"),
			dur(busy).Round(time.Microsecond),
			pct(busy, totalBusy))
	}
	tw.Flush()
}

// imbalance reports max/mean ratios of per-shard busy time and event
// counts: 1.0 is perfectly balanced; a shard at N× the mean is the
// straggler gating the conservative windows.
func imbalance(w io.Writer, vals map[string]int64, shards int) {
	if shards == 0 {
		return
	}
	busyRatio, busyMax := maxOverMean(vals, shards, "busy_ns")
	evRatio, evMax := maxOverMean(vals, shards, "events")
	fmt.Fprintf(w, "imbalance: busy max/mean %.2f (shard %d), events max/mean %.2f (shard %d)\n",
		busyRatio, busyMax, evRatio, evMax)
}

func maxOverMean(vals map[string]int64, shards int, field string) (float64, int) {
	var sum, max int64
	maxAt := 0
	for i := 0; i < shards; i++ {
		v := shardKey(vals, i, field)
		sum += v
		if v > max {
			max, maxAt = v, i
		}
	}
	if sum == 0 {
		return 0, maxAt
	}
	mean := float64(sum) / float64(shards)
	return float64(max) / mean, maxAt
}

// stealEfficacy reports how much of the window execution the shared
// grant queue actually moved off dedicated shards.
func stealEfficacy(w io.Writer, vals map[string]int64, shards int) {
	var grants, steals int64
	for i := 0; i < shards; i++ {
		grants += shardKey(vals, i, "grants")
		steals += shardKey(vals, i, "steals")
	}
	if vals["runtime.coord.stealing"] == 0 {
		return
	}
	fmt.Fprintf(w, "steal efficacy: %d of %d windows (%.0f%%) ran on a foreign worker\n",
		steals, grants, pct(steals, grants))
}

// nullOverhead reports the null-advance bookkeeping the protocol paid
// per useful grant: Bellman-Ford rounds per grant call and lb
// relaxations per granted window.
func nullOverhead(w io.Writer, vals map[string]int64, shards int) {
	calls := vals["runtime.coord.grant_calls"]
	rounds := vals["runtime.coord.relax_rounds"]
	var grants, nulls int64
	for i := 0; i < shards; i++ {
		grants += shardKey(vals, i, "grants")
		nulls += shardKey(vals, i, "null_advances")
	}
	if calls == 0 {
		return
	}
	fmt.Fprintf(w, "null-advance overhead: %.2f relax rounds/grant call, %.2f null advances/window (%d windows over %d calls)\n",
		ratio(rounds, calls), ratio(nulls, grants), grants, calls)
}

func workerUtilization(w io.Writer, vals map[string]int64, shards int) {
	var busy, blocked, idle int64
	for i := 0; i < shards; i++ {
		busy += workerKey(vals, i, "busy_ns")
		blocked += workerKey(vals, i, "blocked_ns")
		idle += workerKey(vals, i, "idle_ns")
	}
	total := busy + blocked + idle
	if total == 0 {
		return
	}
	fmt.Fprintf(w, "workers: busy %.0f%% / blocked %.0f%% / idle %.0f%% (aggregate over %d workers)\n",
		pct(busy, total), pct(blocked, total), pct(idle, total), shards)
}

// queueChurn aggregates the calendar-queue resize and overflow
// migration counters across engines, normalized per 1k events.
func queueChurn(w io.Writer, vals map[string]int64) {
	var grows, shrinks, migr, events int64
	seen := false
	for n, v := range vals {
		switch {
		case strings.HasSuffix(n, ".queue.grows"):
			grows += v
			seen = true
		case strings.HasSuffix(n, ".queue.shrinks"):
			shrinks += v
		case strings.HasSuffix(n, ".queue.migrations"):
			migr += v
		case strings.HasSuffix(n, ".processed") && strings.HasPrefix(n, "runtime.engine."):
			events += v
		}
	}
	if !seen {
		return
	}
	fmt.Fprintf(w, "queue churn: %d grows, %d shrinks, %.2f overflow migrations/1k events\n",
		grows, shrinks, 1000*ratio(migr, events))
}

func poolPressure(w io.Writer, vals map[string]int64) {
	gets, ok := vals["runtime.pool.gets"]
	if !ok || gets == 0 {
		return
	}
	fmt.Fprintf(w, "packet pool: %d gets, %d releases, in-use high water %d\n",
		gets, vals["runtime.pool.releases"], vals["runtime.pool.inuse_hiwater"])
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
