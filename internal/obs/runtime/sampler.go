package runtime

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"pmsb/internal/sim"
)

// Sampler streams live progress of a monitored run as periodic JSON
// lines. It reads only the sim.Monitor's published atomic snapshots —
// never an engine, a bus, or any other simulation state — so a sampler
// cannot perturb the simulation: the differential tests assert that a
// run with a sampler attached is byte-identical to one without.
//
// Each line carries wall-clock seconds since start, the simulated-time
// frontier (the minimum shard clock), total events, the event rate over
// the last interval, the per-shard lag spread, and — once the sim-time
// rate is measurable — an ETA to the run's deadline.
type Sampler struct {
	w        io.Writer
	mon      *sim.Monitor
	interval time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// ProgressLine is one emitted JSON sample.
type ProgressLine struct {
	// WallS is wall-clock seconds since the sampler started.
	WallS float64 `json:"wall_s"`
	// SimMS is the simulated-time frontier in milliseconds (the minimum
	// published shard clock).
	SimMS float64 `json:"sim_ms"`
	// Events is the total published event count; EventsPerSec is the
	// rate over the last interval.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"eps"`
	// Shards is the number of published shard slots.
	Shards int `json:"shards"`
	// LagMS is the spread between the fastest and slowest shard clocks
	// in milliseconds.
	LagMS float64 `json:"lag_ms"`
	// EtaS estimates wall seconds until the frontier reaches the run
	// deadline, from the sim-time rate over the last interval. Omitted
	// until the rate is measurable.
	EtaS float64 `json:"eta_s,omitempty"`
	// Final marks the line emitted by Stop.
	Final bool `json:"final,omitempty"`
}

// StartSampler begins emitting one JSON line per interval to w. Stop
// flushes a final line and waits for the goroutine to exit. A
// non-positive interval defaults to one second.
func StartSampler(w io.Writer, mon *sim.Monitor, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{
		w:        w,
		mon:      mon,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *Sampler) run() {
	defer close(s.done)
	enc := json.NewEncoder(s.w)
	start := time.Now()
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	var last ProgressLine
	var lastWall time.Time
	emit := func(final bool) {
		now := time.Now()
		p := s.mon.Snapshot()
		line := ProgressLine{
			WallS:  now.Sub(start).Seconds(),
			SimMS:  float64(p.Frontier) / float64(time.Millisecond),
			Events: p.Events,
			Shards: len(p.Shards),
			LagMS:  float64(p.Lag) / float64(time.Millisecond),
			Final:  final,
		}
		if !lastWall.IsZero() {
			dw := now.Sub(lastWall).Seconds()
			if dw > 0 {
				line.EventsPerSec = float64(line.Events-last.Events) / dw
				simRate := (line.SimMS - last.SimMS) / dw // sim-ms per wall-second
				deadlineMS := float64(p.Deadline) / float64(time.Millisecond)
				if simRate > 0 && deadlineMS > line.SimMS {
					line.EtaS = (deadlineMS - line.SimMS) / simRate
				}
			}
		}
		enc.Encode(&line) // best-effort: a broken progress pipe must not fail the run
		last, lastWall = line, now
	}
	for {
		select {
		case <-tick.C:
			emit(false)
		case <-s.stop:
			emit(true)
			return
		}
	}
}

// Stop emits a final sample and waits for the sampler goroutine to
// exit. Safe to call more than once.
func (s *Sampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
