package runtime

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pmsb/internal/sim"
)

// driveSharded runs a small two-shard ping-pong under the coordinator
// with runtime stats and an optional monitor attached.
func driveSharded(t *testing.T, mon *sim.Monitor) *sim.Coordinator {
	t.Helper()
	coord := sim.NewCoordinator()
	coord.EnableRuntimeStats()
	if mon != nil {
		coord.SetMonitor(mon)
	}
	a := coord.NewShard()
	b := coord.NewShard()
	ab := coord.Boundary(a, b, 5*time.Microsecond)
	ba := coord.Boundary(b, a, 5*time.Microsecond)
	var hop func(fwd bool, n int)
	hop = func(fwd bool, n int) {
		if n >= 300 {
			return
		}
		if fwd {
			ab.Send(func(any) { hop(false, n+1) }, nil)
		} else {
			ba.Send(func(any) { hop(true, n+1) }, nil)
		}
	}
	a.Engine().ScheduleAt(0, func() { hop(true, 0) })
	coord.RunUntil(5 * time.Millisecond)
	return coord
}

// A collected sharded run survives the dump → parse round trip with
// every metric intact.
func TestSnapshotDumpRoundTrip(t *testing.T) {
	coll := NewCollector()
	coll.ObserveCoordinator(driveSharded(t, nil))
	snap := coll.Snapshot()

	vals := snap.Values()
	if vals["runtime.runs"] != 1 {
		t.Fatalf("runs = %d, want 1", vals["runtime.runs"])
	}
	if vals["runtime.coord.shards"] != 2 {
		t.Fatalf("shards = %d, want 2", vals["runtime.coord.shards"])
	}
	if vals["runtime.shard.0.events"] == 0 || vals["runtime.shard.1.events"] == 0 {
		t.Fatal("per-shard event counters empty")
	}
	if vals["runtime.coord.wall_ns"] <= 0 {
		t.Fatal("wall time missing from dump values")
	}

	var buf bytes.Buffer
	n, err := snap.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	// Sorted, one metric per line.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("dump not sorted: %q >= %q", lines[i-1], lines[i])
		}
	}

	parsed, err := ParseDump(&buf)
	if err != nil {
		t.Fatalf("ParseDump: %v", err)
	}
	if len(parsed) != len(vals) {
		t.Fatalf("round trip kept %d metrics, want %d", len(parsed), len(vals))
	}
	for k, v := range vals {
		if parsed[k] != v {
			t.Fatalf("metric %s: %d != %d after round trip", k, parsed[k], v)
		}
	}
}

// ParseDump skips non-integer lines (histogram rows of a combined
// metrics dump) instead of failing.
func TestParseDumpSkipsNonInteger(t *testing.T) {
	in := "a.count\t3\nb.hist\t0.5:2 1:7\nplain line no tab\nc.value\t-9\n"
	vals, err := ParseDump(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseDump: %v", err)
	}
	if len(vals) != 2 || vals["a.count"] != 3 || vals["c.value"] != -9 {
		t.Fatalf("parsed %v", vals)
	}
}

// Observations of the same shape merge: counters sum, high-water marks
// max, and the run count tracks every observation.
func TestCollectorMerges(t *testing.T) {
	coll := NewCollector()
	c1 := driveSharded(t, nil)
	c2 := driveSharded(t, nil)
	coll.ObserveCoordinator(c1)
	snap1 := coll.Snapshot()
	coll.ObserveCoordinator(c2)
	snap2 := coll.Snapshot()
	if snap2.Runs != 2 {
		t.Fatalf("runs = %d, want 2", snap2.Runs)
	}
	st1, _ := c1.RuntimeStats()
	st2, _ := c2.RuntimeStats()
	if got, want := snap2.Coord.PerShard[0].Events, st1.PerShard[0].Events+st2.PerShard[0].Events; got != want {
		t.Fatalf("shard 0 events = %d after merge, want %d", got, want)
	}
	if snap2.Coord.Wall < snap1.Coord.Wall {
		t.Fatalf("wall time shrank on merge: %v -> %v", snap1.Coord.Wall, snap2.Coord.Wall)
	}
	if got, want := snap2.Engines[0].Processed, st1.PerShard[0].Events+st2.PerShard[0].Events; got != want {
		t.Fatalf("engine 0 processed = %d after merge, want %d", got, want)
	}
}

// The report renders every diagnosis section from a real dump without
// error, and a serial dump degrades gracefully.
func TestReportSections(t *testing.T) {
	coll := NewCollector()
	coll.ObserveCoordinator(driveSharded(t, nil))
	var buf bytes.Buffer
	if err := Report(&buf, coll.Snapshot().Values()); err != nil {
		t.Fatalf("Report: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"coordinator", "imbalance", "null-advance", "workers", "queue churn",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q section:\n%s", want, out)
		}
	}

	serial := NewCollector()
	eng := sim.NewEngine()
	eng.Schedule(time.Microsecond, func() {})
	eng.RunUntil(time.Millisecond)
	serial.ObserveSerial(eng)
	buf.Reset()
	if err := Report(&buf, serial.Snapshot().Values()); err != nil {
		t.Fatalf("Report (serial): %v", err)
	}
	if !strings.Contains(buf.String(), "serial run") {
		t.Fatalf("serial report missing fallback header:\n%s", buf.String())
	}
}

// The sampler emits valid JSON progress lines, ends with a final line
// reflecting the monitor's last published state, and Stop is
// idempotent.
func TestSamplerEmitsProgress(t *testing.T) {
	mon := sim.NewMonitor()
	var buf bytes.Buffer
	s := StartSampler(&buf, mon, time.Millisecond)
	coord := driveSharded(t, mon)
	time.Sleep(5 * time.Millisecond) // let a few ticks land
	s.Stop()
	s.Stop()

	var lines []ProgressLine
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var l ProgressLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad progress line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) == 0 {
		t.Fatal("sampler emitted no lines")
	}
	last := lines[len(lines)-1]
	if !last.Final {
		t.Fatalf("last line not final: %+v", last)
	}
	if last.Events != coord.Processed() {
		t.Fatalf("final line reports %d events, run processed %d", last.Events, coord.Processed())
	}
	if last.Shards != 2 {
		t.Fatalf("final line reports %d shards, want 2", last.Shards)
	}
	if last.SimMS != 5 {
		t.Fatalf("final line frontier %vms, want 5ms", last.SimMS)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i].WallS < lines[i-1].WallS || lines[i].Events < lines[i-1].Events {
			t.Fatalf("progress regressed between lines: %+v -> %+v", lines[i-1], lines[i])
		}
	}
}
