package obs

import (
	"sort"
	"time"

	"pmsb/internal/pkt"
)

// FlowRecord is the per-flow telemetry assembled automatically from
// transport events: lifecycle, progress, congestion signals and loss
// recovery. Experiments read these instead of polling senders.
type FlowRecord struct {
	// Flow is the transport flow ID.
	Flow pkt.FlowID `json:"flow"`
	// Service is the flow's service class (switch queue selector).
	Service int `json:"service"`
	// Size is the flow size in bytes (0 = long-lived).
	Size int64 `json:"size,omitempty"`
	// Start and Finish are virtual times; Finish is valid once Finished.
	Start  time.Duration `json:"start"`
	Finish time.Duration `json:"finish,omitempty"`
	// FCT is the flow completion time (valid once Finished).
	FCT time.Duration `json:"fct,omitempty"`
	// Finished reports whether the last byte was acked.
	Finished bool `json:"finished"`
	// Bytes is the acknowledged (or delivered) byte count, updated as
	// the flow progresses and finalized at finish.
	Bytes int64 `json:"bytes"`
	// MarksSeen counts congestion signals that arrived at the sender;
	// MarksAccepted counts the ones its filter honoured (PMSB(e) may
	// veto signals — "selective blindness at the end host").
	MarksSeen     int64 `json:"marksSeen"`
	MarksAccepted int64 `json:"marksAccepted"`
	// CwndCuts counts multiplicative window reductions; Retransmits and
	// RTOs count loss-recovery actions.
	CwndCuts    int64 `json:"cwndCuts"`
	Retransmits int64 `json:"retransmits"`
	RTOs        int64 `json:"rtos"`
	// LastAlpha is the most recent congestion-estimate refresh.
	LastAlpha float64 `json:"lastAlpha"`
}

// FlowTable collects FlowRecords in flow-start order.
type FlowTable struct {
	recs  map[pkt.FlowID]*FlowRecord
	order []*FlowRecord
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable {
	return &FlowTable{recs: make(map[pkt.FlowID]*FlowRecord)}
}

// open returns the record for f, creating it on first start. Restarted
// flow IDs reuse their record.
func (t *FlowTable) open(f pkt.FlowID) *FlowRecord {
	if rec, ok := t.recs[f]; ok {
		return rec
	}
	rec := &FlowRecord{Flow: f}
	t.recs[f] = rec
	t.order = append(t.order, rec)
	return rec
}

// Get returns the record for f (nil when the flow never started).
func (t *FlowTable) Get(f pkt.FlowID) *FlowRecord { return t.recs[f] }

// Len returns the number of tracked flows.
func (t *FlowTable) Len() int { return len(t.order) }

// Records returns every record in flow-start order. The slice is shared
// with the table; treat it as read-only.
func (t *FlowTable) Records() []*FlowRecord { return t.order }

// TopBytes returns up to k records sorted by descending byte count
// (ties broken by flow ID for determinism).
func (t *FlowTable) TopBytes(k int) []*FlowRecord {
	out := make([]*FlowRecord, len(t.order))
	copy(out, t.order)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Flow < out[j].Flow
	})
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// FlowProbe binds a transport sender to its live FlowRecord and the
// bus. A nil probe (observability disabled) makes every method a nil
// check — senders hold one pointer and emit unconditionally.
type FlowProbe struct {
	bus *Bus
	rec *FlowRecord
}

// OpenFlow starts (or restarts) per-flow telemetry, emitting a
// flow-start event and returning the probe the sender holds. Returns
// nil on a nil bus, so the caller can assign unconditionally.
func (b *Bus) OpenFlow(t time.Duration, f pkt.FlowID, service int, size int64) *FlowProbe {
	if b == nil {
		return nil
	}
	rec := b.flows.open(f)
	rec.Service = service
	rec.Size = size
	rec.Start = t
	b.reg.flowsStarted.Inc()
	b.record(&Event{T: t, Kind: KindFlowStart, Node: pkt.NoNode, Port: -1,
		Queue: int32(service), Flow: f, Size: size})
	return &FlowProbe{bus: b, rec: rec}
}

// Signal counts a congestion signal arriving at the sender and whether
// its filter honoured it. Counter-only (no ring event): the switch-side
// KindMark event already traces each mark's origin, and signals arrive
// per-ACK — far too hot for one record each.
func (p *FlowProbe) Signal(marked, accepted bool) {
	if p == nil || !marked {
		return
	}
	p.rec.MarksSeen++
	if accepted {
		p.rec.MarksAccepted++
	}
}

// CwndCut records a multiplicative window reduction to cwnd segments.
func (p *FlowProbe) CwndCut(t time.Duration, cwnd float64) {
	if p == nil {
		return
	}
	p.rec.CwndCuts++
	p.bus.record(&Event{T: t, Kind: KindCwndCut, Node: pkt.NoNode, Port: -1,
		Queue: -1, Flow: p.rec.Flow, V: cwnd})
}

// Alpha records a congestion-estimate refresh; bytes is the flow's
// cumulative acknowledged progress, kept on the record so unfinished
// flows still report throughput.
func (p *FlowProbe) Alpha(t time.Duration, alpha float64, bytes int64) {
	if p == nil {
		return
	}
	p.rec.LastAlpha = alpha
	if bytes > p.rec.Bytes {
		p.rec.Bytes = bytes
	}
	p.bus.record(&Event{T: t, Kind: KindAlpha, Node: pkt.NoNode, Port: -1,
		Queue: -1, Flow: p.rec.Flow, Size: bytes, V: alpha})
}

// Retransmit records a retransmission of the segment at seq.
func (p *FlowProbe) Retransmit(t time.Duration, seq int64) {
	if p == nil {
		return
	}
	p.rec.Retransmits++
	p.bus.record(&Event{T: t, Kind: KindRetransmit, Node: pkt.NoNode, Port: -1,
		Queue: -1, Flow: p.rec.Flow, Pkt: uint64(seq)})
}

// RTO records a retransmission timeout firing.
func (p *FlowProbe) RTO(t time.Duration) {
	if p == nil {
		return
	}
	p.rec.RTOs++
	p.bus.record(&Event{T: t, Kind: KindRTO, Node: pkt.NoNode, Port: -1,
		Queue: -1, Flow: p.rec.Flow})
}

// Rate records a rate-based transport's new sending rate in bits/sec.
func (p *FlowProbe) Rate(t time.Duration, rate float64) {
	if p == nil {
		return
	}
	p.bus.record(&Event{T: t, Kind: KindRate, Node: pkt.NoNode, Port: -1,
		Queue: -1, Flow: p.rec.Flow, V: rate})
}

// Finish finalizes the record: the flow completed at t with the given
// FCT and total acknowledged bytes.
func (p *FlowProbe) Finish(t time.Duration, fct time.Duration, bytes int64) {
	if p == nil {
		return
	}
	p.rec.Finished = true
	p.rec.Finish = t
	p.rec.FCT = fct
	p.rec.Bytes = bytes
	p.bus.reg.flowsFinished.Inc()
	p.bus.reg.fct.ObserveDuration(fct)
	p.bus.record(&Event{T: t, Kind: KindFlowFinish, Node: pkt.NoNode, Port: -1,
		Queue: -1, Flow: p.rec.Flow, Size: bytes, V: float64(fct)})
}
