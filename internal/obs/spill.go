package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file is the spill path: instead of overwriting its oldest events
// when full, a Ring with a SpillWriter attached flushes its retained
// contents (oldest first) into the writer and keeps going — a bounded
// ring becomes a bounded *buffer* in front of an unbounded stream, and
// a full-length run is traced losslessly. Spill files are per-ring;
// under sharded execution each shard's bus spills to its own file and
// MergeEvents reassembles the deterministic interleaving at read time.

// traceBufSize is the bufio buffer for trace file I/O (both spill
// writers and readers). Big enough that a spill flush of a few thousand
// events issues a handful of write syscalls, not hundreds.
const traceBufSize = 256 * 1024

// TraceFormat selects the on-disk encoding of an event trace.
type TraceFormat uint8

const (
	// FormatJSONL: one JSON object per line (ring.go). Self-describing
	// and greppable; ~200 bytes/event.
	FormatJSONL TraceFormat = iota
	// FormatBinary: the chunked columnar codec (binary.go). Opaque but
	// ~10-20 bytes/event and an order of magnitude cheaper to encode.
	FormatBinary
)

// String implements fmt.Stringer with the -traceformat flag spelling.
func (f TraceFormat) String() string {
	if f == FormatBinary {
		return "bin"
	}
	return "jsonl"
}

// ParseTraceFormat parses a -traceformat flag value.
func ParseTraceFormat(s string) (TraceFormat, error) {
	switch s {
	case "jsonl":
		return FormatJSONL, nil
	case "bin":
		return FormatBinary, nil
	default:
		return 0, fmt.Errorf("obs: unknown trace format %q (want jsonl or bin)", s)
	}
}

// FormatForPath picks the default trace format for an output path:
// binary for ".bin", JSONL for everything else (including the
// historical ".jsonl").
func FormatForPath(path string) TraceFormat {
	if strings.EqualFold(filepath.Ext(path), ".bin") {
		return FormatBinary
	}
	return FormatJSONL
}

// ShardTracePath derives the per-shard spill file name for a requested
// trace path: "trace.bin" -> "trace.shard3.bin". The shard index is
// embedded before the extension so the format-by-extension default
// still applies to the derived names.
func ShardTracePath(path string, shard int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.shard%d%s", strings.TrimSuffix(path, ext), shard, ext)
}

// SpillWriter is the streaming sink a Ring flushes into when full. It
// owns the buffering (one bufio.Writer over the destination) and the
// encoding (JSONL or binary); Close flushes everything down to the
// destination writer but does not close it (the caller owns the file).
//
// Like the Ring it serves, a SpillWriter is single-goroutine.
type SpillWriter struct {
	bw      *bufio.Writer
	enc     *json.Encoder // JSONL mode
	bin     *BinaryWriter // binary mode
	format  TraceFormat
	spilled uint64
}

// NewSpillWriter returns a spill sink encoding events to w in the given
// format.
func NewSpillWriter(w io.Writer, format TraceFormat) *SpillWriter {
	s := &SpillWriter{bw: bufio.NewWriterSize(w, traceBufSize), format: format}
	if format == FormatBinary {
		s.bin = NewBinaryWriter(s.bw)
	} else {
		s.enc = json.NewEncoder(s.bw)
	}
	return s
}

// Format returns the sink's encoding.
func (s *SpillWriter) Format() TraceFormat { return s.format }

// Spilled returns the number of events written so far.
func (s *SpillWriter) Spilled() uint64 { return s.spilled }

// Spill encodes a batch of events, oldest first.
func (s *SpillWriter) Spill(events []Event) error {
	if s.bin != nil {
		if err := s.bin.Write(events); err != nil {
			return err
		}
		s.spilled += uint64(len(events))
		return nil
	}
	for i := range events {
		if err := s.enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("obs: spill trace event: %w", err)
		}
		s.spilled++
	}
	return nil
}

// Close flushes buffered data to the destination writer. The spill file
// is incomplete until Close returns nil. Close does not close the
// underlying writer.
func (s *SpillWriter) Close() error {
	if s.bin != nil {
		if err := s.bin.Flush(); err != nil {
			return err
		}
	}
	if err := s.bw.Flush(); err != nil {
		return fmt.Errorf("obs: flush spill: %w", err)
	}
	return nil
}

// MergeEvents interleaves per-shard (per-bus) event streams into one
// deterministic total order: by time, then by stream index, then by the
// per-bus sequence number. Each input stream must itself be
// time-ordered (a single bus's trace always is — Seq order is emission
// order and virtual time never goes backwards within one engine).
//
// The PDES determinism contract (DESIGN.md section 8) makes each shard's
// per-bus stream byte-identical to the same bus's stream in a serial
// run, so merging the spill files of an N-shard run with MergeEvents
// equals merging the N buses of a serial run: the sharded trace is the
// serial trace.
func MergeEvents(streams ...[]Event) []Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Event, 0, total)
	// idx tracks the merge frontier of each stream.
	idx := make([]int, len(streams))
	for len(out) < total {
		best := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			// Strict < keeps the lowest stream index on a time tie
			// (streams are scanned in index order), and within one
			// stream Seq order is preserved by the frontier walk.
			if streams[i][idx[i]].T < streams[best][idx[best]].T {
				best = i
			}
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
	return out
}

// SortEvents orders events by (T, Seq) in place — the canonical order
// for a merged single-stream view when stream identity is not
// meaningful (e.g. pmsbstat over several independent files).
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].T != events[j].T {
			return events[i].T < events[j].T
		}
		return events[i].Seq < events[j].Seq
	})
}

// ReadTrace parses a complete event trace from r, auto-detecting the
// format from the leading bytes: the binary magic selects the binary
// codec, anything else falls through to the JSONL parser (whose own
// validation reports unrecognized input with a line number). An empty
// stream is an empty trace in either format.
func ReadTrace(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, traceBufSize)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	if bytes.Equal(head, []byte(binaryMagic)) {
		return ReadBinary(br)
	}
	if len(head) == 0 {
		return nil, nil
	}
	if !jsonlPlausible(head) {
		return nil, fmt.Errorf("obs: unrecognized trace format (leading bytes %q: neither binary magic %q nor JSONL)",
			head, binaryMagic)
	}
	return readJSONLFrom(br)
}

// ReadTraceRange parses a trace keeping only events with
// since <= T <= until. Binary traces use the chunk-skimming range
// reader (ReadBinaryRange), so out-of-range chunks never materialize;
// JSONL traces have no skippable structure and are filtered line by
// line.
func ReadTraceRange(r io.Reader, since, until time.Duration) ([]Event, error) {
	br := bufio.NewReaderSize(r, traceBufSize)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	if bytes.Equal(head, []byte(binaryMagic)) {
		return ReadBinaryRange(br, since, until)
	}
	if len(head) == 0 {
		return nil, nil
	}
	if !jsonlPlausible(head) {
		return nil, fmt.Errorf("obs: unrecognized trace format (leading bytes %q: neither binary magic %q nor JSONL)",
			head, binaryMagic)
	}
	events, err := readJSONLFrom(br)
	if err != nil {
		return nil, err
	}
	kept := events[:0]
	for i := range events {
		if events[i].T >= since && events[i].T <= until {
			kept = append(kept, events[i])
		}
	}
	return kept, nil
}

// jsonlPlausible reports whether a trace head could open a JSONL
// stream: optional blank lines, then '{'. Used only to turn garbage
// input into a one-line format error instead of a confusing JSON parse
// error on binary-looking bytes.
func jsonlPlausible(head []byte) bool {
	for _, c := range head {
		switch c {
		case ' ', '\t', '\r', '\n':
		case '{':
			return true
		default:
			return false
		}
	}
	return true // all whitespace: let the scanner decide
}
