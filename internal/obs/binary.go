package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"pmsb/internal/pkt"
)

// This file is the binary trace codec: a compact, chunked, columnar
// encoding of Event streams. JSONL (ring.go) spends ~200 bytes and one
// encoding/json walk per record; at fabric scale that walk IS the
// tracing overhead. The binary format spends a handful of bytes per
// record and encodes column-by-column (struct-of-arrays passes over the
// chunk), so the hot encode loop touches one field of many events
// instead of many fields of one event — the same cache-layout argument
// that motivated the 80-byte Event record itself.
//
// Layout (little-endian throughout; see DESIGN.md section 7 for the
// field table):
//
//	file  := magic chunk*
//	magic := "PMSBTRC1" (8 bytes)
//	chunk := uvarint count (1..maxChunkEvents), then columns in order:
//	  seq    count x zigzag-varint delta vs previous event (running
//	         across chunks; the first event's delta is vs 0)
//	  t      count x zigzag-varint delta (same discipline)
//	  kind   count x 1 byte
//	  bits   count x uvarint field bitmap (bitNode..bitV); a clear bit
//	         means the field is zero and stores no bytes
//	  node   zigzag-varint per event with bitNode set
//	  port   zigzag-varint per event with bitPort
//	  queue  zigzag-varint per event with bitQueue
//	  flow   uvarint per event with bitFlow
//	  pkt    uvarint per event with bitPkt
//	  size   zigzag-varint per event with bitSize
//	  reason 1 byte per event with bitReason
//	  pb     zigzag-varint per event with bitPortBytes
//	  qb     zigzag-varint per event with bitQueueBytes
//	  v      8-byte IEEE-754 bits per event with bitV
//
// Varint deltas make the two always-present wide fields (Seq, T) cost
// 1-2 bytes at steady state (Seq deltas within one bus are exactly 1);
// the bitmap makes the zero fields of each kind free. A typical port
// event lands well under 20 bytes, against ~200 for its JSONL line.
//
// The codec is lossless: WriteBinary then ReadBinary reproduces the
// exact Event values, so converting a trace JSONL->binary->JSONL is
// byte-identical (the differential tests prove it on real workloads).

// binaryMagic identifies a binary trace stream. The trailing digit
// versions the format.
const binaryMagic = "PMSBTRC1"

// maxChunkEvents bounds the events per chunk: the writer's batching
// grain, and the reader's allocation bound against corrupt counts.
const maxChunkEvents = 1 << 16

// writerChunkEvents is the writer's default chunk size. Large enough to
// amortize per-chunk overhead, small enough that spill flushes stream
// incrementally.
const writerChunkEvents = 1 << 13

// Field bitmap bits, in column order.
const (
	bitNode = 1 << iota
	bitPort
	bitQueue
	bitFlow
	bitPkt
	bitSize
	bitReason
	bitPortBytes
	bitQueueBytes
	bitV

	bitsAll = 1<<10 - 1
)

// BinaryWriter encodes events into the binary trace format. Create one
// with NewBinaryWriter, feed it event batches with Write (order is
// preserved; batches may be any size), and Flush when done. The writer
// does not buffer the underlying io.Writer — wrap files in a
// bufio.Writer (SpillWriter does) or use the WriteBinary convenience.
type BinaryWriter struct {
	w          io.Writer
	wroteMagic bool
	prevSeq    uint64
	prevT      int64
	// pending accumulates events until a full chunk is ready, so chunk
	// boundaries land every writerChunkEvents regardless of how the
	// caller batches Write calls. The encoding is therefore canonical:
	// the same event sequence produces the same bytes whether it was
	// spilled 64 events at a time or written in one call — traces can
	// be compared byte-for-byte across ring sizes.
	pending []Event
	// cols are the reusable per-column scratch buffers of the
	// struct-of-arrays encode pass; buf assembles the chunk.
	cols [14][]byte
	buf  []byte
}

// NewBinaryWriter returns a writer emitting to w. The magic header is
// written lazily by the first Write, so a trace that records nothing
// can still be a valid (empty) file via Flush.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: w}
}

// Write appends events to the stream; full chunks are encoded eagerly,
// a trailing partial chunk waits for more events or Flush.
func (e *BinaryWriter) Write(events []Event) error {
	if err := e.writeMagic(); err != nil {
		return err
	}
	for len(events) > 0 {
		if len(e.pending) == 0 && len(events) >= writerChunkEvents {
			// Fast path: a full chunk straight from the caller's slice,
			// no staging copy.
			if err := e.writeChunk(events[:writerChunkEvents]); err != nil {
				return err
			}
			events = events[writerChunkEvents:]
			continue
		}
		n := writerChunkEvents - len(e.pending)
		if n > len(events) {
			n = len(events)
		}
		e.pending = append(e.pending, events[:n]...)
		events = events[n:]
		if len(e.pending) == writerChunkEvents {
			if err := e.writeChunk(e.pending); err != nil {
				return err
			}
			e.pending = e.pending[:0]
		}
	}
	return nil
}

// Flush encodes any buffered partial chunk and guarantees the magic
// header exists even for an empty trace. The stream stays valid for
// further Writes, but flushing mid-stream forfeits canonical chunking.
func (e *BinaryWriter) Flush() error {
	if err := e.writeMagic(); err != nil {
		return err
	}
	if len(e.pending) > 0 {
		if err := e.writeChunk(e.pending); err != nil {
			return err
		}
		e.pending = e.pending[:0]
	}
	return nil
}

func (e *BinaryWriter) writeMagic() error {
	if e.wroteMagic {
		return nil
	}
	e.wroteMagic = true
	if _, err := io.WriteString(e.w, binaryMagic); err != nil {
		return fmt.Errorf("obs: write trace magic: %w", err)
	}
	return nil
}

// writeChunk encodes one chunk (len(events) <= maxChunkEvents): a
// single pass over the events scatters each field into its column
// buffer (the struct-of-arrays repack — each event's cache lines are
// read exactly once, and the small column buffers stay hot), then the
// columns are concatenated in layout order.
func (e *BinaryWriter) writeChunk(events []Event) error {
	// Work on a stack copy of the column headers: appends then update
	// local slice headers instead of pointer fields of the heap-resident
	// writer, keeping GC write barriers out of the encode loop (they
	// cost ~25% of the encode at full rate). Written back once below.
	c := e.cols
	for i := range c {
		c[i] = c[i][:0]
	}
	prevSeq, prevT := e.prevSeq, e.prevT
	for i := range events {
		ev := &events[i]
		c[0] = binary.AppendVarint(c[0], int64(ev.Seq-prevSeq))
		prevSeq = ev.Seq
		t := int64(ev.T)
		c[1] = binary.AppendVarint(c[1], t-prevT)
		prevT = t
		c[2] = append(c[2], byte(ev.Kind))
		// The bitmap is assembled while the present fields are encoded —
		// one read of each field decides its bit and stores its bytes.
		var bits uint64
		if ev.Node != 0 {
			bits |= bitNode
			c[4] = binary.AppendVarint(c[4], int64(ev.Node))
		}
		if ev.Port != 0 {
			bits |= bitPort
			c[5] = binary.AppendVarint(c[5], int64(ev.Port))
		}
		if ev.Queue != 0 {
			bits |= bitQueue
			c[6] = binary.AppendVarint(c[6], int64(ev.Queue))
		}
		if ev.Flow != 0 {
			bits |= bitFlow
			c[7] = binary.AppendUvarint(c[7], uint64(ev.Flow))
		}
		if ev.Pkt != 0 {
			bits |= bitPkt
			c[8] = binary.AppendUvarint(c[8], ev.Pkt)
		}
		if ev.Size != 0 {
			bits |= bitSize
			c[9] = binary.AppendVarint(c[9], ev.Size)
		}
		if ev.Reason != 0 {
			bits |= bitReason
			c[10] = append(c[10], byte(ev.Reason))
		}
		if ev.PortBytes != 0 {
			bits |= bitPortBytes
			c[11] = binary.AppendVarint(c[11], ev.PortBytes)
		}
		if ev.QueueBytes != 0 {
			bits |= bitQueueBytes
			c[12] = binary.AppendVarint(c[12], ev.QueueBytes)
		}
		if ev.V != 0 {
			bits |= bitV
			c[13] = binary.LittleEndian.AppendUint64(c[13], math.Float64bits(ev.V))
		}
		c[3] = binary.AppendUvarint(c[3], bits)
	}
	e.prevSeq, e.prevT = prevSeq, prevT
	e.cols = c

	e.buf = binary.AppendUvarint(e.buf[:0], uint64(len(events)))
	for _, col := range c {
		e.buf = append(e.buf, col...)
	}
	if _, err := e.w.Write(e.buf); err != nil {
		return fmt.Errorf("obs: write trace chunk: %w", err)
	}
	return nil
}

// WriteBinary writes events to w in the binary trace format, buffered.
// The inverse is ReadBinary. Writing an empty slice produces a valid
// empty trace (magic only).
func WriteBinary(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, traceBufSize)
	e := NewBinaryWriter(bw)
	if err := e.Write(events); err != nil {
		return err
	}
	if err := e.Flush(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}

// BinaryReader decodes a binary trace stream chunk by chunk.
type BinaryReader struct {
	br      *bufio.Reader
	prevSeq uint64
	prevT   int64
	// seqBuf/tBuf hold the decoded Seq and T columns of the chunk under
	// decode. They are reader-owned scratch, reused across chunks: the
	// delta chains run across chunk boundaries, so every chunk's Seq and
	// T columns must be decoded even when the chunk is skipped by a
	// range read — but a skipped chunk materializes nothing else.
	seqBuf []uint64
	tBuf   []int64
}

// NewBinaryReader wraps r and validates the magic header. A reader on a
// stream that is not a binary trace fails here, not mid-decode.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, traceBufSize)
	}
	var magic [len(binaryMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("obs: not a binary trace (short or unreadable header): %w", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("obs: not a binary trace (bad magic %q, want %q)",
			magic[:], binaryMagic)
	}
	return &BinaryReader{br: br}, nil
}

// Next decodes the next chunk, returning io.EOF at a clean end of
// stream. A stream that ends mid-chunk returns a truncation error.
func (d *BinaryReader) Next() ([]Event, error) {
	count, err := d.chunkCount()
	if err != nil {
		return nil, err
	}
	events, err := d.decodeChunk(count)
	if err != nil {
		return nil, d.truncated(count, err)
	}
	return events, nil
}

// NextRange decodes the next chunk, keeping only events with
// since <= T <= until. A chunk that falls entirely outside the range is
// skimmed: its Seq and T columns are still decoded (their delta chains
// carry state into the next chunk) but the remaining columns are parsed
// without materializing an event slice, so scanning a narrow window of
// a large trace skips most of the decode cost. A skipped or
// filtered-empty chunk returns (nil, nil); io.EOF ends the stream.
func (d *BinaryReader) NextRange(since, until time.Duration) ([]Event, error) {
	count, err := d.chunkCount()
	if err != nil {
		return nil, err
	}
	if err := d.readSeqT(count); err != nil {
		return nil, d.truncated(count, err)
	}
	// Events within one stream are time-ordered, but a merged or
	// hand-built trace need not be — bound the chunk by scanning the
	// column we already decoded rather than trusting its endpoints.
	minT, maxT := d.tBuf[0], d.tBuf[0]
	for _, t := range d.tBuf[1:count] {
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	if time.Duration(maxT) < since || time.Duration(minT) > until {
		if err := d.skipBody(count); err != nil {
			return nil, d.truncated(count, err)
		}
		return nil, nil
	}
	events := d.materialize(count)
	if err := d.readBody(events); err != nil {
		return nil, d.truncated(count, err)
	}
	kept := events[:0]
	for i := range events {
		if events[i].T >= since && events[i].T <= until {
			kept = append(kept, events[i])
		}
	}
	if len(kept) == 0 {
		return nil, nil
	}
	return kept, nil
}

// chunkCount reads and validates a chunk header. A clean end of stream
// is io.EOF.
func (d *BinaryReader) chunkCount() (int, error) {
	count, err := binary.ReadUvarint(d.br)
	if err == io.EOF {
		return 0, io.EOF
	}
	if err != nil {
		return 0, fmt.Errorf("obs: trace chunk header: %w", err)
	}
	if count == 0 || count > maxChunkEvents {
		return 0, fmt.Errorf("obs: corrupt trace chunk (count %d, want 1..%d)",
			count, maxChunkEvents)
	}
	return int(count), nil
}

// truncated wraps a mid-chunk EOF into a truncation error.
func (d *BinaryReader) truncated(count int, err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("obs: truncated trace chunk (%d events promised): %w",
			count, io.ErrUnexpectedEOF)
	}
	return err
}

// decodeChunk decodes one whole chunk body of count events.
func (d *BinaryReader) decodeChunk(count int) ([]Event, error) {
	if err := d.readSeqT(count); err != nil {
		return nil, err
	}
	events := d.materialize(count)
	if err := d.readBody(events); err != nil {
		return nil, err
	}
	return events, nil
}

// readSeqT decodes the chunk's Seq and T delta columns into the scratch
// buffers, advancing the cross-chunk delta state.
func (d *BinaryReader) readSeqT(count int) error {
	if cap(d.seqBuf) < count {
		d.seqBuf = make([]uint64, count)
		d.tBuf = make([]int64, count)
	}
	d.seqBuf, d.tBuf = d.seqBuf[:count], d.tBuf[:count]
	for i := range d.seqBuf {
		delta, err := binary.ReadVarint(d.br)
		if err != nil {
			return err
		}
		d.prevSeq += uint64(delta)
		d.seqBuf[i] = d.prevSeq
	}
	for i := range d.tBuf {
		delta, err := binary.ReadVarint(d.br)
		if err != nil {
			return err
		}
		d.prevT += delta
		d.tBuf[i] = d.prevT
	}
	return nil
}

// materialize allocates the chunk's event slice with the already-decoded
// Seq and T columns filled in.
func (d *BinaryReader) materialize(count int) []Event {
	events := make([]Event, count)
	for i := range events {
		events[i].Seq = d.seqBuf[i]
		events[i].T = time.Duration(d.tBuf[i])
	}
	return events
}

// skipBody parses a chunk's remaining columns without storing them. The
// varint columns are not self-delimiting, so every value is still
// decoded byte-by-byte; what a skim saves is the event-slice allocation
// and field scatter — the bulk of a chunk's decode footprint.
func (d *BinaryReader) skipBody(count int) error {
	for i := 0; i < count; i++ {
		k, err := d.br.ReadByte()
		if err != nil {
			return err
		}
		if k == 0 || Kind(k) >= numKinds {
			return fmt.Errorf("obs: corrupt trace chunk (unknown kind %d)", k)
		}
	}
	var present [10]int
	for i := 0; i < count; i++ {
		b, err := binary.ReadUvarint(d.br)
		if err != nil {
			return err
		}
		if b > bitsAll {
			return fmt.Errorf("obs: corrupt trace chunk (field bitmap %#x)", b)
		}
		for j := range present {
			if b&(1<<j) != 0 {
				present[j]++
			}
		}
	}
	// Field columns in layout order. Signed and unsigned varints share
	// the same wire shape, so one skip loop serves node..size and pb/qb;
	// reason and v are fixed-width and discard in one step.
	for _, idx := range [...]int{0, 1, 2, 3, 4, 5} {
		for j := 0; j < present[idx]; j++ {
			if _, err := binary.ReadUvarint(d.br); err != nil {
				return err
			}
		}
	}
	if _, err := d.br.Discard(present[6]); err != nil {
		return err
	}
	for _, idx := range [...]int{7, 8} {
		for j := 0; j < present[idx]; j++ {
			if _, err := binary.ReadUvarint(d.br); err != nil {
				return err
			}
		}
	}
	if _, err := d.br.Discard(8 * present[9]); err != nil {
		return err
	}
	return nil
}

// readBody decodes the chunk columns after Seq and T into events.
func (d *BinaryReader) readBody(events []Event) error {
	for i := range events {
		k, err := d.br.ReadByte()
		if err != nil {
			return err
		}
		if k == 0 || Kind(k) >= numKinds {
			return fmt.Errorf("obs: corrupt trace chunk (unknown kind %d)", k)
		}
		events[i].Kind = Kind(k)
	}
	bits := make([]uint16, len(events))
	for i := range events {
		b, err := binary.ReadUvarint(d.br)
		if err != nil {
			return err
		}
		if b > bitsAll {
			return fmt.Errorf("obs: corrupt trace chunk (field bitmap %#x)", b)
		}
		bits[i] = uint16(b)
	}
	for i := range events {
		if bits[i]&bitNode != 0 {
			v, err := d.readInt32()
			if err != nil {
				return err
			}
			events[i].Node = pkt.NodeID(v)
		}
	}
	for i := range events {
		if bits[i]&bitPort != 0 {
			v, err := d.readInt32()
			if err != nil {
				return err
			}
			events[i].Port = v
		}
	}
	for i := range events {
		if bits[i]&bitQueue != 0 {
			v, err := d.readInt32()
			if err != nil {
				return err
			}
			events[i].Queue = v
		}
	}
	for i := range events {
		if bits[i]&bitFlow != 0 {
			v, err := binary.ReadUvarint(d.br)
			if err != nil {
				return err
			}
			events[i].Flow = pkt.FlowID(v)
		}
	}
	for i := range events {
		if bits[i]&bitPkt != 0 {
			v, err := binary.ReadUvarint(d.br)
			if err != nil {
				return err
			}
			events[i].Pkt = v
		}
	}
	for i := range events {
		if bits[i]&bitSize != 0 {
			v, err := binary.ReadVarint(d.br)
			if err != nil {
				return err
			}
			events[i].Size = v
		}
	}
	for i := range events {
		if bits[i]&bitReason != 0 {
			b, err := d.br.ReadByte()
			if err != nil {
				return err
			}
			events[i].Reason = DropReason(b)
		}
	}
	for i := range events {
		if bits[i]&bitPortBytes != 0 {
			v, err := binary.ReadVarint(d.br)
			if err != nil {
				return err
			}
			events[i].PortBytes = v
		}
	}
	for i := range events {
		if bits[i]&bitQueueBytes != 0 {
			v, err := binary.ReadVarint(d.br)
			if err != nil {
				return err
			}
			events[i].QueueBytes = v
		}
	}
	var f8 [8]byte
	for i := range events {
		if bits[i]&bitV != 0 {
			if _, err := io.ReadFull(d.br, f8[:]); err != nil {
				return err
			}
			events[i].V = math.Float64frombits(binary.LittleEndian.Uint64(f8[:]))
		}
	}
	return nil
}

// readInt32 reads a zigzag varint and range-checks it into 32 bits.
func (d *BinaryReader) readInt32() (int32, error) {
	v, err := binary.ReadVarint(d.br)
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("obs: corrupt trace chunk (32-bit field holds %d)", v)
	}
	return int32(v), nil
}

// ReadBinary parses a complete binary trace (as written by WriteBinary
// or a spilling ring) back into events.
func ReadBinary(r io.Reader) ([]Event, error) {
	d, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	var out []Event
	for {
		chunk, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
}

// ReadBinaryRange parses a binary trace keeping only events with
// since <= T <= until, skimming chunks that fall entirely outside the
// range instead of materializing them (see BinaryReader.NextRange).
func ReadBinaryRange(r io.Reader, since, until time.Duration) ([]Event, error) {
	d, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	var out []Event
	for {
		chunk, err := d.NextRange(since, until)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
}
