package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pmsb/internal/pkt"
)

func testPacket(flow pkt.FlowID, id uint64, size int) *pkt.Packet {
	return &pkt.Packet{Flow: flow, ID: id, Size: size}
}

func TestRingAppendAndOrder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Append(Event{Seq: uint64(i)})
	}
	if r.Len() != 5 || r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestRingWraparound: overflowing the ring keeps the newest events in
// oldest-first order and counts the overwritten prefix as dropped.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Seq: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	want := uint64(6)
	r.Do(func(ev *Event) {
		if ev.Seq != want {
			t.Fatalf("got seq %d, want %d", ev.Seq, want)
		}
		want++
	})
	if want != 10 {
		t.Fatalf("Do visited up to %d, want 10", want)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	if r.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", r.Cap())
	}
	r.Append(Event{Seq: 1})
	r.Append(Event{Seq: 2})
	if r.Len() != 1 || r.Events()[0].Seq != 2 {
		t.Fatalf("single-slot ring must keep the newest event: %+v", r.Events())
	}
}

// TestJSONLRoundTrip: every field written must survive the
// encode/decode cycle, including the string-form kinds and reasons.
func TestJSONLRoundTrip(t *testing.T) {
	r := NewRing(16)
	in := []Event{
		{Seq: 0, T: time.Millisecond, Kind: KindEnqueue, Node: 1000, Port: 0,
			Queue: 1, Flow: 7, Pkt: 42, Size: 1500, PortBytes: 4500, QueueBytes: 3000},
		{Seq: 1, T: 2 * time.Millisecond, Kind: KindDrop, Node: 1000, Port: 0,
			Queue: 0, Flow: 8, Pkt: 43, Size: 1500, Reason: DropSharedBuffer},
		{Seq: 2, T: 3 * time.Millisecond, Kind: KindBlind, Node: pkt.NoNode, Port: -1,
			Queue: 1, PortBytes: 20000, QueueBytes: 100, V: 9000},
		{Seq: 3, T: 4 * time.Millisecond, Kind: KindFlowFinish, Node: pkt.NoNode,
			Port: -1, Queue: -1, Flow: 7, Size: 9000, V: 4e6},
	}
	for _, ev := range in {
		r.Append(ev)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(in) {
		t.Fatalf("wrote %d lines, want %d", got, len(in))
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d round-trip mismatch:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{bad json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"no-such-kind"}` + "\n")); err == nil {
		t.Fatal("unknown kind must error")
	}
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank lines must be skipped: %v %v", evs, err)
	}
}

// TestNilBusIsInert: every probe constructor returns nil on a nil bus
// and every emit method tolerates a nil receiver — the disabled layer.
func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	if b.Ring() != nil || b.Metrics() != nil || b.Flows() != nil {
		t.Fatal("nil bus accessors must answer nil")
	}
	pp := b.ObservePort(PortID{Node: 1, Port: 0}, 2)
	if pp != nil {
		t.Fatal("ObservePort on nil bus must be nil")
	}
	p := testPacket(1, 1, 1500)
	pp.Enqueue(0, 0, p, 0, 0)
	pp.Dequeue(0, 0, p, 0, 0)
	pp.Drop(0, 0, p, DropPortBuffer)
	pp.Mark(0, 0, p, 0, 0)
	fp := b.OpenFlow(0, 1, 0, 0)
	if fp != nil {
		t.Fatal("OpenFlow on nil bus must be nil")
	}
	fp.Signal(true, true)
	fp.CwndCut(0, 1)
	fp.Alpha(0, 0.5, 100)
	fp.Retransmit(0, 0)
	fp.RTO(0)
	fp.Rate(0, 1e9)
	fp.Finish(0, time.Millisecond, 100)
	b.PFCPause(0, 1, 100)
	b.PFCResume(0, 1, 10)
	b.Blind(0, 1, 100, 10, 50)
}

// TestBusEmitZeroAlloc: with the layer ENABLED (ring + counters), a
// port-probe emit must still be allocation-free — the hot-path
// guarantee that makes always-on tracing viable.
func TestBusEmitZeroAlloc(t *testing.T) {
	bus := NewBus(1 << 12)
	probe := bus.ObservePort(PortID{Node: 1000, Port: 0}, 2)
	p := testPacket(7, 1, 1500)
	allocs := testing.AllocsPerRun(1000, func() {
		probe.Enqueue(time.Millisecond, 1, p, 4500, 3000)
		probe.Dequeue(time.Millisecond, 1, p, 3000, 1500)
		probe.Mark(time.Millisecond, 1, p, 4500, 3000)
	})
	if allocs != 0 {
		t.Fatalf("enabled emit path allocates %v/op, want 0", allocs)
	}
	// Flow-probe congestion events ride the same ring.
	fp := bus.OpenFlow(0, 7, 0, 0)
	allocs = testing.AllocsPerRun(1000, func() {
		fp.Signal(true, true)
		fp.CwndCut(time.Millisecond, 10)
		fp.Alpha(time.Millisecond, 0.5, 1000)
	})
	if allocs != 0 {
		t.Fatalf("flow emit path allocates %v/op, want 0", allocs)
	}
}

func TestBusSequencing(t *testing.T) {
	bus := NewBus(8)
	probe := bus.ObservePort(PortID{Node: 1, Port: 0}, 1)
	p := testPacket(1, 1, 100)
	probe.Enqueue(0, 0, p, 100, 100)
	probe.Dequeue(time.Microsecond, 0, p, 0, 0)
	evs := bus.Ring().Events()
	if len(evs) != 2 || evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("sequencing wrong: %+v", evs)
	}
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("test.counter") != c {
		t.Fatal("counter lookup must be stable")
	}
	g := r.Gauge("test.gauge")
	g.Set(2)
	g.Add(-0.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("test.hist")
	h.Observe(1)
	h.ObserveDuration(3 * time.Second)
	if h.Summary().Count() != 2 || h.Summary().Max() != 3 {
		t.Fatalf("hist count=%d max=%v", h.Summary().Count(), h.Summary().Max())
	}

	var dump strings.Builder
	if _, err := r.WriteTo(&dump); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"test.counter\t5", "test.gauge\t1.5", "test.hist\tcount=2", "flows.started\t0"} {
		if !strings.Contains(dump.String(), want) {
			t.Errorf("dump missing %q:\n%s", want, dump.String())
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("cross-type re-registration must panic")
		}
	}()
	r.Gauge("test.counter")
}

func TestFlowTableTopBytes(t *testing.T) {
	bus := NewBus(0) // metrics+flows only, no ring
	if bus.Ring() != nil {
		t.Fatal("ringCap 0 must disable the ring")
	}
	a := bus.OpenFlow(0, 1, 0, 0)
	b := bus.OpenFlow(0, 2, 1, 0)
	c := bus.OpenFlow(0, 3, 1, 0)
	a.Alpha(0, 0.1, 500)
	b.Alpha(0, 0.1, 900)
	c.Alpha(0, 0.1, 900)
	top := bus.Flows().TopBytes(2)
	if len(top) != 2 || top[0].Flow != 2 || top[1].Flow != 3 {
		t.Fatalf("TopBytes order wrong: %+v", top)
	}
	if bus.Flows().Len() != 3 || bus.Flows().Get(1).Bytes != 500 {
		t.Fatal("flow table state wrong")
	}
	b.Finish(time.Millisecond, time.Millisecond, 1200)
	rec := bus.Flows().Get(2)
	if !rec.Finished || rec.FCT != time.Millisecond || rec.Bytes != 1200 {
		t.Fatalf("finish not recorded: %+v", rec)
	}
}

// TestAnalysis drives the trace-analysis helpers over a synthetic
// two-queue trace with a known shape.
func TestAnalysis(t *testing.T) {
	bus := NewBus(1 << 10)
	probe := bus.ObservePort(PortID{Node: 1000, Port: 0}, 2)
	p0 := testPacket(1, 1, 1500)
	p1 := testPacket(2, 2, 1500)
	fp := bus.OpenFlow(0, 1, 0, 3000)
	for i := 0; i < 4; i++ {
		at := time.Duration(i) * time.Millisecond
		probe.Enqueue(at, 0, p0, 3000, 2000)
		probe.Enqueue(at, 1, p1, 3000, 1000)
		probe.Dequeue(at+time.Millisecond/2, 0, p0, 1500, 500)
	}
	probe.Mark(4*time.Millisecond, 0, p0, 3000, 2000)
	fp.Finish(5*time.Millisecond, 5*time.Millisecond, 3000)
	events := bus.Ring().Events()

	sums, keys := DepthSummaries(events)
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	q0 := sums[QueueKey{Node: 1000, Port: 0, Queue: 0}]
	if q0.Max() != 2000 || q0.Min() != 500 {
		t.Fatalf("q0 depth max=%v min=%v", q0.Max(), q0.Min())
	}

	tr := DepthTrace(events, 1000, 0, 0)
	if len(tr.Points()) != 8 || tr.Max() != 2000 {
		t.Fatalf("q0 trace: %d points max %v", len(tr.Points()), tr.Max())
	}
	port := DepthTrace(events, 1000, 0, -1)
	if port.Max() != 3000 {
		t.Fatalf("port trace max = %v", port.Max())
	}

	marks, deqs := MarkSeries(events, time.Millisecond)
	if marks.Value(4) != 1 || deqs.Value(0) != 1 {
		t.Fatalf("mark series: marks(4)=%v deqs(0)=%v", marks.Value(4), deqs.Value(0))
	}

	if got := CountKinds(events)[KindEnqueue]; got != 8 {
		t.Fatalf("enqueue count = %d", got)
	}
	if got := Segments(events); got != 1 {
		t.Fatalf("segments = %d", got)
	}

	// Only flow 1 has lifecycle/congestion events; flow 2 appears solely
	// in enqueue records, which don't open flow records offline.
	flows := FlowsFromEvents(events)
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	f1 := flows[0]
	if f1.Flow != 1 || !f1.Finished || f1.FCT != 5*time.Millisecond || f1.MarksSeen != 1 {
		t.Fatalf("reconstructed flow 1: %+v", f1)
	}
}

func TestSegmentsDetectsRestart(t *testing.T) {
	events := []Event{
		{T: time.Millisecond}, {T: 2 * time.Millisecond},
		{T: time.Microsecond}, // engine restart
		{T: 5 * time.Millisecond},
	}
	if got := Segments(events); got != 2 {
		t.Fatalf("Segments = %d, want 2", got)
	}
	if Segments(nil) != 0 {
		t.Fatal("empty trace has 0 segments")
	}
}

func TestKindStringAndKinds(t *testing.T) {
	ks := Kinds()
	if len(ks) != int(numKinds)-1 {
		t.Fatalf("Kinds() returned %d kinds, want %d", len(ks), int(numKinds)-1)
	}
	seen := map[string]bool{}
	for _, k := range ks {
		name := k.String()
		if strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatal("unknown kind must render numerically")
	}
	if DropSharedBuffer.String() == "" || DropReason(99).String() == "" {
		t.Fatal("drop reasons must always render")
	}
}
