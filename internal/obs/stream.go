package obs

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/stats"
)

// This file is the streaming counterpart of analysis.go for binary
// traces: the event-count, depth-summary and mark-rate reductions
// computed column by column from the chunk encoding, without ever
// materializing an []Event. The materializing path costs 80 bytes per event before the
// first statistic is touched; at fabric scale a full-run trace is
// gigabytes of events, so the reduction — not the decode — must be the
// resident state. A StreamStats holds only the aggregates (one Summary
// per observed queue, one counter per kind) plus per-chunk scratch
// columns, so analyzing a trace of any length runs in memory
// proportional to the topology, not the run.
//
// Per chunk, the reducer decodes exactly the columns its reductions
// read: Seq and T always (their delta chains run across chunks), Kind
// (classifies every event), the field bitmap (locates the value
// columns), and — only when depth summaries are requested — Node,
// Port, Queue and QueueBytes. Every other column is parsed at wire
// level and dropped, exactly like BinaryReader.skipBody. The fold over
// the decoded columns reproduces CountKinds, DepthSummaries and
// MarkSeries sample for sample; stream_test.go holds the differential
// proof.

// StreamOptions selects the reductions of a streaming pass.
type StreamOptions struct {
	// Counts tallies events by kind (the CountKinds reduction).
	Counts bool
	// Depths summarizes QueueBytes per queue over enqueue/dequeue
	// events (the DepthSummaries reduction). Enabling it decodes the
	// Node, Port, Queue and QueueBytes columns; disabled, they are
	// skipped at wire level.
	Depths bool
	// MarkBin, when non-zero, bins CE marks and dequeues into
	// MarkBin-wide counts (the MarkSeries reduction). It reads only the
	// Kind and T columns, which every pass decodes anyway, so enabling
	// it costs no extra wire work. Binning by absolute time makes the
	// fold order-insensitive like the other reductions.
	MarkBin time.Duration
	// Since/Until keep only events with Since <= T <= Until.
	// Until 0 means no upper bound.
	Since, Until time.Duration
}

// StreamStats accumulates the order-insensitive reductions of one or
// more binary trace streams. Create with NewStreamStats, feed each file
// through Reduce, then read the exported aggregates. The zero value is
// not ready to use.
type StreamStats struct {
	// Events counts the in-range events reduced across all streams.
	Events int
	// Kinds is the per-kind tally (nil unless Counts was requested).
	Kinds map[Kind]int
	// Depths is the per-queue occupancy summary (nil unless Depths was
	// requested).
	Depths map[QueueKey]*stats.Summary
	// Marks and Dequeues are the mark-rate timeline's two series (nil
	// unless MarkBin was set); their per-bin quotient is the mark
	// fraction, exactly as MarkSeries produces it.
	Marks, Dequeues *stats.TimeSeries
	// MinT and MaxT bound the in-range events' virtual time (both zero
	// while Events is 0).
	MinT, MaxT time.Duration
	// Segments is the virtual-time segment count over the concatenation
	// of the reduced streams, with Segments()'s semantics: a new segment
	// wherever time goes backwards. Reports over several merged files
	// should use 1 instead — a time-sorted merge never restarts.
	Segments int

	opt   StreamOptions
	lastT time.Duration

	// Per-chunk scratch columns, reused across chunks and streams.
	kinds []Kind
	bits  []uint16
	node  []int32
	port  []int32
	queue []int32
	qb    []int64
}

// NewStreamStats returns an empty accumulator for the given reductions.
func NewStreamStats(opt StreamOptions) *StreamStats {
	if opt.Until == 0 {
		opt.Until = 1<<63 - 1
	}
	st := &StreamStats{opt: opt}
	if opt.Counts {
		st.Kinds = make(map[Kind]int)
	}
	if opt.Depths {
		st.Depths = make(map[QueueKey]*stats.Summary)
	}
	if opt.MarkBin > 0 {
		st.Marks = stats.NewTimeSeries(opt.MarkBin)
		st.Dequeues = stats.NewTimeSeries(opt.MarkBin)
	}
	return st
}

// Reduce folds one binary trace stream into the accumulator. Several
// calls accumulate (e.g. the per-shard spill files of one run); the
// reductions are order-insensitive, so the result matches running the
// materializing analysis over the merged timeline.
func (st *StreamStats) Reduce(r io.Reader) error {
	d, err := NewBinaryReader(r)
	if err != nil {
		return err
	}
	for {
		count, err := d.chunkCount()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := d.readSeqT(count); err != nil {
			return d.truncated(count, err)
		}
		if err := st.reduceChunk(d, count); err != nil {
			return d.truncated(count, err)
		}
	}
}

// reduceChunk decodes one chunk body column-wise into the scratch
// buffers and folds it into the aggregates. d's tBuf already holds the
// chunk's decoded T column.
func (st *StreamStats) reduceChunk(d *BinaryReader, count int) error {
	st.grow(count)
	for i := 0; i < count; i++ {
		k, err := d.br.ReadByte()
		if err != nil {
			return err
		}
		if k == 0 || Kind(k) >= numKinds {
			return fmt.Errorf("obs: corrupt trace chunk (unknown kind %d)", k)
		}
		st.kinds[i] = Kind(k)
	}
	for i := 0; i < count; i++ {
		b, err := binary.ReadUvarint(d.br)
		if err != nil {
			return err
		}
		if b > bitsAll {
			return fmt.Errorf("obs: corrupt trace chunk (field bitmap %#x)", b)
		}
		st.bits[i] = uint16(b)
	}
	// Field columns in layout order: decode the ones the reductions
	// read, parse-and-drop the rest (signed and unsigned varints share
	// the wire shape; reason and v are fixed-width and discard in one
	// step, as in skipBody).
	if st.opt.Depths {
		if err := st.readCol32(d, count, bitNode, st.node); err != nil {
			return err
		}
		if err := st.readCol32(d, count, bitPort, st.port); err != nil {
			return err
		}
		if err := st.readCol32(d, count, bitQueue, st.queue); err != nil {
			return err
		}
	} else {
		for _, bit := range [...]uint16{bitNode, bitPort, bitQueue} {
			if err := st.skipVarints(d, count, bit); err != nil {
				return err
			}
		}
	}
	for _, bit := range [...]uint16{bitFlow, bitPkt, bitSize} {
		if err := st.skipVarints(d, count, bit); err != nil {
			return err
		}
	}
	if _, err := d.br.Discard(st.present(count, bitReason)); err != nil {
		return err
	}
	if err := st.skipVarints(d, count, bitPortBytes); err != nil {
		return err
	}
	if st.opt.Depths {
		if err := st.readCol64(d, count, bitQueueBytes, st.qb); err != nil {
			return err
		}
	} else if err := st.skipVarints(d, count, bitQueueBytes); err != nil {
		return err
	}
	if _, err := d.br.Discard(8 * st.present(count, bitV)); err != nil {
		return err
	}

	for i := 0; i < count; i++ {
		t := time.Duration(d.tBuf[i])
		if t < st.opt.Since || t > st.opt.Until {
			continue
		}
		if st.Events == 0 {
			st.MinT, st.MaxT, st.Segments = t, t, 1
		} else {
			if t < st.MinT {
				st.MinT = t
			}
			if t > st.MaxT {
				st.MaxT = t
			}
			if t < st.lastT {
				st.Segments++
			}
		}
		st.lastT = t
		st.Events++
		k := st.kinds[i]
		if st.Kinds != nil {
			st.Kinds[k]++
		}
		if st.Marks != nil {
			switch k {
			case KindMark:
				st.Marks.Add(t, 1)
			case KindDequeue:
				st.Dequeues.Add(t, 1)
			}
		}
		if st.Depths != nil && (k == KindEnqueue || k == KindDequeue) {
			key := QueueKey{Node: pkt.NodeID(st.node[i]), Port: st.port[i], Queue: st.queue[i]}
			s := st.Depths[key]
			if s == nil {
				s = &stats.Summary{}
				st.Depths[key] = s
			}
			s.Add(float64(st.qb[i]))
		}
	}
	return nil
}

// grow sizes the scratch columns for a chunk of count events.
func (st *StreamStats) grow(count int) {
	if cap(st.kinds) < count {
		st.kinds = make([]Kind, count)
		st.bits = make([]uint16, count)
		st.node = make([]int32, count)
		st.port = make([]int32, count)
		st.queue = make([]int32, count)
		st.qb = make([]int64, count)
	}
	st.kinds = st.kinds[:count]
	st.bits = st.bits[:count]
	st.node = st.node[:count]
	st.port = st.port[:count]
	st.queue = st.queue[:count]
	st.qb = st.qb[:count]
}

// present counts the chunk's events with bit set in their field bitmap.
func (st *StreamStats) present(count int, bit uint16) int {
	n := 0
	for i := 0; i < count; i++ {
		if st.bits[i]&bit != 0 {
			n++
		}
	}
	return n
}

// readCol32 decodes one 32-bit varint column into dst; a clear bit is a
// zero value.
func (st *StreamStats) readCol32(d *BinaryReader, count int, bit uint16, dst []int32) error {
	for i := 0; i < count; i++ {
		if st.bits[i]&bit == 0 {
			dst[i] = 0
			continue
		}
		v, err := d.readInt32()
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// readCol64 decodes one 64-bit varint column into dst; a clear bit is a
// zero value.
func (st *StreamStats) readCol64(d *BinaryReader, count int, bit uint16, dst []int64) error {
	for i := 0; i < count; i++ {
		if st.bits[i]&bit == 0 {
			dst[i] = 0
			continue
		}
		v, err := binary.ReadVarint(d.br)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// skipVarints parses one varint column without storing it.
func (st *StreamStats) skipVarints(d *BinaryReader, count int, bit uint16) error {
	n := st.present(count, bit)
	for j := 0; j < n; j++ {
		if _, err := binary.ReadUvarint(d.br); err != nil {
			return err
		}
	}
	return nil
}

// DepthKeys returns the depth-summary keys sorted by (node, port,
// queue), matching DepthSummaries' deterministic iteration order.
func (st *StreamStats) DepthKeys() []QueueKey {
	return sortedQueueKeys(st.Depths)
}

// LooksBinary reports whether the stream at br's current position
// carries a binary trace, by peeking at the magic header without
// consuming it.
func LooksBinary(br *bufio.Reader) bool {
	head, err := br.Peek(len(binaryMagic))
	return err == nil && bytes.Equal(head, []byte(binaryMagic))
}
