package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Ring is a preallocated circular buffer of trace events. Appends are
// O(1), never allocate, and — by default — overwrite the oldest record
// once the ring is full, so a long simulation keeps its most recent
// window instead of growing without bound. Total() minus Len() says how
// many records the wrap discarded.
//
// Attaching a SpillWriter (SetSpill) changes the full-ring policy from
// overwrite to flush: the retained events are streamed into the spill
// sink oldest-first and the ring empties, so nothing is ever lost and
// Dropped() stays 0. The spill sink absorbs I/O errors without
// disturbing the hot Append path; they surface from FlushSpill (or the
// next flush) instead.
type Ring struct {
	buf   []Event
	head  int    // index of the oldest retained event
	n     int    // retained events
	total uint64 // events ever appended

	spill    *SpillWriter
	spillErr error
}

// NewRing returns a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// SetSpill attaches a spill sink. Must be called before the first
// Append: a ring switches between overwrite and spill semantics only
// while empty, so a trace is never part-window, part-stream.
func (r *Ring) SetSpill(s *SpillWriter) {
	if r.total != 0 {
		panic("obs: SetSpill on a ring that has recorded events")
	}
	r.spill = s
}

// Append records an event. When full: spill-flush if a sink is
// attached, otherwise overwrite the oldest.
func (r *Ring) Append(ev Event) { *r.nextSlot() = ev }

// nextSlot claims the slot the next event will occupy, applying the
// full-ring policy first. This is the hot emit path: probes build the
// event directly in the returned slot, so a record never exists
// anywhere else. The caller must overwrite the slot completely (it
// still holds a long-evicted event).
func (r *Ring) nextSlot() *Event {
	if r.n == len(r.buf) {
		if r.spill != nil {
			r.flushSpill()
		} else {
			r.head++
			if r.head == len(r.buf) {
				r.head = 0
			}
			r.n--
		}
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.n++
	r.total++
	return &r.buf[i]
}

// flushSpill streams the retained events into the spill sink oldest
// first (at most two contiguous segments) and empties the ring. Errors
// are recorded, not returned: Append must stay infallible on the hot
// path, and a trace-file error should fail the export, not the run.
func (r *Ring) flushSpill() {
	for _, seg := range r.segments() {
		if len(seg) == 0 {
			continue
		}
		if err := r.spill.Spill(seg); err != nil && r.spillErr == nil {
			r.spillErr = err
		}
	}
	r.head, r.n = 0, 0
}

// segments returns the retained events oldest-first as up to two
// contiguous slices of the backing array (no copying).
func (r *Ring) segments() [2][]Event {
	if r.head+r.n <= len(r.buf) {
		return [2][]Event{r.buf[r.head : r.head+r.n], nil}
	}
	return [2][]Event{r.buf[r.head:], r.buf[:r.head+r.n-len(r.buf)]}
}

// FlushSpill pushes the retained events into the spill sink and reports
// the first error any spill encountered (including earlier deferred
// ones). It does not Close the sink. Calling it with no sink attached
// is an error only if events would be stranded — a no-op on an empty
// ring.
func (r *Ring) FlushSpill() error {
	if r.spill == nil {
		if r.n == 0 {
			return nil
		}
		return fmt.Errorf("obs: FlushSpill on a ring with no spill sink")
	}
	r.flushSpill()
	return r.spillErr
}

// SpillErr returns the first deferred spill error, if any.
func (r *Ring) SpillErr() error { return r.spillErr }

// Spill returns the attached spill sink (nil if none).
func (r *Ring) Spill() *SpillWriter { return r.spill }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of retained (in-memory) events.
func (r *Ring) Len() int { return r.n }

// Total returns the number of events ever appended (retained + spilled
// + lost to wraparound).
func (r *Ring) Total() uint64 { return r.total }

// Spilled returns the number of events flushed to the spill sink.
func (r *Ring) Spilled() uint64 {
	if r.spill == nil {
		return 0
	}
	return r.spill.Spilled()
}

// Dropped returns the number of events lost to wraparound. With a spill
// sink attached it is always 0.
func (r *Ring) Dropped() uint64 { return r.total - r.Spilled() - uint64(r.n) }

// Do calls fn on every retained event, oldest first. The pointer is
// only valid for the duration of the call. Spilled events are not
// revisited — read the spill file for the full stream.
func (r *Ring) Do(fn func(ev *Event)) {
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		fn(&r.buf[j])
	}
}

// Events returns the retained events oldest-first as a fresh slice.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.n)
	r.Do(func(ev *Event) { out = append(out, *ev) })
	return out
}

// WriteJSONL writes the retained events to w, one JSON object per line,
// oldest first, through a buffered writer flushed before return. The
// inverse is ReadJSONL.
func (r *Ring) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriterSize(w, traceBufSize)
	enc := json.NewEncoder(bw) // Encode appends '\n' after each value
	var err error
	r.Do(func(ev *Event) {
		if err == nil {
			err = enc.Encode(ev)
		}
	})
	if err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return bw.Flush()
}

// WriteBinary writes the retained events to w in the binary trace
// format. The inverse is ReadBinary (or ReadJSONL, which auto-detects).
func (r *Ring) WriteBinary(w io.Writer) error {
	return WriteBinary(w, r.Events())
}

// ReadJSONL parses a trace back into events. Despite the name it
// auto-detects the format from the leading bytes, so it accepts both
// JSONL traces (as written by WriteJSONL) and binary traces — existing
// callers keep working when a trace file switches format. Blank lines
// are skipped in JSONL; a malformed line fails with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, traceBufSize)
	head, err := br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	if bytes.Equal(head, []byte(binaryMagic)) {
		return ReadBinary(br)
	}
	return readJSONLFrom(br)
}

// readJSONLFrom is the JSONL scanner core shared by ReadJSONL and
// ReadTrace, after format detection has already consumed nothing.
func readJSONLFrom(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return out, nil
}
