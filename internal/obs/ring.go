package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Ring is a preallocated circular buffer of trace events. Appends are
// O(1), never allocate, and overwrite the oldest record once the ring
// is full — a long simulation keeps its most recent window instead of
// growing without bound. Total() minus Len() says how many records the
// wrap discarded.
type Ring struct {
	buf   []Event
	total uint64 // events ever appended
}

// NewRing returns a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Append records an event, overwriting the oldest when full.
func (r *Ring) Append(ev Event) {
	r.buf[int(r.total%uint64(len(r.buf)))] = ev
	r.total++
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of events ever appended (retained + lost to
// wraparound).
func (r *Ring) Total() uint64 { return r.total }

// Dropped returns the number of events lost to wraparound.
func (r *Ring) Dropped() uint64 { return r.total - uint64(r.Len()) }

// Do calls fn on every retained event, oldest first. The pointer is
// only valid for the duration of the call.
func (r *Ring) Do(fn func(ev *Event)) {
	n := r.Len()
	start := int(r.total) - n
	for i := 0; i < n; i++ {
		fn(&r.buf[(start+i)%len(r.buf)])
	}
}

// Events returns the retained events oldest-first as a fresh slice.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.Len())
	r.Do(func(ev *Event) { out = append(out, *ev) })
	return out
}

// WriteJSONL writes the retained events to w, one JSON object per line,
// oldest first. The inverse is ReadJSONL.
func (r *Ring) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends '\n' after each value
	var err error
	r.Do(func(ev *Event) {
		if err == nil {
			err = enc.Encode(ev)
		}
	})
	if err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace (as written by WriteJSONL) back into
// events. Blank lines are skipped; a malformed line fails with its line
// number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read trace: %w", err)
	}
	return out, nil
}
