package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"pmsb/internal/pkt"
)

// rangeFixture builds a multi-chunk binary trace: chunkSizes[i] events
// per BinaryWriter.Write call (each call is one chunk on the wire), at
// one event per microsecond of virtual time.
func rangeFixture(t *testing.T, chunkSizes ...int) ([]byte, []Event) {
	t.Helper()
	var all []Event
	seq := uint64(0)
	for _, n := range chunkSizes {
		for i := 0; i < n; i++ {
			all = append(all, Event{
				Seq: seq, T: time.Duration(seq) * time.Microsecond,
				Kind: KindEnqueue, Node: pkt.NodeID(seq % 5), Port: int32(seq % 3),
				Queue: int32(seq % 4), Pkt: seq, Size: 1500,
				PortBytes: int64(1500 * (seq%7 + 1)), QueueBytes: 1500,
			})
			seq++
		}
	}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	off := 0
	for _, n := range chunkSizes {
		if err := w.Write(all[off : off+n]); err != nil {
			t.Fatalf("Write: %v", err)
		}
		off += n
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes(), all
}

// filterEvents is the reference semantics: keep events with
// since <= T <= until.
func filterEvents(events []Event, since, until time.Duration) []Event {
	var out []Event
	for _, ev := range events {
		if ev.T >= since && ev.T <= until {
			out = append(out, ev)
		}
	}
	return out
}

// ReadBinaryRange must agree with read-everything-then-filter for every
// cut of a multi-chunk trace — including cuts that skip leading chunks,
// trailing chunks, or land mid-chunk. Skipped chunks still advance the
// cross-chunk seq/T delta state, which is what this differential
// exercises.
func TestReadBinaryRangeDifferential(t *testing.T) {
	raw, all := rangeFixture(t, 100, 100, 100, 50)
	last := all[len(all)-1].T
	cuts := []struct {
		name         string
		since, until time.Duration
	}{
		{"all", 0, last},
		{"everything-and-more", 0, 1 << 62},
		{"skip-first-chunk", 150 * time.Microsecond, last},
		{"skip-last-chunks", 0, 120 * time.Microsecond},
		{"mid-chunk-to-mid-chunk", 150 * time.Microsecond, 250 * time.Microsecond},
		{"interior-chunk-only", 100 * time.Microsecond, 199 * time.Microsecond},
		{"single-event", 200 * time.Microsecond, 200 * time.Microsecond},
		{"empty-before", 0, 0},
		{"empty-between-events", 100*time.Microsecond + 1, 101*time.Microsecond - 1},
		{"empty-after", last + 1, 1 << 62},
	}
	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			got, err := ReadBinaryRange(bytes.NewReader(raw), cut.since, cut.until)
			if err != nil {
				t.Fatalf("ReadBinaryRange: %v", err)
			}
			want := filterEvents(all, cut.since, cut.until)
			if len(got) != len(want) {
				t.Fatalf("got %d events, want %d", len(got), len(want))
			}
			if len(want) > 0 && !reflect.DeepEqual(got, want) {
				t.Fatalf("range read diverges from filtered full read")
			}
		})
	}
}

// The range reader handles every column layout, not just the dense
// enqueue mix: run the representative fixture (zero-heavy flow events,
// floats, drop reasons) through a range that keeps part of it.
func TestReadBinaryRangeMixedKinds(t *testing.T) {
	all := traceFixture()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	// Two chunks so one is skimmed when the range excludes it.
	if err := w.Write(all[:4]); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Write(all[4:]); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	since := 2 * time.Microsecond
	until := 4 * time.Millisecond
	got, err := ReadBinaryRange(bytes.NewReader(buf.Bytes()), since, until)
	if err != nil {
		t.Fatalf("ReadBinaryRange: %v", err)
	}
	want := filterEvents(all, since, until)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed-kind range read mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// ReadTraceRange applies the same [since, until] semantics to both
// formats, auto-detected like ReadTrace.
func TestReadTraceRangeBothFormats(t *testing.T) {
	all := traceFixture()
	since, until := 1500*time.Nanosecond, 3*time.Millisecond

	var bin bytes.Buffer
	if err := WriteBinary(&bin, all); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	var jsonl bytes.Buffer
	sw := NewSpillWriter(&jsonl, FormatJSONL)
	if err := sw.Spill(all); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	want := filterEvents(all, since, until)
	for name, raw := range map[string][]byte{"binary": bin.Bytes(), "jsonl": jsonl.Bytes()} {
		t.Run(name, func(t *testing.T) {
			got, err := ReadTraceRange(bytes.NewReader(raw), since, until)
			if err != nil {
				t.Fatalf("ReadTraceRange: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s range read mismatch:\n got %+v\nwant %+v", name, got, want)
			}
		})
	}

	if _, err := ReadTraceRange(strings.NewReader("not a trace"), 0, time.Second); err == nil {
		t.Fatal("garbage input did not error")
	}
}
