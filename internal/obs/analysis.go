package obs

import (
	"sort"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/stats"
)

// This file is the trace-analysis side of the layer: pure functions
// over []Event that rebuild the figures the paper plots — queue-depth
// time series and percentiles, mark-rate timelines, per-flow summaries.
// cmd/pmsbstat is a thin shell around them. Because port events carry
// absolute occupancy (PortBytes/QueueBytes), every reconstruction here
// survives ring wraparound: losing the oldest events narrows the
// window, it never skews the values.

// QueueKey identifies one queue of one port in a trace.
type QueueKey struct {
	Node  pkt.NodeID
	Port  int32
	Queue int32
}

// DepthSummaries aggregates the queue-occupancy samples of every
// enqueue/dequeue event into a per-queue Summary of QueueBytes. The
// second return is the key set sorted by (node, port, queue) for
// deterministic iteration.
func DepthSummaries(events []Event) (map[QueueKey]*stats.Summary, []QueueKey) {
	out := make(map[QueueKey]*stats.Summary)
	for i := range events {
		ev := &events[i]
		if ev.Kind != KindEnqueue && ev.Kind != KindDequeue {
			continue
		}
		k := QueueKey{Node: ev.Node, Port: ev.Port, Queue: ev.Queue}
		s := out[k]
		if s == nil {
			s = &stats.Summary{}
			out[k] = s
		}
		s.Add(float64(ev.QueueBytes))
	}
	return out, sortedQueueKeys(out)
}

// sortedQueueKeys extracts a summary map's key set sorted by (node,
// port, queue).
func sortedQueueKeys(m map[QueueKey]*stats.Summary) []QueueKey {
	keys := make([]QueueKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		if keys[i].Port != keys[j].Port {
			return keys[i].Port < keys[j].Port
		}
		return keys[i].Queue < keys[j].Queue
	})
	return keys
}

// DepthTrace extracts the occupancy-versus-time series of one queue
// (queue >= 0: QueueBytes of that queue) or of the whole port
// (queue < 0: PortBytes), in event order — the raw form of the paper's
// queue-length figures.
func DepthTrace(events []Event, node pkt.NodeID, port int32, queue int32) stats.Trace {
	var tr stats.Trace
	for i := range events {
		ev := &events[i]
		if ev.Kind != KindEnqueue && ev.Kind != KindDequeue {
			continue
		}
		if ev.Node != node || ev.Port != port {
			continue
		}
		if queue >= 0 {
			if ev.Queue != queue {
				continue
			}
			tr.Record(ev.T, float64(ev.QueueBytes))
			continue
		}
		tr.Record(ev.T, float64(ev.PortBytes))
	}
	return tr
}

// MarkSeries bins CE marks and dequeued packets into bin-wide counts;
// dividing the two yields the mark-rate timeline.
func MarkSeries(events []Event, bin time.Duration) (marks, dequeues *stats.TimeSeries) {
	marks = stats.NewTimeSeries(bin)
	dequeues = stats.NewTimeSeries(bin)
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindMark:
			marks.Add(ev.T, 1)
		case KindDequeue:
			dequeues.Add(ev.T, 1)
		}
	}
	return marks, dequeues
}

// CountKinds tallies the events by kind.
func CountKinds(events []Event) map[Kind]int {
	out := make(map[Kind]int)
	for i := range events {
		out[events[i].Kind]++
	}
	return out
}

// Segments counts the independent simulation runs in a trace: an
// experiment that runs several configurations back to back emits them
// into one bus, and each new engine restarts virtual time at zero.
// A fresh segment begins wherever time goes backwards.
func Segments(events []Event) int {
	if len(events) == 0 {
		return 0
	}
	segs := 1
	last := events[0].T
	for i := 1; i < len(events); i++ {
		if events[i].T < last {
			segs++
		}
		last = events[i].T
	}
	return segs
}

// FlowsFromEvents rebuilds per-flow records from a serialized trace, in
// flow-start order. It is the offline counterpart of the live
// FlowTable: marks-seen here counts switch-side KindMark events for the
// flow (the sender-side signal counters are not traced per event), and
// progress comes from alpha/finish events. Flows whose start fell off a
// wrapped ring are still created at first sight with a zero Start.
func FlowsFromEvents(events []Event) []*FlowRecord {
	t := NewFlowTable()
	for i := range events {
		ev := &events[i]
		if ev.Flow == 0 {
			continue
		}
		switch ev.Kind {
		case KindFlowStart:
			rec := t.open(ev.Flow)
			rec.Start = ev.T
			rec.Size = ev.Size
			rec.Service = int(ev.Queue)
		case KindFlowFinish:
			rec := t.open(ev.Flow)
			rec.Finished = true
			rec.Finish = ev.T
			rec.FCT = time.Duration(ev.V)
			rec.Bytes = ev.Size
		case KindMark:
			t.open(ev.Flow).MarksSeen++
		case KindCwndCut:
			t.open(ev.Flow).CwndCuts++
		case KindRetransmit:
			t.open(ev.Flow).Retransmits++
		case KindRTO:
			t.open(ev.Flow).RTOs++
		case KindAlpha:
			rec := t.open(ev.Flow)
			rec.LastAlpha = ev.V
			if ev.Size > rec.Bytes {
				rec.Bytes = ev.Size
			}
		}
	}
	return t.Records()
}
