// Package obs is the simulator-wide observability layer: a typed trace
// bus of compact event records, a registry of named metrics, and
// per-flow telemetry assembled from transport events. Every layer of
// the simulator — switch ports, PFC controllers, ECN markers, transport
// senders — emits into one Bus, and experiments, CLIs (`pmsbsim
// -tracefile`, `cmd/pmsbstat`) and tests read the collected state back
// instead of hand-rolling accumulators and port taps.
//
// The contract that keeps the layer usable on the hot path: when
// observability is disabled (a nil *Bus, the default everywhere), every
// emit point is a nil pointer check and nothing else — zero allocations
// and effectively zero time. When enabled, emitting is still
// allocation-free at steady state: events are fixed-size value records
// appended to a preallocated ring buffer (no interface boxing of ints),
// counters are direct pointer increments, and serialization (JSONL)
// happens only at export time. internal/netsim/alloc_test.go proves
// both properties with AllocsPerRun guards.
//
// Probes bind an emitter to its identity once, off the hot path: a
// switch port holds a *PortProbe (its PortID plus pre-registered
// counters), a transport sender holds a *FlowProbe (its live
// *FlowRecord). Emit calls then carry only per-event state.
package obs

import (
	"fmt"
	"time"

	"pmsb/internal/pkt"
)

// Kind identifies the type of a trace event.
type Kind uint8

const (
	// KindEnqueue: a packet was admitted to a port queue. PortBytes and
	// QueueBytes carry the occupancy after the enqueue.
	KindEnqueue Kind = iota + 1
	// KindDequeue: a packet began transmission. PortBytes and QueueBytes
	// carry the occupancy after the packet left the queue.
	KindDequeue
	// KindDrop: a packet was refused at admission. Reason says which
	// admission gate refused it.
	KindDrop
	// KindMark: the port's marker CE-marked a packet. PortBytes and
	// QueueBytes carry the occupancy the marking decision observed.
	KindMark
	// KindBlind: PMSB's selective-blindness filter suppressed a would-be
	// per-port mark (port over threshold, queue under its filter
	// threshold). V carries the per-queue filter threshold in bytes.
	KindBlind
	// KindPFCPause / KindPFCResume: a PFC controller crossed Xoff / Xon.
	// PortBytes carries the guarded buffered bytes.
	KindPFCPause
	KindPFCResume
	// KindFlowStart: a transport sender started. Size is the flow size
	// in bytes (0 for long-lived flows).
	KindFlowStart
	// KindFlowFinish: the last byte was acked. V carries the FCT in
	// nanoseconds.
	KindFlowFinish
	// KindCwndCut: a DCTCP/D2TCP sender cut its window. V carries the
	// new cwnd in segments.
	KindCwndCut
	// KindRetransmit: a segment was retransmitted. Pkt carries the
	// retransmitted sequence number.
	KindRetransmit
	// KindRTO: a retransmission timeout fired.
	KindRTO
	// KindAlpha: a congestion estimator refreshed alpha. V carries the
	// new alpha.
	KindAlpha
	// KindRate: a rate-based transport (TIMELY, DCQCN) changed its rate.
	// V carries the new rate in bits/sec.
	KindRate

	numKinds
)

var kindNames = [numKinds]string{
	KindEnqueue:    "enqueue",
	KindDequeue:    "dequeue",
	KindDrop:       "drop",
	KindMark:       "mark",
	KindBlind:      "blind",
	KindPFCPause:   "pfc-pause",
	KindPFCResume:  "pfc-resume",
	KindFlowStart:  "flow-start",
	KindFlowFinish: "flow-finish",
	KindCwndCut:    "cwnd-cut",
	KindRetransmit: "retx",
	KindRTO:        "rto",
	KindAlpha:      "alpha",
	KindRate:       "rate",
}

// Kinds returns every defined event kind in declaration order, for
// deterministic kind-indexed reporting.
func Kinds() []Kind {
	out := make([]Kind, 0, numKinds-1)
	for k := Kind(1); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name, keeping JSONL traces
// readable and stable across reorderings of the enum.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses a kind name (the inverse of MarshalJSON).
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("obs: malformed kind %s", b)
	}
	name := string(b[1 : len(b)-1])
	for i, n := range kindNames {
		if n == name {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown kind %q", name)
}

// DropReason says which admission gate refused a dropped packet.
type DropReason uint8

const (
	// DropInjected: the port's failure-injection DropFn discarded it.
	DropInjected DropReason = iota + 1
	// DropPortBuffer: the per-port buffer capacity was exceeded.
	DropPortBuffer
	// DropSharedBuffer: the switch-wide Dynamic Threshold pool refused
	// admission.
	DropSharedBuffer
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropInjected:
		return "injected"
	case DropPortBuffer:
		return "port-buffer"
	case DropSharedBuffer:
		return "shared-buffer"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// PortID identifies a switch (or NIC) output port in a topology.
type PortID struct {
	// Node is the owning switch or host.
	Node pkt.NodeID `json:"node"`
	// Port is the port index within the node.
	Port int32 `json:"port"`
}

// Event is one trace record. It is a fixed-size value type — no
// pointers, no interfaces — so appending one to the ring buffer moves a
// few words and never allocates, and a full ring costs the garbage
// collector nothing to scan.
//
// Field use is kind-specific (see the Kind constants); unused fields
// are zero and omitted from JSONL.
type Event struct {
	// Seq is the bus-assigned sequence number: a strict total order over
	// every event the bus recorded, stable across runs of the same
	// deterministic simulation.
	Seq uint64 `json:"seq"`
	// T is the virtual time of the event in nanoseconds.
	T time.Duration `json:"t"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Node and Port identify the emitting port (port events) or are
	// NoNode/-1 for events without a port identity (flow events, blind).
	Node pkt.NodeID `json:"node"`
	Port int32      `json:"port"`
	// Queue is the port queue index (-1 when not applicable).
	Queue int32 `json:"q"`
	// Flow is the transport flow, when known (0 otherwise).
	Flow pkt.FlowID `json:"flow,omitempty"`
	// Pkt is the packet ID for packet events, and the retransmitted
	// sequence number for KindRetransmit.
	Pkt uint64 `json:"pkt,omitempty"`
	// Size is the packet wire size (packet events) or the flow size
	// (KindFlowStart).
	Size int64 `json:"size,omitempty"`
	// Reason is the admission gate for KindDrop.
	Reason DropReason `json:"reason,omitempty"`
	// PortBytes / QueueBytes carry absolute occupancy so depth series
	// reconstructed from a wrapped ring stay correct (no dependence on
	// events lost to the wrap).
	PortBytes  int64 `json:"pb,omitempty"`
	QueueBytes int64 `json:"qb,omitempty"`
	// V is the kind-specific scalar: FCT ns (flow-finish), cwnd segments
	// (cwnd-cut), alpha (alpha), rate bits/sec (rate), filter threshold
	// bytes (blind).
	V float64 `json:"v,omitempty"`
}

// Bus is the simulator-wide observability hub: it assigns event
// sequence numbers, appends records to the optional ring buffer, and
// keeps the metrics registry and the per-flow table up to date. A nil
// *Bus is the disabled layer: every method on a nil receiver returns
// immediately, so emit points pay only a pointer test.
//
// A Bus (like the engines that feed it) is not safe for concurrent use:
// attach one bus to one simulation.
type Bus struct {
	ring  *Ring
	reg   *Registry
	flows *FlowTable
	seq   uint64
	lean  bool
}

// NewBus returns a bus with a metrics registry, a flow table and — when
// ringCap > 0 — an event ring of that capacity. ringCap == 0 disables
// event recording but keeps metrics and flow records live.
func NewBus(ringCap int) *Bus {
	b := &Bus{reg: NewRegistry(), flows: NewFlowTable()}
	if ringCap > 0 {
		b.ring = NewRing(ringCap)
	}
	return b
}

// NewTraceBus returns a bus tuned for full-run event capture: the ring
// and flow table are live, but ObservePort skips the per-port counter
// blocks, so packet events pay only the ring append. Use it when the
// trace file is the product and nothing will read Metrics() — the
// registry stays present (bus-level counters like PFC pauses still
// land) but has no per-port rows.
func NewTraceBus(ringCap int) *Bus {
	b := NewBus(ringCap)
	b.lean = true
	return b
}

// Ring returns the event ring (nil when recording is disabled).
func (b *Bus) Ring() *Ring {
	if b == nil {
		return nil
	}
	return b.ring
}

// Metrics returns the bus's metrics registry (nil on a nil bus).
func (b *Bus) Metrics() *Registry {
	if b == nil {
		return nil
	}
	return b.reg
}

// Flows returns the bus's flow table (nil on a nil bus).
func (b *Bus) Flows() *FlowTable {
	if b == nil {
		return nil
	}
	return b.flows
}

// record stamps the next sequence number and appends to the ring, when
// one exists. Emitters build the Event on their stack and pass a
// pointer; the ring slot assignment is the only full-struct copy. The
// per-packet probes use slot instead — record stays for the low-rate
// emit points where a struct literal reads better.
func (b *Bus) record(ev *Event) {
	if b.ring == nil {
		return
	}
	ev.Seq = b.seq
	b.seq++
	*b.ring.nextSlot() = *ev
}

// slot claims the next ring slot pre-stamped with sequence number,
// time and kind, or returns nil when recording is disabled. The caller
// fills the remaining fields in place — the event is built where it
// will live and is never copied. The hot emit path.
func (b *Bus) slot(t time.Duration, k Kind) *Event {
	if b.ring == nil {
		return nil
	}
	ev := b.ring.nextSlot()
	*ev = Event{Seq: b.seq, T: t, Kind: k}
	b.seq++
	return ev
}

// PFCPause records a PFC controller crossing Xoff on the given node.
func (b *Bus) PFCPause(t time.Duration, node pkt.NodeID, buffered int) {
	if b == nil {
		return
	}
	b.reg.pfcPauses.Add(1)
	b.record(&Event{T: t, Kind: KindPFCPause, Node: node, Port: -1, Queue: -1,
		PortBytes: int64(buffered)})
}

// PFCResume records a PFC controller draining below Xon.
func (b *Bus) PFCResume(t time.Duration, node pkt.NodeID, buffered int) {
	if b == nil {
		return
	}
	b.record(&Event{T: t, Kind: KindPFCResume, Node: node, Port: -1, Queue: -1,
		PortBytes: int64(buffered)})
}

// Blind records a PMSB selective-blindness suppression: the port was
// over its threshold but queue q sat under its filter threshold, so the
// would-be per-port mark was withheld. The marker has no port identity
// (markers see only an ecn.PortView), so Node/Port are unset.
func (b *Bus) Blind(t time.Duration, q int, portBytes, queueBytes int, threshold float64) {
	if b == nil {
		return
	}
	b.reg.blinds.Add(1)
	b.record(&Event{T: t, Kind: KindBlind, Node: pkt.NoNode, Port: -1,
		Queue: int32(q), PortBytes: int64(portBytes), QueueBytes: int64(queueBytes),
		V: threshold})
}
