package obs

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"pmsb/internal/pkt"
)

// traceFixture is a representative event mix: every kind, negative
// identity fields (NoNode/-1), zero-heavy flow events, float payloads,
// and non-monotonic inter-bus timestamps do not appear (a single bus is
// time-ordered) but large T gaps do.
func traceFixture() []Event {
	return []Event{
		{Seq: 0, T: 0, Kind: KindFlowStart, Node: pkt.NoNode, Port: -1, Queue: -1,
			Flow: 7, Size: 1 << 20},
		{Seq: 1, T: 1500 * time.Nanosecond, Kind: KindEnqueue, Node: 3, Port: 2,
			Queue: 1, Flow: 7, Pkt: 42, Size: 1500, PortBytes: 3000, QueueBytes: 1500},
		{Seq: 2, T: 1500 * time.Nanosecond, Kind: KindMark, Node: 3, Port: 2,
			Queue: 1, Pkt: 42, PortBytes: 3000, QueueBytes: 1500},
		{Seq: 3, T: 2 * time.Microsecond, Kind: KindBlind, Node: pkt.NoNode, Port: -1,
			Queue: 5, PortBytes: 90000, QueueBytes: 200, V: 512.5},
		{Seq: 4, T: 2 * time.Microsecond, Kind: KindDrop, Node: 9, Port: 0,
			Queue: 3, Pkt: 43, Size: 9000, Reason: DropSharedBuffer},
		{Seq: 5, T: 3 * time.Millisecond, Kind: KindPFCPause, Node: 4, Port: -1,
			Queue: -1, PortBytes: 65536},
		{Seq: 6, T: 3*time.Millisecond + 1, Kind: KindCwndCut, Node: pkt.NoNode,
			Port: -1, Queue: -1, Flow: 7, V: 8},
		{Seq: 7, T: time.Second, Kind: KindFlowFinish, Node: pkt.NoNode, Port: -1,
			Queue: -1, Flow: 7, V: 1.0004e9},
	}
}

func TestBinaryTraceRoundTrip(t *testing.T) {
	want := traceFixture()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, want); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	// The issue's size target: ~32-48 B/record ceiling; the columnar
	// codec should land well under it on a representative mix.
	if perEv := buf.Len() / len(want); perEv > 48 {
		t.Errorf("binary encoding %d B/event, want <= 48", perEv)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestBinaryTraceJSONLDifferential is the codec-level differential:
// the same events through both codecs decode identically, and
// converting binary->JSONL->binary is byte-identical.
func TestBinaryTraceJSONLDifferential(t *testing.T) {
	events := traceFixture()
	r := NewRing(len(events))
	for _, ev := range events {
		r.Append(ev)
	}

	var jsonl, bin bytes.Buffer
	if err := r.WriteJSONL(&jsonl); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := r.WriteBinary(&bin); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	fromJSONL, err := ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	fromBin, err := ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(fromJSONL, fromBin) {
		t.Fatalf("codec differential mismatch:\n jsonl %+v\n   bin %+v", fromJSONL, fromBin)
	}

	// Convert both ways; re-encoding the decoded events must be
	// byte-identical in each format (the codecs are canonical).
	var bin2 bytes.Buffer
	if err := WriteBinary(&bin2, fromJSONL); err != nil {
		t.Fatalf("WriteBinary(decoded JSONL): %v", err)
	}
	if !bytes.Equal(bin.Bytes(), bin2.Bytes()) {
		t.Error("jsonl->binary conversion not byte-identical to direct binary encoding")
	}
	r2 := NewRing(len(fromBin))
	for _, ev := range fromBin {
		r2.Append(ev)
	}
	var jsonl2 bytes.Buffer
	if err := r2.WriteJSONL(&jsonl2); err != nil {
		t.Fatalf("WriteJSONL(decoded binary): %v", err)
	}
	if !bytes.Equal(jsonl.Bytes(), jsonl2.Bytes()) {
		t.Error("binary->jsonl conversion not byte-identical to direct JSONL encoding")
	}
}

// TestBinaryTraceZeroFields: an event whose optional fields are all
// zero encodes an empty bitmap (its whole record is the four mandatory
// columns — delta, delta, kind, bitmap — at one byte each) and decodes
// back to the zero values.
func TestBinaryTraceZeroFields(t *testing.T) {
	want := []Event{{Seq: 0, T: 0, Kind: KindRTO}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, want); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	if wantLen := len(binaryMagic) + 1 + 4; buf.Len() != wantLen {
		t.Errorf("zero-field record = %d bytes, want %d (magic + count + 4 one-byte columns)",
			buf.Len(), wantLen)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

// TestBinaryTraceMaxDeltas: extreme Seq/T jumps (up to the full 64-bit
// range, including backwards T between merged streams) survive the
// delta coding via two's-complement wraparound.
func TestBinaryTraceMaxDeltas(t *testing.T) {
	want := []Event{
		{Seq: 0, T: math.MaxInt64, Kind: KindEnqueue},
		{Seq: math.MaxUint64, T: math.MinInt64, Kind: KindDequeue},
		{Seq: 1, T: 0, Kind: KindRate, V: math.MaxFloat64},
		{Seq: 2, T: -1, Kind: KindAlpha, V: math.SmallestNonzeroFloat64,
			Size: math.MinInt64, PortBytes: math.MaxInt64, QueueBytes: math.MinInt64,
			Flow: math.MaxUint64, Pkt: math.MaxUint64},
		{Seq: 3, T: 1, Kind: KindRetransmit, Node: math.MinInt32, Port: math.MaxInt32,
			Queue: math.MinInt32},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, want); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v,\nwant %+v", got, want)
	}
}

// TestBinaryTraceChunkBoundaries: streams spanning several writer
// chunks keep the running deltas intact, including when fed through
// multiple Write calls of awkward sizes.
func TestBinaryTraceChunkBoundaries(t *testing.T) {
	const n = writerChunkEvents*2 + 37
	want := make([]Event, n)
	for i := range want {
		want[i] = Event{Seq: uint64(i), T: time.Duration(i) * 17,
			Kind: Kind(1 + i%(int(numKinds)-1)), Node: pkt.NodeID(i % 5), Port: int32(i % 3)}
	}
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	// Deliberately misaligned batches.
	for off := 0; off < n; {
		end := off + writerChunkEvents - 13
		if end > n {
			end = n
		}
		if err := bw.Write(want[off:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
		off = end
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("multi-chunk round trip mismatch")
	}
}

func TestBinaryTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatalf("WriteBinary(nil): %v", err)
	}
	if buf.String() != binaryMagic {
		t.Fatalf("empty trace = %q, want bare magic", buf.String())
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary(empty): %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace decoded %d events", len(got))
	}
}

func TestBinaryTraceCorruptMagic(t *testing.T) {
	for _, in := range []string{"", "PMSB", "PMSBTRC0", "XXXXXXXX", "{\"seq\":0}"} {
		if _, err := ReadBinary(strings.NewReader(in)); err == nil {
			t.Errorf("ReadBinary(%q): no error", in)
		}
	}
}

// TestBinaryTraceTruncated: every proper prefix of a valid trace either
// decodes cleanly (chunks are self-contained) or errors — never panics,
// never fabricates events.
func TestBinaryTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, traceFixture()); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		events, err := ReadBinary(bytes.NewReader(full[:cut]))
		if err == nil && cut < len(full) && len(events) != 0 {
			// A prefix that drops bytes of the single chunk must error;
			// only the bare magic (cut == len(magic)) decodes as empty.
			t.Fatalf("cut %d: decoded %d events without error", cut, len(events))
		}
	}
	// Corrupt chunk headers: count 0 and count > maxChunkEvents.
	for _, bad := range [][]byte{
		append([]byte(binaryMagic), 0x00),
		append([]byte(binaryMagic), 0x81, 0x80, 0x04), // 1<<16 + 1
	} {
		if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Error("corrupt chunk count accepted")
		}
	}
	// Unknown kind: count=1, seq delta 0, t delta 0, kind 0xEE.
	bad := append([]byte(binaryMagic), 0x01, 0x00, 0x00, 0xEE)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "kind") {
		t.Errorf("unknown kind: err = %v", err)
	}
	// Stray bitmap bits: valid kind, bitmap with bit 10 set.
	bad = append([]byte(binaryMagic), 0x01, 0x00, 0x00, 0x01, 0x80, 0x08)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "bitmap") {
		t.Errorf("stray bitmap bits: err = %v", err)
	}
}

// TestBinaryTraceAutoDetect: ReadJSONL and ReadTrace both accept either
// format, and ReadTrace rejects unrecognized input with a format error.
func TestBinaryTraceAutoDetect(t *testing.T) {
	events := traceFixture()
	r := NewRing(len(events))
	for _, ev := range events {
		r.Append(ev)
	}
	var jsonl, bin bytes.Buffer
	if err := r.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{"jsonl": jsonl.Bytes(), "bin": bin.Bytes()} {
		for fn, read := range map[string]func(io.Reader) ([]Event, error){
			"ReadJSONL": ReadJSONL, "ReadTrace": ReadTrace,
		} {
			got, err := read(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("%s(%s): %v", fn, name, err)
			}
			if !reflect.DeepEqual(got, events) {
				t.Fatalf("%s(%s): decoded events differ", fn, name)
			}
		}
	}
	// Empty input: zero events, no error, in both entry points.
	for fn, read := range map[string]func(io.Reader) ([]Event, error){
		"ReadJSONL": ReadJSONL, "ReadTrace": ReadTrace,
	} {
		got, err := read(strings.NewReader(""))
		if err != nil || len(got) != 0 {
			t.Fatalf("%s(empty) = %d events, %v", fn, len(got), err)
		}
	}
	// Unrecognized input names both formats in the error.
	_, err := ReadTrace(strings.NewReader("\x00\x01\x02 garbage"))
	if err == nil || !strings.Contains(err.Error(), "unrecognized trace format") {
		t.Fatalf("ReadTrace(garbage): err = %v", err)
	}
}

// TestBinaryTraceSpillLossless: a ring far smaller than the stream,
// with a spill sink attached, loses nothing — spilled + retained is the
// exact input sequence, and Dropped() stays 0.
func TestBinaryTraceSpillLossless(t *testing.T) {
	for _, format := range []TraceFormat{FormatBinary, FormatJSONL} {
		t.Run(format.String(), func(t *testing.T) {
			const ringCap, n = 64, 1000
			var file bytes.Buffer
			sw := NewSpillWriter(&file, format)
			r := NewRing(ringCap)
			r.SetSpill(sw)
			for i := 0; i < n; i++ {
				r.Append(Event{Seq: uint64(i), T: time.Duration(i * 3), Kind: KindEnqueue,
					Node: 1, Port: int32(i % 4), PortBytes: int64(i)})
			}
			if r.Dropped() != 0 {
				t.Fatalf("Dropped() = %d with spill attached", r.Dropped())
			}
			if err := r.FlushSpill(); err != nil {
				t.Fatalf("FlushSpill: %v", err)
			}
			if err := sw.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if sw.Spilled() != n {
				t.Fatalf("Spilled() = %d, want %d", sw.Spilled(), n)
			}
			got, err := ReadTrace(&file)
			if err != nil {
				t.Fatalf("ReadTrace: %v", err)
			}
			if len(got) != n {
				t.Fatalf("spill file holds %d events, want %d", len(got), n)
			}
			for i := range got {
				if got[i].Seq != uint64(i) {
					t.Fatalf("event %d: Seq = %d", i, got[i].Seq)
				}
			}
		})
	}
}

// TestBinaryTraceSpillOverwriteUnchanged: without a sink the ring keeps
// its historical overwrite-oldest behavior bit for bit.
func TestBinaryTraceSpillOverwriteUnchanged(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Seq: uint64(i), Kind: KindEnqueue})
	}
	if r.Total() != 10 || r.Len() != 4 || r.Dropped() != 6 {
		t.Fatalf("Total/Len/Dropped = %d/%d/%d, want 10/4/6",
			r.Total(), r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if ev.Seq != uint64(6+i) {
			t.Fatalf("retained[%d].Seq = %d, want %d", i, ev.Seq, 6+i)
		}
	}
	if err := r.FlushSpill(); err == nil {
		t.Fatal("FlushSpill with stranded events and no sink: no error")
	}
	// SetSpill after Append must panic: the semantics switch is only
	// legal on an empty ring.
	defer func() {
		if recover() == nil {
			t.Fatal("SetSpill after Append did not panic")
		}
	}()
	r.SetSpill(NewSpillWriter(io.Discard, FormatBinary))
}

// TestBinaryTraceMerge: MergeEvents interleaves per-bus streams by
// (T, stream, Seq) and is deterministic.
func TestBinaryTraceMerge(t *testing.T) {
	a := []Event{{Seq: 0, T: 1, Kind: KindEnqueue, Node: 1},
		{Seq: 1, T: 5, Kind: KindDequeue, Node: 1}}
	b := []Event{{Seq: 0, T: 1, Kind: KindEnqueue, Node: 2},
		{Seq: 1, T: 3, Kind: KindDequeue, Node: 2}}
	got := MergeEvents(a, b)
	wantNodes := []pkt.NodeID{1, 2, 2, 1}
	if len(got) != 4 {
		t.Fatalf("merged %d events, want 4", len(got))
	}
	for i, ev := range got {
		if ev.Node != wantNodes[i] {
			t.Fatalf("merge order: got node %d at %d, want %d", ev.Node, i, wantNodes[i])
		}
	}
	if len(MergeEvents()) != 0 || len(MergeEvents(nil, nil)) != 0 {
		t.Fatal("merging no/empty streams should yield no events")
	}
}

func TestBinaryTraceFormatHelpers(t *testing.T) {
	if f := FormatForPath("trace.bin"); f != FormatBinary {
		t.Errorf("FormatForPath(.bin) = %v", f)
	}
	if f := FormatForPath("trace.jsonl"); f != FormatJSONL {
		t.Errorf("FormatForPath(.jsonl) = %v", f)
	}
	if got := ShardTracePath("runs/trace.bin", 3); got != "runs/trace.shard3.bin" {
		t.Errorf("ShardTracePath = %q", got)
	}
	if got := ShardTracePath("trace", 0); got != "trace.shard0" {
		t.Errorf("ShardTracePath(no ext) = %q", got)
	}
	if _, err := ParseTraceFormat("xml"); err == nil {
		t.Error("ParseTraceFormat(xml): no error")
	}
	for _, s := range []string{"jsonl", "bin"} {
		f, err := ParseTraceFormat(s)
		if err != nil || f.String() != s {
			t.Errorf("ParseTraceFormat(%q) = %v, %v", s, f, err)
		}
	}
}

// FuzzReadBinary: the decoder must never panic or over-allocate on
// arbitrary input — errors only.
func FuzzReadBinary(f *testing.F) {
	// Seed corpus: valid traces of increasing complexity plus targeted
	// corruptions, so the fuzzer starts at the format's interesting
	// surfaces rather than rediscovering the magic.
	var empty bytes.Buffer
	_ = WriteBinary(&empty, nil)
	f.Add(empty.Bytes())
	var one bytes.Buffer
	_ = WriteBinary(&one, []Event{{Seq: 0, T: 1, Kind: KindEnqueue, Node: 1, Size: 1500}})
	f.Add(one.Bytes())
	var full bytes.Buffer
	_ = WriteBinary(&full, traceFixture())
	f.Add(full.Bytes())
	f.Add(full.Bytes()[:len(full.Bytes())-3])
	f.Add([]byte("PMSBTRC0"))
	f.Add(append([]byte(binaryMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF))
	f.Add(append([]byte(binaryMagic), 0x01, 0x00, 0x00, 0xEE))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same thing.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, events); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("re-decode: %d events, want %d", len(again), len(events))
		}
	})
}
