package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// fakePort is a minimal scriptable ecn.PortView.
type fakePort struct {
	queueBytes []int
	weights    []float64
	rate       units.Rate
	now        time.Duration
}

var _ ecn.PortView = (*fakePort)(nil)

func (f *fakePort) NumQueues() int         { return len(f.queueBytes) }
func (f *fakePort) QueueBytes(q int) int   { return f.queueBytes[q] }
func (f *fakePort) QueuePackets(q int) int { return f.queueBytes[q] / units.MTU }
func (f *fakePort) PortBytes() int {
	t := 0
	for _, b := range f.queueBytes {
		t += b
	}
	return t
}
func (f *fakePort) PortPackets() int     { return f.PortBytes() / units.MTU }
func (f *fakePort) Weight(q int) float64 { return f.weights[q] }
func (f *fakePort) WeightSum() float64 {
	s := 0.0
	for _, w := range f.weights {
		s += w
	}
	return s
}
func (f *fakePort) LinkRate() units.Rate { return f.rate }
func (f *fakePort) Now() time.Duration   { return f.now }
func (f *fakePort) Round() ecn.RoundInfo { return nil }

func view(weights []float64, queueBytes ...int) *fakePort {
	return &fakePort{queueBytes: queueBytes, weights: weights, rate: 10 * units.Gbps}
}

func TestPMSBAlgorithm1(t *testing.T) {
	m := &PMSB{PortK: units.Packets(12)}
	p := &pkt.Packet{ECT: true}
	tests := []struct {
		name string
		view *fakePort
		q    int
		want bool
	}{
		{
			// Line 1-3: port below threshold => never mark.
			"port below threshold",
			view([]float64{1, 1}, units.Packets(11), 0),
			0, false,
		},
		{
			// Port above K, queue 0 above its filter (6 pkts for 1:1).
			"port and queue above",
			view([]float64{1, 1}, units.Packets(8), units.Packets(5)),
			0, true,
		},
		{
			// Port above K but queue 1 below its filter: the victim is
			// protected — the selective blindness at the heart of PMSB.
			"victim queue protected",
			view([]float64{1, 1}, units.Packets(12), units.Packets(2)),
			1, false,
		},
		{
			// Same state, the congested queue still gets marked.
			"congested queue marked",
			view([]float64{1, 1}, units.Packets(12), units.Packets(2)),
			0, true,
		},
		{
			// Queue exactly at its threshold: Algorithm 1 uses >=.
			"queue exactly at threshold marks",
			view([]float64{1, 1}, units.Packets(6), units.Packets(6)),
			0, true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.ShouldMark(tt.view, tt.q, p); got != tt.want {
				t.Errorf("ShouldMark = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPMSBWeightedThresholds(t *testing.T) {
	// Weights 1:3, PortK = 16 pkts: filters are 4 and 12 pkts.
	m := &PMSB{PortK: units.Packets(16)}
	if got := m.QueueThreshold(1, 4); got != float64(units.Packets(4)) {
		t.Fatalf("QueueThreshold(1,4) = %v, want %d", got, units.Packets(4))
	}
	p := &pkt.Packet{ECT: true}
	// Port = 16 pkts total: queue0 has 4 (at filter), queue1 has 12.
	v := view([]float64{1, 3}, units.Packets(4), units.Packets(12))
	if !m.ShouldMark(v, 0, p) || !m.ShouldMark(v, 1, p) {
		t.Fatal("both queues exactly at weighted filters should mark")
	}
	v2 := view([]float64{1, 3}, units.Packets(3), units.Packets(13))
	if m.ShouldMark(v2, 0, p) {
		t.Fatal("queue 0 below its 4-pkt filter must not mark")
	}
	if !m.ShouldMark(v2, 1, p) {
		t.Fatal("queue 1 above its 12-pkt filter must mark")
	}
}

func TestPMSBDefaultPoint(t *testing.T) {
	m := &PMSB{PortK: 1}
	if m.Point() != ecn.AtEnqueue {
		t.Fatal("default mark point should be enqueue")
	}
	m.MarkPoint = ecn.AtDequeue
	if m.Point() != ecn.AtDequeue {
		t.Fatal("configured mark point not honoured")
	}
}

// Property: PMSB decisions are monotone — adding backlog to the packet's
// own queue never turns a mark into a non-mark, and a queue below its
// weighted filter never marks no matter how full the rest of the port is.
func TestPropertyPMSBMonotone(t *testing.T) {
	m := &PMSB{PortK: units.Packets(12)}
	p := &pkt.Packet{ECT: true}
	f := func(q0, q1, extra uint16) bool {
		v := view([]float64{1, 1}, int(q0), int(q1))
		before := m.ShouldMark(v, 0, p)
		v2 := view([]float64{1, 1}, int(q0)+int(extra), int(q1))
		after := m.ShouldMark(v2, 0, p)
		if before && !after {
			return false // growing own queue unmarked it
		}
		// Below-filter queue is always blind, regardless of other queues.
		filter := m.QueueThreshold(1, 2)
		if float64(q0) < filter {
			huge := view([]float64{1, 1}, int(q0), 1<<20)
			if m.ShouldMark(huge, 0, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPMSBe(t *testing.T) {
	f := &PMSBe{RTTThreshold: 40 * time.Microsecond}
	tests := []struct {
		name   string
		rtt    time.Duration
		marked bool
		accept bool
	}{
		{"no mark", 100 * time.Microsecond, false, false},
		{"mark with low rtt ignored", 30 * time.Microsecond, true, false},
		{"mark with high rtt accepted", 50 * time.Microsecond, true, true},
		{"mark exactly at threshold accepted", 40 * time.Microsecond, true, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := f.Accept(tt.rtt, tt.marked); got != tt.accept {
				t.Errorf("Accept(%v, %v) = %v, want %v", tt.rtt, tt.marked, got, tt.accept)
			}
			// IgnoreMark is the literal Algorithm 2 output.
			if got := f.IgnoreMark(tt.rtt, tt.marked); got != !tt.accept {
				t.Errorf("IgnoreMark = %v, want %v", got, !tt.accept)
			}
		})
	}
}

func TestPMSBeZeroValueIsDCTCP(t *testing.T) {
	var f PMSBe
	if !f.Accept(time.Microsecond, true) {
		t.Fatal("zero-value PMSBe must accept every mark (plain DCTCP)")
	}
}

func TestPortThreshold(t *testing.T) {
	// 10G x 9.6us x 1 = 12000 B = 8 pkts; paper's 12-pkt example uses a
	// slightly larger RTT.
	got := PortThreshold(10*units.Gbps, 14400*time.Nanosecond, 1)
	if got != units.Packets(12) {
		t.Fatalf("PortThreshold = %d, want %d", got, units.Packets(12))
	}
}

func TestRTTThresholdFor(t *testing.T) {
	base := 40 * time.Microsecond
	got := RTTThresholdFor(base, units.Packets(12), 10*units.Gbps)
	want := base + 14400*time.Nanosecond
	if got != want {
		t.Fatalf("RTTThresholdFor = %v, want %v", got, want)
	}
}

func analysisFixture() *Analysis {
	return &Analysis{
		C:       10 * units.Gbps,
		RTT:     80 * time.Microsecond,
		Weights: []float64{1, 1},
	}
}

func TestAnalysisQueueLength(t *testing.T) {
	a := analysisFixture()
	// gamma = 0.5, BDP = 100KB. With n=10 flows of window 10KB:
	// Q = 100KB - 50KB = 50KB.
	got := a.QueueLength(0, 10, 10000)
	if got != 50000 {
		t.Fatalf("QueueLength = %v, want 50000", got)
	}
}

func TestAnalysisTheorem41(t *testing.T) {
	a := analysisFixture()
	// k_i > gamma_i C RTT / 7 = 0.5 * 100KB / 7 ~ 7142.9 B.
	got := a.MinThreshold(0)
	want := 0.5 * 100000.0 / 7.0
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("MinThreshold = %v, want %v", got, want)
	}
	// Port threshold = sum over queues.
	if math.Abs(a.MinPortThreshold()-2*want) > 1e-6 {
		t.Fatalf("MinPortThreshold = %v, want %v", a.MinPortThreshold(), 2*want)
	}
}

// Property: the closed-form lower bound Q_i^- (Eq. 10) really lower
// bounds Q_i^min (Eq. 8 - Eq. 9) over all flow counts, and it is
// attained at the worst-case flow count of Eq. 11.
func TestPropertyLowerBoundHolds(t *testing.T) {
	a := analysisFixture()
	f := func(kPkts uint8, nRaw uint8) bool {
		ki := float64(units.Packets(int(kPkts%64) + 1))
		n := int(nRaw%200) + 1
		bound := a.QueueMinLowerBound(0, ki)
		qmin := a.QueueMin(0, n, ki)
		return qmin >= bound-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: thresholds above the Theorem IV.1 bound give a positive
// worst-case queue minimum; thresholds well below it go negative.
func TestPropertyTheoremBoundary(t *testing.T) {
	a := analysisFixture()
	min := a.MinThreshold(0)
	// At 1.05x the bound the worst-case minimum is positive.
	if got := a.QueueMinLowerBound(0, 1.05*min); got <= 0 {
		t.Fatalf("Q_i^- at 1.05x bound = %v, want > 0", got)
	}
	// At 0.95x the bound it is negative (throughput loss possible).
	if got := a.QueueMinLowerBound(0, 0.95*min); got >= 0 {
		t.Fatalf("Q_i^- at 0.95x bound = %v, want < 0", got)
	}
}

// The worst-case flow count (Eq. 11) approximately minimizes QueueMin.
func TestWorstCaseFlows(t *testing.T) {
	a := analysisFixture()
	ki := float64(units.Packets(16))
	nStar := a.WorstCaseFlows(0, ki)
	qAtStar := a.QueueMin(0, int(math.Round(nStar)), ki)
	for _, n := range []int{1, 2, 5, 20, 50, 100, 200} {
		if q := a.QueueMin(0, n, ki); q < qAtStar-float64(units.MTU) {
			t.Fatalf("QueueMin(n=%d) = %v below worst-case %v (n*=%v)", n, q, qAtStar, nStar)
		}
	}
}
