// Package core implements the PMSB paper's contribution:
//
//   - PMSB, the switch-side "per-Port Marking with Selective Blindness"
//     ECN marker (Algorithm 1),
//   - PMSBe, the immediately-deployable end-host heuristic that filters
//     ECN signals by RTT (Algorithm 2),
//   - the steady-state analysis of Section IV-D, including the
//     Theorem IV.1 lower bound on per-queue filter thresholds.
//
// PMSB's intuition: per-port ECN marking keeps both throughput and
// latency good but can mark "victim" packets that sit in un-congested
// queues, making their flows back off and violating the scheduling
// policy. PMSB breaks the fixed causal relationship between port-level
// marking and flow back-off: a packet is marked only if the port buffer
// exceeds the port threshold AND its own queue's buffer exceeds a
// weight-proportional per-queue filter threshold.
package core

import (
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// PMSB is the switch marker of Algorithm 1. A packet headed to (or
// leaving) queue i is marked iff
//
//	port_length  >= port_threshold, and
//	queue_length_i >= (weight_i / weight_sum) x port_threshold.
//
// The first condition is plain per-port marking; the second is the
// selective-blindness filter that protects flows in queues below their
// fair share of the buffer.
type PMSB struct {
	// PortK is the per-port threshold in bytes (Eq. 5: C x RTT x lambda).
	PortK int
	// MarkPoint selects enqueue or dequeue marking (default enqueue;
	// dequeue delivers congestion information earlier, Figure 11).
	MarkPoint ecn.Point
	// ThresholdScale scales the per-queue filter threshold (default 1,
	// the paper's Eq. 6). It exists for the false-positive vs
	// false-negative ablation of Section I: values below 1 make the
	// filter more aggressive (accept more marks, risking fairness),
	// values above 1 more conservative (refuse more marks, risking
	// latency). 0 means 1.
	ThresholdScale float64
	// Obs, when non-nil, receives a blindness event each time the port
	// threshold is exceeded but the per-queue filter refuses the mark —
	// the suppressions that distinguish PMSB from plain per-port marking.
	Obs *obs.Bus
}

var _ ecn.Marker = (*PMSB)(nil)

// Name implements ecn.Marker.
func (m *PMSB) Name() string { return "PMSB" }

// Point implements ecn.Marker.
func (m *PMSB) Point() ecn.Point {
	if m.MarkPoint == 0 {
		return ecn.AtEnqueue
	}
	return m.MarkPoint
}

// ShouldMark implements ecn.Marker with Algorithm 1 of the paper.
func (m *PMSB) ShouldMark(pv ecn.PortView, q int, p *pkt.Packet) bool {
	if pv.PortBytes() < m.PortK {
		return false
	}
	thresh := m.QueueThreshold(pv.Weight(q), pv.WeightSum())
	if float64(pv.QueueBytes(q)) >= thresh {
		return true
	}
	// Port over threshold but queue under its filter: this is the
	// selective-blindness case — per-port marking would have marked here.
	if m.Obs != nil {
		m.Obs.Blind(pv.Now(), q, pv.PortBytes(), pv.QueueBytes(q), thresh)
	}
	return false
}

// QueueThreshold returns the per-queue filter threshold (Eq. 6, times
// ThresholdScale) for a queue of weight w on a port with total weight
// weightSum.
func (m *PMSB) QueueThreshold(w, weightSum float64) float64 {
	scale := m.ThresholdScale
	if scale == 0 {
		scale = 1
	}
	return float64(m.PortK) * w / weightSum * scale
}

// PortThreshold computes the recommended per-port threshold (Eq. 5):
// K = C x RTT x lambda, in bytes.
func PortThreshold(c units.Rate, rtt time.Duration, lambda float64) int {
	return ecn.StandardThreshold(c, rtt, lambda)
}
