package core_test

import (
	"fmt"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// portState is a minimal ecn.PortView for the example: two queues with
// the given byte occupancies and equal weights.
type portState struct{ q0, q1 int }

func (p portState) NumQueues() int         { return 2 }
func (p portState) QueueBytes(q int) int   { return []int{p.q0, p.q1}[q] }
func (p portState) QueuePackets(q int) int { return p.QueueBytes(q) / units.MTU }
func (p portState) PortBytes() int         { return p.q0 + p.q1 }
func (p portState) PortPackets() int       { return p.PortBytes() / units.MTU }
func (p portState) Weight(int) float64     { return 1 }
func (p portState) WeightSum() float64     { return 2 }
func (p portState) LinkRate() units.Rate   { return 10 * units.Gbps }
func (p portState) Now() time.Duration     { return 0 }
func (p portState) Round() ecn.RoundInfo   { return nil }

// ExamplePMSB walks Algorithm 1: with the port over its threshold, only
// the queue that also exceeds its weighted filter gets marked — the
// victim queue stays blind.
func ExamplePMSB() {
	marker := &core.PMSB{PortK: units.Packets(12)} // filters: 6 pkts/queue
	packet := &pkt.Packet{ECT: true, Size: units.MTU}

	congested := portState{q0: units.Packets(11), q1: units.Packets(1)}
	fmt.Println("port 12 pkts, queue0 11 pkts:", marker.ShouldMark(congested, 0, packet))
	fmt.Println("port 12 pkts, queue1  1 pkt :", marker.ShouldMark(congested, 1, packet))

	calm := portState{q0: units.Packets(5), q1: units.Packets(1)}
	fmt.Println("port  6 pkts, queue0  5 pkts:", marker.ShouldMark(calm, 0, packet))
	// Output:
	// port 12 pkts, queue0 11 pkts: true
	// port 12 pkts, queue1  1 pkt : false
	// port  6 pkts, queue0  5 pkts: false
}

// ExamplePMSBe shows Algorithm 2 from the sender's perspective: marks
// arriving with a low RTT are per-port false positives and are ignored.
func ExamplePMSBe() {
	filter := &core.PMSBe{RTTThreshold: 40 * time.Microsecond}
	fmt.Println("marked, RTT 20us:", filter.Accept(20*time.Microsecond, true))
	fmt.Println("marked, RTT 80us:", filter.Accept(80*time.Microsecond, true))
	fmt.Println("unmarked        :", filter.Accept(80*time.Microsecond, false))
	// Output:
	// marked, RTT 20us: false
	// marked, RTT 80us: true
	// unmarked        : false
}

// ExampleAnalysis derives the paper's Theorem IV.1 threshold bound for a
// 10 Gbps port with two equal queues and an 80us RTT.
func ExampleAnalysis() {
	a := &core.Analysis{
		C:       10 * units.Gbps,
		RTT:     80 * time.Microsecond,
		Weights: []float64{1, 1},
	}
	fmt.Printf("per-queue bound: %.0f bytes (%.1f pkts)\n", a.MinThreshold(0), a.MinThreshold(0)/units.MTU)
	fmt.Printf("port threshold : %.0f bytes\n", a.MinPortThreshold())
	// Output:
	// per-queue bound: 7143 bytes (4.8 pkts)
	// port threshold : 14286 bytes
}
