package core

import (
	"time"

	"pmsb/internal/units"
)

// PMSBe is the end-host heuristic of Algorithm 2 ("PMSB(e)"). It runs at
// the sender, on top of plain per-port ECN marking, and decides whether
// to *accept* an incoming ECN congestion signal: if the flow's current
// RTT is below the RTT threshold, its queue cannot be congested, so the
// signal is a per-port false positive and is ignored.
//
// The zero value ignores nothing (threshold 0), i.e. behaves exactly
// like standard DCTCP.
type PMSBe struct {
	// RTTThreshold is the boundary below which marks are ignored (e.g.
	// 85.2us in the paper's large-scale setup).
	RTTThreshold time.Duration
}

// Accept reports whether the sender should honour a congestion signal.
// It is Algorithm 2 restated from the sender's perspective: the paper's
// ignore_mark output is the negation of Accept.
//
//   - marked == false: there is no signal, nothing to accept.
//   - curRTT < RTTThreshold: the flow's own path is uncongested; the
//     mark is a victim artifact of per-port marking — ignore it.
//   - otherwise: honour the mark (back off).
func (f *PMSBe) Accept(curRTT time.Duration, marked bool) bool {
	if !marked {
		return false
	}
	if curRTT < f.RTTThreshold {
		return false
	}
	return true
}

// IgnoreMark is the literal Algorithm 2 of the paper: it returns the
// ignore_mark flag given the inputs of Table II.
func (f *PMSBe) IgnoreMark(curRTT time.Duration, isMark bool) bool {
	return !f.Accept(curRTT, isMark)
}

// RTTThresholdFor derives a reasonable RTT threshold from the base RTT
// and the port threshold: base RTT plus the time the bottleneck link
// needs to drain a port's worth of threshold buffer. A flow whose queue
// holds less than its share of the threshold observes an RTT below this
// value.
func RTTThresholdFor(baseRTT time.Duration, portK int, c units.Rate) time.Duration {
	return baseRTT + units.Serialization(portK, c)
}
