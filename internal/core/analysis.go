package core

import (
	"math"
	"time"

	"pmsb/internal/units"
)

// Analysis captures the steady-state model of Section IV-D: q queues on
// a bottleneck port of capacity C, queue i holding n_i synchronized
// long-lived DCTCP flows with identical RTT and weight w_i.
//
// All buffer quantities are in bytes; the paper's packet-denominated
// formulas are recovered by dividing by the MTU.
type Analysis struct {
	// C is the bottleneck link capacity.
	C units.Rate
	// RTT is the common round-trip time.
	RTT time.Duration
	// Weights are the queue weights w_i.
	Weights []float64
}

// weightShare returns gamma_i = w_i / sum_j w_j.
func (a *Analysis) weightShare(i int) float64 {
	var sum float64
	for _, w := range a.Weights {
		sum += w
	}
	if sum == 0 {
		return 0
	}
	return a.Weights[i] / sum
}

// bdp returns C x RTT in bytes.
func (a *Analysis) bdp() float64 {
	return float64(units.BDP(a.C, a.RTT))
}

// QueueLength evaluates Eq. 7: Q_i(t) = n_i W(t) - gamma_i C RTT, the
// instantaneous backlog of queue i when each of its n_i flows has window
// W (bytes). Negative values mean the queue is empty (link underflow).
func (a *Analysis) QueueLength(i int, n int, window float64) float64 {
	return float64(n)*window - a.weightShare(i)*a.bdp()
}

// CriticalWindow returns W* = (gamma_i C RTT + k_i) / n_i, the per-flow
// window at which queue i's length reaches the marking threshold k_i.
func (a *Analysis) CriticalWindow(i int, n int, ki float64) float64 {
	return (a.weightShare(i)*a.bdp() + ki) / float64(n)
}

// QueueMax evaluates Eq. 8: the maximum backlog of queue i is
// Q_i^max = k_i + n_i (in packets; here n_i packets = n_i x MTU bytes),
// reached one RTT after the threshold crossing when every flow has grown
// its window by one segment.
func (a *Analysis) QueueMax(i int, n int, ki float64) float64 {
	return ki + float64(n)*units.MTU
}

// Amplitude evaluates Eq. 9: the oscillation amplitude of queue i,
// A_i = 1/2 sqrt(2 n_i (gamma_i C RTT + k_i)) in packet units; this
// implementation scales to bytes (multiplying the packet-unit result by
// MTU requires the inputs in packets, so we convert internally).
func (a *Analysis) Amplitude(i int, n int, ki float64) float64 {
	gammaBDPpkts := a.weightShare(i) * a.bdp() / units.MTU
	kiPkts := ki / units.MTU
	ampPkts := 0.5 * math.Sqrt(2*float64(n)*(gammaBDPpkts+kiPkts))
	return ampPkts * units.MTU
}

// QueueMin returns Q_i^min = Q_i^max - A_i, the bottom of queue i's
// sawtooth. Throughput is lost whenever it is negative (queue underflow).
func (a *Analysis) QueueMin(i int, n int, ki float64) float64 {
	return a.QueueMax(i, n, ki) - a.Amplitude(i, n, ki)
}

// WorstCaseFlows evaluates Eq. 11: the number of flows minimizing
// Q_i^min, n_i = (gamma_i C RTT + k_i) / 8 in packet units.
func (a *Analysis) WorstCaseFlows(i int, ki float64) float64 {
	return (a.weightShare(i)*a.bdp()/units.MTU + ki/units.MTU) / 8
}

// QueueMinLowerBound evaluates Eq. 10: the minimum over n_i of Q_i^min,
// Q_i^- = 7/8 k_i - gamma_i C RTT / 8 (bytes).
func (a *Analysis) QueueMinLowerBound(i int, ki float64) float64 {
	return 7.0/8.0*ki - a.weightShare(i)*a.bdp()/8.0
}

// MinThreshold evaluates Theorem IV.1: the smallest per-queue threshold
// k_i (bytes) that avoids throughput loss for any flow count,
//
//	k_i > gamma_i x C x RTT / 7.
func (a *Analysis) MinThreshold(i int) float64 {
	return a.weightShare(i) * a.bdp() / 7.0
}

// MinPortThreshold sums the per-queue Theorem IV.1 bounds, giving the
// smallest safe port threshold (the paper: "we can obtain the port's
// threshold by summing up the thresholds of all queues").
func (a *Analysis) MinPortThreshold() float64 {
	var sum float64
	for i := range a.Weights {
		sum += a.MinThreshold(i)
	}
	return sum
}
