package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ReadTrace parses a flow trace from CSV so users can replay their own
// workloads instead of the synthetic generators. Expected columns:
//
//	start_us, src, dst, size_bytes, service
//
// A header row (any row whose first field is not a number) is skipped.
// Lines must satisfy src != dst, size >= 1 and non-decreasing start
// times are NOT required (the trace is returned as given; schedule it
// with sim.ScheduleAt which tolerates any order).
func ReadTrace(r io.Reader) ([]FlowSpec, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	var out []FlowSpec
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line+1, err)
		}
		line++
		if len(rec) != 5 {
			return nil, fmt.Errorf("trace line %d: want 5 columns, got %d", line, len(rec))
		}
		startUS, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("trace line %d: bad start %q", line, rec[0])
		}
		src, err1 := strconv.Atoi(rec[1])
		dst, err2 := strconv.Atoi(rec[2])
		size, err3 := strconv.ParseInt(rec[3], 10, 64)
		service, err4 := strconv.Atoi(rec[4])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("trace line %d: malformed fields", line)
		}
		if src == dst {
			return nil, fmt.Errorf("trace line %d: src == dst", line)
		}
		if size < 1 {
			return nil, fmt.Errorf("trace line %d: size %d < 1", line, size)
		}
		if service < 0 {
			return nil, fmt.Errorf("trace line %d: negative service", line)
		}
		out = append(out, FlowSpec{
			Start:   time.Duration(startUS * float64(time.Microsecond)),
			Src:     src,
			Dst:     dst,
			Size:    size,
			Service: service,
		})
	}
	return out, nil
}

// WriteTrace renders flows in the ReadTrace CSV format (with header).
func WriteTrace(w io.Writer, flows []FlowSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_us", "src", "dst", "size_bytes", "service"}); err != nil {
		return fmt.Errorf("write trace header: %w", err)
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatFloat(float64(f.Start)/float64(time.Microsecond), 'f', 3, 64),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.FormatInt(f.Size, 10),
			strconv.Itoa(f.Service),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write trace row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
