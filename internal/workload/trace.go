package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ReadTrace parses a flow trace from CSV so users can replay their own
// workloads instead of the synthetic generators. Expected columns:
//
//	start_us, src, dst, size_bytes, service
//
// The first row is treated as a header when its first cell names a
// column rather than starting a number (fails float parsing and does
// not begin with a digit, sign or dot). A header may have any column
// width — exporters add columns this reader ignores — but data rows
// must have exactly five, and a malformed data value is always an
// error, never silently skipped (a first row like "12x3,..." begins
// numerically, so it is a bad data row, not a header). Lines must
// satisfy src != dst and size >= 1; non-decreasing start times are NOT
// required (the trace is returned as given; schedule it with
// sim.ScheduleAt which tolerates any order). Errors reference physical
// line numbers of the input, so blank lines and the header do not
// shift them.
func ReadTrace(r io.Reader) ([]FlowSpec, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	// Column counts are validated below, per row kind, so a header row
	// wider or narrower than the data does not trip the reader.
	cr.FieldsPerRecord = -1
	var out []FlowSpec
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// csv.ParseError messages already carry the physical line
			// number; wrapping must not invent a second, diverging one.
			return nil, fmt.Errorf("trace: %w", err)
		}
		row++
		// Physical line of the record's first field: the number a user
		// can jump to in an editor, unlike the record count (which
		// drifts past blank lines and the header).
		line, _ := cr.FieldPos(0)
		if row == 1 && isHeaderField(rec[0]) {
			continue
		}
		if len(rec) != 5 {
			return nil, fmt.Errorf("trace line %d: want 5 columns, got %d", line, len(rec))
		}
		startUS, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: bad start %q", line, rec[0])
		}
		src, err1 := strconv.Atoi(rec[1])
		dst, err2 := strconv.Atoi(rec[2])
		size, err3 := strconv.ParseInt(rec[3], 10, 64)
		service, err4 := strconv.Atoi(rec[4])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("trace line %d: malformed fields", line)
		}
		if src == dst {
			return nil, fmt.Errorf("trace line %d: src == dst", line)
		}
		if size < 1 {
			return nil, fmt.Errorf("trace line %d: size %d < 1", line, size)
		}
		if service < 0 {
			return nil, fmt.Errorf("trace line %d: negative service", line)
		}
		out = append(out, FlowSpec{
			Start:   time.Duration(startUS * float64(time.Microsecond)),
			Src:     src,
			Dst:     dst,
			Size:    size,
			Service: service,
		})
	}
	return out, nil
}

// isHeaderField reports whether a first-row, first-column cell names a
// column ("start_us") rather than starting a data row: it fails float
// parsing and does not even begin numerically. A cell like "12x3"
// begins with a digit, so it is a malformed data value — reported as
// an error by the caller, never skipped as a header.
func isHeaderField(s string) bool {
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return false
	}
	if s == "" {
		return false
	}
	switch c := s[0]; {
	case c >= '0' && c <= '9', c == '+', c == '-', c == '.':
		return false
	}
	return true
}

// WriteTrace renders flows in the ReadTrace CSV format (with header).
func WriteTrace(w io.Writer, flows []FlowSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_us", "src", "dst", "size_bytes", "service"}); err != nil {
		return fmt.Errorf("write trace header: %w", err)
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatFloat(float64(f.Start)/float64(time.Microsecond), 'f', 3, 64),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.FormatInt(f.Size, 10),
			strconv.Itoa(f.Service),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("write trace row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
