package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pmsb/internal/units"
)

func TestReadTrace(t *testing.T) {
	in := `start_us,src,dst,size_bytes,service
0.000,0,1,1000,0
12.500,3,7,250000,5
`
	flows, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
	if flows[0].Start != 0 || flows[0].Src != 0 || flows[0].Dst != 1 || flows[0].Size != 1000 {
		t.Fatalf("flow 0 = %+v", flows[0])
	}
	if flows[1].Start != 12500*time.Nanosecond || flows[1].Service != 5 {
		t.Fatalf("flow 1 = %+v", flows[1])
	}
}

func TestReadTraceNoHeader(t *testing.T) {
	flows, err := ReadTrace(strings.NewReader("5.0,1,2,100,0\n"))
	if err != nil || len(flows) != 1 {
		t.Fatalf("headerless trace: %v, %d flows", err, len(flows))
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"1.0,1,2,100\n",              // 4 columns
		"1.0,2,2,100,0\n",            // src == dst
		"1.0,1,2,0,0\n",              // zero size
		"1.0,1,2,100,-1\n",           // negative service
		"1.0,a,2,100,0\n",            // bad src
		"x,1,2,100,0\nx,1,2,100,0\n", // bad start beyond header
	}
	for _, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadTrace(%q) should fail", in)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := Poisson(PoissonConfig{
		Load: 0.5, LinkRate: 10 * units.Gbps, Hosts: 8,
		Dist: WebSearch(), Services: 4, NumFlows: 50, Seed: 9,
	})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost flows: %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Src != orig[i].Src || got[i].Dst != orig[i].Dst ||
			got[i].Size != orig[i].Size || got[i].Service != orig[i].Service {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, got[i], orig[i])
		}
		// Start times survive to sub-microsecond rounding.
		diff := got[i].Start - orig[i].Start
		if diff < -time.Microsecond || diff > time.Microsecond {
			t.Fatalf("flow %d start drift %v", i, diff)
		}
	}
}
