package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pmsb/internal/units"
)

func TestReadTrace(t *testing.T) {
	in := `start_us,src,dst,size_bytes,service
0.000,0,1,1000,0
12.500,3,7,250000,5
`
	flows, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
	if flows[0].Start != 0 || flows[0].Src != 0 || flows[0].Dst != 1 || flows[0].Size != 1000 {
		t.Fatalf("flow 0 = %+v", flows[0])
	}
	if flows[1].Start != 12500*time.Nanosecond || flows[1].Service != 5 {
		t.Fatalf("flow 1 = %+v", flows[1])
	}
}

func TestReadTraceNoHeader(t *testing.T) {
	flows, err := ReadTrace(strings.NewReader("5.0,1,2,100,0\n"))
	if err != nil || len(flows) != 1 {
		t.Fatalf("headerless trace: %v, %d flows", err, len(flows))
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"1.0,1,2,100\n",              // 4 columns
		"1.0,2,2,100,0\n",            // src == dst
		"1.0,1,2,0,0\n",              // zero size
		"1.0,1,2,100,-1\n",           // negative service
		"1.0,a,2,100,0\n",            // bad src
		"x,1,2,100,0\nx,1,2,100,0\n", // bad start beyond header
	}
	for _, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadTrace(%q) should fail", in)
		}
	}
}

// A header is detected by its first cell, not its width: exporters
// that add or drop columns in the header row must still round-trip.
func TestReadTraceHeaderAnyWidth(t *testing.T) {
	for _, in := range []string{
		"start_us,src,dst,size_bytes,service,comment\n1.0,1,2,100,0\n", // wider header
		"start_us,src\n1.0,1,2,100,0\n",                                // narrower header
		"t\n1.0,1,2,100,0\n",                                           // single-cell header
	} {
		flows, err := ReadTrace(strings.NewReader(in))
		if err != nil {
			t.Fatalf("ReadTrace(%q): %v", in, err)
		}
		if len(flows) != 1 || flows[0].Size != 100 {
			t.Fatalf("ReadTrace(%q): flows = %+v", in, flows)
		}
	}
}

// A malformed first data row must be an error, not silently dropped as
// a header: "12x3" begins numerically, so it is bad data.
func TestReadTraceMalformedFirstRow(t *testing.T) {
	for _, in := range []string{
		"12x3,1,2,100,0\n2.0,1,2,100,0\n", // bad start, begins with digit
		"-x,1,2,100,0\n",                  // bad start, begins with sign
		",1,2,100,0\n",                    // empty start cell
	} {
		_, err := ReadTrace(strings.NewReader(in))
		if err == nil {
			t.Fatalf("ReadTrace(%q) silently dropped a malformed first data row", in)
		}
		if !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("ReadTrace(%q) error %q does not name line 1", in, err)
		}
	}
}

// Header detection applies to row 1 only: a header-like row later in
// the file is a malformed data row.
func TestReadTraceHeaderBeyondRow1(t *testing.T) {
	in := "1.0,1,2,100,0\nstart_us,src,dst,size_bytes,service\n"
	_, err := ReadTrace(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("mid-file header-like row: err = %v, want line 2 error", err)
	}
}

// Error messages must reference physical line numbers: blank lines and
// the header are invisible to the CSV record count but not to a user
// jumping to the reported line in an editor.
func TestReadTraceLineNumbersWithBlankLines(t *testing.T) {
	in := "start_us,src,dst,size_bytes,service\n" + // line 1
		"0.0,0,1,1000,0\n" + // line 2
		"\n" + // line 3: blank, skipped by the CSV reader
		"\n" + // line 4: blank
		"bad,1,2,100,0\n" // line 5
	_, err := ReadTrace(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("err = %v, want a 'line 5' error", err)
	}

	in = "0.0,0,1,1000,0\n" + // line 1
		"\n" + // line 2
		"1.0,1,2,100\n" // line 3: four columns
	_, err = ReadTrace(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want a 'line 3' error", err)
	}

	// Good traces with interior blank lines still parse fully.
	flows, err := ReadTrace(strings.NewReader("1.0,1,2,100,0\n\n\n2.0,2,3,200,1\n"))
	if err != nil || len(flows) != 2 {
		t.Fatalf("blank-line trace: %v, %d flows", err, len(flows))
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := Poisson(PoissonConfig{
		Load: 0.5, LinkRate: 10 * units.Gbps, Hosts: 8,
		Dist: WebSearch(), Services: 4, NumFlows: 50, Seed: 9,
	})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost flows: %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Src != orig[i].Src || got[i].Dst != orig[i].Dst ||
			got[i].Size != orig[i].Size || got[i].Service != orig[i].Service {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, got[i], orig[i])
		}
		// Start times survive to sub-microsecond rounding.
		diff := got[i].Start - orig[i].Start
		if diff < -time.Microsecond || diff > time.Microsecond {
			t.Fatalf("flow %d start drift %v", i, diff)
		}
	}
}
