package workload_test

import (
	"fmt"

	"pmsb/internal/units"
	"pmsb/internal/workload"
)

// ExamplePoisson builds the paper's large-scale traffic: web-search
// flow sizes arriving as a Poisson process at 50% load over 48 hosts.
func ExamplePoisson() {
	flows := workload.Poisson(workload.PoissonConfig{
		Load:     0.5,
		LinkRate: 10 * units.Gbps,
		Hosts:    48,
		Dist:     workload.WebSearch(),
		Services: 8,
		NumFlows: 3,
		Seed:     1,
	})
	for _, f := range flows {
		fmt.Printf("t=%v %d->%d %s (%dB) service %d\n",
			f.Start.Round(1000), f.Src, f.Dst, workload.Classify(f.Size), f.Size, f.Service)
	}
	// Output:
	// t=33µs 15->19 small (56652B) service 0
	// t=35µs 6->16 small (10093B) service 1
	// t=45µs 36->3 medium (2344467B) service 2
}
