package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pmsb/internal/units"
)

func TestWebSearchShape(t *testing.T) {
	d := WebSearch()
	if d.Name() != "websearch" {
		t.Fatal("name")
	}
	r := rand.New(rand.NewSource(1))
	n := 200_000
	var small, large int
	var sum float64
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s < 1 {
			t.Fatal("non-positive flow size")
		}
		switch Classify(s) {
		case Small:
			small++
		case Large:
			large++
		}
		sum += float64(s)
	}
	// The paper: small flows ~60% of flows. Large flows are a few
	// percent of flows in the web-search CDF (the bulk of *bytes*).
	smallFrac := float64(small) / float64(n)
	largeFrac := float64(large) / float64(n)
	if smallFrac < 0.5 || smallFrac > 0.7 {
		t.Fatalf("small fraction = %.3f, want ~0.6", smallFrac)
	}
	if largeFrac < 0.02 || largeFrac > 0.15 {
		t.Fatalf("large fraction = %.3f, want a few percent", largeFrac)
	}
	// Empirical mean should match the analytic mean within a few %.
	mean := sum / float64(n)
	if mean < 0.95*d.Mean() || mean > 1.05*d.Mean() {
		t.Fatalf("sample mean %.0f vs analytic %.0f", mean, d.Mean())
	}
}

func TestDataMiningHeavyTail(t *testing.T) {
	d := DataMining()
	r := rand.New(rand.NewSource(2))
	onePkt := 0
	n := 100_000
	for i := 0; i < n; i++ {
		if d.Sample(r) <= int64(units.MSS) {
			onePkt++
		}
	}
	frac := float64(onePkt) / float64(n)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("single-packet fraction = %.3f, want ~0.5", frac)
	}
	if d.Mean() <= WebSearch().Mean() {
		t.Fatal("data-mining mean should exceed web-search mean (heavier tail)")
	}
}

func TestFixed(t *testing.T) {
	d := Fixed(1234)
	r := rand.New(rand.NewSource(1))
	if d.Sample(r) != 1234 || d.Mean() != 1234 || d.Name() != "fixed" {
		t.Fatal("fixed distribution broken")
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		size int64
		want SizeClass
	}{
		{1, Small},
		{100_000, Small},
		{100_001, Medium},
		{9_999_999, Medium},
		{10_000_000, Large},
		{1_000_000_000, Large},
	}
	for _, tt := range tests {
		if got := Classify(tt.size); got != tt.want {
			t.Errorf("Classify(%d) = %v, want %v", tt.size, got, tt.want)
		}
	}
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("SizeClass.String broken")
	}
	if SizeClass(99).String() != "unknown" {
		t.Fatal("unknown SizeClass should stringify as unknown")
	}
}

func TestPoissonDeterministic(t *testing.T) {
	cfg := PoissonConfig{
		Load: 0.5, LinkRate: 10 * units.Gbps, Hosts: 48,
		Dist: WebSearch(), Services: 8, NumFlows: 100, Seed: 42,
	}
	a := Poisson(cfg)
	b := Poisson(cfg)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at flow %d", i)
		}
	}
}

func TestPoissonProperties(t *testing.T) {
	cfg := PoissonConfig{
		Load: 0.5, LinkRate: 10 * units.Gbps, Hosts: 48,
		Dist: WebSearch(), Services: 8, NumFlows: 5000, Seed: 7,
	}
	flows := Poisson(cfg)
	var last time.Duration
	serviceCount := make([]int, 8)
	for i, f := range flows {
		if f.Start < last {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		last = f.Start
		if f.Src == f.Dst {
			t.Fatalf("flow %d has src == dst", i)
		}
		if f.Src < 0 || f.Src >= 48 || f.Dst < 0 || f.Dst >= 48 {
			t.Fatalf("flow %d endpoints out of range", i)
		}
		if f.Service < 0 || f.Service >= 8 {
			t.Fatalf("flow %d service out of range", i)
		}
		serviceCount[f.Service]++
	}
	// Round-robin classification: services within 1 of each other.
	for s := 1; s < 8; s++ {
		if diff := serviceCount[s] - serviceCount[0]; diff < -1 || diff > 1 {
			t.Fatalf("service %d count %d vs %d — not even", s, serviceCount[s], serviceCount[0])
		}
	}
}

func TestPoissonLoadCalibration(t *testing.T) {
	// The offered bytes per second per host should approximate
	// load x link rate.
	cfg := PoissonConfig{
		Load: 0.4, LinkRate: 10 * units.Gbps, Hosts: 16,
		Dist: WebSearch(), Services: 8, NumFlows: 20000, Seed: 3,
	}
	flows := Poisson(cfg)
	var total float64
	for _, f := range flows {
		total += float64(f.Size)
	}
	dur := flows[len(flows)-1].Start.Seconds()
	perHost := total / dur / float64(cfg.Hosts)
	want := cfg.Load * float64(cfg.LinkRate) / 8
	if perHost < 0.8*want || perHost > 1.2*want {
		t.Fatalf("offered per-host load %.3g B/s, want ~%.3g", perHost, want)
	}
}

func TestPoissonDegenerateInputs(t *testing.T) {
	if Poisson(PoissonConfig{}) != nil {
		t.Fatal("zero config should yield nil")
	}
	if Poisson(PoissonConfig{Load: 0.5, LinkRate: units.Gbps, Hosts: 1, Dist: Fixed(1), NumFlows: 10}) != nil {
		t.Fatal("single host cannot generate flows")
	}
}

// Property: samples always lie within the distribution's support.
func TestPropertyEmpiricalSupport(t *testing.T) {
	d := WebSearch()
	maxBytes := int64(20000 * units.MSS)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			s := d.Sample(r)
			if s < 1 || s > maxBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUniform(t *testing.T) {
	d := Uniform(1000, 2000)
	if d.Name() != "uniform" || d.Mean() != 1500 {
		t.Fatalf("uniform meta wrong: %s %v", d.Name(), d.Mean())
	}
	r := rand.New(rand.NewSource(3))
	var sum float64
	n := 50_000
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s < 1000 || s > 2000 {
			t.Fatalf("sample %d out of range", s)
		}
		sum += float64(s)
	}
	if mean := sum / float64(n); mean < 1450 || mean > 1550 {
		t.Fatalf("empirical mean %v, want ~1500", mean)
	}
	// Swapped and degenerate bounds are tolerated.
	if Uniform(2000, 1000).Mean() != 1500 {
		t.Fatal("swapped bounds")
	}
	if got := Uniform(5, 5).Sample(r); got != 5 {
		t.Fatalf("degenerate uniform = %d", got)
	}
	if got := Uniform(-10, 0).Sample(r); got < 1 {
		t.Fatalf("negative bounds must clamp to 1, got %d", got)
	}
}

func TestPareto(t *testing.T) {
	d := Pareto(2, 10_000)
	if d.Name() != "pareto" {
		t.Fatal("name")
	}
	// alpha=2, min=10KB: mean = 20KB.
	if d.Mean() != 20_000 {
		t.Fatalf("mean = %v", d.Mean())
	}
	r := rand.New(rand.NewSource(11))
	var sum float64
	n := 200_000
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s < 10_000 {
			t.Fatalf("sample %d below scale", s)
		}
		sum += float64(s)
	}
	mean := sum / float64(n)
	if mean < 18_000 || mean > 22_000 {
		t.Fatalf("empirical mean %v, want ~20000", mean)
	}
	// Degenerate parameters are tolerated.
	if Pareto(-1, 0).Sample(r) < 1 {
		t.Fatal("degenerate pareto must sample >= 1")
	}
}
