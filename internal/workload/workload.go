// Package workload generates the traffic the paper's large-scale
// evaluation uses: flows with empirical datacenter size distributions
// arriving as a Poisson process at a target load, spread over random
// host pairs and classified evenly into services (queues).
package workload

import (
	"math"
	"math/rand"
	"time"

	"pmsb/internal/units"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	// Name identifies the distribution.
	Name() string
	// Sample draws one flow size in bytes.
	Sample(r *rand.Rand) int64
	// Mean returns the expected flow size in bytes.
	Mean() float64
}

// cdfPoint is one empirical CDF knot: P(size <= Pkts packets) = P.
type cdfPoint struct {
	pkts float64
	p    float64
}

// Empirical is a piecewise-linear empirical flow-size distribution,
// specified in MSS-sized packets as the standard datacenter workload
// files do.
type Empirical struct {
	name   string
	points []cdfPoint
	mean   float64
}

var _ SizeDist = (*Empirical)(nil)

// newEmpirical builds an Empirical and precomputes its mean.
func newEmpirical(name string, points []cdfPoint) *Empirical {
	e := &Empirical{name: name, points: points}
	// Mean of the piecewise-linear CDF: sum of trapezoids' midpoints.
	var mean float64
	for i := 1; i < len(points); i++ {
		dp := points[i].p - points[i-1].p
		mid := (points[i].pkts + points[i-1].pkts) / 2
		mean += dp * mid
	}
	e.mean = mean * float64(units.MSS)
	return e
}

// Name implements SizeDist.
func (e *Empirical) Name() string { return e.name }

// Mean implements SizeDist.
func (e *Empirical) Mean() float64 { return e.mean }

// Sample implements SizeDist by inverse-transform sampling with linear
// interpolation between CDF knots.
func (e *Empirical) Sample(r *rand.Rand) int64 {
	u := r.Float64()
	pts := e.points
	for i := 1; i < len(pts); i++ {
		if u <= pts[i].p {
			span := pts[i].p - pts[i-1].p
			frac := 0.0
			if span > 0 {
				frac = (u - pts[i-1].p) / span
			}
			pktsF := pts[i-1].pkts + frac*(pts[i].pkts-pts[i-1].pkts)
			size := int64(math.Ceil(pktsF * float64(units.MSS)))
			if size < 1 {
				size = 1
			}
			return size
		}
	}
	return int64(pts[len(pts)-1].pkts * float64(units.MSS))
}

// WebSearch returns the DCTCP-paper web-search workload used by the
// MQ-ECN and TCN evaluations (and by this paper: ~60% small flows, ~10%
// large flows, most bytes from the large tail).
func WebSearch() *Empirical {
	return newEmpirical("websearch", []cdfPoint{
		{1, 0}, {6, 0.15}, {13, 0.2}, {19, 0.3}, {33, 0.4},
		{53, 0.53}, {133, 0.6}, {667, 0.7}, {1333, 0.8},
		{3333, 0.9}, {6667, 0.97}, {20000, 1},
	})
}

// DataMining returns the VL2 data-mining workload: even heavier-tailed
// than web-search (half the flows are a single packet).
func DataMining() *Empirical {
	return newEmpirical("datamining", []cdfPoint{
		{1, 0}, {1, 0.5}, {2, 0.6}, {3, 0.7}, {7, 0.8},
		{267, 0.9}, {2107, 0.95}, {66667, 0.99}, {666667, 1},
	})
}

// Fixed returns a degenerate distribution (every flow the same size),
// useful for controlled tests.
func Fixed(bytes int64) SizeDist { return fixedDist(bytes) }

type fixedDist int64

func (f fixedDist) Name() string            { return "fixed" }
func (f fixedDist) Sample(*rand.Rand) int64 { return int64(f) }
func (f fixedDist) Mean() float64           { return float64(f) }

// Pareto returns a bounded Pareto distribution with shape alpha and
// scale minBytes (heavy upper tail, the textbook model for flow sizes).
// Samples are capped at 1GB to keep simulations finite.
func Pareto(alpha float64, minBytes int64) SizeDist {
	if alpha <= 0 {
		alpha = 1.2
	}
	if minBytes < 1 {
		minBytes = 1
	}
	return paretoDist{alpha: alpha, min: minBytes}
}

type paretoDist struct {
	alpha float64
	min   int64
}

const paretoCap = int64(1_000_000_000)

func (p paretoDist) Name() string { return "pareto" }

func (p paretoDist) Sample(r *rand.Rand) int64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	v := int64(float64(p.min) * math.Pow(u, -1/p.alpha))
	if v > paretoCap {
		return paretoCap
	}
	if v < p.min {
		return p.min
	}
	return v
}

// Mean returns the analytic mean for alpha > 1 (ignoring the cap,
// which matters only in the extreme tail); for alpha <= 1 the mean of
// an unbounded Pareto diverges, so the cap's bound is reported.
func (p paretoDist) Mean() float64 {
	if p.alpha > 1 {
		return p.alpha / (p.alpha - 1) * float64(p.min)
	}
	return float64(paretoCap)
}

// Uniform returns a distribution uniform over [min, max] bytes —
// useful for controlled experiments without a heavy tail.
func Uniform(min, max int64) SizeDist {
	if max < min {
		min, max = max, min
	}
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return uniformDist{min: min, max: max}
}

type uniformDist struct{ min, max int64 }

func (u uniformDist) Name() string { return "uniform" }

func (u uniformDist) Sample(r *rand.Rand) int64 {
	if u.max == u.min {
		return u.min
	}
	return u.min + r.Int63n(u.max-u.min+1)
}

func (u uniformDist) Mean() float64 { return float64(u.min+u.max) / 2 }

// SizeClass buckets flows the way the paper reports FCT.
type SizeClass int

const (
	// Small flows are at most 100KB.
	Small SizeClass = iota + 1
	// Medium flows are between 100KB and 10MB.
	Medium
	// Large flows are at least 10MB.
	Large
)

// String implements fmt.Stringer.
func (c SizeClass) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return "unknown"
	}
}

// Classify returns the paper's size bucket for a flow of the given size:
// small (<=100KB), large (>=10MB), medium otherwise.
func Classify(size int64) SizeClass {
	switch {
	case size <= 100_000:
		return Small
	case size >= 10_000_000:
		return Large
	default:
		return Medium
	}
}

// FlowSpec describes one generated flow before it is instantiated on a
// topology.
type FlowSpec struct {
	// Start is the arrival time.
	Start time.Duration
	// Src and Dst are host indices in [0, Hosts).
	Src, Dst int
	// Size is the flow length in bytes.
	Size int64
	// Service is the flow's service class (switch queue selector).
	Service int
}

// PoissonConfig parametrizes open-loop Poisson flow arrivals.
type PoissonConfig struct {
	// Load is the target average utilization of each edge link (0..1).
	Load float64
	// LinkRate is the edge link capacity.
	LinkRate units.Rate
	// Hosts is the number of hosts attached by edge links.
	Hosts int
	// Dist is the flow size distribution.
	Dist SizeDist
	// Services is the number of service classes flows are spread over.
	Services int
	// NumFlows is how many flows to generate.
	NumFlows int
	// Seed seeds the generator (same seed, same trace).
	Seed int64
}

// Poisson generates a deterministic (seeded) open-loop flow trace. Flows
// arrive with exponential inter-arrival times such that each edge link
// carries Load x LinkRate on average; src/dst pairs are uniform (src !=
// dst) and services are assigned round-robin ("classified evenly").
func Poisson(cfg PoissonConfig) []FlowSpec {
	if cfg.Hosts < 2 || cfg.NumFlows <= 0 || cfg.Load <= 0 {
		return nil
	}
	if cfg.Services <= 0 {
		cfg.Services = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	// Per-host flow arrival rate lambda = load * C[bytes/s] / E[S].
	bytesPerSec := float64(cfg.LinkRate) / 8
	lambdaTotal := cfg.Load * bytesPerSec / cfg.Dist.Mean() * float64(cfg.Hosts)
	meanGap := time.Duration(float64(time.Second) / lambdaTotal)

	flows := make([]FlowSpec, 0, cfg.NumFlows)
	t := time.Duration(0)
	for i := 0; i < cfg.NumFlows; i++ {
		t += time.Duration(r.ExpFloat64() * float64(meanGap))
		src := r.Intn(cfg.Hosts)
		dst := r.Intn(cfg.Hosts - 1)
		if dst >= src {
			dst++
		}
		flows = append(flows, FlowSpec{
			Start:   t,
			Src:     src,
			Dst:     dst,
			Size:    cfg.Dist.Sample(r),
			Service: i % cfg.Services,
		})
	}
	return flows
}

// IncastConfig parametrizes a synchronized fan-in burst.
type IncastConfig struct {
	// Receiver is the destination host index.
	Receiver int
	// Senders are the source host indices (Receiver excluded by the
	// caller).
	Senders []int
	// Size is the per-sender flow size in bytes.
	Size int64
	// Stagger separates consecutive arrivals (0 = fully synchronized).
	Stagger time.Duration
	// Services spreads flows round-robin over this many service classes
	// (<=0 means one).
	Services int
}

// Incast generates the classic fan-in workload: every sender ships one
// flow to the receiver, arrivals Stagger apart in sender order. It is
// fully deterministic (no randomness), so both engines see the same
// byte-identical spec slice.
func Incast(cfg IncastConfig) []FlowSpec {
	if cfg.Services <= 0 {
		cfg.Services = 1
	}
	flows := make([]FlowSpec, 0, len(cfg.Senders))
	for i, src := range cfg.Senders {
		flows = append(flows, FlowSpec{
			Start:   time.Duration(i) * cfg.Stagger,
			Src:     src,
			Dst:     cfg.Receiver,
			Size:    cfg.Size,
			Service: i % cfg.Services,
		})
	}
	return flows
}

// PermutationConfig parametrizes a random permutation traffic matrix.
type PermutationConfig struct {
	// Hosts is the host count; every host sends exactly one flow.
	Hosts int
	// Dist is the flow size distribution.
	Dist SizeDist
	// Stagger separates consecutive arrivals (in host order).
	Stagger time.Duration
	// Services spreads flows round-robin over service classes.
	Services int
	// Seed seeds the permutation and the size samples.
	Seed int64
}

// Permutation generates a derangement-style traffic matrix: host i
// sends one flow to p(i) where p is a seeded random permutation with no
// fixed points, the standard all-to-all stress pattern for fabric
// bisection. Deterministic for a given (Hosts, Seed).
func Permutation(cfg PermutationConfig) []FlowSpec {
	if cfg.Hosts < 2 {
		return nil
	}
	if cfg.Services <= 0 {
		cfg.Services = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	perm := r.Perm(cfg.Hosts)
	// Resolve fixed points by swapping with a neighbor (cyclically), so
	// no host talks to itself.
	for i := 0; i < cfg.Hosts; i++ {
		if perm[i] == i {
			j := (i + 1) % cfg.Hosts
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	flows := make([]FlowSpec, 0, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		flows = append(flows, FlowSpec{
			Start:   time.Duration(i) * cfg.Stagger,
			Src:     i,
			Dst:     perm[i],
			Size:    cfg.Dist.Sample(r),
			Service: i % cfg.Services,
		})
	}
	return flows
}
