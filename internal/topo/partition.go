package topo

import (
	"fmt"
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// Partition records how a sharded builder split a topology: which shard
// every node landed on (in wiring order) and every directed link that
// crosses the cut. The minimum cut delay is the coordinator's lookahead
// and therefore the parallel engine's window width — a partition is only
// worth running if it is comfortably positive.
type Partition struct {
	// Shards is the shard count the topology was built for.
	Shards int
	// Cuts lists every directed cross-shard link, in wiring order.
	Cuts []CutEdge

	shardOf map[pkt.NodeID]int
	order   []pkt.NodeID
}

// CutEdge is one directed link crossing the partition.
type CutEdge struct {
	// From and To are the link's endpoint node IDs.
	From, To pkt.NodeID
	// SrcShard and DstShard are the shards those endpoints live on.
	SrcShard, DstShard int
	// Delay is the link's propagation delay (bounds the lookahead).
	Delay time.Duration
}

// ShardOf returns the shard a node was assigned to.
func (p *Partition) ShardOf(id pkt.NodeID) (int, bool) {
	s, ok := p.shardOf[id]
	return s, ok
}

// Nodes returns every assigned node ID in wiring order.
func (p *Partition) Nodes() []pkt.NodeID { return p.order }

// MinCutDelay returns the smallest delay over all cut edges (0 if the
// partition has no cuts, i.e. a single shard).
func (p *Partition) MinCutDelay() time.Duration {
	var min time.Duration
	for i, c := range p.Cuts {
		if i == 0 || c.Delay < min {
			min = c.Delay
		}
	}
	return min
}

// PairDelays returns the minimum cut delay per directed shard pair
// {src, dst}. This is the per-channel lookahead the channel-clock
// coordinator runs on: a pair connected only by slow links is not
// throttled to the partition-wide MinCutDelay.
func (p *Partition) PairDelays() map[[2]int]time.Duration {
	out := make(map[[2]int]time.Duration)
	for _, c := range p.Cuts {
		key := [2]int{c.SrcShard, c.DstShard}
		if d, ok := out[key]; !ok || c.Delay < d {
			out[key] = c.Delay
		}
	}
	return out
}

func (p *Partition) assign(id pkt.NodeID, shard int) {
	if prev, ok := p.shardOf[id]; ok {
		panic(fmt.Sprintf("topo: node %d assigned to shard %d and %d", id, prev, shard))
	}
	if shard < 0 || shard >= p.Shards {
		panic(fmt.Sprintf("topo: node %d assigned to shard %d of %d", id, shard, p.Shards))
	}
	p.shardOf[id] = shard
	p.order = append(p.order, id)
}

func (p *Partition) mustShardOf(id pkt.NodeID) int {
	s, ok := p.shardOf[id]
	if !ok {
		panic(fmt.Sprintf("topo: node %d linked before assignment", id))
	}
	return s
}

// shardBuilder is the shared plumbing of the sharded topology
// constructors: it creates the coordinator's shards, tracks node
// assignments, and wires each link as local (same shard: scheduled
// directly on the shard engine) or boundary (different shards: routed
// through the coordinator's deterministic merge and recorded as a cut
// edge).
type shardBuilder struct {
	coord  *sim.Coordinator
	shards []*sim.Shard
	part   *Partition
}

func newShardBuilder(coord *sim.Coordinator, shards int) *shardBuilder {
	if shards < 1 {
		panic(fmt.Sprintf("topo: shard count must be >= 1, got %d", shards))
	}
	sb := &shardBuilder{
		coord: coord,
		part: &Partition{
			Shards:  shards,
			shardOf: make(map[pkt.NodeID]int),
		},
	}
	for i := 0; i < shards; i++ {
		sb.shards = append(sb.shards, coord.NewShard())
	}
	return sb
}

// engine returns the shard's engine (entities on that shard must
// schedule exclusively against it).
func (sb *shardBuilder) engine(shard int) *sim.Engine {
	return sb.shards[shard].Engine()
}

// engineOf returns the engine of the shard a node was assigned to.
func (sb *shardBuilder) engineOf(id pkt.NodeID) *sim.Engine {
	return sb.engine(sb.part.mustShardOf(id))
}

// assign places a node on a shard; every node must be assigned exactly
// once, before any link touching it is wired.
func (sb *shardBuilder) assign(id pkt.NodeID, shard int) {
	sb.part.assign(id, shard)
}

// link wires the directed link from -> to, delivering to dst. Both
// endpoints must already be assigned; the link is local or boundary
// depending on whether their shards match.
func (sb *shardBuilder) link(from, to pkt.NodeID, rate units.Rate,
	delay time.Duration, dst netsim.Node) *netsim.Link {
	l := sb.linkVal(from, to, rate, delay, dst)
	return &l
}

// linkVal is link returning the link by value, for builders that embed
// links in arena port slots instead of heap-allocating each one.
func (sb *shardBuilder) linkVal(from, to pkt.NodeID, rate units.Rate,
	delay time.Duration, dst netsim.Node) netsim.Link {
	sf := sb.part.mustShardOf(from)
	st := sb.part.mustShardOf(to)
	if sf == st {
		return netsim.LocalLink(sb.engine(sf), rate, delay, dst)
	}
	b := sb.coord.Boundary(sb.shards[sf], sb.shards[st], delay)
	sb.part.Cuts = append(sb.part.Cuts, CutEdge{
		From: from, To: to, SrcShard: sf, DstShard: st, Delay: delay,
	})
	return netsim.BoundaryLink(b, rate, dst)
}
