package topo

import (
	"testing"
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

func fifoProfile() PortProfile {
	return PortProfile{
		Weights:  EqualWeights(1),
		NewSched: FIFOFactory(),
	}
}

func TestDumbbellWiring(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DumbbellConfig{
		Senders:    4,
		Bottleneck: fifoProfile(),
	})
	if len(d.Senders) != 4 {
		t.Fatalf("senders = %d", len(d.Senders))
	}
	if d.Switch.NumPorts() != 5 {
		t.Fatalf("ports = %d, want 5", d.Switch.NumPorts())
	}
	if d.Recv.NodeID() != 1 {
		t.Fatal("receiver must be node 1")
	}
}

func TestDumbbellEndToEndFlow(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DumbbellConfig{
		Senders:    2,
		Bottleneck: fifoProfile(),
	})
	done := 0
	for i, h := range d.Senders {
		f := transport.NewFlow(eng, h, d.Recv, pkt.FlowID(i+1), 0, 50_000,
			transport.Config{}, func(*transport.Sender) { done++ })
		f.Sender.Start()
	}
	eng.RunUntil(100 * time.Millisecond)
	if done != 2 {
		t.Fatalf("completed %d flows, want 2", done)
	}
	if d.Switch.RouteDrops() != 0 {
		t.Fatalf("route drops = %d", d.Switch.RouteDrops())
	}
}

func TestDumbbellBaseRTT(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DumbbellConfig{Senders: 1, Bottleneck: fifoProfile()})
	want := d.BaseRTT()
	f := transport.NewFlow(eng, d.Senders[0], d.Recv, 1, 0, 10_000, transport.Config{}, nil)
	f.Sender.Start()
	eng.RunUntil(10 * time.Millisecond)
	got := f.Sender.MinRTT()
	if got < want-5*time.Microsecond || got > want+5*time.Microsecond {
		t.Fatalf("measured base RTT %v vs estimate %v", got, want)
	}
}

func TestLeafSpineWiring(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile()})
	if ls.NumHosts() != 48 {
		t.Fatalf("hosts = %d, want 48", ls.NumHosts())
	}
	if len(ls.Leaves) != 4 || len(ls.Spines) != 4 {
		t.Fatal("switch counts wrong")
	}
	// Each leaf: 12 down + 4 up ports; each spine: 4 down ports.
	for _, l := range ls.Leaves {
		if l.NumPorts() != 16 {
			t.Fatalf("leaf ports = %d, want 16", l.NumPorts())
		}
	}
	for _, s := range ls.Spines {
		if s.NumPorts() != 4 {
			t.Fatalf("spine ports = %d, want 4", s.NumPorts())
		}
	}
}

func TestLeafSpineIntraRackFlow(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile()})
	done := false
	// Hosts 0 and 1 share leaf 0.
	f := transport.NewFlow(eng, ls.Host(0), ls.Host(1), 1, 0, 100_000,
		transport.Config{}, func(*transport.Sender) { done = true })
	f.Sender.Start()
	eng.RunUntil(100 * time.Millisecond)
	if !done {
		t.Fatal("intra-rack flow did not complete")
	}
	// Intra-rack traffic must not touch spines.
	for _, s := range ls.Spines {
		for i := 0; i < s.NumPorts(); i++ {
			if s.Port(i).TxPackets() != 0 {
				t.Fatal("intra-rack flow crossed a spine")
			}
		}
	}
}

func TestLeafSpineInterRackFlow(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile()})
	done := false
	// Host 0 (leaf 0) to host 47 (leaf 3).
	f := transport.NewFlow(eng, ls.Host(0), ls.Host(47), 1, 0, 100_000,
		transport.Config{}, func(*transport.Sender) { done = true })
	f.Sender.Start()
	eng.RunUntil(100 * time.Millisecond)
	if !done {
		t.Fatal("inter-rack flow did not complete")
	}
	crossed := 0
	for _, s := range ls.Spines {
		for i := 0; i < s.NumPorts(); i++ {
			crossed += int(s.Port(i).TxPackets())
		}
	}
	if crossed == 0 {
		t.Fatal("inter-rack flow did not cross any spine")
	}
}

func TestLeafSpineECMPSpread(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile()})
	// Many flows from leaf 0 to leaf 1 should spread across all 4
	// spines via flow hashing.
	var done int
	for i := 0; i < 64; i++ {
		f := transport.NewFlow(eng, ls.Host(i%12), ls.Host(12+i%12), pkt.FlowID(i+1), 0, 10_000,
			transport.Config{}, func(*transport.Sender) { done++ })
		f.Sender.Start()
	}
	eng.RunUntil(time.Second)
	if done != 64 {
		t.Fatalf("completed %d/64 flows", done)
	}
	used := 0
	for _, s := range ls.Spines {
		active := false
		for i := 0; i < s.NumPorts(); i++ {
			if s.Port(i).TxPackets() > 0 {
				active = true
			}
		}
		if active {
			used++
		}
	}
	if used < 3 {
		t.Fatalf("ECMP used only %d/4 spines for 64 flows", used)
	}
}

func TestLeafSpineAllPairsReachable(t *testing.T) {
	// Route-level check without transports: inject raw packets from each
	// host's NIC toward every other host and count unclaimed arrivals.
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile()})
	n := ls.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			ls.Host(src).Send(&pkt.Packet{
				Flow: pkt.FlowID(src*n + dst),
				Src:  pkt.NodeID(src + 1),
				Dst:  pkt.NodeID(dst + 1),
				Size: 100,
			})
		}
	}
	eng.Run()
	var delivered int64
	for _, h := range ls.Hosts {
		delivered += h.RxPackets()
		// Unclaimed is expected (no handlers registered); what matters
		// is arrival.
	}
	want := int64(n * (n - 1))
	if delivered != want {
		t.Fatalf("delivered %d packets, want %d", delivered, want)
	}
	for _, sw := range append(append([]*netsim.Switch{}, ls.Leaves...), ls.Spines...) {
		if sw.RouteDrops() != 0 {
			t.Fatalf("switch %d dropped %d packets for lack of routes", sw.NodeID(), sw.RouteDrops())
		}
	}
}

func TestFactories(t *testing.T) {
	eng := sim.NewEngine()
	w := EqualWeights(3)
	if len(w) != 3 || w[0] != 1 {
		t.Fatal("EqualWeights broken")
	}
	for name, f := range map[string]SchedFactory{
		"dwrr":  DWRRFactory(eng),
		"wfq":   WFQFactory(),
		"sp":    SPFactory(),
		"spwfq": SPWFQFactory(1),
		"fifo":  FIFOFactory(),
	} {
		s := f(w)
		if s == nil {
			t.Fatalf("%s factory returned nil", name)
		}
	}
}

func TestPortProfileMarker(t *testing.T) {
	eng := sim.NewEngine()
	called := 0
	pp := PortProfile{
		Weights:   EqualWeights(2),
		NewSched:  WFQFactory(),
		NewMarker: func() ecn.Marker { called++; return &ecn.PerPort{K: units.Packets(10)} },
	}
	d := NewDumbbell(eng, DumbbellConfig{Senders: 1, Bottleneck: pp})
	if called != 1 {
		t.Fatalf("marker factory called %d times, want 1 (bottleneck only)", called)
	}
	if d.Bottleneck.NumQueues() != 2 {
		t.Fatal("profile queue count not applied")
	}
}

func TestBaseRTTHelper(t *testing.T) {
	got := BaseRTT(2, 5*time.Microsecond, 10*units.Gbps)
	// 4 props (20us) + 2 data ser (2.4us) + 2 ack ser (~0.104us).
	want := 20*time.Microsecond + 2400*time.Nanosecond + 104*time.Nanosecond
	if got != want {
		t.Fatalf("BaseRTT = %v, want %v", got, want)
	}
}
