package topo

import (
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// FatTreeConfig parametrizes a k-ary fat-tree (Al-Fares et al.): k pods,
// each with k/2 edge and k/2 aggregation switches, (k/2)^2 cores, and
// k^3/4 hosts. All links share one rate, so the fabric is full
// bisection; it is the scale topology the calendar-queue scheduler is
// benchmarked on (BenchmarkFatTree).
type FatTreeConfig struct {
	// K is the switch radix; must be even (default 4). k=8 yields 128
	// hosts, 32 edge, 32 aggregation, and 16 core switches; k=32 yields
	// 8192 hosts and ~49k ports.
	K int
	// Rate is the capacity of every link (default 10 Gbps).
	Rate units.Rate
	// Delay is the one-way propagation delay per link (default 1us).
	Delay time.Duration
	// FabricDelaySkew, when nonzero, gives the agg<->core cable between
	// pod p and core c the delay Delay + (1+p*nCores+c)*FabricDelaySkew
	// (both directions) instead of a uniform Delay — every fabric cable
	// gets a unique length, and none matches the pod-internal delay.
	// Differential tests use a nanosecond-scale skew so no two
	// cross-shard arrivals can tie on (at, schedAt) through different
	// channels, which is the precondition for the sharded tie-break to
	// reproduce the serial one exactly (see the lane discussion in
	// internal/sim). Physically it models unequal cable runs to the
	// core tier; BaseRTT ignores it (it is sub-precision noise there).
	FabricDelaySkew time.Duration
	// Ports configures every switch port (required).
	Ports PortProfile
}

// FatTree is the instantiated fabric.
type FatTree struct {
	// Eng is the driving engine.
	Eng *sim.Engine
	// Hosts are all hosts; Hosts[i] has NodeID i+1.
	Hosts []*netsim.Host
	// Edges, Aggs and Cores are the three switch tiers. Edges and Aggs
	// are pod-major: pod p owns indices [p*k/2, (p+1)*k/2).
	Edges, Aggs, Cores []*netsim.Switch

	cfg    FatTreeConfig
	arenas []*netsim.Arena
}

// ftShape holds the derived fat-tree dimensions.
type ftShape struct {
	k, half, pods, hostsPerPod, nHosts, nCores int
}

// shape applies the config defaults and derives the dimensions.
func (cfg *FatTreeConfig) shape() ftShape {
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.K%2 != 0 {
		panic("topo: fat-tree K must be even")
	}
	if cfg.Rate == 0 {
		cfg.Rate = 10 * units.Gbps
	}
	if cfg.Delay == 0 {
		cfg.Delay = time.Microsecond
	}
	k := cfg.K
	half := k / 2
	return ftShape{
		k: k, half: half, pods: k,
		hostsPerPod: half * half,
		nHosts:      k * half * half,
		nCores:      half * half,
	}
}

// ftAlloc is the fat-tree builders' per-shard allocation state: one
// netsim.Arena per shard (so no two shards' port state shares a cache
// line), one NIC FIFO slab per shard, and — when the profile opts in
// via NewSchedBlock — one scheduler slab dispenser per shard. The
// arenas are sized exactly from the shard's pod and core assignment,
// so a correctly wired build never falls back to the heap.
type ftAlloc struct {
	pp     *PortProfile
	engs   []*sim.Engine
	arenas []*netsim.Arena
	disp   []func() sched.Scheduler
	nic    []*sched.FIFOBlock
}

func newFTAlloc(pp *PortProfile, engs []*sim.Engine, sh ftShape,
	podShard, coreShard func(int) int) *ftAlloc {
	shards := len(engs)
	podsOf := make([]int, shards)
	coresOf := make([]int, shards)
	for p := 0; p < sh.pods; p++ {
		podsOf[podShard(p)]++
	}
	for c := 0; c < sh.nCores; c++ {
		coresOf[coreShard(c)]++
	}
	fa := &ftAlloc{
		pp:     pp,
		engs:   engs,
		arenas: make([]*netsim.Arena, shards),
		disp:   make([]func() sched.Scheduler, shards),
		nic:    make([]*sched.FIFOBlock, shards),
	}
	for s := 0; s < shards; s++ {
		// Per pod: k^2 switch ports (k/2 edges and k/2 aggs of radix k);
		// per core: one port per pod.
		swPorts := podsOf[s]*sh.k*sh.k + coresOf[s]*sh.pods
		hosts := podsOf[s] * sh.hostsPerPod
		fa.arenas[s] = netsim.NewArena(netsim.ArenaSpec{
			Ports:    hosts + swPorts,
			Hosts:    hosts,
			Switches: podsOf[s]*sh.k + coresOf[s],
			PortRefs: swPorts,
		})
		if pp.NewSchedBlock != nil {
			fa.disp[s] = pp.NewSchedBlock(engs[s], pp.Weights, swPorts)
		}
		fa.nic[s] = sched.NewFIFOBlock(hosts)
	}
	return fa
}

// newPort carves one switch port from shard s's arena.
func (fa *ftAlloc) newPort(s int, link netsim.Link) *netsim.Port {
	var sc sched.Scheduler
	if fa.disp[s] != nil {
		sc = fa.disp[s]()
	} else {
		sc = fa.pp.scheduler(fa.engs[s])
	}
	return fa.arenas[s].NewPort(link, netsim.PortConfig{
		Sched:       sc,
		Marker:      fa.pp.marker(),
		BufferBytes: fa.pp.BufferBytes,
	})
}

// newHost carves a host with a slab-FIFO NIC transmitting on link.
func (fa *ftAlloc) newHost(s int, id pkt.NodeID, link netsim.Link) *netsim.Host {
	h := fa.arenas[s].NewHost(fa.engs[s], id)
	h.AttachNICPort(fa.arenas[s].NewPort(link, netsim.PortConfig{Sched: fa.nic[s].Next()}))
	return h
}

// newSwitch carves a switch with a portCap-entry port table.
func (fa *ftAlloc) newSwitch(s int, id pkt.NodeID, portCap int) *netsim.Switch {
	return fa.arenas[s].NewSwitch(fa.engs[s], id, portCap)
}

// NewFatTree wires the fabric. Every switch port gets the configured
// scheduler/marker profile; host NICs are plain FIFOs. All node and
// queue state is carved from one arena (see netsim.Arena), so building
// even a k=32 fabric costs a handful of slab allocations.
//
// Port layout (half = k/2):
//   - edge: ports 0..half-1 down to hosts, half..k-1 up to the pod's
//     aggregation switches (agg j at port half+j).
//   - agg j (index within its pod): ports 0..half-1 down to the pod's
//     edge switches, half..k-1 up to cores j*half..j*half+half-1.
//   - core: port p down to pod p (via the one agg it attaches to).
func NewFatTree(eng *sim.Engine, cfg FatTreeConfig) *FatTree {
	sh := cfg.shape()
	k, half, pods := sh.k, sh.half, sh.pods
	hostsPerPod, nHosts, nCores := sh.hostsPerPod, sh.nHosts, sh.nCores

	zero := func(int) int { return 0 }
	fa := newFTAlloc(&cfg.Ports, []*sim.Engine{eng}, sh, zero, zero)

	ft := &FatTree{Eng: eng, cfg: cfg, arenas: fa.arenas}
	ft.Hosts = make([]*netsim.Host, 0, nHosts)
	ft.Edges = make([]*netsim.Switch, 0, pods*half)
	ft.Aggs = make([]*netsim.Switch, 0, pods*half)
	ft.Cores = make([]*netsim.Switch, 0, nCores)
	base := switchIDBase(nHosts)
	for i := 0; i < pods*half; i++ {
		ft.Edges = append(ft.Edges, fa.newSwitch(0, pkt.NodeID(base+1+i), k))
		ft.Aggs = append(ft.Aggs, fa.newSwitch(0, pkt.NodeID(2*base+1+i), k))
	}
	for i := 0; i < half*half; i++ {
		ft.Cores = append(ft.Cores, fa.newSwitch(0, pkt.NodeID(3*base+1+i), pods))
	}

	link := func(to netsim.Node) netsim.Link {
		return netsim.LocalLink(eng, cfg.Rate, cfg.Delay, to)
	}
	fabricLink := func(p, c int, to netsim.Node) netsim.Link {
		d := cfg.Delay + time.Duration(1+p*nCores+c)*cfg.FabricDelaySkew
		return netsim.LocalLink(eng, cfg.Rate, d, to)
	}

	// Hosts and host<->edge links. Host i lives in pod i/hostsPerPod on
	// edge (i%hostsPerPod)/half at down-port i%half.
	for i := 0; i < nHosts; i++ {
		edge := ft.Edges[i/hostsPerPod*half+(i%hostsPerPod)/half]
		h := fa.newHost(0, pkt.NodeID(i+1), link(edge))
		edge.AddPort(fa.newPort(0, link(h)))
		ft.Hosts = append(ft.Hosts, h)
	}

	// Edge<->agg links, pod by pod, interleaved so each switch's ports
	// appear in index order (edge down-ports were added above).
	for p := 0; p < pods; p++ {
		for e := 0; e < half; e++ {
			edge := ft.Edges[p*half+e]
			for j := 0; j < half; j++ {
				edge.AddPort(fa.newPort(0, link(ft.Aggs[p*half+j])))
			}
		}
		for j := 0; j < half; j++ {
			agg := ft.Aggs[p*half+j]
			for e := 0; e < half; e++ {
				agg.AddPort(fa.newPort(0, link(ft.Edges[p*half+e])))
			}
		}
	}
	// Agg<->core links: agg j (in every pod) owns cores j*half..j*half+half-1.
	for p := 0; p < pods; p++ {
		for j := 0; j < half; j++ {
			agg := ft.Aggs[p*half+j]
			for i := 0; i < half; i++ {
				agg.AddPort(fa.newPort(0, fabricLink(p, j*half+i, ft.Cores[j*half+i])))
			}
		}
	}
	// Core down-ports in pod order, so port p reaches pod p.
	for c, core := range ft.Cores {
		for p := 0; p < pods; p++ {
			core.AddPort(fa.newPort(0, fabricLink(p, c, ft.Aggs[p*half+c/half])))
		}
	}

	ft.installRoutes(sh)
	return ft
}

// installRoutes wires the three tiers' routing functions — identical
// for the serial and sharded builders. Up-paths use flow-level ECMP;
// the agg tier salts the hash so the core choice decorrelates from the
// edge tier's agg choice (same hash mod the same divisor at both tiers
// would polarize).
func (ft *FatTree) installRoutes(sh ftShape) {
	half, hostsPerPod, nHosts := sh.half, sh.hostsPerPod, sh.nHosts
	hostPod := func(dst pkt.NodeID) int { return (int(dst) - 1) / hostsPerPod }
	hostEdge := func(dst pkt.NodeID) int { return ((int(dst) - 1) % hostsPerPod) / half }
	hostDown := func(dst pkt.NodeID) int { return (int(dst) - 1) % half }
	for i, edge := range ft.Edges {
		p, e := i/half, i%half
		edge.SetRoute(func(pk *pkt.Packet) int {
			if int(pk.Dst) < 1 || int(pk.Dst) > nHosts {
				return -1
			}
			if hostPod(pk.Dst) == p && hostEdge(pk.Dst) == e {
				return hostDown(pk.Dst)
			}
			return half + int(ecmpHash(uint64(pk.Flow))%uint64(half))
		})
	}
	for i, agg := range ft.Aggs {
		p := i / half
		agg.SetRoute(func(pk *pkt.Packet) int {
			if int(pk.Dst) < 1 || int(pk.Dst) > nHosts {
				return -1
			}
			if hostPod(pk.Dst) == p {
				return hostEdge(pk.Dst)
			}
			return half + int(ecmpHash(uint64(pk.Flow)^ecmpAggSalt)%uint64(half))
		})
	}
	for _, core := range ft.Cores {
		core.SetRoute(func(pk *pkt.Packet) int {
			if int(pk.Dst) < 1 || int(pk.Dst) > nHosts {
				return -1
			}
			return hostPod(pk.Dst)
		})
	}
}

// ecmpAggSalt decorrelates the aggregation tier's ECMP hash from the
// edge tier's.
const ecmpAggSalt = 0x5bd1e995

// switchIDBase returns the node-ID stride for the fat-tree's switch
// tiers: edges start at base+1, aggs at 2*base+1, cores at 3*base+1.
// Hosts occupy 1..nHosts, so the base is the smallest multiple of 1000
// at or above nHosts — the historical 1001/2001/3001 layout for k <= 8,
// and collision-free for k = 16 and beyond (1024+ hosts).
func switchIDBase(nHosts int) int {
	return 1000 * ((nHosts + 999) / 1000)
}

// blockOf maps item i of n onto one of shards contiguous blocks.
func blockOf(i, n, shards int) int { return i * shards / n }

// NewFatTreeSharded wires the same fat-tree across a coordinator's
// shards. Pods are block-partitioned — pod p (its hosts, edge and
// aggregation switches) lands on shard p*shards/k — and the cores are
// block-distributed the same way, so the only cross-shard links are
// agg<->core cables between different blocks (every one with delay
// cfg.Delay = the lookahead). shards == 1 degenerates to the serial
// wiring on one shard engine; shards must not exceed the pod count.
// FatTree.Eng is shard 0's engine; drive with coord.RunUntil. Each
// shard's node state comes from its own arena, so shard-hot state
// never false-shares a cache line with a neighbour's.
func NewFatTreeSharded(coord *sim.Coordinator, cfg FatTreeConfig, shards int) (*FatTree, *Partition) {
	sh := cfg.shape()
	k, half, pods := sh.k, sh.half, sh.pods
	hostsPerPod, nHosts, nCores := sh.hostsPerPod, sh.nHosts, sh.nCores
	if shards > pods {
		panic("topo: fat-tree shard count must not exceed the pod count")
	}
	sb := newShardBuilder(coord, shards)
	podShard := func(p int) int { return blockOf(p, pods, shards) }
	coreShard := func(c int) int { return blockOf(c, nCores, shards) }

	engs := make([]*sim.Engine, shards)
	for s := 0; s < shards; s++ {
		engs[s] = sb.engine(s)
	}
	fa := newFTAlloc(&cfg.Ports, engs, sh, podShard, coreShard)

	ft := &FatTree{Eng: sb.engine(0), cfg: cfg, arenas: fa.arenas}
	ft.Hosts = make([]*netsim.Host, 0, nHosts)
	ft.Edges = make([]*netsim.Switch, 0, pods*half)
	ft.Aggs = make([]*netsim.Switch, 0, pods*half)
	ft.Cores = make([]*netsim.Switch, 0, nCores)
	base := switchIDBase(nHosts)
	for i := 0; i < pods*half; i++ {
		s := podShard(i / half)
		eid, aid := pkt.NodeID(base+1+i), pkt.NodeID(2*base+1+i)
		sb.assign(eid, s)
		sb.assign(aid, s)
		ft.Edges = append(ft.Edges, fa.newSwitch(s, eid, k))
		ft.Aggs = append(ft.Aggs, fa.newSwitch(s, aid, k))
	}
	for i := 0; i < nCores; i++ {
		id := pkt.NodeID(3*base + 1 + i)
		sb.assign(id, coreShard(i))
		ft.Cores = append(ft.Cores, fa.newSwitch(coreShard(i), id, pods))
	}

	link := func(from netsim.Node, to netsim.Node) netsim.Link {
		return sb.linkVal(from.NodeID(), to.NodeID(), cfg.Rate, cfg.Delay, to)
	}
	// Same per-(pod, core) cable-length formula as the serial builder;
	// these are the cut links, so a skew here also diversifies the
	// coordinator's per-channel delays.
	fabricLink := func(p, c int, from, to netsim.Node) netsim.Link {
		d := cfg.Delay + time.Duration(1+p*nCores+c)*cfg.FabricDelaySkew
		return sb.linkVal(from.NodeID(), to.NodeID(), cfg.Rate, d, to)
	}

	// Hosts and host<->edge links (pod-local, never cut).
	for i := 0; i < nHosts; i++ {
		p := i / hostsPerPod
		s := podShard(p)
		edge := ft.Edges[p*half+(i%hostsPerPod)/half]
		id := pkt.NodeID(i + 1)
		sb.assign(id, s)
		h := fa.newHost(s, id, link2(sb, id, edge, cfg.Rate, cfg.Delay))
		edge.AddPort(fa.newPort(s, link(edge, h)))
		ft.Hosts = append(ft.Hosts, h)
	}

	// Edge<->agg links, pod by pod (pod-local, never cut).
	for p := 0; p < pods; p++ {
		s := podShard(p)
		for e := 0; e < half; e++ {
			edge := ft.Edges[p*half+e]
			for j := 0; j < half; j++ {
				edge.AddPort(fa.newPort(s, link(edge, ft.Aggs[p*half+j])))
			}
		}
		for j := 0; j < half; j++ {
			agg := ft.Aggs[p*half+j]
			for e := 0; e < half; e++ {
				agg.AddPort(fa.newPort(s, link(agg, ft.Edges[p*half+e])))
			}
		}
	}
	// Agg<->core links: the partition's only cut edges.
	for p := 0; p < pods; p++ {
		for j := 0; j < half; j++ {
			agg := ft.Aggs[p*half+j]
			for i := 0; i < half; i++ {
				agg.AddPort(fa.newPort(podShard(p),
					fabricLink(p, j*half+i, agg, ft.Cores[j*half+i])))
			}
		}
	}
	for c, core := range ft.Cores {
		for p := 0; p < pods; p++ {
			core.AddPort(fa.newPort(coreShard(c),
				fabricLink(p, c, core, ft.Aggs[p*half+c/half])))
		}
	}

	ft.installRoutes(sh)
	return ft, sb.part
}

// link2 wires the host->edge link (host IDs are assigned immediately
// before their NIC is attached, so the generic from-node helper cannot
// be closed over the host pointer yet).
func link2(sb *shardBuilder, from pkt.NodeID, to netsim.Node,
	rate units.Rate, delay time.Duration) netsim.Link {
	return sb.linkVal(from, to.NodeID(), rate, delay, to)
}

// NumHosts returns the host count (k^3/4).
func (ft *FatTree) NumHosts() int { return len(ft.Hosts) }

// Host returns host by index (0-based).
func (ft *FatTree) Host(i int) *netsim.Host { return ft.Hosts[i] }

// ArenaOverflow reports how many node objects missed the builders'
// arena reservations (0 for a correctly sized build — asserted by the
// wiring tests).
func (ft *FatTree) ArenaOverflow() int {
	total := 0
	for _, a := range ft.arenas {
		total += a.Overflow()
	}
	return total
}

// BaseRTT returns the unloaded inter-pod RTT estimate (host -> edge ->
// agg -> core -> agg -> edge -> host and back): the value used for ECN
// threshold derivation at fat-tree scale.
func (ft *FatTree) BaseRTT() time.Duration {
	// 6 links each way.
	prop := 12 * ft.cfg.Delay
	dataSer := 6 * units.Serialization(units.MTU, ft.cfg.Rate)
	ackSer := 6 * units.Serialization(units.AckSize, ft.cfg.Rate)
	return prop + dataSer + ackSer
}
