package topo

import (
	"testing"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

func TestLeafSpineCustomDimensions(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{
		Leaves: 2, Spines: 3, HostsPerLeaf: 4,
		Rate:  40 * units.Gbps,
		Delay: time.Microsecond,
		Ports: fifoProfile(),
	})
	if ls.NumHosts() != 8 {
		t.Fatalf("hosts = %d", ls.NumHosts())
	}
	for _, l := range ls.Leaves {
		if l.NumPorts() != 7 { // 4 down + 3 up
			t.Fatalf("leaf ports = %d", l.NumPorts())
		}
	}
	for _, s := range ls.Spines {
		if s.NumPorts() != 2 {
			t.Fatalf("spine ports = %d", s.NumPorts())
		}
	}
	// Inter-rack reachability.
	ls.Host(0).Send(&pkt.Packet{Flow: 1, Src: 1, Dst: 8, Size: 100})
	eng.Run()
	if ls.Host(7).RxPackets() != 1 {
		t.Fatal("custom fabric did not deliver")
	}
}

func TestECMPFlowStickiness(t *testing.T) {
	// All packets of one flow must take the same spine (no reordering).
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile()})
	for i := 0; i < 50; i++ {
		ls.Host(0).Send(&pkt.Packet{Flow: 42, Src: 1, Dst: 13, Size: 100, ID: uint64(i)})
	}
	eng.Run()
	spinesUsed := 0
	for _, s := range ls.Spines {
		for i := 0; i < s.NumPorts(); i++ {
			if s.Port(i).TxPackets() > 0 {
				spinesUsed++
				if s.Port(i).TxPackets() != 50 {
					t.Fatalf("flow split across paths: %d packets on one spine", s.Port(i).TxPackets())
				}
			}
		}
	}
	if spinesUsed != 1 {
		t.Fatalf("flow touched %d spine ports, want 1", spinesUsed)
	}
}

func TestECMPDifferentFlowsDiverge(t *testing.T) {
	// With many flows, the hash must not collapse to one spine.
	counts := map[uint64]bool{}
	for f := uint64(1); f <= 64; f++ {
		counts[ecmpHash(f)%4] = true
	}
	if len(counts) < 3 {
		t.Fatalf("ECMP hash uses only %d of 4 spines over 64 flows", len(counts))
	}
}

func TestLeafSpineRoutesUnknownDstToDrop(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile()})
	ls.Host(0).Send(&pkt.Packet{Flow: 1, Src: 1, Dst: 999, Size: 100})
	eng.Run()
	if ls.Leaves[0].RouteDrops() != 1 {
		t.Fatal("unknown destination must be dropped at the leaf")
	}
}

func TestDumbbellDefaults(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DumbbellConfig{Senders: 1, Bottleneck: fifoProfile()})
	if d.Bottleneck.LinkRate() != 10*units.Gbps {
		t.Fatalf("default bottleneck rate = %v", d.Bottleneck.LinkRate())
	}
	// Default delay 5us: base RTT = 4*5us + serialization terms.
	if rtt := d.BaseRTT(); rtt < 20*time.Microsecond || rtt > 25*time.Microsecond {
		t.Fatalf("default BaseRTT = %v", rtt)
	}
}

func TestDumbbellAsymmetricRates(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, DumbbellConfig{
		Senders:        1,
		AccessRate:     10 * units.Gbps,
		BottleneckRate: 1 * units.Gbps,
		Bottleneck:     fifoProfile(),
	})
	if d.Bottleneck.LinkRate() != 1*units.Gbps {
		t.Fatal("bottleneck rate not applied")
	}
	// Base RTT includes the slower bottleneck serialization (12us).
	if rtt := d.BaseRTT(); rtt < 33*time.Microsecond {
		t.Fatalf("asymmetric BaseRTT = %v, want > 33us", rtt)
	}
}

func TestPerPacketECMPSpray(t *testing.T) {
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile(), PerPacketECMP: true})
	for i := 0; i < 40; i++ {
		ls.Host(0).Send(&pkt.Packet{Flow: 42, Src: 1, Dst: 13, Size: 100, ID: uint64(i)})
	}
	eng.Run()
	// One flow's packets must be spread over all four spines.
	used := 0
	for _, s := range ls.Spines {
		for i := 0; i < s.NumPorts(); i++ {
			if s.Port(i).TxPackets() > 0 {
				used++
				if s.Port(i).TxPackets() != 10 {
					t.Fatalf("uneven spray: %d packets on one spine", s.Port(i).TxPackets())
				}
			}
		}
	}
	if used != 4 {
		t.Fatalf("spray used %d spine ports, want 4", used)
	}
	if ls.Host(12).RxPackets() != 40 {
		t.Fatalf("delivered %d/40", ls.Host(12).RxPackets())
	}
}

func TestPerPacketECMPTransportSurvivesReordering(t *testing.T) {
	// Under packet spraying a DCTCP flow must still deliver exactly its
	// bytes (cumulative ACKs absorb reordering).
	eng := sim.NewEngine()
	ls := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile(), PerPacketECMP: true})
	done := false
	f := transport.NewFlow(eng, ls.Host(0), ls.Host(13), 1, 0, 500_000,
		transport.Config{}, func(*transport.Sender) { done = true })
	f.Sender.Start()
	eng.RunUntil(2 * time.Second)
	if !done {
		t.Fatal("flow did not complete under per-packet ECMP")
	}
	if f.Receiver.Goodput() != 500_000 {
		t.Fatalf("goodput = %d", f.Receiver.Goodput())
	}
}
