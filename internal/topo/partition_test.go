package topo

import (
	"testing"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/sim"
)

// Every sharded builder must assign every node exactly once, keep every
// cut-edge delay positive (the conservative protocol needs lookahead >
// 0), and stay within the declared shard count.
func TestPartitionInvariants(t *testing.T) {
	cases := []struct {
		name      string
		shards    int
		wantNodes int
		wantCuts  int
		build     func(coord *sim.Coordinator, shards int) *Partition
	}{
		{
			name: "dumbbell/1", shards: 1,
			// 4 senders + receiver + switch.
			wantNodes: 6, wantCuts: 0,
			build: func(c *sim.Coordinator, n int) *Partition {
				_, p := NewDumbbellSharded(c, DumbbellConfig{Senders: 4, Bottleneck: fifoProfile()}, n)
				return p
			},
		},
		{
			name: "dumbbell/2", shards: 2,
			// Cut: each host<->switch cable, both directions: 2*(4+1).
			wantNodes: 6, wantCuts: 10,
			build: func(c *sim.Coordinator, n int) *Partition {
				_, p := NewDumbbellSharded(c, DumbbellConfig{Senders: 4, Bottleneck: fifoProfile()}, n)
				return p
			},
		},
		{
			name: "leafspine/1", shards: 1,
			// 48 hosts + 4 leaves + 4 spines.
			wantNodes: 56, wantCuts: 0,
			build: func(c *sim.Coordinator, n int) *Partition {
				_, p := NewLeafSpineSharded(c, LeafSpineConfig{Ports: fifoProfile()}, n)
				return p
			},
		},
		{
			name: "leafspine/2", shards: 2,
			// Cut: every host<->leaf cable, both directions: 2*48.
			wantNodes: 56, wantCuts: 96,
			build: func(c *sim.Coordinator, n int) *Partition {
				_, p := NewLeafSpineSharded(c, LeafSpineConfig{Ports: fifoProfile()}, n)
				return p
			},
		},
		{
			name: "fattree/1", shards: 1,
			// k=4: 16 hosts + 8 edges + 8 aggs + 4 cores.
			wantNodes: 36, wantCuts: 0,
			build: func(c *sim.Coordinator, n int) *Partition {
				_, p := NewFatTreeSharded(c, FatTreeConfig{K: 4, Ports: fifoProfile()}, n)
				return p
			},
		},
		{
			name: "fattree/2", shards: 2,
			// k=4, 2 shards: pods {0,1} vs {2,3}, cores {0,1} vs {2,3}.
			// Each pod has 2 aggs x 2 core links; the cut carries the
			// agg<->core pairs whose blocks differ, both directions.
			wantNodes: 36,
			// Pods on shard 0 reach cores 2,3 (agg 1's cores) = 2 links
			// per pod; same for shard-1 pods reaching cores 0,1. 4 pods x
			// 2 links x 2 directions.
			wantCuts: 16,
			build: func(c *sim.Coordinator, n int) *Partition {
				_, p := NewFatTreeSharded(c, FatTreeConfig{K: 4, Ports: fifoProfile()}, n)
				return p
			},
		},
		{
			name: "fattree/4", shards: 4,
			// One pod and one core per shard: every agg<->core link whose
			// core lives elsewhere is cut. Each pod owns 4 agg->core links
			// of which 1 is shard-local (its own core), so 3 cuts up per
			// pod; cores mirror them downward.
			wantNodes: 36, wantCuts: 24,
			build: func(c *sim.Coordinator, n int) *Partition {
				_, p := NewFatTreeSharded(c, FatTreeConfig{K: 4, Ports: fifoProfile()}, n)
				return p
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coord := sim.NewCoordinator()
			p := tc.build(coord, tc.shards)

			if p.Shards != tc.shards {
				t.Fatalf("Shards = %d, want %d", p.Shards, tc.shards)
			}
			if len(coord.Shards()) != tc.shards {
				t.Fatalf("coordinator has %d shards, want %d", len(coord.Shards()), tc.shards)
			}
			// Exactly-once assignment: Nodes() has no duplicates (assign
			// panics on re-assignment, so a duplicate here means the
			// order/shardOf bookkeeping diverged) and covers everything.
			seen := make(map[pkt.NodeID]bool, len(p.Nodes()))
			for _, id := range p.Nodes() {
				if seen[id] {
					t.Fatalf("node %d listed twice", id)
				}
				seen[id] = true
				sh, ok := p.ShardOf(id)
				if !ok {
					t.Fatalf("node %d in order but not in shard map", id)
				}
				if sh < 0 || sh >= tc.shards {
					t.Fatalf("node %d on shard %d of %d", id, sh, tc.shards)
				}
			}
			if len(p.Nodes()) != tc.wantNodes {
				t.Fatalf("assigned %d nodes, want %d", len(p.Nodes()), tc.wantNodes)
			}

			if len(p.Cuts) != tc.wantCuts {
				t.Fatalf("%d cut edges, want %d", len(p.Cuts), tc.wantCuts)
			}
			for _, cut := range p.Cuts {
				if cut.Delay <= 0 {
					t.Fatalf("cut %d->%d has non-positive delay %v", cut.From, cut.To, cut.Delay)
				}
				if cut.SrcShard == cut.DstShard {
					t.Fatalf("cut %d->%d does not cross shards", cut.From, cut.To)
				}
				fs, _ := p.ShardOf(cut.From)
				ts, _ := p.ShardOf(cut.To)
				if fs != cut.SrcShard || ts != cut.DstShard {
					t.Fatalf("cut %d->%d shard mismatch", cut.From, cut.To)
				}
			}
			if tc.shards > 1 {
				if p.MinCutDelay() <= 0 {
					t.Fatalf("MinCutDelay = %v, want > 0", p.MinCutDelay())
				}
				if got := coord.Lookahead(); got != p.MinCutDelay() {
					t.Fatalf("coordinator lookahead %v != MinCutDelay %v", got, p.MinCutDelay())
				}
			} else {
				if p.MinCutDelay() != 0 {
					t.Fatalf("single shard has MinCutDelay %v, want 0", p.MinCutDelay())
				}
			}
		})
	}
}

// PairDelays must fold multiple cut edges per shard pair to the pair's
// minimum, keep directions independent, and cover exactly the pairs
// that have cuts.
func TestPartitionPairDelays(t *testing.T) {
	p := &Partition{Shards: 3, Cuts: []CutEdge{
		{From: 1, To: 2, SrcShard: 0, DstShard: 1, Delay: 5 * time.Microsecond},
		{From: 3, To: 4, SrcShard: 0, DstShard: 1, Delay: 2 * time.Microsecond},
		{From: 2, To: 1, SrcShard: 1, DstShard: 0, Delay: 9 * time.Microsecond},
		{From: 5, To: 6, SrcShard: 1, DstShard: 2, Delay: 4 * time.Microsecond},
	}}
	got := p.PairDelays()
	want := map[[2]int]time.Duration{
		{0, 1}: 2 * time.Microsecond, // min of 5us and 2us
		{1, 0}: 9 * time.Microsecond, // reverse direction is independent
		{1, 2}: 4 * time.Microsecond,
	}
	if len(got) != len(want) {
		t.Fatalf("PairDelays has %d pairs, want %d: %v", len(got), len(want), got)
	}
	for k, d := range want {
		if got[k] != d {
			t.Fatalf("PairDelays[%v] = %v, want %v", k, got[k], d)
		}
	}

	// On a real sharded build, every pair delay must be >= the global
	// minimum, and the minimum over pairs must equal MinCutDelay.
	coord := sim.NewCoordinator()
	_, part := NewFatTreeSharded(coord, FatTreeConfig{K: 4, Ports: fifoProfile()}, 4)
	pd := part.PairDelays()
	if len(pd) == 0 {
		t.Fatal("fat-tree/4 has no pair delays")
	}
	min := time.Duration(0)
	for _, d := range pd {
		if d < part.MinCutDelay() {
			t.Fatalf("pair delay %v below MinCutDelay %v", d, part.MinCutDelay())
		}
		if min == 0 || d < min {
			min = d
		}
	}
	if min != part.MinCutDelay() {
		t.Fatalf("min over pairs %v != MinCutDelay %v", min, part.MinCutDelay())
	}
}

// A degenerate 1-shard partition must reproduce the serial wiring: same
// node IDs, same port counts, and a single engine driving everything.
func TestSingleShardEqualsSerialWiring(t *testing.T) {
	eng := sim.NewEngine()
	serial := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile()})

	coord := sim.NewCoordinator()
	sharded, part := NewLeafSpineSharded(coord, LeafSpineConfig{Ports: fifoProfile()}, 1)

	if len(serial.Hosts) != len(sharded.Hosts) ||
		len(serial.Leaves) != len(sharded.Leaves) ||
		len(serial.Spines) != len(sharded.Spines) {
		t.Fatal("1-shard build has different element counts than serial")
	}
	for i := range serial.Hosts {
		if serial.Hosts[i].NodeID() != sharded.Hosts[i].NodeID() {
			t.Fatalf("host %d: ID %d != serial %d", i, sharded.Hosts[i].NodeID(), serial.Hosts[i].NodeID())
		}
		if sharded.Hosts[i].Engine() != sharded.Eng {
			t.Fatalf("host %d not on the single shard engine", i)
		}
	}
	if len(part.Cuts) != 0 {
		t.Fatalf("1-shard partition has %d cuts, want 0", len(part.Cuts))
	}
	if sharded.Eng != coord.Shards()[0].Engine() {
		t.Fatal("topology engine is not the shard engine")
	}
	if serial.BaseRTT() != sharded.BaseRTT() {
		t.Fatalf("BaseRTT diverged: %v vs %v", serial.BaseRTT(), sharded.BaseRTT())
	}
}

// FabricDelay must default to Delay and flow into both RTT estimates
// and the cut structure (host links keep Delay; fabric links move).
func TestLeafSpineFabricDelay(t *testing.T) {
	eng := sim.NewEngine()
	base := NewLeafSpine(eng, LeafSpineConfig{Ports: fifoProfile()})
	skew := NewLeafSpine(sim.NewEngine(), LeafSpineConfig{
		Ports:       fifoProfile(),
		FabricDelay: 7 * time.Microsecond,
	})
	if base.BaseRTT() >= skew.BaseRTT() {
		t.Fatalf("larger FabricDelay must raise BaseRTT: %v vs %v", base.BaseRTT(), skew.BaseRTT())
	}

	coord := sim.NewCoordinator()
	_, part := NewLeafSpineSharded(coord, LeafSpineConfig{
		Ports:       fifoProfile(),
		FabricDelay: 7 * time.Microsecond,
	}, 2)
	// The cut is host<->leaf only, so lookahead must stay the host-link
	// delay (5us), untouched by the larger fabric delay.
	if got := coord.Lookahead(); got != 5*time.Microsecond {
		t.Fatalf("lookahead %v, want 5us (host-link delay)", got)
	}
	if part.MinCutDelay() != 5*time.Microsecond {
		t.Fatalf("MinCutDelay %v, want 5us", part.MinCutDelay())
	}
}
