// Package topo builds the two topologies of the paper's evaluation:
//
//   - a single-bottleneck dumbbell (N senders, one receiver, one switch)
//     for the static-flow experiments of Sections II, III and VI-A, and
//   - the 48-host leaf-spine fabric (4 leaves x 12 hosts, 4 spines,
//     10 Gbps everywhere, ECMP) of the large-scale runs in Section VI-B.
//
// Every switch port is built from the same scheduler and marker
// factories so an experiment configures one marking scheme fabric-wide,
// as the paper's NS-3 scripts do.
package topo

import (
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/netsim"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// SchedFactory builds a fresh scheduler for one port given the queue
// weights (schedulers are stateful and cannot be shared across ports).
type SchedFactory func(weights []float64) sched.Scheduler

// MarkerFactory builds the marker for one port. Markers in this
// repository are stateless with respect to the port, but a factory keeps
// the door open for stateful schemes and per-port pools.
type MarkerFactory func() ecn.Marker

// SchedBlockFactory builds a slab-backed scheduler dispenser for ~n
// ports driven by one engine: the returned function hands out one
// scheduler per call, carved from shared backing arrays (see
// sched.FIFOBlock / sched.DWRRBlock). Fabric builders call the factory
// once per shard engine; n is a sizing hint, not a limit.
type SchedBlockFactory func(eng *sim.Engine, weights []float64, n int) func() sched.Scheduler

// PortProfile is the per-port configuration applied across a topology.
type PortProfile struct {
	// Weights are the queue weights (length = queue count).
	Weights []float64
	// NewSched builds each port's scheduler (required unless
	// NewSchedWith or NewSchedBlock is set).
	NewSched SchedFactory
	// NewSchedWith, when non-nil, overrides NewSched and receives the
	// engine driving the port. Sharded topologies need it: ports live on
	// different shard engines, so a factory pre-bound to one clock (like
	// DWRRFactory's) would feed every other shard's schedulers the wrong
	// time.
	NewSchedWith func(eng *sim.Engine, weights []float64) sched.Scheduler
	// NewSchedBlock, when non-nil, takes precedence over both factories
	// above: builders that know their port count use it to carve every
	// scheduler of a shard from a few slabs instead of allocating each
	// one separately (the k=32 memory path).
	NewSchedBlock SchedBlockFactory
	// NewMarker builds each port's marker (nil = no marking).
	NewMarker MarkerFactory
	// SharedMarker, when non-nil, is installed on every port instead of
	// calling NewMarker per port. Only markers that keep no per-port
	// state may be shared — which all schemes in this repository
	// satisfy (they read the port through ecn.PortView on each
	// decision) — and sharing collapses tens of thousands of identical
	// marker objects into one.
	SharedMarker ecn.Marker
	// BufferBytes is the shared per-port buffer (0 = unlimited).
	BufferBytes int
}

// marker picks the profile's marker for one port.
func (pp *PortProfile) marker() ecn.Marker {
	if pp.SharedMarker != nil {
		return pp.SharedMarker
	}
	if pp.NewMarker != nil {
		return pp.NewMarker()
	}
	return nil
}

// scheduler builds one scheduler outside a block context.
func (pp *PortProfile) scheduler(eng *sim.Engine) sched.Scheduler {
	switch {
	case pp.NewSchedBlock != nil:
		return pp.NewSchedBlock(eng, pp.Weights, 1)()
	case pp.NewSchedWith != nil:
		return pp.NewSchedWith(eng, pp.Weights)
	default:
		return pp.NewSched(pp.Weights)
	}
}

// newPort instantiates one port from the profile.
func (pp PortProfile) newPort(eng *sim.Engine, link *netsim.Link) *netsim.Port {
	return netsim.NewPort(eng, link, netsim.PortConfig{
		Sched:       pp.scheduler(eng),
		Marker:      pp.marker(),
		BufferBytes: pp.BufferBytes,
	})
}

// EqualWeights returns n equal (1.0) weights.
func EqualWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// DWRRFactory returns a SchedFactory building DWRR schedulers wired to
// the engine clock (so MQ-ECN can read round times).
func DWRRFactory(eng *sim.Engine) SchedFactory {
	return func(weights []float64) sched.Scheduler {
		return sched.NewDWRR(weights, units.MTU, sched.WithClock(eng.Now))
	}
}

// DWRRSched builds one DWRR scheduler on the given engine's clock. Use
// it as PortProfile.NewSchedWith in sharded topologies (the per-shard
// counterpart of DWRRFactory).
func DWRRSched(eng *sim.Engine, weights []float64) sched.Scheduler {
	return sched.NewDWRR(weights, units.MTU, sched.WithClock(eng.Now))
}

// WRRSched builds one WRR scheduler on the given engine's clock; the
// per-shard counterpart of WRRFactory.
func WRRSched(eng *sim.Engine, weights []float64) sched.Scheduler {
	return sched.NewWRR(weights, sched.WithWRRClock(eng.Now))
}

// WRRFactory returns a SchedFactory building WRR schedulers wired to
// the engine clock (round-based, so MQ-ECN works on them too).
func WRRFactory(eng *sim.Engine) SchedFactory {
	return func(weights []float64) sched.Scheduler {
		return sched.NewWRR(weights, sched.WithWRRClock(eng.Now))
	}
}

// WFQFactory returns a SchedFactory building WFQ schedulers.
func WFQFactory() SchedFactory {
	return func(weights []float64) sched.Scheduler { return sched.NewWFQ(weights) }
}

// SPFactory returns a SchedFactory building strict-priority schedulers.
func SPFactory() SchedFactory {
	return func(weights []float64) sched.Scheduler { return sched.NewSP(len(weights)) }
}

// SPWFQFactory returns a SchedFactory building SP+WFQ schedulers with
// the given number of leading strict queues.
func SPWFQFactory(high int) SchedFactory {
	return func(weights []float64) sched.Scheduler { return sched.NewSPWFQ(high, weights) }
}

// FIFOFactory returns a SchedFactory building single-queue FIFOs.
func FIFOFactory() SchedFactory {
	return func([]float64) sched.Scheduler { return sched.NewFIFO() }
}

// FIFOBlocks returns a SchedBlockFactory carving single-queue FIFOs
// from per-shard slabs.
func FIFOBlocks() SchedBlockFactory {
	return func(_ *sim.Engine, _ []float64, n int) func() sched.Scheduler {
		b := sched.NewFIFOBlock(n)
		return func() sched.Scheduler { return b.Next() }
	}
}

// DWRRBlocks returns a SchedBlockFactory carving DWRR schedulers from
// per-shard slabs, each wired to its shard engine's clock (so MQ-ECN
// round times stay correct across shards).
func DWRRBlocks() SchedBlockFactory {
	return func(eng *sim.Engine, weights []float64, n int) func() sched.Scheduler {
		b := sched.NewDWRRBlock(n, weights, units.MTU, sched.WithClock(eng.Now))
		return func() sched.Scheduler { return b.Next() }
	}
}

// BaseRTT estimates the unloaded round-trip time of a path with the
// given number of traversed links (each adding propagation delay), one
// data serialization per store-and-forward hop at rate, and the ACK
// return serializations. It is the quantity the paper plugs into
// K = C x RTT x lambda.
func BaseRTT(hops int, delay time.Duration, rate units.Rate) time.Duration {
	prop := time.Duration(2*hops) * delay
	dataSer := time.Duration(hops) * units.Serialization(units.MTU, rate)
	ackSer := time.Duration(hops) * units.Serialization(units.AckSize, rate)
	return prop + dataSer + ackSer
}
