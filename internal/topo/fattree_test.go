package topo

import (
	"testing"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/transport"
)

func TestFatTreeWiring(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 8, Ports: fifoProfile()})
	if ft.NumHosts() != 128 {
		t.Fatalf("hosts = %d, want 128", ft.NumHosts())
	}
	if len(ft.Edges) != 32 || len(ft.Aggs) != 32 || len(ft.Cores) != 16 {
		t.Fatalf("switches = %d/%d/%d, want 32/32/16",
			len(ft.Edges), len(ft.Aggs), len(ft.Cores))
	}
	for _, sw := range append(append([]*netsim.Switch{}, ft.Edges...), ft.Aggs...) {
		if sw.NumPorts() != 8 {
			t.Fatalf("switch %d ports = %d, want 8", sw.NodeID(), sw.NumPorts())
		}
	}
	for _, sw := range ft.Cores {
		if sw.NumPorts() != 8 { // one per pod
			t.Fatalf("core %d ports = %d, want 8", sw.NodeID(), sw.NumPorts())
		}
	}
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	// Route-level check without transports: k=4 keeps all-pairs cheap
	// (16 hosts, 240 packets) while still crossing every tier.
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Ports: fifoProfile()})
	n := ft.NumHosts()
	if n != 16 {
		t.Fatalf("hosts = %d, want 16", n)
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			ft.Host(src).Send(&pkt.Packet{
				Flow: pkt.FlowID(src*n + dst),
				Src:  pkt.NodeID(src + 1),
				Dst:  pkt.NodeID(dst + 1),
				Size: 100,
			})
		}
	}
	eng.Run()
	var delivered int64
	for _, h := range ft.Hosts {
		delivered += h.RxPackets()
	}
	if want := int64(n * (n - 1)); delivered != want {
		t.Fatalf("delivered %d packets, want %d", delivered, want)
	}
	all := append(append(append([]*netsim.Switch{}, ft.Edges...), ft.Aggs...), ft.Cores...)
	for _, sw := range all {
		if sw.RouteDrops() != 0 {
			t.Fatalf("switch %d dropped %d packets for lack of routes",
				sw.NodeID(), sw.RouteDrops())
		}
	}
}

func TestFatTreeInterPodFlow(t *testing.T) {
	// A DCTCP flow crossing the core tier completes and delivers every
	// byte in order.
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Ports: fifoProfile()})
	src, dst := ft.Host(0), ft.Host(15) // pod 0 -> pod 3
	const size = 200_000
	f := transport.NewFlow(eng, src, dst, 1, 0, size, transport.Config{}, nil)
	f.Sender.Start()
	eng.Run()
	if !f.Sender.Finished() {
		t.Fatal("inter-pod flow did not finish")
	}
	if got := f.Receiver.Goodput(); got != size {
		t.Fatalf("goodput = %d, want %d", got, size)
	}
}

func TestFatTreeECMPSpread(t *testing.T) {
	// Many flows between the same pod pair must spread across several
	// core switches (flow-level ECMP, salted at the agg tier).
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 8, Ports: fifoProfile()})
	for fl := 0; fl < 64; fl++ {
		ft.Host(0).Send(&pkt.Packet{
			Flow: pkt.FlowID(fl + 1),
			Src:  1,
			Dst:  pkt.NodeID(ft.NumHosts()),
			Size: 100,
		})
	}
	eng.Run()
	coresUsed := 0
	for _, c := range ft.Cores {
		var tx int64
		for i := 0; i < c.NumPorts(); i++ {
			tx += c.Port(i).TxPackets()
		}
		if tx > 0 {
			coresUsed++
		}
	}
	if coresUsed < 4 {
		t.Fatalf("64 flows used only %d core switches", coresUsed)
	}
}
