package topo

import (
	"testing"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/transport"
)

func TestFatTreeWiring(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 8, Ports: fifoProfile()})
	if ft.NumHosts() != 128 {
		t.Fatalf("hosts = %d, want 128", ft.NumHosts())
	}
	if len(ft.Edges) != 32 || len(ft.Aggs) != 32 || len(ft.Cores) != 16 {
		t.Fatalf("switches = %d/%d/%d, want 32/32/16",
			len(ft.Edges), len(ft.Aggs), len(ft.Cores))
	}
	for _, sw := range append(append([]*netsim.Switch{}, ft.Edges...), ft.Aggs...) {
		if sw.NumPorts() != 8 {
			t.Fatalf("switch %d ports = %d, want 8", sw.NodeID(), sw.NumPorts())
		}
	}
	for _, sw := range ft.Cores {
		if sw.NumPorts() != 8 { // one per pod
			t.Fatalf("core %d ports = %d, want 8", sw.NodeID(), sw.NumPorts())
		}
	}
}

func TestFatTreeAllPairsReachable(t *testing.T) {
	// Route-level check without transports: k=4 keeps all-pairs cheap
	// (16 hosts, 240 packets) while still crossing every tier.
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Ports: fifoProfile()})
	n := ft.NumHosts()
	if n != 16 {
		t.Fatalf("hosts = %d, want 16", n)
	}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			ft.Host(src).Send(&pkt.Packet{
				Flow: pkt.FlowID(src*n + dst),
				Src:  pkt.NodeID(src + 1),
				Dst:  pkt.NodeID(dst + 1),
				Size: 100,
			})
		}
	}
	eng.Run()
	var delivered int64
	for _, h := range ft.Hosts {
		delivered += h.RxPackets()
	}
	if want := int64(n * (n - 1)); delivered != want {
		t.Fatalf("delivered %d packets, want %d", delivered, want)
	}
	all := append(append(append([]*netsim.Switch{}, ft.Edges...), ft.Aggs...), ft.Cores...)
	for _, sw := range all {
		if sw.RouteDrops() != 0 {
			t.Fatalf("switch %d dropped %d packets for lack of routes",
				sw.NodeID(), sw.RouteDrops())
		}
	}
}

func TestFatTreeInterPodFlow(t *testing.T) {
	// A DCTCP flow crossing the core tier completes and delivers every
	// byte in order.
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 4, Ports: fifoProfile()})
	src, dst := ft.Host(0), ft.Host(15) // pod 0 -> pod 3
	const size = 200_000
	f := transport.NewFlow(eng, src, dst, 1, 0, size, transport.Config{}, nil)
	f.Sender.Start()
	eng.Run()
	if !f.Sender.Finished() {
		t.Fatal("inter-pod flow did not finish")
	}
	if got := f.Receiver.Goodput(); got != size {
		t.Fatalf("goodput = %d, want %d", got, size)
	}
}

// slabProfile is the memory-lean port profile the k=32 fabric ships
// with: schedulers carved from per-shard blocks and one shared
// stateless marker instead of per-port factories.
func slabProfile() PortProfile {
	return PortProfile{
		Weights:       EqualWeights(1),
		NewSchedBlock: FIFOBlocks(),
	}
}

// TestFatTree32Wiring checks the arena-backed builder at its headline
// scale: 8192 hosts and the full three-tier switch complement, with
// every node carved from the reserved slabs (zero arena overflow).
func TestFatTree32Wiring(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 32, Ports: slabProfile()})
	if ft.NumHosts() != 8192 {
		t.Fatalf("hosts = %d, want 8192", ft.NumHosts())
	}
	if len(ft.Edges) != 512 || len(ft.Aggs) != 512 || len(ft.Cores) != 256 {
		t.Fatalf("switches = %d/%d/%d, want 512/512/256",
			len(ft.Edges), len(ft.Aggs), len(ft.Cores))
	}
	for _, sw := range append(append([]*netsim.Switch{}, ft.Edges...), ft.Aggs...) {
		if sw.NumPorts() != 32 {
			t.Fatalf("switch %d ports = %d, want 32", sw.NodeID(), sw.NumPorts())
		}
	}
	for _, sw := range ft.Cores {
		if sw.NumPorts() != 32 { // one per pod
			t.Fatalf("core %d ports = %d, want 32", sw.NodeID(), sw.NumPorts())
		}
	}
	if ov := ft.ArenaOverflow(); ov != 0 {
		t.Fatalf("arena overflow = %d, want 0 (spec under-reserved)", ov)
	}
}

// TestFatTree32Reachability spot-checks routing at k=32 (all-pairs is
// 67M packets; a stride sample crossing every tier and pod is enough on
// top of the exhaustive k=4 check).
func TestFatTree32Reachability(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 32, Ports: slabProfile()})
	n := ft.NumHosts()
	sent := 0
	for src := 0; src < n; src += 509 { // prime stride: pods and edges vary
		dst := (src + n/2 + 1) % n
		ft.Host(src).Send(&pkt.Packet{
			Flow: pkt.FlowID(src + 1),
			Src:  pkt.NodeID(src + 1),
			Dst:  pkt.NodeID(dst + 1),
			Size: 100,
		})
		sent++
	}
	eng.Run()
	var delivered int64
	for _, h := range ft.Hosts {
		delivered += h.RxPackets()
	}
	if delivered != int64(sent) {
		t.Fatalf("delivered %d of %d sampled packets", delivered, sent)
	}
	all := append(append(append([]*netsim.Switch{}, ft.Edges...), ft.Aggs...), ft.Cores...)
	for _, sw := range all {
		if sw.RouteDrops() != 0 {
			t.Fatalf("switch %d dropped %d packets for lack of routes",
				sw.NodeID(), sw.RouteDrops())
		}
	}
}

// TestFatTree32ShardedPartition: the pod-sharded k=32 build assigns
// every node to a shard, honors the pod block partition, and still
// carves entirely from the arenas (one per shard).
func TestFatTree32ShardedPartition(t *testing.T) {
	coord := sim.NewCoordinator()
	ft, part := NewFatTreeSharded(coord, FatTreeConfig{K: 32, Ports: slabProfile()}, 8)
	if ft.NumHosts() != 8192 {
		t.Fatalf("hosts = %d, want 8192", ft.NumHosts())
	}
	if ov := ft.ArenaOverflow(); ov != 0 {
		t.Fatalf("arena overflow = %d, want 0", ov)
	}
	seen := make(map[int]int)
	for _, h := range ft.Hosts {
		s, ok := part.ShardOf(h.NodeID())
		if !ok {
			t.Fatalf("host %d not assigned to any shard", h.NodeID())
		}
		seen[s]++
	}
	if len(seen) != 8 {
		t.Fatalf("hosts landed on %d shards, want 8", len(seen))
	}
	// Pods block-partition evenly: 32 pods over 8 shards = 4 pods (1024
	// hosts) each.
	for s, n := range seen {
		if n != 1024 {
			t.Fatalf("shard %d holds %d hosts, want 1024", s, n)
		}
	}
	for _, sw := range append(append(append([]*netsim.Switch{}, ft.Edges...), ft.Aggs...), ft.Cores...) {
		if _, ok := part.ShardOf(sw.NodeID()); !ok {
			t.Fatalf("switch %d not assigned to any shard", sw.NodeID())
		}
	}
}

// TestFatTree32ECMPSpread: flow-level ECMP must spread a same-pair flow
// bundle across many of the 256 core switches at k=32.
func TestFatTree32ECMPSpread(t *testing.T) {
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 32, Ports: slabProfile()})
	const flows = 256
	for fl := 0; fl < flows; fl++ {
		ft.Host(0).Send(&pkt.Packet{
			Flow: pkt.FlowID(fl + 1),
			Src:  1,
			Dst:  pkt.NodeID(ft.NumHosts()),
			Size: 100,
		})
	}
	eng.Run()
	coresUsed := 0
	for _, c := range ft.Cores {
		var tx int64
		for i := 0; i < c.NumPorts(); i++ {
			tx += c.Port(i).TxPackets()
		}
		if tx > 0 {
			coresUsed++
		}
	}
	// 256 flows over 256 cores: a uniform hash lands on ~63% distinct;
	// 1/4 of that is a loose floor that still catches a collapsed hash.
	if coresUsed < 40 {
		t.Fatalf("%d flows used only %d of %d core switches", flows, coresUsed, len(ft.Cores))
	}
}

func TestFatTreeECMPSpread(t *testing.T) {
	// Many flows between the same pod pair must spread across several
	// core switches (flow-level ECMP, salted at the agg tier).
	eng := sim.NewEngine()
	ft := NewFatTree(eng, FatTreeConfig{K: 8, Ports: fifoProfile()})
	for fl := 0; fl < 64; fl++ {
		ft.Host(0).Send(&pkt.Packet{
			Flow: pkt.FlowID(fl + 1),
			Src:  1,
			Dst:  pkt.NodeID(ft.NumHosts()),
			Size: 100,
		})
	}
	eng.Run()
	coresUsed := 0
	for _, c := range ft.Cores {
		var tx int64
		for i := 0; i < c.NumPorts(); i++ {
			tx += c.Port(i).TxPackets()
		}
		if tx > 0 {
			coresUsed++
		}
	}
	if coresUsed < 4 {
		t.Fatalf("64 flows used only %d core switches", coresUsed)
	}
}
