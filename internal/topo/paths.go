package topo

import (
	"time"

	"pmsb/internal/units"
)

// This file is the engine-free view of the package's topologies: the
// directed link set and a deterministic path function replicating the
// packet builders' routing — including every flow-level ECMP hash
// decision — without instantiating switches, ports or links. The
// flow-level engine (internal/flowsim) evolves rates over these graphs;
// because PathFor reuses ecmpHash/ecmpAggSalt verbatim, a flow takes
// the same fabric path in both engines, so calibration compares like
// with like down to the individual bottleneck link.

// PathLink is one directed link of a PathGraph.
type PathLink struct {
	// Rate is the link capacity.
	Rate units.Rate
	// Delay is the one-way propagation delay.
	Delay time.Duration
}

// PathGraph is an engine-free topology: hosts, directed capacity links
// and the routing function. Host indices are 0-based and correspond to
// the packet builders' Hosts slices (for the dumbbell, index 0 is the
// receiver and 1..Senders the senders, mirroring Recv/Senders).
type PathGraph struct {
	// Name identifies the topology family ("dumbbell", "leafspine",
	// "fattree").
	Name string
	// Hosts is the host count.
	Hosts int
	// Links are the directed links; PathFor returns indices into it.
	Links []PathLink
	// MaxPathLen bounds the number of links on any path.
	MaxPathLen int
	// BaseRTT is the unloaded worst-case RTT estimate (the same value
	// the packet builders report).
	BaseRTT time.Duration

	pathFor func(src, dst int, flow uint64, buf []int32) []int32
}

// PathFor appends the directed link indices of the src->dst path for
// the given flow ID to buf and returns it. The ECMP decisions are
// byte-identical to the packet builders' routing closures: the same
// (src, dst, flow) triple traverses the same physical links in both
// engines. src == dst returns buf unchanged.
func (g *PathGraph) PathFor(src, dst int, flow uint64, buf []int32) []int32 {
	if src == dst {
		return buf
	}
	return g.pathFor(src, dst, flow, buf)
}

// DumbbellPaths is the engine-free counterpart of NewDumbbell. Host 0
// is the receiver, hosts 1..Senders the senders; every path is
// sender NIC -> switch -> destination (two links).
func DumbbellPaths(cfg DumbbellConfig) *PathGraph {
	if cfg.AccessRate == 0 {
		cfg.AccessRate = 10 * units.Gbps
	}
	if cfg.BottleneckRate == 0 {
		cfg.BottleneckRate = cfg.AccessRate
	}
	if cfg.Delay == 0 {
		cfg.Delay = 5 * time.Microsecond
	}
	hosts := cfg.Senders + 1
	// Links: up(i) = i (host i -> switch), down(i) = hosts + i
	// (switch -> host i). The switch->receiver downlink is the
	// bottleneck port.
	links := make([]PathLink, 2*hosts)
	for i := 0; i < hosts; i++ {
		links[i] = PathLink{Rate: cfg.AccessRate, Delay: cfg.Delay}
		links[hosts+i] = PathLink{Rate: cfg.AccessRate, Delay: cfg.Delay}
	}
	links[hosts] = PathLink{Rate: cfg.BottleneckRate, Delay: cfg.Delay}

	d := Dumbbell{cfg: cfg}
	return &PathGraph{
		Name:       "dumbbell",
		Hosts:      hosts,
		Links:      links,
		MaxPathLen: 2,
		BaseRTT:    d.BaseRTT(),
		pathFor: func(src, dst int, flow uint64, buf []int32) []int32 {
			return append(buf, int32(src), int32(hosts+dst))
		},
	}
}

// LeafSpinePaths is the engine-free counterpart of NewLeafSpine. Spine
// selection uses the identical ecmpHash(flow) % Spines decision as the
// leaf routing closure (per-packet spraying has no flow-level
// equivalent and is not supported).
func LeafSpinePaths(cfg LeafSpineConfig) *PathGraph {
	if cfg.Leaves == 0 {
		cfg.Leaves = 4
	}
	if cfg.Spines == 0 {
		cfg.Spines = 4
	}
	if cfg.HostsPerLeaf == 0 {
		cfg.HostsPerLeaf = 12
	}
	if cfg.Rate == 0 {
		cfg.Rate = 10 * units.Gbps
	}
	if cfg.Delay == 0 {
		cfg.Delay = 5 * time.Microsecond
	}
	if cfg.FabricDelay == 0 {
		cfg.FabricDelay = cfg.Delay
	}
	nHosts := cfg.Leaves * cfg.HostsPerLeaf
	// Links: up(i) = i, down(i) = n + i, leafUp(l, s) = 2n + l*Spines + s,
	// spineDown(s, l) = 2n + Leaves*Spines + s*Leaves + l.
	nFab := cfg.Leaves * cfg.Spines
	links := make([]PathLink, 2*nHosts+2*nFab)
	for i := 0; i < 2*nHosts; i++ {
		links[i] = PathLink{Rate: cfg.Rate, Delay: cfg.Delay}
	}
	for i := 2 * nHosts; i < len(links); i++ {
		links[i] = PathLink{Rate: cfg.Rate, Delay: cfg.FabricDelay}
	}
	leafUp := 2 * nHosts
	spineDown := 2*nHosts + nFab
	spines, hpl := cfg.Spines, cfg.HostsPerLeaf

	ls := LeafSpine{cfg: cfg}
	return &PathGraph{
		Name:       "leafspine",
		Hosts:      nHosts,
		Links:      links,
		MaxPathLen: 4,
		BaseRTT:    ls.BaseRTT(),
		pathFor: func(src, dst int, flow uint64, buf []int32) []int32 {
			buf = append(buf, int32(src))
			ls, ld := src/hpl, dst/hpl
			if ls != ld {
				// Same hash decision as the leaf's routing closure.
				s := int(ecmpHash(flow) % uint64(spines))
				buf = append(buf,
					int32(leafUp+ls*spines+s),
					int32(spineDown+s*cfg.Leaves+ld))
			}
			return append(buf, int32(nHosts+dst))
		},
	}
}

// FatTreePaths is the engine-free counterpart of NewFatTree, including
// the FabricDelaySkew cable-length formula and the two-tier ECMP
// decisions (edge tier hashes the flow ID, the aggregation tier salts
// it with ecmpAggSalt so the core choice decorrelates).
func FatTreePaths(cfg FatTreeConfig) *PathGraph {
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.K%2 != 0 {
		panic("topo: fat-tree K must be even")
	}
	if cfg.Rate == 0 {
		cfg.Rate = 10 * units.Gbps
	}
	if cfg.Delay == 0 {
		cfg.Delay = time.Microsecond
	}
	k := cfg.K
	half := k / 2
	pods := k
	hpp := half * half
	nHosts := pods * hpp
	nEdges := pods * half
	nCores := half * half

	// Links: up(i) = i, down(i) = n + i,
	// edgeUp(e, j)  = 2n + e*half + j          (edge e -> agg pod(e)*half+j)
	// aggDown(a, e) = 2n + E*half + a*half + e (agg a -> edge pod(a)*half+e)
	// aggUp(a, i)   = 2n + 2E*half + a*half + i (agg a -> core (a%half)*half+i)
	// coreDown(c,p) = 2n + 3E*half + c*pods + p
	edgeUp := 2 * nHosts
	aggDown := edgeUp + nEdges*half
	aggUp := aggDown + nEdges*half
	coreDown := aggUp + nEdges*half
	links := make([]PathLink, coreDown+nCores*pods)
	for i := 0; i < aggUp; i++ {
		links[i] = PathLink{Rate: cfg.Rate, Delay: cfg.Delay}
	}
	// Agg<->core cables use the per-(pod, core) length formula of the
	// packet builder's fabricLink.
	fabricDelay := func(p, c int) time.Duration {
		return cfg.Delay + time.Duration(1+p*nCores+c)*cfg.FabricDelaySkew
	}
	for a := 0; a < nEdges; a++ {
		p, j := a/half, a%half
		for i := 0; i < half; i++ {
			links[aggUp+a*half+i] = PathLink{Rate: cfg.Rate, Delay: fabricDelay(p, j*half+i)}
		}
	}
	for c := 0; c < nCores; c++ {
		for p := 0; p < pods; p++ {
			links[coreDown+c*pods+p] = PathLink{Rate: cfg.Rate, Delay: fabricDelay(p, c)}
		}
	}

	ft := FatTree{cfg: cfg}
	return &PathGraph{
		Name:       "fattree",
		Hosts:      nHosts,
		Links:      links,
		MaxPathLen: 6,
		BaseRTT:    ft.BaseRTT(),
		pathFor: func(src, dst int, flow uint64, buf []int32) []int32 {
			buf = append(buf, int32(src))
			ps, es := src/hpp, (src%hpp)/half
			pd, ed := dst/hpp, (dst%hpp)/half
			if ps != pd {
				// Cross-pod: both ECMP tiers decide, exactly as the edge
				// and agg routing closures do.
				j := int(ecmpHash(flow) % uint64(half))
				i := int(ecmpHash(flow^ecmpAggSalt) % uint64(half))
				c := j*half + i
				buf = append(buf,
					int32(edgeUp+(ps*half+es)*half+j),
					int32(aggUp+(ps*half+j)*half+i),
					int32(coreDown+c*pods+pd),
					// Core c attaches to agg c/half = j in every pod.
					int32(aggDown+(pd*half+j)*half+ed))
			} else if es != ed {
				// Pod-local, different edges: one ECMP decision.
				j := int(ecmpHash(flow) % uint64(half))
				buf = append(buf,
					int32(edgeUp+(ps*half+es)*half+j),
					int32(aggDown+(ps*half+j)*half+ed))
			}
			return append(buf, int32(nHosts+dst))
		},
	}
}
