package topo

import (
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// DumbbellConfig parametrizes a single-bottleneck topology: N sender
// hosts and one receiver attached to one switch. The switch->receiver
// port is the bottleneck and carries the experiment's scheduler/marker;
// reverse (ACK) ports are plain FIFOs.
type DumbbellConfig struct {
	// Senders is the number of sender hosts.
	Senders int
	// AccessRate is the sender/receiver link rate (default 10 Gbps).
	AccessRate units.Rate
	// BottleneckRate is the switch->receiver rate (default AccessRate).
	BottleneckRate units.Rate
	// Delay is the per-link one-way propagation delay (default 5us).
	Delay time.Duration
	// Bottleneck configures the bottleneck port (required).
	Bottleneck PortProfile
}

// Dumbbell is the instantiated topology.
type Dumbbell struct {
	// Eng is the driving engine.
	Eng *sim.Engine
	// Senders are the sender hosts (IDs 2..Senders+1).
	Senders []*netsim.Host
	// Recv is the receiver host (ID 1).
	Recv *netsim.Host
	// Switch is the single switch.
	Switch *netsim.Switch
	// Bottleneck is the switch->receiver port under test.
	Bottleneck *netsim.Port

	cfg DumbbellConfig
}

// NewDumbbell wires the topology.
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	if cfg.AccessRate == 0 {
		cfg.AccessRate = 10 * units.Gbps
	}
	if cfg.BottleneckRate == 0 {
		cfg.BottleneckRate = cfg.AccessRate
	}
	if cfg.Delay == 0 {
		cfg.Delay = 5 * time.Microsecond
	}

	d := &Dumbbell{Eng: eng, cfg: cfg}
	d.Switch = netsim.NewSwitch(eng, 1000)
	d.Recv = netsim.NewHost(eng, 1)
	d.Recv.AttachNIC(netsim.NewLink(eng, cfg.AccessRate, cfg.Delay, d.Switch))

	// Port 0: bottleneck toward the receiver.
	d.Bottleneck = cfg.Bottleneck.newPort(eng,
		netsim.NewLink(eng, cfg.BottleneckRate, cfg.Delay, d.Recv))
	d.Switch.AddPort(d.Bottleneck)

	// Ports 1..N: FIFO reverse ports toward each sender.
	d.Senders = make([]*netsim.Host, cfg.Senders)
	for i := 0; i < cfg.Senders; i++ {
		h := netsim.NewHost(eng, pkt.NodeID(2+i))
		h.AttachNIC(netsim.NewLink(eng, cfg.AccessRate, cfg.Delay, d.Switch))
		port := netsim.NewPort(eng,
			netsim.NewLink(eng, cfg.AccessRate, cfg.Delay, h),
			netsim.PortConfig{Sched: sched.NewFIFO()})
		d.Switch.AddPort(port)
		d.Senders[i] = h
	}

	d.Switch.SetRoute(func(p *pkt.Packet) int {
		if p.Dst == 1 {
			return 0
		}
		i := int(p.Dst) - 2
		if i >= 0 && i < cfg.Senders {
			return 1 + i
		}
		return -1
	})
	return d
}

// NewDumbbellSharded wires the same dumbbell across a coordinator's
// shards: all hosts on shard 0 and the switch on shard 1, so the only
// cross-shard links are the host<->switch cables (delay = cfg.Delay =
// the lookahead). shards == 1 degenerates to the serial wiring on a
// single shard engine. Dumbbell.Eng is shard 0's engine (the hosts'
// clock); drive the simulation with coord.RunUntil, not Eng.RunUntil.
func NewDumbbellSharded(coord *sim.Coordinator, cfg DumbbellConfig, shards int) (*Dumbbell, *Partition) {
	if cfg.AccessRate == 0 {
		cfg.AccessRate = 10 * units.Gbps
	}
	if cfg.BottleneckRate == 0 {
		cfg.BottleneckRate = cfg.AccessRate
	}
	if cfg.Delay == 0 {
		cfg.Delay = 5 * time.Microsecond
	}
	if shards > 2 {
		panic("topo: a dumbbell partitions into at most 2 shards (hosts, switch)")
	}
	sb := newShardBuilder(coord, shards)
	swShard := 0
	if shards == 2 {
		swShard = 1
	}
	sb.assign(1000, swShard)
	sb.assign(1, 0)
	for i := 0; i < cfg.Senders; i++ {
		sb.assign(pkt.NodeID(2+i), 0)
	}

	d := &Dumbbell{Eng: sb.engine(0), cfg: cfg}
	d.Switch = netsim.NewSwitch(sb.engine(swShard), 1000)
	d.Recv = netsim.NewHost(sb.engine(0), 1)
	d.Recv.AttachNIC(sb.link(1, 1000, cfg.AccessRate, cfg.Delay, d.Switch))

	// Port 0: bottleneck toward the receiver.
	d.Bottleneck = cfg.Bottleneck.newPort(sb.engine(swShard),
		sb.link(1000, 1, cfg.BottleneckRate, cfg.Delay, d.Recv))
	d.Switch.AddPort(d.Bottleneck)

	// Ports 1..N: FIFO reverse ports toward each sender.
	d.Senders = make([]*netsim.Host, cfg.Senders)
	for i := 0; i < cfg.Senders; i++ {
		id := pkt.NodeID(2 + i)
		h := netsim.NewHost(sb.engine(0), id)
		h.AttachNIC(sb.link(id, 1000, cfg.AccessRate, cfg.Delay, d.Switch))
		port := netsim.NewPort(sb.engine(swShard),
			sb.link(1000, id, cfg.AccessRate, cfg.Delay, h),
			netsim.PortConfig{Sched: sched.NewFIFO()})
		d.Switch.AddPort(port)
		d.Senders[i] = h
	}

	d.Switch.SetRoute(func(p *pkt.Packet) int {
		if p.Dst == 1 {
			return 0
		}
		i := int(p.Dst) - 2
		if i >= 0 && i < cfg.Senders {
			return 1 + i
		}
		return -1
	})
	return d, sb.part
}

// BaseRTT returns the unloaded sender->receiver->sender RTT estimate.
func (d *Dumbbell) BaseRTT() time.Duration {
	// Two hops each way: host NIC -> switch -> destination.
	prop := 4 * d.cfg.Delay
	dataSer := units.Serialization(units.MTU, d.cfg.AccessRate) +
		units.Serialization(units.MTU, d.cfg.BottleneckRate)
	ackSer := 2 * units.Serialization(units.AckSize, d.cfg.AccessRate)
	return prop + dataSer + ackSer
}
