package topo

import (
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// LeafSpineConfig parametrizes the large-scale fabric. The paper's
// setup: 4 leaves, 4 spines, 12 hosts per leaf, 10 Gbps links, ECMP.
type LeafSpineConfig struct {
	// Leaves is the number of leaf (ToR) switches (default 4).
	Leaves int
	// Spines is the number of spine (core) switches (default 4).
	Spines int
	// HostsPerLeaf is the number of hosts per leaf (default 12).
	HostsPerLeaf int
	// Rate is the capacity of every link (default 10 Gbps).
	Rate units.Rate
	// Delay is the one-way propagation delay per host<->leaf link
	// (default 5us).
	Delay time.Duration
	// FabricDelay is the one-way propagation delay per leaf<->spine
	// link (default Delay). Making it differ from Delay breaks the
	// uniform delay lattice, which the sharded differential tests use to
	// rule out same-instant ties between fabric-internal and cross-shard
	// arrivals (see DESIGN.md section 8).
	FabricDelay time.Duration
	// Ports configures every switch port (required).
	Ports PortProfile
	// PerPacketECMP sprays individual packets across spines instead of
	// hashing per flow. It spreads load perfectly but reorders packets;
	// the DCTCP receiver's cumulative ACKs tolerate it at the cost of
	// spurious dup-ACK retransmissions. Off by default (the paper, like
	// production fabrics, uses flow-level ECMP).
	PerPacketECMP bool
}

// LeafSpine is the instantiated fabric.
type LeafSpine struct {
	// Eng is the driving engine.
	Eng *sim.Engine
	// Hosts are all hosts; Hosts[i] has NodeID i+1.
	Hosts []*netsim.Host
	// Leaves and Spines are the switches.
	Leaves, Spines []*netsim.Switch

	cfg LeafSpineConfig
}

// NewLeafSpine wires the fabric. Every switch port (host-facing and
// fabric-facing) gets the configured scheduler/marker profile; host NICs
// are plain FIFOs.
func NewLeafSpine(eng *sim.Engine, cfg LeafSpineConfig) *LeafSpine {
	if cfg.Leaves == 0 {
		cfg.Leaves = 4
	}
	if cfg.Spines == 0 {
		cfg.Spines = 4
	}
	if cfg.HostsPerLeaf == 0 {
		cfg.HostsPerLeaf = 12
	}
	if cfg.Rate == 0 {
		cfg.Rate = 10 * units.Gbps
	}
	if cfg.Delay == 0 {
		cfg.Delay = 5 * time.Microsecond
	}
	if cfg.FabricDelay == 0 {
		cfg.FabricDelay = cfg.Delay
	}

	ls := &LeafSpine{Eng: eng, cfg: cfg}
	nHosts := cfg.Leaves * cfg.HostsPerLeaf

	for l := 0; l < cfg.Leaves; l++ {
		ls.Leaves = append(ls.Leaves, netsim.NewSwitch(eng, pkt.NodeID(1001+l)))
	}
	for s := 0; s < cfg.Spines; s++ {
		ls.Spines = append(ls.Spines, netsim.NewSwitch(eng, pkt.NodeID(2001+s)))
	}

	// Hosts and host<->leaf links.
	for i := 0; i < nHosts; i++ {
		leaf := ls.Leaves[i/cfg.HostsPerLeaf]
		h := netsim.NewHost(eng, pkt.NodeID(i+1))
		h.AttachNIC(netsim.NewLink(eng, cfg.Rate, cfg.Delay, leaf))
		// Leaf down-port to this host: port index i % HostsPerLeaf.
		leaf.AddPort(cfg.Ports.newPort(eng, netsim.NewLink(eng, cfg.Rate, cfg.Delay, h)))
		ls.Hosts = append(ls.Hosts, h)
	}

	// Leaf up-ports (indices HostsPerLeaf..HostsPerLeaf+Spines-1) and
	// spine down-ports (index = leaf number).
	for _, leaf := range ls.Leaves {
		for _, spine := range ls.Spines {
			leaf.AddPort(cfg.Ports.newPort(eng, netsim.NewLink(eng, cfg.Rate, cfg.FabricDelay, spine)))
		}
	}
	for _, spine := range ls.Spines {
		for _, leaf := range ls.Leaves {
			spine.AddPort(cfg.Ports.newPort(eng, netsim.NewLink(eng, cfg.Rate, cfg.FabricDelay, leaf)))
		}
	}

	// Routing.
	hostLeaf := func(dst pkt.NodeID) int { return (int(dst) - 1) / cfg.HostsPerLeaf }
	hostDown := func(dst pkt.NodeID) int { return (int(dst) - 1) % cfg.HostsPerLeaf }
	for l, leaf := range ls.Leaves {
		l := l
		var sprayNext int
		leaf.SetRoute(func(p *pkt.Packet) int {
			if int(p.Dst) < 1 || int(p.Dst) > nHosts {
				return -1
			}
			if hostLeaf(p.Dst) == l {
				return hostDown(p.Dst)
			}
			if cfg.PerPacketECMP {
				// Round-robin packet spraying across spines.
				sprayNext = (sprayNext + 1) % cfg.Spines
				return cfg.HostsPerLeaf + sprayNext
			}
			// ECMP over spines by flow hash: all packets of a flow take
			// one path (no reordering), different flows spread out.
			return cfg.HostsPerLeaf + int(ecmpHash(uint64(p.Flow))%uint64(cfg.Spines))
		})
	}
	for _, spine := range ls.Spines {
		spine.SetRoute(func(p *pkt.Packet) int {
			if int(p.Dst) < 1 || int(p.Dst) > nHosts {
				return -1
			}
			return hostLeaf(p.Dst)
		})
	}
	return ls
}

// NewLeafSpineSharded wires the same fabric across a coordinator's
// shards: all hosts on shard 0, all switches (leaves and spines) on
// shard 1. The only cross-shard links are the host<->leaf cables, so
// the lookahead is cfg.Delay regardless of FabricDelay. shards == 1
// degenerates to the serial wiring on a single shard engine.
// LeafSpine.Eng is shard 0's engine (the hosts' clock); drive the
// simulation with coord.RunUntil.
func NewLeafSpineSharded(coord *sim.Coordinator, cfg LeafSpineConfig, shards int) (*LeafSpine, *Partition) {
	if cfg.Leaves == 0 {
		cfg.Leaves = 4
	}
	if cfg.Spines == 0 {
		cfg.Spines = 4
	}
	if cfg.HostsPerLeaf == 0 {
		cfg.HostsPerLeaf = 12
	}
	if cfg.Rate == 0 {
		cfg.Rate = 10 * units.Gbps
	}
	if cfg.Delay == 0 {
		cfg.Delay = 5 * time.Microsecond
	}
	if cfg.FabricDelay == 0 {
		cfg.FabricDelay = cfg.Delay
	}
	if shards > 2 {
		panic("topo: a leaf-spine partitions into at most 2 shards (hosts, fabric)")
	}
	sb := newShardBuilder(coord, shards)
	fabShard := 0
	if shards == 2 {
		fabShard = 1
	}

	ls := &LeafSpine{Eng: sb.engine(0), cfg: cfg}
	nHosts := cfg.Leaves * cfg.HostsPerLeaf

	for l := 0; l < cfg.Leaves; l++ {
		id := pkt.NodeID(1001 + l)
		sb.assign(id, fabShard)
		ls.Leaves = append(ls.Leaves, netsim.NewSwitch(sb.engine(fabShard), id))
	}
	for s := 0; s < cfg.Spines; s++ {
		id := pkt.NodeID(2001 + s)
		sb.assign(id, fabShard)
		ls.Spines = append(ls.Spines, netsim.NewSwitch(sb.engine(fabShard), id))
	}

	// Hosts and host<->leaf links (the cut edges when shards == 2).
	for i := 0; i < nHosts; i++ {
		leaf := ls.Leaves[i/cfg.HostsPerLeaf]
		id := pkt.NodeID(i + 1)
		sb.assign(id, 0)
		h := netsim.NewHost(sb.engine(0), id)
		h.AttachNIC(sb.link(id, leaf.NodeID(), cfg.Rate, cfg.Delay, leaf))
		leaf.AddPort(cfg.Ports.newPort(sb.engine(fabShard),
			sb.link(leaf.NodeID(), id, cfg.Rate, cfg.Delay, h)))
		ls.Hosts = append(ls.Hosts, h)
	}

	// Fabric-internal links, always local to the fabric shard.
	for _, leaf := range ls.Leaves {
		for _, spine := range ls.Spines {
			leaf.AddPort(cfg.Ports.newPort(sb.engine(fabShard),
				sb.link(leaf.NodeID(), spine.NodeID(), cfg.Rate, cfg.FabricDelay, spine)))
		}
	}
	for _, spine := range ls.Spines {
		for _, leaf := range ls.Leaves {
			spine.AddPort(cfg.Ports.newPort(sb.engine(fabShard),
				sb.link(spine.NodeID(), leaf.NodeID(), cfg.Rate, cfg.FabricDelay, leaf)))
		}
	}

	// Routing, identical to the serial builder.
	hostLeaf := func(dst pkt.NodeID) int { return (int(dst) - 1) / cfg.HostsPerLeaf }
	hostDown := func(dst pkt.NodeID) int { return (int(dst) - 1) % cfg.HostsPerLeaf }
	for l, leaf := range ls.Leaves {
		l := l
		var sprayNext int
		leaf.SetRoute(func(p *pkt.Packet) int {
			if int(p.Dst) < 1 || int(p.Dst) > nHosts {
				return -1
			}
			if hostLeaf(p.Dst) == l {
				return hostDown(p.Dst)
			}
			if cfg.PerPacketECMP {
				sprayNext = (sprayNext + 1) % cfg.Spines
				return cfg.HostsPerLeaf + sprayNext
			}
			return cfg.HostsPerLeaf + int(ecmpHash(uint64(p.Flow))%uint64(cfg.Spines))
		})
	}
	for _, spine := range ls.Spines {
		spine.SetRoute(func(p *pkt.Packet) int {
			if int(p.Dst) < 1 || int(p.Dst) > nHosts {
				return -1
			}
			return hostLeaf(p.Dst)
		})
	}
	return ls, sb.part
}

// NumHosts returns the host count.
func (ls *LeafSpine) NumHosts() int { return len(ls.Hosts) }

// Host returns host by index (0-based).
func (ls *LeafSpine) Host(i int) *netsim.Host { return ls.Hosts[i] }

// BaseRTT returns the unloaded inter-rack RTT estimate (host -> leaf ->
// spine -> leaf -> host and back): the value used for ECN threshold
// derivation in the large-scale experiments.
func (ls *LeafSpine) BaseRTT() time.Duration {
	// 4 links each way: two host<->leaf edges and two leaf<->spine edges.
	prop := 4*ls.cfg.Delay + 4*ls.cfg.FabricDelay
	dataSer := 4 * units.Serialization(units.MTU, ls.cfg.Rate)
	ackSer := 4 * units.Serialization(units.AckSize, ls.cfg.Rate)
	return prop + dataSer + ackSer
}

// ecmpHash is a splitmix64-style integer hash.
func ecmpHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
