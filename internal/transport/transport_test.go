package transport

import (
	"testing"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// testNet is a two-host dumbbell: a <-> sw <-> b with configurable
// bottleneck marker on the sw->b port.
type testNet struct {
	eng      *sim.Engine
	a, b     *netsim.Host
	sw       *netsim.Switch
	toB, toA *netsim.Port
}

const (
	testRate  = 10 * units.Gbps
	testDelay = 5 * time.Microsecond
)

// newTestNet builds the dumbbell. marker / scheduler / buffer apply to
// the bottleneck port (sw -> b), which runs at testRate: with access
// links at the same rate a single flow cannot congest it, so tests that
// need queueing use newBottleneckNet with a slower sw->b link.
func newTestNet(t *testing.T, marker ecn.Marker, s sched.Scheduler, bufBytes int) *testNet {
	return newBottleneckNet(t, marker, s, bufBytes, testRate)
}

// newBottleneckNet is newTestNet with an explicit sw->b bottleneck rate.
func newBottleneckNet(t *testing.T, marker ecn.Marker, s sched.Scheduler, bufBytes int, bottleneck units.Rate) *testNet {
	t.Helper()
	eng := sim.NewEngine()
	a := netsim.NewHost(eng, 1)
	b := netsim.NewHost(eng, 2)
	sw := netsim.NewSwitch(eng, 100)
	a.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
	b.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
	if s == nil {
		s = sched.NewFIFO()
	}
	toA := netsim.NewPort(eng, netsim.NewLink(eng, testRate, testDelay, a),
		netsim.PortConfig{Sched: sched.NewFIFO()})
	toB := netsim.NewPort(eng, netsim.NewLink(eng, bottleneck, testDelay, b),
		netsim.PortConfig{Sched: s, Marker: marker, BufferBytes: bufBytes})
	sw.AddPort(toA)
	sw.AddPort(toB)
	sw.SetRoute(func(p *pkt.Packet) int {
		switch p.Dst {
		case 1:
			return 0
		case 2:
			return 1
		default:
			return -1
		}
	})
	return &testNet{eng: eng, a: a, b: b, sw: sw, toA: toA, toB: toB}
}

func TestShortFlowCompletes(t *testing.T) {
	n := newTestNet(t, nil, nil, 0)
	var done *Sender
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 15000, Config{}, func(s *Sender) { done = s })
	f.Sender.Start()
	n.eng.RunUntil(100 * time.Millisecond)

	if done == nil {
		t.Fatal("flow did not complete")
	}
	if f.Receiver.Goodput() != 15000 {
		t.Fatalf("goodput = %d, want 15000", f.Receiver.Goodput())
	}
	// 15000B fits in ~11 segments; two RTTs (~45us) should suffice.
	if done.FCT() > time.Millisecond {
		t.Fatalf("FCT = %v, unexpectedly slow", done.FCT())
	}
	if done.Retransmits() != 0 {
		t.Fatalf("retransmits = %d, want 0 on a clean path", done.Retransmits())
	}
}

func TestFlowSizeNotMultipleOfMSS(t *testing.T) {
	n := newTestNet(t, nil, nil, 0)
	sizes := []int64{1, 100, 1459, 1461, 999_999}
	var flowID pkt.FlowID
	for _, size := range sizes {
		flowID++
		completed := false
		f := NewFlow(n.eng, n.a, n.b, flowID, 0, size, Config{}, func(*Sender) { completed = true })
		f.Sender.Start()
		n.eng.RunUntil(n.eng.Now() + 50*time.Millisecond)
		if !completed {
			t.Fatalf("size %d: did not complete", size)
		}
		if got := f.Receiver.Goodput(); got != size {
			t.Fatalf("size %d: goodput = %d", size, got)
		}
	}
}

func TestLongFlowSaturatesLink(t *testing.T) {
	// Per-queue ECN with standard threshold on a 1G bottleneck: full
	// throughput expected.
	bottleneck := 1 * units.Gbps
	k := ecn.StandardThreshold(bottleneck, 60*time.Microsecond, 1)
	n := newBottleneckNet(t, &ecn.PerQueueStandard{K: k}, nil, units.Packets(200), bottleneck)
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{}, nil)
	f.Sender.Start()
	n.eng.RunUntil(20 * time.Millisecond)

	// Ideal: 1Gbps for 20ms = 2.5MB of wire bytes; goodput slightly
	// less due to headers. Accept >= 85%.
	wantMin := int64(float64(units.BytesIn(bottleneck, 20*time.Millisecond)) * 0.85)
	if got := f.Receiver.Goodput(); got < wantMin {
		t.Fatalf("goodput = %d, want >= %d", got, wantMin)
	}
}

func TestECNKeepsQueueBounded(t *testing.T) {
	kPkts := 16
	n := newBottleneckNet(t, &ecn.PerQueueStandard{K: units.Packets(kPkts)}, nil, 0, 1*units.Gbps)
	maxQ := 0
	n.toB.OnEnqueue(func(*pkt.Packet, int) {
		if b := n.toB.PortBytes(); b > maxQ {
			maxQ = b
		}
	})
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{}, nil)
	f.Sender.Start()
	// Skip slow-start overshoot, then track steady state.
	n.eng.RunUntil(10 * time.Millisecond)
	maxQ = 0
	n.eng.RunUntil(30 * time.Millisecond)

	// Steady-state occupancy should hover near K: allow some headroom
	// but far below an unbounded buffer.
	if maxQ > units.Packets(kPkts*4) {
		t.Fatalf("steady-state queue peaked at %d bytes (%d pkts), want near %d pkts",
			maxQ, maxQ/units.MTU, kPkts)
	}
	if f.Sender.Alpha() <= 0 {
		t.Fatal("alpha should be positive under persistent marking")
	}
	if f.Sender.MarksSeen() == 0 {
		t.Fatal("expected ECN marks on a saturated queue")
	}
}

func TestLossRecovery(t *testing.T) {
	// Tiny 4-packet buffer on a 1G bottleneck fed at 10G, no ECN: slow
	// start will overflow it.
	n := newBottleneckNet(t, nil, nil, units.Packets(4), 1*units.Gbps)
	completed := false
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 3_000_000, Config{}, func(*Sender) { completed = true })
	f.Sender.Start()
	n.eng.RunUntil(2 * time.Second)

	if n.toB.DropPackets() == 0 {
		t.Fatal("test needs drops to exercise recovery")
	}
	if !completed {
		t.Fatalf("flow did not complete despite %d drops", n.toB.DropPackets())
	}
	if f.Receiver.Goodput() != 3_000_000 {
		t.Fatalf("goodput = %d, want 3000000", f.Receiver.Goodput())
	}
	if f.Sender.Retransmits() == 0 {
		t.Fatal("expected retransmissions")
	}
}

func TestRateLimitedSender(t *testing.T) {
	n := newTestNet(t, nil, nil, 0)
	limit := 2 * units.Gbps
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{RateLimit: limit}, nil)
	f.Sender.Start()
	dur := 20 * time.Millisecond
	n.eng.RunUntil(dur)

	got := units.RateOf(f.Receiver.Goodput(), dur)
	if got < limit*85/100 || got > limit {
		t.Fatalf("rate-limited goodput = %v, want ~<= %v", got, limit)
	}
}

func TestRTTMeasurement(t *testing.T) {
	n := newTestNet(t, nil, nil, 0)
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 150_000, Config{}, nil)
	f.Sender.RecordRTT()
	f.Sender.Start()
	n.eng.RunUntil(50 * time.Millisecond)

	base := f.Sender.MinRTT()
	// 4 propagation hops of 5us plus serialization: >20us, <30us.
	if base < 20*time.Microsecond || base > 30*time.Microsecond {
		t.Fatalf("base RTT = %v, want 20-30us", base)
	}
	if len(f.Sender.RTTSamples()) == 0 {
		t.Fatal("RecordRTT kept no samples")
	}
}

func TestPMSBeFilterIgnoresMarks(t *testing.T) {
	// Force constant marking with a zero-threshold per-port marker; the
	// PMSB(e) filter with a huge RTT threshold ignores all of it.
	n := newTestNet(t, &ecn.PerPort{K: 0}, nil, 0)
	filter := &core.PMSBe{RTTThreshold: time.Hour}
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{Filter: filter}, nil)
	f.Sender.Start()
	n.eng.RunUntil(5 * time.Millisecond)

	if f.Sender.MarksSeen() == 0 {
		t.Fatal("expected marks with a zero threshold")
	}
	if f.Sender.MarksAccepted() != 0 {
		t.Fatalf("filter accepted %d marks, want 0", f.Sender.MarksAccepted())
	}
	if f.Sender.Alpha() != 0 {
		t.Fatalf("alpha = %v, want 0 when every mark is vetoed", f.Sender.Alpha())
	}

	// Control: without the filter the same marking collapses the window.
	n2 := newTestNet(t, &ecn.PerPort{K: 0}, nil, 0)
	f2 := NewFlow(n2.eng, n2.a, n2.b, 1, 0, 0, Config{}, nil)
	f2.Sender.Start()
	n2.eng.RunUntil(5 * time.Millisecond)
	if f2.Sender.Alpha() < 0.5 {
		t.Fatalf("unfiltered alpha = %v, want near 1 under constant marking", f2.Sender.Alpha())
	}
	if f2.Receiver.Goodput() >= f.Receiver.Goodput() {
		t.Fatal("constant accepted marking should throttle goodput below the filtered flow")
	}
}

// attachExtraSender adds a third host (node 3) behind the shared switch
// and returns it.
func attachExtraSender(n *testNet) *netsim.Host {
	c := netsim.NewHost(n.eng, 3)
	c.AttachNIC(netsim.NewLink(n.eng, testRate, testDelay, n.sw))
	toC := netsim.NewPort(n.eng, netsim.NewLink(n.eng, testRate, testDelay, c),
		netsim.PortConfig{Sched: sched.NewFIFO()})
	idx := n.sw.AddPort(toC)
	n.sw.SetRoute(func(p *pkt.Packet) int {
		switch p.Dst {
		case 1:
			return 0
		case 2:
			return 1
		case 3:
			return idx
		default:
			return -1
		}
	})
	return c
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	k := units.Packets(16)
	n := newTestNet(t, &ecn.PerQueueStandard{K: k}, nil, units.Packets(100))
	// Second sender host sharing the same bottleneck.
	c := attachExtraSender(n)

	f1 := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{}, nil)
	f2 := NewFlow(n.eng, c, n.b, 2, 0, 0, Config{}, nil)
	f1.Sender.Start()
	f2.Sender.Start()
	n.eng.RunUntil(50 * time.Millisecond)

	g1, g2 := float64(f1.Receiver.Goodput()), float64(f2.Receiver.Goodput())
	share := g1 / (g1 + g2)
	if share < 0.35 || share > 0.65 {
		t.Fatalf("flow 1 share = %.3f, want roughly fair", share)
	}
	// Combined they should still fill the link.
	wantMin := float64(units.BytesIn(testRate, 50*time.Millisecond)) * 0.85
	if g1+g2 < wantMin {
		t.Fatalf("aggregate goodput %.0f below %.0f", g1+g2, wantMin)
	}
}

func TestSenderAccessors(t *testing.T) {
	n := newTestNet(t, nil, nil, 0)
	f := NewFlow(n.eng, n.a, n.b, 42, 3, 1000, Config{}, nil)
	s := f.Sender
	if s.Flow() != 42 || s.Service() != 3 || s.Size() != 1000 {
		t.Fatal("accessor mismatch")
	}
	if s.Finished() {
		t.Fatal("not started yet")
	}
	s.Start()
	s.Start() // idempotent
	n.eng.RunUntil(10 * time.Millisecond)
	if !s.Finished() || s.FCT() <= 0 {
		t.Fatal("flow should have finished with positive FCT")
	}
	if s.AckedBytes() != 1000 {
		t.Fatalf("AckedBytes = %d", s.AckedBytes())
	}
}

func TestFlowIDGen(t *testing.T) {
	var g FlowIDGen
	a, b := g.Next(), g.Next()
	if a == b || a == 0 {
		t.Fatal("FlowIDGen must return distinct nonzero ids")
	}
}
