package transport

import (
	"testing"
	"testing/quick"
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/units"
)

func TestD2TCPGamma(t *testing.T) {
	tests := []struct {
		name  string
		alpha float64
		d     float64
		want  func(g float64) bool
	}{
		{"no congestion", 0, 2, func(g float64) bool { return g == 0 }},
		{"d=1 is dctcp", 0.5, 1, func(g float64) bool { return g == 0.5 }},
		{"urgent backs off less", 0.5, 2, func(g float64) bool { return g == 0.25 }},
		{"relaxed backs off more", 0.25, 0.5, func(g float64) bool { return g == 0.5 }},
		{"zero d treated as 1", 0.3, 0, func(g float64) bool { return g == 0.3 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if g := d2tcpGamma(tt.alpha, tt.d); !tt.want(g) {
				t.Fatalf("gamma(%v, %v) = %v", tt.alpha, tt.d, g)
			}
		})
	}
}

func TestClampUrgency(t *testing.T) {
	if clampUrgency(0.1) != 0.5 || clampUrgency(5) != 2 || clampUrgency(1.3) != 1.3 {
		t.Fatal("clampUrgency bounds wrong")
	}
}

// Property: gamma is monotone decreasing in urgency for alpha in (0,1):
// the tighter the deadline, the smaller the cut.
func TestPropertyGammaMonotone(t *testing.T) {
	f := func(aRaw, d1Raw, d2Raw uint8) bool {
		alpha := float64(aRaw%99+1) / 100 // (0,1)
		d1 := clampUrgency(float64(d1Raw) / 64)
		d2 := clampUrgency(float64(d2Raw) / 64)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		// Larger d => smaller gamma (alpha < 1).
		return d2tcpGamma(alpha, d2) <= d2tcpGamma(alpha, d1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestD2TCPWithoutDeadlineIsDCTCP(t *testing.T) {
	n := newBottleneckNet(t, &ecn.PerQueueStandard{K: units.Packets(16)}, nil,
		units.Packets(100), 1*units.Gbps)
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{}, nil)
	f.Sender.Start()
	n.eng.RunUntil(10 * time.Millisecond)
	if f.Sender.Urgency() != 1 {
		t.Fatalf("no-deadline urgency = %v, want 1", f.Sender.Urgency())
	}
	if !f.Sender.DeadlineMet() == f.Sender.Finished() {
		// Long-lived flow never finishes; DeadlineMet must be false.
	}
	if f.Sender.DeadlineMet() {
		t.Fatal("unfinished flow cannot have met a deadline")
	}
}

func TestD2TCPUrgentFlowWinsBandwidth(t *testing.T) {
	// Two equal flows share a 1G bottleneck under heavy marking. One is
	// plain DCTCP; one has a tight D2TCP deadline. The urgent flow must
	// finish first (it backs off less under the same marks).
	size := int64(2_000_000)
	build := func(deadline time.Duration) (time.Duration, time.Duration) {
		n := newBottleneckNet(t, &ecn.PerQueueStandard{K: units.Packets(16)}, nil,
			units.Packets(200), 1*units.Gbps)
		c := attachExtraSender(n)
		var fctA, fctB time.Duration
		fa := NewFlow(n.eng, n.a, n.b, 1, 0, size, Config{Deadline: deadline},
			func(s *Sender) { fctA = s.FCT() })
		fb := NewFlow(n.eng, c, n.b, 2, 0, size, Config{},
			func(s *Sender) { fctB = s.FCT() })
		fa.Sender.Start()
		fb.Sender.Start()
		n.eng.RunUntil(5 * time.Second)
		if fctA == 0 || fctB == 0 {
			t.Fatal("flows did not complete")
		}
		return fctA, fctB
	}

	// Tight deadline: 60% of the fair-share completion time.
	fair := time.Duration(float64(size*8*2) / 1e9 * float64(time.Second))
	urgentFCT, rivalFCT := build(fair * 6 / 10)
	if urgentFCT >= rivalFCT {
		t.Fatalf("urgent flow FCT %v should beat rival %v", urgentFCT, rivalFCT)
	}
}
