package transport

import (
	"testing"
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// TestSlowStartDoubling: with no marking, the window roughly doubles
// each RTT until it covers the data.
func TestSlowStartDoubling(t *testing.T) {
	n := newTestNet(t, nil, nil, 0)
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{InitWindow: 2}, nil)
	f.Sender.Start()

	// Base RTT ~22.5us: sample cwnd at RTT boundaries.
	samples := []float64{}
	for i := 1; i <= 4; i++ {
		n.eng.RunUntil(time.Duration(i) * 25 * time.Microsecond)
		samples = append(samples, f.Sender.Cwnd())
	}
	// Each sample should be roughly double the previous (within slack:
	// boundaries are inexact).
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1]*1.5 {
			t.Fatalf("slow start not doubling: %v", samples)
		}
	}
}

// TestCongestionAvoidanceLinear: above ssthresh the window grows about
// one segment per RTT.
func TestCongestionAvoidanceLinear(t *testing.T) {
	n := newTestNet(t, nil, nil, 0)
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{InitWindow: 10}, nil)
	s := f.Sender
	s.Start()
	// Pin the window near the BDP (~19 segments) and force congestion
	// avoidance; with cwnd ~ BDP the ACK clock delivers ~cwnd ACKs per
	// RTT, so growth is ~1 segment per RTT.
	n.eng.RunUntil(100 * time.Microsecond)
	s.ssthresh = 1 // pure congestion avoidance from here on
	s.cwnd = 20
	w0 := s.Cwnd()
	rtt := s.MinRTT()
	if rtt <= 0 {
		t.Fatal("need an RTT estimate")
	}
	n.eng.RunUntil(100*time.Microsecond + 10*rtt)
	growth := s.Cwnd() - w0
	// ~1 segment per RTT over 10 RTTs: expect 4..20 allowing queueing
	// to stretch the effective RTT.
	if growth < 4 || growth > 20 {
		t.Fatalf("CA growth over 10 RTTs = %.1f segments, want ~10", growth)
	}
}

// TestAlphaConvergesToMarkFraction: with every packet marked, alpha
// approaches 1; after marking stops it decays geometrically.
func TestAlphaConvergence(t *testing.T) {
	n := newTestNet(t, &ecn.PerPort{K: 0}, nil, 0) // mark everything
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{}, nil)
	f.Sender.Start()
	n.eng.RunUntil(10 * time.Millisecond)
	if a := f.Sender.Alpha(); a < 0.9 {
		t.Fatalf("alpha under full marking = %v, want ~1", a)
	}
}

// TestCutOncePerWindow: a burst of marked ACKs within one window causes
// exactly one multiplicative decrease.
func TestCutOncePerWindow(t *testing.T) {
	eng, host := isolatedHost(t)
	s := NewSender(eng, host, 1, 2, 0, 0, Config{InitWindow: 16}, nil)
	s.Start()
	// Emit the initial window into the void (stop before the 2ms RTO
	// starts an endless retransmission chain).
	eng.RunUntil(time.Millisecond)

	s.alpha = 0.5
	w0 := s.Cwnd()
	// Deliver three marked cumulative ACKs inside the same window.
	base := int64(0)
	for i := 1; i <= 3; i++ {
		s.handleAck(&pkt.Packet{
			IsAck: true,
			ECE:   true,
			AckNo: base + int64(i*units.MSS),
		})
	}
	// Only the first mark may cut: cwnd never drops below w0*(1-a/2)
	// minus the additive growth credited by the new ACKs.
	floor := w0 * (1 - 0.5/2)
	if s.Cwnd() < floor {
		t.Fatalf("cwnd = %v fell below one-cut floor %v (multiple cuts in one window)", s.Cwnd(), floor)
	}
}

// TestECNDisabled: with DisableECN the packets are not ECT and never get
// marked, so the flow ignores even an always-mark switch.
func TestECNDisabled(t *testing.T) {
	n := newTestNet(t, &ecn.PerPort{K: 0}, nil, 0)
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 0, Config{DisableECN: true}, nil)
	f.Sender.Start()
	n.eng.RunUntil(5 * time.Millisecond)
	if f.Sender.MarksSeen() != 0 {
		t.Fatal("non-ECT flow saw marks")
	}
	if f.Receiver.CEMarked() != 0 {
		t.Fatal("non-ECT packets were CE-marked")
	}
}

// isolatedHost returns a host whose NIC leads into a black hole — for
// driving the sender state machine by hand-crafted ACKs.
func isolatedHost(t *testing.T) (*sim.Engine, *netsim.Host) {
	t.Helper()
	eng := sim.NewEngine()
	h := netsim.NewHost(eng, 1)
	hole := netsim.NewHost(eng, 2) // unclaimed sink
	h.AttachNIC(netsim.NewLink(eng, 10*units.Gbps, time.Microsecond, hole))
	return eng, h
}
