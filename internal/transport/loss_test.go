package transport

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// lossyNet builds a dumbbell whose bottleneck drops packets according
// to dropFn (failure injection).
func lossyNet(t *testing.T, dropFn func(*pkt.Packet) bool) *testNet {
	t.Helper()
	eng := sim.NewEngine()
	a := netsim.NewHost(eng, 1)
	b := netsim.NewHost(eng, 2)
	sw := netsim.NewSwitch(eng, 100)
	a.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
	b.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
	toA := netsim.NewPort(eng, netsim.NewLink(eng, testRate, testDelay, a),
		netsim.PortConfig{Sched: sched.NewFIFO()})
	toB := netsim.NewPort(eng, netsim.NewLink(eng, testRate, testDelay, b),
		netsim.PortConfig{Sched: sched.NewFIFO(), DropFn: dropFn})
	sw.AddPort(toA)
	sw.AddPort(toB)
	sw.SetRoute(func(p *pkt.Packet) int {
		switch p.Dst {
		case 1:
			return 0
		case 2:
			return 1
		default:
			return -1
		}
	})
	return &testNet{eng: eng, a: a, b: b, sw: sw, toA: toA, toB: toB}
}

func TestRandomLossRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	n := lossyNet(t, func(p *pkt.Packet) bool {
		return !p.IsAck && r.Float64() < 0.02 // 2% data loss
	})
	completed := false
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 1_000_000, Config{}, func(*Sender) { completed = true })
	f.Sender.Start()
	n.eng.RunUntil(5 * time.Second)

	if !completed {
		t.Fatal("flow did not survive 2% random loss")
	}
	if f.Receiver.Goodput() != 1_000_000 {
		t.Fatalf("goodput = %d", f.Receiver.Goodput())
	}
	if n.toB.DropPackets() == 0 {
		t.Fatal("sanity: injection produced no drops")
	}
}

func TestTargetedFirstPacketLoss(t *testing.T) {
	// Drop the very first data packet: recovery must come from the RTO
	// (no dup ACKs are possible).
	dropped := false
	n := lossyNet(t, func(p *pkt.Packet) bool {
		if !p.IsAck && p.Seq == 0 && !dropped {
			dropped = true
			return true
		}
		return false
	})
	completed := false
	f := NewFlow(n.eng, n.a, n.b, 1, 0, 1000, Config{MinRTO: time.Millisecond},
		func(*Sender) { completed = true })
	f.Sender.Start()
	n.eng.RunUntil(time.Second)

	if !completed {
		t.Fatal("flow did not recover from first-packet loss")
	}
	if f.Sender.Retransmits() == 0 {
		t.Fatal("expected an RTO retransmission")
	}
	// The RTO must have fired: FCT >= MinRTO.
	if f.Sender.FCT() < time.Millisecond {
		t.Fatalf("FCT = %v, expected at least the 1ms RTO", f.Sender.FCT())
	}
}

func TestTailPacketLoss(t *testing.T) {
	// Drop the last segment once: the tail loss is only recoverable by
	// RTO (nothing after it generates dup ACKs).
	size := int64(10 * units.MSS)
	dropped := false
	n := lossyNet(t, func(p *pkt.Packet) bool {
		if !p.IsAck && !dropped && p.Seq == size-int64(units.MSS) {
			dropped = true
			return true
		}
		return false
	})
	completed := false
	f := NewFlow(n.eng, n.a, n.b, 1, 0, size, Config{MinRTO: time.Millisecond},
		func(*Sender) { completed = true })
	f.Sender.Start()
	n.eng.RunUntil(time.Second)
	if !completed {
		t.Fatal("flow did not recover from tail loss")
	}
	if f.Receiver.Goodput() != size {
		t.Fatalf("goodput = %d, want %d", f.Receiver.Goodput(), size)
	}
}

func TestAckLoss(t *testing.T) {
	// Losing ACKs must not break correctness: cumulative ACKs cover the
	// gaps.
	r := rand.New(rand.NewSource(5))
	eng := sim.NewEngine()
	a := netsim.NewHost(eng, 1)
	b := netsim.NewHost(eng, 2)
	sw := netsim.NewSwitch(eng, 100)
	a.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
	b.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
	toA := netsim.NewPort(eng, netsim.NewLink(eng, testRate, testDelay, a),
		netsim.PortConfig{Sched: sched.NewFIFO(), DropFn: func(p *pkt.Packet) bool {
			return p.IsAck && r.Float64() < 0.2 // 20% ACK loss
		}})
	toB := netsim.NewPort(eng, netsim.NewLink(eng, testRate, testDelay, b),
		netsim.PortConfig{Sched: sched.NewFIFO()})
	sw.AddPort(toA)
	sw.AddPort(toB)
	sw.SetRoute(func(p *pkt.Packet) int {
		switch p.Dst {
		case 1:
			return 0
		case 2:
			return 1
		default:
			return -1
		}
	})
	completed := false
	f := NewFlow(eng, a, b, 1, 0, 500_000, Config{}, func(*Sender) { completed = true })
	f.Sender.Start()
	eng.RunUntil(5 * time.Second)
	if !completed {
		t.Fatal("flow did not survive 20% ACK loss")
	}
	if f.Receiver.Goodput() != 500_000 {
		t.Fatalf("goodput = %d", f.Receiver.Goodput())
	}
}

// Property: for any loss rate up to 10% and any flow size up to ~40
// segments, the flow completes and delivers exactly its size.
func TestPropertyLossyCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("property loss sweep skipped in -short mode")
	}
	f := func(seed int64, sizeRaw uint16, lossRaw uint8) bool {
		size := int64(sizeRaw)%int64(40*units.MSS) + 1
		loss := float64(lossRaw%10) / 100
		r := rand.New(rand.NewSource(seed))
		n := lossyNet(t, func(p *pkt.Packet) bool {
			return !p.IsAck && r.Float64() < loss
		})
		done := false
		fl := NewFlow(n.eng, n.a, n.b, 1, 0, size, Config{MinRTO: time.Millisecond},
			func(*Sender) { done = true })
		fl.Sender.Start()
		n.eng.RunUntil(30 * time.Second)
		return done && fl.Receiver.Goodput() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
