package transport

import (
	"sync"
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// Receiver is the DCTCP receiver endpoint. By default it acknowledges
// every data packet with a cumulative ACK that echoes the packet's CE
// codepoint in ECE (per-packet accurate echo). With delayed ACKs
// enabled it instead runs the DCTCP paper's two-state ECE echo machine:
// ACKs coalesce up to AckEvery packets while the CE state is stable,
// and a state *change* forces an immediate ACK so the echoed marking
// fraction stays exact.
type Receiver struct {
	eng     *sim.Engine
	host    *netsim.Host
	flow    pkt.FlowID
	src     pkt.NodeID
	service int

	rcvNxt int64
	// ooo holds out-of-order segments, sorted by sequence number, until
	// the gap before them fills. The backing array is reused for the
	// flow's lifetime, so steady-state reassembly never allocates — and
	// in-order flows never allocate it at all.
	ooo []oooSeg

	rxBytes   int64 // goodput: in-order payload bytes delivered
	rxPackets int64
	ceCount   int64

	// Delayed-ACK state (DCTCP paper Section 3.2).
	ackEvery int           // coalesce factor m (<=1: per-packet ACKs)
	ackDelay time.Duration // flush timer for a held ACK (default 500us)
	ceState  bool          // CE value of the run being coalesced
	pending  int           // data packets since the last ACK
	lastEcho time.Duration
	flushT   sim.Timer
	// flushAt is when the currently held ACK must escape. The timer is
	// lazy: an ACK that empties the hold leaves the armed event in
	// place (its handler no-ops on pending == 0 or re-arms for a later
	// hold), so coalescing never cancels or reschedules events.
	flushAt time.Duration

	nextPktID uint64
}

// ReceiverOption customizes a Receiver.
type ReceiverOption func(*Receiver)

// WithDelayedAcks turns on DCTCP's delayed-ACK echo state machine,
// acknowledging every m-th packet while the CE state is stable. A held
// ACK is flushed after 500us so a flow's tail is never stranded.
func WithDelayedAcks(m int) ReceiverOption {
	return func(r *Receiver) {
		r.ackEvery = m
		r.ackDelay = 500 * time.Microsecond
	}
}

// WithAckDelay overrides the delayed-ACK flush timer.
func WithAckDelay(d time.Duration) ReceiverOption {
	return func(r *Receiver) { r.ackDelay = d }
}

// receiverPool recycles Receiver records across flows; see senderPool
// for the reuse-safety argument.
var receiverPool = sync.Pool{New: func() any { return new(Receiver) }}

// NewReceiver creates a receiver for flow f at host dst, acknowledging
// back to src. service classifies the reverse (ACK) path. Like the
// sender, the receiver binds to dst's own engine (== eng in
// single-engine topologies, the host's shard engine in sharded ones).
func NewReceiver(eng *sim.Engine, dst *netsim.Host, f pkt.FlowID, src pkt.NodeID,
	service int, opts ...ReceiverOption) *Receiver {
	if he := dst.Engine(); he != nil {
		eng = he
	}
	r := receiverPool.Get().(*Receiver)
	ooo := r.ooo[:0]
	*r = Receiver{
		eng:     eng,
		host:    dst,
		flow:    f,
		src:     src,
		service: service,
		ooo:     ooo,
	}
	for _, opt := range opts {
		opt(r)
	}
	dst.Attach(f, r)
	return r
}

// Handle implements netsim.Handler: the receiver consumes its flow's
// data packets directly, with no adapter closure.
func (r *Receiver) Handle(p *pkt.Packet) { r.handleData(p) }

// release detaches the receiver, disarms its flush timer and returns
// the record to the pool. See Flow.Release.
func (r *Receiver) release() {
	r.flushT.Cancel()
	r.host.Detach(r.flow)
	receiverPool.Put(r)
}

// Goodput returns the in-order payload bytes delivered so far.
func (r *Receiver) Goodput() int64 { return r.rxBytes }

// RxPackets returns the number of data packets received.
func (r *Receiver) RxPackets() int64 { return r.rxPackets }

// CEMarked returns the number of received data packets carrying CE.
func (r *Receiver) CEMarked() int64 { return r.ceCount }

// Close detaches the receiver from its host.
func (r *Receiver) Close() { r.host.Detach(r.flow) }

// handleData consumes a data packet: everything the receiver needs
// (sequence, payload length, CE, echo timestamp) is copied out, so the
// packet returns to the pool when handling completes.
func (r *Receiver) handleData(p *pkt.Packet) {
	defer pkt.Release(p)
	if p.IsAck {
		return
	}
	r.rxPackets++
	if p.CE {
		r.ceCount++
	}

	payload := int64(p.Payload)
	inOrder := p.Seq == r.rcvNxt
	prevRcvNxt := r.rcvNxt
	switch {
	case p.Seq == r.rcvNxt:
		r.rcvNxt += payload
		r.rxBytes += payload
		r.oooFill()
	case p.Seq > r.rcvNxt:
		r.oooStore(p.Seq, payload)
	default:
		// Duplicate of already-delivered data; ACK restates rcvNxt.
	}

	if r.ackEvery <= 1 || !inOrder {
		// Per-packet echo; out-of-order or duplicate data always
		// triggers an immediate (dup) ACK so fast retransmit works.
		r.sendAck(r.rcvNxt, p.CE, p.SentAt)
		r.resetPending()
		r.ceState = p.CE
		return
	}

	// DCTCP delayed-ACK echo machine: a CE-state change flushes an ACK
	// covering exactly the *previous* run (up to its boundary), keeping
	// the echoed marking fraction byte-accurate; otherwise coalesce m
	// packets.
	if r.pending > 0 && p.CE != r.ceState {
		r.sendAck(prevRcvNxt, r.ceState, r.lastEcho)
		r.resetPending()
	}
	r.ceState = p.CE
	r.lastEcho = p.SentAt
	r.pending++
	if r.pending == 1 {
		r.flushAt = r.eng.Now() + r.ackDelay
	}
	if r.pending >= r.ackEvery {
		r.sendAck(r.rcvNxt, r.ceState, r.lastEcho)
		r.resetPending()
		return
	}
	// Make sure a flush event is armed so a held ACK (e.g. a flow's
	// final odd segment) escapes without waiting for the sender's RTO.
	// A leftover event from an earlier hold fires first and re-arms for
	// the remainder.
	if !r.flushT.Active() {
		r.flushT = r.eng.ScheduleCall(r.ackDelay, receiverFlush, r)
	}
}

// receiverFlush is the delayed-ACK flush trampoline (the receiver rides
// in the event arg so arming the timer never allocates). The timer is
// lazy: a fire with nothing held dies quietly, a fire before the
// current hold's deadline re-arms for the remainder.
func receiverFlush(arg any) {
	r := arg.(*Receiver)
	if r.pending == 0 {
		return
	}
	if now := r.eng.Now(); now < r.flushAt {
		r.flushT = r.eng.ScheduleCall(r.flushAt-now, receiverFlush, r)
		return
	}
	r.sendAck(r.rcvNxt, r.ceState, r.lastEcho)
	r.pending = 0
}

// resetPending clears the coalescing state. Any armed flush event is
// left to fire and find nothing held.
func (r *Receiver) resetPending() {
	r.pending = 0
}

// oooSeg is one buffered out-of-order segment: payload bytes
// [seq, seq+len).
type oooSeg struct {
	seq, len int64
}

// oooStore buffers an out-of-order segment in sequence order. A
// duplicate (same starting sequence — go-back-N retransmissions slice
// segments identically) overwrites in place.
func (r *Receiver) oooStore(seq, length int64) {
	lo, hi := 0, len(r.ooo)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.ooo[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.ooo) && r.ooo[lo].seq == seq {
		r.ooo[lo].len = length
		return
	}
	r.ooo = append(r.ooo, oooSeg{})
	copy(r.ooo[lo+1:], r.ooo[lo:])
	r.ooo[lo] = oooSeg{seq: seq, len: length}
}

// oooFill consumes buffered segments made contiguous by an advance of
// rcvNxt, in one pass. Segments the cumulative advance overtook
// (already-delivered duplicates) are discarded.
func (r *Receiver) oooFill() {
	k := 0
	for k < len(r.ooo) && r.ooo[k].seq <= r.rcvNxt {
		if s := r.ooo[k]; s.seq == r.rcvNxt {
			r.rcvNxt += s.len
			r.rxBytes += s.len
		}
		k++
	}
	if k > 0 {
		r.ooo = r.ooo[:copy(r.ooo, r.ooo[k:])]
	}
}

// sendAck emits a cumulative ACK up to ackNo with the given ECE echo.
func (r *Receiver) sendAck(ackNo int64, ece bool, echo time.Duration) {
	r.nextPktID++
	p := pkt.Get()
	p.ID = r.nextPktID
	p.Flow = r.flow
	p.Src = r.host.NodeID()
	p.Dst = r.src
	p.Size = units.AckSize
	p.IsAck = true
	p.AckNo = ackNo
	p.ECE = ece
	p.Service = r.service
	p.Echo = echo
	r.host.Send(p)
}
