package transport

import (
	"sync"
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// Sender is a DCTCP sender endpoint. Create it with NewSender (or the
// Flow convenience wrapper), then call Start.
type Sender struct {
	eng     *sim.Engine
	host    *netsim.Host
	flow    pkt.FlowID
	dst     pkt.NodeID
	service int
	size    int64 // total bytes to send; 0 = long-lived (unbounded)
	cfg     Config

	// Congestion state. cwnd and ssthresh are in segments.
	cwnd     float64
	ssthresh float64
	alpha    float64

	// DCTCP observation window: when sndUna passes alphaSeq, alpha is
	// refreshed from the marked/acked byte counts.
	alphaSeq    int64
	bytesAcked  int64
	bytesMarked int64
	// cutSeq implements "at most one window reduction per RTT".
	cutSeq int64

	sndNxt, sndUna int64
	dupAcks        int
	recovering     bool
	recoverSeq     int64

	rtoTimer sim.Timer
	// rtoDeadline is when the outstanding data actually times out. The
	// timer is lazy: every ACK pushes the deadline forward without
	// touching the armed event, and the fire handler re-arms for the
	// remainder. This keeps one pending RTO event per flow instead of a
	// cancelled record per ACK — the allocation churn that used to
	// dominate the transport benchmarks.
	rtoDeadline time.Duration
	rtoBackoff  int
	srtt        time.Duration

	// Pacing state for rate-limited senders.
	nextSendAt time.Duration
	paceTimer  sim.Timer

	lastRTT time.Duration
	minRTT  time.Duration

	started, finished bool
	startedAt         time.Duration
	fct               time.Duration
	onComplete        func(s *Sender)

	nextPktID uint64

	// Stats.
	retransmits   int64
	marksSeen     int64
	marksAccepted int64
	rttSamples    []time.Duration
	recordRTT     bool

	// probe is the flow's handle into the observability layer; nil
	// (cfg.Obs unset) makes every emit a single pointer test.
	probe *obs.FlowProbe
}

// senderPool recycles Sender records across flows: workload sweeps
// create thousands of short flows, and reusing the records (together
// with Flow.Release) removes per-flow setup allocations. A released
// record may still be referenced by cancelled timer events riding the
// queue; those are reaped without firing, so reuse is safe.
var senderPool = sync.Pool{New: func() any { return new(Sender) }}

// NewSender creates a DCTCP sender at host src sending size bytes (0 for
// a long-lived flow) to dst under flow id f, classified into the given
// service. onComplete (may be nil) fires when the last byte is acked.
// The sender is driven by src's engine (identical to eng in
// single-engine topologies; in sharded ones the host's shard engine is
// the only correct clock, so eng is consulted only when src has no
// engine of its own).
func NewSender(eng *sim.Engine, src *netsim.Host, f pkt.FlowID, dst pkt.NodeID,
	service int, size int64, cfg Config, onComplete func(*Sender)) *Sender {
	if he := src.Engine(); he != nil {
		eng = he
	}
	s := senderPool.Get().(*Sender)
	*s = Sender{
		eng:        eng,
		host:       src,
		flow:       f,
		dst:        dst,
		service:    service,
		size:       size,
		cfg:        cfg.withDefaults(),
		onComplete: onComplete,
	}
	s.cwnd = float64(s.cfg.InitWindow)
	s.ssthresh = float64(s.cfg.MaxWindow)
	src.Attach(f, s)
	return s
}

// Handle implements netsim.Handler: the sender consumes its flow's
// ACKs directly, with no adapter closure.
func (s *Sender) Handle(p *pkt.Packet) { s.handleAck(p) }

// release detaches the sender from its host, disarms its timers and
// returns the record to the pool. See Flow.Release.
func (s *Sender) release() {
	s.rtoTimer.Cancel()
	s.paceTimer.Cancel()
	s.host.Detach(s.flow)
	s.onComplete = nil
	s.cfg = Config{}
	s.probe = nil
	s.rttSamples = nil
	senderPool.Put(s)
}

// Start begins transmission at the current virtual time.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.startedAt = s.eng.Now()
	s.alphaSeq = 0
	s.probe = s.cfg.Obs.OpenFlow(s.startedAt, s.flow, s.service, s.size)
	s.trySend()
}

// senderStart is the flow-start trampoline (the sender rides in the
// event arg), so scheduling a start never allocates.
func senderStart(arg any) { arg.(*Sender).Start() }

// StartAt schedules Start at absolute virtual time at. It is the
// allocation-free alternative to eng.ScheduleAt(at, s.Start), and it
// always lands on the sender's own engine — required in sharded
// topologies, where the caller may not hold the right shard's engine.
func (s *Sender) StartAt(at time.Duration) {
	s.eng.ScheduleCallAt(at, senderStart, s)
}

// Flow returns the sender's flow ID.
func (s *Sender) Flow() pkt.FlowID { return s.flow }

// Finished reports whether the flow completed (all bytes acked).
func (s *Sender) Finished() bool { return s.finished }

// FCT returns the flow completion time (valid once Finished).
func (s *Sender) FCT() time.Duration { return s.fct }

// Size returns the flow size in bytes (0 for long-lived flows).
func (s *Sender) Size() int64 { return s.size }

// Service returns the flow's service class.
func (s *Sender) Service() int { return s.service }

// Alpha returns the current DCTCP congestion estimate.
func (s *Sender) Alpha() float64 { return s.alpha }

// Cwnd returns the congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// LastRTT returns the most recent RTT sample.
func (s *Sender) LastRTT() time.Duration { return s.lastRTT }

// MinRTT returns the smallest RTT sample seen.
func (s *Sender) MinRTT() time.Duration { return s.minRTT }

// Retransmits returns the number of retransmitted segments.
func (s *Sender) Retransmits() int64 { return s.retransmits }

// MarksSeen returns how many marked ACKs arrived; MarksAccepted how many
// the filter let through.
func (s *Sender) MarksSeen() int64 { return s.marksSeen }

// MarksAccepted returns the number of marks the sender reacted to.
func (s *Sender) MarksAccepted() int64 { return s.marksAccepted }

// rttSamplePool recycles sample slices across flows, so the many
// short flows of a workload sweep record RTTs without growing a fresh
// slice each (see ReleaseRTTSamples).
var rttSamplePool = sync.Pool{
	New: func() any { return make([]time.Duration, 0, 1024) },
}

// RecordRTT makes the sender keep every RTT sample (for CDF plots).
// The sample slice comes from a shared pool and is sized up front for
// bounded flows, so recording adds no per-ACK allocations.
func (s *Sender) RecordRTT() {
	s.recordRTT = true
	if s.rttSamples != nil {
		return
	}
	if s.size > 0 {
		// One sample per full segment is the ceiling; reserve exactly
		// that for mid-size flows. Huge flows fall through to the pool
		// and grow organically rather than pinning megabyte reservations.
		if need := int(s.size/int64(s.cfg.MSS)) + 16; need > 1024 && need <= 4096 {
			s.rttSamples = make([]time.Duration, 0, need)
			return
		}
	}
	s.rttSamples = rttSamplePool.Get().([]time.Duration)[:0]
}

// RTTSamples returns the recorded samples (RecordRTT must be on).
func (s *Sender) RTTSamples() []time.Duration { return s.rttSamples }

// ReleaseRTTSamples returns the sample slice to the shared pool. Call
// it once the samples have been consumed; the slice returned by
// RTTSamples must not be used afterwards.
func (s *Sender) ReleaseRTTSamples() {
	if s.rttSamples == nil {
		return
	}
	rttSamplePool.Put(s.rttSamples[:0])
	s.rttSamples = nil
	s.recordRTT = false
}

// AckedBytes returns the cumulative acknowledged bytes.
func (s *Sender) AckedBytes() int64 { return s.sndUna }

// inflight returns the unacknowledged bytes.
func (s *Sender) inflight() int64 { return s.sndNxt - s.sndUna }

// trySend transmits as many new segments as the window (and pacing
// rate) permit.
func (s *Sender) trySend() {
	if !s.started || s.finished {
		return
	}
	mss := int64(s.cfg.MSS)
	for {
		if s.size > 0 && s.sndNxt >= s.size {
			break
		}
		wnd := int64(s.cwnd * float64(mss))
		if s.inflight()+mss > wnd {
			break
		}
		if s.cfg.RateLimit > 0 {
			now := s.eng.Now()
			if now < s.nextSendAt {
				s.schedulePace()
				break
			}
		}
		s.sendSegment(s.sndNxt, false)
		s.sndNxt += s.segmentLen(s.sndNxt)
	}
	s.armRTO()
}

// segmentLen returns the payload length of the segment starting at seq.
func (s *Sender) segmentLen(seq int64) int64 {
	mss := int64(s.cfg.MSS)
	if s.size > 0 && s.size-seq < mss {
		return s.size - seq
	}
	return mss
}

// sendSegment emits the segment starting at seq (new data or
// retransmission).
func (s *Sender) sendSegment(seq int64, retx bool) {
	payload := s.segmentLen(seq)
	s.nextPktID++
	p := pkt.Get()
	p.ID = s.nextPktID
	p.Flow = s.flow
	p.Src = s.host.NodeID()
	p.Dst = s.dst
	p.Size = int(payload) + units.HeaderSize
	p.Payload = int(payload)
	p.Seq = seq
	p.ECT = !s.cfg.DisableECN
	p.Service = s.service
	p.SentAt = s.eng.Now()
	if retx {
		s.retransmits++
		s.probe.Retransmit(s.eng.Now(), seq)
	}
	if s.cfg.RateLimit > 0 {
		now := s.eng.Now()
		if s.nextSendAt < now {
			s.nextSendAt = now
		}
		s.nextSendAt += units.Serialization(p.Size, s.cfg.RateLimit)
	}
	s.host.Send(p)
}

// senderPace and senderRTO are the shared timer trampolines: the sender
// itself rides in the event arg, so (re)arming the per-packet pacing
// and retransmission timers never allocates.
func senderPace(arg any) { arg.(*Sender).trySend() }
func senderRTO(arg any)  { arg.(*Sender).onRTOTimer() }

// schedulePace arms a timer to resume sending when pacing allows.
func (s *Sender) schedulePace() {
	if s.paceTimer.Active() {
		return
	}
	delay := s.nextSendAt - s.eng.Now()
	s.paceTimer = s.eng.ScheduleCall(delay, senderPace, s)
}

// handleAck processes an incoming (cumulative) acknowledgement. The
// sender is the ACK's terminal consumer: the packet returns to the pool
// when handling completes.
func (s *Sender) handleAck(p *pkt.Packet) {
	defer pkt.Release(p)
	if !p.IsAck || s.finished {
		return
	}
	now := s.eng.Now()
	// Echo carries the data packet's SentAt (0 is a valid send time at
	// the very start of the simulation).
	if rtt := now - p.Echo; rtt >= 0 {
		s.lastRTT = rtt
		if s.minRTT == 0 || rtt < s.minRTT {
			s.minRTT = rtt
		}
		if s.srtt == 0 {
			s.srtt = rtt
		} else {
			s.srtt = (7*s.srtt + rtt) / 8
		}
		if s.recordRTT {
			s.rttSamples = append(s.rttSamples, rtt)
		}
	}

	marked := p.ECE
	if marked {
		s.marksSeen++
	}
	// Selective blindness hook: PMSB(e) may veto the congestion signal.
	accepted := marked
	if s.cfg.Filter != nil {
		accepted = s.cfg.Filter.Accept(s.lastRTT, marked)
	}
	if accepted {
		s.marksAccepted++
	}
	s.probe.Signal(marked, accepted)

	switch {
	case p.AckNo > s.sndUna:
		s.onNewAck(p.AckNo, accepted)
	case p.AckNo == s.sndUna:
		s.onDupAck()
	}
	if s.finished {
		return
	}
	s.trySend()
}

// onNewAck advances the window for n newly acknowledged bytes.
func (s *Sender) onNewAck(ackNo int64, accepted bool) {
	n := ackNo - s.sndUna
	s.sndUna = ackNo
	s.dupAcks = 0
	s.rtoBackoff = 0

	// DCTCP byte accounting for the alpha estimator.
	s.bytesAcked += n
	if accepted {
		s.bytesMarked += n
	}
	if s.sndUna >= s.alphaSeq {
		if s.bytesAcked > 0 {
			f := float64(s.bytesMarked) / float64(s.bytesAcked)
			s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G*f
		}
		s.bytesAcked, s.bytesMarked = 0, 0
		s.alphaSeq = s.sndNxt
		s.probe.Alpha(s.eng.Now(), s.alpha, s.sndUna)
	}

	if s.recovering && s.sndUna >= s.recoverSeq {
		s.recovering = false
	}

	// Window growth: slow start adds one segment per acked segment;
	// congestion avoidance adds 1/cwnd per acked segment.
	segs := float64(n) / float64(s.cfg.MSS)
	if s.cwnd < s.ssthresh {
		s.cwnd += segs
	} else {
		s.cwnd += segs / s.cwnd
	}
	if s.cwnd > float64(s.cfg.MaxWindow) {
		s.cwnd = float64(s.cfg.MaxWindow)
	}

	// DCTCP cut: at most once per window of data. With a deadline the
	// cut uses D2TCP's gamma correction alpha^d (d2tcp.go).
	if accepted && s.sndUna > s.cutSeq {
		gamma := s.alpha
		if s.cfg.Deadline > 0 {
			gamma = d2tcpGamma(s.alpha, s.urgency())
		}
		s.cwnd = s.cwnd * (1 - gamma/2)
		if s.cwnd < 1 {
			s.cwnd = 1
		}
		s.ssthresh = s.cwnd
		s.cutSeq = s.sndNxt
		s.probe.CwndCut(s.eng.Now(), s.cwnd)
	}

	if s.size > 0 && s.sndUna >= s.size {
		s.complete()
		return
	}
	s.armRTO()
}

// onDupAck counts duplicate ACKs and fast-retransmits on the third.
func (s *Sender) onDupAck() {
	if s.inflight() == 0 {
		return
	}
	s.dupAcks++
	if s.dupAcks == 3 && !s.recovering {
		s.recovering = true
		s.recoverSeq = s.sndNxt
		s.ssthresh = s.cwnd / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.cwnd = s.ssthresh
		s.sendSegment(s.sndUna, true)
	}
}

// armRTO moves the retransmission deadline while data is in flight. An
// already-armed timer that fires at or before the new deadline is left
// alone — its handler re-arms for the remainder — so the steady ACK
// stream never cancels or reschedules events.
func (s *Sender) armRTO() {
	if s.inflight() == 0 || s.finished {
		s.rtoTimer.Cancel()
		return
	}
	rto := s.cfg.MinRTO
	if est := 2 * s.srtt; est > rto {
		rto = est
	}
	rto <<= s.rtoBackoff
	s.rtoDeadline = s.eng.Now() + rto
	if at, ok := s.rtoTimer.When(); ok {
		if at <= s.rtoDeadline {
			return
		}
		// The deadline moved earlier (RTO shrank after a backoff reset):
		// re-arm precisely rather than time out late.
		s.rtoTimer.Cancel()
	}
	s.rtoTimer = s.eng.ScheduleCall(rto, senderRTO, s)
}

// onRTOTimer fires when the armed RTO event expires. If ACKs have
// pushed the real deadline past the armed time, sleep out the
// remainder; otherwise the outstanding data genuinely timed out.
func (s *Sender) onRTOTimer() {
	if s.finished || s.inflight() == 0 {
		return
	}
	if now := s.eng.Now(); now < s.rtoDeadline {
		s.rtoTimer = s.eng.ScheduleCall(s.rtoDeadline-now, senderRTO, s)
		return
	}
	s.onRTO()
}

// onRTO handles a retransmission timeout: go-back-N restart from sndUna
// with a window of one segment.
func (s *Sender) onRTO() {
	if s.finished || s.inflight() == 0 {
		return
	}
	s.probe.RTO(s.eng.Now())
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.recovering = false
	s.dupAcks = 0
	s.sndNxt = s.sndUna // go-back-N: resend everything outstanding
	if s.rtoBackoff < 6 {
		s.rtoBackoff++
	}
	s.sendSegment(s.sndUna, true)
	s.sndNxt += s.segmentLen(s.sndUna)
	s.armRTO()
}

// complete finalizes the flow. The sender stays attached to its host so
// ACKs still in flight land on a finished (and silent) endpoint instead
// of counting as unclaimed traffic.
func (s *Sender) complete() {
	s.finished = true
	s.fct = s.eng.Now() - s.startedAt
	s.rtoTimer.Cancel()
	s.paceTimer.Cancel()
	s.probe.Finish(s.eng.Now(), s.fct, s.sndUna)
	if s.onComplete != nil {
		s.onComplete(s)
	}
}
