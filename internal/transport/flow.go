package transport

import (
	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
)

// Flow bundles a DCTCP sender/receiver pair over a topology.
type Flow struct {
	// Sender is the source endpoint.
	Sender *Sender
	// Receiver is the sink endpoint.
	Receiver *Receiver
}

// NewFlow wires a sender at src and a receiver at dst for flow id f,
// sending size bytes (0 = long-lived) in the given service class.
// onComplete, if non-nil, fires at the sender when the flow finishes.
// Call Flow.Sender.Start (or schedule it) to begin.
func NewFlow(eng *sim.Engine, src, dst *netsim.Host, f pkt.FlowID, service int,
	size int64, cfg Config, onComplete func(*Sender)) *Flow {
	return &Flow{
		Sender:   NewSender(eng, src, f, dst.NodeID(), service, size, cfg, onComplete),
		Receiver: NewReceiver(eng, dst, f, src.NodeID(), service),
	}
}

// FlowIDGen hands out unique flow IDs.
type FlowIDGen struct {
	next pkt.FlowID
}

// Next returns a fresh flow ID.
func (g *FlowIDGen) Next() pkt.FlowID {
	g.next++
	return g.next
}
