package transport

import (
	"sync"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
)

// Flow bundles a DCTCP sender/receiver pair over a topology.
type Flow struct {
	// Sender is the source endpoint.
	Sender *Sender
	// Receiver is the sink endpoint.
	Receiver *Receiver
}

var flowPool = sync.Pool{New: func() any { return new(Flow) }}

// NewFlow wires a sender at src and a receiver at dst for flow id f,
// sending size bytes (0 = long-lived) in the given service class.
// onComplete, if non-nil, fires at the sender when the flow finishes.
// Call Flow.Sender.Start (or schedule it) to begin. Each endpoint runs
// on its own host's engine, so flows span shard boundaries in sharded
// topologies; eng is only a fallback for hosts without one.
func NewFlow(eng *sim.Engine, src, dst *netsim.Host, f pkt.FlowID, service int,
	size int64, cfg Config, onComplete func(*Sender)) *Flow {
	fl := flowPool.Get().(*Flow)
	fl.Sender = NewSender(eng, src, f, dst.NodeID(), service, size, cfg, onComplete)
	fl.Receiver = NewReceiver(eng, dst, f, src.NodeID(), service)
	return fl
}

// Release detaches both endpoints from their hosts, disarms their
// timers and recycles the records. Call it only once the flow is
// finished (or will never be driven again); after Release the Flow and
// its endpoints must not be used. Cancelled timer events still riding
// the engine queues are reaped without firing, so recycling is safe
// even mid-simulation.
func (fl *Flow) Release() {
	fl.Sender.release()
	fl.Receiver.release()
	fl.Sender, fl.Receiver = nil, nil
	flowPool.Put(fl)
}

// FlowIDGen hands out unique flow IDs.
type FlowIDGen struct {
	next pkt.FlowID
}

// Next returns a fresh flow ID.
func (g *FlowIDGen) Next() pkt.FlowID {
	g.next++
	return g.next
}
