package transport

import (
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// TIMELY-style RTT-gradient rate control (Mittal et al., SIGCOMM 2015 —
// the paper's reference [10], cited as evidence that datacenter RTTs
// can be measured precisely enough for PMSB(e)'s accept threshold).
// TIMELY needs no switch support at all: the sender paces packets and
// adjusts its rate from the RTT and its gradient:
//
//   - rtt < TLow:   additive increase  (R += delta)
//   - rtt > THigh:  multiplicative cut (R *= 1 - beta*(1 - THigh/rtt))
//   - otherwise:    gradient-based — increase while RTTs fall or hold
//     flat, back off proportionally while they rise.
type TimelyConfig struct {
	// StartRate is the initial rate (default 1 Gbps).
	StartRate units.Rate
	// MinRate floors the rate (default 10 Mbps); MaxRate caps it
	// (default 10 Gbps).
	MinRate, MaxRate units.Rate
	// TLow / THigh bound the gradient region (defaults 50us / 500us).
	TLow, THigh time.Duration
	// Delta is the additive increase per decision (default 10 Mbps).
	Delta units.Rate
	// Beta is the multiplicative decrease factor (default 0.8).
	Beta float64
	// EWMA smooths the RTT gradient (default 0.875 history weight).
	EWMA float64
	// PacketSize is the wire size of generated packets (default MTU).
	PacketSize int
	// Obs, when non-nil, receives flow-start and rate-decision events.
	Obs *obs.Bus
}

func (c TimelyConfig) withDefaults() TimelyConfig {
	if c.StartRate <= 0 {
		c.StartRate = 1 * units.Gbps
	}
	if c.MinRate <= 0 {
		c.MinRate = 10 * units.Mbps
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 10 * units.Gbps
	}
	if c.TLow <= 0 {
		c.TLow = 50 * time.Microsecond
	}
	if c.THigh <= 0 {
		c.THigh = 500 * time.Microsecond
	}
	if c.Delta <= 0 {
		c.Delta = 10 * units.Mbps
	}
	if c.Beta <= 0 {
		c.Beta = 0.8
	}
	if c.EWMA <= 0 || c.EWMA >= 1 {
		c.EWMA = 0.875
	}
	if c.PacketSize <= 0 {
		c.PacketSize = units.MTU
	}
	return c
}

// TimelySender is a paced, RTT-gradient-controlled source.
type TimelySender struct {
	eng     *sim.Engine
	host    *netsim.Host
	flow    pkt.FlowID
	dst     pkt.NodeID
	service int
	cfg     TimelyConfig

	rate     float64 // bits/sec
	prevRTT  time.Duration
	gradient float64 // smoothed normalized gradient
	minRTT   time.Duration

	running   bool
	sent      int64
	decisions int64

	nextPktID uint64
	sendTimer sim.Timer

	probe *obs.FlowProbe
}

// NewTimelySender creates a TIMELY source at src targeting dst.
func NewTimelySender(eng *sim.Engine, src *netsim.Host, f pkt.FlowID, dst pkt.NodeID,
	service int, cfg TimelyConfig) *TimelySender {
	s := &TimelySender{
		eng:     eng,
		host:    src,
		flow:    f,
		dst:     dst,
		service: service,
		cfg:     cfg.withDefaults(),
	}
	s.rate = float64(s.cfg.StartRate)
	src.Attach(f, netsim.HandlerFunc(s.handleAck))
	return s
}

// Start begins paced transmission.
func (s *TimelySender) Start() {
	if s.running {
		return
	}
	s.running = true
	s.probe = s.cfg.Obs.OpenFlow(s.eng.Now(), s.flow, s.service, 0)
	s.sendNext()
}

// Stop halts transmission.
func (s *TimelySender) Stop() {
	if !s.running {
		return
	}
	s.running = false
	s.sendTimer.Cancel()
	s.host.Detach(s.flow)
}

// Rate returns the current sending rate.
func (s *TimelySender) Rate() units.Rate { return units.Rate(s.rate) }

// SentBytes returns the bytes transmitted.
func (s *TimelySender) SentBytes() int64 { return s.sent }

// Decisions counts rate updates (one per RTT sample).
func (s *TimelySender) Decisions() int64 { return s.decisions }

// MinRTT returns the lowest RTT observed.
func (s *TimelySender) MinRTT() time.Duration { return s.minRTT }

// timelySend is the pacing trampoline (the sender rides in the event
// arg, so per-packet pacing never allocates).
func timelySend(arg any) { arg.(*TimelySender).sendNext() }

func (s *TimelySender) sendNext() {
	if !s.running {
		return
	}
	s.nextPktID++
	p := pkt.Get()
	p.ID = s.nextPktID
	p.Flow = s.flow
	p.Src = s.host.NodeID()
	p.Dst = s.dst
	p.Size = s.cfg.PacketSize
	p.Payload = s.cfg.PacketSize - units.HeaderSize
	p.Service = s.service
	p.SentAt = s.eng.Now()
	size := p.Size
	s.host.Send(p)
	s.sent += int64(size)
	gap := units.Serialization(size, units.Rate(s.rate))
	s.sendTimer = s.eng.ScheduleCall(gap, timelySend, s)
}

// handleAck applies the TIMELY decision for each RTT sample and
// releases the consumed ACK.
func (s *TimelySender) handleAck(p *pkt.Packet) {
	defer pkt.Release(p)
	if !p.IsAck || !s.running {
		return
	}
	rtt := s.eng.Now() - p.Echo
	if rtt <= 0 {
		return
	}
	if s.minRTT == 0 || rtt < s.minRTT {
		s.minRTT = rtt
	}
	s.decisions++

	if s.prevRTT > 0 && s.minRTT > 0 {
		sample := float64(rtt-s.prevRTT) / float64(s.minRTT)
		s.gradient = s.cfg.EWMA*s.gradient + (1-s.cfg.EWMA)*sample
	}
	s.prevRTT = rtt

	switch {
	case rtt < s.cfg.TLow:
		s.rate += float64(s.cfg.Delta)
	case rtt > s.cfg.THigh:
		cut := 1 - s.cfg.Beta*(1-float64(s.cfg.THigh)/float64(rtt))
		s.rate *= cut
	case s.gradient <= 0:
		s.rate += float64(s.cfg.Delta)
	default:
		s.rate *= 1 - s.cfg.Beta*s.gradient
	}
	if min := float64(s.cfg.MinRate); s.rate < min {
		s.rate = min
	}
	if max := float64(s.cfg.MaxRate); s.rate > max {
		s.rate = max
	}
	s.probe.Rate(s.eng.Now(), s.rate)
}

// TimelyReceiver echoes every data packet's timestamp back so the
// sender can sample RTTs; it performs no reliability.
type TimelyReceiver struct {
	eng       *sim.Engine
	host      *netsim.Host
	flow      pkt.FlowID
	src       pkt.NodeID
	service   int
	rxBytes   int64
	nextPktID uint64
}

// NewTimelyReceiver attaches a receiver for flow f at dst.
func NewTimelyReceiver(eng *sim.Engine, dst *netsim.Host, f pkt.FlowID, src pkt.NodeID, service int) *TimelyReceiver {
	r := &TimelyReceiver{eng: eng, host: dst, flow: f, src: src, service: service}
	dst.Attach(f, netsim.HandlerFunc(r.handleData))
	return r
}

// RxBytes returns the delivered payload bytes.
func (r *TimelyReceiver) RxBytes() int64 { return r.rxBytes }

// Close detaches the receiver.
func (r *TimelyReceiver) Close() { r.host.Detach(r.flow) }

func (r *TimelyReceiver) handleData(p *pkt.Packet) {
	defer pkt.Release(p)
	if p.IsAck {
		return
	}
	r.rxBytes += int64(p.Payload)
	r.nextPktID++
	ack := pkt.Get()
	ack.ID = r.nextPktID
	ack.Flow = r.flow
	ack.Src = r.host.NodeID()
	ack.Dst = r.src
	ack.Size = units.AckSize
	ack.IsAck = true
	ack.Service = r.service
	ack.Echo = p.SentAt
	r.host.Send(ack)
}
