package transport

import (
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// DCQCN-style rate-based congestion control (Zhu et al., SIGCOMM 2015 —
// the paper's reference [18]). Where DCTCP adjusts a window, DCQCN
// paces packets at an explicit rate and reacts to Congestion
// Notification Packets (CNPs) the receiver emits when it sees CE marks:
//
//   - on CNP:        Rt = Rc; Rc = Rc * (1 - alpha/2)
//   - alpha update:  alpha = (1-g)*alpha + g*[CNP seen this period]
//   - recovery:      every period, Rc = (Rt + Rc) / 2 (fast recovery),
//     then additive target increases Rt += AI.
//
// The model omits RoCE's NAK-based reliability (DCQCN assumes a
// near-lossless fabric): it is an open-loop paced source, which is
// exactly what's needed to show PMSB's marking discipline also steers
// rate-based transports.
type DCQCNConfig struct {
	// StartRate is the initial (line) rate.
	StartRate units.Rate
	// MinRate floors the current rate (default 10 Mbps).
	MinRate units.Rate
	// G is the alpha gain (default 1/16).
	G float64
	// AlphaPeriod is the alpha update interval (default 55us).
	AlphaPeriod time.Duration
	// RecoveryPeriod is the rate-increase interval (default 55us, the
	// DCQCN timer).
	RecoveryPeriod time.Duration
	// FastRecoverySteps is the number of hyperbolic recovery steps
	// before additive increase starts (default 5).
	FastRecoverySteps int
	// AI is the additive increase applied to the target rate per
	// period after fast recovery (default 40 Mbps).
	AI units.Rate
	// PacketSize is the wire size of generated packets (default MTU).
	PacketSize int
	// Obs, when non-nil, receives flow-start, CNP rate-cut and alpha
	// events.
	Obs *obs.Bus
}

func (c DCQCNConfig) withDefaults() DCQCNConfig {
	if c.StartRate <= 0 {
		c.StartRate = 10 * units.Gbps
	}
	if c.MinRate <= 0 {
		c.MinRate = 10 * units.Mbps
	}
	if c.G <= 0 {
		c.G = 1.0 / 16.0
	}
	if c.AlphaPeriod <= 0 {
		c.AlphaPeriod = 55 * time.Microsecond
	}
	if c.RecoveryPeriod <= 0 {
		c.RecoveryPeriod = 55 * time.Microsecond
	}
	if c.FastRecoverySteps <= 0 {
		c.FastRecoverySteps = 5
	}
	if c.AI <= 0 {
		c.AI = 40 * units.Mbps
	}
	if c.PacketSize <= 0 {
		c.PacketSize = units.MTU
	}
	return c
}

// DCQCNSender is a paced, rate-controlled source.
type DCQCNSender struct {
	eng     *sim.Engine
	host    *netsim.Host
	flow    pkt.FlowID
	dst     pkt.NodeID
	service int
	cfg     DCQCNConfig

	rc, rt   float64 // current and target rate, bits/sec
	alpha    float64
	cnpSeen  bool // since last alpha update
	steps    int  // recovery steps since last cut
	running  bool
	sent     int64
	cnpCount int64

	nextPktID uint64
	sendTimer sim.Timer
	alphaTick *sim.Ticker
	recoverT  *sim.Ticker

	probe *obs.FlowProbe
}

// NewDCQCNSender creates a DCQCN source at src targeting dst. Call
// Start to begin and Stop to end.
func NewDCQCNSender(eng *sim.Engine, src *netsim.Host, f pkt.FlowID, dst pkt.NodeID,
	service int, cfg DCQCNConfig) *DCQCNSender {
	s := &DCQCNSender{
		eng:     eng,
		host:    src,
		flow:    f,
		dst:     dst,
		service: service,
		cfg:     cfg.withDefaults(),
	}
	s.rc = float64(s.cfg.StartRate)
	s.rt = s.rc
	// DCQCN initializes alpha to 1 (assume congestion until told
	// otherwise).
	s.alpha = 1
	src.Attach(f, netsim.HandlerFunc(s.handleCNP))
	return s
}

// Start begins paced transmission and the DCQCN timers.
func (s *DCQCNSender) Start() {
	if s.running {
		return
	}
	s.running = true
	s.probe = s.cfg.Obs.OpenFlow(s.eng.Now(), s.flow, s.service, 0)
	s.alphaTick = s.eng.Every(s.cfg.AlphaPeriod, s.updateAlpha)
	s.recoverT = s.eng.Every(s.cfg.RecoveryPeriod, s.increase)
	s.sendNext()
}

// Stop halts transmission and timers.
func (s *DCQCNSender) Stop() {
	if !s.running {
		return
	}
	s.running = false
	s.sendTimer.Cancel()
	s.alphaTick.Stop()
	s.recoverT.Stop()
	s.host.Detach(s.flow)
}

// Rate returns the current sending rate.
func (s *DCQCNSender) Rate() units.Rate { return units.Rate(s.rc) }

// Alpha returns the congestion estimate.
func (s *DCQCNSender) Alpha() float64 { return s.alpha }

// SentBytes returns the bytes transmitted so far.
func (s *DCQCNSender) SentBytes() int64 { return s.sent }

// CNPs returns the number of congestion notifications received.
func (s *DCQCNSender) CNPs() int64 { return s.cnpCount }

// dcqcnSend is the pacing trampoline (the sender rides in the event
// arg, so per-packet pacing never allocates).
func dcqcnSend(arg any) { arg.(*DCQCNSender).sendNext() }

func (s *DCQCNSender) sendNext() {
	if !s.running {
		return
	}
	s.nextPktID++
	p := pkt.Get()
	p.ID = s.nextPktID
	p.Flow = s.flow
	p.Src = s.host.NodeID()
	p.Dst = s.dst
	p.Size = s.cfg.PacketSize
	p.Payload = s.cfg.PacketSize - units.HeaderSize
	p.ECT = true
	p.Service = s.service
	p.SentAt = s.eng.Now()
	size := p.Size
	s.host.Send(p)
	s.sent += int64(size)
	gap := units.Serialization(size, units.Rate(s.rc))
	s.sendTimer = s.eng.ScheduleCall(gap, dcqcnSend, s)
}

// handleCNP reacts to a congestion notification: cut the rate using the
// current alpha and restart recovery. The CNP is consumed here and
// returns to the pool.
func (s *DCQCNSender) handleCNP(p *pkt.Packet) {
	defer pkt.Release(p)
	if !p.IsAck || !p.ECE || !s.running {
		return
	}
	s.cnpCount++
	s.cnpSeen = true
	s.rt = s.rc
	s.rc = s.rc * (1 - s.alpha/2)
	if min := float64(s.cfg.MinRate); s.rc < min {
		s.rc = min
	}
	s.steps = 0
	s.probe.Signal(true, true)
	s.probe.Rate(s.eng.Now(), s.rc)
}

func (s *DCQCNSender) updateAlpha() {
	seen := 0.0
	if s.cnpSeen {
		seen = 1
	}
	s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G*seen
	s.cnpSeen = false
	s.probe.Alpha(s.eng.Now(), s.alpha, s.sent)
}

// increase runs the periodic rate recovery: hyperbolic toward the
// target, then additive growth of the target.
func (s *DCQCNSender) increase() {
	s.steps++
	if s.steps > s.cfg.FastRecoverySteps {
		s.rt += float64(s.cfg.AI)
		if max := float64(s.cfg.StartRate); s.rt > max {
			s.rt = max
		}
	}
	s.rc = (s.rt + s.rc) / 2
}

// DCQCNReceiver terminates a DCQCN flow: it counts delivered bytes and
// emits at most one CNP per CNPInterval when it sees CE-marked packets.
type DCQCNReceiver struct {
	eng     *sim.Engine
	host    *netsim.Host
	flow    pkt.FlowID
	src     pkt.NodeID
	service int
	// CNPInterval rate-limits notifications (default 50us, the NIC
	// behaviour DCQCN specifies).
	interval time.Duration

	lastCNP   time.Duration
	sentCNP   bool
	rxBytes   int64
	ceCount   int64
	nextPktID uint64
}

// NewDCQCNReceiver attaches a receiver for flow f at dst.
func NewDCQCNReceiver(eng *sim.Engine, dst *netsim.Host, f pkt.FlowID, src pkt.NodeID,
	service int, cnpInterval time.Duration) *DCQCNReceiver {
	if cnpInterval <= 0 {
		cnpInterval = 50 * time.Microsecond
	}
	r := &DCQCNReceiver{
		eng:      eng,
		host:     dst,
		flow:     f,
		src:      src,
		service:  service,
		interval: cnpInterval,
	}
	dst.Attach(f, netsim.HandlerFunc(r.handleData))
	return r
}

// RxBytes returns the delivered bytes.
func (r *DCQCNReceiver) RxBytes() int64 { return r.rxBytes }

// CEMarked returns the CE-marked packet count.
func (r *DCQCNReceiver) CEMarked() int64 { return r.ceCount }

// Close detaches the receiver.
func (r *DCQCNReceiver) Close() { r.host.Detach(r.flow) }

func (r *DCQCNReceiver) handleData(p *pkt.Packet) {
	defer pkt.Release(p)
	if p.IsAck {
		return
	}
	r.rxBytes += int64(p.Payload)
	if !p.CE {
		return
	}
	r.ceCount++
	now := r.eng.Now()
	if r.sentCNP && now-r.lastCNP < r.interval {
		return
	}
	r.lastCNP = now
	r.sentCNP = true
	r.nextPktID++
	cnp := pkt.Get()
	cnp.ID = r.nextPktID
	cnp.Flow = r.flow
	cnp.Src = r.host.NodeID()
	cnp.Dst = r.src
	cnp.Size = units.AckSize
	cnp.IsAck = true
	cnp.ECE = true
	cnp.Service = r.service
	cnp.Echo = p.SentAt
	r.host.Send(cnp)
}
