package transport

import (
	"testing"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

func TestDCQCNConvergesToBottleneck(t *testing.T) {
	// One DCQCN source starting at 10G over a 1G bottleneck with ECN
	// marking: the rate must converge near 1G without runaway queues.
	k := units.Packets(16)
	n := newBottleneckNet(t, &ecn.PerQueueStandard{K: k}, nil, units.Packets(500), 1*units.Gbps)
	s := NewDCQCNSender(n.eng, n.a, 1, n.b.NodeID(), 0, DCQCNConfig{StartRate: 10 * units.Gbps})
	r := NewDCQCNReceiver(n.eng, n.b, 1, n.a.NodeID(), 0, 0)
	s.Start()
	n.eng.RunUntil(50 * time.Millisecond)
	s.Stop()

	if s.CNPs() == 0 {
		t.Fatal("expected congestion notifications")
	}
	// Delivered throughput over the run should be near the bottleneck.
	rate := units.RateOf(r.RxBytes(), 50*time.Millisecond)
	if rate < 700*units.Mbps || rate > 1100*units.Mbps {
		t.Fatalf("delivered rate %v, want ~1Gbps", rate)
	}
	// The instantaneous rate must have come down from 10G.
	if s.Rate() > 2*units.Gbps {
		t.Fatalf("final rate %v, want near 1Gbps", s.Rate())
	}
}

func TestDCQCNFairShare(t *testing.T) {
	// Two DCQCN sources share a 1G bottleneck roughly equally.
	k := units.Packets(16)
	n := newBottleneckNet(t, &ecn.PerQueueStandard{K: k}, nil, units.Packets(500), 1*units.Gbps)
	c := attachExtraSender(n)

	s1 := NewDCQCNSender(n.eng, n.a, 1, n.b.NodeID(), 0, DCQCNConfig{StartRate: 10 * units.Gbps})
	r1 := NewDCQCNReceiver(n.eng, n.b, 1, n.a.NodeID(), 0, 0)
	s2 := NewDCQCNSender(n.eng, c, 2, n.b.NodeID(), 0, DCQCNConfig{StartRate: 10 * units.Gbps})
	r2 := NewDCQCNReceiver(n.eng, n.b, 2, c.NodeID(), 0, 0)
	s1.Start()
	s2.Start()
	n.eng.RunUntil(80 * time.Millisecond)
	s1.Stop()
	s2.Stop()

	g1, g2 := float64(r1.RxBytes()), float64(r2.RxBytes())
	share := g1 / (g1 + g2)
	if share < 0.3 || share > 0.7 {
		t.Fatalf("flow 1 share = %.3f, want roughly fair", share)
	}
}

func TestDCQCNStopHaltsTraffic(t *testing.T) {
	eng := sim.NewEngine()
	a := netsim.NewHost(eng, 1)
	b := netsim.NewHost(eng, 2)
	sw := netsim.NewSwitch(eng, 100)
	a.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
	b.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
	sw.AddPort(netsim.NewPort(eng, netsim.NewLink(eng, testRate, testDelay, b),
		netsim.PortConfig{Sched: sched.NewFIFO()}))
	sw.SetRoute(func(p *pkt.Packet) int {
		if p.Dst == 2 {
			return 0
		}
		return -1
	})
	s := NewDCQCNSender(eng, a, 1, 2, 0, DCQCNConfig{})
	s.Start()
	s.Start() // idempotent
	eng.RunUntil(time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	sent := s.SentBytes()
	eng.RunUntil(10 * time.Millisecond)
	if s.SentBytes() != sent {
		t.Fatal("sender kept transmitting after Stop")
	}
	// No timers may be left: the event queue must drain.
	if eng.Pending() != 0 {
		t.Fatalf("pending events after Stop = %d, want 0", eng.Pending())
	}
}

func TestDCQCNUnderPMSBFairness(t *testing.T) {
	// The paper's core scenario with a rate-based transport: one DCQCN
	// flow in queue 1 vs four in queue 2 under PMSB keeps the 50% share.
	eng := sim.NewEngine()
	recv := netsim.NewHost(eng, 1)
	sw := netsim.NewSwitch(eng, 100)
	recv.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
	bott := netsim.NewPort(eng, netsim.NewLink(eng, testRate, testDelay, recv),
		netsim.PortConfig{
			Sched:  sched.NewWFQ([]float64{1, 1}),
			Marker: &core.PMSB{PortK: units.Packets(12)},
		})
	sw.AddPort(bott)
	ports := map[pkt.NodeID]int{1: 0}
	hosts := make([]*netsim.Host, 5)
	for i := range hosts {
		h := netsim.NewHost(eng, pkt.NodeID(10+i))
		h.AttachNIC(netsim.NewLink(eng, testRate, testDelay, sw))
		idx := sw.AddPort(netsim.NewPort(eng, netsim.NewLink(eng, testRate, testDelay, h),
			netsim.PortConfig{Sched: sched.NewFIFO()}))
		ports[h.NodeID()] = idx
		hosts[i] = h
	}
	sw.SetRoute(func(p *pkt.Packet) int {
		if idx, ok := ports[p.Dst]; ok {
			return idx
		}
		return -1
	})

	var bytesPerQueue [2]int64
	bott.OnDequeue(func(p *pkt.Packet, q int) { bytesPerQueue[q] += int64(p.Size) })

	var senders []*DCQCNSender
	for i, h := range hosts {
		service := 1
		if i == 0 {
			service = 0
		}
		s := NewDCQCNSender(eng, h, pkt.FlowID(i+1), 1, service, DCQCNConfig{})
		NewDCQCNReceiver(eng, recv, pkt.FlowID(i+1), h.NodeID(), service, 0)
		s.Start()
		senders = append(senders, s)
	}
	eng.RunUntil(60 * time.Millisecond)
	for _, s := range senders {
		s.Stop()
	}

	share := float64(bytesPerQueue[0]) / float64(bytesPerQueue[0]+bytesPerQueue[1])
	if share < 0.4 || share > 0.6 {
		t.Fatalf("queue-1 share under PMSB with DCQCN = %.3f, want ~0.5", share)
	}
}
