package transport

import (
	"testing"
	"time"

	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// rxHarness wires a receiver on a host whose ACKs are captured rather
// than routed, so tests can drive it with hand-crafted data packets.
type rxHarness struct {
	eng  *sim.Engine
	r    *Receiver
	acks []*pkt.Packet
}

func newRxHarness(t *testing.T) *rxHarness {
	t.Helper()
	eng := sim.NewEngine()
	dst := netsim.NewHost(eng, 2)
	h := &rxHarness{eng: eng}
	// Capture outgoing ACKs by attaching the NIC to a recording node.
	rec := &ackRecorder{h: h}
	dst.AttachNIC(netsim.NewLink(eng, 10*units.Gbps, 0, rec))
	h.r = NewReceiver(eng, dst, 1, 9, 0)
	return h
}

type ackRecorder struct{ h *rxHarness }

func (a *ackRecorder) NodeID() pkt.NodeID { return 9 }
func (a *ackRecorder) Receive(p *pkt.Packet) {
	a.h.acks = append(a.h.acks, p)
}

// deliver injects a data segment with the given seq/len.
func (h *rxHarness) deliver(seq int64, payload int, ce bool) {
	h.r.handleData(&pkt.Packet{
		Flow:    1,
		Seq:     seq,
		Payload: payload,
		Size:    payload + units.HeaderSize,
		CE:      ce,
		ECT:     true,
		SentAt:  h.eng.Now(),
	})
	// Drain the immediate ACK transmission but not future timers (the
	// delayed-ACK flush is triggered explicitly by tests).
	h.eng.RunUntil(h.eng.Now() + time.Microsecond)
}

func (h *rxHarness) lastAck(t *testing.T) *pkt.Packet {
	t.Helper()
	if len(h.acks) == 0 {
		t.Fatal("no ACK emitted")
	}
	return h.acks[len(h.acks)-1]
}

func TestReceiverInOrder(t *testing.T) {
	h := newRxHarness(t)
	h.deliver(0, 1000, false)
	if got := h.lastAck(t).AckNo; got != 1000 {
		t.Fatalf("AckNo = %d, want 1000", got)
	}
	h.deliver(1000, 500, false)
	if got := h.lastAck(t).AckNo; got != 1500 {
		t.Fatalf("AckNo = %d, want 1500", got)
	}
	if h.r.Goodput() != 1500 {
		t.Fatalf("Goodput = %d", h.r.Goodput())
	}
}

func TestReceiverOutOfOrderFill(t *testing.T) {
	h := newRxHarness(t)
	// Segments 2 and 3 arrive before 1: dup ACKs of 0, then a jump.
	h.deliver(1000, 1000, false)
	if got := h.lastAck(t).AckNo; got != 0 {
		t.Fatalf("OOO segment acked %d, want 0 (dup ack)", got)
	}
	h.deliver(2000, 1000, false)
	if got := h.lastAck(t).AckNo; got != 0 {
		t.Fatalf("second OOO segment acked %d, want 0", got)
	}
	// The gap fills: cumulative ACK jumps to 3000.
	h.deliver(0, 1000, false)
	if got := h.lastAck(t).AckNo; got != 3000 {
		t.Fatalf("after fill AckNo = %d, want 3000", got)
	}
	if h.r.Goodput() != 3000 {
		t.Fatalf("Goodput = %d, want 3000", h.r.Goodput())
	}
}

func TestReceiverDuplicateData(t *testing.T) {
	h := newRxHarness(t)
	h.deliver(0, 1000, false)
	h.deliver(0, 1000, false) // spurious retransmission
	if got := h.lastAck(t).AckNo; got != 1000 {
		t.Fatalf("dup data acked %d, want 1000", got)
	}
	if h.r.Goodput() != 1000 {
		t.Fatalf("Goodput double-counted: %d", h.r.Goodput())
	}
}

func TestReceiverEchoesCEPerPacket(t *testing.T) {
	h := newRxHarness(t)
	h.deliver(0, 1000, true)
	if !h.lastAck(t).ECE {
		t.Fatal("CE not echoed as ECE")
	}
	h.deliver(1000, 1000, false)
	if h.lastAck(t).ECE {
		t.Fatal("unmarked packet echoed ECE")
	}
	if h.r.CEMarked() != 1 {
		t.Fatalf("CEMarked = %d", h.r.CEMarked())
	}
}

func TestReceiverEchoesTimestamp(t *testing.T) {
	h := newRxHarness(t)
	h.eng.Schedule(5*time.Microsecond, func() {})
	h.eng.Run()
	h.deliver(0, 1000, false)
	ack := h.lastAck(t)
	if ack.Echo != 5*time.Microsecond {
		t.Fatalf("Echo = %v, want 5us", ack.Echo)
	}
	if !ack.IsAck || ack.Size != units.AckSize {
		t.Fatal("ACK framing wrong")
	}
}

func TestReceiverIgnoresAcks(t *testing.T) {
	h := newRxHarness(t)
	h.r.handleData(&pkt.Packet{IsAck: true, AckNo: 99})
	h.eng.Run()
	if len(h.acks) != 0 {
		t.Fatal("receiver must ignore stray ACKs")
	}
	if h.r.RxPackets() != 0 {
		t.Fatal("stray ACK counted as data")
	}
}

func TestReceiverClose(t *testing.T) {
	eng := sim.NewEngine()
	dst := netsim.NewHost(eng, 2)
	r := NewReceiver(eng, dst, 7, 9, 0)
	r.Close()
	dst.Receive(&pkt.Packet{Flow: 7, Payload: 10})
	if dst.UnclaimedPackets() != 1 {
		t.Fatal("Close must detach the flow handler")
	}
}

// delayed-ACK harness.
func newDelayedRxHarness(t *testing.T, m int) *rxHarness {
	t.Helper()
	eng := sim.NewEngine()
	dst := netsim.NewHost(eng, 2)
	h := &rxHarness{eng: eng}
	rec := &ackRecorder{h: h}
	dst.AttachNIC(netsim.NewLink(eng, 10*units.Gbps, 0, rec))
	h.r = NewReceiver(eng, dst, 1, 9, 0, WithDelayedAcks(m))
	return h
}

func TestDelayedAckCoalesces(t *testing.T) {
	h := newDelayedRxHarness(t, 2)
	h.deliver(0, 1000, false)
	if len(h.acks) != 0 {
		t.Fatal("first packet of a pair must be held")
	}
	h.deliver(1000, 1000, false)
	if len(h.acks) != 1 {
		t.Fatalf("acks = %d, want 1 after two packets", len(h.acks))
	}
	if got := h.lastAck(t).AckNo; got != 2000 {
		t.Fatalf("coalesced AckNo = %d, want 2000", got)
	}
}

func TestDelayedAckCEStateChangeFlushes(t *testing.T) {
	h := newDelayedRxHarness(t, 4)
	h.deliver(0, 1000, false) // held (run of CE=false)
	h.deliver(1000, 1000, true)
	// The CE transition must flush an immediate ACK describing the
	// previous (unmarked) run, so the sender's alpha stays accurate.
	if len(h.acks) != 1 {
		t.Fatalf("acks = %d, want 1 on CE transition", len(h.acks))
	}
	if h.lastAck(t).ECE {
		t.Fatal("flushed ACK must describe the unmarked run")
	}
	if h.lastAck(t).AckNo != 1000 {
		t.Fatalf("flushed AckNo = %d, want 1000", h.lastAck(t).AckNo)
	}
	// The marked run continues; after 4 marked packets an ACK with ECE.
	h.deliver(2000, 1000, true)
	h.deliver(3000, 1000, true)
	h.deliver(4000, 1000, true)
	if len(h.acks) != 2 {
		t.Fatalf("acks = %d, want 2", len(h.acks))
	}
	if !h.lastAck(t).ECE {
		t.Fatal("run ACK must carry ECE for the marked run")
	}
}

func TestDelayedAckOOOStillImmediate(t *testing.T) {
	h := newDelayedRxHarness(t, 4)
	h.deliver(2000, 1000, false) // out of order: immediate dup ACK
	if len(h.acks) != 1 || h.lastAck(t).AckNo != 0 {
		t.Fatal("out-of-order data must produce an immediate dup ACK")
	}
}

func TestDelayedAckEndToEnd(t *testing.T) {
	// A full flow with delayed ACKs must still complete with exact
	// goodput and roughly half the ACK traffic.
	eng := sim.NewEngine()
	a := netsim.NewHost(eng, 1)
	b := netsim.NewHost(eng, 2)
	sw := netsim.NewSwitch(eng, 100)
	a.AttachNIC(netsim.NewLink(eng, 10*units.Gbps, time.Microsecond, sw))
	b.AttachNIC(netsim.NewLink(eng, 10*units.Gbps, time.Microsecond, sw))
	toA := netsim.NewPort(eng, netsim.NewLink(eng, 10*units.Gbps, time.Microsecond, a),
		netsim.PortConfig{Sched: sched.NewFIFO()})
	toB := netsim.NewPort(eng, netsim.NewLink(eng, 10*units.Gbps, time.Microsecond, b),
		netsim.PortConfig{Sched: sched.NewFIFO()})
	sw.AddPort(toA)
	sw.AddPort(toB)
	sw.SetRoute(func(p *pkt.Packet) int {
		switch p.Dst {
		case 1:
			return 0
		case 2:
			return 1
		default:
			return -1
		}
	})
	done := false
	snd := NewSender(eng, a, 1, 2, 0, 300_000, Config{MinRTO: 5 * time.Millisecond},
		func(*Sender) { done = true })
	rcv := NewReceiver(eng, b, 1, 1, 0, WithDelayedAcks(2))
	snd.Start()
	eng.RunUntil(time.Second)
	if !done {
		t.Fatal("delayed-ACK flow did not complete")
	}
	if rcv.Goodput() != 300_000 {
		t.Fatalf("goodput = %d", rcv.Goodput())
	}
}

func TestDelayedAckFlushTimer(t *testing.T) {
	h := newDelayedRxHarness(t, 2)
	h.deliver(0, 1000, false) // held
	if len(h.acks) != 0 {
		t.Fatal("ack should be held")
	}
	// The 500us flush timer releases it without more data.
	h.eng.RunUntil(h.eng.Now() + time.Millisecond)
	if len(h.acks) != 1 || h.lastAck(t).AckNo != 1000 {
		t.Fatalf("flush timer did not release the held ACK: %d acks", len(h.acks))
	}
	// No duplicate flush afterwards.
	h.eng.RunUntil(h.eng.Now() + 2*time.Millisecond)
	if len(h.acks) != 1 {
		t.Fatal("spurious extra flush")
	}
}
