package transport

import (
	"testing"
	"time"

	"pmsb/internal/units"
)

func TestTimelyConvergesWithoutECN(t *testing.T) {
	// TIMELY needs no marking at all: a 1G bottleneck with a plain
	// drop-tail buffer. The delay-based control must hold throughput
	// near the bottleneck while keeping RTT (queue) bounded.
	n := newBottleneckNet(t, nil, nil, units.Packets(500), 1*units.Gbps)
	s := NewTimelySender(n.eng, n.a, 1, n.b.NodeID(), 0, TimelyConfig{
		StartRate: 5 * units.Gbps,
		TLow:      30 * time.Microsecond,
		THigh:     200 * time.Microsecond,
	})
	r := NewTimelyReceiver(n.eng, n.b, 1, n.a.NodeID(), 0)
	s.Start()
	n.eng.RunUntil(100 * time.Millisecond)
	s.Stop()

	rate := units.RateOf(r.RxBytes(), 100*time.Millisecond)
	if rate < 600*units.Mbps || rate > 1100*units.Mbps {
		t.Fatalf("TIMELY delivered %v, want near 1Gbps", rate)
	}
	if n.toB.DropPackets() > 20 {
		t.Fatalf("TIMELY should avoid sustained overflow, dropped %d", n.toB.DropPackets())
	}
	if s.Decisions() == 0 {
		t.Fatal("no rate decisions recorded")
	}
}

func TestTimelyBacksOffAboveTHigh(t *testing.T) {
	// Force a high starting rate against a slow link: RTT climbs past
	// THigh and the rate must come down well below the start.
	n := newBottleneckNet(t, nil, nil, units.Packets(2000), 100*units.Mbps)
	s := NewTimelySender(n.eng, n.a, 1, n.b.NodeID(), 0, TimelyConfig{
		StartRate: 10 * units.Gbps,
		THigh:     100 * time.Microsecond,
	})
	NewTimelyReceiver(n.eng, n.b, 1, n.a.NodeID(), 0)
	s.Start()
	n.eng.RunUntil(50 * time.Millisecond)
	s.Stop()
	if s.Rate() > units.Gbps {
		t.Fatalf("rate %v did not back off toward the 100Mbps bottleneck", s.Rate())
	}
}

func TestTimelyTwoFlowsCoexist(t *testing.T) {
	n := newBottleneckNet(t, nil, nil, units.Packets(500), 1*units.Gbps)
	c := attachExtraSender(n)
	s1 := NewTimelySender(n.eng, n.a, 1, n.b.NodeID(), 0, TimelyConfig{})
	r1 := NewTimelyReceiver(n.eng, n.b, 1, n.a.NodeID(), 0)
	s2 := NewTimelySender(n.eng, c, 2, n.b.NodeID(), 0, TimelyConfig{})
	r2 := NewTimelyReceiver(n.eng, n.b, 2, c.NodeID(), 0)
	s1.Start()
	s2.Start()
	n.eng.RunUntil(150 * time.Millisecond)
	s1.Stop()
	s2.Stop()

	g1, g2 := float64(r1.RxBytes()), float64(r2.RxBytes())
	share := g1 / (g1 + g2)
	// TIMELY's fairness is weaker than window-based schemes; accept a
	// broad band but demand real coexistence.
	if share < 0.2 || share > 0.8 {
		t.Fatalf("flow 1 share = %.3f, want coexistence", share)
	}
}

func TestTimelyStopHaltsEverything(t *testing.T) {
	n := newTestNet(t, nil, nil, 0)
	s := NewTimelySender(n.eng, n.a, 1, n.b.NodeID(), 0, TimelyConfig{})
	NewTimelyReceiver(n.eng, n.b, 1, n.a.NodeID(), 0)
	s.Start()
	s.Start()
	n.eng.RunUntil(time.Millisecond)
	s.Stop()
	s.Stop()
	sent := s.SentBytes()
	n.eng.RunUntil(5 * time.Millisecond)
	if s.SentBytes() != sent {
		t.Fatal("sender kept transmitting after Stop")
	}
}
