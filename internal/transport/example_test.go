package transport_test

import (
	"fmt"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// Example runs one DCTCP flow over a PMSB-marked bottleneck and prints
// its completion. This is the minimal end-to-end use of the library.
func Example() {
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{
		Senders: 1,
		Bottleneck: topo.PortProfile{
			Weights:   topo.EqualWeights(1),
			NewSched:  topo.FIFOFactory(),
			NewMarker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
		},
	})

	flow := transport.NewFlow(eng, d.Senders[0], d.Recv, 1, 0, 150_000,
		transport.Config{}, func(s *transport.Sender) {
			fmt.Printf("flow finished: %d bytes acked, 0 retransmits: %v\n",
				s.AckedBytes(), s.Retransmits() == 0)
		})
	flow.Sender.Start()
	eng.RunUntil(100 * time.Millisecond)

	fmt.Printf("receiver goodput: %d bytes\n", flow.Receiver.Goodput())
	// Output:
	// flow finished: 150000 bytes acked, 0 retransmits: true
	// receiver goodput: 150000 bytes
}

// ExampleConfig_filter shows PMSB(e): the sender consults an RTT filter
// before honouring marks, requiring no switch changes beyond plain
// per-port ECN.
func ExampleConfig_filter() {
	cfg := transport.Config{
		Filter: &core.PMSBe{RTTThreshold: 85200 * time.Nanosecond},
	}
	fmt.Println("filter set:", cfg.Filter != nil)
	// Output:
	// filter set: true
}
