package transport

import (
	"math"
	"time"
)

// D2TCP support (Vamanan et al., SIGCOMM 2012 — the paper's reference
// [16]). D2TCP is DCTCP with deadline-aware gamma correction: instead of
// cutting the window by alpha/2, a sender cuts by alpha^d / 2 where the
// urgency exponent d compares the time the flow still needs (Tc) with
// the time its deadline leaves (D):
//
//	d = Tc / D, clamped to [0.5, 2].
//
// Near-deadline flows (d > 1) raise alpha^d toward smaller values and
// back off less; far-deadline flows back off more, donating bandwidth.
// With no deadline configured the sender is exactly DCTCP.

// d2tcpGamma returns the deadline-corrected congestion estimate
// alpha^d used in the window cut.
func d2tcpGamma(alpha, d float64) float64 {
	if alpha <= 0 {
		return 0
	}
	if d <= 0 {
		d = 1
	}
	return math.Pow(alpha, d)
}

// clampUrgency bounds the urgency exponent like the D2TCP paper.
func clampUrgency(d float64) float64 {
	switch {
	case d < 0.5:
		return 0.5
	case d > 2:
		return 2
	default:
		return d
	}
}

// urgency computes the D2TCP exponent for this sender: Tc/D with Tc
// estimated from the remaining bytes at the current rate (cwnd per
// sRTT). Long-lived flows and flows without deadlines report 1 (plain
// DCTCP). A missed or imminent deadline saturates at maximum urgency.
func (s *Sender) urgency() float64 {
	if s.cfg.Deadline <= 0 || s.size == 0 {
		return 1
	}
	left := s.cfg.Deadline - (s.eng.Now() - s.startedAt)
	if left <= 0 {
		return 2
	}
	rtt := s.srtt
	if rtt <= 0 {
		return 1
	}
	remaining := float64(s.size - s.sndUna)
	rate := s.cwnd * float64(s.cfg.MSS) / rtt.Seconds() // bytes/sec
	if rate <= 0 {
		return 2
	}
	tc := remaining / rate
	return clampUrgency(tc / left.Seconds())
}

// DeadlineMet reports whether the flow finished within its deadline
// (true when no deadline was set but the flow finished).
func (s *Sender) DeadlineMet() bool {
	if !s.finished {
		return false
	}
	if s.cfg.Deadline <= 0 {
		return true
	}
	return s.fct <= s.cfg.Deadline
}

// Urgency exposes the current D2TCP exponent (1 for plain DCTCP),
// mostly for tests and tracing.
func (s *Sender) Urgency() float64 { return s.urgency() }

// DeadlineRemaining returns the time left before the deadline (zero
// when no deadline is configured).
func (s *Sender) DeadlineRemaining() time.Duration {
	if s.cfg.Deadline <= 0 {
		return 0
	}
	return s.cfg.Deadline - (s.eng.Now() - s.startedAt)
}
