// Package transport implements the DCTCP transport the paper uses as the
// congestion-control protocol in every experiment (Section VI:
// "We use DCTCP to perform congestion control").
//
// The model is segment-level: the sender emits MSS-sized segments
// gated by a congestion window, the receiver acknowledges every data
// packet and echoes the CE codepoint in the ACK's ECE bit (per-packet
// accurate echo, the idealization DCTCP's estimator assumes), and the
// sender maintains the marked-byte fraction alpha with gain g,
// cutting its window by alpha/2 at most once per RTT.
//
// The sender exposes an ECN-accept hook (Filter) so PMSB(e)'s
// Algorithm 2 can decide, per received signal, whether the flow should
// back off — the "selective blindness at the end host".
package transport

import (
	"time"

	"pmsb/internal/obs"
	"pmsb/internal/units"
)

// Filter decides whether a received congestion signal is honoured.
// core.PMSBe implements it; a nil filter accepts every mark (standard
// DCTCP).
type Filter interface {
	// Accept reports whether the sender should react to the signal.
	// curRTT is the flow's most recent RTT sample; marked is the raw
	// ECE bit of the incoming ACK.
	Accept(curRTT time.Duration, marked bool) bool
}

// Config parametrizes a DCTCP sender.
type Config struct {
	// MSS is the maximum segment payload in bytes (default units.MSS).
	MSS int
	// InitWindow is the initial congestion window in segments
	// (default 10; the paper's large-scale runs use 16).
	InitWindow int
	// MaxWindow caps the congestion window in segments (default 4096).
	MaxWindow int
	// G is DCTCP's alpha gain (default 1/16).
	G float64
	// MinRTO lower-bounds the retransmission timeout (default 2ms).
	MinRTO time.Duration
	// RateLimit paces new data at the given application rate
	// (0 = unlimited). Models the paper's "start a 5 Gbps TCP flow".
	RateLimit units.Rate
	// ECN enables ECT on data packets (default on; set DisableECN to
	// turn it off).
	DisableECN bool
	// Filter is the ECN-accept hook (nil accepts all marks).
	Filter Filter
	// Deadline, when positive, turns the sender into D2TCP: the window
	// cut becomes alpha^d/2 with urgency d = Tc/D (see d2tcp.go). The
	// deadline is relative to Start.
	Deadline time.Duration
	// Obs, when non-nil, is the observability bus the sender reports
	// flow lifecycle, congestion and loss-recovery events to.
	Obs *obs.Bus
}

// withDefaults fills zero fields with defaults.
func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = units.MSS
	}
	if c.InitWindow <= 0 {
		c.InitWindow = 10
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 4096
	}
	if c.G <= 0 {
		c.G = 1.0 / 16.0
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 2 * time.Millisecond
	}
	return c
}
