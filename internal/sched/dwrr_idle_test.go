package sched

import (
	"testing"
	"time"

	"pmsb/internal/units"
)

// drainDWRR dequeues until empty, advancing the fake clock by perPkt
// per packet.
func drainDWRR(t *testing.T, s *DWRR, now *time.Duration, perPkt time.Duration) {
	t.Helper()
	for {
		if _, _, ok := s.Dequeue(); !ok {
			return
		}
		*now += perPkt
	}
}

// Regression for the stale-round guard: the old closeRound condition
// (`d.now()-d.emptiedAt >= 0`, vacuously true in monotonic virtual
// time) never compared the idle gap against tIdle, so the smoothed
// round time was either reset regardless of gap length or — because
// draining the port always closes the round first — never reset at all
// unless the port happened to call ObserveIdle. The scheduler itself
// must enforce the paper's rule: a gap longer than tIdle invalidates
// the estimate, a shorter one does not.
func TestDWRRSubTIdleGapKeepsRoundTime(t *testing.T) {
	var now time.Duration
	const tIdle = 10 * time.Microsecond
	s := NewDWRR([]float64{1, 1}, units.MTU,
		WithClock(func() time.Duration { return now }),
		WithIdleReset(tIdle))
	for i := 0; i < 10; i++ {
		s.Enqueue(0, mkpkt(units.MTU))
		s.Enqueue(1, mkpkt(units.MTU))
	}
	drainDWRR(t, s, &now, 2*time.Microsecond)
	rt := s.RoundTime()
	if rt == 0 {
		t.Fatal("expected nonzero round time after busy period")
	}

	// Idle for less than tIdle, then traffic returns. MQ-ECN consumes
	// RoundTime for its dynamic thresholds, so a brief pause must not
	// throw the estimate away.
	now += tIdle / 2
	s.Enqueue(0, mkpkt(units.MTU))
	if got := s.RoundTime(); got != rt {
		t.Fatalf("sub-tIdle gap changed RoundTime: %v -> %v", rt, got)
	}
	drainDWRR(t, s, &now, 2*time.Microsecond)
	if s.RoundTime() == 0 {
		t.Fatal("round time lost across a sub-tIdle gap")
	}
}

func TestDWRRLongIdleGapResetsRoundTime(t *testing.T) {
	var now time.Duration
	const tIdle = 10 * time.Microsecond
	s := NewDWRR([]float64{1, 1}, units.MTU,
		WithClock(func() time.Duration { return now }),
		WithIdleReset(tIdle))
	for i := 0; i < 10; i++ {
		s.Enqueue(0, mkpkt(units.MTU))
		s.Enqueue(1, mkpkt(units.MTU))
	}
	drainDWRR(t, s, &now, 2*time.Microsecond)
	if s.RoundTime() == 0 {
		t.Fatal("expected nonzero round time after busy period")
	}

	// Idle well past tIdle: the estimate is stale and the enqueue that
	// reopens the port must observe RoundTime 0 — without relying on
	// the port calling ObserveIdle first.
	now += 3 * tIdle
	s.Enqueue(0, mkpkt(units.MTU))
	if got := s.RoundTime(); got != 0 {
		t.Fatalf("RoundTime after %v idle = %v, want 0", 3*tIdle, got)
	}

	// Fresh samples rebuild the estimate from scratch.
	s.Enqueue(1, mkpkt(units.MTU))
	drainDWRR(t, s, &now, 2*time.Microsecond)
	if s.RoundTime() == 0 {
		t.Fatal("round time must rebuild after the reset")
	}
}

// A gap of exactly tIdle is the boundary: the paper resets only when
// the port idles *longer* than tIdle.
func TestDWRRExactTIdleGapKeepsRoundTime(t *testing.T) {
	var now time.Duration
	const tIdle = 10 * time.Microsecond
	s := NewDWRR([]float64{1}, units.MTU,
		WithClock(func() time.Duration { return now }),
		WithIdleReset(tIdle))
	s.Enqueue(0, mkpkt(units.MTU))
	now += 2 * time.Microsecond
	drainDWRR(t, s, &now, 2*time.Microsecond)
	rt := s.RoundTime()

	// The port emptied at the final dequeue, one perPkt step before
	// now; land the reopening enqueue exactly tIdle after that instant.
	now += tIdle - 2*time.Microsecond
	s.Enqueue(0, mkpkt(units.MTU))
	if got := s.RoundTime(); got != rt {
		t.Fatalf("RoundTime after exactly tIdle = %v, want %v", got, rt)
	}
}
