package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

func mkpkt(size int) *pkt.Packet {
	return &pkt.Packet{Size: size, Payload: size - units.HeaderSize}
}

// allSchedulers builds one instance of every scheduler with n queues and
// the given weights (ignored by FIFO).
func allSchedulers(weights []float64) map[string]Scheduler {
	return map[string]Scheduler{
		"FIFO":   NewFIFO(),
		"SP":     NewSP(len(weights)),
		"WRR":    NewWRR(weights),
		"DWRR":   NewDWRR(weights, units.MTU),
		"WFQ":    NewWFQ(weights),
		"SP+WFQ": NewSPWFQ(1, weights),
	}
}

func TestConformance(t *testing.T) {
	weights := []float64{1, 2, 1}
	for name, s := range allSchedulers(weights) {
		t.Run(name, func(t *testing.T) {
			if _, _, ok := s.Dequeue(); ok {
				t.Fatal("Dequeue from empty scheduler reported ok")
			}
			nq := s.NumQueues()
			if nq < 1 {
				t.Fatalf("NumQueues = %d", nq)
			}

			// Enqueue a deterministic mix, verify byte/packet accounting.
			r := rand.New(rand.NewSource(1))
			var wantBytes, wantPkts int
			for i := 0; i < 200; i++ {
				size := 64 + r.Intn(units.MTU-64)
				s.Enqueue(i%nq, mkpkt(size))
				wantBytes += size
				wantPkts++
			}
			if s.TotalBytes() != wantBytes {
				t.Fatalf("TotalBytes = %d, want %d", s.TotalBytes(), wantBytes)
			}
			if s.TotalPackets() != wantPkts {
				t.Fatalf("TotalPackets = %d, want %d", s.TotalPackets(), wantPkts)
			}
			sumQ := 0
			for q := 0; q < nq; q++ {
				sumQ += s.QueueBytes(q)
			}
			if sumQ != wantBytes {
				t.Fatalf("sum QueueBytes = %d, want %d", sumQ, wantBytes)
			}

			// Drain fully: every packet comes back exactly once, from the
			// queue the scheduler claims.
			got := 0
			for {
				p, q, ok := s.Dequeue()
				if !ok {
					break
				}
				if p == nil {
					t.Fatal("ok Dequeue returned nil packet")
				}
				if q < 0 || q >= nq {
					t.Fatalf("Dequeue queue index %d out of range", q)
				}
				got++
				wantBytes -= p.Size
			}
			if got != wantPkts {
				t.Fatalf("drained %d packets, want %d", got, wantPkts)
			}
			if wantBytes != 0 || s.TotalBytes() != 0 || s.TotalPackets() != 0 {
				t.Fatalf("residual accounting: bytes=%d total=%d pkts=%d",
					wantBytes, s.TotalBytes(), s.TotalPackets())
			}
			if s.WeightSum() <= 0 {
				t.Fatal("WeightSum must be positive")
			}
		})
	}
}

// TestWorkConservation: while any queue is backlogged, Dequeue succeeds.
func TestWorkConservation(t *testing.T) {
	weights := []float64{1, 1, 1, 1}
	for name, s := range allSchedulers(weights) {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 500; i++ {
				if r.Intn(3) > 0 || s.TotalPackets() == 0 {
					s.Enqueue(r.Intn(s.NumQueues()), mkpkt(units.MTU))
				} else {
					if _, _, ok := s.Dequeue(); !ok {
						t.Fatalf("Dequeue failed with %d packets buffered", s.TotalPackets())
					}
				}
			}
		})
	}
}

// drainShares keeps all queues backlogged and measures the byte share
// each queue receives over nDeq dequeues.
func drainShares(t *testing.T, s Scheduler, sizes func(q int) int, nDeq int) []float64 {
	t.Helper()
	nq := s.NumQueues()
	refill := func() {
		for q := 0; q < nq; q++ {
			for s.QueuePackets(q) < 4 {
				s.Enqueue(q, mkpkt(sizes(q)))
			}
		}
	}
	bytes := make([]float64, nq)
	total := 0.0
	for i := 0; i < nDeq; i++ {
		refill()
		p, q, ok := s.Dequeue()
		if !ok {
			t.Fatal("Dequeue failed on backlogged scheduler")
		}
		bytes[q] += float64(p.Size)
		total += float64(p.Size)
	}
	for q := range bytes {
		bytes[q] /= total
	}
	return bytes
}

func checkShares(t *testing.T, got []float64, want []float64, tol float64) {
	t.Helper()
	for q := range want {
		if got[q] < want[q]-tol || got[q] > want[q]+tol {
			t.Fatalf("queue %d share = %.3f, want %.3f +/- %.3f (all: %v)", q, got[q], want[q], tol, got)
		}
	}
}

func TestDWRRWeightedShares(t *testing.T) {
	s := NewDWRR([]float64{1, 2, 1}, units.MTU)
	shares := drainShares(t, s, func(int) int { return units.MTU }, 4000)
	checkShares(t, shares, []float64{0.25, 0.5, 0.25}, 0.02)
}

func TestDWRRVariablePacketSizes(t *testing.T) {
	// DWRR must be fair in bytes even when queue 0 sends small packets.
	s := NewDWRR([]float64{1, 1}, units.MTU)
	shares := drainShares(t, s, func(q int) int {
		if q == 0 {
			return 300
		}
		return units.MTU
	}, 8000)
	checkShares(t, shares, []float64{0.5, 0.5}, 0.03)
}

func TestWRRWeightedShares(t *testing.T) {
	// Equal packet sizes: WRR shares packets in weight proportion.
	s := NewWRR([]float64{1, 3})
	shares := drainShares(t, s, func(int) int { return units.MTU }, 4000)
	checkShares(t, shares, []float64{0.25, 0.75}, 0.02)
}

func TestWFQWeightedShares(t *testing.T) {
	s := NewWFQ([]float64{1, 2, 5})
	shares := drainShares(t, s, func(int) int { return units.MTU }, 8000)
	checkShares(t, shares, []float64{1.0 / 8, 2.0 / 8, 5.0 / 8}, 0.02)
}

func TestWFQVariablePacketSizes(t *testing.T) {
	s := NewWFQ([]float64{1, 1})
	shares := drainShares(t, s, func(q int) int {
		if q == 0 {
			return 500
		}
		return units.MTU
	}, 9000)
	checkShares(t, shares, []float64{0.5, 0.5}, 0.03)
}

func TestSPStrictOrder(t *testing.T) {
	s := NewSP(3)
	s.Enqueue(2, mkpkt(100))
	s.Enqueue(1, mkpkt(100))
	s.Enqueue(0, mkpkt(100))
	s.Enqueue(0, mkpkt(100))
	wantOrder := []int{0, 0, 1, 2}
	for i, want := range wantOrder {
		_, q, ok := s.Dequeue()
		if !ok || q != want {
			t.Fatalf("dequeue %d from queue %d, want %d", i, q, want)
		}
	}
}

func TestSPHighPriorityPreempts(t *testing.T) {
	s := NewSP(2)
	s.Enqueue(1, mkpkt(100))
	s.Enqueue(1, mkpkt(100))
	if _, q, _ := s.Dequeue(); q != 1 {
		t.Fatalf("got queue %d, want 1", q)
	}
	// A late high-priority arrival is served before remaining low ones.
	s.Enqueue(0, mkpkt(100))
	if _, q, _ := s.Dequeue(); q != 0 {
		t.Fatalf("got queue %d, want 0", q)
	}
}

func TestSPWFQHierarchy(t *testing.T) {
	// Queue 0 strict; queues 1,2 share by WFQ 1:1.
	s := NewSPWFQ(1, []float64{1, 1, 1})
	shares := drainShares(t, s, func(int) int { return units.MTU }, 3000)
	// Strict queue takes everything when backlogged.
	checkShares(t, shares, []float64{1, 0, 0}, 0.01)

	// Without queue 0 backlog the WFQ group shares equally.
	s2 := NewSPWFQ(1, []float64{1, 1, 1})
	refillLow := func() {
		for q := 1; q <= 2; q++ {
			for s2.QueuePackets(q) < 4 {
				s2.Enqueue(q, mkpkt(units.MTU))
			}
		}
	}
	counts := make([]float64, 3)
	for i := 0; i < 2000; i++ {
		refillLow()
		_, q, ok := s2.Dequeue()
		if !ok {
			t.Fatal("Dequeue failed")
		}
		counts[q]++
	}
	if counts[0] != 0 {
		t.Fatal("strict queue served while empty")
	}
	ratio := counts[1] / (counts[1] + counts[2])
	if ratio < 0.48 || ratio > 0.52 {
		t.Fatalf("WFQ group ratio = %.3f, want ~0.5", ratio)
	}
}

func TestDWRRRoundTime(t *testing.T) {
	var now time.Duration
	s := NewDWRR([]float64{1, 1}, units.MTU,
		WithClock(func() time.Duration { return now }),
		WithRoundEWMA(0)) // no smoothing: RoundTime = last sample
	if s.RoundTime() != 0 {
		t.Fatal("initial RoundTime should be 0")
	}
	// Both queues backlogged; serve rounds with 2us per packet.
	for i := 0; i < 20; i++ {
		s.Enqueue(0, mkpkt(units.MTU))
		s.Enqueue(1, mkpkt(units.MTU))
	}
	for i := 0; i < 30; i++ {
		if _, _, ok := s.Dequeue(); !ok {
			t.Fatal("unexpected empty")
		}
		now += 2 * time.Microsecond
	}
	// A full round serves one quantum (1 MTU) from each of 2 queues at
	// 2us per packet => about 4us per round (rotation bookkeeping can
	// shift sampling by one packet).
	rt := s.RoundTime()
	if rt < 2*time.Microsecond || rt > 8*time.Microsecond {
		t.Fatalf("RoundTime = %v, want ~4us", rt)
	}
	if got := s.QuantumBytes(0); got != units.MTU {
		t.Fatalf("QuantumBytes = %d, want %d", got, units.MTU)
	}
}

func TestDWRRIdleReset(t *testing.T) {
	var now time.Duration
	s := NewDWRR([]float64{1, 1}, units.MTU,
		WithClock(func() time.Duration { return now }),
		WithRoundEWMA(0),
		WithIdleReset(time.Microsecond))
	for i := 0; i < 10; i++ {
		s.Enqueue(0, mkpkt(units.MTU))
		s.Enqueue(1, mkpkt(units.MTU))
	}
	for {
		if _, _, ok := s.Dequeue(); !ok {
			break
		}
		now += 2 * time.Microsecond
	}
	if s.RoundTime() == 0 {
		t.Fatal("expected nonzero round time after busy period")
	}
	// Idle longer than tIdle, then the port reports the gap.
	now += 10 * time.Microsecond
	s.ObserveIdle(now)
	if s.RoundTime() != 0 {
		t.Fatalf("RoundTime after idle = %v, want 0", s.RoundTime())
	}
}

// Property: for any interleaving of enqueues and dequeues, accounting
// never goes negative and dequeue returns packets previously enqueued.
func TestPropertyAccounting(t *testing.T) {
	f := func(seed int64, ops []bool) bool {
		r := rand.New(rand.NewSource(seed))
		for _, s := range allSchedulers([]float64{1, 2}) {
			seen := make(map[*pkt.Packet]bool)
			for _, enq := range ops {
				if enq || s.TotalPackets() == 0 {
					p := mkpkt(64 + r.Intn(1400))
					seen[p] = true
					s.Enqueue(r.Intn(s.NumQueues()), p)
				} else {
					p, _, ok := s.Dequeue()
					if !ok || !seen[p] {
						return false
					}
					delete(seen, p)
				}
				if s.TotalBytes() < 0 || s.TotalPackets() < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: DWRR byte shares stay within one quantum of the weighted
// ideal for continuously backlogged queues.
func TestPropertyDWRRShareBound(t *testing.T) {
	f := func(w1, w2 uint8) bool {
		a, b := float64(w1%8+1), float64(w2%8+1)
		s := NewDWRR([]float64{a, b}, units.MTU)
		refill := func() {
			for q := 0; q < 2; q++ {
				for s.QueuePackets(q) < 3 {
					s.Enqueue(q, mkpkt(units.MTU))
				}
			}
		}
		got := make([]float64, 2)
		total := 0.0
		for i := 0; i < 3000; i++ {
			refill()
			p, q, ok := s.Dequeue()
			if !ok {
				return false
			}
			got[q] += float64(p.Size)
			total += float64(p.Size)
		}
		want0 := a / (a + b)
		return got[0]/total > want0-0.05 && got[0]/total < want0+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWRRRoundTime(t *testing.T) {
	var now time.Duration
	s := NewWRR([]float64{1, 1}, WithWRRClock(func() time.Duration { return now }))
	if s.RoundTime() != 0 {
		t.Fatal("initial RoundTime should be 0")
	}
	for i := 0; i < 20; i++ {
		s.Enqueue(0, mkpkt(units.MTU))
		s.Enqueue(1, mkpkt(units.MTU))
	}
	for i := 0; i < 30; i++ {
		if _, _, ok := s.Dequeue(); !ok {
			t.Fatal("unexpected empty")
		}
		now += 2 * time.Microsecond
	}
	// One credit per queue per round at 2us per packet: rounds ~4us.
	if rt := s.RoundTime(); rt < time.Microsecond || rt > 10*time.Microsecond {
		t.Fatalf("RoundTime = %v, want a few microseconds", rt)
	}
	if s.QuantumBytes(0) != units.MTU {
		t.Fatalf("QuantumBytes = %d", s.QuantumBytes(0))
	}
}

func TestWRRUnequalCredits(t *testing.T) {
	s := NewWRR([]float64{0.5, 1.5})
	// Normalized to the smallest weight: credits 1 and 3.
	if s.QuantumBytes(0) != units.MTU || s.QuantumBytes(1) != 3*units.MTU {
		t.Fatalf("credits = %d/%d bytes", s.QuantumBytes(0), s.QuantumBytes(1))
	}
}

func TestDWRRQuantumBelowPacketSize(t *testing.T) {
	// A quantum smaller than the packet still makes progress (deficit
	// accumulates over rounds).
	s := NewDWRR([]float64{1, 1}, 100)
	s.Enqueue(0, mkpkt(units.MTU))
	s.Enqueue(1, mkpkt(units.MTU))
	got := 0
	for {
		_, _, ok := s.Dequeue()
		if !ok {
			break
		}
		got++
	}
	if got != 2 {
		t.Fatalf("drained %d packets, want 2", got)
	}
}

func TestSPWFQDegenerateBounds(t *testing.T) {
	// high = 0: pure WFQ behaviour.
	s0 := NewSPWFQ(0, []float64{1, 1})
	shares := drainShares(t, s0, func(int) int { return units.MTU }, 2000)
	checkShares(t, shares, []float64{0.5, 0.5}, 0.02)
	// high > len(weights) clamps: pure SP behaviour.
	sAll := NewSPWFQ(5, []float64{1, 1})
	sAll.Enqueue(1, mkpkt(100))
	sAll.Enqueue(0, mkpkt(100))
	if _, q, _ := sAll.Dequeue(); q != 0 {
		t.Fatal("clamped SP+WFQ should serve queue 0 first")
	}
	// Negative high clamps to 0.
	if s := NewSPWFQ(-1, []float64{1}); s == nil {
		t.Fatal("negative high must be tolerated")
	}
}

func TestFIFOIgnoresQueueIndex(t *testing.T) {
	f := NewFIFO()
	f.Enqueue(99, mkpkt(100)) // any index lands in queue 0
	if f.QueuePackets(0) != 1 {
		t.Fatal("FIFO must map all traffic to queue 0")
	}
}
