package sched

import (
	"math"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// WRR is a packet-based Weighted Round Robin scheduler: in each round a
// backlogged queue may send up to weight_i packets. It approximates
// weighted fair sharing when packets have similar sizes (DWRR fixes the
// variable-size bias; both are evaluated by the paper as "round-based"
// schedulers). Like DWRR it can track round times for MQ-ECN when given
// a clock.
type WRR struct {
	base
	credits []int // packets allowed per visit
	left    []int // remaining packets in the current visit
	active  []int
	inRing  []bool

	now        func() time.Duration
	beta       float64
	roundTime  time.Duration
	roundStart time.Duration
	roundHead  int
}

var (
	_ Scheduler = (*WRR)(nil)
	_ RoundInfo = (*WRR)(nil)
)

// WRROption customizes a WRR scheduler.
type WRROption func(*WRR)

// WithWRRClock supplies the virtual clock for round-time sampling.
func WithWRRClock(now func() time.Duration) WRROption {
	return func(w *WRR) { w.now = now }
}

// NewWRR returns a WRR scheduler. Weights are normalized so the smallest
// positive weight sends one packet per round.
func NewWRR(weights []float64, opts ...WRROption) *WRR {
	w := &WRR{
		base:      newBase(weights),
		credits:   make([]int, len(weights)),
		left:      make([]int, len(weights)),
		inRing:    make([]bool, len(weights)),
		beta:      0.75,
		roundHead: -1,
	}
	min := math.Inf(1)
	for _, v := range weights {
		if v > 0 && v < min {
			min = v
		}
	}
	if math.IsInf(min, 1) {
		min = 1
	}
	for i, v := range weights {
		c := int(math.Round(v / min))
		if c < 1 {
			c = 1
		}
		w.credits[i] = c
	}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// RoundTime implements RoundInfo.
func (w *WRR) RoundTime() time.Duration { return w.roundTime }

// QuantumBytes implements RoundInfo: WRR's per-round quantum is its
// packet credit in MTU-sized packets.
func (w *WRR) QuantumBytes(q int) int { return w.credits[q] * units.MTU }

// Name implements Scheduler.
func (w *WRR) Name() string { return "WRR" }

// Enqueue implements Scheduler.
func (w *WRR) Enqueue(q int, p *pkt.Packet) {
	w.checkQueue(q)
	w.push(q, p)
	if !w.inRing[q] {
		w.inRing[q] = true
		w.left[q] = w.credits[q]
		w.active = append(w.active, q)
		if w.roundHead == -1 {
			w.openRound(q)
		}
	}
}

// Dequeue implements Scheduler.
func (w *WRR) Dequeue() (*pkt.Packet, int, bool) {
	for len(w.active) > 0 {
		q := w.active[0]
		if w.queues[q].n == 0 {
			w.removeHead(q)
			continue
		}
		if w.left[q] == 0 {
			w.left[q] = w.credits[q]
			w.rotateHead()
			continue
		}
		p := w.pop(q)
		w.left[q]--
		if w.queues[q].n == 0 {
			w.removeHead(q)
		}
		return p, q, true
	}
	return nil, 0, false
}

func (w *WRR) rotateHead() {
	q := w.active[0]
	copy(w.active, w.active[1:])
	w.active[len(w.active)-1] = q
	if q == w.roundHead {
		w.closeRound()
	}
}

func (w *WRR) removeHead(q int) {
	w.active = w.active[1:]
	w.inRing[q] = false
	w.left[q] = 0
	if q == w.roundHead {
		w.closeRound()
	}
}

func (w *WRR) openRound(q int) {
	w.roundHead = q
	if w.now != nil {
		w.roundStart = w.now()
	}
}

func (w *WRR) closeRound() {
	if w.now != nil {
		sample := w.now() - w.roundStart
		w.roundTime = time.Duration(w.beta*float64(w.roundTime) + (1-w.beta)*float64(sample))
	}
	if len(w.active) == 0 {
		w.roundHead = -1
		return
	}
	w.openRound(w.active[0])
}
