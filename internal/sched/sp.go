package sched

import "pmsb/internal/pkt"

// SP is the Strict Priority scheduler: queue 0 has the highest priority
// and is always served first; queue i is served only when queues
// 0..i-1 are empty.
type SP struct {
	base
}

var _ Scheduler = (*SP)(nil)

// NewSP returns a strict-priority scheduler with n queues. Weights are
// reported as equal (1 each) so weight-proportional ECN thresholds
// remain defined; SP itself ignores weights.
func NewSP(n int) *SP {
	return &SP{base: newBase(equalWeights(n))}
}

// Name implements Scheduler.
func (s *SP) Name() string { return "SP" }

// Enqueue implements Scheduler.
func (s *SP) Enqueue(q int, p *pkt.Packet) {
	s.checkQueue(q)
	s.push(q, p)
}

// Dequeue implements Scheduler.
func (s *SP) Dequeue() (*pkt.Packet, int, bool) {
	for q := range s.queues {
		if s.queues[q].n > 0 {
			return s.pop(q), q, true
		}
	}
	return nil, 0, false
}
