package sched

import "pmsb/internal/pkt"

// FIFO is a single first-in-first-out queue. It is the discipline of
// host NICs and of single-queue baseline experiments.
//
// Unlike the multi-queue schedulers it carries no base block: a FIFO
// is exactly one 24-byte ring, its weights are the constant 1, and its
// zero value is ready to use — which is what lets FIFOBlock hand out
// thousands of them from one slab.
type FIFO struct {
	q fifo
}

var _ Scheduler = (*FIFO)(nil)

// NewFIFO returns a FIFO scheduler with a single queue.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Scheduler.
func (f *FIFO) Name() string { return "FIFO" }

// NumQueues implements Scheduler.
func (f *FIFO) NumQueues() int { return 1 }

// Enqueue implements Scheduler. All packets share queue 0 regardless of q.
func (f *FIFO) Enqueue(q int, p *pkt.Packet) { f.q.push(p) }

// Dequeue implements Scheduler.
func (f *FIFO) Dequeue() (*pkt.Packet, int, bool) {
	p := f.q.pop()
	if p == nil {
		return nil, 0, false
	}
	return p, 0, true
}

// QueueBytes implements Scheduler.
func (f *FIFO) QueueBytes(q int) int { return int(f.q.bytes) }

// QueuePackets implements Scheduler.
func (f *FIFO) QueuePackets(q int) int { return int(f.q.n) }

// TotalBytes implements Scheduler.
func (f *FIFO) TotalBytes() int { return int(f.q.bytes) }

// TotalPackets implements Scheduler.
func (f *FIFO) TotalPackets() int { return int(f.q.n) }

// Weight implements Scheduler.
func (f *FIFO) Weight(q int) float64 { return 1 }

// WeightSum implements Scheduler.
func (f *FIFO) WeightSum() float64 { return 1 }

// FIFOBlock dispenses FIFO schedulers carved from one slab, for
// fabric builders that create tens of thousands of single-queue ports.
// Requests beyond the reserved capacity fall back to individual
// allocations, so an under-estimated size is a performance detail, not
// an error; pointers already handed out stay valid either way.
type FIFOBlock struct {
	slab []FIFO
}

// NewFIFOBlock reserves a slab of n FIFOs.
func NewFIFOBlock(n int) *FIFOBlock {
	return &FIFOBlock{slab: make([]FIFO, 0, n)}
}

// Next carves the next FIFO.
func (b *FIFOBlock) Next() *FIFO {
	if len(b.slab) == cap(b.slab) {
		return NewFIFO()
	}
	b.slab = b.slab[:len(b.slab)+1]
	return &b.slab[len(b.slab)-1]
}
