package sched

import "pmsb/internal/pkt"

// FIFO is a single first-in-first-out queue. It is the discipline of
// host NICs and of single-queue baseline experiments.
type FIFO struct {
	base
}

var _ Scheduler = (*FIFO)(nil)

// NewFIFO returns a FIFO scheduler with a single queue.
func NewFIFO() *FIFO {
	return &FIFO{base: newBase(equalWeights(1))}
}

// Name implements Scheduler.
func (f *FIFO) Name() string { return "FIFO" }

// Enqueue implements Scheduler. All packets share queue 0 regardless of q.
func (f *FIFO) Enqueue(q int, p *pkt.Packet) {
	f.push(0, p)
}

// Dequeue implements Scheduler.
func (f *FIFO) Dequeue() (*pkt.Packet, int, bool) {
	p := f.pop(0)
	if p == nil {
		return nil, 0, false
	}
	return p, 0, true
}
