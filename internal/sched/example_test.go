package sched_test

import (
	"fmt"

	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/units"
)

// ExampleNewDWRR shows byte-accurate weighted sharing: with weights 1:2
// and all queues backlogged, queue 1 receives two thirds of the service.
func ExampleNewDWRR() {
	s := sched.NewDWRR([]float64{1, 2}, units.MTU)
	for i := 0; i < 30; i++ {
		s.Enqueue(0, &pkt.Packet{Size: units.MTU})
		s.Enqueue(1, &pkt.Packet{Size: units.MTU})
	}
	served := [2]int{}
	for i := 0; i < 30; i++ {
		_, q, _ := s.Dequeue()
		served[q]++
	}
	fmt.Printf("queue0: %d packets, queue1: %d packets\n", served[0], served[1])
	// Output:
	// queue0: 10 packets, queue1: 20 packets
}

// ExampleNewSP shows strict priority: queue 0 drains completely before
// queue 1 is touched.
func ExampleNewSP() {
	s := sched.NewSP(2)
	s.Enqueue(1, &pkt.Packet{Size: 100, ID: 10})
	s.Enqueue(0, &pkt.Packet{Size: 100, ID: 1})
	s.Enqueue(0, &pkt.Packet{Size: 100, ID: 2})
	for {
		p, q, ok := s.Dequeue()
		if !ok {
			break
		}
		fmt.Printf("queue %d -> packet %d\n", q, p.ID)
	}
	// Output:
	// queue 0 -> packet 1
	// queue 0 -> packet 2
	// queue 1 -> packet 10
}
