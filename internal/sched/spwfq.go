package sched

import (
	"math"

	"pmsb/internal/pkt"
)

// SPWFQ is the hierarchical scheduler of the paper's Section VI-A.3:
// the first High queues are strict-priority (queue 0 highest) and the
// remaining queues share the leftover bandwidth by WFQ with the given
// weights. A backlogged strict queue always preempts the WFQ group.
type SPWFQ struct {
	base
	high  int
	tags  []tagFifo
	last  []float64
	vtime float64
}

var _ Scheduler = (*SPWFQ)(nil)

// NewSPWFQ returns an SP+WFQ scheduler. high is the number of leading
// strict-priority queues; weights gives all queue weights (the first
// high entries matter only for ECN threshold proportionality, not for
// scheduling order).
func NewSPWFQ(high int, weights []float64) *SPWFQ {
	if high < 0 {
		high = 0
	}
	if high > len(weights) {
		high = len(weights)
	}
	return &SPWFQ{
		base: newBase(weights),
		high: high,
		tags: make([]tagFifo, len(weights)),
		last: make([]float64, len(weights)),
	}
}

// Name implements Scheduler.
func (s *SPWFQ) Name() string { return "SP+WFQ" }

// Enqueue implements Scheduler.
func (s *SPWFQ) Enqueue(q int, p *pkt.Packet) {
	s.checkQueue(q)
	if q >= s.high {
		weight := s.weights[q]
		if weight <= 0 {
			weight = 1e-9
		}
		start := math.Max(s.vtime, s.last[q])
		s.last[q] = start + float64(p.Size)/weight
		s.tags[q].push(s.last[q])
	}
	s.push(q, p)
}

// Dequeue implements Scheduler.
func (s *SPWFQ) Dequeue() (*pkt.Packet, int, bool) {
	for q := 0; q < s.high; q++ {
		if s.queues[q].n > 0 {
			return s.pop(q), q, true
		}
	}
	best := -1
	bestTag := math.Inf(1)
	for q := s.high; q < len(s.queues); q++ {
		if s.queues[q].n == 0 {
			continue
		}
		if tag := s.tags[q].peek(); tag < bestTag {
			bestTag = tag
			best = q
		}
	}
	if best < 0 {
		return nil, 0, false
	}
	p := s.pop(best)
	s.tags[best].pop()
	s.vtime = math.Max(s.vtime, bestTag)
	if s.lowEmpty() {
		s.vtime = 0
		for q := s.high; q < len(s.last); q++ {
			s.last[q] = 0
		}
	}
	return p, best, true
}

func (s *SPWFQ) lowEmpty() bool {
	for q := s.high; q < len(s.queues); q++ {
		if s.queues[q].n > 0 {
			return false
		}
	}
	return true
}
