package sched

import (
	"math"

	"pmsb/internal/pkt"
)

// WFQ is a Weighted Fair Queueing scheduler using per-packet virtual
// finish tags. Each arriving packet receives a finish tag
//
//	F = max(V, F_last(q)) + size/weight(q)
//
// where V is the system virtual time; dequeue serves the backlogged
// queue whose head packet has the smallest finish tag. This is the
// classic packetized approximation of Generalized Processor Sharing and
// is exactly the non-round-based scheduler MQ-ECN cannot support but
// PMSB can (paper Section II-C / VI-B.2).
type WFQ struct {
	base
	tags  []tagFifo // parallel finish-tag queues
	last  []float64 // last assigned finish tag per queue
	vtime float64
}

var _ Scheduler = (*WFQ)(nil)

// NewWFQ returns a WFQ scheduler with the given queue weights.
func NewWFQ(weights []float64) *WFQ {
	return &WFQ{
		base: newBase(weights),
		tags: make([]tagFifo, len(weights)),
		last: make([]float64, len(weights)),
	}
}

// Name implements Scheduler.
func (w *WFQ) Name() string { return "WFQ" }

// Enqueue implements Scheduler.
func (w *WFQ) Enqueue(q int, p *pkt.Packet) {
	w.checkQueue(q)
	weight := w.weights[q]
	if weight <= 0 {
		weight = 1e-9
	}
	start := math.Max(w.vtime, w.last[q])
	finish := start + float64(p.Size)/weight
	w.last[q] = finish
	w.push(q, p)
	w.tags[q].push(finish)
}

// Dequeue implements Scheduler.
func (w *WFQ) Dequeue() (*pkt.Packet, int, bool) {
	best := -1
	bestTag := math.Inf(1)
	for q := range w.queues {
		if w.queues[q].n == 0 {
			continue
		}
		if tag := w.tags[q].peek(); tag < bestTag {
			bestTag = tag
			best = q
		}
	}
	if best < 0 {
		return nil, 0, false
	}
	p := w.pop(best)
	w.tags[best].pop()
	w.vtime = math.Max(w.vtime, bestTag)
	if w.totalPkts == 0 {
		// Reset virtual time when the system drains so tags cannot grow
		// without bound across idle periods.
		w.vtime = 0
		for q := range w.last {
			w.last[q] = 0
		}
	}
	return p, best, true
}

// tagFifo is a ring buffer of float64 finish tags mirroring a packet fifo.
type tagFifo struct {
	buf  []float64
	head int
	n    int
}

func (f *tagFifo) push(v float64) {
	if f.n == len(f.buf) {
		capacity := len(f.buf) * 2
		if capacity == 0 {
			capacity = 16
		}
		next := make([]float64, capacity)
		for i := 0; i < f.n; i++ {
			next[i] = f.buf[(f.head+i)%len(f.buf)]
		}
		f.buf = next
		f.head = 0
	}
	f.buf[(f.head+f.n)%len(f.buf)] = v
	f.n++
}

func (f *tagFifo) pop() float64 {
	v := f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return v
}

func (f *tagFifo) peek() float64 { return f.buf[f.head] }
