package sched

import (
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// DWRR is the Deficit Weighted Round Robin scheduler. Each queue i has a
// quantum proportional to its weight; a visit to a queue adds the quantum
// to the queue's deficit counter and the queue may transmit packets while
// the deficit covers them. DWRR is the round-based scheduler MQ-ECN was
// designed for, so it additionally tracks the smoothed round time
// (RoundInfo) that MQ-ECN's dynamic thresholds consume.
type DWRR struct {
	base
	quantum []int // bytes per visit, per queue
	active  []int // round-robin ring of backlogged queue indices
	deficit []int
	inRing  []bool

	// now provides virtual time for round-time sampling; nil disables
	// round timing (RoundTime reports 0).
	now func() time.Duration
	// beta is the EWMA history weight for the smoothed round time.
	beta float64
	// tIdle resets the round time after the port idles this long.
	tIdle time.Duration

	roundTime  time.Duration // smoothed
	roundStart time.Duration
	roundHead  int // queue id that opens the current round, -1 if idle
	emptiedAt  time.Duration
	everBusy   bool
}

var (
	_ Scheduler = (*DWRR)(nil)
	_ RoundInfo = (*DWRR)(nil)
)

// DWRROption customizes a DWRR scheduler.
type DWRROption func(*DWRR)

// WithClock supplies the virtual clock used to sample round times. MQ-ECN
// needs it; plain DWRR scheduling does not.
func WithClock(now func() time.Duration) DWRROption {
	return func(d *DWRR) { d.now = now }
}

// WithRoundEWMA sets the smoothing weight beta (history fraction) for the
// round-time estimate. The paper uses beta = 0.75.
func WithRoundEWMA(beta float64) DWRROption {
	return func(d *DWRR) { d.beta = beta }
}

// WithIdleReset sets the idle interval after which the smoothed round
// time resets to zero. The paper sets it to one MTU transmission time.
func WithIdleReset(tIdle time.Duration) DWRROption {
	return func(d *DWRR) { d.tIdle = tIdle }
}

// NewDWRR returns a DWRR scheduler. weights determine each queue's share;
// quantumBase is the quantum in bytes given to a queue of weight 1 per
// round (it should be at least one MTU so every visit can transmit).
func NewDWRR(weights []float64, quantumBase int, opts ...DWRROption) *DWRR {
	if quantumBase < 1 {
		quantumBase = units.MTU
	}
	d := &DWRR{
		base:      newBase(weights),
		quantum:   make([]int, len(weights)),
		deficit:   make([]int, len(weights)),
		inRing:    make([]bool, len(weights)),
		beta:      0.75,
		tIdle:     units.Serialization(units.MTU, 10*units.Gbps),
		roundHead: -1,
	}
	for i, w := range weights {
		q := int(w * float64(quantumBase))
		if q < 1 {
			q = 1
		}
		d.quantum[i] = q
	}
	for _, opt := range opts {
		opt(d)
	}
	return d
}

// Name implements Scheduler.
func (d *DWRR) Name() string { return "DWRR" }

// Enqueue implements Scheduler.
func (d *DWRR) Enqueue(q int, p *pkt.Packet) {
	d.checkQueue(q)
	d.push(q, p)
	if !d.inRing[q] {
		d.inRing[q] = true
		d.deficit[q] = 0
		d.active = append(d.active, q)
		if d.roundHead == -1 {
			d.openRound(q)
		}
	}
}

// Dequeue implements Scheduler.
func (d *DWRR) Dequeue() (*pkt.Packet, int, bool) {
	for len(d.active) > 0 {
		q := d.active[0]
		head := d.queues[q].peek()
		if head == nil {
			// Defensive: queues never stay in the ring empty.
			d.dropFromRing(q)
			continue
		}
		if d.deficit[q] < head.Size {
			d.deficit[q] += d.quantum[q]
			d.rotate()
			continue
		}
		p := d.pop(q)
		d.deficit[q] -= p.Size
		if d.queues[q].n == 0 {
			d.dropFromRing(q)
		}
		if d.totalPkts == 0 {
			d.markIdle()
		}
		return p, q, true
	}
	return nil, 0, false
}

// RoundTime implements RoundInfo: the EWMA-smoothed duration of one full
// scheduling round. Zero means the port has been idle (MQ-ECN then falls
// back to the full standard threshold).
func (d *DWRR) RoundTime() time.Duration { return d.roundTime }

// QuantumBytes implements RoundInfo.
func (d *DWRR) QuantumBytes(q int) int { return d.quantum[q] }

func (d *DWRR) rotate() {
	q := d.active[0]
	copy(d.active, d.active[1:])
	d.active[len(d.active)-1] = q
	if q == d.roundHead {
		d.closeRound()
	}
}

func (d *DWRR) dropFromRing(q int) {
	for i, v := range d.active {
		if v == q {
			d.active = append(d.active[:i], d.active[i+1:]...)
			break
		}
	}
	d.inRing[q] = false
	d.deficit[q] = 0
	if q == d.roundHead {
		d.closeRound()
	}
}

// openRound starts timing a new round led by queue q. A round that
// opens after the port sat idle for more than tIdle first discards the
// smoothed round time: the estimate describes a load that is gone, and
// MQ-ECN's dynamic thresholds must fall back to the standard threshold
// until fresh samples arrive. Shorter gaps keep the estimate — the port
// was only briefly quiet and the EWMA history is still representative.
func (d *DWRR) openRound(q int) {
	if d.now != nil {
		t := d.now()
		if d.roundHead == -1 && d.everBusy && t-d.emptiedAt > d.tIdle {
			d.roundTime = 0
		}
		d.roundStart = t
	}
	d.roundHead = q
}

// closeRound samples the elapsed round time into the EWMA and elects
// the next round head from the front of the ring. Rounds never span an
// idle period — draining the port closes the current round and the next
// enqueue opens a fresh one — so every sample here reflects busy time;
// staleness across idle gaps is handled by openRound (and, earlier, by
// ObserveIdle when the port reports the gap at enqueue).
func (d *DWRR) closeRound() {
	if d.now != nil {
		sample := d.now() - d.roundStart
		d.roundTime = time.Duration(d.beta*float64(d.roundTime) + (1-d.beta)*float64(sample))
	}
	if len(d.active) == 0 {
		d.roundHead = -1
		return
	}
	d.openRound(d.active[0])
}

func (d *DWRR) markIdle() {
	d.everBusy = true
	if d.now != nil {
		d.emptiedAt = d.now()
		// The reset itself is lazy: openRound (on the next enqueue) or
		// ObserveIdle (if the port reports the gap first) compares the
		// gap against tIdle and zeroes the estimate when it is stale.
	}
}

// ObserveIdle lets the port report the current time on enqueue so the
// scheduler can reset its round estimate after a long idle gap. It is
// optional: ports call it when the scheduler was empty.
func (d *DWRR) ObserveIdle(now time.Duration) {
	if d.everBusy && now-d.emptiedAt > d.tIdle {
		d.roundTime = 0
	}
}

// DWRRBlock dispenses DWRR schedulers for a fabric of identical ports
// from a handful of slabs. Per-port construction of a DWRR costs eight
// allocations (struct, weight copy, queues, quantum, deficit, ring
// bookkeeping); a block amortizes that to one slab per field across
// every port, shares the read-only tables (weights, quanta) outright,
// and cuts each port's mutable state (queues, deficits, active ring)
// from contiguous arrays with three-index caps so an out-of-contract
// append could never spill into a neighbour's region. Requests beyond
// the reserved count fall back to NewDWRR.
type DWRRBlock struct {
	slab    []DWRR
	weights []float64
	sum     float64
	quantum []int
	queues  []fifo
	deficit []int
	active  []int
	inRing  []bool

	quantumBase int
	opts        []DWRROption
}

// NewDWRRBlock reserves slabs for n DWRR schedulers with the given
// per-queue weights; quantumBase and opts are as in NewDWRR and apply
// to every dispensed scheduler.
func NewDWRRBlock(n int, weights []float64, quantumBase int, opts ...DWRROption) *DWRRBlock {
	if quantumBase < 1 {
		quantumBase = units.MTU
	}
	nq := len(weights)
	b := &DWRRBlock{
		slab:        make([]DWRR, 0, n),
		weights:     append([]float64(nil), weights...),
		quantum:     make([]int, nq),
		queues:      make([]fifo, n*nq),
		deficit:     make([]int, n*nq),
		active:      make([]int, n*nq),
		inRing:      make([]bool, n*nq),
		quantumBase: quantumBase,
		opts:        opts,
	}
	for _, w := range b.weights {
		b.sum += w
	}
	for i, w := range b.weights {
		q := int(w * float64(quantumBase))
		if q < 1 {
			q = 1
		}
		b.quantum[i] = q
	}
	return b
}

// Next carves the next DWRR scheduler.
func (b *DWRRBlock) Next() *DWRR {
	if len(b.slab) == cap(b.slab) {
		return NewDWRR(b.weights, b.quantumBase, b.opts...)
	}
	b.slab = b.slab[:len(b.slab)+1]
	d := &b.slab[len(b.slab)-1]
	nq := len(b.weights)
	off := (len(b.slab) - 1) * nq
	end := off + nq
	d.base = base{
		queues:    b.queues[off:end:end],
		weights:   b.weights,
		weightSum: b.sum,
	}
	d.quantum = b.quantum
	d.deficit = b.deficit[off:end:end]
	d.inRing = b.inRing[off:end:end]
	d.active = b.active[off:off:end]
	d.beta = 0.75
	d.tIdle = units.Serialization(units.MTU, 10*units.Gbps)
	d.roundHead = -1
	for _, opt := range b.opts {
		opt(d)
	}
	return d
}
