// Package sched implements the multi-queue packet schedulers evaluated in
// the PMSB paper: FIFO, Weighted Round Robin (WRR), Deficit Weighted
// Round Robin (DWRR), Weighted Fair Queueing (WFQ), Strict Priority (SP),
// and the hierarchical SP+WFQ combination.
//
// A Scheduler owns a set of per-port queues. The switch port enqueues
// classified packets and asks the scheduler which packet to transmit
// next. All buffer accounting is in bytes (and packets) so that ECN
// markers can read queue and port occupancy through the same interface.
package sched

import (
	"fmt"
	"time"
	"unsafe"

	"pmsb/internal/pkt"
)

// Scheduler is a multi-queue packet scheduler.
//
// Implementations are not safe for concurrent use; the simulator is
// single-threaded by design.
type Scheduler interface {
	// Name identifies the scheduling discipline (e.g. "DWRR").
	Name() string
	// NumQueues returns the number of queues.
	NumQueues() int
	// Enqueue appends p to queue q. q must be in [0, NumQueues).
	Enqueue(q int, p *pkt.Packet)
	// Dequeue removes and returns the next packet to transmit together
	// with the queue it came from. ok is false when all queues are empty.
	Dequeue() (p *pkt.Packet, q int, ok bool)
	// QueueBytes returns the buffered bytes of queue q.
	QueueBytes(q int) int
	// QueuePackets returns the buffered packet count of queue q.
	QueuePackets(q int) int
	// TotalBytes returns the buffered bytes across all queues.
	TotalBytes() int
	// TotalPackets returns the buffered packets across all queues.
	TotalPackets() int
	// Weight returns the scheduling weight of queue q. Schedulers
	// without an inherent weight notion (FIFO, SP) report equal weights
	// so weight-proportional ECN thresholds remain well defined.
	Weight(q int) float64
	// WeightSum returns the sum of all queue weights.
	WeightSum() float64
}

// RoundInfo is implemented by round-based schedulers (DWRR, WRR) and
// exposes the state MQ-ECN needs: the smoothed round time and each
// queue's per-round quantum in bytes.
type RoundInfo interface {
	// RoundTime returns the smoothed time of one scheduling round
	// (zero when the port has been idle).
	RoundTime() time.Duration
	// QuantumBytes returns queue q's quantum in bytes per round.
	QuantumBytes(q int) int
}

// fifo is a growable ring buffer of packets with O(1) push and pop.
//
// It is packed into 24 bytes — a raw base pointer plus three 32-bit
// fields instead of a 24-byte slice header plus three ints — because
// fabric-scale topologies hold one fifo per queue per port (~49k at
// fat-tree k=32) and the queue bookkeeping is the second-largest block
// of resident build state after the ports themselves. unsafe.Slice
// reconstitutes the backing array on access; the ring stays nil (no
// backing allocation) until the first push. The 32-bit byte counter
// bounds one queue's occupancy at 2 GB — far beyond any buffer a
// simulated port carries.
type fifo struct {
	buf   **pkt.Packet // backing array base; nil until first push
	cap   int32
	head  int32
	n     int32
	bytes int32
}

func (f *fifo) push(p *pkt.Packet) {
	if f.n == f.cap {
		f.grow()
	}
	i := f.head + f.n
	if i >= f.cap {
		i -= f.cap
	}
	unsafe.Slice(f.buf, f.cap)[i] = p
	f.n++
	f.bytes += int32(p.Size)
}

func (f *fifo) pop() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	buf := unsafe.Slice(f.buf, f.cap)
	p := buf[f.head]
	buf[f.head] = nil
	f.head++
	if f.head == f.cap {
		f.head = 0
	}
	f.n--
	f.bytes -= int32(p.Size)
	return p
}

func (f *fifo) peek() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	return unsafe.Slice(f.buf, f.cap)[f.head]
}

func (f *fifo) grow() {
	capacity := f.cap * 2
	if capacity == 0 {
		capacity = 16
	}
	next := make([]*pkt.Packet, capacity)
	old := unsafe.Slice(f.buf, f.cap) // nil and harmless when cap == 0
	for i := int32(0); i < f.n; i++ {
		j := f.head + i
		if j >= f.cap {
			j -= f.cap
		}
		next[i] = old[j]
	}
	f.buf = &next[0]
	f.cap = capacity
	f.head = 0
}

// base carries the queue bookkeeping shared by every scheduler.
type base struct {
	queues     []fifo
	weights    []float64
	weightSum  float64
	totalBytes int
	totalPkts  int
}

func newBase(weights []float64) base {
	w := make([]float64, len(weights))
	copy(w, weights)
	var sum float64
	for _, v := range w {
		sum += v
	}
	return base{
		queues:    make([]fifo, len(w)),
		weights:   w,
		weightSum: sum,
	}
}

// equalWeights returns n weights of 1.
func equalWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func (b *base) NumQueues() int { return len(b.queues) }

func (b *base) QueueBytes(q int) int { return int(b.queues[q].bytes) }

func (b *base) QueuePackets(q int) int { return int(b.queues[q].n) }

func (b *base) TotalBytes() int { return b.totalBytes }

func (b *base) TotalPackets() int { return b.totalPkts }

func (b *base) Weight(q int) float64 { return b.weights[q] }

func (b *base) WeightSum() float64 { return b.weightSum }

func (b *base) push(q int, p *pkt.Packet) {
	b.queues[q].push(p)
	b.totalBytes += p.Size
	b.totalPkts++
}

func (b *base) pop(q int) *pkt.Packet {
	p := b.queues[q].pop()
	if p != nil {
		b.totalBytes -= p.Size
		b.totalPkts--
	}
	return p
}

func (b *base) checkQueue(q int) {
	if q < 0 || q >= len(b.queues) {
		panic(fmt.Sprintf("sched: queue index %d out of range [0,%d)", q, len(b.queues)))
	}
}
