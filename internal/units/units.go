// Package units provides the physical quantities used throughout the
// simulator: link rates in bits per second, byte sizes, and the exact
// serialization-time arithmetic that converts between them.
//
// All simulator time is virtual time expressed as time.Duration
// (nanoseconds). Rates are integer bits per second so that common
// datacenter rates (1/10/40/100 Gbps) are exact.
package units

import (
	"fmt"
	"time"
)

// Rate is a link or application rate in bits per second.
type Rate int64

// Common datacenter rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// Packet size constants (bytes). The simulator follows the paper's NS-3
// setup: 1500-byte MTU data segments and small ACK segments.
const (
	// MTU is the maximum transmission unit for data segments.
	MTU = 1500
	// HeaderSize approximates the TCP/IP header overhead contained
	// within MTU-sized segments.
	HeaderSize = 40
	// MSS is the maximum segment payload carried by an MTU packet.
	MSS = MTU - HeaderSize
	// AckSize is the wire size of a pure ACK segment.
	AckSize = 64
)

// String renders the rate with a human unit, e.g. "10Gbps".
func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", int64(r/Gbps))
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", int64(r/Mbps))
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", int64(r/Kbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Serialization returns the time needed to place size bytes on a link of
// rate r. It rounds up to the next nanosecond so a transmitter never
// finishes early.
func Serialization(size int, r Rate) time.Duration {
	if r <= 0 || size <= 0 {
		return 0
	}
	bits := int64(size) * 8
	ns := (bits*int64(time.Second) + int64(r) - 1) / int64(r)
	return time.Duration(ns)
}

// BytesIn returns how many bytes a link of rate r drains in d.
func BytesIn(r Rate, d time.Duration) int64 {
	if r <= 0 || d <= 0 {
		return 0
	}
	return int64(r) / 8 * int64(d) / int64(time.Second)
}

// RateOf returns the average rate achieved by moving size bytes in d.
func RateOf(size int64, d time.Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(size * 8 * int64(time.Second) / int64(d))
}

// Packets converts a packet count into bytes assuming MTU-sized packets.
// ECN thresholds in the paper are quoted in packets; the simulator keeps
// all buffer accounting in bytes.
func Packets(n int) int {
	return n * MTU
}

// BDP returns the bandwidth-delay product in bytes for rate r and
// round-trip time rtt.
func BDP(r Rate, rtt time.Duration) int {
	return int(int64(r) / 8 * int64(rtt) / int64(time.Second))
}
