package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSerialization(t *testing.T) {
	tests := []struct {
		name string
		size int
		rate Rate
		want time.Duration
	}{
		{"mtu at 10G", 1500, 10 * Gbps, 1200 * time.Nanosecond},
		{"mtu at 1G", 1500, 1 * Gbps, 12 * time.Microsecond},
		{"ack at 10G", 64, 10 * Gbps, 52 * time.Nanosecond}, // 51.2ns rounded up
		{"zero size", 0, 10 * Gbps, 0},
		{"zero rate", 1500, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Serialization(tt.size, tt.rate); got != tt.want {
				t.Errorf("Serialization(%d, %v) = %v, want %v", tt.size, tt.rate, got, tt.want)
			}
		})
	}
}

func TestRateString(t *testing.T) {
	tests := []struct {
		rate Rate
		want string
	}{
		{10 * Gbps, "10Gbps"},
		{100 * Mbps, "100Mbps"},
		{5 * Kbps, "5Kbps"},
		{999, "999bps"},
	}
	for _, tt := range tests {
		if got := tt.rate.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int64(tt.rate), got, tt.want)
		}
	}
}

func TestBytesIn(t *testing.T) {
	// 10 Gbps for 1 ms = 1.25 MB.
	if got := BytesIn(10*Gbps, time.Millisecond); got != 1250000 {
		t.Fatalf("BytesIn = %d, want 1250000", got)
	}
	if got := BytesIn(10*Gbps, 0); got != 0 {
		t.Fatalf("BytesIn zero duration = %d, want 0", got)
	}
}

func TestRateOf(t *testing.T) {
	// 1.25 MB in 1 ms = 10 Gbps.
	if got := RateOf(1250000, time.Millisecond); got != 10*Gbps {
		t.Fatalf("RateOf = %v, want 10Gbps", got)
	}
	if got := RateOf(100, 0); got != 0 {
		t.Fatalf("RateOf zero duration = %v, want 0", got)
	}
}

func TestPackets(t *testing.T) {
	if got := Packets(16); got != 24000 {
		t.Fatalf("Packets(16) = %d, want 24000", got)
	}
}

func TestBDP(t *testing.T) {
	// 10 Gbps x 80 us = 100 KB.
	if got := BDP(10*Gbps, 80*time.Microsecond); got != 100000 {
		t.Fatalf("BDP = %d, want 100000", got)
	}
}

// Property: serialization time is always sufficient to carry the bytes,
// and never over-estimates by more than 1 ns.
func TestPropertySerializationBounds(t *testing.T) {
	f := func(size uint16, rateG uint8) bool {
		if rateG == 0 {
			return true
		}
		r := Rate(rateG) * Gbps
		d := Serialization(int(size), r)
		bits := int64(size) * 8
		exactNs := float64(bits) * 1e9 / float64(r)
		got := float64(d.Nanoseconds())
		return got >= exactNs && got < exactNs+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
