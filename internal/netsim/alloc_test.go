package netsim

import (
	"testing"

	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// releaseSink returns every delivered packet to the pool, like the
// transport endpoints do.
type releaseSink struct{}

func (releaseSink) NodeID() pkt.NodeID    { return 2 }
func (releaseSink) Receive(p *pkt.Packet) { pkt.Release(p) }

// The per-packet forwarding path — pool Get, Port.Send (classify,
// enqueue), kick (dequeue, serialize via ScheduleCall), link delivery,
// sink release — must be allocation-free at steady state. This guards
// the tentpole property: simulator throughput scales with event cost,
// not garbage-collector pressure.
func TestPortSendZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	link := NewLink(eng, 100*units.Gbps, 0, releaseSink{})
	port := NewPort(eng, link, PortConfig{Sched: sched.NewFIFO()})

	// Warm up: grow the FIFO ring, the event heap, the engine free list
	// and the packet pool.
	for i := 0; i < 512; i++ {
		p := pkt.Get()
		p.ID = uint64(i)
		p.Size = units.MTU
		p.ECT = true
		port.Send(p)
	}
	eng.Run()

	avg := testing.AllocsPerRun(1000, func() {
		p := pkt.Get()
		p.Size = units.MTU
		p.ECT = true
		port.Send(p)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("Port.Send+kick+deliver allocates %.2f/op at steady state, want 0", avg)
	}
	if port.DropPackets() != 0 {
		t.Fatalf("unexpected drops: %d", port.DropPackets())
	}
}

// Dropped packets also ride the allocation-free path: the shared drop
// helper releases them straight back to the pool.
func TestPortDropZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	link := NewLink(eng, 100*units.Gbps, 0, releaseSink{})
	port := NewPort(eng, link, PortConfig{
		Sched:  sched.NewFIFO(),
		DropFn: func(*pkt.Packet) bool { return true },
	})
	for i := 0; i < 64; i++ {
		p := pkt.Get()
		p.Size = units.MTU
		port.Send(p)
	}
	avg := testing.AllocsPerRun(1000, func() {
		p := pkt.Get()
		p.Size = units.MTU
		port.Send(p)
	})
	if avg != 0 {
		t.Fatalf("drop path allocates %.2f/op at steady state, want 0", avg)
	}
}

// With the observability layer ENABLED (probe bound, ring + counters
// live), the forwarding path must still be allocation-free: events are
// value records appended to a preallocated ring and counters are direct
// increments.
func TestPortSendZeroAllocObserved(t *testing.T) {
	eng := sim.NewEngine()
	link := NewLink(eng, 100*units.Gbps, 0, releaseSink{})
	port := NewPort(eng, link, PortConfig{Sched: sched.NewFIFO()})
	bus := obs.NewBus(1 << 12)
	port.Observe(bus, 1000, 0)

	for i := 0; i < 512; i++ {
		p := pkt.Get()
		p.ID = uint64(i)
		p.Size = units.MTU
		p.ECT = true
		port.Send(p)
	}
	eng.Run()

	avg := testing.AllocsPerRun(1000, func() {
		p := pkt.Get()
		p.Size = units.MTU
		p.ECT = true
		port.Send(p)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("observed Port.Send+kick allocates %.2f/op at steady state, want 0", avg)
	}
	if bus.Ring().Total() == 0 {
		t.Fatal("bus saw no events — probe not wired")
	}
	if bus.Metrics().Counter("port.1000.0.tx_pkts").Value() == 0 {
		t.Fatal("tx counter never incremented")
	}
}

// The disabled layer (no Observe call, nil probe) must add nothing to
// the baseline: this is the same guard as TestPortSendZeroAlloc but
// asserted explicitly against a port that COULD be observed, to catch
// accidental interface boxing or closure capture at the emit sites.
func TestPortSendZeroAllocUnobserved(t *testing.T) {
	eng := sim.NewEngine()
	link := NewLink(eng, 100*units.Gbps, 0, releaseSink{})
	port := NewPort(eng, link, PortConfig{Sched: sched.NewFIFO()})
	if port.ext != nil {
		t.Fatal("new port must start unobserved (no extension block)")
	}
	for i := 0; i < 512; i++ {
		p := pkt.Get()
		p.Size = units.MTU
		port.Send(p)
	}
	eng.Run()
	avg := testing.AllocsPerRun(1000, func() {
		p := pkt.Get()
		p.Size = units.MTU
		port.Send(p)
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("unobserved port allocates %.2f/op, want 0", avg)
	}
}
