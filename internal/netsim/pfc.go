package netsim

import (
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
)

// PFC implements hop-by-hop PAUSE flow control (802.3x-style, the
// lossless-fabric substrate DCQCN assumes): when the guarded switch's
// buffered bytes exceed Xoff, every registered upstream transmitter is
// paused; when they drain below Xon, transmission resumes. Pause
// signalling is modelled as instantaneous (real PAUSE frames take one
// link delay; the simplification is conservative for losslessness).
//
// The model is switch-level (one watermark over all the switch's output
// ports) because the simulator is output-queued; per-priority PFC would
// partition the watermark per service class.
type PFC struct {
	eng      *sim.Engine
	xoff     int
	xon      int
	buffered int
	paused   bool
	upstream []*Port

	pauses int64

	// node identifies the guarded switch in trace events; bus is nil
	// unless Observe was called.
	bus  *obs.Bus
	node pkt.NodeID
}

// NewPFC returns a controller with the given watermarks in bytes
// (xon < xoff; values are swapped if given in the wrong order).
func NewPFC(eng *sim.Engine, xoff, xon int) *PFC {
	if xon > xoff {
		xoff, xon = xon, xoff
	}
	return &PFC{eng: eng, xoff: xoff, xon: xon}
}

// Guard watches sw's current output ports: their combined occupancy
// drives the pause state. Call after all ports are added.
func (f *PFC) Guard(sw *Switch) {
	for i := 0; i < sw.NumPorts(); i++ {
		port := sw.Port(i)
		port.OnEnqueue(func(p *pkt.Packet, _ int) {
			f.add(p.Size)
		})
		port.OnDequeue(func(p *pkt.Packet, _ int) {
			f.add(-p.Size)
		})
	}
}

// Upstream registers a transmitter to pause when the guarded switch is
// congested (typically the ports of neighboring nodes whose links feed
// the switch).
func (f *PFC) Upstream(p *Port) {
	f.upstream = append(f.upstream, p)
	if f.paused {
		p.Pause()
	}
}

// Observe reports pause/resume transitions to bus, attributing them to
// the guarded switch's node ID. A nil bus disables reporting.
func (f *PFC) Observe(bus *obs.Bus, node pkt.NodeID) {
	f.bus = bus
	f.node = node
}

// Paused reports the current pause state.
func (f *PFC) Paused() bool { return f.paused }

// Pauses counts Xoff crossings (pause events).
func (f *PFC) Pauses() int64 { return f.pauses }

func (f *PFC) add(delta int) {
	f.buffered += delta
	switch {
	case !f.paused && f.buffered > f.xoff:
		f.paused = true
		f.pauses++
		f.bus.PFCPause(f.eng.Now(), f.node, f.buffered)
		for _, p := range f.upstream {
			p.Pause()
		}
	case f.paused && f.buffered < f.xon:
		f.paused = false
		f.bus.PFCResume(f.eng.Now(), f.node, f.buffered)
		for _, p := range f.upstream {
			p.Resume()
		}
	}
}
