package netsim

import (
	"testing"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// sink records delivered packets with their arrival times.
type sink struct {
	id      pkt.NodeID
	eng     *sim.Engine
	packets []*pkt.Packet
	times   []time.Duration
}

func (s *sink) NodeID() pkt.NodeID { return s.id }
func (s *sink) Receive(p *pkt.Packet) {
	s.packets = append(s.packets, p)
	s.times = append(s.times, s.eng.Now())
}

func dataPkt(id uint64, size int) *pkt.Packet {
	return &pkt.Packet{ID: id, Size: size, Payload: size - units.HeaderSize, ECT: true}
}

func TestLinkDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	link := NewLink(eng, 10*units.Gbps, 2*time.Microsecond, dst)
	port := NewPort(eng, link, PortConfig{Sched: sched.NewFIFO()})

	port.Send(dataPkt(1, units.MTU))
	eng.Run()

	// 1500B at 10G = 1.2us serialization + 2us propagation = 3.2us.
	if len(dst.times) != 1 || dst.times[0] != 3200*time.Nanosecond {
		t.Fatalf("arrival = %v, want 3.2us", dst.times)
	}
}

func TestPortBackToBackSerialization(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	link := NewLink(eng, 10*units.Gbps, 0, dst)
	port := NewPort(eng, link, PortConfig{Sched: sched.NewFIFO()})

	for i := 0; i < 3; i++ {
		port.Send(dataPkt(uint64(i), units.MTU))
	}
	eng.Run()

	want := []time.Duration{1200 * time.Nanosecond, 2400 * time.Nanosecond, 3600 * time.Nanosecond}
	if len(dst.times) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(dst.times))
	}
	for i := range want {
		if dst.times[i] != want[i] {
			t.Fatalf("packet %d at %v, want %v", i, dst.times[i], want[i])
		}
		if dst.packets[i].ID != uint64(i) {
			t.Fatalf("packet %d out of order", i)
		}
	}
	if port.TxPackets() != 3 || port.TxBytes() != 3*units.MTU {
		t.Fatalf("tx counters = %d pkts / %d bytes", port.TxPackets(), port.TxBytes())
	}
}

func TestPortTailDrop(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	link := NewLink(eng, 10*units.Gbps, 0, dst)
	port := NewPort(eng, link, PortConfig{
		Sched:       sched.NewFIFO(),
		BufferBytes: 2 * units.MTU,
	})
	var dropped int
	port.OnDrop(func(*pkt.Packet, int) { dropped++ })

	// First packet goes straight to the transmitter (leaves the queue),
	// so two more fit in the buffer; the fourth must be dropped.
	for i := 0; i < 4; i++ {
		port.Send(dataPkt(uint64(i), units.MTU))
	}
	if port.DropPackets() != 1 || dropped != 1 {
		t.Fatalf("drops = %d (tap %d), want 1", port.DropPackets(), dropped)
	}
	eng.Run()
	if len(dst.packets) != 3 {
		t.Fatalf("delivered %d, want 3", len(dst.packets))
	}
}

func TestPortEnqueueMarking(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	link := NewLink(eng, 10*units.Gbps, 0, dst)
	// Mark when the queue already holds >= 1 packet at enqueue time.
	port := NewPort(eng, link, PortConfig{
		Sched:  sched.NewFIFO(),
		Marker: &ecn.PerQueueStandard{K: units.MTU},
	})

	// p0 enters an empty queue (no mark) and starts transmitting;
	// p1 also sees an empty queue (p0 left); p2 sees p1 buffered: mark.
	for i := 0; i < 3; i++ {
		port.Send(dataPkt(uint64(i), units.MTU))
	}
	eng.Run()
	if dst.packets[0].CE || dst.packets[1].CE {
		t.Fatal("first two packets must not be marked")
	}
	if !dst.packets[2].CE {
		t.Fatal("third packet must be marked at enqueue")
	}
	if port.MarkedPackets() != 1 {
		t.Fatalf("MarkedPackets = %d, want 1", port.MarkedPackets())
	}
}

func TestPortDequeueMarkingTCN(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	link := NewLink(eng, 10*units.Gbps, 0, dst)
	port := NewPort(eng, link, PortConfig{
		Sched:  sched.NewFIFO(),
		Marker: &ecn.TCN{Threshold: 2 * time.Microsecond},
	})

	// 4 back-to-back packets at 1.2us serialization: sojourns are
	// 0, 1.2, 2.4, 3.6us; with a 2us threshold packets 2,3 get marked.
	for i := 0; i < 4; i++ {
		port.Send(dataPkt(uint64(i), units.MTU))
	}
	eng.Run()
	wantCE := []bool{false, false, true, true}
	for i, want := range wantCE {
		if dst.packets[i].CE != want {
			t.Fatalf("packet %d CE = %v, want %v", i, dst.packets[i].CE, want)
		}
	}
}

func TestNonECTNeverMarked(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	link := NewLink(eng, 10*units.Gbps, 0, dst)
	port := NewPort(eng, link, PortConfig{
		Sched:  sched.NewFIFO(),
		Marker: &ecn.PerPort{K: 0}, // marks everything ECT
	})
	p := dataPkt(1, units.MTU)
	p.ECT = false
	port.Send(p)
	eng.Run()
	if dst.packets[0].CE {
		t.Fatal("non-ECT packet was marked")
	}
}

func TestPortPMSBIntegration(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	link := NewLink(eng, 10*units.Gbps, 0, dst)
	port := NewPort(eng, link, PortConfig{
		Sched:  sched.NewDWRR([]float64{1, 1}, units.MTU),
		Marker: &core.PMSB{PortK: 4 * units.MTU},
	})

	// Fill queue 1 with 6 packets, then send one packet to queue 0:
	// port exceeds 4 pkts but queue 0 holds < 2 pkts => blind.
	for i := 0; i < 6; i++ {
		p := dataPkt(uint64(i), units.MTU)
		p.Service = 1
		port.Send(p)
	}
	victim := dataPkt(100, units.MTU)
	victim.Service = 0
	port.Send(victim)
	eng.Run()

	for _, p := range dst.packets {
		if p.ID == 100 && p.CE {
			t.Fatal("PMSB marked the victim packet in the empty queue")
		}
	}
	// Queue 1 packets above its 2-pkt filter must carry marks.
	marked := 0
	for _, p := range dst.packets {
		if p.CE {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("PMSB never marked the congested queue")
	}
}

func TestHostDemux(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	var got []pkt.FlowID
	h.Attach(7, HandlerFunc(func(p *pkt.Packet) { got = append(got, p.Flow) }))
	h.Receive(&pkt.Packet{Flow: 7, Size: 100})
	h.Receive(&pkt.Packet{Flow: 9, Size: 100}) // unclaimed
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("handler got %v", got)
	}
	if h.UnclaimedPackets() != 1 {
		t.Fatalf("UnclaimedPackets = %d, want 1", h.UnclaimedPackets())
	}
	if h.RxPackets() != 2 || h.RxBytes() != 200 {
		t.Fatalf("rx counters wrong: %d/%d", h.RxPackets(), h.RxBytes())
	}
	h.Detach(7)
	h.Receive(&pkt.Packet{Flow: 7})
	if len(got) != 1 {
		t.Fatal("detached handler still invoked")
	}
}

func TestHostSendWithoutNIC(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	h.Send(&pkt.Packet{})
	if h.UnclaimedPackets() != 1 {
		t.Fatal("send without NIC should count as unclaimed")
	}
}

func TestSwitchRouting(t *testing.T) {
	eng := sim.NewEngine()
	dstA := &sink{id: 10, eng: eng}
	dstB := &sink{id: 11, eng: eng}
	sw := NewSwitch(eng, 1)
	pa := NewPort(eng, NewLink(eng, 10*units.Gbps, 0, dstA), PortConfig{Sched: sched.NewFIFO()})
	pb := NewPort(eng, NewLink(eng, 10*units.Gbps, 0, dstB), PortConfig{Sched: sched.NewFIFO()})
	sw.AddPort(pa)
	sw.AddPort(pb)
	sw.SetRoute(func(p *pkt.Packet) int {
		switch p.Dst {
		case 10:
			return 0
		case 11:
			return 1
		default:
			return -1
		}
	})

	sw.Receive(&pkt.Packet{Dst: 10, Size: 100})
	sw.Receive(&pkt.Packet{Dst: 11, Size: 100})
	sw.Receive(&pkt.Packet{Dst: 99, Size: 100})
	eng.Run()

	if len(dstA.packets) != 1 || len(dstB.packets) != 1 {
		t.Fatalf("deliveries: A=%d B=%d, want 1/1", len(dstA.packets), len(dstB.packets))
	}
	if sw.RouteDrops() != 1 {
		t.Fatalf("RouteDrops = %d, want 1", sw.RouteDrops())
	}
	if sw.NumPorts() != 2 || sw.Port(0) != pa {
		t.Fatal("port registry broken")
	}
}

func TestPoolAccounting(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	pool := &ecn.Pool{}
	// Slow link so packets actually sit in the pool.
	link := NewLink(eng, 100*units.Mbps, 0, dst)
	port := NewPort(eng, link, PortConfig{Sched: sched.NewFIFO(), Pool: pool})
	for i := 0; i < 5; i++ {
		port.Send(dataPkt(uint64(i), units.MTU))
	}
	// One packet is in flight (dequeued), four buffered.
	if pool.Bytes() != 4*units.MTU {
		t.Fatalf("pool = %d, want %d", pool.Bytes(), 4*units.MTU)
	}
	eng.Run()
	if pool.Bytes() != 0 {
		t.Fatalf("pool after drain = %d, want 0", pool.Bytes())
	}
}
