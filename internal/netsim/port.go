package netsim

import (
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// Tap observes packets at a port event (enqueue, dequeue, drop). q is
// the queue the packet was classified into.
type Tap func(p *pkt.Packet, q int)

// tap list indices: the port keeps one slice per event kind and a
// single shared iteration helper (fire), instead of three copies of the
// loop. The Tap registration API is a thin adapter over this.
const (
	tapEnqueue = iota
	tapDequeue
	tapDrop
	numTapKinds
)

// PortConfig configures an output port.
type PortConfig struct {
	// Sched is the packet scheduler owning the port's queues (required).
	Sched sched.Scheduler
	// Marker decides ECN marks; nil means no marking.
	Marker ecn.Marker
	// BufferBytes is the shared per-port buffer capacity; arriving
	// packets that would exceed it are tail-dropped. 0 means unlimited.
	BufferBytes int
	// Classify maps packets to queue indices; the default uses
	// Service modulo the queue count.
	Classify func(p *pkt.Packet) int
	// Pool, when non-nil, tracks this port's occupancy in a shared
	// service pool (for per-service-pool marking).
	Pool *ecn.Pool
	// DropFn, when non-nil, is consulted for every arriving packet;
	// returning true discards it. It exists for failure injection in
	// tests (random loss, targeted loss) and is applied before buffer
	// admission.
	DropFn func(p *pkt.Packet) bool
	// Shared, when non-nil, applies Dynamic Threshold admission from a
	// switch-wide buffer pool in addition to (or instead of)
	// BufferBytes.
	Shared *SharedBuffer
}

// portExt holds the rarely-used port features — custom classifiers,
// failure injection, shared-buffer admission, service pools, taps and
// the observability probe. Most ports in a large fabric use none of
// them, so they live behind one lazily-allocated pointer instead of
// widening every port: at fat-tree k=32 scale (~49k ports) the
// difference is several megabytes of always-resident state.
type portExt struct {
	classify func(p *pkt.Packet) int
	pool     *ecn.Pool
	dropFn   func(p *pkt.Packet) bool
	shared   *SharedBuffer
	probe    *obs.PortProbe
	taps     [numTapKinds][]Tap
}

// Port is an output-queued switch (or NIC) port: classified packets
// enter the scheduler's queues, a single transmitter drains them onto
// the attached link, and the configured marker applies CE marks at its
// mark point. Port implements ecn.PortView for its marker.
//
// The struct is packed into two cache lines (128 bytes): the port's
// link is embedded by value (a port owns exactly one link), the
// engine is reached through it, rare features live behind ext, and the
// secondary counters are 32-bit. The narrow counters wrap at 4
// billion drops/marks per port — far beyond any simulated horizon, and
// an accounting-only concern (the simulation itself never reads them).
type Port struct {
	// out is the attached link; out.eng doubles as the port's clock and
	// timer engine (for a boundary link it is the sending shard's
	// engine, which is exactly this port's shard).
	out    Link
	sched  sched.Scheduler
	marker ecn.Marker
	// inflight is the packet currently being serialized (nil = idle
	// transmitter). The port has a single transmitter, so one field
	// (plus the shared portTxDone trampoline) replaces the per-packet
	// completion closure.
	inflight *pkt.Packet
	ext      *portExt

	// PortStats counters.
	txBytes       int64
	txPackets     uint32
	dropPackets   uint32
	dropBytes     uint32
	markedPackets uint32
	bufferBytes   int32
	nq            uint16
	paused        bool
}

var _ ecn.PortView = (*Port)(nil)

// idleObserver is implemented by schedulers (DWRR) that want to know
// when an enqueue follows an idle period, to reset round-time state.
type idleObserver interface {
	ObserveIdle(now time.Duration)
}

// initPort fills a zeroed port in place — shared by NewPort and the
// arena carve path.
func (p *Port) init(link Link, cfg PortConfig) {
	if cfg.Sched == nil {
		panic("netsim: PortConfig.Sched is required")
	}
	if cfg.Marker == nil {
		cfg.Marker = ecn.None{}
	}
	p.out = link
	p.sched = cfg.Sched
	p.marker = cfg.Marker
	p.bufferBytes = int32(cfg.BufferBytes)
	p.nq = uint16(cfg.Sched.NumQueues())
	if cfg.Classify != nil || cfg.Pool != nil || cfg.DropFn != nil || cfg.Shared != nil {
		p.ext = &portExt{
			classify: cfg.Classify,
			pool:     cfg.Pool,
			dropFn:   cfg.DropFn,
			shared:   cfg.Shared,
		}
	}
}

// NewPort creates a port transmitting on link. cfg.Sched must be set.
// The link is copied into the port (a port owns its link); the passed
// pointer remains a valid, equivalent link.
func NewPort(eng *sim.Engine, link *Link, cfg PortConfig) *Port {
	_ = eng // the engine is reached through the link; kept for API compatibility
	p := &Port{}
	p.init(*link, cfg)
	return p
}

// classify maps a packet to its queue: the configured classifier when
// present, else Service modulo the queue count.
func (p *Port) classify(packet *pkt.Packet) int {
	if p.ext != nil && p.ext.classify != nil {
		return p.ext.classify(packet)
	}
	q := packet.Service % int(p.nq)
	if q < 0 {
		q += int(p.nq)
	}
	return q
}

// Send classifies, optionally marks (enqueue point), enqueues, and kicks
// the transmitter. Packets beyond the buffer capacity are tail-dropped.
func (p *Port) Send(packet *pkt.Packet) {
	q := p.classify(packet)
	s := p.sched
	e := p.ext
	if e != nil && e.dropFn != nil && e.dropFn(packet) {
		p.drop(packet, q, obs.DropInjected)
		return
	}
	if p.bufferBytes > 0 && s.TotalBytes()+packet.Size > int(p.bufferBytes) {
		p.drop(packet, q, obs.DropPortBuffer)
		return
	}
	if e != nil && e.shared != nil && !e.shared.Admit(s.TotalBytes(), packet.Size) {
		p.drop(packet, q, obs.DropSharedBuffer)
		return
	}
	if s.TotalPackets() == 0 {
		if io, ok := s.(idleObserver); ok {
			io.ObserveIdle(p.out.eng.Now())
		}
	}
	packet.EnqueuedAt = p.out.eng.Now()
	// The marking decision observes the queue state *before* the packet
	// is added, matching classic RED/ECN behaviour.
	if packet.ECT && p.marker.Point() == ecn.AtEnqueue &&
		p.marker.ShouldMark(p, q, packet) {
		packet.CE = true
		p.markedPackets++
		if e != nil && e.probe != nil {
			e.probe.Mark(p.out.eng.Now(), q, packet, s.TotalBytes(), s.QueueBytes(q))
		}
	}
	s.Enqueue(q, packet)
	if e != nil {
		if e.pool != nil {
			e.pool.Add(packet.Size)
		}
		if e.probe != nil {
			e.probe.Enqueue(p.out.eng.Now(), q, packet, s.TotalBytes(), s.QueueBytes(q))
		}
		p.fire(tapEnqueue, packet, q)
	}
	p.kick()
}

// drop refuses an arriving packet: count it, let the drop taps (and the
// obs layer) observe it, then release it back to the packet pool — a
// refused packet has no further consumer. Every admission path (failure
// injection, per-port buffer, shared-buffer DT) funnels through here so
// the accounting and the pool release can never diverge.
func (p *Port) drop(packet *pkt.Packet, q int, reason obs.DropReason) {
	p.dropPackets++
	p.dropBytes += uint32(packet.Size)
	if e := p.ext; e != nil {
		if e.probe != nil {
			e.probe.Drop(p.out.eng.Now(), q, packet, reason)
		}
		p.fire(tapDrop, packet, q)
	}
	pkt.Release(packet)
}

// fire invokes the registered taps of one kind — the single iteration
// point behind the three On* registration methods. Callers check
// p.ext != nil first (the common fabric port has no taps).
func (p *Port) fire(kind int, packet *pkt.Packet, q int) {
	for _, tap := range p.ext.taps[kind] {
		tap(packet, q)
	}
}

// kick starts the transmitter if it is idle, unpaused and a packet is
// waiting.
func (p *Port) kick() {
	if p.inflight != nil || p.paused {
		return
	}
	packet, q, ok := p.sched.Dequeue()
	if !ok {
		return
	}
	e := p.ext
	if e != nil {
		if e.pool != nil {
			e.pool.Add(-packet.Size)
		}
		if e.shared != nil {
			e.shared.Release(packet.Size)
		}
	}
	// Dequeue-point marking observes the occupancy without the departing
	// packet (it has already left the queue).
	if packet.ECT && p.marker.Point() == ecn.AtDequeue &&
		p.marker.ShouldMark(p, q, packet) {
		packet.CE = true
		p.markedPackets++
		if e != nil && e.probe != nil {
			e.probe.Mark(p.out.eng.Now(), q, packet, p.sched.TotalBytes(), p.sched.QueueBytes(q))
		}
	}
	if e != nil {
		if e.probe != nil {
			e.probe.Dequeue(p.out.eng.Now(), q, packet, p.sched.TotalBytes(), p.sched.QueueBytes(q))
		}
		p.fire(tapDequeue, packet, q)
	}
	p.inflight = packet
	p.txPackets++
	p.txBytes += int64(packet.Size)
	ser := units.Serialization(packet.Size, p.out.rate)
	p.out.eng.ScheduleCall(ser, portTxDone, p)
}

// portTxDone completes a transmission: hand the in-flight packet to the
// link and restart the transmitter. Shared across all ports (the packet
// rides in the port's inflight field), so serializing a packet costs no
// allocation.
func portTxDone(arg any) {
	p := arg.(*Port)
	packet := p.inflight
	p.inflight = nil
	p.out.Deliver(packet)
	p.kick()
}

// Pause stops the transmitter after the in-flight packet completes
// (PFC backpressure). Buffered packets stay queued; arriving packets
// keep being admitted subject to the buffer limits.
func (p *Port) Pause() { p.paused = true }

// Resume re-enables the transmitter and restarts it if work is queued.
func (p *Port) Resume() {
	if !p.paused {
		return
	}
	p.paused = false
	p.kick()
}

// IsPaused reports whether the transmitter is paused.
func (p *Port) IsPaused() bool { return p.paused }

// extension returns the port's rare-feature block, allocating it on
// first use.
func (p *Port) extension() *portExt {
	if p.ext == nil {
		p.ext = &portExt{}
	}
	return p.ext
}

// OnEnqueue registers a tap invoked after each successful enqueue.
func (p *Port) OnEnqueue(t Tap) {
	e := p.extension()
	e.taps[tapEnqueue] = append(e.taps[tapEnqueue], t)
}

// OnDequeue registers a tap invoked when a packet begins transmission.
func (p *Port) OnDequeue(t Tap) {
	e := p.extension()
	e.taps[tapDequeue] = append(e.taps[tapDequeue], t)
}

// OnDrop registers a tap invoked when a packet is tail-dropped.
func (p *Port) OnDrop(t Tap) {
	e := p.extension()
	e.taps[tapDrop] = append(e.taps[tapDrop], t)
}

// Observe attaches the port to an observability bus under the given
// topology identity (owning node and port index). A nil bus leaves the
// port unobserved; calling with non-nil replaces any earlier probe.
func (p *Port) Observe(bus *obs.Bus, node pkt.NodeID, portIndex int) {
	p.extension().probe = bus.ObservePort(
		obs.PortID{Node: node, Port: int32(portIndex)}, p.sched.NumQueues())
}

// Link returns the attached link.
func (p *Port) Link() *Link { return &p.out }

// Scheduler returns the port's scheduler.
func (p *Port) Scheduler() sched.Scheduler { return p.sched }

// TxPackets returns the number of packets transmitted.
func (p *Port) TxPackets() int64 { return int64(p.txPackets) }

// TxBytes returns the number of bytes transmitted.
func (p *Port) TxBytes() int64 { return p.txBytes }

// DropPackets returns the number of packets tail-dropped.
func (p *Port) DropPackets() int64 { return int64(p.dropPackets) }

// DropBytes returns the number of bytes tail-dropped.
func (p *Port) DropBytes() int64 { return int64(p.dropBytes) }

// MarkedPackets returns the number of packets CE-marked at this port.
func (p *Port) MarkedPackets() int64 { return int64(p.markedPackets) }

// NumQueues implements ecn.PortView.
func (p *Port) NumQueues() int { return int(p.nq) }

// QueueBytes implements ecn.PortView.
func (p *Port) QueueBytes(q int) int { return p.sched.QueueBytes(q) }

// QueuePackets implements ecn.PortView.
func (p *Port) QueuePackets(q int) int { return p.sched.QueuePackets(q) }

// PortBytes implements ecn.PortView.
func (p *Port) PortBytes() int { return p.sched.TotalBytes() }

// PortPackets implements ecn.PortView.
func (p *Port) PortPackets() int { return p.sched.TotalPackets() }

// Weight implements ecn.PortView.
func (p *Port) Weight(q int) float64 { return p.sched.Weight(q) }

// WeightSum implements ecn.PortView.
func (p *Port) WeightSum() float64 { return p.sched.WeightSum() }

// LinkRate implements ecn.PortView.
func (p *Port) LinkRate() units.Rate { return p.out.rate }

// Now implements ecn.PortView.
func (p *Port) Now() time.Duration { return p.out.eng.Now() }

// Round implements ecn.PortView: it exposes round-based scheduler state
// when the scheduler provides it (DWRR), else nil.
func (p *Port) Round() ecn.RoundInfo {
	if ri, ok := p.sched.(sched.RoundInfo); ok {
		return ri
	}
	return nil
}
