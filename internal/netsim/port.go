package netsim

import (
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// Tap observes packets at a port event (enqueue, dequeue, drop). q is
// the queue the packet was classified into.
type Tap func(p *pkt.Packet, q int)

// tap list indices: the port keeps one slice per event kind and a
// single shared iteration helper (fire), instead of three copies of the
// loop. The Tap registration API is a thin adapter over this.
const (
	tapEnqueue = iota
	tapDequeue
	tapDrop
	numTapKinds
)

// PortConfig configures an output port.
type PortConfig struct {
	// Sched is the packet scheduler owning the port's queues (required).
	Sched sched.Scheduler
	// Marker decides ECN marks; nil means no marking.
	Marker ecn.Marker
	// BufferBytes is the shared per-port buffer capacity; arriving
	// packets that would exceed it are tail-dropped. 0 means unlimited.
	BufferBytes int
	// Classify maps packets to queue indices; the default uses
	// Service modulo the queue count.
	Classify func(p *pkt.Packet) int
	// Pool, when non-nil, tracks this port's occupancy in a shared
	// service pool (for per-service-pool marking).
	Pool *ecn.Pool
	// DropFn, when non-nil, is consulted for every arriving packet;
	// returning true discards it. It exists for failure injection in
	// tests (random loss, targeted loss) and is applied before buffer
	// admission.
	DropFn func(p *pkt.Packet) bool
	// Shared, when non-nil, applies Dynamic Threshold admission from a
	// switch-wide buffer pool in addition to (or instead of)
	// BufferBytes.
	Shared *SharedBuffer
}

// Port is an output-queued switch (or NIC) port: classified packets
// enter the scheduler's queues, a single transmitter drains them onto
// the attached link, and the configured marker applies CE marks at its
// mark point. Port implements ecn.PortView for its marker.
type Port struct {
	eng  *sim.Engine
	link *Link
	cfg  PortConfig

	busy   bool
	paused bool
	// inflight is the packet currently being serialized. The port has a
	// single transmitter, so one field (plus the shared txDone
	// trampoline) replaces the per-packet completion closure.
	inflight *pkt.Packet

	// PortStats counters.
	txPackets, txBytes     int64
	dropPackets, dropBytes int64
	markedPackets          int64

	taps [numTapKinds][]Tap

	// probe is the port's handle into the observability layer; nil (the
	// default) disables it, and every emit site below is then a single
	// pointer test.
	probe *obs.PortProbe
}

var _ ecn.PortView = (*Port)(nil)

// idleObserver is implemented by schedulers (DWRR) that want to know
// when an enqueue follows an idle period, to reset round-time state.
type idleObserver interface {
	ObserveIdle(now time.Duration)
}

// NewPort creates a port transmitting on link. cfg.Sched must be set.
func NewPort(eng *sim.Engine, link *Link, cfg PortConfig) *Port {
	if cfg.Sched == nil {
		panic("netsim: PortConfig.Sched is required")
	}
	if cfg.Marker == nil {
		cfg.Marker = ecn.None{}
	}
	if cfg.Classify == nil {
		n := cfg.Sched.NumQueues()
		cfg.Classify = func(p *pkt.Packet) int {
			q := p.Service % n
			if q < 0 {
				q += n
			}
			return q
		}
	}
	return &Port{eng: eng, link: link, cfg: cfg}
}

// Send classifies, optionally marks (enqueue point), enqueues, and kicks
// the transmitter. Packets beyond the buffer capacity are tail-dropped.
func (p *Port) Send(packet *pkt.Packet) {
	q := p.cfg.Classify(packet)
	s := p.cfg.Sched
	if p.cfg.DropFn != nil && p.cfg.DropFn(packet) {
		p.drop(packet, q, obs.DropInjected)
		return
	}
	if p.cfg.BufferBytes > 0 && s.TotalBytes()+packet.Size > p.cfg.BufferBytes {
		p.drop(packet, q, obs.DropPortBuffer)
		return
	}
	if p.cfg.Shared != nil && !p.cfg.Shared.Admit(s.TotalBytes(), packet.Size) {
		p.drop(packet, q, obs.DropSharedBuffer)
		return
	}
	if s.TotalPackets() == 0 {
		if io, ok := s.(idleObserver); ok {
			io.ObserveIdle(p.eng.Now())
		}
	}
	packet.EnqueuedAt = p.eng.Now()
	// The marking decision observes the queue state *before* the packet
	// is added, matching classic RED/ECN behaviour.
	if packet.ECT && p.cfg.Marker.Point() == ecn.AtEnqueue &&
		p.cfg.Marker.ShouldMark(p, q, packet) {
		packet.CE = true
		p.markedPackets++
		if p.probe != nil {
			p.probe.Mark(p.eng.Now(), q, packet, s.TotalBytes(), s.QueueBytes(q))
		}
	}
	s.Enqueue(q, packet)
	if p.cfg.Pool != nil {
		p.cfg.Pool.Add(packet.Size)
	}
	if p.probe != nil {
		p.probe.Enqueue(p.eng.Now(), q, packet, s.TotalBytes(), s.QueueBytes(q))
	}
	p.fire(tapEnqueue, packet, q)
	p.kick()
}

// drop refuses an arriving packet: count it, let the drop taps (and the
// obs layer) observe it, then release it back to the packet pool — a
// refused packet has no further consumer. Every admission path (failure
// injection, per-port buffer, shared-buffer DT) funnels through here so
// the accounting and the pool release can never diverge.
func (p *Port) drop(packet *pkt.Packet, q int, reason obs.DropReason) {
	p.dropPackets++
	p.dropBytes += int64(packet.Size)
	if p.probe != nil {
		p.probe.Drop(p.eng.Now(), q, packet, reason)
	}
	p.fire(tapDrop, packet, q)
	pkt.Release(packet)
}

// fire invokes the registered taps of one kind — the single iteration
// point behind the three On* registration methods.
func (p *Port) fire(kind int, packet *pkt.Packet, q int) {
	for _, tap := range p.taps[kind] {
		tap(packet, q)
	}
}

// kick starts the transmitter if it is idle, unpaused and a packet is
// waiting.
func (p *Port) kick() {
	if p.busy || p.paused {
		return
	}
	packet, q, ok := p.cfg.Sched.Dequeue()
	if !ok {
		return
	}
	if p.cfg.Pool != nil {
		p.cfg.Pool.Add(-packet.Size)
	}
	if p.cfg.Shared != nil {
		p.cfg.Shared.Release(packet.Size)
	}
	// Dequeue-point marking observes the occupancy without the departing
	// packet (it has already left the queue).
	if packet.ECT && p.cfg.Marker.Point() == ecn.AtDequeue &&
		p.cfg.Marker.ShouldMark(p, q, packet) {
		packet.CE = true
		p.markedPackets++
		if p.probe != nil {
			p.probe.Mark(p.eng.Now(), q, packet, p.cfg.Sched.TotalBytes(), p.cfg.Sched.QueueBytes(q))
		}
	}
	if p.probe != nil {
		p.probe.Dequeue(p.eng.Now(), q, packet, p.cfg.Sched.TotalBytes(), p.cfg.Sched.QueueBytes(q))
	}
	p.fire(tapDequeue, packet, q)
	p.busy = true
	p.inflight = packet
	p.txPackets++
	p.txBytes += int64(packet.Size)
	ser := units.Serialization(packet.Size, p.link.Rate())
	p.eng.ScheduleCall(ser, portTxDone, p)
}

// portTxDone completes a transmission: hand the in-flight packet to the
// link and restart the transmitter. Shared across all ports (the packet
// rides in the port's inflight field), so serializing a packet costs no
// allocation.
func portTxDone(arg any) {
	p := arg.(*Port)
	packet := p.inflight
	p.inflight = nil
	p.busy = false
	p.link.Deliver(packet)
	p.kick()
}

// Pause stops the transmitter after the in-flight packet completes
// (PFC backpressure). Buffered packets stay queued; arriving packets
// keep being admitted subject to the buffer limits.
func (p *Port) Pause() { p.paused = true }

// Resume re-enables the transmitter and restarts it if work is queued.
func (p *Port) Resume() {
	if !p.paused {
		return
	}
	p.paused = false
	p.kick()
}

// IsPaused reports whether the transmitter is paused.
func (p *Port) IsPaused() bool { return p.paused }

// OnEnqueue registers a tap invoked after each successful enqueue.
func (p *Port) OnEnqueue(t Tap) { p.taps[tapEnqueue] = append(p.taps[tapEnqueue], t) }

// OnDequeue registers a tap invoked when a packet begins transmission.
func (p *Port) OnDequeue(t Tap) { p.taps[tapDequeue] = append(p.taps[tapDequeue], t) }

// OnDrop registers a tap invoked when a packet is tail-dropped.
func (p *Port) OnDrop(t Tap) { p.taps[tapDrop] = append(p.taps[tapDrop], t) }

// Observe attaches the port to an observability bus under the given
// topology identity (owning node and port index). A nil bus leaves the
// port unobserved; calling with non-nil replaces any earlier probe.
func (p *Port) Observe(bus *obs.Bus, node pkt.NodeID, portIndex int) {
	p.probe = bus.ObservePort(obs.PortID{Node: node, Port: int32(portIndex)},
		p.cfg.Sched.NumQueues())
}

// Link returns the attached link.
func (p *Port) Link() *Link { return p.link }

// Scheduler returns the port's scheduler.
func (p *Port) Scheduler() sched.Scheduler { return p.cfg.Sched }

// TxPackets returns the number of packets transmitted.
func (p *Port) TxPackets() int64 { return p.txPackets }

// TxBytes returns the number of bytes transmitted.
func (p *Port) TxBytes() int64 { return p.txBytes }

// DropPackets returns the number of packets tail-dropped.
func (p *Port) DropPackets() int64 { return p.dropPackets }

// DropBytes returns the number of bytes tail-dropped.
func (p *Port) DropBytes() int64 { return p.dropBytes }

// MarkedPackets returns the number of packets CE-marked at this port.
func (p *Port) MarkedPackets() int64 { return p.markedPackets }

// NumQueues implements ecn.PortView.
func (p *Port) NumQueues() int { return p.cfg.Sched.NumQueues() }

// QueueBytes implements ecn.PortView.
func (p *Port) QueueBytes(q int) int { return p.cfg.Sched.QueueBytes(q) }

// QueuePackets implements ecn.PortView.
func (p *Port) QueuePackets(q int) int { return p.cfg.Sched.QueuePackets(q) }

// PortBytes implements ecn.PortView.
func (p *Port) PortBytes() int { return p.cfg.Sched.TotalBytes() }

// PortPackets implements ecn.PortView.
func (p *Port) PortPackets() int { return p.cfg.Sched.TotalPackets() }

// Weight implements ecn.PortView.
func (p *Port) Weight(q int) float64 { return p.cfg.Sched.Weight(q) }

// WeightSum implements ecn.PortView.
func (p *Port) WeightSum() float64 { return p.cfg.Sched.WeightSum() }

// LinkRate implements ecn.PortView.
func (p *Port) LinkRate() units.Rate { return p.link.Rate() }

// Now implements ecn.PortView.
func (p *Port) Now() time.Duration { return p.eng.Now() }

// Round implements ecn.PortView: it exposes round-based scheduler state
// when the scheduler provides it (DWRR), else nil.
func (p *Port) Round() ecn.RoundInfo {
	if ri, ok := p.cfg.Sched.(sched.RoundInfo); ok {
		return ri
	}
	return nil
}
