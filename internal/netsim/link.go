package netsim

import (
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// Link is a unidirectional point-to-point link. Serialization time is
// charged by the transmitting Port (which owns the link and stays busy
// for size/rate); the link itself adds the propagation delay. A
// bidirectional cable is modeled as two Links.
//
// A link is either local (both ends on one engine; arrivals are
// scheduled directly) or a boundary link (the ends live on different
// shards of a sim.Coordinator; arrivals cross via the shard boundary's
// deterministic merge). The send path is identical either way.
type Link struct {
	eng      *sim.Engine
	boundary *sim.Boundary
	rate     units.Rate
	delay    time.Duration
	to       Node
	// deliver is the arrival callback, bound once at construction so
	// propagating a packet schedules no per-packet closure (multiple
	// packets can be in flight, so the packet itself rides in the event
	// arg rather than a field).
	deliver func(any)
}

// NewLink returns a link delivering packets to node "to" with the given
// capacity and one-way propagation delay.
func NewLink(eng *sim.Engine, rate units.Rate, delay time.Duration, to Node) *Link {
	l := &Link{eng: eng, rate: rate, delay: delay, to: to}
	l.deliver = func(arg any) { l.to.Receive(arg.(*pkt.Packet)) }
	return l
}

// NewBoundaryLink returns a cross-shard link: deliveries execute on the
// boundary's destination shard, one boundary delay after the send. The
// propagation delay is the boundary's (they are registered together so
// the coordinator's lookahead bound covers this link).
func NewBoundaryLink(b *sim.Boundary, rate units.Rate, to Node) *Link {
	l := &Link{boundary: b, rate: rate, delay: b.Delay(), to: to}
	l.deliver = func(arg any) { l.to.Receive(arg.(*pkt.Packet)) }
	return l
}

// Rate returns the link capacity.
func (l *Link) Rate() units.Rate { return l.rate }

// Delay returns the one-way propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// To returns the receiving node.
func (l *Link) To() Node { return l.to }

// Deliver propagates p to the far end. The caller must already have
// charged serialization time (ports do this while holding the
// transmitter busy).
func (l *Link) Deliver(p *pkt.Packet) {
	if l.boundary != nil {
		l.boundary.Send(l.deliver, p)
		return
	}
	l.eng.ScheduleCall(l.delay, l.deliver, p)
}
