package netsim

import (
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// Link is a unidirectional point-to-point link. Serialization time is
// charged by the transmitting Port (which owns the link and stays busy
// for size/rate); the link itself adds the propagation delay. A
// bidirectional cable is modeled as two Links.
//
// A link is either local (both ends on one engine; arrivals are
// scheduled directly) or a boundary link (the ends live on different
// shards of a sim.Coordinator; arrivals cross via the shard boundary's
// deterministic merge). The send path is identical either way.
//
// The struct is deliberately closure-free and 48 bytes: at fat-tree
// k=32 scale the fabric holds ~49k links, and each lives embedded in
// its owning Port's slab slot (see Arena). Delivery rides the packet
// itself — Deliver stamps the link into the packet's hop field and
// schedules the shared linkArrive trampoline, so propagating a packet
// allocates nothing and links need no per-link callback.
type Link struct {
	// eng is the engine arrivals (and the owning port's timers) are
	// scheduled on. For a boundary link this is the *sending* shard's
	// engine: the receiving side is reached through boundary instead.
	eng      *sim.Engine
	boundary *sim.Boundary
	rate     units.Rate
	delay    time.Duration
	to       Node
}

// LocalLink returns a link value delivering packets to node "to" with
// the given capacity and one-way propagation delay. Use NewLink when a
// heap pointer is wanted; builders that embed links in arena slots use
// the value form directly.
func LocalLink(eng *sim.Engine, rate units.Rate, delay time.Duration, to Node) Link {
	return Link{eng: eng, rate: rate, delay: delay, to: to}
}

// BoundaryLink returns a cross-shard link value: deliveries execute on
// the boundary's destination shard, one boundary delay after the send.
// The propagation delay is the boundary's (they are registered together
// so the coordinator's lookahead bound covers this link).
func BoundaryLink(b *sim.Boundary, rate units.Rate, to Node) Link {
	return Link{eng: b.SourceEngine(), boundary: b, rate: rate, delay: b.Delay(), to: to}
}

// NewLink returns a heap-allocated local link (see LocalLink).
func NewLink(eng *sim.Engine, rate units.Rate, delay time.Duration, to Node) *Link {
	l := LocalLink(eng, rate, delay, to)
	return &l
}

// NewBoundaryLink returns a heap-allocated cross-shard link (see
// BoundaryLink).
func NewBoundaryLink(b *sim.Boundary, rate units.Rate, to Node) *Link {
	l := BoundaryLink(b, rate, to)
	return &l
}

// Rate returns the link capacity.
func (l *Link) Rate() units.Rate { return l.rate }

// Delay returns the one-way propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// To returns the receiving node.
func (l *Link) To() Node { return l.to }

// linkArrive completes a propagation: the packet carries its link in
// the hop field, so one package-level trampoline serves every link.
func linkArrive(arg any) {
	p := arg.(*pkt.Packet)
	p.TakeHop().(*Link).to.Receive(p)
}

// Deliver propagates p to the far end. The caller must already have
// charged serialization time (ports do this while holding the
// transmitter busy).
func (l *Link) Deliver(p *pkt.Packet) {
	p.SetHop(l)
	if l.boundary != nil {
		l.boundary.Send(linkArrive, p)
		return
	}
	l.eng.ScheduleCall(l.delay, linkArrive, p)
}
