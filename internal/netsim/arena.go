package netsim

import (
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
)

// Arena slab-allocates a fabric's node state. Building a k=32 fat-tree
// port-by-port costs ~460k heap objects; with an arena the same fabric
// is a handful of slabs — ports (each with its link embedded), hosts,
// switches, and the switches' port-reference tables — cut down to one
// allocation per kind. Pointers into the slabs are stable for the
// arena's lifetime: the slabs never grow, and requests beyond a slab's
// capacity fall back to individual heap allocations (fail-soft, counted
// in Overflow) rather than reallocating.
//
// An arena is single-threaded during construction. In sharded fabrics
// each shard gets its own arena so that two shards' hot port state
// never shares a cache line (the slabs are distinct heap blocks).
//
// Reset reclaims the slabs for building a replacement fabric; the
// caller must guarantee nothing references the old one. Packets are
// NOT arena state — they stay on the global pkt pool, whose lifecycle
// (and poison-debug mode) is orthogonal to topology memory.
type Arena struct {
	ports    []Port
	hosts    []Host
	switches []Switch
	portRefs []*Port

	overflow int
}

// ArenaSpec reserves slab capacities: the exact object counts of the
// fabric about to be built. PortRefs is the total switch port-table
// capacity (sum over switches of their port count).
type ArenaSpec struct {
	Ports    int
	Hosts    int
	Switches int
	PortRefs int
}

// NewArena reserves slabs per the spec.
func NewArena(spec ArenaSpec) *Arena {
	return &Arena{
		ports:    make([]Port, 0, spec.Ports),
		hosts:    make([]Host, 0, spec.Hosts),
		switches: make([]Switch, 0, spec.Switches),
		portRefs: make([]*Port, 0, spec.PortRefs),
	}
}

// NewPort carves a port from the slab (or falls back to the heap when
// the reservation is exhausted) and initializes it like NewPort. The
// link is embedded by value.
func (a *Arena) NewPort(link Link, cfg PortConfig) *Port {
	var p *Port
	if len(a.ports) < cap(a.ports) {
		a.ports = a.ports[:len(a.ports)+1]
		p = &a.ports[len(a.ports)-1]
	} else {
		a.overflow++
		p = &Port{}
	}
	p.init(link, cfg)
	return p
}

// NewHost carves a host.
func (a *Arena) NewHost(eng *sim.Engine, id pkt.NodeID) *Host {
	if len(a.hosts) < cap(a.hosts) {
		a.hosts = a.hosts[:len(a.hosts)+1]
		h := &a.hosts[len(a.hosts)-1]
		h.eng = eng
		h.id = id
		return h
	}
	a.overflow++
	return NewHost(eng, id)
}

// NewSwitch carves a switch whose port table (capacity portCap) is cut
// from the shared reference slab. The three-index slice expression caps
// the table so an over-AddPort appends into a fresh heap slice instead
// of clobbering the next switch's entries.
func (a *Arena) NewSwitch(eng *sim.Engine, id pkt.NodeID, portCap int) *Switch {
	var s *Switch
	if len(a.switches) < cap(a.switches) {
		a.switches = a.switches[:len(a.switches)+1]
		s = &a.switches[len(a.switches)-1]
		s.eng = eng
		s.id = id
	} else {
		a.overflow++
		s = NewSwitch(eng, id)
	}
	if n := len(a.portRefs); n+portCap <= cap(a.portRefs) {
		a.portRefs = a.portRefs[:n+portCap]
		s.ports = a.portRefs[n : n : n+portCap]
	}
	return s
}

// Overflow reports how many objects were requested beyond the reserved
// capacities (0 for a correctly sized spec).
func (a *Arena) Overflow() int { return a.overflow }

// Live reports how many objects of each kind have been carved.
func (a *Arena) Live() ArenaSpec {
	return ArenaSpec{
		Ports:    len(a.ports),
		Hosts:    len(a.hosts),
		Switches: len(a.switches),
		PortRefs: len(a.portRefs),
	}
}

// Reset zeroes the carved prefix of every slab and makes the full
// capacity available again. Only valid once nothing references the
// previous fabric; the zeroing drops the old object graph (schedulers,
// queued packets, handlers) so it can be collected even while the
// arena itself stays alive.
func (a *Arena) Reset() {
	clear(a.ports)
	clear(a.hosts)
	clear(a.switches)
	clear(a.portRefs)
	a.ports = a.ports[:0]
	a.hosts = a.hosts[:0]
	a.switches = a.switches[:0]
	a.portRefs = a.portRefs[:0]
	a.overflow = 0
}
