package netsim

import (
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
)

// Handler consumes packets delivered to a host. Transport endpoints
// (DCTCP senders and receivers) implement it.
type Handler interface {
	Handle(p *pkt.Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *pkt.Packet)

// Handle implements Handler.
func (f HandlerFunc) Handle(p *pkt.Packet) { f(p) }

// Host is an end system: an outgoing NIC port plus a per-flow demux of
// incoming packets to transport endpoints. The handler map is allocated
// on first Attach — at fabric scale most hosts are built long before
// (or without ever) carrying flows, and an eager map per host is the
// largest single slice of pure build garbage.
type Host struct {
	eng      *sim.Engine
	nic      *Port
	handlers map[pkt.FlowID]Handler
	rxBytes  int64
	id       pkt.NodeID

	rxPackets        uint32
	unclaimedPackets uint32
}

var _ Node = (*Host)(nil)

// NewHost returns a host with no NIC; call AttachNIC before sending.
func NewHost(eng *sim.Engine, id pkt.NodeID) *Host {
	return &Host{id: id, eng: eng}
}

// AttachNIC connects the host's outgoing link through a FIFO NIC port
// and returns that port (useful for taps).
func (h *Host) AttachNIC(link *Link) *Port {
	h.nic = NewPort(h.eng, link, PortConfig{Sched: sched.NewFIFO()})
	return h.nic
}

// AttachNICPort installs an already-built port (typically an arena
// slot) as the host's NIC and returns it.
func (h *Host) AttachNICPort(p *Port) *Port {
	h.nic = p
	return p
}

// NodeID implements Node.
func (h *Host) NodeID() pkt.NodeID { return h.id }

// Engine returns the engine driving this host. In a sharded topology
// this is the host's shard engine; transport endpoints and flow-start
// scheduling must use it rather than some global engine.
func (h *Host) Engine() *sim.Engine { return h.eng }

// NIC returns the host's NIC port (nil before AttachNIC).
func (h *Host) NIC() *Port { return h.nic }

// Send transmits a packet out of the host's NIC. Packets sent before a
// NIC is attached are dropped silently (counted as unclaimed and
// released back to the packet pool).
func (h *Host) Send(p *pkt.Packet) {
	if h.nic == nil {
		h.unclaimedPackets++
		pkt.Release(p)
		return
	}
	h.nic.Send(p)
}

// Receive implements Node: packets are dispatched to the handler
// registered for their flow, which takes ownership (transport endpoints
// release consumed packets back to the pool). Packets with no handler
// are terminal here and released.
func (h *Host) Receive(p *pkt.Packet) {
	h.rxPackets++
	h.rxBytes += int64(p.Size)
	if hd, ok := h.handlers[p.Flow]; ok {
		hd.Handle(p)
		return
	}
	h.unclaimedPackets++
	pkt.Release(p)
}

// Attach registers a handler for a flow's packets arriving at this host.
func (h *Host) Attach(flow pkt.FlowID, hd Handler) {
	if h.handlers == nil {
		h.handlers = make(map[pkt.FlowID]Handler)
	}
	h.handlers[flow] = hd
}

// Detach removes a flow's handler.
func (h *Host) Detach(flow pkt.FlowID) {
	delete(h.handlers, flow)
}

// RxBytes returns the total bytes received by the host.
func (h *Host) RxBytes() int64 { return h.rxBytes }

// RxPackets returns the total packets received by the host.
func (h *Host) RxPackets() int64 { return int64(h.rxPackets) }

// UnclaimedPackets counts packets that arrived with no registered
// handler (or sends before a NIC existed) — normally zero.
func (h *Host) UnclaimedPackets() int64 { return int64(h.unclaimedPackets) }
