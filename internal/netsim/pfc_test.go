package netsim

import (
	"testing"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

func TestPortPauseResume(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	port := NewPort(eng, NewLink(eng, 10*units.Gbps, 0, dst), PortConfig{Sched: sched.NewFIFO()})
	port.Pause()
	if !port.IsPaused() {
		t.Fatal("IsPaused")
	}
	port.Send(dataPkt(1, units.MTU))
	eng.Run()
	if len(dst.packets) != 0 {
		t.Fatal("paused port transmitted")
	}
	port.Resume()
	port.Resume() // idempotent
	eng.Run()
	if len(dst.packets) != 1 {
		t.Fatal("resume did not restart the transmitter")
	}
}

// pfcPair builds host A -> switch S1 -> switch S2 -> sink, with PFC
// guarding S2 and pausing S1's transmitter. S2's egress is slow so it
// congests.
func TestPFCPreventsLoss(t *testing.T) {
	eng := sim.NewEngine()
	sinkNode := &sink{id: 9, eng: eng}

	s2 := NewSwitch(eng, 2)
	// Slow egress, tiny buffer: without PFC this drops heavily.
	egress := NewPort(eng, NewLink(eng, 100*units.Mbps, 0, sinkNode),
		PortConfig{Sched: sched.NewFIFO(), BufferBytes: units.Packets(10)})
	s2.AddPort(egress)
	s2.SetRoute(func(*pkt.Packet) int { return 0 })

	s1 := NewSwitch(eng, 1)
	toS2 := NewPort(eng, NewLink(eng, 10*units.Gbps, time.Microsecond, s2),
		PortConfig{Sched: sched.NewFIFO()})
	s1.AddPort(toS2)
	s1.SetRoute(func(*pkt.Packet) int { return 0 })

	fc := NewPFC(eng, units.Packets(6), units.Packets(3))
	fc.Guard(s2)
	fc.Upstream(toS2)

	for i := 0; i < 200; i++ {
		s1.Receive(dataPkt(uint64(i), units.MTU))
	}
	eng.Run()

	if egress.DropPackets() != 0 {
		t.Fatalf("PFC fabric dropped %d packets, want 0 (lossless)", egress.DropPackets())
	}
	if fc.Pauses() == 0 {
		t.Fatal("expected pause events")
	}
	if fc.Paused() {
		t.Fatal("drained fabric should be unpaused")
	}
	if len(sinkNode.packets) != 200 {
		t.Fatalf("delivered %d/200", len(sinkNode.packets))
	}
}

func TestWithoutPFCSameScenarioDrops(t *testing.T) {
	eng := sim.NewEngine()
	sinkNode := &sink{id: 9, eng: eng}
	s2 := NewSwitch(eng, 2)
	egress := NewPort(eng, NewLink(eng, 100*units.Mbps, 0, sinkNode),
		PortConfig{Sched: sched.NewFIFO(), BufferBytes: units.Packets(10)})
	s2.AddPort(egress)
	s2.SetRoute(func(*pkt.Packet) int { return 0 })
	s1 := NewSwitch(eng, 1)
	s1.AddPort(NewPort(eng, NewLink(eng, 10*units.Gbps, time.Microsecond, s2),
		PortConfig{Sched: sched.NewFIFO()}))
	s1.SetRoute(func(*pkt.Packet) int { return 0 })
	for i := 0; i < 200; i++ {
		s1.Receive(dataPkt(uint64(i), units.MTU))
	}
	eng.Run()
	if egress.DropPackets() == 0 {
		t.Fatal("control run should drop without PFC")
	}
}

// TestPFCHeadOfLineBlocking: a victim flow to an idle destination shares
// the paused upstream port with the congested flow — PAUSE stalls both.
// This is the classic PFC pathology that motivates end-to-end ECN
// control (DCQCN) on top of lossless fabrics.
func TestPFCHeadOfLineBlocking(t *testing.T) {
	eng := sim.NewEngine()
	slowSink := &sink{id: 8, eng: eng}
	fastSink := &sink{id: 9, eng: eng}

	s2 := NewSwitch(eng, 2)
	slowEgress := NewPort(eng, NewLink(eng, 50*units.Mbps, 0, slowSink),
		PortConfig{Sched: sched.NewFIFO(), BufferBytes: units.Packets(50)})
	fastEgress := NewPort(eng, NewLink(eng, 10*units.Gbps, 0, fastSink),
		PortConfig{Sched: sched.NewFIFO()})
	s2.AddPort(slowEgress)
	s2.AddPort(fastEgress)
	s2.SetRoute(func(p *pkt.Packet) int {
		if p.Dst == 8 {
			return 0
		}
		return 1
	})

	s1 := NewSwitch(eng, 1)
	toS2 := NewPort(eng, NewLink(eng, 10*units.Gbps, time.Microsecond, s2),
		PortConfig{Sched: sched.NewFIFO()})
	s1.AddPort(toS2)
	s1.SetRoute(func(*pkt.Packet) int { return 0 })

	fc := NewPFC(eng, units.Packets(6), units.Packets(3))
	fc.Guard(s2)
	fc.Upstream(toS2)

	// Interleave packets for the slow and fast destinations.
	for i := 0; i < 100; i++ {
		p := dataPkt(uint64(i), units.MTU)
		if i%2 == 0 {
			p.Dst = 8
		} else {
			p.Dst = 9
		}
		s1.Receive(p)
	}
	// Victim packets to the idle fast sink are stuck behind the pause:
	// after 1ms, far fewer than 50 have arrived even though their own
	// path is idle.
	eng.RunUntil(time.Millisecond)
	if got := len(fastSink.packets); got >= 50 {
		t.Fatalf("no head-of-line blocking observed: %d/50 victim packets through", got)
	}
	eng.Run()
	if len(fastSink.packets) != 50 || len(slowSink.packets) != 50 {
		t.Fatalf("eventual delivery broken: %d/%d", len(fastSink.packets), len(slowSink.packets))
	}
}
