package netsim

// SharedBuffer models the shared packet memory of a commodity switch
// with the classic Dynamic Threshold (DT) admission policy (Choudhury &
// Hahne; the policy behind the paper's reference [13]): a port may only
// buffer up to
//
//	alpha x (capacity - used)
//
// bytes, so a lightly loaded pool grants large per-port bursts while a
// crowded pool squeezes every port's share. Ports plug it in through
// PortConfig.Shared; admission combines the DT threshold with the hard
// pool capacity.
type SharedBuffer struct {
	capacity int
	used     int
	alpha    float64

	rejects int64
}

// NewSharedBuffer returns a pool of the given byte capacity with DT
// parameter alpha (commodity defaults are around 1.0; alpha <= 0 is
// treated as 1).
func NewSharedBuffer(capacity int, alpha float64) *SharedBuffer {
	if alpha <= 0 {
		alpha = 1
	}
	return &SharedBuffer{capacity: capacity, alpha: alpha}
}

// Admit reports whether a packet of size bytes may be buffered by a
// port currently holding portBytes, and reserves the space when it may.
func (b *SharedBuffer) Admit(portBytes, size int) bool {
	if b.used+size > b.capacity {
		b.rejects++
		return false
	}
	threshold := b.alpha * float64(b.capacity-b.used)
	if float64(portBytes+size) > threshold {
		b.rejects++
		return false
	}
	b.used += size
	return true
}

// Release returns size bytes to the pool (called at dequeue).
func (b *SharedBuffer) Release(size int) {
	b.used -= size
	if b.used < 0 {
		b.used = 0
	}
}

// Used returns the occupied bytes.
func (b *SharedBuffer) Used() int { return b.used }

// Capacity returns the pool capacity in bytes.
func (b *SharedBuffer) Capacity() int { return b.capacity }

// Rejects counts admission failures.
func (b *SharedBuffer) Rejects() int64 { return b.rejects }

// Threshold returns the current per-port DT limit in bytes.
func (b *SharedBuffer) Threshold() int {
	return int(b.alpha * float64(b.capacity-b.used))
}
