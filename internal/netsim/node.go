// Package netsim is the packet-level network substrate: unidirectional
// links with serialization and propagation delay, output-queued switch
// ports with multi-queue schedulers and pluggable ECN markers, hosts
// that demultiplex packets to transport endpoints, and switches with
// pluggable routing.
//
// Together with internal/sim it plays the role NS-3 plays in the paper's
// evaluation (see DESIGN.md for the substitution argument).
package netsim

import "pmsb/internal/pkt"

// Node is anything that can terminate a link: a host or a switch.
type Node interface {
	// NodeID returns the node's topology-unique identifier.
	NodeID() pkt.NodeID
	// Receive handles a packet arriving over a link.
	Receive(p *pkt.Packet)
}
