package netsim

import (
	"testing"

	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

// arenaSpec4 is a small but full-shaped reservation: 4 ports, 2 hosts,
// 2 switches whose port tables take 2 entries each.
func arenaSpec4() ArenaSpec {
	return ArenaSpec{Ports: 4, Hosts: 2, Switches: 2, PortRefs: 4}
}

// An exactly-sized spec carves with zero overflow and Live tracking the
// carve counts; requests beyond the reservation fall back to the heap,
// are counted, and still return working objects.
func TestArenaCarveAndOverflow(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArena(arenaSpec4())
	sink := releaseSink{}

	ports := make([]*Port, 0, 4)
	for i := 0; i < 4; i++ {
		ports = append(ports, a.NewPort(
			LocalLink(eng, 100*units.Gbps, 0, sink),
			PortConfig{Sched: sched.NewFIFO()}))
	}
	hosts := []*Host{a.NewHost(eng, 1), a.NewHost(eng, 2)}
	sw1 := a.NewSwitch(eng, 100, 2)
	sw2 := a.NewSwitch(eng, 101, 2)
	if got := a.Overflow(); got != 0 {
		t.Fatalf("overflow = %d after exactly-sized carve, want 0", got)
	}
	if live := a.Live(); live != (ArenaSpec{Ports: 4, Hosts: 2, Switches: 2, PortRefs: 4}) {
		t.Fatalf("Live() = %+v, want the full spec", live)
	}

	// Over-carve one of each kind: fail-soft heap fallback, counted.
	extraPort := a.NewPort(LocalLink(eng, 100*units.Gbps, 0, sink), PortConfig{Sched: sched.NewFIFO()})
	extraHost := a.NewHost(eng, 3)
	extraSw := a.NewSwitch(eng, 102, 2)
	if got := a.Overflow(); got != 3 {
		t.Fatalf("overflow = %d after 3 over-carves, want 3", got)
	}
	if extraPort == nil || extraHost == nil || extraSw == nil {
		t.Fatal("over-carved objects must still be constructed")
	}

	// Carved and overflowed ports both forward packets.
	for _, p := range append(ports, extraPort) {
		q := pkt.Get()
		q.Size = units.MTU
		p.Send(q)
	}
	eng.Run()
	for i, p := range append(ports, extraPort) {
		if p.TxPackets() != 1 {
			t.Fatalf("port %d forwarded %d packets, want 1", i, p.TxPackets())
		}
	}
	_ = hosts
	if sw1.NumPorts() != 0 || sw2.NumPorts() != 0 {
		t.Fatal("fresh switches must start with empty port tables")
	}
}

// Slab pointers must stay stable as later objects are carved — the
// builders hand out port/host pointers long before the slab fills.
func TestArenaPointerStability(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArena(ArenaSpec{Ports: 8})
	first := a.NewPort(LocalLink(eng, 100*units.Gbps, 0, releaseSink{}),
		PortConfig{Sched: sched.NewFIFO(), BufferBytes: 12345})
	for i := 0; i < 7; i++ {
		a.NewPort(LocalLink(eng, 100*units.Gbps, 0, releaseSink{}),
			PortConfig{Sched: sched.NewFIFO()})
	}
	if first != &a.ports[0] {
		t.Fatal("first carved port moved as the slab filled")
	}
	if first.bufferBytes != 12345 {
		t.Fatalf("first port's config clobbered: bufferBytes = %d", first.bufferBytes)
	}
}

// A switch's arena-cut port table is capped: adding beyond the declared
// capacity must spill to a fresh heap slice, not clobber the next
// switch's entries in the shared reference slab.
func TestArenaSwitchPortTableCap(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArena(ArenaSpec{Ports: 8, Switches: 2, PortRefs: 4})
	mkPort := func() *Port {
		return a.NewPort(LocalLink(eng, 100*units.Gbps, 0, releaseSink{}),
			PortConfig{Sched: sched.NewFIFO()})
	}
	sw1 := a.NewSwitch(eng, 100, 2)
	sw2 := a.NewSwitch(eng, 101, 2)
	sw2first := mkPort()
	sw2.AddPort(sw2first)
	sw1.AddPort(mkPort())
	sw1.AddPort(mkPort())
	sw1.AddPort(mkPort()) // beyond sw1's declared capacity
	if sw1.NumPorts() != 3 {
		t.Fatalf("sw1 ports = %d, want 3", sw1.NumPorts())
	}
	if sw2.NumPorts() != 1 || sw2.Port(0) != sw2first {
		t.Fatalf("sw1's over-add clobbered sw2's port table")
	}
}

// Reset must make the whole reservation carvable again with zero
// overflow, and the zeroing must actually drop the old objects' state.
func TestArenaResetReuse(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArena(arenaSpec4())
	carveAll := func() []*Port {
		var ports []*Port
		for i := 0; i < 4; i++ {
			ports = append(ports, a.NewPort(
				LocalLink(eng, 100*units.Gbps, 0, releaseSink{}),
				PortConfig{Sched: sched.NewFIFO()}))
		}
		a.NewHost(eng, 1)
		a.NewHost(eng, 2)
		a.NewSwitch(eng, 100, 2)
		a.NewSwitch(eng, 101, 2)
		return ports
	}
	ports := carveAll()
	a.NewHost(eng, 9) // push into overflow
	q := pkt.Get()
	q.Size = units.MTU
	ports[0].Send(q)
	eng.Run()
	if ports[0].TxPackets() != 1 {
		t.Fatal("warm-up packet not forwarded")
	}

	a.Reset()
	if a.Overflow() != 0 {
		t.Fatalf("overflow = %d after Reset, want 0", a.Overflow())
	}
	if live := a.Live(); live != (ArenaSpec{}) {
		t.Fatalf("Live() = %+v after Reset, want zero", live)
	}
	ports = carveAll()
	if a.Overflow() != 0 {
		t.Fatalf("overflow = %d on the second generation, want 0", a.Overflow())
	}
	// The recarved port starts from zeroed state, not the first
	// generation's counters.
	if ports[0].TxPackets() != 0 {
		t.Fatalf("recarved port inherited TxPackets = %d", ports[0].TxPackets())
	}
	q = pkt.Get()
	q.Size = units.MTU
	ports[0].Send(q)
	eng.Run()
	if ports[0].TxPackets() != 1 {
		t.Fatal("second-generation port did not forward")
	}
}

// Packets are pool state, not arena state: with the pool's poison-debug
// mode on, traffic through arena-carved ports must release cleanly, and
// an arena Reset must not disturb the pool's lifecycle (the two are
// orthogonal by design).
func TestArenaPoolDebugInterplay(t *testing.T) {
	pkt.SetPoolDebug(true)
	defer pkt.SetPoolDebug(false)

	eng := sim.NewEngine()
	a := NewArena(ArenaSpec{Ports: 1})
	port := a.NewPort(LocalLink(eng, 100*units.Gbps, 0, releaseSink{}),
		PortConfig{Sched: sched.NewFIFO()})
	for i := 0; i < 64; i++ {
		q := pkt.Get()
		q.ID = uint64(i)
		q.Size = units.MTU
		port.Send(q)
	}
	eng.Run()
	if port.TxPackets() != 64 {
		t.Fatalf("forwarded %d packets under pool debug, want 64", port.TxPackets())
	}

	a.Reset()
	// The pool survives the arena generation: a fresh Get is clean even
	// though every record was poison-released through the dead fabric.
	q := pkt.Get()
	if q.Size != 0 || q.ID != 0 {
		t.Fatalf("pool returned dirty packet after arena reset: %+v", q)
	}
	pkt.Release(q)
}
