package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

func TestSharedBufferDTAdmission(t *testing.T) {
	b := NewSharedBuffer(units.Packets(100), 1)
	// Empty pool: threshold = full capacity.
	if b.Threshold() != units.Packets(100) {
		t.Fatalf("empty threshold = %d", b.Threshold())
	}
	if !b.Admit(0, units.MTU) {
		t.Fatal("first packet must be admitted")
	}
	if b.Used() != units.MTU {
		t.Fatalf("used = %d", b.Used())
	}
	b.Release(units.MTU)
	if b.Used() != 0 {
		t.Fatalf("used after release = %d", b.Used())
	}
	// Over-release clamps at zero.
	b.Release(units.MTU)
	if b.Used() != 0 {
		t.Fatal("over-release must clamp at 0")
	}
}

func TestSharedBufferSqueezesBusyPort(t *testing.T) {
	b := NewSharedBuffer(units.Packets(100), 1)
	// Fill 60 packets from "elsewhere".
	if !b.Admit(0, units.Packets(60)) {
		t.Fatal("bulk admit failed")
	}
	// DT threshold is now 40 packets: a port already holding 40 cannot
	// buffer more.
	if b.Admit(units.Packets(40), units.MTU) {
		t.Fatal("DT must reject a port at its shrunken threshold")
	}
	// But a lightly loaded port still gets in.
	if !b.Admit(0, units.MTU) {
		t.Fatal("lightly loaded port must still be admitted")
	}
	if b.Rejects() != 1 {
		t.Fatalf("rejects = %d, want 1", b.Rejects())
	}
}

func TestSharedBufferHardCapacity(t *testing.T) {
	b := NewSharedBuffer(units.Packets(2), 100) // huge alpha: only capacity binds
	if !b.Admit(0, units.MTU) || !b.Admit(0, units.MTU) {
		t.Fatal("capacity admits two packets")
	}
	if b.Admit(0, units.MTU) {
		t.Fatal("pool over capacity must reject")
	}
}

func TestSharedBufferDefaultAlpha(t *testing.T) {
	b := NewSharedBuffer(1000, 0)
	if b.Threshold() != 1000 {
		t.Fatal("alpha <= 0 should behave as 1")
	}
}

func TestPortWithSharedBuffer(t *testing.T) {
	eng := sim.NewEngine()
	pool := NewSharedBuffer(3*units.MTU, 10)
	dst := &sink{id: 2, eng: eng}
	// Slow link so packets accumulate.
	link := NewLink(eng, 100*units.Mbps, 0, dst)
	port := NewPort(eng, link, PortConfig{Sched: sched.NewFIFO(), Shared: pool})

	for i := 0; i < 6; i++ {
		port.Send(dataPkt(uint64(i), units.MTU))
	}
	// One packet is in transmission (released from the pool), three are
	// pooled, the rest dropped.
	if pool.Used() != 3*units.MTU {
		t.Fatalf("pool used = %d, want %d", pool.Used(), 3*units.MTU)
	}
	if port.DropPackets() != 2 {
		t.Fatalf("drops = %d, want 2", port.DropPackets())
	}
	eng.Run()
	if pool.Used() != 0 {
		t.Fatalf("pool after drain = %d", pool.Used())
	}
	if len(dst.packets) != 4 {
		t.Fatalf("delivered = %d, want 4", len(dst.packets))
	}
}

func TestTwoPortsShareDTPool(t *testing.T) {
	// A congested port must not starve a second port sharing the pool:
	// DT always leaves headroom for lightly loaded ports.
	eng := sim.NewEngine()
	pool := NewSharedBuffer(units.Packets(20), 1)
	dstA := &sink{id: 2, eng: eng}
	dstB := &sink{id: 3, eng: eng}
	slow := NewLink(eng, 10*units.Mbps, 0, dstA)
	fast := NewLink(eng, 10*units.Gbps, 0, dstB)
	portA := NewPort(eng, slow, PortConfig{Sched: sched.NewFIFO(), Shared: pool})
	portB := NewPort(eng, fast, PortConfig{Sched: sched.NewFIFO(), Shared: pool})

	// Flood the slow port.
	for i := 0; i < 100; i++ {
		portA.Send(dataPkt(uint64(i), units.MTU))
	}
	if pool.Used() >= pool.Capacity() {
		t.Fatal("DT should stop the hog before the pool is full")
	}
	// The fast port must still be able to forward.
	portB.Send(dataPkt(1000, units.MTU))
	eng.RunUntil(10 * time.Millisecond)
	if len(dstB.packets) != 1 {
		t.Fatal("second port starved by the shared pool")
	}
}

// Drop-heavy drain: when far more traffic arrives than the pool can
// hold, every admitted byte must eventually be released — Admit
// reserving on rejected packets (or Release double-counting) would
// leave ghost bytes that permanently shrink every port's DT threshold.
func TestSharedBufferAccountingAfterDropHeavyDrain(t *testing.T) {
	eng := sim.NewEngine()
	pool := NewSharedBuffer(units.Packets(8), 0.5)
	dstA := &sink{id: 2, eng: eng}
	dstB := &sink{id: 3, eng: eng}
	portA := NewPort(eng, NewLink(eng, 100*units.Mbps, 0, dstA),
		PortConfig{Sched: sched.NewFIFO(), Shared: pool})
	portB := NewPort(eng, NewLink(eng, 100*units.Mbps, 0, dstB),
		PortConfig{Sched: sched.NewFIFO(), Shared: pool})

	// Burst far beyond capacity in alternating waves, letting partial
	// drains interleave with fresh floods so Admit sees the pool at many
	// occupancy levels.
	const waves, perWave = 5, 40
	sent := 0
	for w := 0; w < waves; w++ {
		at := time.Duration(w) * 500 * time.Microsecond
		for i := 0; i < perWave; i++ {
			id := uint64(sent)
			p := w
			eng.ScheduleAt(at, func() {
				if p%2 == 0 {
					portA.Send(dataPkt(id, units.MTU))
				} else {
					portB.Send(dataPkt(id, units.MTU))
				}
			})
			sent++
		}
	}
	eng.Run()

	if pool.Used() != 0 {
		t.Fatalf("pool used after full drain = %d, want 0", pool.Used())
	}
	if pool.Rejects() == 0 {
		t.Fatal("flood must overrun the pool (test is not drop-heavy)")
	}
	drops := int(portA.DropPackets() + portB.DropPackets())
	if drops == 0 {
		t.Fatal("expected port drops under the flood")
	}
	if delivered := len(dstA.packets) + len(dstB.packets); delivered+drops != sent {
		t.Fatalf("conservation broken: %d delivered + %d dropped != %d sent",
			delivered, drops, sent)
	}
}

// Property: pool accounting never goes negative and never exceeds
// capacity, for any admit/release interleaving.
func TestPropertySharedBufferBounds(t *testing.T) {
	f := func(ops []uint16, alphaRaw uint8) bool {
		alpha := float64(alphaRaw%40)/10 + 0.1
		b := NewSharedBuffer(units.Packets(50), alpha)
		outstanding := 0
		for _, op := range ops {
			size := int(op%3000) + 1
			if op%2 == 0 {
				if b.Admit(0, size) {
					outstanding += size
				}
			} else if outstanding > 0 {
				b.Release(size % (outstanding + 1))
			}
			if b.Used() < 0 || b.Used() > b.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
