package netsim

import (
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
)

// RouteFunc selects the output port index for a packet, or -1 to drop it
// (no route).
type RouteFunc func(p *pkt.Packet) int

// Switch is an output-queued switch: arriving packets are routed to one
// of its ports and queued there. All contention happens at output ports,
// the standard abstraction for datacenter switch models.
type Switch struct {
	id    pkt.NodeID
	eng   *sim.Engine
	ports []*Port
	route RouteFunc

	routeDrops int64
}

var _ Node = (*Switch)(nil)

// NewSwitch returns a switch with no ports and no routes.
func NewSwitch(eng *sim.Engine, id pkt.NodeID) *Switch {
	return &Switch{id: id, eng: eng}
}

// NodeID implements Node.
func (s *Switch) NodeID() pkt.NodeID { return s.id }

// AddPort registers an output port and returns its index.
func (s *Switch) AddPort(p *Port) int {
	s.ports = append(s.ports, p)
	return len(s.ports) - 1
}

// Port returns the output port at index i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// NumPorts returns the number of output ports.
func (s *Switch) NumPorts() int { return len(s.ports) }

// SetRoute installs the routing function.
func (s *Switch) SetRoute(fn RouteFunc) { s.route = fn }

// Receive implements Node: route and enqueue at the output port. A
// packet with no route is terminal and returns to the packet pool.
func (s *Switch) Receive(p *pkt.Packet) {
	if s.route == nil {
		s.routeDrops++
		pkt.Release(p)
		return
	}
	i := s.route(p)
	if i < 0 || i >= len(s.ports) {
		s.routeDrops++
		pkt.Release(p)
		return
	}
	s.ports[i].Send(p)
}

// RouteDrops counts packets dropped for lack of a route — normally zero
// in a correctly wired topology.
func (s *Switch) RouteDrops() int64 { return s.routeDrops }

// Observe attaches every current port to the bus, identified by this
// switch's node ID and the port's index. Call after all ports are
// added; a nil bus leaves the ports unobserved.
func (s *Switch) Observe(bus *obs.Bus) {
	for i, p := range s.ports {
		p.Observe(bus, s.id, i)
	}
}
