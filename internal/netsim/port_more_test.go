package netsim

import (
	"testing"
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/units"
)

func TestPortCustomClassifier(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	link := NewLink(eng, 100*units.Mbps, 0, dst)
	port := NewPort(eng, link, PortConfig{
		Sched: sched.NewWFQ([]float64{1, 1}),
		// Classify by packet size instead of Service.
		Classify: func(p *pkt.Packet) int {
			if p.Size > 500 {
				return 1
			}
			return 0
		},
	})
	port.Send(dataPkt(1, 1500)) // queue 1, dequeued immediately
	port.Send(dataPkt(2, 100))  // queue 0
	port.Send(dataPkt(3, 1500)) // queue 1
	if port.QueuePackets(0) != 1 || port.QueuePackets(1) != 1 {
		t.Fatalf("classification wrong: q0=%d q1=%d", port.QueuePackets(0), port.QueuePackets(1))
	}
}

func TestPortDefaultClassifierModulo(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	link := NewLink(eng, 100*units.Mbps, 0, dst)
	port := NewPort(eng, link, PortConfig{Sched: sched.NewWFQ([]float64{1, 1, 1})})
	for service := 0; service < 6; service++ {
		p := dataPkt(uint64(service), units.MTU)
		p.Service = service
		port.Send(p)
	}
	// First packet went straight to the wire; remaining five spread by
	// service % 3: services 1,2,3,4,5 -> queues 1,2,0,1,2.
	if port.QueuePackets(0) != 1 || port.QueuePackets(1) != 2 || port.QueuePackets(2) != 2 {
		t.Fatalf("modulo classification wrong: %d/%d/%d",
			port.QueuePackets(0), port.QueuePackets(1), port.QueuePackets(2))
	}
	// Negative service must not panic and must stay in range.
	neg := dataPkt(99, units.MTU)
	neg.Service = -4
	port.Send(neg)
}

func TestPortViewExposure(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	wfq := sched.NewWFQ([]float64{1, 3})
	port := NewPort(eng, NewLink(eng, 10*units.Gbps, 0, dst), PortConfig{Sched: wfq})
	if port.NumQueues() != 2 {
		t.Fatal("NumQueues")
	}
	if port.Weight(1) != 3 || port.WeightSum() != 4 {
		t.Fatal("weights not exposed")
	}
	if port.LinkRate() != 10*units.Gbps {
		t.Fatal("LinkRate")
	}
	if port.Round() != nil {
		t.Fatal("WFQ port must expose no round info")
	}

	dwrrPort := NewPort(eng, NewLink(eng, 10*units.Gbps, 0, dst), PortConfig{
		Sched: sched.NewDWRR([]float64{1}, units.MTU, sched.WithClock(eng.Now)),
	})
	if dwrrPort.Round() == nil {
		t.Fatal("DWRR port must expose round info")
	}

	eng.Schedule(7*time.Microsecond, func() {})
	eng.Run()
	if port.Now() != 7*time.Microsecond {
		t.Fatal("Now not wired to the engine")
	}
}

func TestPortMultipleTaps(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	port := NewPort(eng, NewLink(eng, 10*units.Gbps, 0, dst), PortConfig{Sched: sched.NewFIFO()})
	var order []string
	port.OnEnqueue(func(*pkt.Packet, int) { order = append(order, "e1") })
	port.OnEnqueue(func(*pkt.Packet, int) { order = append(order, "e2") })
	port.OnDequeue(func(*pkt.Packet, int) { order = append(order, "d1") })
	port.Send(dataPkt(1, units.MTU))
	eng.Run()
	// Taps fire in registration order; dequeue happens via kick after
	// enqueue taps.
	want := []string{"e1", "e2", "d1"}
	if len(order) != len(want) {
		t.Fatalf("taps fired %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("taps fired %v, want %v", order, want)
		}
	}
}

func TestPortDropFnBeforeBuffer(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	port := NewPort(eng, NewLink(eng, 10*units.Gbps, 0, dst), PortConfig{
		Sched:  sched.NewFIFO(),
		DropFn: func(p *pkt.Packet) bool { return p.ID == 7 },
	})
	var drops int
	port.OnDrop(func(p *pkt.Packet, _ int) {
		drops++
		if p.ID != 7 {
			t.Fatalf("wrong packet dropped: %d", p.ID)
		}
	})
	port.Send(dataPkt(7, units.MTU))
	port.Send(dataPkt(8, units.MTU))
	eng.Run()
	if drops != 1 || port.DropPackets() != 1 {
		t.Fatalf("drops = %d/%d", drops, port.DropPackets())
	}
	if len(dst.packets) != 1 || dst.packets[0].ID != 8 {
		t.Fatal("surviving packet not delivered")
	}
}

func TestPortRequiresScheduler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPort without a scheduler must panic")
		}
	}()
	eng := sim.NewEngine()
	NewPort(eng, NewLink(eng, units.Gbps, 0, &sink{}), PortConfig{})
}

func TestMarkerNilMeansNoMarking(t *testing.T) {
	eng := sim.NewEngine()
	dst := &sink{id: 2, eng: eng}
	port := NewPort(eng, NewLink(eng, units.Gbps, 0, dst), PortConfig{Sched: sched.NewFIFO()})
	for i := 0; i < 20; i++ {
		port.Send(dataPkt(uint64(i), units.MTU))
	}
	eng.Run()
	for _, p := range dst.packets {
		if p.CE {
			t.Fatal("nil marker must never mark")
		}
	}
	if port.MarkedPackets() != 0 {
		t.Fatal("MarkedPackets must stay 0 with nil marker")
	}
	_ = ecn.None{} // the explicit no-op marker is equivalent
}
