// Package flowsim is the flow-level fluid fast path: it evolves active
// flows as rates over an engine-free topo.PathGraph instead of moving
// individual packets, trading packet-level fidelity for two to three
// orders of magnitude in wall clock. The packet engine stays the ground
// truth; internal/experiment's calibrate harness runs the same scenario
// (topology + workload + seed) through both and reports the FCT
// percentile error, which is the only license for trusting this model
// at scales the packet engine cannot reach (100k-host fabrics).
//
// The model has three layers (DESIGN.md section 10):
//
//   - Rates: a max-min fair water-filling solve over the path graph's
//     links assigns every active flow its bottleneck share, with a
//     slow-start ramp cap (the DCTCP window doubling, continuous form)
//     bounding young flows. Solves are quantum-coalesced: arrivals,
//     finishes and ramp growth mark the solver dirty, and one solve per
//     quantum re-prices the fabric — the solve count is bounded by
//     simulated-time/quantum, not by the event count, which is what
//     makes 100k-host scenarios tractable.
//   - Fluid queues: each saturated link carries a fluid standing queue
//     relaxing toward the marking scheme's threshold target (the
//     DCTCP sawtooth mean), and draining at line rate when arrivals
//     fall below capacity. Marking schemes — PMSB with selective
//     blindness, MQ-ECN, per-queue static, TCN — are threshold
//     functions on this depth (marking.go). Depth feeds back into flow
//     rates twice: queue delay inflates the effective RTT that paces
//     the slow-start ramp, and overshoot past the threshold throttles
//     non-blind services by the DCTCP alpha cut.
//   - FCT accounting: a flow's completion time is its rate-integral
//     transmission time plus the delivery tail (per-hop propagation,
//     store-and-forward serialization, fluid queue delay) and the ACK
//     return path — the same last-byte-acked semantics the packet
//     transport reports.
//
// Flow events ride the simulation engine's calendar queue (sim.Engine),
// so flowsim composes with the existing run loop, monitors and
// deterministic-replay machinery unchanged.
package flowsim

import (
	"math"
	"sort"
	"time"

	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/units"
	"pmsb/internal/workload"
)

const (
	// alphaGain is the DCTCP alpha EWMA gain g.
	alphaGain = 1.0 / 16
	// utilBusy is the utilization above which a link is treated as
	// saturated (its fluid queue relaxes toward the marking target).
	utilBusy = 0.99
	// finishEps is the residual byte count below which a flow counts as
	// complete (absorbs float integration error).
	finishEps = 1.0
	// rampExpMax clamps the slow-start doubling exponent so the ramp cap
	// stays a finite float long after it stopped binding.
	rampExpMax = 40
)

// Config tunes a flow-level simulation.
type Config struct {
	// Marking is the fluid marking scheme (required).
	Marking Marking
	// Weights are the per-service scheduler weights; services index it
	// modulo its length (default: one service, weight 1).
	Weights []int
	// InitWindow is the initial congestion window in segments
	// (default 16), the slow-start ramp's starting rate.
	InitWindow int
	// NoSlowStart disables the ramp cap: flows jump straight to their
	// max-min share. Used by the closed-form solver tests.
	NoSlowStart bool
	// Quantum is the solver coalescing interval (default BaseRTT/8,
	// clamped to [1us, 100us]). Rates are piecewise constant per
	// quantum, so it bounds both the solve count and the FCT error.
	Quantum time.Duration
	// RelaxRTTs is the fluid queue relaxation time constant in units of
	// the graph's BaseRTT (default 2, the DCTCP sawtooth period scale).
	RelaxRTTs float64
	// OnFinish, when non-nil, receives every completed flow.
	OnFinish func(FlowResult)
}

// FlowResult reports one completed flow.
type FlowResult struct {
	// Index is the flow's position in the Start specs (its flow ID is
	// Index+1, matching transport.FlowIDGen's assignment order).
	Index int
	// Spec is the generating spec.
	Spec workload.FlowSpec
	// FCT is the completion time (start to last byte acked).
	FCT time.Duration
}

// flowRec is one flow's state.
type flowRec struct {
	spec workload.FlowSpec
	// path holds the directed link indices (engine-free routing).
	path [8]int32
	plen int8
	done bool
	// remaining is the unsent byte count at lastT.
	remaining float64
	// rate is the current sending rate in bytes/sec (piecewise constant
	// between solves; -1 marks "unfrozen" during a solve).
	rate float64
	// cap is the slow-start ramp cap for the current solve (scratch).
	cap float64
	// rtt is the effective RTT in seconds (base + fluid queue delays),
	// pacing the ramp.
	rtt float64
	// tail is the flow-constant part of the delivery tail: propagation
	// both ways, store-and-forward MTU serialization downstream, ACK
	// serialization on the return path.
	tail time.Duration
	// lastT is the time remaining was last integrated to.
	lastT time.Duration
	// activeIdx is the flow's slot in the active list (-1 when done).
	activeIdx int32
}

// linkState is one directed link's rate-solver and fluid-queue state.
type linkState struct {
	cap float64 // bytes/sec
	// Fluid state.
	q      float64       // standing queue depth, bytes
	alpha  float64       // DCTCP alpha (marking-overshoot EWMA)
	target float64       // marking target from the last solve
	arr    float64       // aggregate arrival rate from the last solve
	qdelay float64       // q/cap seconds, cached per solve
	seen   time.Duration // last solve that touched this link
	// Solver scratch.
	rem    float64
	nUn    int32
	nFlows int32
	stamp  uint32
	csrPos int32
	busyW  int32
	busyQ  int32
}

// Sim is a flow-level simulation bound to an engine.
type Sim struct {
	eng     *sim.Engine
	cfg     Config
	g       *topo.PathGraph
	quantum time.Duration
	baseRTT float64 // seconds
	relax   float64 // fluid relaxation time constant, seconds
	nsvc    int
	maxRamp float64 // ramp cap clamp, bytes/sec

	flows  []flowRec
	order  []int32 // arrival order (specs sorted by start, stable)
	nextA  int     // next arrival cursor into order
	active []int32

	links  []linkState
	svcCnt []int32 // [link*nsvc + svc] active-flow counts

	touched  []int32
	csrFlows []int32
	heap     []heapEnt
	rampOrd  []int32

	finishQ []finishEnt
	fi      int

	lastSolve   time.Duration
	solveSet    bool
	solveTimer  sim.Timer
	finishSet   bool
	finishTimer sim.Timer
	arrTimer    sim.Timer

	completed int
}

type finishEnt struct {
	t   time.Duration
	idx int32
}

// New binds a flow-level simulation to an engine and a path graph. Flow
// events (arrivals, quantum solves, finishes) are scheduled on eng's
// calendar queue; drive the run with eng.RunUntil as usual.
func New(eng *sim.Engine, g *topo.PathGraph, cfg Config) *Sim {
	if cfg.Marking == nil {
		panic("flowsim: Config.Marking is required")
	}
	if len(cfg.Weights) == 0 {
		cfg.Weights = []int{1}
	}
	if cfg.InitWindow <= 0 {
		cfg.InitWindow = 16
	}
	if cfg.RelaxRTTs <= 0 {
		cfg.RelaxRTTs = 2
	}
	q := cfg.Quantum
	if q <= 0 {
		// Half an RTT keeps roughly two solves per slow-start doubling
		// round (the ramp is the fastest-moving rate input) while
		// bounding FCT error by a fraction of the base RTT.
		q = g.BaseRTT / 2
		if q < time.Microsecond {
			q = time.Microsecond
		}
		if q > 100*time.Microsecond {
			q = 100 * time.Microsecond
		}
	}
	s := &Sim{
		eng:     eng,
		cfg:     cfg,
		g:       g,
		quantum: q,
		baseRTT: g.BaseRTT.Seconds(),
		relax:   cfg.RelaxRTTs * g.BaseRTT.Seconds(),
		nsvc:    len(cfg.Weights),
		links:   make([]linkState, len(g.Links)),
		svcCnt:  make([]int32, len(g.Links)*len(cfg.Weights)),
	}
	var maxCap float64
	for i := range g.Links {
		c := float64(g.Links[i].Rate) / 8
		s.links[i].cap = c
		if c > maxCap {
			maxCap = c
		}
	}
	s.maxRamp = 4 * maxCap
	return s
}

// Quantum returns the solver coalescing interval in effect.
func (s *Sim) Quantum() time.Duration { return s.quantum }

// Completed returns the number of finished flows.
func (s *Sim) Completed() int { return s.completed }

// ActiveFlows returns the number of currently active flows.
func (s *Sim) ActiveFlows() int { return len(s.active) }

// FlowRate returns flow i's current rate in bytes/sec (0 once done).
func (s *Sim) FlowRate(i int) float64 {
	f := &s.flows[i]
	if f.done || f.rate < 0 {
		return 0
	}
	return f.rate
}

// PortDepth returns link l's fluid standing-queue depth in bytes.
func (s *Sim) PortDepth(l int) float64 { return s.links[l].q }

// ServiceDepth returns service svc's weight-proportional share of link
// l's fluid depth — the per-queue occupancy the packet engine's traces
// report per (node, port, queue).
func (s *Sim) ServiceDepth(l, svc int) float64 {
	ls := &s.links[l]
	if ls.busyW <= 0 {
		return 0
	}
	if s.svcCnt[l*s.nsvc+svc%s.nsvc] == 0 {
		return 0
	}
	return ls.q * float64(s.weight(svc)) / float64(ls.busyW)
}

func (s *Sim) weight(svc int) int {
	w := s.cfg.Weights[svc%s.nsvc]
	if w <= 0 {
		w = 1
	}
	return w
}

// Start registers the workload and schedules its arrivals. Flow i gets
// flow ID i+1 — the same IDs transport.FlowIDGen hands the packet
// engine for the identical spec slice, so ECMP path choices agree
// between engines. Call once, before running the engine.
func (s *Sim) Start(specs []workload.FlowSpec) {
	if len(s.flows) > 0 {
		panic("flowsim: Start called twice")
	}
	s.flows = make([]flowRec, len(specs))
	s.order = make([]int32, len(specs))
	for i, spec := range specs {
		f := &s.flows[i]
		f.spec = spec
		f.rate = 0
		f.remaining = float64(spec.Size)
		f.rtt = s.baseRTT
		f.activeIdx = -1
		path := s.g.PathFor(spec.Src, spec.Dst, uint64(i)+1, f.path[:0])
		if len(path) == 0 || len(path) > len(f.path) {
			panic("flowsim: spec path degenerate or longer than the inline path array")
		}
		copy(f.path[:], path)
		f.plen = int8(len(path))
		f.tail = s.deliveryTail(path)
		s.order[i] = int32(i)
	}
	// Arrivals fire in start order; the stable sort keeps spec order as
	// the tiebreak so same-instant arrivals admit deterministically.
	sort.SliceStable(s.order, func(a, b int) bool {
		return s.flows[s.order[a]].spec.Start < s.flows[s.order[b]].spec.Start
	})
	if len(s.order) > 0 {
		s.arrTimer = s.eng.ScheduleCallAt(s.flows[s.order[0]].spec.Start, arriveFn, s)
	}
}

// deliveryTail precomputes the flow-constant delivery latency: the last
// data byte propagates every hop and is store-and-forwarded (one MTU
// serialization) at every hop past the first — the first link's
// serialization is inside the rate integral — and the ACK returns over
// the reverse path (propagation plus its own serialization per hop).
func (s *Sim) deliveryTail(path []int32) time.Duration {
	var tail time.Duration
	for i, li := range path {
		l := s.g.Links[li]
		tail += 2 * l.Delay
		if i > 0 {
			tail += units.Serialization(units.MTU, l.Rate)
		}
		tail += units.Serialization(units.AckSize, l.Rate)
	}
	return tail
}

// arriveFn admits every flow whose start time has come, then
// reschedules itself for the next arrival.
func arriveFn(arg any) {
	s := arg.(*Sim)
	now := s.eng.Now()
	for s.nextA < len(s.order) {
		f := &s.flows[s.order[s.nextA]]
		if f.spec.Start > now {
			break
		}
		s.admit(s.order[s.nextA], now)
		s.nextA++
	}
	if s.nextA < len(s.order) {
		s.arrTimer = s.eng.ScheduleCallAt(s.flows[s.order[s.nextA]].spec.Start, arriveFn, s)
	}
	s.ensureSolve(now)
}

// admit activates a flow. Until the next quantum solve re-prices the
// fabric it sends at the initial-window rate (the packet sender's first
// RTT is cwnd-limited the same way), bounded by its path's capacity.
func (s *Sim) admit(idx int32, now time.Duration) {
	f := &s.flows[idx]
	f.lastT = now
	if s.cfg.NoSlowStart {
		f.rate = 0
	} else {
		r := float64(s.cfg.InitWindow) * units.MSS / s.baseRTT
		for _, li := range f.path[:f.plen] {
			if c := s.links[li].cap; c < r {
				r = c
			}
		}
		f.rate = r
	}
	f.activeIdx = int32(len(s.active))
	s.active = append(s.active, idx)
}

// ensureSolve schedules a quantum-aligned solve if none is pending.
// Arrivals may solve at the current instant (so a NoSlowStart flow gets
// its rate immediately); the running solve chain always advances one
// full quantum.
func (s *Sim) ensureSolve(now time.Duration) {
	s.scheduleSolveAt(boundaryAtOrAfter(now, s.quantum))
}

func (s *Sim) scheduleSolveAt(at time.Duration) {
	if s.solveSet || len(s.active) == 0 {
		return
	}
	s.solveSet = true
	s.solveTimer = s.eng.ScheduleCallAt(at, solveFn, s)
}

func boundaryAtOrAfter(t, q time.Duration) time.Duration {
	at := t.Truncate(q)
	if at < t {
		at += q
	}
	return at
}

func solveFn(arg any) {
	s := arg.(*Sim)
	s.solveSet = false
	now := s.eng.Now()
	s.solve(now)
	s.scheduleSolveAt(boundaryAtOrAfter(now, s.quantum) + s.quantum)
}

// solve is the quantum boundary: integrate transmitted bytes, advance
// the fluid queues, rebuild the link<->flow index and run the max-min
// water-filling, then project finishes up to the next boundary.
func (s *Sim) solve(now time.Duration) {
	// Integrate the interval just ended and reap stragglers whose
	// projected finish the event queue already passed.
	for i := len(s.active) - 1; i >= 0; i-- {
		idx := s.active[i]
		f := &s.flows[idx]
		f.remaining -= f.rate * (now - f.lastT).Seconds()
		f.lastT = now
		if f.remaining <= finishEps {
			s.finishFlow(idx, now)
		}
	}
	s.advanceFluid(now)
	s.buildIndex(now)
	s.prepareRamp(now)
	s.waterfill()
	// Aggregate arrivals per link for the next fluid step: capacity not
	// left over was assigned.
	for _, li := range s.touched {
		l := &s.links[li]
		rem := l.rem
		if rem < 0 {
			rem = 0
		}
		l.arr = l.cap - rem
	}
	s.projectFinishes(now)
	s.lastSolve = now
}

// advanceFluid moves every previously-busy link's fluid queue across
// the elapsed interval: saturated links relax toward the marking
// scheme's threshold target (the DCTCP sawtooth mean), underloaded
// links drain at the spare rate, and alpha tracks overshoot past the
// threshold. It then clears the solver's per-link counts for the
// rebuild that follows.
func (s *Sim) advanceFluid(now time.Duration) {
	dt := (now - s.lastSolve).Seconds()
	for _, li := range s.touched {
		l := &s.links[li]
		if dt > 0 {
			if l.arr >= utilBusy*l.cap && l.target > 0 {
				k := dt / s.relax
				if k > 1 {
					k = 1
				}
				l.q += (l.target - l.q) * k
			} else {
				l.q -= (l.cap - l.arr) * dt
				if l.q < 0 {
					l.q = 0
				}
			}
			// Alpha: EWMA of the overshoot fraction past the threshold,
			// one gain step per RTT.
			over := 0.0
			if l.target > 0 && l.q > l.target {
				over = (l.q - l.target) / l.target
				if over > 1 {
					over = 1
				}
			}
			g := alphaGain * dt / s.baseRTT
			if g > 1 {
				g = 1
			}
			l.alpha += g * (over - l.alpha)
		}
		l.seen = now
		l.arr = 0
		l.nFlows = 0
		l.busyW = 0
		l.busyQ = 0
		base := int(li) * s.nsvc
		for sv := 0; sv < s.nsvc; sv++ {
			s.svcCnt[base+sv] = 0
		}
	}
	s.touched = s.touched[:0]
}

// buildIndex rebuilds the link->flows index (CSR layout) over the
// active set and refreshes each touched link's per-service census,
// marking target and cached queue delay.
func (s *Sim) buildIndex(now time.Duration) {
	// Count pass.
	for _, idx := range s.active {
		f := &s.flows[idx]
		for _, li := range f.path[:f.plen] {
			l := &s.links[li]
			if l.nFlows == 0 {
				s.touched = append(s.touched, li)
				// A link idle since an earlier solve drained at line
				// rate in the meantime.
				if gap := (now - l.seen).Seconds(); gap > 0 {
					l.q -= l.cap * gap
					if l.q < 0 {
						l.q = 0
					}
					l.alpha = 0
				}
				l.seen = now
			}
			l.nFlows++
			s.svcCnt[int(li)*s.nsvc+f.spec.Service%s.nsvc]++
		}
	}
	// Census + CSR offsets.
	total := int32(0)
	for _, li := range s.touched {
		l := &s.links[li]
		base := int(li) * s.nsvc
		for sv := 0; sv < s.nsvc; sv++ {
			if s.svcCnt[base+sv] > 0 {
				l.busyQ++
				l.busyW += int32(s.weight(sv))
			}
		}
		l.target = s.cfg.Marking.PortTarget(int(l.busyW), int(l.busyQ), units.Rate(l.cap*8))
		l.qdelay = l.q / l.cap
		l.rem = l.cap
		l.nUn = l.nFlows
		l.stamp++
		l.csrPos = total
		total += l.nFlows
	}
	if cap(s.csrFlows) < int(total) {
		s.csrFlows = make([]int32, total)
	}
	s.csrFlows = s.csrFlows[:total]
	// Fill pass (csrPos advances; reset below when the solver reads it
	// via the per-link slice start recomputation).
	for _, idx := range s.active {
		f := &s.flows[idx]
		for _, li := range f.path[:f.plen] {
			l := &s.links[li]
			s.csrFlows[l.csrPos] = idx
			l.csrPos++
		}
	}
	for _, li := range s.touched {
		l := &s.links[li]
		l.csrPos -= l.nFlows
	}
}

// prepareRamp computes each active flow's effective RTT (base plus the
// fluid queue delays on its path), its slow-start ramp cap, and the
// marking throttle: links whose fluid depth overshot the threshold cut
// non-blind services by the DCTCP alpha rule — the depth-to-rate
// feedback loop. Flows are then sorted by cap for the water-filling.
func (s *Sim) prepareRamp(now time.Duration) {
	if cap(s.rampOrd) < len(s.active) {
		s.rampOrd = make([]int32, len(s.active))
	}
	s.rampOrd = s.rampOrd[:len(s.active)]
	copy(s.rampOrd, s.active)
	for _, idx := range s.active {
		f := &s.flows[idx]
		f.rate = -1
		if s.cfg.NoSlowStart {
			f.cap = math.Inf(1)
			continue
		}
		rtt := s.baseRTT
		throttle := 1.0
		w := s.weight(f.spec.Service)
		for _, li := range f.path[:f.plen] {
			l := &s.links[li]
			rtt += l.qdelay
			if l.alpha > 0 && l.target > 0 && l.q > l.target {
				qs := l.q * float64(w) / float64(l.busyW)
				if !s.cfg.Marking.Blind(qs, l.q, w, int(l.busyW)) {
					if t := 1 - l.alpha/2; t < throttle {
						throttle = t
					}
				}
			}
		}
		f.rtt = rtt
		exp := (now - f.spec.Start).Seconds() / rtt
		if exp > rampExpMax {
			exp = rampExpMax
		}
		c := float64(s.cfg.InitWindow) * units.MSS / rtt * math.Exp2(exp) * throttle
		if c > s.maxRamp {
			c = s.maxRamp
		}
		f.cap = c
	}
	if !s.cfg.NoSlowStart {
		sort.Slice(s.rampOrd, func(a, b int) bool {
			fa, fb := &s.flows[s.rampOrd[a]], &s.flows[s.rampOrd[b]]
			if fa.cap != fb.cap {
				return fa.cap < fb.cap
			}
			return s.rampOrd[a] < s.rampOrd[b]
		})
	}
}

// projectFinishes collects the flows that complete before the next
// quantum boundary under their just-assigned rates and schedules the
// earliest exactly. Rates only rise as competitors depart, so a
// projected finish is never early by more than the quantum.
func (s *Sim) projectFinishes(now time.Duration) {
	s.finishQ = s.finishQ[:0]
	s.fi = 0
	horizon := now + s.quantum
	for _, idx := range s.active {
		f := &s.flows[idx]
		if f.rate <= 0 {
			continue
		}
		dt := time.Duration(f.remaining / f.rate * 1e9)
		if now+dt <= horizon {
			s.finishQ = append(s.finishQ, finishEnt{t: now + dt, idx: idx})
		}
	}
	sort.Slice(s.finishQ, func(a, b int) bool {
		if s.finishQ[a].t != s.finishQ[b].t {
			return s.finishQ[a].t < s.finishQ[b].t
		}
		return s.finishQ[a].idx < s.finishQ[b].idx
	})
	s.scheduleFinish()
}

func (s *Sim) scheduleFinish() {
	if s.finishSet {
		s.finishTimer.Cancel()
		s.finishSet = false
	}
	if s.fi < len(s.finishQ) {
		s.finishSet = true
		s.finishTimer = s.eng.ScheduleCallAt(s.finishQ[s.fi].t, finishFn, s)
	}
}

func finishFn(arg any) {
	s := arg.(*Sim)
	s.finishSet = false
	now := s.eng.Now()
	for s.fi < len(s.finishQ) && s.finishQ[s.fi].t <= now {
		idx := s.finishQ[s.fi].idx
		s.fi++
		f := &s.flows[idx]
		if f.done {
			continue
		}
		f.remaining -= f.rate * (now - f.lastT).Seconds()
		f.lastT = now
		if f.remaining <= finishEps {
			s.finishFlow(idx, now)
		}
	}
	s.scheduleFinish()
}

// finishFlow completes a flow at its exact transmission-finish instant:
// the FCT adds the delivery tail (propagation, store-and-forward
// serialization, current fluid queue delays) and removes the flow from
// the active set.
func (s *Sim) finishFlow(idx int32, now time.Duration) {
	f := &s.flows[idx]
	f.done = true
	f.rate = 0
	s.completed++
	tail := f.tail
	for _, li := range f.path[:f.plen] {
		l := &s.links[li]
		if l.q > 0 {
			tail += time.Duration(l.q / l.cap * 1e9)
		}
	}
	// Swap-remove from the active list.
	ai := f.activeIdx
	last := s.active[len(s.active)-1]
	s.active[ai] = last
	s.flows[last].activeIdx = ai
	s.active = s.active[:len(s.active)-1]
	f.activeIdx = -1
	if s.cfg.OnFinish != nil {
		s.cfg.OnFinish(FlowResult{
			Index: int(idx),
			Spec:  f.spec,
			FCT:   now - f.spec.Start + tail,
		})
	}
}
