package flowsim

// Max-min fair water-filling over the link<->flow index built by
// buildIndex. The classic algorithm repeatedly saturates the link with
// the smallest fair share (remaining capacity / unfrozen flows),
// freezing its flows at that share; the slow-start ramp caps fold in by
// processing flows in ascending-cap order and freezing any flow whose
// cap is below the current minimum link share — a ramp-limited flow is
// just a flow bottlenecked by its own window instead of a link.
//
// The link heap is lazy: freezing a flow updates every link on its path
// and pushes a fresh heap entry stamped with the link's new revision;
// stale entries are discarded on pop. Each freeze does O(pathLen log L)
// work, so a full solve is O(F * pathLen * log L) — independent of the
// packet count, which is the whole point.

// heapEnt is a lazy min-heap entry: the link's fair share at the time
// of the push. A stamp mismatch on pop means the link changed since and
// a fresher entry exists.
type heapEnt struct {
	share float64
	link  int32
	stamp uint32
}

func (s *Sim) heapPush(e heapEnt) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].share <= s.heap[i].share {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *Sim) heapPop() heapEnt {
	top := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.heap[l].share < s.heap[m].share {
			m = l
		}
		if r < n && s.heap[r].share < s.heap[m].share {
			m = r
		}
		if m == i {
			break
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
	return top
}

// peekLink discards stale entries and returns the index of the live
// minimum-share entry, or -1 when the heap has drained.
func (s *Sim) peekLink() int {
	for len(s.heap) > 0 {
		e := &s.heap[0]
		l := &s.links[e.link]
		if e.stamp == l.stamp && l.nUn > 0 {
			return int(e.link)
		}
		s.heapPop()
	}
	return -1
}

// freeze fixes flow idx's rate and removes it from every link on its
// path, re-pricing each.
func (s *Sim) freeze(idx int32, rate float64) {
	f := &s.flows[idx]
	f.rate = rate
	for _, li := range f.path[:f.plen] {
		l := &s.links[li]
		l.rem -= rate
		if l.rem < 0 {
			l.rem = 0
		}
		l.nUn--
		l.stamp++
		if l.nUn > 0 {
			s.heapPush(heapEnt{share: l.rem / float64(l.nUn), link: li, stamp: l.stamp})
		}
	}
}

// waterfill assigns every active flow its max-min fair rate subject to
// the ramp caps computed by prepareRamp. Flows enter with rate == -1
// (unfrozen) and leave frozen at either a link's fair share or their
// own cap, whichever binds first.
func (s *Sim) waterfill() {
	s.heap = s.heap[:0]
	for _, li := range s.touched {
		l := &s.links[li]
		s.heapPush(heapEnt{share: l.rem / float64(l.nUn), link: li, stamp: l.stamp})
	}
	oi := 0
	frozen := 0
	n := len(s.active)
	for frozen < n {
		// Next unfrozen ramp candidate (ascending cap).
		for oi < len(s.rampOrd) && s.flows[s.rampOrd[oi]].rate >= 0 {
			oi++
		}
		li := s.peekLink()
		if li < 0 {
			// No link left with unfrozen flows: every remaining flow is
			// ramp-limited on links with spare capacity.
			for ; oi < len(s.rampOrd); oi++ {
				idx := s.rampOrd[oi]
				if s.flows[idx].rate < 0 {
					s.freeze(idx, s.flows[idx].cap)
					frozen++
				}
			}
			return
		}
		l := &s.links[li]
		share := l.rem / float64(l.nUn)
		if oi < n && s.flows[s.rampOrd[oi]].cap <= share {
			// The smallest ramp cap binds before any link saturates.
			idx := s.rampOrd[oi]
			s.freeze(idx, s.flows[idx].cap)
			frozen++
			oi++
			continue
		}
		// Saturate the bottleneck link: freeze its whole unfrozen set at
		// the fair share. The entry stays valid mid-loop because we
		// consume the link completely before peeking again.
		base := l.csrPos
		for j := int32(0); j < l.nFlows; j++ {
			idx := s.csrFlows[base+j]
			if s.flows[idx].rate < 0 {
				s.freeze(idx, share)
				frozen++
			}
		}
	}
}
