package flowsim_test

import (
	"math"
	"testing"
	"time"

	"pmsb/internal/flowsim"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/units"
	"pmsb/internal/workload"
)

// newSim wires a flow sim over a graph with slow start disabled, so the
// first quantum solve lands every flow on its closed-form max-min rate.
func newSim(t *testing.T, g *topo.PathGraph, cfg flowsim.Config) (*sim.Engine, *flowsim.Sim) {
	t.Helper()
	if cfg.Marking == nil {
		cfg.Marking = flowsim.PMSB{KBytes: 18000}
	}
	eng := sim.NewEngine()
	return eng, flowsim.New(eng, g, cfg)
}

// TestMaxMinClosedForm checks the water-filling solver against
// hand-computed fixpoints on the dumbbell and leaf-spine graphs.
func TestMaxMinClosedForm(t *testing.T) {
	gbps := func(g float64) float64 { return g * 1e9 / 8 } // bytes/sec
	cases := []struct {
		name  string
		graph func() *topo.PathGraph
		specs []workload.FlowSpec
		want  []float64 // bytes/sec per flow, spec order
	}{
		{
			// Bottleneck 5G shared by two senders; a third flow from
			// sender 1 then takes the NIC leftovers: the second
			// water-filling level.
			name: "dumbbell-two-level",
			graph: func() *topo.PathGraph {
				return topo.DumbbellPaths(topo.DumbbellConfig{
					Senders: 3, AccessRate: 10 * units.Gbps, BottleneckRate: 5 * units.Gbps,
				})
			},
			specs: []workload.FlowSpec{
				{Src: 1, Dst: 0, Size: 1 << 30},
				{Src: 2, Dst: 0, Size: 1 << 30},
				{Src: 1, Dst: 2, Size: 1 << 30},
			},
			want: []float64{gbps(2.5), gbps(2.5), gbps(7.5)},
		},
		{
			// All senders symmetric on the bottleneck: C/N each.
			name: "dumbbell-fair-share",
			graph: func() *topo.PathGraph {
				return topo.DumbbellPaths(topo.DumbbellConfig{
					Senders: 4, AccessRate: 10 * units.Gbps, BottleneckRate: 10 * units.Gbps,
				})
			},
			specs: []workload.FlowSpec{
				{Src: 1, Dst: 0, Size: 1 << 30},
				{Src: 2, Dst: 0, Size: 1 << 30},
				{Src: 3, Dst: 0, Size: 1 << 30},
				{Src: 4, Dst: 0, Size: 1 << 30},
			},
			want: []float64{gbps(2.5), gbps(2.5), gbps(2.5), gbps(2.5)},
		},
		{
			// Single spine, so every cross-leaf flow shares the one
			// fabric uplink: three incast flows saturate it at C/3,
			// and the reverse flow picks up the receiver-leaf
			// downlink's remainder 2C/3 — two distinct levels.
			name: "leafspine-two-level",
			graph: func() *topo.PathGraph {
				return topo.LeafSpinePaths(topo.LeafSpineConfig{
					Leaves: 2, Spines: 1, HostsPerLeaf: 3, Rate: 10 * units.Gbps,
				})
			},
			specs: []workload.FlowSpec{
				{Src: 3, Dst: 0, Size: 1 << 30}, // leaf1 -> leaf0
				{Src: 4, Dst: 0, Size: 1 << 30}, // leaf1 -> leaf0
				{Src: 5, Dst: 1, Size: 1 << 30}, // leaf1 -> leaf0
				{Src: 0, Dst: 1, Size: 1 << 30}, // leaf0 local
			},
			want: []float64{gbps(10.0 / 3), gbps(10.0 / 3), gbps(10.0 / 3), gbps(20.0 / 3)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, fs := newSim(t, tc.graph(), flowsim.Config{NoSlowStart: true})
			fs.Start(tc.specs)
			eng.RunUntil(fs.Quantum() / 2)
			for i, want := range tc.want {
				got := fs.FlowRate(i)
				if rel := math.Abs(got-want) / want; rel > 1e-9 {
					t.Errorf("flow %d: rate %.4g B/s, want %.4g B/s (rel err %.2g)", i, got, want, rel)
				}
			}
		})
	}
}

// TestSingleFlowFCT checks the FCT accounting on an uncontended path:
// transmission time at line rate plus the delivery tail.
func TestSingleFlowFCT(t *testing.T) {
	cfg := topo.DumbbellConfig{Senders: 2, AccessRate: 10 * units.Gbps, BottleneckRate: 10 * units.Gbps}
	g := topo.DumbbellPaths(cfg)
	var got time.Duration
	eng, fs := newSim(t, g, flowsim.Config{
		NoSlowStart: true,
		OnFinish:    func(r flowsim.FlowResult) { got = r.FCT },
	})
	const size = 1_000_000
	fs.Start([]workload.FlowSpec{{Src: 1, Dst: 0, Size: size}})
	eng.RunUntil(10 * time.Millisecond)
	if fs.Completed() != 1 {
		t.Fatalf("completed = %d, want 1", fs.Completed())
	}
	rate := 10e9 / 8 // bytes/sec
	tx := time.Duration(size / rate * 1e9)
	// Tail: propagation both ways on both hops, store-and-forward MTU on
	// the second hop, ACK serialization on both hops, plus the fluid
	// standing queue a saturating DCTCP flow holds at the marking
	// threshold (18000 B at PMSB's default K here) on both hops.
	tail := 4*5*time.Microsecond +
		units.Serialization(units.MTU, cfg.AccessRate) +
		2*units.Serialization(units.AckSize, cfg.AccessRate) +
		2*time.Duration(18000/rate*1e9)
	want := tx + tail
	if diff := (got - want).Abs(); diff > time.Microsecond {
		t.Errorf("FCT = %v, want %v (diff %v)", got, want, diff)
	}
}

// TestFluidSteadyState pins the fluid queue's equilibrium against the
// traced fig8 record (EXPERIMENTS.md): a saturated PMSB port with K=12
// packets (18000 B) and two equal-weight busy services settles its
// standing queue at K, split 9000 B per service — exactly the packet
// trace's q0 median.
func TestFluidSteadyState(t *testing.T) {
	cfg := topo.DumbbellConfig{Senders: 2, AccessRate: 10 * units.Gbps, BottleneckRate: 10 * units.Gbps}
	bottleneck := 3 // links[hosts]: switch -> receiver
	specs := []workload.FlowSpec{
		{Src: 1, Dst: 0, Size: 1 << 32, Service: 0},
		{Src: 2, Dst: 0, Size: 1 << 32, Service: 1},
	}
	cases := []struct {
		name       string
		marking    flowsim.Marking
		wantPort   float64
		wantPerSvc float64
	}{
		{"pmsb", flowsim.PMSB{KBytes: 18000}, 18000, 9000},
		{"per-port", flowsim.PerPort{KBytes: 18000}, 18000, 9000},
		{"mq-ecn", flowsim.MQECN{KBytes: 97500}, 97500, 48750},
		// The paper's problem case: static per-queue thresholds stack
		// one K per busy service.
		{"per-queue-static", flowsim.PerQueueStatic{KBytes: 18000}, 36000, 18000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, fs := newSim(t, topo.DumbbellPaths(cfg), flowsim.Config{
				Marking:     tc.marking,
				Weights:     []int{1, 1},
				NoSlowStart: true,
			})
			fs.Start(specs)
			eng.RunUntil(20 * time.Millisecond)
			if got := fs.PortDepth(bottleneck); math.Abs(got-tc.wantPort) > 1 {
				t.Errorf("port depth = %.1f B, want %.1f B", got, tc.wantPort)
			}
			for svc := 0; svc < 2; svc++ {
				if got := fs.ServiceDepth(bottleneck, svc); math.Abs(got-tc.wantPerSvc) > 1 {
					t.Errorf("service %d depth = %.1f B, want %.1f B", svc, got, tc.wantPerSvc)
				}
			}
			// Uncontended links hold no standing queue.
			if got := fs.PortDepth(1); got != 0 {
				t.Errorf("sender uplink depth = %.1f B, want 0", got)
			}
		})
	}
}

// TestSlowStartRamp checks that the default (slow-start) mode admits a
// flow at the initial-window rate and converges to line rate, and that
// short flows pay the ramp: a flow much smaller than the
// bandwidth-delay product finishes later than size/linerate would
// predict.
func TestSlowStartRamp(t *testing.T) {
	cfg := topo.DumbbellConfig{Senders: 2, AccessRate: 10 * units.Gbps, BottleneckRate: 10 * units.Gbps}
	g := topo.DumbbellPaths(cfg)
	var fct time.Duration
	eng, fs := newSim(t, g, flowsim.Config{
		OnFinish: func(r flowsim.FlowResult) { fct = r.FCT },
	})
	const size = 60_000 // ~41 segments: a couple of doubling rounds
	fs.Start([]workload.FlowSpec{{Src: 1, Dst: 0, Size: size}})
	eng.RunUntil(50 * time.Millisecond)
	if fs.Completed() != 1 {
		t.Fatalf("completed = %d, want 1", fs.Completed())
	}
	lineRate := 10e9 / 8
	floor := time.Duration(size / lineRate * 1e9)
	if fct <= floor {
		t.Errorf("FCT %v <= line-rate floor %v: ramp did not bind", fct, floor)
	}
	if fct > 100*floor {
		t.Errorf("FCT %v implausibly above line-rate floor %v", fct, floor)
	}

	// A long flow must still reach line rate despite the ramp.
	eng2, fs2 := newSim(t, topo.DumbbellPaths(cfg), flowsim.Config{})
	fs2.Start([]workload.FlowSpec{{Src: 1, Dst: 0, Size: 1 << 30}})
	eng2.RunUntil(5 * time.Millisecond)
	if got := fs2.FlowRate(0); math.Abs(got-lineRate)/lineRate > 0.01 {
		t.Errorf("long-flow rate = %.4g B/s, want line rate %.4g B/s", got, lineRate)
	}
}

// TestDeterminism re-runs an incast twice and demands identical FCTs.
func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		g := topo.LeafSpinePaths(topo.LeafSpineConfig{Leaves: 4, Spines: 4, HostsPerLeaf: 4})
		var fcts []time.Duration
		eng, fs := newSim(t, g, flowsim.Config{
			OnFinish: func(r flowsim.FlowResult) { fcts = append(fcts, r.FCT) },
		})
		var specs []workload.FlowSpec
		for i := 0; i < 12; i++ {
			specs = append(specs, workload.FlowSpec{
				Start:   time.Duration(i) * time.Microsecond,
				Src:     i + 1,
				Dst:     0,
				Size:    100_000,
				Service: i % 4,
			})
		}
		fs.Start(specs)
		eng.RunUntil(time.Second)
		if fs.Completed() != len(specs) {
			t.Fatalf("completed = %d, want %d", fs.Completed(), len(specs))
		}
		return fcts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestFatTreePathsAgree checks the engine-free fat-tree graph against
// the packet builder on shared invariants: host count, base RTT, and
// ECMP determinism of the path function.
func TestFatTreePathsAgree(t *testing.T) {
	cfg := topo.FatTreeConfig{K: 4, Rate: 10 * units.Gbps, FabricDelaySkew: time.Nanosecond}
	g := topo.FatTreePaths(cfg)
	if g.Hosts != 16 {
		t.Fatalf("hosts = %d, want 16", g.Hosts)
	}
	for flow := uint64(1); flow <= 64; flow++ {
		for _, pair := range [][2]int{{0, 15}, {0, 3}, {0, 1}, {5, 12}} {
			p1 := g.PathFor(pair[0], pair[1], flow, nil)
			p2 := g.PathFor(pair[0], pair[1], flow, nil)
			if len(p1) == 0 || len(p1) > g.MaxPathLen {
				t.Fatalf("path %v->%v flow %d: bad length %d", pair[0], pair[1], flow, len(p1))
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("path %v->%v flow %d not deterministic", pair[0], pair[1], flow)
				}
				if int(p1[i]) >= len(g.Links) {
					t.Fatalf("path link %d out of range", p1[i])
				}
			}
		}
	}
	// Cross-pod paths take 6 hops, pod-local cross-edge 4, same-edge 2.
	if p := g.PathFor(0, 15, 1, nil); len(p) != 6 {
		t.Errorf("cross-pod path length = %d, want 6", len(p))
	}
	if p := g.PathFor(0, 3, 1, nil); len(p) != 4 {
		t.Errorf("pod-local path length = %d, want 4", len(p))
	}
	if p := g.PathFor(0, 1, 1, nil); len(p) != 2 {
		t.Errorf("same-edge path length = %d, want 2", len(p))
	}
}
