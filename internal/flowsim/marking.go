package flowsim

import (
	"time"

	"pmsb/internal/units"
)

// Marking maps an ECN marking scheme onto the fluid model as a
// threshold function on fluid queue depth. Two quantities fully
// describe a scheme here:
//
//   - PortTarget: the standing queue (bytes) the DCTCP sawtooth pins a
//     saturated port at. Per-port schemes (PMSB, plain per-port) hold
//     it at the port threshold K regardless of how many queues are
//     busy; per-queue static marking stacks one threshold per busy
//     queue (the paper's Figure 2 buildup); MQ-ECN's per-queue dynamic
//     thresholds aggregate back to its standard threshold; TCN's
//     sojourn target tau translates to tau*C bytes.
//   - Blind: PMSB's selective blindness — whether a service's fluid
//     queue share is below its filter threshold, exempting it from the
//     marking throttle (the mechanism that protects sparse services
//     from backing off on congestion they did not cause).
//
// The fluid per-service depth split is weight-proportional (round-based
// schedulers drain queues by weight, so standing occupancy settles the
// same way): service s holds q * w_s / W_busy of the port depth q.
type Marking interface {
	// Name identifies the scheme ("pmsb", "mq-ecn", ...).
	Name() string
	// PortTarget returns the standing fluid queue (bytes) at a
	// saturated link: busyWeight is the weight sum of busy services,
	// busyQueues their count, cap the link capacity.
	PortTarget(busyWeight, busyQueues int, cap units.Rate) float64
	// Blind reports whether service weight w's fluid share qs of port
	// depth q is exempt from the marking throttle.
	Blind(qs, q float64, w, busyWeight int) bool
}

// PMSB is per-port marking with selective blindness: the port threshold
// caps the standing queue, and services whose fluid share sits below
// their weight-proportional filter threshold are blind to marks.
type PMSB struct {
	// KBytes is the port threshold in bytes.
	KBytes float64
}

// Name implements Marking.
func (PMSB) Name() string { return "pmsb" }

// PortTarget implements Marking: the port threshold, independent of the
// busy-queue count.
func (m PMSB) PortTarget(_, _ int, _ units.Rate) float64 { return m.KBytes }

// Blind implements Marking: service s is blind while its fluid share is
// under the filter threshold w/W * K — the selective-blindness filter
// evaluated on fluid depth.
func (m PMSB) Blind(qs, _ float64, w, busyWeight int) bool {
	if busyWeight <= 0 {
		return false
	}
	return qs < m.KBytes*float64(w)/float64(busyWeight)
}

// PerPort is plain per-port marking (PMSB without the blindness
// filter): every busy service reacts to port-level congestion.
type PerPort struct {
	// KBytes is the port threshold in bytes.
	KBytes float64
}

// Name implements Marking.
func (PerPort) Name() string { return "per-port" }

// PortTarget implements Marking.
func (m PerPort) PortTarget(_, _ int, _ units.Rate) float64 { return m.KBytes }

// Blind implements Marking: never.
func (PerPort) Blind(_, _ float64, _, _ int) bool { return false }

// MQECN models MQ-ECN: per-queue dynamic thresholds that aggregate to
// the standard threshold, so the port-level standing queue is K
// regardless of the busy-queue count (its weakness versus PMSB is the
// larger K it needs, not buildup).
type MQECN struct {
	// KBytes is the standard threshold in bytes.
	KBytes float64
}

// Name implements Marking.
func (MQECN) Name() string { return "mq-ecn" }

// PortTarget implements Marking.
func (m MQECN) PortTarget(_, _ int, _ units.Rate) float64 { return m.KBytes }

// Blind implements Marking: never.
func (MQECN) Blind(_, _ float64, _, _ int) bool { return false }

// PerQueueStatic is the paper's problem case: each busy queue holds its
// own static threshold of standing queue, so port occupancy grows
// linearly with the number of busy services.
type PerQueueStatic struct {
	// KBytes is the per-queue threshold in bytes.
	KBytes float64
}

// Name implements Marking.
func (PerQueueStatic) Name() string { return "per-queue" }

// PortTarget implements Marking: one threshold per busy queue.
func (m PerQueueStatic) PortTarget(_, busyQueues int, _ units.Rate) float64 {
	if busyQueues < 1 {
		busyQueues = 1
	}
	return m.KBytes * float64(busyQueues)
}

// Blind implements Marking: never.
func (PerQueueStatic) Blind(_, _ float64, _, _ int) bool { return false }

// TCN marks on sojourn time: the standing queue target is tau * C.
type TCN struct {
	// Threshold is the sojourn-time threshold tau.
	Threshold time.Duration
}

// Name implements Marking.
func (TCN) Name() string { return "tcn" }

// PortTarget implements Marking: tau * C in bytes.
func (m TCN) PortTarget(_, _ int, cap units.Rate) float64 {
	return m.Threshold.Seconds() * float64(cap) / 8
}

// Blind implements Marking: never.
func (TCN) Blind(_, _ float64, _, _ int) bool { return false }
