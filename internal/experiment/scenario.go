package experiment

import (
	"fmt"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/flowsim"
	"pmsb/internal/netsim"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
	"pmsb/internal/workload"
)

// Calibration scenarios: workloads defined once — as engine-agnostic
// (topology config, FlowSpec slice) pairs — and runnable on either the
// packet engine (ground truth) or the flow-level fluid engine
// (internal/flowsim). Flow IDs are assigned in spec order by both
// runners (transport.FlowIDGen and flowsim.Start both start at 1), so
// every ECMP decision lands on the same physical path in both engines;
// what differs is only the fidelity of what happens along that path.
//
// The scenarios are exposed three ways:
//   - `pmsbsim -experiment scenario-* -engine packet|flow` runs one
//     scenario on one engine (Options.Engine selects it);
//   - `pmsbsim -experiment calibrate` runs every scenario on both
//     engines and reports the FCT percentile relative error — the
//     number that says how far the fast path can be trusted;
//   - `pmsbsim -experiment flow-scale` runs a 100k-host fabric on the
//     flow engine alone, the scale that motivates its existence.

// scenarioDef is one shared scenario.
type scenarioDef struct {
	id, title string
	build     func(quick bool, seed int64) *scenarioNet
}

// scenarioNet is a built scenario: the workload, the flow-level graph,
// and a packet-engine runner over the equivalent packet topology.
type scenarioNet struct {
	specs    []workload.FlowSpec
	services int
	deadline time.Duration
	graph    *topo.PathGraph
	packet   func(opt Options, net *scenarioNet) (*engineRun, error)
}

// engineRun is one engine's view of a scenario run.
type engineRun struct {
	// fcts is indexed by spec order; zero means unfinished at deadline.
	fcts      []time.Duration
	completed int
	events    uint64
	wall      time.Duration
}

// scenarioProfile is the port profile every scenario fabric uses: DWRR
// over equal-weight service queues, PMSB per-port marking at the
// paper's K=12 packets, 250-packet buffers — the same constants the fct
// sweeps use, and the ones the flow engine's fluid thresholds mirror.
func scenarioProfile(eng *sim.Engine, services int) topo.PortProfile {
	return topo.PortProfile{
		Weights:     topo.EqualWeights(services),
		NewSched:    topo.DWRRFactory(eng),
		NewMarker:   func() ecn.Marker { return &core.PMSB{PortK: units.Packets(fctPortK)} },
		BufferBytes: units.Packets(fctBufferPkts),
	}
}

// startPacketFlows launches every spec on the packet engine, recording
// per-spec FCTs in run.fcts.
func startPacketFlows(eng *sim.Engine, host func(int) *netsim.Host,
	specs []workload.FlowSpec, services int, run *engineRun) {
	var fid transport.FlowIDGen
	for i, spec := range specs {
		i := i
		cfg := transport.Config{InitWindow: fctInitWindow}
		f := transport.NewFlow(eng, host(spec.Src), host(spec.Dst), fid.Next(),
			spec.Service%services, spec.Size, cfg, func(s *transport.Sender) {
				run.fcts[i] = s.FCT()
				run.completed++
			})
		f.Sender.StartAt(spec.Start)
	}
}

// runFlowScenario runs the scenario on the flow-level engine with the
// fluid PMSB marking mirroring the packet profile.
func runFlowScenario(net *scenarioNet) *engineRun {
	start := time.Now()
	run := &engineRun{fcts: make([]time.Duration, len(net.specs))}
	weights := make([]int, net.services)
	for i := range weights {
		weights[i] = 1
	}
	eng := sim.NewEngine()
	fs := flowsim.New(eng, net.graph, flowsim.Config{
		Marking:    flowsim.PMSB{KBytes: float64(units.Packets(fctPortK))},
		Weights:    weights,
		InitWindow: fctInitWindow,
		OnFinish: func(r flowsim.FlowResult) {
			run.fcts[r.Index] = r.FCT
			run.completed++
		},
	})
	fs.Start(net.specs)
	eng.RunUntil(net.deadline)
	run.events = eng.Processed()
	run.wall = time.Since(start)
	return run
}

// scenarioDefs enumerates the shared scenarios (the three the
// calibration acceptance list names).
func scenarioDefs() []scenarioDef {
	return []scenarioDef{
		{
			id:    "scenario-incast",
			title: "Calibration scenario: dumbbell incast (16:1, 100KB)",
			build: buildIncastScenario,
		},
		{
			id:    "scenario-permutation",
			title: "Calibration scenario: leaf-spine permutation (200KB)",
			build: buildPermutationScenario,
		},
		{
			id:    "scenario-fattree",
			title: "Calibration scenario: k=8 fat-tree, web-search CDF at load 0.3",
			build: buildFatTreeScenario,
		},
	}
}

func buildIncastScenario(quick bool, seed int64) *scenarioNet {
	senders := 16
	if quick {
		senders = 8
	}
	cfg := topo.DumbbellConfig{Senders: senders, AccessRate: fctRate}
	srcs := make([]int, senders)
	for i := range srcs {
		srcs[i] = i + 1
	}
	specs := workload.Incast(workload.IncastConfig{
		Receiver: 0,
		Senders:  srcs,
		Size:     100_000,
		Stagger:  time.Microsecond,
		Services: fattreeServices,
	})
	return &scenarioNet{
		specs:    specs,
		services: fattreeServices,
		deadline: 50 * time.Millisecond,
		graph:    topo.DumbbellPaths(cfg),
		packet: func(opt Options, net *scenarioNet) (*engineRun, error) {
			start := time.Now()
			run := &engineRun{fcts: make([]time.Duration, len(net.specs))}
			eng := sim.NewEngine()
			cfg := cfg
			cfg.Bottleneck = scenarioProfile(eng, net.services)
			d := topo.NewDumbbell(eng, cfg)
			host := func(i int) *netsim.Host {
				if i == 0 {
					return d.Recv
				}
				return d.Senders[i-1]
			}
			startPacketFlows(eng, host, net.specs, net.services, run)
			opt.instrumentEngine(eng)
			eng.RunUntil(net.deadline)
			var unclaimed int64
			unclaimed += d.Recv.UnclaimedPackets()
			for _, h := range d.Senders {
				unclaimed += h.UnclaimedPackets()
			}
			if rd := d.Switch.RouteDrops(); rd > 0 || unclaimed > 0 {
				return nil, fmt.Errorf("scenario-incast: fabric sanity violated (routeDrops=%d unclaimed=%d)", rd, unclaimed)
			}
			run.events = eng.Processed()
			opt.observeEngine(eng)
			run.wall = time.Since(start)
			return run, nil
		},
	}
}

func buildPermutationScenario(quick bool, seed int64) *scenarioNet {
	cfg := topo.LeafSpineConfig{Leaves: 4, Spines: 4, HostsPerLeaf: 12, Rate: fctRate}
	if quick {
		cfg.HostsPerLeaf = 4
	}
	hosts := cfg.Leaves * cfg.HostsPerLeaf
	specs := workload.Permutation(workload.PermutationConfig{
		Hosts:    hosts,
		Dist:     workload.Fixed(200_000),
		Stagger:  2 * time.Microsecond,
		Services: fattreeServices,
		Seed:     seed,
	})
	return &scenarioNet{
		specs:    specs,
		services: fattreeServices,
		deadline: 100 * time.Millisecond,
		graph:    topo.LeafSpinePaths(cfg),
		packet: func(opt Options, net *scenarioNet) (*engineRun, error) {
			start := time.Now()
			run := &engineRun{fcts: make([]time.Duration, len(net.specs))}
			eng := sim.NewEngine()
			cfg := cfg
			cfg.Ports = scenarioProfile(eng, net.services)
			ls := topo.NewLeafSpine(eng, cfg)
			startPacketFlows(eng, ls.Host, net.specs, net.services, run)
			opt.instrumentEngine(eng)
			eng.RunUntil(net.deadline)
			if err := leafSpineSanity("scenario-permutation", ls); err != nil {
				return nil, err
			}
			run.events = eng.Processed()
			opt.observeEngine(eng)
			run.wall = time.Since(start)
			return run, nil
		},
	}
}

func buildFatTreeScenario(quick bool, seed int64) *scenarioNet {
	cfg := topo.FatTreeConfig{
		K:               fattreeK,
		Rate:            fctRate,
		FabricDelaySkew: time.Nanosecond,
	}
	hosts := fattreeK * fattreeK * fattreeK / 4
	numFlows := 300
	if quick {
		numFlows = 60
	}
	specs := workload.Poisson(workload.PoissonConfig{
		Load:     0.3,
		LinkRate: fctRate,
		Hosts:    hosts,
		Dist:     workload.WebSearch(),
		Services: fattreeServices,
		NumFlows: numFlows,
		Seed:     seed,
	})
	deadline := specs[len(specs)-1].Start + 2*time.Second
	return &scenarioNet{
		specs:    specs,
		services: fattreeServices,
		deadline: deadline,
		graph:    topo.FatTreePaths(cfg),
		packet: func(opt Options, net *scenarioNet) (*engineRun, error) {
			start := time.Now()
			run := &engineRun{fcts: make([]time.Duration, len(net.specs))}
			eng := sim.NewEngine()
			cfg := cfg
			cfg.Ports = scenarioProfile(eng, net.services)
			ft := topo.NewFatTree(eng, cfg)
			startPacketFlows(eng, ft.Host, net.specs, net.services, run)
			opt.instrumentEngine(eng)
			eng.RunUntil(net.deadline)
			if err := fatTreeSanity("scenario-fattree", ft); err != nil {
				return nil, err
			}
			run.events = eng.Processed()
			opt.observeEngine(eng)
			run.wall = time.Since(start)
			return run, nil
		},
	}
}

func leafSpineSanity(id string, ls *topo.LeafSpine) error {
	var routeDrops, unclaimed int64
	for _, sw := range ls.Leaves {
		routeDrops += sw.RouteDrops()
	}
	for _, sw := range ls.Spines {
		routeDrops += sw.RouteDrops()
	}
	for _, h := range ls.Hosts {
		unclaimed += h.UnclaimedPackets()
	}
	if routeDrops > 0 || unclaimed > 0 {
		return fmt.Errorf("%s: fabric sanity violated (routeDrops=%d unclaimed=%d)", id, routeDrops, unclaimed)
	}
	return nil
}

func fatTreeSanity(id string, ft *topo.FatTree) error {
	var routeDrops, unclaimed int64
	for _, sw := range ft.Edges {
		routeDrops += sw.RouteDrops()
	}
	for _, sw := range ft.Aggs {
		routeDrops += sw.RouteDrops()
	}
	for _, sw := range ft.Cores {
		routeDrops += sw.RouteDrops()
	}
	for _, h := range ft.Hosts {
		unclaimed += h.UnclaimedPackets()
	}
	if routeDrops > 0 || unclaimed > 0 {
		return fmt.Errorf("%s: fabric sanity violated (routeDrops=%d unclaimed=%d)", id, routeDrops, unclaimed)
	}
	return nil
}

// runScenario executes one scenario on the engine Options.Engine
// selects ("packet" by default, "flow" for the fluid fast path).
func runScenario(def scenarioDef, opt Options) (*Result, error) {
	net := def.build(opt.Quick, opt.seed())
	engine := opt.engine()
	var (
		run *engineRun
		err error
	)
	switch engine {
	case "packet":
		run, err = net.packet(opt, net)
	case "flow":
		run = runFlowScenario(net)
	default:
		return nil, fmt.Errorf("%s: unknown engine %q (packet|flow)", def.id, engine)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{ID: def.id, Title: def.title, Headers: []string{"metric", "value"}}
	res.AddRow("engine", engine)
	res.AddRow("flows", fmt.Sprintf("%d", len(net.specs)))
	res.AddRow("completed", fmt.Sprintf("%d", run.completed))
	res.AddRow("events", fmt.Sprintf("%d", run.events))
	sum := fctSummary(run.fcts, nil)
	if sum.Count() > 0 {
		res.AddRow("fct-p50-ms", msec(sum.Percentile(50)))
		res.AddRow("fct-p95-ms", msec(sum.Percentile(95)))
		res.AddRow("fct-p99-ms", msec(sum.Percentile(99)))
	}
	if run.completed < len(net.specs) {
		res.AddNote("%d of %d flows unfinished at %v", len(net.specs)-run.completed, len(net.specs), net.deadline)
	}
	res.AddNote("wall clock: %v", run.wall.Round(time.Millisecond))
	return res, nil
}

// scenarioSpecs registers the per-scenario experiments.
func scenarioSpecs() []Spec {
	var specs []Spec
	for _, def := range scenarioDefs() {
		def := def
		specs = append(specs, Spec{
			ID:    def.id,
			Title: def.title,
			Run:   func(opt Options) (*Result, error) { return runScenario(def, opt) },
		})
	}
	return specs
}
