package experiment

import (
	"fmt"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
	"pmsb/internal/workload"
)

// weightedSpecs registers two more extensions:
//
//   - ablation-rttthresh: sensitivity of PMSB(e) to its single knob,
//     the RTT accept threshold (the paper: "The main challenge is how
//     to determine a time threshold").
//   - fct-weighted: the paper's large-scale run uses equal weights;
//     this variant gives service 0 a premium weight and shows PMSB
//     preserving the differentiation per-port marking erodes.
func weightedSpecs() []Spec {
	return []Spec{
		{ID: "ablation-rttthresh", Title: "Ablation: PMSB(e) RTT threshold sensitivity (1:8 flows)", Run: runAblationRTTThresh},
		{ID: "fct-weighted", Title: "Extension: weighted services at scale — PMSB vs per-port", Run: runFCTWeighted},
	}
}

// runAblationRTTThresh sweeps the PMSB(e) threshold on the 1:8 static
// scenario. Too low accepts every mark (plain per-port DCTCP: unfair);
// too high ignores every mark (fair but the congested queue's latency
// balloons since nothing backs off).
func runAblationRTTThresh(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	res := &Result{
		ID:      "ablation-rttthresh",
		Title:   "PMSB(e) RTT threshold vs fairness vs latency (1:8 flows, per-port K=16)",
		Headers: []string{"rtt_thresh_us", "q1_share", "q2_p99_rtt_us", "marks_accepted_frac"},
	}
	for _, thresh := range []time.Duration{
		0, // accept everything: plain DCTCP over per-port marking
		20 * time.Microsecond,
		40 * time.Microsecond,
		80 * time.Microsecond,
		160 * time.Microsecond,
	} {
		thresh := thresh
		r := runStatic(staticConfig{
			opt: opt,
			profile: defaultTwoQueueProfile(func() ecn.Marker {
				return &ecn.PerPort{K: units.Packets(16)}
			}),
			accessRate: motiveRate, bottleneckRate: motiveRate, delay: motiveDelay,
			groups: []flowGroup{
				{service: 0, count: 1, filter: pmsbeFilter(thresh)},
				{service: 1, count: 8, filter: pmsbeFilter(thresh), recordRTT: true},
			},
			dur: dur, warmup: warmup,
		})
		q1, q2 := r.queueRate(0), r.queueRate(1)
		var seen, accepted int64
		for _, g := range r.groups {
			for _, f := range g {
				seen += f.Sender.MarksSeen()
				accepted += f.Sender.MarksAccepted()
			}
		}
		frac := 0.0
		if seen > 0 {
			frac = float64(accepted) / float64(seen)
		}
		res.AddRow(
			fmt.Sprintf("%.1f", thresh.Seconds()*1e6),
			fmt.Sprintf("%.3f", float64(q1)/float64(q1+q2)),
			usec(r.groupRTT(1).Percentile(99)),
			fmt.Sprintf("%.3f", frac),
		)
	}
	res.AddNote("low thresholds accept all marks (per-port unfairness); high thresholds veto them (fair share, rising latency)")
	return res, nil
}

// pmsbeFilter returns a filter factory for the given threshold, or nil
// for threshold 0 (plain DCTCP).
func pmsbeFilter(thresh time.Duration) func() transport.Filter {
	if thresh == 0 {
		return nil
	}
	return func() transport.Filter { return &core.PMSBe{RTTThreshold: thresh} }
}

// runFCTWeighted: leaf-spine at one load with weights 4:2:2:2:1:1:1:1
// across the 8 services. Reports per-weight-class small-flow FCT for
// PMSB vs plain per-port marking: per-port marking victimizes the
// premium class's flows exactly as in the static experiments.
func runFCTWeighted(opt Options) (*Result, error) {
	numFlows := 1200
	load := 0.6
	if opt.Quick {
		numFlows = 250
	}
	weights := []float64{4, 2, 2, 2, 1, 1, 1, 1}
	res := &Result{
		ID:    "fct-weighted",
		Title: "Weighted services (4:2:2:2:1:1:1:1), leaf-spine, WFQ, load 0.6",
		Headers: []string{
			"scheme", "class", "small_avg_ms", "small_p99_ms", "flows",
		},
	}

	type scheme struct {
		name   string
		marker topo.MarkerFactory
	}
	schemes := []scheme{
		{"pmsb", func() ecn.Marker { return &core.PMSB{PortK: units.Packets(fctPortK)} }},
		{"per-port", func() ecn.Marker { return &ecn.PerPort{K: units.Packets(fctPortK)} }},
	}
	classOf := func(service int) string {
		switch {
		case service == 0:
			return "premium(w4)"
		case service <= 3:
			return "standard(w2)"
		default:
			return "besteffort(w1)"
		}
	}
	classes := []string{"premium(w4)", "standard(w2)", "besteffort(w1)"}

	type key struct{ scheme, class string }
	summaries := make(map[key]*stats.Summary)
	counts := make(map[key]int)
	for _, sc := range schemes {
		eng := sim.NewEngine()
		ls := topo.NewLeafSpine(eng, topo.LeafSpineConfig{
			Rate: fctRate,
			Ports: topo.PortProfile{
				Weights:     weights,
				NewSched:    topo.WFQFactory(),
				NewMarker:   sc.marker,
				BufferBytes: units.Packets(fctBufferPkts),
			},
		})
		specs := workload.Poisson(workload.PoissonConfig{
			Load:     load,
			LinkRate: fctRate,
			Hosts:    ls.NumHosts(),
			Dist:     workload.WebSearch(),
			Services: len(weights),
			NumFlows: numFlows,
			Seed:     opt.seed(),
		})
		var fid transport.FlowIDGen
		var lastStart time.Duration
		for _, spec := range specs {
			spec := spec
			scName := sc.name
			f := transport.NewFlow(eng, ls.Host(spec.Src), ls.Host(spec.Dst), fid.Next(),
				spec.Service, spec.Size, transport.Config{InitWindow: fctInitWindow},
				func(s *transport.Sender) {
					if workload.Classify(s.Size()) != workload.Small {
						return
					}
					k := key{scName, classOf(s.Service())}
					if summaries[k] == nil {
						summaries[k] = &stats.Summary{}
					}
					summaries[k].Add(s.FCT().Seconds())
					counts[k]++
				})
			eng.ScheduleAt(spec.Start, f.Sender.Start)
			lastStart = spec.Start
		}
		eng.RunUntil(lastStart + 2*time.Second)
		opt.observeEngine(eng)
	}

	for _, sc := range schemes {
		for _, class := range classes {
			k := key{sc.name, class}
			s := summaries[k]
			if s == nil {
				continue
			}
			res.AddRow(sc.name, class,
				msec(s.Mean()), msec(s.Percentile(99)), itoa(counts[k]))
		}
	}
	p := summaries[key{"pmsb", "premium(w4)"}]
	pp := summaries[key{"per-port", "premium(w4)"}]
	if p != nil && pp != nil && pp.Mean() > 0 {
		res.AddNote("premium small-flow avg FCT: PMSB %.3fms vs per-port %.3fms (%.1f%% better)",
			p.Mean()*1e3, pp.Mean()*1e3, (1-p.Mean()/pp.Mean())*100)
	}
	return res, nil
}
