package experiment

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true, Seed: 1}

func mustRun(t *testing.T, id string) *Result {
	t.Helper()
	spec, err := Lookup(id)
	if err != nil {
		t.Fatalf("Lookup(%q): %v", id, err)
	}
	res, err := spec.Run(quick)
	if err != nil {
		t.Fatalf("run %s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result ID = %q, want %q", res.ID, id)
	}
	if len(res.Headers) == 0 || len(res.Rows) == 0 {
		t.Fatalf("%s produced an empty table", id)
	}
	for i, row := range res.Rows {
		if len(row) != len(res.Headers) {
			t.Fatalf("%s row %d has %d cells for %d headers", id, i, len(row), len(res.Headers))
		}
	}
	return res
}

// cell fetches the value at (row matcher, column name).
func cell(t *testing.T, res *Result, match func(row []string) bool, column string) string {
	t.Helper()
	col := -1
	for i, h := range res.Headers {
		if h == column {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("%s: no column %q in %v", res.ID, column, res.Headers)
	}
	for _, row := range res.Rows {
		if match(row) {
			return row[col]
		}
	}
	t.Fatalf("%s: no matching row", res.ID)
	return ""
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "theorem41", "fct-dwrr", "fct-wfq",
		"pool", "ablation-portk", "ablation-filter", "incast",
		"ablation-rttthresh", "fct-weighted",
		"analysis-validation", "ablation-average", "pfc",
		"ablation-markpoint", "fattree", "fattree-incast", "fattree32",
		"scenario-incast", "scenario-permutation", "scenario-fattree",
		"calibrate", "flow-scale",
	}
	for i := 1; i <= 27; i++ {
		want = append(want, "fig"+itoa(i))
	}
	reg := make(map[string]bool)
	for _, s := range List() {
		reg[s.ID] = true
		if s.Title == "" || s.Run == nil {
			t.Fatalf("spec %s incomplete", s.ID)
		}
	}
	for _, id := range want {
		if !reg[id] {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d specs, want %d", len(reg), len(want))
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown ID should error")
	}
}

func TestResultTSV(t *testing.T) {
	res := &Result{ID: "x", Title: "t", Headers: []string{"a", "b"}}
	res.AddRow("1", "2")
	res.AddNote("note %d", 7)
	tsv := res.TSV()
	for _, want := range []string{"# x: t", "a\tb", "1\t2", "# note 7"} {
		if !strings.Contains(tsv, want) {
			t.Fatalf("TSV missing %q:\n%s", want, tsv)
		}
	}
}

func TestTable1Matrix(t *testing.T) {
	res := mustRun(t, "table1")
	get := func(scheme, col string) string {
		return cell(t, res, func(r []string) bool { return r[0] == scheme }, col)
	}
	if get("mq-ecn", "generic_scheduler") != "no" {
		t.Fatal("MQ-ECN must not support generic schedulers")
	}
	if get("tcn", "generic_scheduler") != "yes" || get("tcn", "early_notification") != "no" {
		t.Fatal("TCN: generic yes, early notification no")
	}
	if get("pmsb", "generic_scheduler") != "yes" || get("pmsb", "early_notification") != "yes" {
		t.Fatal("PMSB must support generic schedulers and early notification")
	}
	if get("pmsb", "no_switch_modification") != "no" || get("pmsb(e)", "no_switch_modification") != "yes" {
		t.Fatal("only PMSB(e) avoids switch modification")
	}
}

func TestFig1RTTGrowsWithQueues(t *testing.T) {
	res := mustRun(t, "fig1")
	one := atof(cell(t, res, func(r []string) bool { return r[0] == "1" }, "avg_rtt_us"))
	eight := atof(cell(t, res, func(r []string) bool { return r[0] == "8" }, "avg_rtt_us"))
	if eight < 2*one {
		t.Fatalf("avg RTT with 8 queues (%v us) should far exceed 1 queue (%v us)", eight, one)
	}
}

func TestFig2FractionalThresholdLosesThroughput(t *testing.T) {
	res := mustRun(t, "fig2")
	k2 := atof(cell(t, res, func(r []string) bool { return r[0] == "2" }, "throughput_gbps"))
	k16 := atof(cell(t, res, func(r []string) bool { return r[0] == "16" }, "throughput_gbps"))
	if k16 < 9 {
		t.Fatalf("standard threshold throughput = %v Gbps, want ~10", k16)
	}
	if k2 >= k16 {
		t.Fatalf("fractional threshold (%v) should lose throughput vs standard (%v)", k2, k16)
	}
}

func TestFig3PerPortViolatesFairness(t *testing.T) {
	res := mustRun(t, "fig3")
	q1 := atof(cell(t, res, func(r []string) bool { return r[0] == "1" }, "throughput_gbps"))
	q2 := atof(cell(t, res, func(r []string) bool { return r[0] == "2" }, "throughput_gbps"))
	share := q1 / (q1 + q2)
	if share > 0.42 {
		t.Fatalf("per-port marking should squeeze queue 1 well below 0.5 share, got %.3f", share)
	}
}

func TestFig6LargeThresholdRestoresFairness(t *testing.T) {
	res := mustRun(t, "fig6")
	q1 := atof(cell(t, res, func(r []string) bool { return r[0] == "1" }, "throughput_gbps"))
	q2 := atof(cell(t, res, func(r []string) bool { return r[0] == "2" }, "throughput_gbps"))
	share := q1 / (q1 + q2)
	if share < 0.40 || share > 0.60 {
		t.Fatalf("65-packet threshold should restore ~fair sharing, got share %.3f", share)
	}
}

func TestFig4DequeueMarkingCutsPeak(t *testing.T) {
	res := mustRun(t, "fig4")
	enq := atof(cell(t, res, func(r []string) bool { return r[0] == "dctcp-enqueue" }, "peak_pkts"))
	deq := atof(cell(t, res, func(r []string) bool { return r[0] == "dctcp-dequeue" }, "peak_pkts"))
	if deq >= enq {
		t.Fatalf("dequeue peak (%v) should be below enqueue peak (%v)", deq, enq)
	}
}

func TestFig5TCNPeakStaysHigh(t *testing.T) {
	fig4 := mustRun(t, "fig4")
	fig5 := mustRun(t, "fig5")
	deq := atof(cell(t, fig4, func(r []string) bool { return r[0] == "dctcp-dequeue" }, "peak_pkts"))
	tcn := atof(cell(t, fig5, func(r []string) bool { return r[0] == "tcn" }, "peak_pkts"))
	if tcn <= deq {
		t.Fatalf("TCN peak (%v) should not beat DCTCP dequeue marking (%v): no early notification", tcn, deq)
	}
}

func TestFig8PMSBPreservesFairness(t *testing.T) {
	res := mustRun(t, "fig8")
	q1 := atof(cell(t, res, func(r []string) bool { return r[0] == "1" }, "throughput_gbps"))
	q2 := atof(cell(t, res, func(r []string) bool { return r[0] == "2" }, "throughput_gbps"))
	share := q1 / (q1 + q2)
	if share < 0.42 || share > 0.58 {
		t.Fatalf("PMSB should hold the 0.5 fair share, got %.3f", share)
	}
	if q1+q2 < 9 {
		t.Fatalf("PMSB should keep the link nearly full, got %.2f Gbps", q1+q2)
	}
}

func TestFig9PMSBBeatsPerQueueStandard(t *testing.T) {
	res := mustRun(t, "fig9")
	get := func(scheme string) float64 {
		return atof(cell(t, res, func(r []string) bool { return r[0] == scheme }, "avg_rtt_us"))
	}
	if get("pmsb") >= get("per-queue-std") {
		t.Fatalf("PMSB avg RTT (%v us) should be below per-queue standard (%v us)",
			get("pmsb"), get("per-queue-std"))
	}
	if get("pmsb(e)") >= get("per-queue-std") {
		t.Fatal("PMSB(e) avg RTT should be below per-queue standard")
	}
}

func TestFig11PMSBEarlyNotification(t *testing.T) {
	res := mustRun(t, "fig11")
	enq := atof(cell(t, res, func(r []string) bool { return r[0] == "enqueue" }, "peak_pkts"))
	deq := atof(cell(t, res, func(r []string) bool { return r[0] == "dequeue" }, "peak_pkts"))
	if deq >= enq {
		t.Fatalf("PMSB dequeue peak (%v) should be below enqueue peak (%v)", deq, enq)
	}
}

func TestFig13SPWFQFinalPhase(t *testing.T) {
	res := mustRun(t, "fig13")
	q1 := atof(cell(t, res, func(r []string) bool { return r[0] == "3" && r[1] == "1" }, "throughput_gbps"))
	q2 := atof(cell(t, res, func(r []string) bool { return r[0] == "3" && r[1] == "2" }, "throughput_gbps"))
	q3 := atof(cell(t, res, func(r []string) bool { return r[0] == "3" && r[1] == "3" }, "throughput_gbps"))
	if q1 < 4.2 || q1 > 5.5 {
		t.Fatalf("strict queue should hold ~5 Gbps, got %v", q1)
	}
	if q2 < 1.7 || q2 > 3.3 || q3 < 1.7 || q3 > 3.3 {
		t.Fatalf("WFQ queues should split ~2.5/2.5 Gbps, got %v/%v", q2, q3)
	}
}

func TestFig15WFQFinalPhase(t *testing.T) {
	res := mustRun(t, "fig15")
	q1 := atof(cell(t, res, func(r []string) bool { return r[0] == "3" && r[1] == "1" }, "throughput_gbps"))
	q2 := atof(cell(t, res, func(r []string) bool { return r[0] == "3" && r[1] == "2" }, "throughput_gbps"))
	if q1 < 4 || q1 > 6 || q2 < 4 || q2 > 6 {
		t.Fatalf("WFQ should settle at ~5/5 Gbps, got %v/%v", q1, q2)
	}
}

func TestTheorem41Shape(t *testing.T) {
	res := mustRun(t, "theorem41")
	low := atof(cell(t, res, func(r []string) bool { return r[0] == "0.25" }, "utilization"))
	high := atof(cell(t, res, func(r []string) bool { return r[0] == "4.00" }, "utilization"))
	if high < 0.9 {
		t.Fatalf("well above the bound utilization should be ~1, got %v", high)
	}
	if low >= high {
		t.Fatalf("below the bound (%v) should lose throughput vs above it (%v)", low, high)
	}
}

func TestPoolCrossPortInterference(t *testing.T) {
	res := mustRun(t, "pool")
	perPortA := atof(cell(t, res, func(r []string) bool { return r[0] == "per-port" }, "portA_gbps"))
	perPoolA := atof(cell(t, res, func(r []string) bool { return r[0] == "per-pool" }, "portA_gbps"))
	if perPortA < 9 {
		t.Fatalf("per-port marking should leave the un-congested port at ~10G, got %v", perPortA)
	}
	if perPoolA >= perPortA*0.8 {
		t.Fatalf("per-pool marking should throttle port A (%v vs %v): the paper's cross-port claim", perPoolA, perPortA)
	}
	marks := atof(cell(t, res, func(r []string) bool { return r[0] == "per-port" }, "portA_marks"))
	if marks != 0 {
		t.Fatalf("per-port marking must not mark the idle port, got %v marks", marks)
	}
}

func TestAblationPortKTradeoff(t *testing.T) {
	res := mustRun(t, "ablation-portk")
	share8 := atof(cell(t, res, func(r []string) bool { return r[0] == "8" }, "q1_share"))
	share128 := atof(cell(t, res, func(r []string) bool { return r[0] == "128" }, "q1_share"))
	rtt8 := atof(cell(t, res, func(r []string) bool { return r[0] == "8" }, "avg_rtt_us"))
	rtt128 := atof(cell(t, res, func(r []string) bool { return r[0] == "128" }, "avg_rtt_us"))
	if share128 <= share8 {
		t.Fatalf("fairness must improve with threshold: %.3f -> %.3f", share8, share128)
	}
	if rtt128 <= rtt8 {
		t.Fatalf("latency must worsen with threshold: %.1f -> %.1f us", rtt8, rtt128)
	}
}

func TestAblationFilterFairnessHolds(t *testing.T) {
	res := mustRun(t, "ablation-filter")
	for _, scale := range []string{"0.25", "0.50", "1.00"} {
		share := atof(cell(t, res, func(r []string) bool { return r[0] == scale }, "q1_share"))
		if share < 0.42 || share > 0.58 {
			t.Fatalf("scale %s: share %.3f should stay near 0.5 (aggressive filters keep fairness)", scale, share)
		}
	}
}

func TestAblationRTTThreshTradeoff(t *testing.T) {
	res := mustRun(t, "ablation-rttthresh")
	share0 := atof(cell(t, res, func(r []string) bool { return r[0] == "0.0" }, "q1_share"))
	share40 := atof(cell(t, res, func(r []string) bool { return r[0] == "40.0" }, "q1_share"))
	if share0 > 0.42 {
		t.Fatalf("accepting all marks should reproduce per-port unfairness, share = %.3f", share0)
	}
	if share40 < 0.42 || share40 > 0.58 {
		t.Fatalf("a sane RTT threshold should restore fairness, share = %.3f", share40)
	}
	// Accepted-mark fraction must fall monotonically with the threshold.
	prev := 2.0
	for _, row := range res.Rows {
		f := atof(row[3])
		if f > prev+1e-9 {
			t.Fatalf("accepted fraction not monotone: %v", res.Rows)
		}
		prev = f
	}
}

func TestAnalysisValidationQmax(t *testing.T) {
	res := mustRun(t, "analysis-validation")
	for _, row := range res.Rows {
		model := atof(row[1])
		sim := atof(row[2])
		// The model's Q_max should predict the simulated maximum within
		// ~20% (the paper's derivation, Eq. 8).
		if sim < 0.8*model || sim > 1.25*model {
			t.Fatalf("n=%s: sim qmax %v vs model %v — model broken", row[0], sim, model)
		}
		// Desynchronization keeps the measured amplitude at or below
		// the synchronized model's.
		if atof(row[4]) > atof(row[3])*1.2 {
			t.Fatalf("n=%s: sim amplitude exceeds the model's", row[0])
		}
	}
}

func TestAblationAverageDelaysSignal(t *testing.T) {
	res := mustRun(t, "ablation-average")
	instant := atof(cell(t, res, func(r []string) bool { return r[0] == "1" }, "peak_pkts"))
	heavy := atof(cell(t, res, func(r []string) bool { return r[0] == "0.0625" }, "peak_pkts"))
	if heavy <= instant {
		t.Fatalf("averaged marking should inflate the burst peak: %v vs %v", heavy, instant)
	}
}

func TestIncastECNAbsorbsBurst(t *testing.T) {
	res := mustRun(t, "incast")
	get := func(scheme, col string) float64 {
		return atof(cell(t, res, func(r []string) bool { return r[0] == scheme }, col))
	}
	if get("no-ecn", "drops") <= get("pmsb-dequeue", "drops") {
		t.Fatal("drop-tail must drop more than PMSB dequeue marking")
	}
	if get("no-ecn", "query_completion_ms") <= get("pmsb-dequeue", "query_completion_ms") {
		t.Fatal("ECN should complete the incast query faster than drop-tail")
	}
}

// TestFCTDWRRQuick is the headline integration test: PMSB must beat TCN
// on small-flow FCT over DWRR at the quick sweep's load.
func TestFCTDWRRQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale FCT sweep skipped in -short mode")
	}
	res := mustRun(t, "fct-dwrr")
	get := func(scheme, col string) float64 {
		return atof(cell(t, res, func(r []string) bool { return r[0] == scheme }, col))
	}
	if get("pmsb", "small_avg_ms") >= get("tcn", "small_avg_ms") {
		t.Fatalf("PMSB small-flow avg FCT (%v ms) should beat TCN (%v ms)",
			get("pmsb", "small_avg_ms"), get("tcn", "small_avg_ms"))
	}
	// Overall average FCT should be in the same ballpark across schemes
	// (paper: within a few percent; allow 1.6x for the quick run).
	p, tt := get("pmsb", "overall_avg_ms"), get("tcn", "overall_avg_ms")
	if p > 1.6*tt {
		t.Fatalf("PMSB overall FCT (%v) should stay comparable to TCN (%v)", p, tt)
	}
}

func TestFCTWFQExcludesMQECN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale FCT sweep skipped in -short mode")
	}
	res := mustRun(t, "fct-wfq")
	for _, row := range res.Rows {
		if row[0] == "mq-ecn" {
			t.Fatal("MQ-ECN must be excluded under WFQ (round-based only)")
		}
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "mq-ecn excluded") {
			found = true
		}
	}
	if !found {
		t.Fatal("exclusion note missing")
	}
}

func TestPFCDCQCNRescuesVictim(t *testing.T) {
	res := mustRun(t, "pfc")
	get := func(scheme, col string) float64 {
		return atof(cell(t, res, func(r []string) bool { return r[0] == scheme }, col))
	}
	if get("pfc-only", "fabric_drops") != 0 || get("pfc+dcqcn(ecn)", "fabric_drops") != 0 {
		t.Fatal("PFC fabrics must be lossless")
	}
	if get("pfc+dcqcn(ecn)", "victim_gbps") <= 2*get("pfc-only", "victim_gbps") {
		t.Fatalf("DCQCN should rescue the head-of-line-blocked victim: %.2f vs %.2f Gbps",
			get("pfc+dcqcn(ecn)", "victim_gbps"), get("pfc-only", "victim_gbps"))
	}
}
