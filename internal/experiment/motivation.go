package experiment

import (
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/topo"
	"pmsb/internal/units"
)

// Shared parameters of the Section II motivation experiments. The 2us
// per-link delay yields a ~10.5us base RTT, consistent with the paper's
// threshold choices (port K = 12 pkts ~ C x RTT x lambda at 10 Gbps).
const (
	motiveRate  = 10 * units.Gbps
	motiveDelay = 2 * time.Microsecond
)

func motivationSpecs() []Spec {
	return []Spec{
		{ID: "fig1", Title: "Per-queue marking, standard threshold: RTT vs number of queues", Run: runFig1},
		{ID: "fig2", Title: "Per-queue marking, fractional threshold: throughput loss", Run: runFig2},
		{ID: "fig3", Title: "Per-port marking violates weighted fair sharing (1 vs 8 flows)", Run: runFig3},
		{ID: "fig4", Title: "DCTCP enqueue vs dequeue marking: slow-start buffer peak", Run: runFig4},
		{ID: "fig5", Title: "TCN cannot accelerate congestion notification", Run: runFig5},
		{ID: "fig6", Title: "Per-port marking with 65-packet threshold: 1 vs 8 flows", Run: runFig6},
		{ID: "fig7", Title: "Per-port marking with 65-packet threshold: 1 vs 40 flows", Run: runFig7},
	}
}

// staticDur returns (duration, warmup) honouring Quick mode.
func staticDur(opt Options) (time.Duration, time.Duration) {
	if opt.Quick {
		return 40 * time.Millisecond, 15 * time.Millisecond
	}
	return 120 * time.Millisecond, 40 * time.Millisecond
}

// runFig1: 8 flows spread evenly over 1..8 queues, per-queue standard
// threshold of 16 packets each. More active queues => more total buffer
// => higher RTT.
func runFig1(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	res := &Result{
		ID:      "fig1",
		Title:   "RTT vs active queues (per-queue standard threshold, 16 pkts/queue)",
		Headers: []string{"queues", "avg_rtt_us", "p99_rtt_us"},
	}
	var lastAvg, firstAvg float64
	for nq := 1; nq <= 8; nq++ {
		groups := make([]flowGroup, nq)
		for q := range groups {
			groups[q] = flowGroup{service: q, count: 8 / nq, recordRTT: true}
		}
		// Distribute the remainder when 8 is not divisible by nq.
		for i := 0; i < 8%nq; i++ {
			groups[i].count++
		}
		r := runStatic(staticConfig{
			opt: opt,
			profile: topo.PortProfile{
				Weights:   topo.EqualWeights(nq),
				NewSched:  topo.WFQFactory(),
				NewMarker: func() ecn.Marker { return &ecn.PerQueueStandard{K: units.Packets(16)} },
			},
			accessRate: motiveRate, bottleneckRate: motiveRate, delay: motiveDelay,
			groups: groups,
			dur:    dur, warmup: warmup,
		})
		s := r.allRTT()
		res.AddRow(itoa(nq), usec(s.Mean()), usec(s.Percentile(99)))
		if nq == 1 {
			firstAvg = s.Mean()
		}
		lastAvg = s.Mean()
	}
	res.AddNote("avg RTT grows %.1fx from 1 queue to 8 queues (paper: RTT increases rapidly with queues)", lastAvg/firstAvg)
	return res, nil
}

// runFig2: a single active queue, per-queue threshold 2 vs 16 packets.
// The fractional threshold (2 pkts, i.e. 16 split over 8 queues) makes
// the queue underflow and loses throughput.
//
// Substitution note: the paper starts one flow. In a packet-level model
// with per-host NICs at the same rate as the bottleneck, a lone flow's
// standing queue sits in its own NIC (the NIC serializes at exactly the
// drain rate), so the switch queue never builds. Two senders converging
// on the bottleneck create the switch-queue/ECN feedback loop the
// figure is actually about; the claim under test (small thresholds
// underflow, standard thresholds keep the link full) is unchanged.
func runFig2(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	res := &Result{
		ID:      "fig2",
		Title:   "Single-queue throughput vs per-queue threshold",
		Headers: []string{"threshold_pkts", "throughput_gbps"},
	}
	// A 10us per-link delay gives a ~43us RTT whose DCTCP sawtooth
	// amplitude exceeds a 2-packet threshold (underflow) but not a
	// 16-packet one — the regime Figure 2 demonstrates.
	const fig2Delay = 10 * time.Microsecond
	rates := make(map[int]units.Rate)
	for _, k := range []int{2, 16} {
		k := k
		r := runStatic(staticConfig{
			opt: opt,
			profile: topo.PortProfile{
				Weights:   topo.EqualWeights(8),
				NewSched:  topo.WFQFactory(),
				NewMarker: func() ecn.Marker { return &ecn.PerQueueStandard{K: units.Packets(k)} },
			},
			accessRate: motiveRate, bottleneckRate: motiveRate, delay: fig2Delay,
			groups: []flowGroup{{service: 0, count: 2}},
			dur:    dur, warmup: warmup,
		})
		rates[k] = r.totalRate()
		res.AddRow(itoa(k), gbps(rates[k]))
	}
	loss := 1 - float64(rates[2])/float64(rates[16])
	res.AddNote("fractional threshold (2 pkts) loses %.1f%% throughput vs standard (paper: ~6%%)", loss*100)
	return res, nil
}

// perPortFairness runs the 2-queue per-port marking experiment with the
// given port threshold and flow split, reporting per-queue throughput.
func perPortFairness(id, title string, opt Options, portK, q2Flows int) (*Result, error) {
	dur, warmup := staticDur(opt)
	r := runStatic(staticConfig{
		opt: opt,
		profile: topo.PortProfile{
			Weights:   topo.EqualWeights(2),
			NewSched:  topo.WFQFactory(),
			NewMarker: func() ecn.Marker { return &ecn.PerPort{K: units.Packets(portK)} },
		},
		accessRate: motiveRate, bottleneckRate: motiveRate, delay: motiveDelay,
		groups: []flowGroup{
			{service: 0, count: 1},
			{service: 1, count: q2Flows},
		},
		dur: dur, warmup: warmup,
	})
	res := &Result{
		ID:      id,
		Title:   title,
		Headers: []string{"queue", "flows", "throughput_gbps"},
	}
	q1, q2 := r.queueRate(0), r.queueRate(1)
	res.AddRow("1", "1", gbps(q1))
	res.AddRow("2", itoa(q2Flows), gbps(q2))
	share := float64(q1) / float64(q1+q2)
	res.AddNote("queue 1 share = %.2f (weighted fair sharing wants 0.50)", share)
	res.AddNote("port mark fraction = %.3f", markFraction(r.d.Bottleneck))
	return res, nil
}

func runFig3(opt Options) (*Result, error) {
	return perPortFairness("fig3", "Per-port marking, K=16 pkts, queues 1:1, flows 1:8", opt, 16, 8)
}

func runFig6(opt Options) (*Result, error) {
	return perPortFairness("fig6", "Per-port marking, K=65 pkts, flows 1:8 (fairness restored)", opt, 65, 8)
}

func runFig7(opt Options) (*Result, error) {
	return perPortFairness("fig7", "Per-port marking, K=65 pkts, flows 1:40 (fairness violated again)", opt, 65, 40)
}

// markPointPeaks runs the 4-flow single-queue 1 Gbps experiment with the
// given markers and reports the slow-start buffer peak and steady-state
// occupancy for each.
func markPointPeaks(id, title string, opt Options, markers map[string]func() ecn.Marker, order []string) (*Result, error) {
	dur, warmup := staticDur(opt)
	rate := 1 * units.Gbps
	res := &Result{
		ID:      id,
		Title:   title,
		Headers: []string{"scheme", "peak_pkts", "steady_mean_pkts"},
	}
	peaks := make(map[string]float64)
	for _, name := range order {
		mk := markers[name]
		r := runStatic(staticConfig{
			opt: opt,
			profile: topo.PortProfile{
				Weights:   topo.EqualWeights(1),
				NewSched:  topo.FIFOFactory(),
				NewMarker: mk,
			},
			accessRate: rate, bottleneckRate: rate, delay: motiveDelay,
			groups: []flowGroup{{service: 0, count: 4}},
			dur:    dur, warmup: warmup,
			initWindow: 16,
		})
		peak := r.trace.Max()
		peaks[name] = peak
		res.AddRow(name, ftoa(peak), ftoa(r.trace.MeanAfter(warmup)))
		res.AddSeries(traceSeries(&r.trace, "occupancy-"+name, 400))
	}
	return res, nil
}

// runFig4: DCTCP (per-queue threshold 16 pkts) marking at enqueue vs
// dequeue. Dequeue marking tells senders earlier, cutting the slow-start
// peak by ~25% in the paper.
func runFig4(opt Options) (*Result, error) {
	k := units.Packets(16)
	res, err := markPointPeaks("fig4",
		"DCTCP buffer peak: enqueue vs dequeue marking (4 flows, 1 Gbps, K=16 pkts)",
		opt,
		map[string]func() ecn.Marker{
			"dctcp-enqueue": func() ecn.Marker { return &ecn.PerQueueStandard{K: k, MarkPoint: ecn.AtEnqueue} },
			"dctcp-dequeue": func() ecn.Marker { return &ecn.PerQueueStandard{K: k, MarkPoint: ecn.AtDequeue} },
		},
		[]string{"dctcp-enqueue", "dctcp-dequeue"})
	if err != nil {
		return nil, err
	}
	addPeakReduction(res, "dctcp-enqueue", "dctcp-dequeue", "paper: dequeue marking cuts the peak ~25%")
	return res, nil
}

// runFig5: the same scenario under TCN. Its duration-based signal cannot
// arrive earlier, so the peak stays near the enqueue-marking level.
func runFig5(opt Options) (*Result, error) {
	rate := 1 * units.Gbps
	tcnT := ecn.TCNThreshold(units.Packets(16), rate)
	res, err := markPointPeaks("fig5",
		"TCN buffer peak (4 flows, 1 Gbps, sojourn threshold = drain of 16 pkts)",
		opt,
		map[string]func() ecn.Marker{
			"tcn": func() ecn.Marker { return &ecn.TCN{Threshold: tcnT} },
		},
		[]string{"tcn"})
	if err != nil {
		return nil, err
	}
	res.AddNote("TCN threshold = %v (drain time of 16 pkts at 1 Gbps)", tcnT)
	res.AddNote("paper: TCN's peak stays high — no early congestion notification")
	return res, nil
}

// addPeakReduction appends a note comparing two schemes' peaks.
func addPeakReduction(res *Result, base, improved, paperNote string) {
	var basePeak, impPeak float64
	for _, row := range res.Rows {
		if row[0] == base {
			basePeak = atof(row[1])
		}
		if row[0] == improved {
			impPeak = atof(row[1])
		}
	}
	if basePeak > 0 {
		res.AddNote("%s peak is %.1f%% below %s (%s)", improved, (1-impPeak/basePeak)*100, base, paperNote)
	}
}
