package experiment

import (
	"fmt"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// incastSpec registers the incast extension: a partition/aggregate
// query fans out to N workers whose synchronized 64KB responses slam
// one bottleneck port — the classic datacenter micro-burst scenario
// (the paper's references [13], [14] study exactly this). It compares
// marking schemes on query completion time (the slowest flow) and
// packet drops, showing that early (dequeue) congestion notification
// tames the burst.
func incastSpec() Spec {
	return Spec{
		ID:    "incast",
		Title: "Extension: incast micro-burst absorption across marking schemes",
		Run:   runIncast,
	}
}

func runIncast(opt Options) (*Result, error) {
	// Initial window 2 keeps the first-RTT burst (2 x senders packets)
	// inside the buffer so the run shows how each scheme's feedback
	// controls the ramp, not just unavoidable first-window losses.
	senders := 48
	responseSize := int64(64_000)
	if opt.Quick {
		senders = 24
	}
	res := &Result{
		ID:    "incast",
		Title: fmt.Sprintf("Incast: %d synchronized %dKB responses into one port", senders, responseSize/1000),
		Headers: []string{
			"scheme", "query_completion_ms", "mean_fct_ms", "drops", "retransmits",
		},
	}

	type scheme struct {
		name   string
		marker topo.MarkerFactory
	}
	portK := units.Packets(12)
	schemes := []scheme{
		{"dctcp-enqueue", func() ecn.Marker { return &ecn.PerQueueStandard{K: units.Packets(16)} }},
		{"pmsb-enqueue", func() ecn.Marker { return &core.PMSB{PortK: portK} }},
		{"pmsb-dequeue", func() ecn.Marker { return &core.PMSB{PortK: portK, MarkPoint: ecn.AtDequeue} }},
		{"tcn", func() ecn.Marker { return &ecn.TCN{Threshold: units.Serialization(portK, motiveRate)} }},
		{"no-ecn", nil},
	}

	for _, sc := range schemes {
		eng := sim.NewEngine()
		d := topo.NewDumbbell(eng, topo.DumbbellConfig{
			Senders:    senders,
			AccessRate: motiveRate,
			Delay:      motiveDelay,
			Bottleneck: topo.PortProfile{
				Weights:     topo.EqualWeights(1),
				NewSched:    topo.FIFOFactory(),
				NewMarker:   sc.marker,
				BufferBytes: units.Packets(100),
			},
		})
		var done int
		var worst time.Duration
		var sum time.Duration
		var retx int64
		var flows []*transport.Flow
		for i := 0; i < senders; i++ {
			f := transport.NewFlow(eng, d.Senders[i], d.Recv, transportFlowID(i), 0,
				responseSize, transport.Config{InitWindow: 2, MinRTO: time.Millisecond},
				func(s *transport.Sender) {
					done++
					sum += s.FCT()
					if s.FCT() > worst {
						worst = s.FCT()
					}
				})
			flows = append(flows, f)
			f.Sender.Start() // all at t=0: the synchronized burst
		}
		eng.RunUntil(5 * time.Second)
		opt.observeEngine(eng)
		for _, f := range flows {
			retx += f.Sender.Retransmits()
		}
		if done != senders {
			res.AddNote("%s: only %d/%d responses completed", sc.name, done, senders)
		}
		meanMS := 0.0
		if done > 0 {
			meanMS = (sum / time.Duration(done)).Seconds() * 1e3
		}
		res.AddRow(
			sc.name,
			fmt.Sprintf("%.3f", worst.Seconds()*1e3),
			fmt.Sprintf("%.3f", meanMS),
			fmt.Sprintf("%d", d.Bottleneck.DropPackets()),
			fmt.Sprintf("%d", retx),
		)
	}
	res.AddNote("ECN marking absorbs the burst that drop-tail punishes with losses and RTO-inflated completion times")
	return res, nil
}

// transportFlowID maps a worker index to a flow ID.
func transportFlowID(i int) pkt.FlowID { return pkt.FlowID(i + 1) }
