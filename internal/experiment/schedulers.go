package experiment

import (
	"fmt"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/topo"
	"pmsb/internal/units"
)

func schedulerSpecs() []Spec {
	return []Spec{
		{ID: "fig13", Title: "PMSB over SP+WFQ: staged flows settle at 5/2.5/2.5 Gbps", Run: runFig13},
		{ID: "fig14", Title: "PMSB over SP: staged flows settle at 5/3/2 Gbps", Run: runFig14},
		{ID: "fig15", Title: "PMSB over WFQ: staged flows settle at 5/5 Gbps", Run: runFig15},
	}
}

// stagedConfig describes a Section VI-A.3 experiment: staged flow-group
// starts over a 3-phase timeline with expected per-queue rates in the
// final phase.
type stagedConfig struct {
	id, title string
	schedF    topo.SchedFactory
	queues    int
	groups    func(phaseStarts []time.Duration) []flowGroup
	// finalExpected are the paper's final-phase per-queue rates.
	finalExpected []float64
}

// runStaged executes the experiment and reports per-queue throughput in
// each phase.
func runStaged(opt Options, sc stagedConfig) (*Result, error) {
	var phases []time.Duration
	var dur time.Duration
	if opt.Quick {
		phases = []time.Duration{0, 15 * time.Millisecond, 30 * time.Millisecond}
		dur = 45 * time.Millisecond
	} else {
		phases = []time.Duration{0, 40 * time.Millisecond, 80 * time.Millisecond}
		dur = 120 * time.Millisecond
	}
	r := runStatic(staticConfig{
		opt: opt,
		profile: topo.PortProfile{
			Weights:   topo.EqualWeights(sc.queues),
			NewSched:  sc.schedF,
			NewMarker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
		},
		accessRate: motiveRate, bottleneckRate: motiveRate, delay: motiveDelay,
		groups: sc.groups(phases),
		dur:    dur,
	})

	res := &Result{
		ID:      sc.id,
		Title:   sc.title,
		Headers: []string{"phase", "queue", "throughput_gbps"},
	}
	phaseEnd := append(append([]time.Duration{}, phases[1:]...), dur)
	bin := time.Millisecond
	for ph := range phases {
		// Measure the last 60% of each phase (skip convergence).
		start := phases[ph] + (phaseEnd[ph]-phases[ph])*2/5
		from, to := int(start/bin), int(phaseEnd[ph]/bin)
		for q := 0; q < sc.queues; q++ {
			rate := r.series[q].MeanRate(from, to)
			res.AddRow(itoa(ph+1), itoa(q+1), gbps(rate))
		}
	}
	// Final-phase check against the paper's expectation.
	start := phases[len(phases)-1] + (dur-phases[len(phases)-1])*2/5
	from, to := int(start/bin), int(dur/bin)
	for q, want := range sc.finalExpected {
		got := float64(r.series[q].MeanRate(from, to)) / float64(units.Gbps)
		res.AddNote("final phase queue %d: %.2f Gbps (paper: %.1f)", q+1, got, want)
	}
	// The paper's figures are throughput-vs-time plots: emit them.
	for q := 0; q < sc.queues; q++ {
		res.AddSeries(rateSeries(r.series[q], fmt.Sprintf("queue-%d", q+1)))
	}
	return res, nil
}

// runFig13: SP+WFQ — queue 1 strict-high with a 5 Gbps app-limited flow,
// queues 2 and 3 share the remainder 1:1.
func runFig13(opt Options) (*Result, error) {
	return runStaged(opt, stagedConfig{
		id:     "fig13",
		title:  "PMSB over SP+WFQ (q1 strict; q2,q3 WFQ 1:1)",
		schedF: topo.SPWFQFactory(1),
		queues: 3,
		groups: func(ph []time.Duration) []flowGroup {
			return []flowGroup{
				{service: 0, count: 1, rateLimit: 5 * units.Gbps, start: ph[0]},
				{service: 1, count: 1, start: ph[1]},
				{service: 2, count: 4, start: ph[2]},
			}
		},
		finalExpected: []float64{5, 2.5, 2.5},
	})
}

// runFig14: SP — 5 Gbps into the top queue, 3 Gbps into the middle, an
// unbounded flow into the bottom; SP leaves the bottom queue 2 Gbps.
func runFig14(opt Options) (*Result, error) {
	return runStaged(opt, stagedConfig{
		id:     "fig14",
		title:  "PMSB over SP (q1 > q2 > q3)",
		schedF: topo.SPFactory(),
		queues: 3,
		groups: func(ph []time.Duration) []flowGroup {
			return []flowGroup{
				{service: 0, count: 1, rateLimit: 5 * units.Gbps, start: ph[0]},
				{service: 1, count: 1, rateLimit: 3 * units.Gbps, start: ph[1]},
				{service: 2, count: 1, start: ph[2]},
			}
		},
		finalExpected: []float64{5, 3, 2},
	})
}

// runFig15: WFQ 1:1 — one flow alone takes 10 Gbps, then shares 5/5 with
// four late flows in the other queue.
func runFig15(opt Options) (*Result, error) {
	return runStaged(opt, stagedConfig{
		id:     "fig15",
		title:  "PMSB over WFQ (2 queues, 1:1)",
		schedF: topo.WFQFactory(),
		queues: 2,
		groups: func(ph []time.Duration) []flowGroup {
			return []flowGroup{
				{service: 0, count: 1, start: ph[0]},
				{service: 1, count: 4, start: ph[1]},
			}
		},
		finalExpected: []float64{5, 5},
	})
}
