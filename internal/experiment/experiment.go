// Package experiment reproduces every table and figure of the PMSB
// paper's evaluation. Each experiment is registered under the paper's
// figure/table ID (fig1..fig27, table1, theorem41) plus combined sweep
// IDs (fct-dwrr, fct-wfq); cmd/pmsbsim runs them by name and
// bench_test.go exposes one benchmark per experiment.
package experiment

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"pmsb/internal/obs"
	obsrt "pmsb/internal/obs/runtime"
	"pmsb/internal/sim"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks durations and flow counts so the experiment
	// finishes in seconds (used by tests and benchmarks); the paper
	// shape must survive, absolute confidence intervals shrink.
	Quick bool
	// Seed seeds all randomness (default 1).
	Seed int64
	// Repeats runs the randomized large-scale sweeps this many times
	// with consecutive seeds and reports cross-seed means (default 1).
	// Deterministic experiments ignore it.
	Repeats int
	// Shards splits each large-scale simulation across this many shard
	// engines driven in parallel by a sim.Coordinator (default 1 =
	// serial; experiments on small topologies ignore it). Results are
	// deterministic at any fixed shard count. A sharded run occupies
	// Shards workers, so RunMany charges it that many tokens — jobs x
	// shards never oversubscribes the machine.
	Shards int
	// Par picks the parallel windowing protocol for sharded runs
	// (sim.ParChannel by default; sim.ParGlobal is the A/B escape
	// hatch). Both produce byte-identical results. Ignored when
	// Shards <= 1.
	Par sim.ParMode
	// Steal enables work-stealing between shard workers under
	// ParChannel. Ignored otherwise.
	Steal bool
	// Engine selects the simulation engine for experiments that support
	// both: "packet" (default, ground truth) or "flow" (the flow-level
	// fluid fast path in internal/flowsim). Experiments without a
	// flow-level formulation ignore it.
	Engine string

	// Obs, when non-nil, attaches the observability bus to the
	// experiment's bottleneck port, markers and transports. The bus is
	// not synchronized: use it only with serial runs (RunMany jobs=1,
	// Repeats=1).
	Obs *obs.Bus
	// ObsShards, when non-nil, traces a sharded run: entry i is the bus
	// for shard i, and experiments that honor Shards attach each
	// switch/transport to the bus of the shard its node lives on. One
	// bus is fed by exactly one shard engine, which keeps every bus
	// single-goroutine (windows hand engines between workers with
	// happens-before edges, so no two workers touch a shard — or its
	// bus — concurrently) and makes each bus's event stream
	// byte-identical to the same split traced serially. Entry 0 doubles
	// as the fallback bus when a run ends up serial (e.g. Shards
	// clamped to 1); Obs is the fallback when ObsShards is shorter than
	// the shard count.
	ObsShards []*obs.Bus

	// Monitor, when non-nil, is attached to the run's engine or
	// coordinator so a progress sampler can stream live snapshots
	// (pmsbsim -progress). Like Obs it assumes one simulation: use with
	// a single experiment, Repeats=1.
	Monitor *sim.Monitor
	// Runtime, when non-nil, collects the simulator's self-observation:
	// coordinator runtime stats (EnableRuntimeStats is switched on for
	// the run), engine/scheduler self-profiles and pool counters
	// (pmsbsim -runtimestats). The collector is goroutine-safe, but the
	// dump is only meaningful for a single experiment.
	Runtime *obsrt.Collector

	// pool, set by RunMany, lets the repeat loops of randomized sweeps
	// borrow idle workers for per-seed fan-out (see eachRepeat).
	pool *workerPool
	// events, set by RunMany, accumulates processed engine events for
	// the run manifest.
	events *atomic.Int64
}

// obsFor returns the bus for a shard index: ObsShards[shard] when
// present, otherwise Obs. obsFor(0) is the serial-run bus.
func (o Options) obsFor(shard int) *obs.Bus {
	if shard >= 0 && shard < len(o.ObsShards) {
		return o.ObsShards[shard]
	}
	return o.Obs
}

// tracing reports whether any observability bus is attached.
func (o Options) tracing() bool {
	return o.Obs != nil || len(o.ObsShards) > 0
}

// observeEngine credits a finished engine's processed-event count to
// the run manifest and folds its self-profile into the runtime
// collector when one is attached. A no-op outside RunMany (unless
// Runtime is set). Safe to call from the fan-out goroutines of
// eachRepeat.
func (o Options) observeEngine(eng *sim.Engine) {
	if o.events != nil {
		o.events.Add(int64(eng.Processed()))
	}
	if o.Runtime != nil {
		o.Runtime.ObserveSerial(eng)
	}
}

// observeCoordinator is observeEngine's sharded counterpart: it credits
// every shard engine's events to the manifest and harvests the
// coordinator's runtime stats into the collector.
func (o Options) observeCoordinator(coord *sim.Coordinator) {
	if o.events != nil {
		o.events.Add(int64(coord.Processed()))
	}
	if o.Runtime != nil {
		o.Runtime.ObserveCoordinator(coord)
	}
}

// instrument attaches the monitor and enables runtime stats on a
// coordinator about to run. Call between configuration and the first
// RunUntil.
func (o Options) instrument(coord *sim.Coordinator) {
	if o.Monitor != nil {
		coord.SetMonitor(o.Monitor)
	}
	if o.Runtime != nil {
		coord.EnableRuntimeStats()
	}
}

// instrumentEngine attaches the monitor to a serial engine about to
// run.
func (o Options) instrumentEngine(eng *sim.Engine) {
	if o.Monitor != nil {
		eng.SetMonitor(o.Monitor)
	}
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) repeats() int {
	if o.Repeats < 1 {
		return 1
	}
	return o.Repeats
}

func (o Options) engine() string {
	if o.Engine == "" {
		return "packet"
	}
	return o.Engine
}

func (o Options) shards() int {
	if o.Shards < 1 {
		return 1
	}
	return o.Shards
}

// tokenCost is the number of worker tokens one simulation of these
// options occupies: its shard count, capped at the pool size so a
// single run can always make progress.
func (o Options) tokenCost() int {
	n := o.shards()
	if o.pool != nil && n > o.pool.size {
		n = o.pool.size
	}
	return n
}

// Result is an experiment's output table: the rows/series the paper
// plots, plus free-form notes (observations the paper states in prose).
type Result struct {
	// ID is the experiment ID (e.g. "fig9").
	ID string `json:"id"`
	// Title describes the experiment.
	Title string `json:"title"`
	// Headers are column names.
	Headers []string `json:"headers"`
	// Rows are the data rows.
	Rows [][]string `json:"rows"`
	// Notes carry derived observations (e.g. "queue1/queue2 = 0.98").
	Notes []string `json:"notes,omitempty"`
	// Series are plot-ready (x, y) traces for time-series figures
	// (buffer occupancy, throughput vs time).
	Series []Series `json:"series,omitempty"`
}

// Series is one named plot line.
type Series struct {
	// Name labels the line (e.g. "pmsb-dequeue").
	Name string `json:"name"`
	// XUnit / YUnit label the axes (e.g. "ms", "pkts").
	XUnit string `json:"xUnit"`
	YUnit string `json:"yUnit"`
	// X and Y are the coordinates (equal length).
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
}

// JSON renders the result as indented JSON.
func (r *Result) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("marshal result %s: %w", r.ID, err)
	}
	return string(b) + "\n", nil
}

// AddSeries appends a plot line.
func (r *Result) AddSeries(s Series) {
	r.Series = append(r.Series, s)
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a formatted note.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// TSV renders the result as a tab-separated table, including any plot
// series. Use TableTSV to omit the series.
func (r *Result) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", r.ID, r.Title)
	b.WriteString(strings.Join(r.Headers, "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "## series %s (%s vs %s)\n", s.Name, s.YUnit, s.XUnit)
		for i := range s.X {
			fmt.Fprintf(&b, "%g\t%g\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// TableTSV renders only the table and notes (no plot series).
func (r *Result) TableTSV() string {
	table := *r
	table.Series = nil
	return table.TSV()
}

// Spec is a registered experiment.
type Spec struct {
	// ID is the lookup key (paper figure/table number).
	ID string
	// Title is a one-line description.
	Title string
	// Run executes the experiment.
	Run func(opt Options) (*Result, error)
}

// registry returns all experiments, built lazily so each file
// contributes its specs via the builders list.
func registry() map[string]Spec {
	reg := make(map[string]Spec)
	for _, s := range allSpecs() {
		reg[s.ID] = s
	}
	return reg
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Spec, error) {
	s, ok := registry()[id]
	if !ok {
		return Spec{}, fmt.Errorf("unknown experiment %q (use List for valid IDs)", id)
	}
	return s, nil
}

// List returns all experiment specs sorted by ID.
func List() []Spec {
	reg := registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Spec, 0, len(ids))
	for _, id := range ids {
		out = append(out, reg[id])
	}
	return out
}

// allSpecs enumerates every experiment in the repository.
func allSpecs() []Spec {
	specs := []Spec{
		table1Spec(),
		theorem41Spec(),
	}
	specs = append(specs, motivationSpecs()...)
	specs = append(specs, staticSpecs()...)
	specs = append(specs, schedulerSpecs()...)
	specs = append(specs, fctSpecs()...)
	specs = append(specs, fattreeSpecs()...)
	specs = append(specs, extensionSpecs()...)
	specs = append(specs, scenarioSpecs()...)
	specs = append(specs, calibrateSpecs()...)
	return specs
}
