package experiment

import (
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// capability probes derive Table I programmatically from the marker
// implementations instead of hard-coding the matrix, so the table stays
// honest if the code changes.

// supportsGenericScheduler reports whether the marker works on a port
// whose scheduler exposes no round information (WFQ/SP).
func supportsGenericScheduler(m ecn.Marker) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	// A minimal PortView with Round() == nil; if the marker needs round
	// state it panics (MQ-ECN's documented limitation).
	pv := probeView{}
	m.ShouldMark(pv, 0, probePacket())
	return true
}

// supportsEarlyNotification reports whether the marker can deliver
// congestion information at enqueue time (before the packet's sojourn):
// duration-based markers cannot, occupancy-based ones can.
func supportsEarlyNotification(m ecn.Marker) bool {
	// TCN is pinned to dequeue because its signal does not exist before
	// the packet has waited; every occupancy-based marker in this repo
	// honours a configurable mark point with enqueue as default.
	return m.Point() == ecn.AtEnqueue
}

func table1Spec() Spec {
	return Spec{
		ID:    "table1",
		Title: "Table I: MQ-ECN vs TCN vs PMSB vs PMSB(e) capability matrix",
		Run:   runTable1,
	}
}

func runTable1(Options) (*Result, error) {
	res := &Result{
		ID:    "table1",
		Title: "Capability comparison (derived from the implementations)",
		Headers: []string{
			"scheme", "generic_scheduler", "round_based_scheduler",
			"early_notification", "no_switch_modification",
		},
	}
	k := units.Packets(12)
	rows := []struct {
		name   string
		marker ecn.Marker
		// endHost marks PMSB(e): its logic runs at the sender, so no
		// switch modification beyond commodity per-port ECN.
		endHost bool
	}{
		{"mq-ecn", &ecn.MQECN{RTT: 80 * time.Microsecond, Lambda: 1}, false},
		{"tcn", &ecn.TCN{Threshold: 78 * time.Microsecond}, false},
		{"pmsb", &core.PMSB{PortK: k}, false},
		{"pmsb(e)", &ecn.PerPort{K: k}, true},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		generic := supportsGenericScheduler(r.marker)
		res.AddRow(
			r.name,
			mark(generic),
			"yes", // every scheme works on round-based schedulers
			mark(supportsEarlyNotification(r.marker)),
			mark(r.endHost),
		)
	}
	res.AddNote("paper Table I: MQ-ECN lacks generic schedulers; TCN lacks early notification; only PMSB(e) avoids switch modification")
	return res, nil
}

// probeView is the minimal PortView used by capability probes: a single
// lightly loaded queue with no round info.
type probeView struct{}

var _ ecn.PortView = probeView{}

func (probeView) NumQueues() int       { return 1 }
func (probeView) QueueBytes(int) int   { return units.MTU }
func (probeView) QueuePackets(int) int { return 1 }
func (probeView) PortBytes() int       { return units.MTU }
func (probeView) PortPackets() int     { return 1 }
func (probeView) Weight(int) float64   { return 1 }
func (probeView) WeightSum() float64   { return 1 }
func (probeView) LinkRate() units.Rate { return 10 * units.Gbps }
func (probeView) Now() time.Duration   { return time.Millisecond }
func (probeView) Round() ecn.RoundInfo { return nil }

func probePacket() *pkt.Packet { return &pkt.Packet{ECT: true, Size: units.MTU} }
