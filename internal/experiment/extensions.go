package experiment

import (
	"fmt"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// extensionSpecs are experiments that go beyond the paper's figures:
// they validate claims the paper makes in prose (per-service-pool
// marking, the false-positive/false-negative trade-off) and sweep the
// design parameters the paper fixes.
func extensionSpecs() []Spec {
	specs := []Spec{
		{ID: "pool", Title: "Per-service-pool marking violates fairness across ports (Section II-B claim)", Run: runPool},
		{ID: "ablation-portk", Title: "Ablation: per-port threshold sweep (generalizes Figures 6-7)", Run: runAblationPortK},
		{ID: "ablation-filter", Title: "Ablation: PMSB filter aggressiveness (false positive vs false negative)", Run: runAblationFilter},
		incastSpec(),
	}
	specs = append(specs, weightedSpecs()...)
	specs = append(specs, analysisSpecs()...)
	return append(specs, pfcSpec())
}

// runPool validates the paper's prose claim: "We believe per service
// pool will also violate weighted fair sharing, because queues belonging
// to different ports may interfere with each other."
//
// Topology: one switch, two independent 10G output ports sharing one
// buffer pool with a single pool threshold. Port A carries 1 flow (never
// congested on its own), port B carries 8 flows. Under per-pool marking
// the port-A flow gets marked because port B filled the pool; under
// per-port marking it does not.
func runPool(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	res := &Result{
		ID:      "pool",
		Title:   "Cross-port interference under shared-pool marking",
		Headers: []string{"scheme", "portA_gbps", "portB_gbps", "portA_marks"},
	}

	type outcome struct {
		a, b  float64
		marks int64
	}
	run := func(perPool bool) outcome {
		eng := sim.NewEngine()
		sw := netsim.NewSwitch(eng, 1000)
		pool := &ecn.Pool{}
		k := units.Packets(16)

		mkMarker := func() ecn.Marker {
			if perPool {
				return &ecn.PerPool{K: k, Shared: pool}
			}
			return &ecn.PerPort{K: k}
		}
		mkHost := func(id pkt.NodeID) *netsim.Host {
			h := netsim.NewHost(eng, id)
			h.AttachNIC(netsim.NewLink(eng, motiveRate, motiveDelay, sw))
			return h
		}
		recvA, recvB := mkHost(1), mkHost(2)
		portA := netsim.NewPort(eng, netsim.NewLink(eng, motiveRate, motiveDelay, recvA),
			netsim.PortConfig{Sched: sched.NewFIFO(), Marker: mkMarker(), Pool: pool})
		portB := netsim.NewPort(eng, netsim.NewLink(eng, motiveRate, motiveDelay, recvB),
			netsim.PortConfig{Sched: sched.NewFIFO(), Marker: mkMarker(), Pool: pool})
		sw.AddPort(portA)
		sw.AddPort(portB)

		senders := make([]*netsim.Host, 0, 9)
		ports := make(map[pkt.NodeID]int, 11)
		ports[1], ports[2] = 0, 1
		for i := 0; i < 9; i++ {
			h := mkHost(pkt.NodeID(10 + i))
			idx := sw.AddPort(netsim.NewPort(eng,
				netsim.NewLink(eng, motiveRate, motiveDelay, h),
				netsim.PortConfig{Sched: sched.NewFIFO()}))
			ports[h.NodeID()] = idx
			senders = append(senders, h)
		}
		sw.SetRoute(func(p *pkt.Packet) int {
			if idx, ok := ports[p.Dst]; ok {
				return idx
			}
			return -1
		})

		seriesA := stats.NewTimeSeries(time.Millisecond)
		seriesB := stats.NewTimeSeries(time.Millisecond)
		portA.OnDequeue(func(p *pkt.Packet, _ int) { seriesA.Add(eng.Now(), float64(p.Size)) })
		portB.OnDequeue(func(p *pkt.Packet, _ int) { seriesB.Add(eng.Now(), float64(p.Size)) })

		var fid transport.FlowIDGen
		// 1 flow to receiver A, 8 flows to receiver B.
		fa := transport.NewFlow(eng, senders[0], recvA, fid.Next(), 0, 0, transport.Config{}, nil)
		fa.Sender.Start()
		for i := 1; i < 9; i++ {
			f := transport.NewFlow(eng, senders[i], recvB, fid.Next(), 0, 0, transport.Config{}, nil)
			f.Sender.Start()
		}
		eng.RunUntil(dur)
		opt.observeEngine(eng)

		from, to := int(warmup/time.Millisecond), int(dur/time.Millisecond)
		return outcome{
			a:     float64(seriesA.MeanRate(from, to)) / float64(units.Gbps),
			b:     float64(seriesB.MeanRate(from, to)) / float64(units.Gbps),
			marks: portA.MarkedPackets(),
		}
	}

	perPort := run(false)
	perPool := run(true)
	res.AddRow("per-port", fmt.Sprintf("%.2f", perPort.a), fmt.Sprintf("%.2f", perPort.b), fmt.Sprintf("%d", perPort.marks))
	res.AddRow("per-pool", fmt.Sprintf("%.2f", perPool.a), fmt.Sprintf("%.2f", perPool.b), fmt.Sprintf("%d", perPool.marks))
	res.AddNote("per-pool marks %d packets on the un-congested port A (per-port: %d): cross-port interference",
		perPool.marks, perPort.marks)
	res.AddNote("port A throughput %.2f -> %.2f Gbps when pool marking is enabled", perPort.a, perPool.a)
	return res, nil
}

// runAblationPortK sweeps the per-port threshold with the 1:8 flow split
// of Figure 3, exposing the trade-off the paper derives from Figures 6
// and 7: raising the threshold restores fairness (fewer victim marks)
// but inflates latency.
func runAblationPortK(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	res := &Result{
		ID:      "ablation-portk",
		Title:   "Per-port marking: threshold vs fairness vs latency (1:8 flows)",
		Headers: []string{"portK_pkts", "q1_share", "avg_rtt_us", "mark_fraction"},
	}
	import1 := func(k int) (share, rtt, markFrac float64) {
		r := runStatic(staticConfig{
			opt:        opt,
			profile:    defaultTwoQueueProfile(func() ecn.Marker { return &ecn.PerPort{K: units.Packets(k)} }),
			accessRate: motiveRate, bottleneckRate: motiveRate, delay: motiveDelay,
			groups: []flowGroup{
				{service: 0, count: 1, recordRTT: true},
				{service: 1, count: 8, recordRTT: true},
			},
			dur: dur, warmup: warmup,
		})
		q1, q2 := r.queueRate(0), r.queueRate(1)
		return float64(q1) / float64(q1+q2), r.allRTT().Mean(), markFraction(r.d.Bottleneck)
	}
	var firstShare, lastShare float64
	ks := []int{8, 16, 32, 65, 128}
	for i, k := range ks {
		share, rtt, mf := import1(k)
		if i == 0 {
			firstShare = share
		}
		lastShare = share
		res.AddRow(itoa(k), fmt.Sprintf("%.3f", share), usec(rtt), fmt.Sprintf("%.3f", mf))
	}
	res.AddNote("queue-1 share improves from %.2f (K=8) to %.2f (K=128) while RTT grows: the paper's Figure 6/7 trade-off", firstShare, lastShare)
	return res, nil
}

// runAblationFilter sweeps PMSB's per-queue filter scale with the 1:8
// split: scale 0.25 is aggressive (false positives hurt fairness less
// than expected per the paper's observation), large scales are
// conservative (false negatives let the congested queue balloon).
func runAblationFilter(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	res := &Result{
		ID:      "ablation-filter",
		Title:   "PMSB filter scale vs fairness vs congested-queue RTT (1:8 flows, port K=16)",
		Headers: []string{"filter_scale", "q1_share", "q2_p99_rtt_us", "mark_fraction"},
	}
	for _, scale := range []float64{0.25, 0.5, 1.0, 2.0, 4.0} {
		scale := scale
		r := runStatic(staticConfig{
			opt: opt,
			profile: defaultTwoQueueProfile(func() ecn.Marker {
				return &core.PMSB{PortK: units.Packets(16), ThresholdScale: scale}
			}),
			accessRate: motiveRate, bottleneckRate: motiveRate, delay: motiveDelay,
			groups: []flowGroup{
				{service: 0, count: 1},
				{service: 1, count: 8, recordRTT: true},
			},
			dur: dur, warmup: warmup,
		})
		q1, q2 := r.queueRate(0), r.queueRate(1)
		share := float64(q1) / float64(q1+q2)
		res.AddRow(
			fmt.Sprintf("%.2f", scale),
			fmt.Sprintf("%.3f", share),
			usec(r.groupRTT(1).Percentile(99)),
			fmt.Sprintf("%.3f", markFraction(r.d.Bottleneck)),
		)
	}
	res.AddNote("the paper's observation: an aggressive filter (small scale) trades a small false-positive probability for eliminating false negatives")
	return res, nil
}

// defaultTwoQueueProfile is the 2-queue WFQ bottleneck used by the
// ablations.
func defaultTwoQueueProfile(mk func() ecn.Marker) topo.PortProfile {
	return topo.PortProfile{
		Weights:   []float64{1, 1},
		NewSched:  func(w []float64) sched.Scheduler { return sched.NewWFQ(w) },
		NewMarker: mk,
	}
}
