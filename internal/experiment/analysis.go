package experiment

import (
	"fmt"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/topo"
	"pmsb/internal/units"
)

// analysisSpecs registers two model-validation extensions:
//
//   - analysis-validation: the Section IV-D steady-state model (Q_max
//     and oscillation amplitude, Eqs. 8-9) against the simulated queue.
//   - ablation-average: instantaneous vs EWMA-averaged occupancy
//     marking (the "average/instantaneous buffer length" choice of
//     Section II-A) and its cost in burst response.
func analysisSpecs() []Spec {
	return []Spec{
		{ID: "analysis-validation", Title: "Validate the Section IV-D steady-state model against simulation", Run: runAnalysisValidation},
		{ID: "ablation-average", Title: "Ablation: instantaneous vs averaged occupancy marking", Run: runAblationAverage},
	}
}

// runAnalysisValidation runs n synchronized long-lived flows against a
// per-queue threshold and compares the simulated steady-state queue
// maximum with the model's Q_max = k + n (Eq. 8 in packets).
func runAnalysisValidation(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	const delay = 10 * time.Microsecond
	kPkts := 16
	k := units.Packets(kPkts)
	res := &Result{
		ID:    "analysis-validation",
		Title: "Steady-state queue model vs simulation (per-queue K=16 pkts)",
		Headers: []string{
			"flows", "model_qmax_pkts", "sim_qmax_pkts", "model_amp_pkts", "sim_amp_pkts",
		},
	}
	an := &core.Analysis{C: motiveRate, RTT: 42500 * time.Nanosecond, Weights: []float64{1}}
	for _, n := range []int{2, 4, 8} {
		r := runStatic(staticConfig{
			opt: opt,
			profile: topo.PortProfile{
				Weights:   topo.EqualWeights(1),
				NewSched:  topo.FIFOFactory(),
				NewMarker: func() ecn.Marker { return &ecn.PerQueueStandard{K: k} },
			},
			accessRate: motiveRate, bottleneckRate: motiveRate, delay: delay,
			groups: []flowGroup{{service: 0, count: n}},
			dur:    dur, warmup: warmup,
		})
		simMax := r.trace.MaxAfter(warmup)
		simMin := r.trace.MinAfter(warmup)
		simAmp := (simMax - simMin) / 2
		modelMax := an.QueueMax(0, n, float64(k)) / units.MTU
		modelAmp := an.Amplitude(0, n, float64(k)) / units.MTU
		res.AddRow(
			itoa(n),
			fmt.Sprintf("%.1f", modelMax),
			fmt.Sprintf("%.1f", simMax),
			fmt.Sprintf("%.1f", modelAmp),
			fmt.Sprintf("%.1f", simAmp),
		)
	}
	res.AddNote("the model assumes synchronized sawtooths; simulation desynchronizes, so measured amplitudes sit at or below the model's — the conservative direction for Theorem IV.1")
	return res, nil
}

// runAblationAverage compares instantaneous marking with EWMA-averaged
// variants in the 4-flow burst scenario: smaller averaging weights
// react later, so the slow-start peak grows.
func runAblationAverage(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	rate := 1 * units.Gbps
	k := units.Packets(16)
	res := &Result{
		ID:      "ablation-average",
		Title:   "Marking on instantaneous vs averaged occupancy (4 flows, 1 Gbps, K=16)",
		Headers: []string{"ewma_weight", "peak_pkts", "steady_mean_pkts", "mark_fraction"},
	}
	for _, w := range []float64{1.0, 0.25, 0.0625} {
		w := w
		r := runStatic(staticConfig{
			opt: opt,
			profile: topo.PortProfile{
				Weights:  topo.EqualWeights(1),
				NewSched: topo.FIFOFactory(),
				NewMarker: func() ecn.Marker {
					return ecn.NewAveraged(&ecn.PerQueueStandard{K: k}, w)
				},
			},
			accessRate: rate, bottleneckRate: rate, delay: motiveDelay,
			groups: []flowGroup{{service: 0, count: 4}},
			dur:    dur, warmup: warmup,
			initWindow: 16,
		})
		res.AddRow(
			fmt.Sprintf("%.4g", w),
			ftoa(r.trace.Max()),
			ftoa(r.trace.MeanAfter(warmup)),
			fmt.Sprintf("%.3f", markFraction(r.d.Bottleneck)),
		)
	}
	res.AddNote("weight 1.0 is instantaneous marking; heavier averaging delays the congestion signal and inflates the burst peak — why datacenter ECN marks on instantaneous occupancy")
	return res, nil
}
