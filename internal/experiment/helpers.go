package experiment

import (
	"fmt"
	"strconv"
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// flowGroup describes a set of long-lived flows sharing a service class
// in a static-flow experiment.
type flowGroup struct {
	// service selects the switch queue.
	service int
	// count is the number of flows (each on its own sender host).
	count int
	// rateLimit caps each flow's application rate (0 = unlimited).
	rateLimit units.Rate
	// start is the flows' start time.
	start time.Duration
	// filter, when non-nil, installs a per-flow ECN filter (PMSB(e)).
	filter func() transport.Filter
	// recordRTT keeps every RTT sample of the group's flows.
	recordRTT bool
}

// staticConfig describes a dumbbell static-flow experiment.
type staticConfig struct {
	// bottleneck port profile (scheduler/marker/queues).
	profile topo.PortProfile
	// accessRate/bottleneckRate/delay as in topo.DumbbellConfig.
	accessRate, bottleneckRate units.Rate
	delay                      time.Duration
	// groups of long-lived flows.
	groups []flowGroup
	// dur is the simulated duration; warmup is excluded from averages.
	dur, warmup time.Duration
	// binWidth for per-queue throughput series (default 1ms).
	binWidth time.Duration
	// initWindow overrides the DCTCP initial window (0 = default).
	initWindow int
	// schedWith/markerWith, when set, build the bottleneck scheduler
	// and marker factories from the engine (needed by DWRR's clock and
	// any time-aware marker); they override profile.NewSched/NewMarker.
	schedWith  func(eng *sim.Engine) topo.SchedFactory
	markerWith func(eng *sim.Engine) topo.MarkerFactory
	// opt carries the experiment options so the run is accounted in
	// the RunMany manifest; the zero value disables accounting.
	opt Options
}

// staticRun is the instantiated experiment with its measurements.
type staticRun struct {
	d       *topo.Dumbbell
	cfg     staticConfig
	series  []*stats.TimeSeries // per-queue dequeued wire bytes
	trace   stats.Trace         // port occupancy in packets over time
	groups  [][]*transport.Flow // flows per group
	nQueues int
}

// runStatic builds the dumbbell, launches the flow groups, runs the
// clock to cfg.dur and returns the measurements.
func runStatic(cfg staticConfig) *staticRun {
	if cfg.binWidth == 0 {
		cfg.binWidth = time.Millisecond
	}
	eng := sim.NewEngine()
	if cfg.schedWith != nil {
		cfg.profile.NewSched = cfg.schedWith(eng)
	}
	if cfg.markerWith != nil {
		cfg.profile.NewMarker = cfg.markerWith(eng)
	}
	senders := 0
	for _, g := range cfg.groups {
		senders += g.count
	}
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{
		Senders:        senders,
		AccessRate:     cfg.accessRate,
		BottleneckRate: cfg.bottleneckRate,
		Delay:          cfg.delay,
		Bottleneck:     cfg.profile,
	})
	// Attach the bottleneck port (index 0 of the switch) to the
	// observability bus; the access and return ports stay unobserved so
	// traces capture exactly the contended queue the figures plot.
	d.Bottleneck.Observe(cfg.opt.Obs, d.Switch.NodeID(), 0)

	r := &staticRun{d: d, cfg: cfg, nQueues: len(cfg.profile.Weights)}
	r.series = make([]*stats.TimeSeries, r.nQueues)
	for q := range r.series {
		r.series[q] = stats.NewTimeSeries(cfg.binWidth)
	}
	d.Bottleneck.OnDequeue(func(p *pkt.Packet, q int) {
		r.series[q].Add(eng.Now(), float64(p.Size))
		r.trace.Record(eng.Now(), float64(d.Bottleneck.PortPackets()))
	})
	d.Bottleneck.OnEnqueue(func(p *pkt.Packet, q int) {
		r.trace.Record(eng.Now(), float64(d.Bottleneck.PortPackets()))
	})

	var fid transport.FlowIDGen
	host := 0
	for _, g := range cfg.groups {
		g := g
		flows := make([]*transport.Flow, 0, g.count)
		for i := 0; i < g.count; i++ {
			tc := transport.Config{RateLimit: g.rateLimit, InitWindow: cfg.initWindow,
				Obs: cfg.opt.Obs}
			if g.filter != nil {
				tc.Filter = g.filter()
			}
			f := transport.NewFlow(eng, d.Senders[host], d.Recv, fid.Next(), g.service, 0, tc, nil)
			if g.recordRTT {
				f.Sender.RecordRTT()
			}
			eng.ScheduleAt(g.start, f.Sender.Start)
			flows = append(flows, f)
			host++
		}
		r.groups = append(r.groups, flows)
	}
	eng.RunUntil(cfg.dur)
	cfg.opt.observeEngine(eng)
	return r
}

// queueRate returns queue q's mean dequeue rate between warmup and dur.
func (r *staticRun) queueRate(q int) units.Rate {
	from := int(r.cfg.warmup / r.cfg.binWidth)
	to := int(r.cfg.dur / r.cfg.binWidth)
	return r.series[q].MeanRate(from, to)
}

// queueRateAt returns queue q's rate in the bin containing t.
func (r *staticRun) queueRateAt(q int, t time.Duration) units.Rate {
	return r.series[q].Rate(int(t / r.cfg.binWidth))
}

// totalRate returns the aggregate bottleneck rate after warmup.
func (r *staticRun) totalRate() units.Rate {
	var sum units.Rate
	for q := 0; q < r.nQueues; q++ {
		sum += r.queueRate(q)
	}
	return sum
}

// groupRTT aggregates RTT samples of group g.
func (r *staticRun) groupRTT(g int) *stats.Summary {
	var s stats.Summary
	for _, f := range r.groups[g] {
		for _, rtt := range f.Sender.RTTSamples() {
			s.Add(rtt.Seconds())
		}
	}
	return &s
}

// allRTT aggregates RTT samples across every group.
func (r *staticRun) allRTT() *stats.Summary {
	var s stats.Summary
	for g := range r.groups {
		for _, f := range r.groups[g] {
			for _, rtt := range f.Sender.RTTSamples() {
				s.Add(rtt.Seconds())
			}
		}
	}
	return &s
}

// itoa/ftoa/atof are terse numeric formatting helpers for result rows.
func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

func atof(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

// gbps formats a rate with two decimals in Gbps.
func gbps(r units.Rate) string {
	return fmt.Sprintf("%.2f", float64(r)/float64(units.Gbps))
}

// usec formats seconds as microseconds with one decimal.
func usec(seconds float64) string {
	return fmt.Sprintf("%.1f", seconds*1e6)
}

// msec formats seconds as milliseconds with three decimals.
func msec(seconds float64) string {
	return fmt.Sprintf("%.3f", seconds*1e3)
}

// mqecnFor builds an MQ-ECN marker whose standard (fallback) threshold
// equals kBytes on a link of rate c: RTT x lambda is expressed as the
// drain time of kBytes (the identity the paper itself uses: 65 packets
// at 10 Gbps ~ TCN's 78.2us).
func mqecnFor(kBytes int, c units.Rate, point ecn.Point) *ecn.MQECN {
	return &ecn.MQECN{RTT: units.Serialization(kBytes, c), Lambda: 1, MarkPoint: point}
}

// traceSeries converts an occupancy trace into a plot-ready Series,
// decimating to at most maxPoints buckets while preserving each
// bucket's maximum (so slow-start peaks survive).
func traceSeries(tr *stats.Trace, name string, maxPoints int) Series {
	pts := tr.Points()
	s := Series{Name: name, XUnit: "ms", YUnit: "pkts"}
	if len(pts) == 0 {
		return s
	}
	if maxPoints < 1 {
		maxPoints = 1
	}
	stride := (len(pts) + maxPoints - 1) / maxPoints
	for i := 0; i < len(pts); i += stride {
		end := i + stride
		if end > len(pts) {
			end = len(pts)
		}
		maxV := pts[i].V
		maxT := pts[i].T
		for _, p := range pts[i:end] {
			if p.V > maxV {
				maxV, maxT = p.V, p.T
			}
		}
		s.X = append(s.X, float64(maxT)/1e6) // ns -> ms
		s.Y = append(s.Y, maxV)
	}
	return s
}

// cdfSeries renders a Summary's distribution as a CDF plot line
// (x = value in microseconds, y = cumulative probability) — the form
// the paper's RTT-distribution figures (1, 9) use.
func cdfSeries(s *stats.Summary, name string) Series {
	out := Series{Name: name, XUnit: "us", YUnit: "P"}
	for _, p := range s.CDF(101) {
		out.X = append(out.X, p.X*1e6)
		out.Y = append(out.Y, p.P)
	}
	return out
}

// rateSeries converts a per-queue throughput TimeSeries into a Series
// in Gbps per bin.
func rateSeries(ts *stats.TimeSeries, name string) Series {
	s := Series{Name: name, XUnit: "ms", YUnit: "gbps"}
	for i := 0; i < ts.Bins(); i++ {
		s.X = append(s.X, float64(int64(ts.BinWidth())*int64(i))/1e6)
		s.Y = append(s.Y, float64(ts.Rate(i))/1e9)
	}
	return s
}

// markFraction returns the fraction of transmitted packets that carried
// a CE mark at the port.
func markFraction(p *netsim.Port) float64 {
	if p.TxPackets() == 0 {
		return 0
	}
	return float64(p.MarkedPackets()) / float64(p.TxPackets())
}
