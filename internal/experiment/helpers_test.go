package experiment

import (
	"strings"
	"testing"
	"time"

	"pmsb/internal/stats"
	"pmsb/internal/units"
)

func TestTraceSeriesDecimation(t *testing.T) {
	var tr stats.Trace
	for i := 0; i < 1000; i++ {
		tr.Record(time.Duration(i)*time.Microsecond, float64(i%10))
	}
	// Inject one spike that decimation must preserve.
	tr.Record(500*time.Microsecond, 99)
	s := traceSeries(&tr, "x", 50)
	if len(s.X) > 51 {
		t.Fatalf("decimation produced %d points, want <= 51", len(s.X))
	}
	maxY := 0.0
	for _, y := range s.Y {
		if y > maxY {
			maxY = y
		}
	}
	if maxY != 99 {
		t.Fatalf("decimation lost the peak: max = %v", maxY)
	}
	if s.XUnit != "ms" || s.YUnit != "pkts" {
		t.Fatal("units wrong")
	}
}

func TestTraceSeriesEmpty(t *testing.T) {
	var tr stats.Trace
	s := traceSeries(&tr, "empty", 10)
	if len(s.X) != 0 {
		t.Fatal("empty trace must give empty series")
	}
}

func TestRateSeries(t *testing.T) {
	ts := stats.NewTimeSeries(time.Millisecond)
	ts.Add(0, 1.25e6)                 // 1.25MB in 1ms = 10 Gbps
	ts.Add(2*time.Millisecond, 125e3) // 1 Gbps
	s := rateSeries(ts, "q")
	if len(s.X) != 3 {
		t.Fatalf("points = %d", len(s.X))
	}
	if s.Y[0] != 10 || s.Y[1] != 0 || s.Y[2] != 1 {
		t.Fatalf("rates = %v", s.Y)
	}
	if s.X[1] != 1 {
		t.Fatalf("x values = %v (ms)", s.X)
	}
}

func TestCDFSeries(t *testing.T) {
	var sum stats.Summary
	for i := 1; i <= 100; i++ {
		sum.Add(float64(i) * 1e-6) // 1..100 microseconds
	}
	s := cdfSeries(&sum, "rtt")
	if len(s.X) != 101 {
		t.Fatalf("points = %d", len(s.X))
	}
	if s.Y[0] != 0 || s.Y[100] != 1 {
		t.Fatal("CDF endpoints wrong")
	}
	if s.X[0] < 0.99 || s.X[100] > 100.01 {
		t.Fatalf("X range = [%v, %v] us", s.X[0], s.X[100])
	}
}

func TestMqecnForIdentity(t *testing.T) {
	// The helper encodes the paper's own identity: a 65-packet standard
	// threshold at 10G equals TCN's 78us.
	m := mqecnFor(units.Packets(65), 10*units.Gbps, 0)
	if m.RTT != 78*time.Microsecond {
		t.Fatalf("RTT = %v, want 78us", m.RTT)
	}
	if m.Lambda != 1 {
		t.Fatal("lambda must be 1")
	}
}

func TestFormatHelpers(t *testing.T) {
	if itoa(42) != "42" {
		t.Fatal("itoa")
	}
	if ftoa(3.14159) != "3.1" {
		t.Fatalf("ftoa = %q", ftoa(3.14159))
	}
	if atof("2.5") != 2.5 || atof("junk") != 0 {
		t.Fatal("atof")
	}
	if gbps(10*units.Gbps) != "10.00" {
		t.Fatalf("gbps = %q", gbps(10*units.Gbps))
	}
	if usec(1e-6) != "1.0" {
		t.Fatalf("usec = %q", usec(1e-6))
	}
	if msec(0.0015) != "1.500" {
		t.Fatalf("msec = %q", msec(0.0015))
	}
}

func TestResultJSONAndSeries(t *testing.T) {
	res := &Result{ID: "x", Title: "t", Headers: []string{"a"}}
	res.AddRow("1")
	res.AddSeries(Series{Name: "s", XUnit: "ms", YUnit: "pkts", X: []float64{1}, Y: []float64{2}})
	body, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "x"`, `"series"`, `"xUnit": "ms"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("JSON missing %q:\n%s", want, body)
		}
	}
	tsv := res.TSV()
	if !strings.Contains(tsv, "## series s (pkts vs ms)") {
		t.Fatalf("TSV series header missing:\n%s", tsv)
	}
	if strings.Contains(res.TableTSV(), "## series") {
		t.Fatal("TableTSV must omit series")
	}
}

// TestExperimentDeterminism: the same seed must produce byte-identical
// result rows (the repository's core reproducibility promise).
func TestExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"fig3", "fig8", "theorem41"} {
		spec, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		a, err := spec.Run(quick)
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Run(quick)
		if err != nil {
			t.Fatal(err)
		}
		if a.TSV() != b.TSV() {
			t.Fatalf("%s not deterministic", id)
		}
	}
}

func TestMergeFCTPoolsSamples(t *testing.T) {
	a := &fctMetrics{completed: 2, total: 3}
	a.all.Add(1)
	a.small.Add(1)
	b := &fctMetrics{completed: 3, total: 3}
	b.all.Add(3)
	b.large.Add(3)
	m := mergeFCT([]*fctMetrics{a, b})
	if m.completed != 5 || m.total != 6 {
		t.Fatalf("counters = %d/%d", m.completed, m.total)
	}
	if m.all.Count() != 2 || m.all.Mean() != 2 {
		t.Fatalf("pooled all = %d samples mean %v", m.all.Count(), m.all.Mean())
	}
	if m.small.Count() != 1 || m.large.Count() != 1 {
		t.Fatal("class samples not pooled")
	}
	// Single-element merge returns the original.
	if mergeFCT([]*fctMetrics{a}) != a {
		t.Fatal("single merge should be identity")
	}
}

func TestOptionsRepeats(t *testing.T) {
	if (Options{}).repeats() != 1 || (Options{Repeats: -2}).repeats() != 1 {
		t.Fatal("default repeats must be 1")
	}
	if (Options{Repeats: 3}).repeats() != 3 {
		t.Fatal("explicit repeats not honoured")
	}
}
