package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pmsb/internal/sim"
)

// syntheticSpec builds a spec whose Run spins a tiny engine so the
// manifest's event accounting has something real to count. The result
// row records the options seed so callers can verify the spec saw the
// options RunMany handed it.
func syntheticSpec(id string, events int) Spec {
	return Spec{
		ID:    id,
		Title: "synthetic " + id,
		Run: func(opt Options) (*Result, error) {
			eng := sim.NewEngine()
			for i := 0; i < events; i++ {
				eng.Schedule(time.Duration(i)*time.Microsecond, func() {})
			}
			eng.Run()
			opt.observeEngine(eng)
			r := &Result{ID: id, Title: "synthetic " + id, Headers: []string{"seed"}}
			r.AddRow(fmt.Sprintf("%d", opt.seed()))
			return r, nil
		},
	}
}

func TestRunManyPreservesOrder(t *testing.T) {
	var specs []Spec
	for i := 0; i < 12; i++ {
		// Vary the workload so completion order differs from
		// registration order under parallelism.
		specs = append(specs, syntheticSpec(fmt.Sprintf("s%02d", i), 50*(12-i)))
	}
	for _, jobs := range []int{1, 4, 16} {
		results, m, err := RunMany(specs, Options{Seed: 7}, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(results) != len(specs) {
			t.Fatalf("jobs=%d: %d results, want %d", jobs, len(results), len(specs))
		}
		for i, r := range results {
			if r.ID != specs[i].ID {
				t.Fatalf("jobs=%d: result %d is %s, want %s", jobs, i, r.ID, specs[i].ID)
			}
			if r.Rows[0][0] != "7" {
				t.Fatalf("jobs=%d: spec %s saw seed %s, want 7", jobs, r.ID, r.Rows[0][0])
			}
			if m.Experiments[i].ID != specs[i].ID {
				t.Fatalf("jobs=%d: manifest row %d is %s, want %s", jobs, i, m.Experiments[i].ID, specs[i].ID)
			}
		}
	}
}

func TestRunManyManifestCountsEvents(t *testing.T) {
	specs := []Spec{syntheticSpec("a", 100), syntheticSpec("b", 40)}
	_, m, err := RunMany(specs, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 2 {
		t.Fatalf("manifest jobs = %d, want 2", m.Jobs)
	}
	if m.Experiments[0].Events != 100 || m.Experiments[1].Events != 40 {
		t.Fatalf("per-experiment events = %d, %d; want 100, 40",
			m.Experiments[0].Events, m.Experiments[1].Events)
	}
	if m.TotalEvents != 140 {
		t.Fatalf("total events = %d, want 140", m.TotalEvents)
	}
	sum := m.Summary()
	for _, want := range []string{"# summary: 2 experiments, jobs=2", "# a\t", "# b\t", "140 events"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

// An error must surface exactly as a serial loop would have reported
// it: the completed prefix of results, and the earliest failing spec's
// ID wrapping the cause — even when a later spec also fails.
func TestRunManyErrorMatchesSerialSemantics(t *testing.T) {
	boom := errors.New("boom")
	fail := func(id string) Spec {
		return Spec{ID: id, Title: id, Run: func(Options) (*Result, error) { return nil, boom }}
	}
	specs := []Spec{syntheticSpec("ok1", 10), syntheticSpec("ok2", 10), fail("bad1"), fail("bad2")}
	results, m, err := RunMany(specs, Options{}, 4)
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error does not wrap cause: %v", err)
	}
	if !strings.HasPrefix(err.Error(), "bad1:") {
		t.Fatalf("error must name the earliest failing spec: %v", err)
	}
	if len(results) != 2 || results[0].ID != "ok1" || results[1].ID != "ok2" {
		t.Fatalf("results must be the completed prefix, got %d", len(results))
	}
	if m != nil {
		t.Fatal("manifest must be nil on error")
	}
}

func TestRunManyDefaultJobs(t *testing.T) {
	_, m, err := RunMany([]Spec{syntheticSpec("a", 1)}, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs != runtime.NumCPU() {
		t.Fatalf("jobs<1 resolved to %d, want NumCPU %d", m.Jobs, runtime.NumCPU())
	}
}

// A sharded experiment occupies one worker token per shard engine it
// will spin up, so -jobs x -shards can never oversubscribe the machine:
// the weighted concurrency across running specs stays within the pool,
// and a single spec wider than the pool is capped at the pool size
// instead of deadlocking.
func TestRunManyShardsNeverOversubscribe(t *testing.T) {
	const jobs = 4
	for _, shards := range []int{1, 2, 3, 4, 9} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var inUse, peak atomic.Int64
			var specs []Spec
			for i := 0; i < 10; i++ {
				id := fmt.Sprintf("s%d", i)
				specs = append(specs, Spec{
					ID: id, Title: id,
					Run: func(opt Options) (*Result, error) {
						cost := int64(opt.tokenCost())
						cur := inUse.Add(cost)
						for {
							p := peak.Load()
							if cur <= p || peak.CompareAndSwap(p, cur) {
								break
							}
						}
						time.Sleep(2 * time.Millisecond)
						inUse.Add(-cost)
						return &Result{ID: id, Title: id}, nil
					},
				})
			}
			results, _, err := RunMany(specs, Options{Shards: shards}, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(specs) {
				t.Fatalf("%d results, want %d", len(results), len(specs))
			}
			if got := peak.Load(); got > jobs {
				t.Fatalf("peak weighted concurrency %d exceeds %d jobs", got, jobs)
			}
			wantCost := shards
			if wantCost > jobs {
				wantCost = jobs
			}
			if shards >= jobs && peak.Load() != int64(wantCost) {
				t.Fatalf("pool-wide spec should still run alone at cost %d, saw peak %d",
					wantCost, peak.Load())
			}
		})
	}
}

// eachRepeat is the nested fan-out used by the randomized sweeps. With
// or without a pool attached it must run every index exactly once and
// let per-index slots reassemble deterministically; with a pool it must
// never deadlock even when every token is already held (the caller
// always runs iterations inline as a fallback).
func TestEachRepeatCoversAllIndices(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"serial", Options{}},
		{"pooled", Options{pool: newWorkerPool(4)}},
		{"starved", func() Options {
			p := newWorkerPool(2)
			p.acquireN(1)
			p.acquireN(1) // all tokens held: fan-out must degrade to inline
			return Options{pool: p}
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 17
			var calls [n]atomic.Int32
			tc.opt.eachRepeat(n, func(r int) { calls[r].Add(1) })
			for r := range calls {
				if got := calls[r].Load(); got != 1 {
					t.Fatalf("index %d ran %d times, want 1", r, got)
				}
			}
		})
	}
}

// The repeat fan-out must not change what a sweep computes: per-index
// slots filled under a pool equal the serial fill.
func TestEachRepeatDeterministicSlots(t *testing.T) {
	fill := func(opt Options) []int64 {
		out := make([]int64, 9)
		opt.eachRepeat(len(out), func(r int) {
			eng := sim.NewEngine()
			for i := 0; i <= r; i++ {
				eng.Schedule(time.Duration(i)*time.Microsecond, func() {})
			}
			eng.Run()
			out[r] = int64(eng.Processed()) * (int64(r) + 3)
		})
		return out
	}
	serial := fill(Options{})
	pooled := fill(Options{pool: newWorkerPool(8)})
	for r := range serial {
		if serial[r] != pooled[r] {
			t.Fatalf("slot %d: serial %d != pooled %d", r, serial[r], pooled[r])
		}
	}
}
