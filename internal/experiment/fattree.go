package experiment

import (
	"fmt"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// Fat-tree experiments: the k=8 (128-host) fabric the sharded
// coordinator is benchmarked on, registered as first-class experiments
// so the runtime-introspection surface (-runtimestats, -progress) has a
// genuinely multi-shard workload to explain. Two traffic shapes:
//
//   - "fattree": cross-pod permutation traffic — every pod sends and
//     receives, so the pod-sharded partition is roughly balanced.
//   - "fattree-incast": pods 1..7 all send into pod 0 — the skewed
//     load where one shard's windows dominate and work-stealing (and
//     the shard-imbalance report) earn their keep. EXPERIMENTS.md
//     walks through diagnosing this one.
//
// Both honor Shards/Par/Steal (pods block-partition onto up to 8
// shards) and the tracing/monitor/runtime options, with fixed start
// times and deadlines so results are deterministic and byte-identical
// across shard counts (the same workload shape differential_test.go
// gates).

const (
	fattreeK        = 8
	fattreeServices = 4
	fattreeDeadline = 50 * time.Millisecond
)

// fattreeConfig is the shared port/fabric profile for a k-ary tree:
// DWRR scheduling carved from per-shard slabs, one shared (stateless)
// PMSB marker, the paper's 250-packet port buffer, and a nanosecond
// fabric-delay skew so no two cross-shard arrivals can tie (the
// precondition for shard-count-invariant results). The slab/shared
// profile is what keeps the k=32 (49k-port) fabric buildable in a few
// MB; the k=8 differential suite gates its behavioral equivalence with
// the per-port factories.
func fattreeConfig(k int) topo.FatTreeConfig {
	return topo.FatTreeConfig{
		K:               k,
		FabricDelaySkew: time.Nanosecond,
		Ports: topo.PortProfile{
			Weights:       topo.EqualWeights(fattreeServices),
			NewSchedBlock: topo.DWRRBlocks(),
			SharedMarker:  &core.PMSB{PortK: units.Packets(fctPortK)},
			BufferBytes:   units.Packets(fctBufferPkts),
		},
	}
}

// fattreeFlow is one flow of the fixed workload.
type fattreeFlow struct {
	src, dst int
	size     int64
}

// fattreeCrossPod is the permutation-ish cross-pod workload (the
// differential tests' shape): deterministic src/dst striding that
// touches every pod. n flows over the k-ary tree's k^3/4 hosts.
func fattreeCrossPod(k, n int) []fattreeFlow {
	hostsPP := (k / 2) * (k / 2)
	nHosts := k * k * k / 4
	flows := make([]fattreeFlow, 0, n)
	for i := 0; i < n; i++ {
		src := (i * 7) % nHosts
		dst := (src + hostsPP + i*11) % nHosts
		if dst/hostsPP == src/hostsPP {
			dst = (dst + hostsPP) % nHosts
		}
		flows = append(flows, fattreeFlow{src: src, dst: dst, size: 50_000})
	}
	return flows
}

// fattreeIncast is the skewed workload: perPod senders in each of pods
// 1..k-1 converge on host 0 in pod 0.
func fattreeIncast(k, perPod int) []fattreeFlow {
	hostsPP := (k / 2) * (k / 2)
	var flows []fattreeFlow
	for p := 1; p < k; p++ {
		for j := 0; j < perPod; j++ {
			flows = append(flows, fattreeFlow{src: p*hostsPP + j*3, dst: 0, size: 30_000})
		}
	}
	return flows
}

// runFatTree builds the k-ary fabric (serial or pod-sharded per opt),
// starts the fixed workload, and reports completions and FCT
// percentiles.
func runFatTree(id, title string, k int, flows []fattreeFlow, opt Options) (*Result, error) {
	cfg := fattreeConfig(k)
	shards := opt.shards()
	if shards > k {
		shards = k
	}
	var (
		ft    *topo.FatTree
		eng   *sim.Engine
		coord *sim.Coordinator
		part  *topo.Partition
	)
	if shards > 1 {
		coord = sim.NewCoordinator()
		coord.SetMode(opt.Par)
		coord.SetWorkStealing(opt.Steal)
		ft, part = topo.NewFatTreeSharded(coord, cfg, shards)
	} else {
		eng = sim.NewEngine()
		ft = topo.NewFatTree(eng, cfg)
	}

	busForNode := func(id pkt.NodeID) *obs.Bus {
		if part != nil {
			if s, ok := part.ShardOf(id); ok {
				return opt.obsFor(s)
			}
		}
		return opt.obsFor(0)
	}
	if opt.tracing() {
		for _, sw := range ft.Edges {
			sw.Observe(busForNode(sw.NodeID()))
		}
		for _, sw := range ft.Aggs {
			sw.Observe(busForNode(sw.NodeID()))
		}
		for _, sw := range ft.Cores {
			sw.Observe(busForNode(sw.NodeID()))
		}
	}

	var fcts stats.Summary
	completed := 0
	var fid transport.FlowIDGen
	for i, fl := range flows {
		cfg := transport.Config{InitWindow: fctInitWindow}
		if opt.tracing() {
			cfg.Obs = busForNode(ft.Host(fl.src).NodeID())
		}
		f := transport.NewFlow(ft.Eng, ft.Host(fl.src), ft.Host(fl.dst), fid.Next(),
			i%fattreeServices, fl.size, cfg, func(s *transport.Sender) {
				fcts.Add(s.FCT().Seconds())
				completed++
			})
		f.Sender.StartAt(time.Duration(i) * 4 * time.Microsecond)
	}

	if coord != nil {
		opt.instrument(coord)
		coord.RunUntil(fattreeDeadline)
	} else {
		opt.instrumentEngine(eng)
		eng.RunUntil(fattreeDeadline)
	}

	var routeDrops, unclaimed int64
	for _, sw := range ft.Edges {
		routeDrops += sw.RouteDrops()
	}
	for _, sw := range ft.Aggs {
		routeDrops += sw.RouteDrops()
	}
	for _, sw := range ft.Cores {
		routeDrops += sw.RouteDrops()
	}
	for _, h := range ft.Hosts {
		unclaimed += h.UnclaimedPackets()
	}
	if routeDrops > 0 || unclaimed > 0 {
		return nil, fmt.Errorf("%s: fabric sanity violated (routeDrops=%d unclaimed=%d)",
			id, routeDrops, unclaimed)
	}

	var events uint64
	if coord != nil {
		events = coord.Processed()
		opt.observeCoordinator(coord)
	} else {
		events = eng.Processed()
		opt.observeEngine(eng)
	}

	res := &Result{
		ID:      id,
		Title:   title,
		Headers: []string{"metric", "value"},
	}
	res.AddRow("flows", fmt.Sprintf("%d", len(flows)))
	res.AddRow("completed", fmt.Sprintf("%d", completed))
	res.AddRow("events", fmt.Sprintf("%d", events))
	res.AddRow("shards", fmt.Sprintf("%d", shards))
	if fcts.Count() > 0 {
		res.AddRow("fct-mean-ms", msec(fcts.Mean()))
		res.AddRow("fct-p99-ms", msec(fcts.Percentile(99)))
	}
	if completed < len(flows) {
		res.AddNote("%d of %d flows unfinished at %v", len(flows)-completed, len(flows), fattreeDeadline)
	}
	return res, nil
}

// fattreeSpecs registers the fat-tree experiments.
func fattreeSpecs() []Spec {
	return []Spec{
		{
			ID:    "fattree",
			Title: "k=8 fat-tree, cross-pod permutation traffic (PMSB + DWRR)",
			Run: func(opt Options) (*Result, error) {
				n := 64
				if opt.Quick {
					n = 32
				}
				return runFatTree("fattree",
					"k=8 fat-tree, cross-pod permutation traffic (PMSB + DWRR)",
					fattreeK, fattreeCrossPod(fattreeK, n), opt)
			},
		},
		{
			ID:    "fattree-incast",
			Title: "k=8 fat-tree, pods 1..7 incast into pod 0 (shard-skew scenario)",
			Run: func(opt Options) (*Result, error) {
				perPod := 4
				if opt.Quick {
					perPod = 2
				}
				return runFatTree("fattree-incast",
					"k=8 fat-tree, pods 1..7 incast into pod 0 (shard-skew scenario)",
					fattreeK, fattreeIncast(fattreeK, perPod), opt)
			},
		},
		{
			ID:    "fattree32",
			Title: "k=32 fat-tree (8192 hosts, 49k ports), cross-pod permutation traffic",
			Run: func(opt Options) (*Result, error) {
				// The arena-backed builder's headline scale: ~49k ports in a
				// few slab allocations. The workload is a wider permutation
				// stripe (one flow per pod pair's worth of striding) so every
				// pod — and, sharded, every shard — carries traffic.
				n := 256
				if opt.Quick {
					n = 64
				}
				return runFatTree("fattree32",
					"k=32 fat-tree (8192 hosts, 49k ports), cross-pod permutation traffic",
					32, fattreeCrossPod(32, n), opt)
			},
		},
	}
}
