package experiment

import (
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

func staticSpecs() []Spec {
	return []Spec{
		{ID: "fig8", Title: "PMSB weighted fair sharing, DWRR, 12 pkts, flows 1:4", Run: runFig8},
		{ID: "fig9", Title: "RTT distribution: PMSB vs PMSB(e) vs MQ-ECN vs TCN vs per-queue standard", Run: runFig9},
		{ID: "fig10", Title: "PMSB weighted fair sharing under heavy traffic, flows 1:100", Run: runFig10},
		{ID: "fig11", Title: "PMSB buffer peak: enqueue vs dequeue marking", Run: runFig11},
		{ID: "fig12", Title: "PMSB(e) buffer peak: enqueue vs dequeue marking", Run: runFig12},
	}
}

// pmsbFairness runs the paper's Section VI-A.1 weighted-fair-sharing
// experiment: DWRR with two equal queues, PMSB with a 12-packet port
// threshold, 1 flow in queue 1 vs q2Flows in queue 2.
func pmsbFairness(id, title string, opt Options, q2Flows int) (*Result, error) {
	dur, warmup := staticDur(opt)
	if opt.Quick && q2Flows > 30 {
		q2Flows = 30 // preserve the heavy-traffic character, cut runtime
	}
	r := runStatic(staticConfig{
		opt: opt,
		profile: topo.PortProfile{
			Weights:   topo.EqualWeights(2),
			NewSched:  topo.WFQFactory(),
			NewMarker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12), Obs: opt.Obs} },
		},
		accessRate: motiveRate, bottleneckRate: motiveRate, delay: motiveDelay,
		groups: []flowGroup{
			{service: 0, count: 1},
			{service: 1, count: q2Flows},
		},
		dur: dur, warmup: warmup,
	})
	res := &Result{
		ID:      id,
		Title:   title,
		Headers: []string{"queue", "flows", "throughput_gbps"},
	}
	q1, q2 := r.queueRate(0), r.queueRate(1)
	res.AddRow("1", "1", gbps(q1))
	res.AddRow("2", itoa(q2Flows), gbps(q2))
	res.AddNote("queue 1 share = %.2f (PMSB preserves the 0.50 weighted fair share)", float64(q1)/float64(q1+q2))
	res.AddNote("total = %s Gbps (full 10G utilization expected)", gbps(q1+q2))
	return res, nil
}

func runFig8(opt Options) (*Result, error) {
	return pmsbFairness("fig8", "PMSB fair sharing: DWRR, port K=12 pkts, flows 1:4", opt, 4)
}

func runFig10(opt Options) (*Result, error) {
	return pmsbFairness("fig10", "PMSB fair sharing under heavy traffic: flows 1:100", opt, 100)
}

// fig9 parameters (paper Section VI-A.1): port threshold 12 packets,
// PMSB(e) RTT threshold 40us, TCN sojourn threshold 39us.
func runFig9(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	portK := units.Packets(12)
	res := &Result{
		ID:      "fig9",
		Title:   "RTT of queue-2 flows (DWRR, 2 queues, flows 1:4)",
		Headers: []string{"scheme", "avg_rtt_us", "p99_rtt_us"},
	}

	type scheme struct {
		name   string
		marker func(eng *sim.Engine) topo.MarkerFactory
		sched  func(eng *sim.Engine) topo.SchedFactory
		filter func() transport.Filter
	}
	dwrr := func(eng *sim.Engine) topo.SchedFactory { return topo.DWRRFactory(eng) }
	schemes := []scheme{
		{
			name: "pmsb",
			marker: func(*sim.Engine) topo.MarkerFactory {
				return func() ecn.Marker { return &core.PMSB{PortK: portK, Obs: opt.Obs} }
			},
			sched: dwrr,
		},
		{
			name: "pmsb(e)",
			marker: func(*sim.Engine) topo.MarkerFactory {
				return func() ecn.Marker { return &ecn.PerPort{K: portK} }
			},
			sched:  dwrr,
			filter: func() transport.Filter { return &core.PMSBe{RTTThreshold: 40 * time.Microsecond} },
		},
		{
			name: "mq-ecn",
			marker: func(*sim.Engine) topo.MarkerFactory {
				return func() ecn.Marker { return mqecnFor(units.Packets(16), motiveRate, ecn.AtEnqueue) }
			},
			sched: dwrr,
		},
		{
			name: "tcn",
			marker: func(*sim.Engine) topo.MarkerFactory {
				return func() ecn.Marker { return &ecn.TCN{Threshold: 39 * time.Microsecond} }
			},
			sched: dwrr,
		},
		{
			name: "per-queue-std",
			marker: func(*sim.Engine) topo.MarkerFactory {
				return func() ecn.Marker { return &ecn.PerQueueStandard{K: units.Packets(16)} }
			},
			sched: dwrr,
		},
	}

	results := make(map[string][2]float64)
	for _, sc := range schemes {
		r := runStatic(staticConfig{
			opt:        opt,
			profile:    topo.PortProfile{Weights: topo.EqualWeights(2)},
			schedWith:  sc.sched,
			markerWith: sc.marker,
			accessRate: motiveRate, bottleneckRate: motiveRate, delay: motiveDelay,
			groups: []flowGroup{
				{service: 0, count: 1},
				{service: 1, count: 4, filter: sc.filter, recordRTT: true},
			},
			dur: dur, warmup: warmup,
		})
		s := r.groupRTT(1)
		results[sc.name] = [2]float64{s.Mean(), s.Percentile(99)}
		res.AddRow(sc.name, usec(s.Mean()), usec(s.Percentile(99)))
		res.AddSeries(cdfSeries(s, "rtt-cdf-"+sc.name))
	}
	std := results["per-queue-std"]
	pmsbR := results["pmsb"]
	pmsbeR := results["pmsb(e)"]
	res.AddNote("PMSB avg/p99 RTT %.1f%%/%.1f%% below per-queue standard (paper: 63.2%%/62.6%%)",
		(1-pmsbR[0]/std[0])*100, (1-pmsbR[1]/std[1])*100)
	res.AddNote("PMSB(e) avg/p99 RTT %.1f%%/%.1f%% below per-queue standard (paper: 55.8%%/55.5%%)",
		(1-pmsbeR[0]/std[0])*100, (1-pmsbeR[1]/std[1])*100)
	return res, nil
}

// pmsbPeaks runs the Section VI-A.2 early-notification experiment for
// one scheme pair (enqueue vs dequeue marking).
func pmsbPeaks(id, title string, opt Options, mk func(point ecn.Point) ecn.Marker, filter func() transport.Filter) (*Result, error) {
	dur, warmup := staticDur(opt)
	res := &Result{
		ID:      id,
		Title:   title,
		Headers: []string{"mark_point", "peak_pkts", "steady_mean_pkts"},
	}
	peaks := make(map[string]float64)
	for _, point := range []ecn.Point{ecn.AtEnqueue, ecn.AtDequeue} {
		point := point
		r := runStatic(staticConfig{
			opt: opt,
			profile: topo.PortProfile{
				Weights:   topo.EqualWeights(1),
				NewSched:  topo.FIFOFactory(),
				NewMarker: func() ecn.Marker { return mk(point) },
			},
			accessRate: motiveRate, bottleneckRate: motiveRate, delay: motiveDelay,
			groups: []flowGroup{{service: 0, count: 4, filter: filter}},
			dur:    dur, warmup: warmup,
			initWindow: 16,
		})
		peaks[point.String()] = r.trace.Max()
		res.AddRow(point.String(), ftoa(r.trace.Max()), ftoa(r.trace.MeanAfter(warmup)))
		res.AddSeries(traceSeries(&r.trace, "occupancy-"+point.String(), 400))
	}
	res.AddNote("dequeue peak is %.1f%% below enqueue peak (paper: ~20%%)",
		(1-peaks["dequeue"]/peaks["enqueue"])*100)
	return res, nil
}

func runFig11(opt Options) (*Result, error) {
	portK := units.Packets(12)
	return pmsbPeaks("fig11", "PMSB buffer occupancy peak: enqueue vs dequeue (4 flows, port K=12 pkts)",
		opt,
		func(point ecn.Point) ecn.Marker { return &core.PMSB{PortK: portK, MarkPoint: point} },
		nil)
}

func runFig12(opt Options) (*Result, error) {
	portK := units.Packets(12)
	// PMSB(e): per-port switch marking plus the end-host RTT filter.
	// The paper sets the RTT threshold to 14.4us (the drain time of the
	// 12-packet port threshold): in this single-queue experiment every
	// genuine congestion mark arrives with an RTT above it, so the
	// filter passes congestion signals through while the early-
	// notification comparison runs.
	filter := func() transport.Filter {
		return &core.PMSBe{RTTThreshold: units.Serialization(portK, motiveRate)}
	}
	return pmsbPeaks("fig12", "PMSB(e) buffer occupancy peak: enqueue vs dequeue (4 flows, port K=12 pkts)",
		opt,
		func(point ecn.Point) ecn.Marker { return &ecn.PerPort{K: portK, MarkPoint: point} },
		filter)
}
