package experiment

import (
	"fmt"
	"math"
	"time"

	"pmsb/internal/flowsim"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/units"
	"pmsb/internal/workload"
)

// The calibration harness: every shared scenario runs through the
// packet engine (ground truth) and the flow-level fluid engine, and the
// FCT distribution percentiles are compared head-to-head. The relative
// error column is the fast path's accuracy budget; the wall-clock notes
// are what it buys. EXPERIMENTS.md walks through reading the table.

// fctSummary pools the non-zero FCTs (completed flows) into a summary,
// restricted to indices where both engines completed when both is set.
func fctSummary(fcts []time.Duration, both []time.Duration) stats.Summary {
	var s stats.Summary
	for i, fct := range fcts {
		if fct == 0 {
			continue
		}
		if both != nil && both[i] == 0 {
			continue
		}
		s.Add(fct.Seconds())
	}
	return s
}

func relErr(flow, packet float64) string {
	if packet == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (flow-packet)/packet*100)
}

// runCalibrate runs every scenario through both engines and tabulates
// FCT p50/p95/p99 of each plus the flow engine's relative error,
// computed over the flows that completed in both engines.
func runCalibrate(opt Options) (*Result, error) {
	res := &Result{
		ID:    "calibrate",
		Title: "Flow-level engine calibration vs packet-level ground truth",
		Headers: []string{
			"scenario", "flows", "pkt_done", "flow_done",
			"pkt_p50_ms", "flow_p50_ms", "p50_err",
			"pkt_p95_ms", "flow_p95_ms", "p95_err",
			"pkt_p99_ms", "flow_p99_ms", "p99_err",
		},
	}
	for _, def := range scenarioDefs() {
		net := def.build(opt.Quick, opt.seed())
		pkt, err := net.packet(opt, net)
		if err != nil {
			return nil, err
		}
		flow := runFlowScenario(net)
		ps := fctSummary(pkt.fcts, flow.fcts)
		fs := fctSummary(flow.fcts, pkt.fcts)
		if ps.Count() == 0 || fs.Count() == 0 {
			return nil, fmt.Errorf("calibrate %s: no flows completed in both engines (pkt %d, flow %d)",
				def.id, pkt.completed, flow.completed)
		}
		row := []string{
			def.id,
			fmt.Sprintf("%d", len(net.specs)),
			fmt.Sprintf("%d", pkt.completed),
			fmt.Sprintf("%d", flow.completed),
		}
		for _, p := range []float64{50, 95, 99} {
			pv, fv := ps.Percentile(p), fs.Percentile(p)
			row = append(row, msec(pv), msec(fv), relErr(fv, pv))
		}
		res.AddRow(row...)
		speedup := float64(pkt.wall) / math.Max(float64(flow.wall), 1)
		res.AddNote("%s: packet %v / flow %v wall clock (%.0fx), packet %d / flow %d events",
			def.id, pkt.wall.Round(time.Millisecond), flow.wall.Round(10*time.Microsecond),
			speedup, pkt.events, flow.events)
	}
	res.AddNote("errors computed over flows completed in both engines; seed %d, quick=%v", opt.seed(), opt.Quick)
	return res, nil
}

// runFlowScale runs the flow engine on a fabric far beyond the packet
// engine's reach: a 1000-leaf x 64-spine, 100k-host leaf-spine (quick:
// 100 x 16, 5k hosts) under permutation traffic with web-search sizes.
// The packet engine at this scale would need billions of events; the
// flow engine's solve count is bounded by sim-time/quantum.
func runFlowScale(opt Options) (*Result, error) {
	cfg := topo.LeafSpineConfig{Leaves: 1000, Spines: 64, HostsPerLeaf: 100, Rate: fctRate}
	if opt.Quick {
		cfg = topo.LeafSpineConfig{Leaves: 100, Spines: 16, HostsPerLeaf: 50, Rate: fctRate}
	}
	g := topo.LeafSpinePaths(cfg)
	specs := workload.Permutation(workload.PermutationConfig{
		Hosts:    g.Hosts,
		Dist:     workload.WebSearch(),
		Stagger:  time.Microsecond,
		Services: fattreeServices,
		Seed:     opt.seed(),
	})
	deadline := specs[len(specs)-1].Start + 500*time.Millisecond

	start := time.Now()
	eng := sim.NewEngine()
	completed := 0
	var fcts stats.Summary
	fs := flowsim.New(eng, g, flowsim.Config{
		Marking:    flowsim.PMSB{KBytes: float64(units.Packets(fctPortK))},
		Weights:    []int{1, 1, 1, 1},
		InitWindow: fctInitWindow,
		OnFinish: func(r flowsim.FlowResult) {
			completed++
			fcts.Add(r.FCT.Seconds())
		},
	})
	fs.Start(specs)
	eng.RunUntil(deadline)
	wall := time.Since(start)

	res := &Result{
		ID:      "flow-scale",
		Title:   "Flow-level engine at 100k-host scale (packet engine: out of reach)",
		Headers: []string{"metric", "value"},
	}
	res.AddRow("hosts", fmt.Sprintf("%d", g.Hosts))
	res.AddRow("links", fmt.Sprintf("%d", len(g.Links)))
	res.AddRow("flows", fmt.Sprintf("%d", len(specs)))
	res.AddRow("completed", fmt.Sprintf("%d", completed))
	res.AddRow("events", fmt.Sprintf("%d", eng.Processed()))
	res.AddRow("sim-horizon-ms", fmt.Sprintf("%.1f", deadline.Seconds()*1e3))
	if fcts.Count() > 0 {
		res.AddRow("fct-p50-ms", msec(fcts.Percentile(50)))
		res.AddRow("fct-p99-ms", msec(fcts.Percentile(99)))
	}
	res.AddNote("wall clock: %v", wall.Round(time.Millisecond))
	if completed < len(specs) {
		res.AddNote("%d of %d flows unfinished at %v", len(specs)-completed, len(specs), deadline)
	}
	return res, nil
}

// calibrateSpecs registers the calibration harness and the scale
// demonstration.
func calibrateSpecs() []Spec {
	return []Spec{
		{
			ID:    "calibrate",
			Title: "Flow-level engine calibration vs packet-level ground truth",
			Run:   runCalibrate,
		},
		{
			ID:    "flow-scale",
			Title: "Flow-level engine at 100k-host scale",
			Run:   runFlowScale,
		},
	}
}
