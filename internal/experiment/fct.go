package experiment

import (
	"fmt"
	"sync"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/flowsim"
	"pmsb/internal/obs"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
	"pmsb/internal/workload"
)

// Large-scale setup (paper Section VI-B): 48-host leaf-spine, 10 Gbps,
// DCTCP with initial window 16; PMSB/PMSB(e) port threshold 12 packets,
// PMSB(e) RTT threshold 85.2us, MQ-ECN standard threshold 65 packets,
// TCN threshold 78.2us; PMSB/PMSB(e)/MQ-ECN mark at enqueue, TCN at
// dequeue (its only option).
const (
	fctRate       = 10 * units.Gbps
	fctPortK      = 12 // packets, PMSB / PMSB(e)
	fctMQECNK     = 65 // packets, MQ-ECN standard threshold
	fctTCNThresh  = 78200 * time.Nanosecond
	fctPMSBeRTT   = 85200 * time.Nanosecond
	fctInitWindow = 16
	fctBufferPkts = 250 // shared per-port buffer
	fctServiceCnt = 8
)

// fctScheme bundles a marking scheme's fabric-wide configuration.
// fluid, when non-nil, is the scheme's flow-level (fluid) counterpart,
// which the -engine flow preview runs instead of the packet fabric;
// schemes without one (TCN's sojourn-time marking has no fluid
// equivalent) are skipped there with a note.
type fctScheme struct {
	name      string
	marker    topo.MarkerFactory
	filter    func() transport.Filter
	fluid     flowsim.Marking
	roundOnly bool // requires a round-based scheduler (MQ-ECN)
}

func fctSchemes() []fctScheme {
	return []fctScheme{
		{
			name:   "pmsb",
			marker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(fctPortK)} },
			fluid:  flowsim.PMSB{KBytes: float64(units.Packets(fctPortK))},
		},
		{
			name:   "pmsb(e)",
			marker: func() ecn.Marker { return &ecn.PerPort{K: units.Packets(fctPortK)} },
			filter: func() transport.Filter { return &core.PMSBe{RTTThreshold: fctPMSBeRTT} },
			// The RTT-threshold filter lives in the transport; the fluid
			// preview keeps the per-port marking half of the scheme.
			fluid: flowsim.PerPort{KBytes: float64(units.Packets(fctPortK))},
		},
		{
			name:      "mq-ecn",
			marker:    func() ecn.Marker { return mqecnFor(units.Packets(fctMQECNK), fctRate, ecn.AtEnqueue) },
			fluid:     flowsim.MQECN{KBytes: float64(units.Packets(fctMQECNK))},
			roundOnly: true,
		},
		{
			name:   "tcn",
			marker: func() ecn.Marker { return &ecn.TCN{Threshold: fctTCNThresh} },
		},
	}
}

// fctMetrics holds per-size-class FCT summaries of one run plus the
// sanity diagnostics every run must satisfy (no routing holes, no
// misdelivered packets).
type fctMetrics struct {
	all, small, medium, large stats.Summary
	completed, total          int
	routeDrops, unclaimed     int64
}

// fctCache memoizes full sweep results so the twelve per-figure
// projections (fig16..fig27) of one pmsbsim -all invocation do not
// re-simulate the same cells. The simulator is deterministic, so a
// cache hit is byte-identical to a re-run. Keyed by scheduler + options.
// Entries carry a sync.Once so concurrent RunMany workers that need the
// same sweep (fct-dwrr plus fig16..fig21, say) compute it exactly once:
// the first caller simulates, later callers block on the entry and then
// read the shared result.
var (
	fctCacheMu sync.Mutex
	fctCache   = map[string]*fctCacheEntry{}
)

type fctCacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

func fctCacheKey(schedName string, opt Options) string {
	// Shard count is part of the key: results are deterministic at any
	// fixed shard count, but a shard boundary can reorder same-instant
	// independent events, so different counts are distinct cells. The
	// windowing protocol is also keyed — not because results differ
	// (they are byte-identical across protocols), but so a -par A/B in
	// one process really re-simulates instead of hitting the cache. The
	// engine is keyed because the fluid preview and the packet ground
	// truth are different simulations entirely.
	return fmt.Sprintf("%s/engine=%s/quick=%v/seed=%d/rep=%d/shards=%d/par=%v/steal=%v",
		schedName, opt.engine(), opt.Quick, opt.seed(), opt.repeats(), opt.shards(), opt.Par, opt.Steal)
}

// runFCTOnce simulates one (scheduler, scheme, load) cell and returns
// the FCT metrics. opt is only consulted for manifest accounting; the
// cell's randomness comes entirely from seed. With -engine flow the
// cell runs on the fluid fast path instead of the packet fabric.
func runFCTOnce(schedName string, sc fctScheme, load float64, numFlows int, seed int64, opt Options) *fctMetrics {
	if opt.engine() == "flow" {
		return runFCTFlowOnce(sc, load, numFlows, seed, opt)
	}
	lsCfg := topo.LeafSpineConfig{
		Rate: fctRate,
		Ports: topo.PortProfile{
			Weights:     topo.EqualWeights(fctServiceCnt),
			NewMarker:   sc.marker,
			BufferBytes: units.Packets(fctBufferPkts),
		},
	}
	// A leaf-spine partitions into at most 2 shards (hosts, fabric), so
	// higher -shards values clamp here; RunMany may then hold more
	// tokens than the run uses, which errs on the undersubscribed side.
	shards := opt.shards()
	if shards > 2 {
		shards = 2
	}
	var (
		ls    *topo.LeafSpine
		eng   *sim.Engine
		coord *sim.Coordinator
		part  *topo.Partition
	)
	if shards > 1 {
		coord = sim.NewCoordinator()
		coord.SetMode(opt.Par)
		coord.SetWorkStealing(opt.Steal)
		switch schedName {
		case "dwrr":
			lsCfg.Ports.NewSchedWith = topo.DWRRSched
		case "wfq":
			lsCfg.Ports.NewSched = topo.WFQFactory()
		default:
			panic(fmt.Sprintf("experiment: unknown scheduler %q", schedName))
		}
		ls, part = topo.NewLeafSpineSharded(coord, lsCfg, shards)
	} else {
		eng = sim.NewEngine()
		switch schedName {
		case "dwrr":
			lsCfg.Ports.NewSched = topo.DWRRFactory(eng)
		case "wfq":
			lsCfg.Ports.NewSched = topo.WFQFactory()
		default:
			panic(fmt.Sprintf("experiment: unknown scheduler %q", schedName))
		}
		ls = topo.NewLeafSpine(eng, lsCfg)
	}

	// Tracing: attach every switch and transport to the bus of the
	// shard its node lives on (the serial fallback is one bus for
	// everything). Each bus is then fed by exactly one shard engine, so
	// per-bus event streams are byte-identical to a serial run with the
	// same bus split — the property the spill-merge path relies on.
	busForNode := func(id pkt.NodeID) *obs.Bus {
		if part != nil {
			if s, ok := part.ShardOf(id); ok {
				return opt.obsFor(s)
			}
		}
		return opt.obsFor(0)
	}
	if opt.tracing() {
		for _, sw := range ls.Leaves {
			sw.Observe(busForNode(sw.NodeID()))
		}
		for _, sw := range ls.Spines {
			sw.Observe(busForNode(sw.NodeID()))
		}
	}

	specs := workload.Poisson(workload.PoissonConfig{
		Load:     load,
		LinkRate: fctRate,
		Hosts:    ls.NumHosts(),
		Dist:     workload.WebSearch(),
		Services: fctServiceCnt,
		NumFlows: numFlows,
		Seed:     seed,
	})

	m := &fctMetrics{total: len(specs)}
	var fid transport.FlowIDGen
	var lastStart time.Duration
	for _, spec := range specs {
		spec := spec
		id := fid.Next()
		cfg := transport.Config{InitWindow: fctInitWindow}
		if sc.filter != nil {
			cfg.Filter = sc.filter()
		}
		if opt.tracing() {
			// A sender emits on its source host's engine; bind it to
			// that shard's bus.
			cfg.Obs = busForNode(ls.Host(spec.Src).NodeID())
		}
		f := transport.NewFlow(ls.Eng, ls.Host(spec.Src), ls.Host(spec.Dst), id,
			spec.Service, spec.Size, cfg, func(s *transport.Sender) {
				fct := s.FCT().Seconds()
				m.all.Add(fct)
				switch workload.Classify(s.Size()) {
				case workload.Small:
					m.small.Add(fct)
				case workload.Large:
					m.large.Add(fct)
				default:
					m.medium.Add(fct)
				}
				m.completed++
			})
		f.Sender.StartAt(spec.Start)
		lastStart = spec.Start
	}
	// Open-loop run: give stragglers a generous tail after the last
	// arrival, bounded so pathological retransmission loops cannot hang
	// the experiment.
	if coord != nil {
		opt.instrument(coord)
		coord.RunUntil(lastStart + 2*time.Second)
	} else {
		opt.instrumentEngine(eng)
		eng.RunUntil(lastStart + 2*time.Second)
	}

	// Sanity diagnostics: a correctly wired fabric routes and delivers
	// everything it accepts.
	for _, sw := range ls.Leaves {
		m.routeDrops += sw.RouteDrops()
	}
	for _, sw := range ls.Spines {
		m.routeDrops += sw.RouteDrops()
	}
	for _, h := range ls.Hosts {
		m.unclaimed += h.UnclaimedPackets()
	}
	if coord != nil {
		opt.observeCoordinator(coord)
	} else {
		opt.observeEngine(eng)
	}
	return m
}

// runFCTFlowOnce is the flow-level (fluid) preview of one sweep cell:
// the identical Poisson workload over the same 48-host leaf-spine, run
// on flowsim with the scheme's fluid marking counterpart in seconds
// instead of minutes. Schedulers collapse in the fluid model (DWRR and
// WFQ both converge to weighted max-min shares), so both sweeps produce
// the same preview; the packet engine remains the ground truth and the
// calibrate experiment quantifies the gap.
func runFCTFlowOnce(sc fctScheme, load float64, numFlows int, seed int64, opt Options) *fctMetrics {
	lsCfg := topo.LeafSpineConfig{Rate: fctRate}
	graph := topo.LeafSpinePaths(lsCfg)
	specs := workload.Poisson(workload.PoissonConfig{
		Load:     load,
		LinkRate: fctRate,
		Hosts:    graph.Hosts,
		Dist:     workload.WebSearch(),
		Services: fctServiceCnt,
		NumFlows: numFlows,
		Seed:     seed,
	})
	m := &fctMetrics{total: len(specs)}
	weights := make([]int, fctServiceCnt)
	for i := range weights {
		weights[i] = 1
	}
	eng := sim.NewEngine()
	fs := flowsim.New(eng, graph, flowsim.Config{
		Marking:    sc.fluid,
		Weights:    weights,
		InitWindow: fctInitWindow,
		OnFinish: func(r flowsim.FlowResult) {
			fct := r.FCT.Seconds()
			m.all.Add(fct)
			switch workload.Classify(r.Spec.Size) {
			case workload.Small:
				m.small.Add(fct)
			case workload.Large:
				m.large.Add(fct)
			default:
				m.medium.Add(fct)
			}
			m.completed++
		},
	})
	fs.Start(specs)
	opt.instrumentEngine(eng)
	eng.RunUntil(specs[len(specs)-1].Start + 2*time.Second)
	opt.observeEngine(eng)
	return m
}

// mergeFCT pools the per-seed samples into one metrics set (the
// percentile columns then reflect the pooled distribution) and sums the
// completion counters.
func mergeFCT(reps []*fctMetrics) *fctMetrics {
	if len(reps) == 1 {
		return reps[0]
	}
	out := &fctMetrics{}
	for _, m := range reps {
		out.completed += m.completed
		out.total += m.total
		for _, v := range m.all.Samples() {
			out.all.Add(v)
		}
		for _, v := range m.small.Samples() {
			out.small.Add(v)
		}
		for _, v := range m.medium.Samples() {
			out.medium.Add(v)
		}
		for _, v := range m.large.Samples() {
			out.large.Add(v)
		}
	}
	return out
}

// fctLoads returns the load sweep.
func fctLoads(opt Options) []float64 {
	if opt.Quick {
		return []float64{0.5}
	}
	return []float64{0.2, 0.4, 0.6, 0.8}
}

func fctFlows(opt Options) int {
	if opt.Quick {
		return 200
	}
	return 1500
}

// runFCTSweep produces the full table for one scheduler: one row per
// (scheme, load) with the six statistics of Figures 16-21 / 22-27. The
// heavy lifting is memoized per (scheduler, options) in fctCache;
// concurrent callers share one computation.
func runFCTSweep(id, title, schedName string, opt Options) (*Result, error) {
	key := fctCacheKey(schedName, opt)
	fctCacheMu.Lock()
	entry := fctCache[key]
	if entry == nil {
		entry = &fctCacheEntry{}
		fctCache[key] = entry
	}
	fctCacheMu.Unlock()
	entry.once.Do(func() {
		entry.res, entry.err = computeFCTSweep(schedName, opt)
	})
	if entry.err != nil {
		return nil, entry.err
	}
	out := *entry.res
	out.ID, out.Title = id, title
	return &out, nil
}

// computeFCTSweep simulates every (scheme, load, seed) cell of one
// scheduler's sweep. Repeats fan out across idle RunMany workers; the
// merge and all sanity checks run in deterministic seed order.
func computeFCTSweep(schedName string, opt Options) (*Result, error) {
	res := &Result{
		// ID and Title are stamped per caller by runFCTSweep.
		Headers: []string{
			"scheme", "load",
			"overall_avg_ms",
			"large_avg_ms", "large_p99_ms",
			"small_avg_ms", "small_p95_ms", "small_p99_ms",
			"completed",
		},
	}
	schemes := fctSchemes()
	type cell struct {
		scheme string
		load   float64
		m      *fctMetrics
	}
	var cells []cell
	flowPreview := opt.engine() == "flow"
	if flowPreview {
		res.AddNote("flow-engine preview: fluid max-min shares with %s fluid marking; packet engine remains the ground truth (see calibrate)", schedName)
	}
	for _, sc := range schemes {
		if sc.roundOnly && schedName != "dwrr" {
			res.AddNote("%s excluded: it only supports round-based schedulers", sc.name)
			continue
		}
		if flowPreview && sc.fluid == nil {
			res.AddNote("%s excluded from the flow preview: no fluid marking counterpart", sc.name)
			continue
		}
		for _, load := range fctLoads(opt) {
			// Repeats > 1 pools the statistics over consecutive seeds.
			// The seeds are independent simulations, so they fan out
			// across idle workers; the sanity checks and the merge run
			// in seed order afterwards so failures and results are
			// identical at any job count.
			reps := make([]*fctMetrics, opt.repeats())
			opt.eachRepeat(len(reps), func(r int) {
				reps[r] = runFCTOnce(schedName, sc, load, fctFlows(opt), opt.seed()+int64(r), opt)
			})
			for _, m := range reps {
				if m.routeDrops > 0 || m.unclaimed > 0 {
					return nil, fmt.Errorf("fct %s/%s@%.1f: fabric sanity violated (routeDrops=%d unclaimed=%d)",
						schedName, sc.name, load, m.routeDrops, m.unclaimed)
				}
			}
			m := mergeFCT(reps)
			cells = append(cells, cell{sc.name, load, m})
			res.AddRow(
				sc.name,
				fmt.Sprintf("%.1f", load),
				msec(m.all.Mean()),
				msec(m.large.Mean()), msec(m.large.Percentile(99)),
				msec(m.small.Mean()), msec(m.small.Percentile(95)), msec(m.small.Percentile(99)),
				fmt.Sprintf("%d/%d", m.completed, m.total),
			)
		}
	}
	// Comparative notes at each load: PMSB vs TCN / MQ-ECN for small
	// flows (the paper's headline numbers).
	byKey := make(map[string]*fctMetrics, len(cells))
	for _, c := range cells {
		byKey[fmt.Sprintf("%s@%.1f", c.scheme, c.load)] = c.m
	}
	for _, load := range fctLoads(opt) {
		p := byKey[fmt.Sprintf("pmsb@%.1f", load)]
		t := byKey[fmt.Sprintf("tcn@%.1f", load)]
		if p != nil && t != nil && t.small.Mean() > 0 {
			res.AddNote("load %.1f: PMSB small-flow avg FCT %.1f%% below TCN (p99: %.1f%%)",
				load,
				(1-p.small.Mean()/t.small.Mean())*100,
				(1-p.small.Percentile(99)/t.small.Percentile(99))*100)
		}
		mq := byKey[fmt.Sprintf("mq-ecn@%.1f", load)]
		if p != nil && mq != nil && mq.small.Mean() > 0 {
			res.AddNote("load %.1f: PMSB small-flow avg FCT %.1f%% below MQ-ECN",
				load, (1-p.small.Mean()/mq.small.Mean())*100)
		}
	}
	return res, nil
}

// fctColumn produces one paper figure: a single statistic across loads
// and schemes (runs the same sweep, reports one column).
func fctColumn(id, title, schedName, column string) Spec {
	return Spec{
		ID:    id,
		Title: title,
		Run: func(opt Options) (*Result, error) {
			full, err := runFCTSweep(id, title, schedName, opt)
			if err != nil {
				return nil, err
			}
			colIdx := -1
			for i, h := range full.Headers {
				if h == column {
					colIdx = i
				}
			}
			if colIdx < 0 {
				return nil, fmt.Errorf("experiment %s: column %q missing", id, column)
			}
			out := &Result{
				ID:      id,
				Title:   title,
				Headers: []string{"scheme", "load", column},
				Notes:   full.Notes,
			}
			for _, row := range full.Rows {
				out.AddRow(row[0], row[1], row[colIdx])
			}
			return out, nil
		},
	}
}

// runAblationMarkPoint ablates the paper's Section VI-B choice of
// enqueue marking for PMSB at leaf-spine scale: dequeue marking
// delivers congestion information one sojourn earlier (the Figure 11
// effect) at otherwise identical settings.
func runAblationMarkPoint(opt Options) (*Result, error) {
	res := &Result{
		ID:    "ablation-markpoint",
		Title: "PMSB enqueue vs dequeue marking at leaf-spine scale (DWRR, load 0.6)",
		Headers: []string{
			"mark_point", "overall_avg_ms", "small_avg_ms", "small_p99_ms", "completed",
		},
	}
	numFlows := fctFlows(opt)
	for _, point := range []ecn.Point{ecn.AtEnqueue, ecn.AtDequeue} {
		point := point
		sc := fctScheme{
			name:   "pmsb-" + point.String(),
			marker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(fctPortK), MarkPoint: point} },
		}
		m := runFCTOnce("dwrr", sc, 0.6, numFlows, opt.seed(), opt)
		res.AddRow(
			point.String(),
			msec(m.all.Mean()),
			msec(m.small.Mean()), msec(m.small.Percentile(99)),
			fmt.Sprintf("%d/%d", m.completed, m.total),
		)
	}
	res.AddNote("the paper marks at enqueue in Section VI-B; dequeue marking trades slightly earlier congestion notification for marking decisions on already-drained occupancy")
	return res, nil
}

func fctSpecs() []Spec {
	specs := []Spec{
		{
			ID:    "ablation-markpoint",
			Title: "Ablation: PMSB enqueue vs dequeue marking at scale",
			Run:   runAblationMarkPoint,
		},
		{
			ID:    "fct-dwrr",
			Title: "Large-scale FCT sweep, DWRR scheduler (Figures 16-21)",
			Run: func(opt Options) (*Result, error) {
				return runFCTSweep("fct-dwrr", "Large-scale FCT, DWRR", "dwrr", opt)
			},
		},
		{
			ID:    "fct-wfq",
			Title: "Large-scale FCT sweep, WFQ scheduler (Figures 22-27)",
			Run: func(opt Options) (*Result, error) {
				return runFCTSweep("fct-wfq", "Large-scale FCT, WFQ", "wfq", opt)
			},
		},
	}
	dwrrCols := []struct{ id, title, col string }{
		{"fig16", "Overall average FCT (DWRR)", "overall_avg_ms"},
		{"fig17", "Large-flow average FCT (DWRR)", "large_avg_ms"},
		{"fig18", "Large-flow 99th percentile FCT (DWRR)", "large_p99_ms"},
		{"fig19", "Small-flow average FCT (DWRR)", "small_avg_ms"},
		{"fig20", "Small-flow 95th percentile FCT (DWRR)", "small_p95_ms"},
		{"fig21", "Small-flow 99th percentile FCT (DWRR)", "small_p99_ms"},
	}
	for _, c := range dwrrCols {
		specs = append(specs, fctColumn(c.id, c.title, "dwrr", c.col))
	}
	wfqCols := []struct{ id, title, col string }{
		{"fig22", "Overall average FCT (WFQ)", "overall_avg_ms"},
		{"fig23", "Large-flow average FCT (WFQ)", "large_avg_ms"},
		{"fig24", "Large-flow 99th percentile FCT (WFQ)", "large_p99_ms"},
		{"fig25", "Small-flow average FCT (WFQ)", "small_avg_ms"},
		{"fig26", "Small-flow 95th percentile FCT (WFQ)", "small_p95_ms"},
		{"fig27", "Small-flow 99th percentile FCT (WFQ)", "small_p99_ms"},
	}
	for _, c := range wfqCols {
		specs = append(specs, fctColumn(c.id, c.title, "wfq", c.col))
	}
	return specs
}
