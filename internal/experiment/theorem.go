package experiment

import (
	"fmt"
	"math"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/units"
)

func theorem41Spec() Spec {
	return Spec{
		ID:    "theorem41",
		Title: "Theorem IV.1: per-queue threshold lower bound avoids throughput loss",
		Run:   runTheorem41,
	}
}

// runTheorem41 sweeps the marking threshold around the Theorem IV.1
// bound k* = gamma C RTT / 7 with the worst-case flow count of Eq. 11
// and measures bottleneck throughput: thresholds well below the bound
// leave the queue underflowing (throughput loss), thresholds above it
// keep the link full.
func runTheorem41(opt Options) (*Result, error) {
	dur, warmup := staticDur(opt)
	// Single queue: gamma = 1. Use the dumbbell's own base RTT so the
	// bound matches the simulated path. The 10us per-link delay keeps
	// the bandwidth-delay product large enough that the worst-case flow
	// count of Eq. 11 exceeds one (a lone flow cannot congest an
	// equal-rate bottleneck in a NIC-smoothed packet model).
	const theoremDelay = 10 * time.Microsecond
	probe := topo.NewDumbbell(sim.NewEngine(), topo.DumbbellConfig{
		Senders:    1,
		AccessRate: motiveRate,
		Delay:      theoremDelay,
		Bottleneck: topo.PortProfile{Weights: topo.EqualWeights(1), NewSched: topo.FIFOFactory()},
	})
	rtt := probe.BaseRTT()
	an := &core.Analysis{C: motiveRate, RTT: rtt, Weights: []float64{1}}
	bound := an.MinThreshold(0)

	res := &Result{
		ID:    "theorem41",
		Title: fmt.Sprintf("Throughput vs threshold (bound k* = %.0f B = %.1f pkts, RTT = %v)", bound, bound/units.MTU, rtt),
		Headers: []string{
			"k_over_bound", "threshold_pkts", "flows", "throughput_gbps", "utilization",
		},
	}
	factors := []float64{0.25, 0.5, 1.0, 2.0, 4.0}
	utils := make(map[float64]float64)
	for _, f := range factors {
		k := int(f * bound)
		if k < units.MTU {
			k = units.MTU / 2 // keep sub-MTU thresholds meaningful
		}
		n := int(math.Round(an.WorstCaseFlows(0, float64(k))))
		if n < 1 {
			n = 1
		}
		r := runStatic(staticConfig{
			opt: opt,
			profile: topo.PortProfile{
				Weights:   topo.EqualWeights(1),
				NewSched:  topo.FIFOFactory(),
				NewMarker: func() ecn.Marker { return &ecn.PerQueueStandard{K: k} },
			},
			accessRate: motiveRate, bottleneckRate: motiveRate, delay: theoremDelay,
			groups: []flowGroup{{service: 0, count: n}},
			dur:    dur, warmup: warmup,
		})
		rate := r.totalRate()
		util := float64(rate) / float64(motiveRate)
		utils[f] = util
		res.AddRow(
			fmt.Sprintf("%.2f", f),
			fmt.Sprintf("%.1f", float64(k)/units.MTU),
			itoa(n),
			gbps(rate),
			fmt.Sprintf("%.3f", util),
		)
	}
	res.AddNote("thresholds above the bound keep utilization near 1; far below it, the queue underflows (theorem's claim)")
	res.AddNote("utilization at 0.25x bound = %.3f vs %.3f at 4x bound", utils[0.25], utils[4.0])
	return res, nil
}
