package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// workerPool bounds the total simulation concurrency of one RunMany
// invocation. Experiment-level fan-out, per-seed fan-out inside a
// single experiment, and the shard workers of sharded runs all draw
// from the same token budget, so jobs=N never oversubscribes N workers
// no matter how the work nests. A run using S shards costs S tokens.
type workerPool struct {
	mu   sync.Mutex
	cond *sync.Cond
	idle int
	size int
}

func newWorkerPool(jobs int) *workerPool {
	p := &workerPool{idle: jobs, size: jobs}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquireN blocks until n tokens are free simultaneously and takes them
// all atomically. All-or-nothing: a waiter never sits on a partial set,
// so concurrent multi-token acquisitions cannot deadlock against each
// other. n is capped at the pool size so one request can always
// eventually be satisfied.
func (p *workerPool) acquireN(n int) {
	if n > p.size {
		n = p.size
	}
	p.mu.Lock()
	for p.idle < n {
		p.cond.Wait()
	}
	p.idle -= n
	p.mu.Unlock()
}

func (p *workerPool) releaseN(n int) {
	if n > p.size {
		n = p.size
	}
	p.mu.Lock()
	p.idle += n
	p.mu.Unlock()
	p.cond.Broadcast()
}

// tryAcquireN takes n tokens only when all of them are idle right now.
// Nested fan-out uses it so a goroutine that already holds tokens can
// never deadlock waiting for more.
func (p *workerPool) tryAcquireN(n int) bool {
	if n > p.size {
		n = p.size
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idle < n {
		return false
	}
	p.idle -= n
	return true
}

// eachRepeat runs fn(0), fn(1), ..., fn(n-1), fanning iterations across
// idle RunMany workers when a pool is attached to the options (serial
// otherwise). fn must write its result into a per-index slot so callers
// reassemble in index order; the calling goroutine always contributes,
// so progress never depends on token availability. Used by the repeat
// loops of the randomized sweeps to run consecutive seeds in parallel.
func (o Options) eachRepeat(n int, fn func(r int)) {
	if o.pool == nil || n < 2 {
		for r := 0; r < n; r++ {
			fn(r)
		}
		return
	}
	cost := o.tokenCost()
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		if r == n-1 || !o.pool.tryAcquireN(cost) {
			fn(r)
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer o.pool.releaseN(cost)
			fn(r)
		}(r)
	}
	wg.Wait()
}

// ExperimentReport is one experiment's row in a run manifest.
type ExperimentReport struct {
	// ID is the experiment ID.
	ID string `json:"id"`
	// WallMS is the experiment's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Events counts the simulator events processed by the experiment's
	// engines. An experiment that hits the shared FCT-sweep cache
	// reports only its (near-zero) projection cost; the sweep itself is
	// credited to whichever experiment computed it first.
	Events int64 `json:"events"`
}

// Manifest summarizes one RunMany invocation: the worker count, total
// wall time and the per-experiment cost breakdown in registration
// order. Wall times are inherently nondeterministic; everything else
// about a run is byte-identical at any job count.
type Manifest struct {
	Jobs        int                `json:"jobs"`
	WallMS      float64            `json:"wall_ms"`
	TotalEvents int64              `json:"total_events"`
	Experiments []ExperimentReport `json:"experiments"`
}

// Summary renders the manifest as a '#'-prefixed block that can trail
// TSV output without disturbing its tabular payload.
func (m *Manifest) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# summary: %d experiments, jobs=%d, wall time %v, %d events\n",
		len(m.Experiments), m.Jobs,
		(time.Duration(m.WallMS * float64(time.Millisecond))).Round(time.Millisecond),
		m.TotalEvents)
	b.WriteString("# experiment\twall_ms\tevents\n")
	for _, e := range m.Experiments {
		fmt.Fprintf(&b, "# %s\t%.1f\t%d\n", e.ID, e.WallMS, e.Events)
	}
	return b.String()
}

// RunMany executes specs with at most jobs worker tokens in use at once
// (jobs < 1 means runtime.NumCPU()). A serial experiment costs one
// token; an experiment running opt.Shards shard engines costs Shards
// tokens (capped at jobs), so -jobs x -shards never oversubscribes the
// machine no matter how the work nests. Each experiment builds its
// own private sim.Engine and every engine is deterministic, so results
// are byte-identical to a serial run and come back in the order specs
// were given. On failure the returned results hold the completed prefix
// (every spec before the earliest failing one, in order) and the error
// names that spec — exactly what a serial loop would have produced; the
// manifest is nil in that case.
func RunMany(specs []Spec, opt Options, jobs int) ([]*Result, *Manifest, error) {
	if jobs < 1 {
		jobs = runtime.NumCPU()
	}
	type outcome struct {
		res    *Result
		err    error
		wall   time.Duration
		events int64
	}
	pool := newWorkerPool(jobs)
	outcomes := make([]outcome, len(specs))
	start := time.Now()
	var wg sync.WaitGroup
	for i := range specs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := opt
			o.pool = pool
			// A sharded experiment runs tokenCost() shard workers at
			// once, so it must hold that many tokens, atomically (see
			// acquireN), before simulating.
			cost := o.tokenCost()
			pool.acquireN(cost)
			defer pool.releaseN(cost)
			var events atomic.Int64
			o.events = &events
			t0 := time.Now()
			res, err := specs[i].Run(o)
			outcomes[i] = outcome{res, err, time.Since(t0), events.Load()}
		}()
	}
	wg.Wait()

	results := make([]*Result, 0, len(specs))
	m := &Manifest{Jobs: jobs, WallMS: float64(time.Since(start)) / float64(time.Millisecond)}
	for i, oc := range outcomes {
		if oc.err != nil {
			return results, nil, fmt.Errorf("%s: %w", specs[i].ID, oc.err)
		}
		results = append(results, oc.res)
		m.Experiments = append(m.Experiments, ExperimentReport{
			ID:     specs[i].ID,
			WallMS: float64(oc.wall) / float64(time.Millisecond),
			Events: oc.events,
		})
		m.TotalEvents += oc.events
	}
	return results, m, nil
}
