package experiment

import (
	"fmt"
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/netsim"
	"pmsb/internal/pkt"
	"pmsb/internal/sched"
	"pmsb/internal/sim"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// pfcSpec registers the lossless-fabric extension: the paper's intro
// cites DCQCN [18] as the ECN consumer for RDMA fabrics. PFC alone
// keeps the fabric lossless but pauses whole upstream links, so a
// victim flow to an idle destination stalls behind the congested one
// (head-of-line blocking). Adding ECN marking + DCQCN rate control
// shrinks the standing queue, all but eliminating pauses and freeing
// the victim.
func pfcSpec() Spec {
	return Spec{
		ID:    "pfc",
		Title: "Extension: PFC head-of-line blocking and its DCQCN+ECN remedy",
		Run:   runPFC,
	}
}

func runPFC(opt Options) (*Result, error) {
	// DCQCN needs a few milliseconds to converge out of its alpha=1
	// initialization; the run is cheap, so Quick keeps the full
	// duration.
	dur := 60 * time.Millisecond
	res := &Result{
		ID:    "pfc",
		Title: "4 hot flows to a 1G sink + 1 victim flow to an idle 10G sink, shared trunk, PFC fabric",
		Headers: []string{
			"scheme", "pauses", "victim_gbps", "hot_gbps", "fabric_drops",
		},
	}

	type outcome struct {
		pauses int64
		victim float64
		hot    float64
		drops  int64
	}
	run := func(withDCQCN bool) outcome {
		eng := sim.NewEngine()
		hotSink := netsim.NewHost(eng, 8)
		fastSink := netsim.NewHost(eng, 9)

		s2 := netsim.NewSwitch(eng, 2)
		var marker ecn.Marker
		if withDCQCN {
			marker = &ecn.PerPort{K: units.Packets(12)}
		}
		slowEgress := netsim.NewPort(eng, netsim.NewLink(eng, 1*units.Gbps, motiveDelay, hotSink),
			netsim.PortConfig{Sched: sched.NewFIFO(), BufferBytes: units.Packets(100), Marker: marker})
		fastEgress := netsim.NewPort(eng, netsim.NewLink(eng, 10*units.Gbps, motiveDelay, fastSink),
			netsim.PortConfig{Sched: sched.NewFIFO()})
		s2.AddPort(slowEgress)
		s2.AddPort(fastEgress)

		s1 := netsim.NewSwitch(eng, 1)
		trunk := netsim.NewPort(eng, netsim.NewLink(eng, 10*units.Gbps, motiveDelay, s2),
			netsim.PortConfig{Sched: sched.NewFIFO()})
		s1.AddPort(trunk)

		// Reverse paths for CNPs: each sender host hangs off s1.
		senders := make([]*netsim.Host, 5)
		s1Ports := map[pkt.NodeID]int{}
		for i := range senders {
			h := netsim.NewHost(eng, pkt.NodeID(10+i))
			h.AttachNIC(netsim.NewLink(eng, 10*units.Gbps, motiveDelay, s1))
			idx := s1.AddPort(netsim.NewPort(eng,
				netsim.NewLink(eng, 10*units.Gbps, motiveDelay, h),
				netsim.PortConfig{Sched: sched.NewFIFO()}))
			s1Ports[h.NodeID()] = idx
			senders[i] = h
		}
		s1.SetRoute(func(p *pkt.Packet) int {
			if idx, ok := s1Ports[p.Dst]; ok {
				return idx
			}
			return 0 // trunk toward s2
		})
		// The sinks' NICs point back at s2 so their CNPs return to the
		// senders through the reverse trunk.
		hotSink.AttachNIC(netsim.NewLink(eng, 1*units.Gbps, motiveDelay, s2))
		fastSink.AttachNIC(netsim.NewLink(eng, 10*units.Gbps, motiveDelay, s2))
		backToS1 := netsim.NewPort(eng, netsim.NewLink(eng, 10*units.Gbps, motiveDelay, s1),
			netsim.PortConfig{Sched: sched.NewFIFO()})
		backIdx := s2.AddPort(backToS1)
		s2.SetRoute(func(p *pkt.Packet) int {
			switch p.Dst {
			case 8:
				return 0
			case 9:
				return 1
			default:
				return backIdx
			}
		})

		fc := netsim.NewPFC(eng, units.Packets(40), units.Packets(20))
		fc.Guard(s2)
		fc.Upstream(trunk)

		cfg := transport.DCQCNConfig{StartRate: 10 * units.Gbps}
		if !withDCQCN {
			// Rate control disabled: the floor equals the start rate, so
			// CNP cuts have no effect (and no marking happens anyway).
			cfg.MinRate = 10 * units.Gbps
		}
		var ds []*transport.DCQCNSender
		var victimRx *transport.DCQCNReceiver
		for i := 0; i < 4; i++ {
			s := transport.NewDCQCNSender(eng, senders[i], pkt.FlowID(i+1), 8, 0, cfg)
			transport.NewDCQCNReceiver(eng, hotSink, pkt.FlowID(i+1), senders[i].NodeID(), 0, 0)
			s.Start()
			ds = append(ds, s)
		}
		victim := transport.NewDCQCNSender(eng, senders[4], 100, 9, 0, cfg)
		victimRx = transport.NewDCQCNReceiver(eng, fastSink, 100, senders[4].NodeID(), 0, 0)
		victim.Start()
		ds = append(ds, victim)

		eng.RunUntil(dur)
		opt.observeEngine(eng)
		for _, s := range ds {
			s.Stop()
		}
		return outcome{
			pauses: fc.Pauses(),
			victim: float64(units.RateOf(victimRx.RxBytes(), dur)) / float64(units.Gbps),
			hot:    float64(units.RateOf(hotSink.RxBytes(), dur)) / float64(units.Gbps),
			drops:  slowEgress.DropPackets() + fastEgress.DropPackets() + trunk.DropPackets(),
		}
	}

	raw := run(false)
	dcqcn := run(true)
	res.AddRow("pfc-only", fmt.Sprintf("%d", raw.pauses),
		fmt.Sprintf("%.2f", raw.victim), fmt.Sprintf("%.2f", raw.hot), fmt.Sprintf("%d", raw.drops))
	res.AddRow("pfc+dcqcn(ecn)", fmt.Sprintf("%d", dcqcn.pauses),
		fmt.Sprintf("%.2f", dcqcn.victim), fmt.Sprintf("%.2f", dcqcn.hot), fmt.Sprintf("%d", dcqcn.drops))
	res.AddNote("PFC keeps both fabrics lossless; without end-to-end ECN control the victim flow to the idle sink collapses to %.2f Gbps behind pause storms, with DCQCN it recovers to %.2f Gbps", raw.victim, dcqcn.victim)
	return res, nil
}
