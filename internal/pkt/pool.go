package pkt

import (
	"sync"
	"sync/atomic"
)

// Packet pooling removes the per-packet heap allocation from the
// simulator's hot loop. Ownership is linear and follows the packet's
// journey through the network:
//
//   - A producer obtains a packet with Get and hands it to the network
//     (Host.Send / Port.Send). From then on the packet is owned by
//     whichever component currently holds it: a scheduler queue, an
//     in-flight link event, or a dispatch handler.
//   - The terminal consumer — the transport endpoint that absorbs an
//     ACK or data packet, a port drop path, a host with no handler for
//     the flow, or a benchmark sink — calls Release exactly once.
//   - Components that merely observe a packet (taps, markers,
//     schedulers) never release it and must not retain the pointer past
//     their callback: after Release the record may be reused for an
//     unrelated packet.
//
// Holding a packet forever without releasing it is always safe (the
// pool is an optimization, not reference counting — unreleased packets
// are simply garbage collected), which keeps tests and tracing code
// that stash packet pointers correct by construction.
//
// The pool is safe for concurrent use; parallel experiment runners
// share it across engines. Determinism is unaffected because Get fully
// resets the record: no simulation state depends on which physical
// record a packet occupies.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// debugPoison enables the use-after-release detector (see SetPoolDebug).
var debugPoison atomic.Bool

// SetPoolDebug toggles the pool's debug mode. When on, Release poisons
// every field of the returned packet with loud sentinel values (negative
// sizes and times, a 0xdead… ID) so any consumer that kept the pointer
// reads obviously-broken state instead of silently aliasing a future
// packet, and a double Release panics. The mode is race-clean: the flag
// is atomic and poisoning happens strictly before the record re-enters
// the (synchronized) pool.
func SetPoolDebug(on bool) { debugPoison.Store(on) }

// PoolDebug reports whether debug mode is on.
func PoolDebug() bool { return debugPoison.Load() }

// poisoned is the debug-mode sentinel state. Every numeric field is
// negative or nonsensical so downstream arithmetic (serialization
// times, buffer accounting, sequence matching) fails fast and visibly.
var poisoned = Packet{
	ID:         0xdeaddeaddeaddead,
	Flow:       0xdeaddeaddeaddead,
	Src:        NoNode,
	Dst:        NoNode,
	Size:       -1,
	Payload:    -1,
	Seq:        -1 << 62,
	AckNo:      -1 << 62,
	Service:    -1,
	SentAt:     -1 << 62,
	Echo:       -1 << 62,
	EnqueuedAt: -1 << 62,
	released:   true,
}

// Get returns a zeroed packet from the pool. The caller owns it until
// it hands the packet to the network; see the ownership rules above.
func Get() *Packet {
	p := pool.Get().(*Packet)
	*p = Packet{}
	return p
}

// Release returns a packet to the pool. Only the packet's terminal
// consumer may call it, exactly once; the pointer must not be used
// afterwards. Releasing nil is a no-op. Packets not obtained from Get
// may also be released (the pool absorbs them).
func Release(p *Packet) {
	if p == nil {
		return
	}
	if debugPoison.Load() {
		if p.released {
			panic("pkt: double Release of the same packet")
		}
		*p = poisoned
	}
	pool.Put(p)
}
