package pkt

import (
	"sync"
	"sync/atomic"
)

// Packet pooling removes the per-packet heap allocation from the
// simulator's hot loop. Ownership is linear and follows the packet's
// journey through the network:
//
//   - A producer obtains a packet with Get and hands it to the network
//     (Host.Send / Port.Send). From then on the packet is owned by
//     whichever component currently holds it: a scheduler queue, an
//     in-flight link event, or a dispatch handler.
//   - The terminal consumer — the transport endpoint that absorbs an
//     ACK or data packet, a port drop path, a host with no handler for
//     the flow, or a benchmark sink — calls Release exactly once.
//   - Components that merely observe a packet (taps, markers,
//     schedulers) never release it and must not retain the pointer past
//     their callback: after Release the record may be reused for an
//     unrelated packet.
//
// Holding a packet forever without releasing it is always safe (the
// pool is an optimization, not reference counting — unreleased packets
// are simply garbage collected), which keeps tests and tracing code
// that stash packet pointers correct by construction.
//
// The pool is safe for concurrent use; parallel experiment runners
// share it across engines. Determinism is unaffected because Get fully
// resets the record: no simulation state depends on which physical
// record a packet occupies.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// debugPoison enables the use-after-release detector (see SetPoolDebug).
var debugPoison atomic.Bool

// SetPoolDebug toggles the pool's debug mode. When on, Release poisons
// every field of the returned packet with loud sentinel values (negative
// sizes and times, a 0xdead… ID) so any consumer that kept the pointer
// reads obviously-broken state instead of silently aliasing a future
// packet, and a double Release panics. The mode is race-clean: the flag
// is atomic and poisoning happens strictly before the record re-enters
// the (synchronized) pool.
func SetPoolDebug(on bool) { debugPoison.Store(on) }

// PoolDebug reports whether debug mode is on.
func PoolDebug() bool { return debugPoison.Load() }

// poisoned is the debug-mode sentinel state. Every numeric field is
// negative or nonsensical so downstream arithmetic (serialization
// times, buffer accounting, sequence matching) fails fast and visibly.
var poisoned = Packet{
	ID:         0xdeaddeaddeaddead,
	Flow:       0xdeaddeaddeaddead,
	Src:        NoNode,
	Dst:        NoNode,
	Size:       -1,
	Payload:    -1,
	Seq:        -1 << 62,
	AckNo:      -1 << 62,
	Service:    -1,
	SentAt:     -1 << 62,
	Echo:       -1 << 62,
	EnqueuedAt: -1 << 62,
	released:   true,
}

// statsState is the optional pool self-profile (see EnablePoolStats):
// gets/releases throughput counters and an in-use high-water mark. Like
// debugPoison, the whole block is gated on one atomic.Bool load so the
// disabled hot path pays a single predictable branch and no contended
// cache lines.
type statsState struct {
	enabled  atomic.Bool
	gets     atomic.Uint64
	releases atomic.Uint64
	inUse    atomic.Int64
	hiwater  atomic.Int64
}

var stats statsState

// PoolStats is a snapshot of the pool self-profile.
type PoolStats struct {
	// Gets / Releases count pool round-trips since EnablePoolStats.
	Gets     uint64 `json:"gets"`
	Releases uint64 `json:"releases"`
	// InUse is the current outstanding (got, not yet released) packet
	// count; HiWater is its maximum — the live packet population the
	// simulation actually needed.
	InUse   int64 `json:"inUse"`
	HiWater int64 `json:"hiwater"`
}

// EnablePoolStats toggles pool self-profiling, resetting the counters
// when turning it on. Counting is approximate only in that packets
// already outstanding at enable time make InUse go negative-leaning;
// enable before the simulation starts for exact numbers.
func EnablePoolStats(on bool) {
	if on {
		stats.gets.Store(0)
		stats.releases.Store(0)
		stats.inUse.Store(0)
		stats.hiwater.Store(0)
	}
	stats.enabled.Store(on)
}

// ReadPoolStats returns the current pool self-profile (zeros when
// profiling was never enabled).
func ReadPoolStats() PoolStats {
	return PoolStats{
		Gets:     stats.gets.Load(),
		Releases: stats.releases.Load(),
		InUse:    stats.inUse.Load(),
		HiWater:  stats.hiwater.Load(),
	}
}

// Get returns a zeroed packet from the pool. The caller owns it until
// it hands the packet to the network; see the ownership rules above.
func Get() *Packet {
	if stats.enabled.Load() {
		stats.gets.Add(1)
		n := stats.inUse.Add(1)
		for {
			hw := stats.hiwater.Load()
			if n <= hw || stats.hiwater.CompareAndSwap(hw, n) {
				break
			}
		}
	}
	p := pool.Get().(*Packet)
	*p = Packet{}
	return p
}

// Release returns a packet to the pool. Only the packet's terminal
// consumer may call it, exactly once; the pointer must not be used
// afterwards. Releasing nil is a no-op. Packets not obtained from Get
// may also be released (the pool absorbs them).
func Release(p *Packet) {
	if p == nil {
		return
	}
	if stats.enabled.Load() {
		stats.releases.Add(1)
		stats.inUse.Add(-1)
	}
	if debugPoison.Load() {
		if p.released {
			panic("pkt: double Release of the same packet")
		}
		*p = poisoned
	}
	pool.Put(p)
}
