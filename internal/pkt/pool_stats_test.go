package pkt

import "testing"

// Pool stats, when enabled, track gets/releases and an in-use high
// water mark; enabling resets the counters so one run's profile does
// not leak into the next.
func TestPoolStats(t *testing.T) {
	EnablePoolStats(true)
	defer EnablePoolStats(false)

	const n = 64
	pkts := make([]*Packet, 0, n)
	for i := 0; i < n; i++ {
		pkts = append(pkts, Get())
	}
	st := ReadPoolStats()
	if st.Gets < n {
		t.Fatalf("gets = %d, want >= %d", st.Gets, n)
	}
	if st.InUse != n {
		t.Fatalf("in-use = %d with %d outstanding packets", st.InUse, n)
	}
	if st.HiWater < n {
		t.Fatalf("high water = %d, want >= %d", st.HiWater, n)
	}
	for _, p := range pkts {
		Release(p)
	}
	st = ReadPoolStats()
	if st.InUse != 0 {
		t.Fatalf("in-use = %d after releasing everything", st.InUse)
	}
	if st.Releases != st.Gets {
		t.Fatalf("releases = %d, gets = %d after releasing everything", st.Releases, st.Gets)
	}
	if st.HiWater < n {
		t.Fatalf("high water regressed to %d", st.HiWater)
	}

	// Re-enabling resets.
	EnablePoolStats(true)
	st = ReadPoolStats()
	if st.Gets != 0 || st.InUse != 0 || st.HiWater != 0 {
		t.Fatalf("counters not reset on enable: %+v", st)
	}

	// Disabled: counters freeze.
	EnablePoolStats(false)
	Release(Get())
	if st := ReadPoolStats(); st.Gets != 0 {
		t.Fatalf("disabled pool still counted %d gets", st.Gets)
	}
}

// The disabled stats path must not add allocations to Get/Release.
func TestPoolStatsDisabledZeroAlloc(t *testing.T) {
	EnablePoolStats(false)
	avg := testing.AllocsPerRun(1000, func() {
		Release(Get())
	})
	if avg != 0 {
		t.Fatalf("Get+Release allocates %.2f/op with stats disabled, want 0", avg)
	}
}
