// Package pkt defines the packet representation shared by every layer of
// the simulator: schedulers queue packets, ECN markers inspect and mark
// them, links carry them, and transports produce and consume them.
package pkt

import "time"

// FlowID identifies a transport flow (a sender/receiver pair).
type FlowID uint64

// NodeID identifies a host or switch in a topology.
type NodeID int32

// NoNode is the invalid/unset node ID.
const NoNode NodeID = -1

// Packet is a simulated network packet. Packets are passed by pointer and
// mutated in place as they traverse the network (ECN marking, enqueue
// timestamps), exactly like a real packet's header fields.
type Packet struct {
	// ID is a globally unique packet identifier (debugging/tracing).
	ID uint64
	// Flow is the transport flow this packet belongs to.
	Flow FlowID
	// Src and Dst are the endpoints.
	Src, Dst NodeID
	// Size is the wire size in bytes (headers included).
	Size int
	// Payload is the number of payload bytes carried (0 for pure ACKs).
	Payload int
	// Seq is the sequence number of the first payload byte.
	Seq int64
	// IsAck marks a pure acknowledgement.
	IsAck bool
	// AckNo is the cumulative acknowledgement (next expected byte).
	AckNo int64
	// ECT marks the packet ECN-capable; only ECT packets may be marked.
	ECT bool
	// CE is the Congestion Experienced codepoint, set by switch markers.
	CE bool
	// ECE is the echo bit on ACKs: the receiver copies the data packet's
	// CE into the corresponding ACK's ECE (per-packet accurate echo, as
	// DCTCP requires).
	ECE bool
	// Service selects the switch queue (the DSCP field of the paper).
	Service int
	// SentAt is the sender timestamp; receivers echo it in Echo so the
	// sender can measure RTT without per-packet state.
	SentAt time.Duration
	// Echo is the echoed SentAt on an ACK.
	Echo time.Duration
	// EnqueuedAt is stamped by the switch port at enqueue time; markers
	// that need sojourn time (TCN) read it at dequeue.
	EnqueuedAt time.Duration

	// hop carries the link the packet is currently propagating on. The
	// netsim layer sets it at Deliver and clears it on arrival, so a link
	// traversal needs no per-link closure: the arrival event's argument
	// is the packet itself, and the packet knows which link it rides.
	// Opaque (any) because pkt cannot import netsim.
	hop any

	// released tracks pool membership in debug mode (see pool.go); it is
	// unexported so it never leaks into serialized or compared state.
	released bool
}

// SetHop records the link (or any carrier) the packet is traversing.
// Owned by the delivery layer; see the hop field.
func (p *Packet) SetHop(h any) { p.hop = h }

// TakeHop returns and clears the packet's carrier.
func (p *Packet) TakeHop() any {
	h := p.hop
	p.hop = nil
	return h
}
