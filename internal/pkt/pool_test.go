package pkt

import (
	"testing"
	"time"
)

func TestGetReturnsZeroedPacket(t *testing.T) {
	p := Get()
	p.ID = 42
	p.Size = 1500
	p.CE = true
	p.SentAt = time.Second
	Release(p)
	// The pool may or may not hand the same record back; either way
	// every Get must observe a fully reset packet.
	for i := 0; i < 10; i++ {
		q := Get()
		if q.ID != 0 || q.Size != 0 || q.CE || q.SentAt != 0 || q.released {
			t.Fatalf("Get returned dirty packet: %+v", q)
		}
		Release(q)
	}
}

func TestReleaseNilIsNoop(t *testing.T) {
	Release(nil) // must not panic
}

func TestPoolDebugPoisonsReleasedPackets(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)

	p := Get()
	p.ID = 7
	p.Size = 1500
	p.Seq = 1000
	Release(p)
	// A use-after-release reads loud sentinel values, not stale (or
	// worse, recycled) packet state.
	if p.Size >= 0 || p.Payload >= 0 || p.ID != 0xdeaddeaddeaddead {
		t.Fatalf("released packet not poisoned: %+v", p)
	}
	if p.Src != NoNode || p.Dst != NoNode {
		t.Fatalf("released packet endpoints not poisoned: %+v", p)
	}

	// A fresh Get (possibly of the same record) is clean again.
	q := Get()
	if q.Size != 0 || q.released {
		t.Fatalf("Get after poisoned Release returned dirty packet: %+v", q)
	}
	Release(q)
}

func TestPoolDebugDoubleReleasePanics(t *testing.T) {
	SetPoolDebug(true)
	defer SetPoolDebug(false)

	p := Get()
	Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic in debug mode")
		}
	}()
	Release(p)
}
