package ecn

import "pmsb/internal/pkt"

// PerQueueStandard marks a packet when its own queue's occupancy reaches
// the full standard threshold K. With many active queues the port buffer
// can reach NumQueues x K, which is why the paper's Figure 1 shows RTT
// growing with the number of queues.
type PerQueueStandard struct {
	// K is the per-queue threshold in bytes.
	K int
	// MarkPoint selects enqueue or dequeue marking (default enqueue).
	MarkPoint Point
}

var _ Marker = (*PerQueueStandard)(nil)

// Name implements Marker.
func (m *PerQueueStandard) Name() string { return "PerQueue(K)" }

// Point implements Marker.
func (m *PerQueueStandard) Point() Point {
	if m.MarkPoint == 0 {
		return AtEnqueue
	}
	return m.MarkPoint
}

// ShouldMark implements Marker.
func (m *PerQueueStandard) ShouldMark(pv PortView, q int, p *pkt.Packet) bool {
	return pv.QueueBytes(q) >= m.K
}

// PerQueueFractional apportions the standard threshold among queues in
// proportion to their weights (paper Eq. 2):
//
//	K_i = w_i / sum(w) x K.
//
// It keeps latency low but loses throughput when few queues are active
// (paper Figure 2).
type PerQueueFractional struct {
	// PortK is the standard threshold in bytes to divide among queues.
	PortK int
	// MarkPoint selects enqueue or dequeue marking (default enqueue).
	MarkPoint Point
}

var _ Marker = (*PerQueueFractional)(nil)

// Name implements Marker.
func (m *PerQueueFractional) Name() string { return "PerQueue(K_i)" }

// Point implements Marker.
func (m *PerQueueFractional) Point() Point {
	if m.MarkPoint == 0 {
		return AtEnqueue
	}
	return m.MarkPoint
}

// ShouldMark implements Marker.
func (m *PerQueueFractional) ShouldMark(pv PortView, q int, p *pkt.Packet) bool {
	ki := float64(m.PortK) * pv.Weight(q) / pv.WeightSum()
	return float64(pv.QueueBytes(q)) >= ki
}

// PerPort marks a packet whenever the whole port's occupancy reaches K,
// regardless of which queue the packet sits in. It preserves throughput
// and latency but lets congested queues get well-behaved queues' packets
// marked — the weighted-fair-sharing violation of Figure 3 that PMSB
// repairs.
type PerPort struct {
	// K is the per-port threshold in bytes.
	K int
	// MarkPoint selects enqueue or dequeue marking (default enqueue).
	MarkPoint Point
}

var _ Marker = (*PerPort)(nil)

// Name implements Marker.
func (m *PerPort) Name() string { return "PerPort" }

// Point implements Marker.
func (m *PerPort) Point() Point {
	if m.MarkPoint == 0 {
		return AtEnqueue
	}
	return m.MarkPoint
}

// ShouldMark implements Marker.
func (m *PerPort) ShouldMark(pv PortView, q int, p *pkt.Packet) bool {
	return pv.PortBytes() >= m.K
}

// Pool aggregates the buffered bytes of several ports that share a
// buffer pool. Ports report their occupancy changes through Add.
type Pool struct {
	bytes int
}

// Add adjusts the pool occupancy by delta bytes.
func (s *Pool) Add(delta int) { s.bytes += delta }

// Bytes returns the current pool occupancy.
func (s *Pool) Bytes() int { return s.bytes }

// PerPool marks when the shared service-pool occupancy reaches K. The
// paper argues it violates weighted fair sharing even across ports; the
// marker exists so that claim can be tested.
type PerPool struct {
	// K is the pool threshold in bytes.
	K int
	// Shared is the pool this port belongs to.
	Shared *Pool
	// MarkPoint selects enqueue or dequeue marking (default enqueue).
	MarkPoint Point
}

var _ Marker = (*PerPool)(nil)

// Name implements Marker.
func (m *PerPool) Name() string { return "PerPool" }

// Point implements Marker.
func (m *PerPool) Point() Point {
	if m.MarkPoint == 0 {
		return AtEnqueue
	}
	return m.MarkPoint
}

// ShouldMark implements Marker.
func (m *PerPool) ShouldMark(pv PortView, q int, p *pkt.Packet) bool {
	if m.Shared == nil {
		return pv.PortBytes() >= m.K
	}
	return m.Shared.Bytes() >= m.K
}

// None never marks; it models an ECN-disabled switch (plain drop-tail).
type None struct{}

var _ Marker = None{}

// Name implements Marker.
func (None) Name() string { return "None" }

// Point implements Marker.
func (None) Point() Point { return AtEnqueue }

// ShouldMark implements Marker.
func (None) ShouldMark(PortView, int, *pkt.Packet) bool { return false }
