package ecn

import (
	"math/rand"
	"testing"

	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

func TestREDStepEqualsDCTCP(t *testing.T) {
	k := units.Packets(16)
	red := NewDCTCPStep(k)
	dctcp := &PerQueueStandard{K: k}
	p := &pkt.Packet{ECT: true}
	for _, occ := range []int{0, k - 1, k, k + 1, 10 * k} {
		view := pv(10*units.Gbps, []float64{1}, occ)
		if red.ShouldMark(view, 0, p) != dctcp.ShouldMark(view, 0, p) {
			t.Fatalf("step RED and DCTCP marking diverge at occupancy %d", occ)
		}
	}
}

func TestREDProbabilisticRegion(t *testing.T) {
	m := &RED{
		MinK: units.Packets(10),
		MaxK: units.Packets(30),
		MaxP: 0.5,
		Rand: rand.New(rand.NewSource(7)),
	}
	p := &pkt.Packet{ECT: true}
	count := func(occ int) float64 {
		view := pv(10*units.Gbps, []float64{1}, occ)
		n := 20000
		marked := 0
		for i := 0; i < n; i++ {
			if m.ShouldMark(view, 0, p) {
				marked++
			}
		}
		return float64(marked) / float64(n)
	}
	if f := count(units.Packets(9)); f != 0 {
		t.Fatalf("below MinK mark fraction = %v, want 0", f)
	}
	if f := count(units.Packets(31)); f != 1 {
		t.Fatalf("above MaxK mark fraction = %v, want 1", f)
	}
	// Midpoint: probability ~ MaxP/2 = 0.25.
	if f := count(units.Packets(20)); f < 0.2 || f > 0.3 {
		t.Fatalf("midpoint mark fraction = %v, want ~0.25", f)
	}
	// Monotone in occupancy.
	lo, hi := count(units.Packets(12)), count(units.Packets(28))
	if lo >= hi {
		t.Fatalf("marking probability must grow with occupancy: %v >= %v", lo, hi)
	}
}

func TestREDPerPortOccupancy(t *testing.T) {
	m := &RED{MinK: units.Packets(4), MaxK: units.Packets(4), MaxP: 1, PerPortOccupancy: true}
	p := &pkt.Packet{ECT: true}
	// Queue 0 is empty but the port total crosses MaxK.
	view := pv(10*units.Gbps, []float64{1, 1}, 0, units.Packets(5))
	if !m.ShouldMark(view, 0, p) {
		t.Fatal("per-port RED must mark on aggregate occupancy")
	}
}

func TestREDDeterministicDefaultSeed(t *testing.T) {
	mk := func() []bool {
		m := &RED{MinK: 0, MaxK: units.Packets(100), MaxP: 1}
		p := &pkt.Packet{ECT: true}
		view := pv(10*units.Gbps, []float64{1}, units.Packets(50))
		out := make([]bool, 64)
		for i := range out {
			out[i] = m.ShouldMark(view, 0, p)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("default-seeded RED must be deterministic")
		}
	}
}
