package ecn_test

import (
	"fmt"
	"time"

	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// twoQueues is a minimal PortView with two equal-weight queues.
type twoQueues struct{ q0, q1 int }

func (v twoQueues) NumQueues() int         { return 2 }
func (v twoQueues) QueueBytes(q int) int   { return []int{v.q0, v.q1}[q] }
func (v twoQueues) QueuePackets(q int) int { return v.QueueBytes(q) / units.MTU }
func (v twoQueues) PortBytes() int         { return v.q0 + v.q1 }
func (v twoQueues) PortPackets() int       { return v.PortBytes() / units.MTU }
func (v twoQueues) Weight(int) float64     { return 1 }
func (v twoQueues) WeightSum() float64     { return 2 }
func (v twoQueues) LinkRate() units.Rate   { return 10 * units.Gbps }
func (v twoQueues) Now() time.Duration     { return 100 * time.Microsecond }
func (v twoQueues) Round() ecn.RoundInfo   { return nil }

// Example_perPortVictim shows the problem PMSB solves: per-port marking
// punishes a queue that holds a single packet because the *other* queue
// filled the port.
func Example_perPortVictim() {
	perPort := &ecn.PerPort{K: units.Packets(16)}
	view := twoQueues{q0: units.Packets(1), q1: units.Packets(20)}
	victim := &pkt.Packet{ECT: true}
	fmt.Println("victim queue marked:", perPort.ShouldMark(view, 0, victim))
	// Output:
	// victim queue marked: true
}

// ExampleTCN shows sojourn-time marking: only the packet that waited
// longer than the threshold is marked, regardless of queue length.
func ExampleTCN() {
	tcn := &ecn.TCN{Threshold: 20 * time.Microsecond}
	view := twoQueues{q0: units.Packets(100)}
	fresh := &pkt.Packet{ECT: true, EnqueuedAt: 90 * time.Microsecond} // 10us sojourn
	stale := &pkt.Packet{ECT: true, EnqueuedAt: 50 * time.Microsecond} // 50us sojourn
	fmt.Println("fresh packet:", tcn.ShouldMark(view, 0, fresh))
	fmt.Println("stale packet:", tcn.ShouldMark(view, 0, stale))
	// Output:
	// fresh packet: false
	// stale packet: true
}

// ExampleStandardThreshold computes the classic K = C x RTT x lambda.
func ExampleStandardThreshold() {
	k := ecn.StandardThreshold(10*units.Gbps, 80*time.Microsecond, 1)
	fmt.Printf("%d bytes (%.1f packets)\n", k, float64(k)/units.MTU)
	// Output:
	// 100000 bytes (66.7 packets)
}
