package ecn

import (
	"testing"

	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

func TestAveragedSmoothsQueueView(t *testing.T) {
	inner := &PerQueueStandard{K: units.Packets(10)}
	m := NewAveraged(inner, 0.1)
	if m.Name() != "PerQueue(K)+avg" {
		t.Fatalf("Name = %q", m.Name())
	}
	if m.Point() != inner.Point() {
		t.Fatal("Point must pass through")
	}
	p := &pkt.Packet{ECT: true}

	// Seed the average with an empty queue.
	empty := pv(10*units.Gbps, []float64{1}, 0)
	if m.ShouldMark(empty, 0, p) {
		t.Fatal("empty queue must not mark")
	}
	// A sudden burst to 50 packets: the instantaneous marker would
	// mark, the averaged one barely moves (avg ~= 10% of burst = 5
	// packets, below K = 10).
	burst := pv(10*units.Gbps, []float64{1}, units.Packets(50))
	if inner.ShouldMark(burst, 0, p) != true {
		t.Fatal("sanity: instantaneous marker marks the burst")
	}
	if m.ShouldMark(burst, 0, p) {
		t.Fatal("averaged marker must absorb a one-shot burst")
	}
	// Sustained burst: the EWMA converges above K and marking starts.
	marked := false
	for i := 0; i < 100; i++ {
		if m.ShouldMark(burst, 0, p) {
			marked = true
			break
		}
	}
	if !marked {
		t.Fatal("averaged marker must converge under sustained load")
	}
}

func TestAveragedWeightOneIsInstantaneous(t *testing.T) {
	inner := &PerPort{K: units.Packets(5)}
	m := NewAveraged(inner, 1)
	p := &pkt.Packet{ECT: true}
	full := pv(10*units.Gbps, []float64{1}, units.Packets(6))
	// First call seeds the average with the instantaneous value, so
	// weight 1 behaves identically to the unwrapped marker.
	if !m.ShouldMark(full, 0, p) {
		t.Fatal("weight-1 average must equal instantaneous marking")
	}
}

func TestAveragedBadWeightDefaultsToOne(t *testing.T) {
	m := NewAveraged(&PerPort{K: 1}, -3)
	if m.weight != 1 {
		t.Fatalf("weight = %v, want 1", m.weight)
	}
	m2 := NewAveraged(&PerPort{K: 1}, 2)
	if m2.weight != 1 {
		t.Fatalf("weight = %v, want 1", m2.weight)
	}
}

// A queue-count change must reseed the EWMA from the live view, not
// blend the new occupancies into freshly zeroed slots: blending would
// report avg = w*instantaneous after the resize and suppress marking
// until the EWMA re-converged, hiding real congestion for many packets.
func TestAveragedResizeReseedsFromInstantaneous(t *testing.T) {
	m := NewAveraged(&PerQueueStandard{K: units.Packets(4)}, 0.002)
	p := &pkt.Packet{ECT: true}

	// Establish history on a one-queue port.
	m.ShouldMark(pv(10*units.Gbps, []float64{1}, units.Packets(2)), 0, p)
	m.ShouldMark(pv(10*units.Gbps, []float64{1}, units.Packets(2)), 0, p)

	// Resize to three queues with known occupancy: the very next update
	// must adopt the instantaneous values wholesale.
	occ := []int{units.Packets(7), 0, units.Packets(3)}
	resized := pv(10*units.Gbps, []float64{1, 1, 1}, occ...)
	m.ShouldMark(resized, 1, p)
	if len(m.queues) != 3 {
		t.Fatalf("queue slots = %d, want 3", len(m.queues))
	}
	for q, want := range occ {
		if m.queues[q] != float64(want) {
			t.Fatalf("queue %d avg = %v after resize, want instantaneous %d", q, m.queues[q], want)
		}
	}
	if want := float64(occ[0] + occ[1] + occ[2]); m.port != want {
		t.Fatalf("port avg = %v after resize, want instantaneous %v", m.port, want)
	}

	// And with the tiny weight, the seeded average marks queue 0 (7 > K)
	// immediately instead of waiting out a re-convergence.
	if !m.ShouldMark(resized, 0, p) {
		t.Fatal("reseeded average must see the congested queue at once")
	}
}

func TestAveragedQueueCountChange(t *testing.T) {
	m := NewAveraged(&PerQueueStandard{K: units.Packets(4)}, 0.5)
	p := &pkt.Packet{ECT: true}
	m.ShouldMark(pv(10*units.Gbps, []float64{1}, units.Packets(8)), 0, p)
	// Switching to a view with a different queue count must reset state,
	// not panic.
	two := pv(10*units.Gbps, []float64{1, 1}, units.Packets(8), 0)
	if !m.ShouldMark(two, 0, p) {
		t.Fatal("after reset the seeded average should mark immediately")
	}
}
