package ecn

import (
	"math/rand"

	"pmsb/internal/pkt"
)

// RED implements Random Early Detection marking on a queue's occupancy
// (Floyd & Jacobson 1993, the paper's reference [6]). Between MinK and
// MaxK the marking probability rises linearly from 0 to MaxP; above
// MaxK every packet is marked.
//
// DCTCP's marking is the degenerate setting MinK = MaxK = K with
// instantaneous occupancy ("DCTCP uses a special parameter setting of
// RED ECN marking", paper Section II-A) — see NewDCTCPStep. Combine
// with NewAveraged for classic averaged RED.
type RED struct {
	// MinK and MaxK bound the probabilistic region, in bytes.
	MinK, MaxK int
	// MaxP is the marking probability at MaxK.
	MaxP float64
	// Rand supplies randomness; nil uses a deterministic source seeded
	// with 1 (keeping simulations reproducible).
	Rand *rand.Rand
	// PerPortOccupancy switches the measured entity from the packet's
	// queue to the whole port.
	PerPortOccupancy bool
	// MarkPoint selects enqueue or dequeue marking (default enqueue).
	MarkPoint Point
}

var _ Marker = (*RED)(nil)

// NewDCTCPStep returns RED configured as DCTCP's step marking at
// threshold k bytes.
func NewDCTCPStep(k int) *RED {
	return &RED{MinK: k, MaxK: k, MaxP: 1}
}

// Name implements Marker.
func (m *RED) Name() string { return "RED" }

// Point implements Marker.
func (m *RED) Point() Point {
	if m.MarkPoint == 0 {
		return AtEnqueue
	}
	return m.MarkPoint
}

// ShouldMark implements Marker.
func (m *RED) ShouldMark(pv PortView, q int, p *pkt.Packet) bool {
	occ := pv.QueueBytes(q)
	if m.PerPortOccupancy {
		occ = pv.PortBytes()
	}
	switch {
	case occ < m.MinK:
		return false
	case occ >= m.MaxK:
		return true
	default:
		span := float64(m.MaxK - m.MinK)
		prob := m.MaxP * float64(occ-m.MinK) / span
		return m.rng().Float64() < prob
	}
}

func (m *RED) rng() *rand.Rand {
	if m.Rand == nil {
		m.Rand = rand.New(rand.NewSource(1))
	}
	return m.Rand
}
