package ecn

import (
	"testing"
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// fakePort is a scriptable PortView for marker unit tests.
type fakePort struct {
	queueBytes []int
	queuePkts  []int
	weights    []float64
	rate       units.Rate
	now        time.Duration
	round      RoundInfo
}

var _ PortView = (*fakePort)(nil)

func (f *fakePort) NumQueues() int       { return len(f.queueBytes) }
func (f *fakePort) QueueBytes(q int) int { return f.queueBytes[q] }
func (f *fakePort) QueuePackets(q int) int {
	if f.queuePkts == nil {
		return f.queueBytes[q] / units.MTU
	}
	return f.queuePkts[q]
}
func (f *fakePort) PortBytes() int {
	t := 0
	for _, b := range f.queueBytes {
		t += b
	}
	return t
}
func (f *fakePort) PortPackets() int {
	t := 0
	for q := range f.queueBytes {
		t += f.QueuePackets(q)
	}
	return t
}
func (f *fakePort) Weight(q int) float64 { return f.weights[q] }
func (f *fakePort) WeightSum() float64 {
	s := 0.0
	for _, w := range f.weights {
		s += w
	}
	return s
}
func (f *fakePort) LinkRate() units.Rate { return f.rate }
func (f *fakePort) Now() time.Duration   { return f.now }
func (f *fakePort) Round() RoundInfo     { return f.round }

type fakeRound struct {
	rt      time.Duration
	quantum int
}

func (r *fakeRound) RoundTime() time.Duration { return r.rt }
func (r *fakeRound) QuantumBytes(int) int     { return r.quantum }

func pv(rate units.Rate, weights []float64, queueBytes ...int) *fakePort {
	return &fakePort{queueBytes: queueBytes, weights: weights, rate: rate}
}

func TestStandardThreshold(t *testing.T) {
	// 10G x 80us x 1 = 100KB.
	if got := StandardThreshold(10*units.Gbps, 80*time.Microsecond, 1); got != 100000 {
		t.Fatalf("StandardThreshold = %d, want 100000", got)
	}
	// lambda scales linearly.
	if got := StandardThreshold(10*units.Gbps, 80*time.Microsecond, 0.5); got != 50000 {
		t.Fatalf("StandardThreshold = %d, want 50000", got)
	}
}

func TestPerQueueStandard(t *testing.T) {
	m := &PerQueueStandard{K: units.Packets(16)}
	p := &pkt.Packet{ECT: true, Size: units.MTU}
	tests := []struct {
		name string
		view *fakePort
		q    int
		want bool
	}{
		{"below", pv(10*units.Gbps, []float64{1, 1}, units.Packets(15), 0), 0, false},
		{"at threshold", pv(10*units.Gbps, []float64{1, 1}, units.Packets(16), 0), 0, true},
		{"other queue full does not matter", pv(10*units.Gbps, []float64{1, 1}, 0, units.Packets(100)), 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.ShouldMark(tt.view, tt.q, p); got != tt.want {
				t.Errorf("ShouldMark = %v, want %v", got, tt.want)
			}
		})
	}
	if m.Point() != AtEnqueue {
		t.Fatal("default point should be enqueue")
	}
}

func TestPerQueueFractional(t *testing.T) {
	// PortK = 16 pkts over weights 1:3 => K_0 = 4 pkts, K_1 = 12 pkts.
	m := &PerQueueFractional{PortK: units.Packets(16)}
	p := &pkt.Packet{ECT: true}
	view := pv(10*units.Gbps, []float64{1, 3}, units.Packets(4), units.Packets(11))
	if !m.ShouldMark(view, 0, p) {
		t.Fatal("queue 0 at 4 pkts should mark (K_0 = 4)")
	}
	if m.ShouldMark(view, 1, p) {
		t.Fatal("queue 1 at 11 pkts should not mark (K_1 = 12)")
	}
}

func TestPerPort(t *testing.T) {
	m := &PerPort{K: units.Packets(16)}
	p := &pkt.Packet{ECT: true}
	// Queue 0 is nearly empty but the port total crosses K: per-port
	// marking victimizes queue 0 — the paper's core complaint.
	view := pv(10*units.Gbps, []float64{1, 1}, units.Packets(1), units.Packets(20))
	if !m.ShouldMark(view, 0, p) {
		t.Fatal("per-port marking must mark any queue when port exceeds K")
	}
	view2 := pv(10*units.Gbps, []float64{1, 1}, units.Packets(1), units.Packets(2))
	if m.ShouldMark(view2, 0, p) {
		t.Fatal("below port threshold must not mark")
	}
}

func TestPerPool(t *testing.T) {
	pool := &Pool{}
	m := &PerPool{K: 1000, Shared: pool}
	p := &pkt.Packet{ECT: true}
	view := pv(10*units.Gbps, []float64{1}, 0)
	if m.ShouldMark(view, 0, p) {
		t.Fatal("empty pool should not mark")
	}
	pool.Add(1500)
	if !m.ShouldMark(view, 0, p) {
		t.Fatal("pool above K should mark even with empty local port")
	}
	pool.Add(-1500)
	if m.ShouldMark(view, 0, p) {
		t.Fatal("drained pool should not mark")
	}
}

func TestNone(t *testing.T) {
	m := None{}
	view := pv(10*units.Gbps, []float64{1}, units.Packets(1000))
	if m.ShouldMark(view, 0, &pkt.Packet{ECT: true}) {
		t.Fatal("None must never mark")
	}
}

func TestMQECNFallsBackWhenIdle(t *testing.T) {
	m := &MQECN{RTT: 80 * time.Microsecond, Lambda: 1}
	// Round time zero (idle port): threshold = standard = 100KB at 10G.
	view := pv(10*units.Gbps, []float64{1, 1}, 99000, 0)
	view.round = &fakeRound{rt: 0, quantum: units.MTU}
	if m.ShouldMark(view, 0, &pkt.Packet{ECT: true}) {
		t.Fatal("below standard threshold with idle round: no mark")
	}
	view.queueBytes[0] = 100000
	if !m.ShouldMark(view, 0, &pkt.Packet{ECT: true}) {
		t.Fatal("at standard threshold with idle round: mark")
	}
}

func TestMQECNScalesWithServiceRate(t *testing.T) {
	m := &MQECN{RTT: 80 * time.Microsecond, Lambda: 1}
	// Quantum 1500B per round, round time 2.4us => service rate 5 Gbps =
	// half the link; K_i = 50KB.
	view := pv(10*units.Gbps, []float64{1, 1}, 49000, 49000)
	view.round = &fakeRound{rt: 2400 * time.Nanosecond, quantum: units.MTU}
	if m.ShouldMark(view, 0, &pkt.Packet{ECT: true}) {
		t.Fatal("49KB below K_i=50KB: no mark")
	}
	view.queueBytes[0] = 51000
	if !m.ShouldMark(view, 0, &pkt.Packet{ECT: true}) {
		t.Fatal("51KB above K_i=50KB: mark")
	}
}

func TestMQECNCapsAtLinkRate(t *testing.T) {
	m := &MQECN{RTT: 80 * time.Microsecond, Lambda: 1}
	// Service rate quantum/round = 1500B/1us = 12 Gbps > C: cap at C,
	// threshold = standard (100KB).
	view := pv(10*units.Gbps, []float64{1}, 99000)
	view.round = &fakeRound{rt: time.Microsecond, quantum: units.MTU}
	if m.ShouldMark(view, 0, &pkt.Packet{ECT: true}) {
		t.Fatal("threshold must cap at the standard threshold")
	}
}

func TestMQECNPanicsWithoutRound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when scheduler has no round info")
		}
	}()
	m := &MQECN{RTT: 80 * time.Microsecond, Lambda: 1}
	view := pv(10*units.Gbps, []float64{1}, 0)
	m.ShouldMark(view, 0, &pkt.Packet{ECT: true})
}

func TestTCNSojourn(t *testing.T) {
	m := &TCN{Threshold: 20 * time.Microsecond}
	if m.Point() != AtDequeue {
		t.Fatal("TCN must be dequeue-only")
	}
	view := pv(10*units.Gbps, []float64{1}, units.Packets(100))
	view.now = 100 * time.Microsecond
	fresh := &pkt.Packet{ECT: true, EnqueuedAt: 90 * time.Microsecond}
	if m.ShouldMark(view, 0, fresh) {
		t.Fatal("10us sojourn below 20us threshold: no mark")
	}
	stale := &pkt.Packet{ECT: true, EnqueuedAt: 70 * time.Microsecond}
	if !m.ShouldMark(view, 0, stale) {
		t.Fatal("30us sojourn above 20us threshold: mark")
	}
}

func TestTCNThreshold(t *testing.T) {
	// Draining 16 MTU packets at 10 Gbps takes 19.2us (the paper's own
	// conversion).
	got := TCNThreshold(units.Packets(16), 10*units.Gbps)
	if got != 19200*time.Nanosecond {
		t.Fatalf("TCNThreshold = %v, want 19.2us", got)
	}
}

func TestPointString(t *testing.T) {
	if AtEnqueue.String() != "enqueue" || AtDequeue.String() != "dequeue" {
		t.Fatal("Point.String mismatch")
	}
	if Point(0).String() != "unknown" {
		t.Fatal("zero Point should stringify as unknown")
	}
}

func TestMarkerIdentities(t *testing.T) {
	pool := &Pool{}
	markers := []struct {
		m     Marker
		name  string
		point Point
	}{
		{&PerQueueStandard{K: 1, MarkPoint: AtDequeue}, "PerQueue(K)", AtDequeue},
		{&PerQueueFractional{PortK: 1, MarkPoint: AtDequeue}, "PerQueue(K_i)", AtDequeue},
		{&PerPort{K: 1, MarkPoint: AtDequeue}, "PerPort", AtDequeue},
		{&PerPool{K: 1, Shared: pool, MarkPoint: AtDequeue}, "PerPool", AtDequeue},
		{None{}, "None", AtEnqueue},
		{&MQECN{RTT: time.Microsecond, Lambda: 1, MarkPoint: AtDequeue}, "MQ-ECN", AtDequeue},
		{&TCN{Threshold: time.Microsecond}, "TCN", AtDequeue},
		{&RED{MinK: 1, MaxK: 2, MaxP: 1, MarkPoint: AtDequeue}, "RED", AtDequeue},
		{NewAveraged(&PerPort{K: 1}, 0.5), "PerPort+avg", AtEnqueue},
	}
	for _, tt := range markers {
		if got := tt.m.Name(); got != tt.name {
			t.Errorf("Name = %q, want %q", got, tt.name)
		}
		if got := tt.m.Point(); got != tt.point {
			t.Errorf("%s Point = %v, want %v", tt.name, got, tt.point)
		}
	}
	// Default (zero MarkPoint) resolves to enqueue for configurable
	// markers.
	for _, m := range []Marker{
		&PerQueueFractional{PortK: 1}, &PerPool{K: 1}, &MQECN{RTT: 1, Lambda: 1}, &RED{MaxK: 1},
	} {
		if m.Point() != AtEnqueue {
			t.Errorf("%s default point = %v, want enqueue", m.Name(), m.Point())
		}
	}
}

func TestPerPoolWithoutSharedFallsBack(t *testing.T) {
	m := &PerPool{K: units.Packets(2)}
	view := pv(10*units.Gbps, []float64{1}, units.Packets(3))
	if !m.ShouldMark(view, 0, &pkt.Packet{ECT: true}) {
		t.Fatal("nil pool must fall back to port occupancy")
	}
}

func TestAveragedViewPacketCounts(t *testing.T) {
	// Exercise the averaged view's packet accessors via a probe marker.
	inner := &countProbe{}
	view := pv(10*units.Gbps, []float64{1}, units.Packets(6))
	probe := NewAveraged(inner, 1)
	probe.ShouldMark(view, 0, &pkt.Packet{ECT: true})
	if inner.queuePkts != 6 || inner.portPkts != 6 {
		t.Fatalf("averaged packet view = %d/%d, want 6/6", inner.queuePkts, inner.portPkts)
	}
}

// countProbe records what the averaged view exposes.
type countProbe struct {
	queuePkts, portPkts int
}

func (c *countProbe) Name() string { return "probe" }
func (c *countProbe) Point() Point { return AtEnqueue }
func (c *countProbe) ShouldMark(pv PortView, q int, p *pkt.Packet) bool {
	c.queuePkts = pv.QueuePackets(q)
	c.portPkts = pv.PortPackets()
	return false
}
