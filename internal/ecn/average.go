package ecn

import (
	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// Averaged wraps a marker so its threshold comparisons see EWMA-averaged
// queue and port occupancy instead of instantaneous values — the classic
// RED behaviour. The paper notes commodity switches mark on "the
// average/instantaneous buffer length"; every marker in this repository
// uses instantaneous lengths by default and can be wrapped with Averaged
// to study the averaged variant.
//
// The average is updated each time the wrapped marker is consulted:
//
//	avg = (1-w)*avg + w*instantaneous
//
// with weight w (RED's classic default is 0.002; datacenter ECN
// typically uses far larger weights or instantaneous marking because
// averaging delays the congestion signal).
type Averaged struct {
	inner  Marker
	weight float64
	queues []float64
	port   float64
	seen   bool
}

var _ Marker = (*Averaged)(nil)

// NewAveraged wraps inner with an EWMA of the given weight in (0, 1].
func NewAveraged(inner Marker, weight float64) *Averaged {
	if weight <= 0 || weight > 1 {
		weight = 1
	}
	return &Averaged{inner: inner, weight: weight}
}

// Name implements Marker.
func (a *Averaged) Name() string { return a.inner.Name() + "+avg" }

// Point implements Marker.
func (a *Averaged) Point() Point { return a.inner.Point() }

// ShouldMark implements Marker: it refreshes the averages from the live
// port view, then consults the wrapped marker through an averaged view.
func (a *Averaged) ShouldMark(pv PortView, q int, p *pkt.Packet) bool {
	a.update(pv)
	return a.inner.ShouldMark(&averagedView{PortView: pv, avg: a}, q, p)
}

func (a *Averaged) update(pv PortView) {
	n := pv.NumQueues()
	if len(a.queues) != n {
		a.queues = make([]float64, n)
		a.seen = false
	}
	if !a.seen {
		for q := 0; q < n; q++ {
			a.queues[q] = float64(pv.QueueBytes(q))
		}
		a.port = float64(pv.PortBytes())
		a.seen = true
		return
	}
	w := a.weight
	for q := 0; q < n; q++ {
		a.queues[q] = (1-w)*a.queues[q] + w*float64(pv.QueueBytes(q))
	}
	a.port = (1-w)*a.port + w*float64(pv.PortBytes())
}

// averagedView substitutes averaged occupancy into a live PortView.
type averagedView struct {
	PortView
	avg *Averaged
}

func (v *averagedView) QueueBytes(q int) int { return int(v.avg.queues[q]) }

func (v *averagedView) QueuePackets(q int) int {
	return int(v.avg.queues[q]) / units.MTU
}

func (v *averagedView) PortBytes() int { return int(v.avg.port) }

func (v *averagedView) PortPackets() int { return int(v.avg.port) / units.MTU }

// compile-time check that averagedView still satisfies PortView through
// embedding (Now, Weight, LinkRate, Round pass through).
var _ PortView = (*averagedView)(nil)
