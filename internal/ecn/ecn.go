// Package ecn defines the ECN marking framework used by simulated switch
// ports and implements every baseline marking scheme the PMSB paper
// compares against:
//
//   - per-queue marking with the standard threshold (Section II-B),
//   - per-queue marking with the weight-fractional threshold (Eq. 2),
//   - per-port marking (Section II-B),
//   - per-service-pool marking (Section II-B),
//   - MQ-ECN dynamic per-queue thresholds (Eq. 3, NSDI'16),
//   - TCN sojourn-time marking (Eq. 4, CoNEXT'16).
//
// The paper's own scheme (PMSB) lives in internal/core; it implements the
// same Marker interface.
package ecn

import (
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// Point says when a marker inspects packets.
type Point int

const (
	// AtEnqueue marks packets as they enter the queue (classic RED/ECN).
	AtEnqueue Point = iota + 1
	// AtDequeue marks packets as they leave the queue. The paper shows
	// dequeue marking delivers congestion information earlier
	// (Figures 4, 11, 12).
	AtDequeue
)

// String implements fmt.Stringer.
func (p Point) String() string {
	switch p {
	case AtEnqueue:
		return "enqueue"
	case AtDequeue:
		return "dequeue"
	default:
		return "unknown"
	}
}

// PortView is the switch-port state a marker may consult when deciding
// whether to mark a packet. The port implements it; markers must treat
// it as read-only.
type PortView interface {
	// NumQueues returns the number of service queues on the port.
	NumQueues() int
	// QueueBytes returns the instantaneous buffered bytes of queue q.
	QueueBytes(q int) int
	// QueuePackets returns the buffered packet count of queue q.
	QueuePackets(q int) int
	// PortBytes returns the total buffered bytes across the port.
	PortBytes() int
	// PortPackets returns the total buffered packets across the port.
	PortPackets() int
	// Weight returns the scheduling weight of queue q.
	Weight(q int) float64
	// WeightSum returns the sum of all queue weights.
	WeightSum() float64
	// LinkRate returns the capacity of the attached link.
	LinkRate() units.Rate
	// Now returns the current virtual time.
	Now() time.Duration
	// Round returns round-based scheduler state, or nil when the
	// scheduler has no round notion (WFQ, SP, FIFO). MQ-ECN requires a
	// non-nil Round.
	Round() RoundInfo
}

// RoundInfo mirrors sched.RoundInfo without importing it, keeping the
// marker layer independent of scheduler implementations.
type RoundInfo interface {
	RoundTime() time.Duration
	QuantumBytes(q int) int
}

// Marker decides whether a packet passing through a port should carry
// the CE codepoint. The port consults the marker only for ECT packets
// and only at the marker's Point.
type Marker interface {
	// Name identifies the scheme (used in result tables).
	Name() string
	// Point returns when this marker runs.
	Point() Point
	// ShouldMark reports whether the packet p, which is entering or
	// leaving queue q (per Point), must be CE-marked. The decision uses
	// the port state pv at the instant of the call. Implementations
	// must not mutate p; the port applies the mark.
	ShouldMark(pv PortView, q int, p *pkt.Packet) bool
}

// StandardThreshold returns the standard ECN marking threshold in bytes,
// K = C x RTT x lambda (paper Eq. 1 / Eq. 5), the setting that keeps the
// bottleneck link busy while holding latency low.
func StandardThreshold(c units.Rate, rtt time.Duration, lambda float64) int {
	return int(float64(units.BDP(c, rtt)) * lambda)
}
