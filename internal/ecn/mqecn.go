package ecn

import (
	"time"

	"pmsb/internal/pkt"
	"pmsb/internal/units"
)

// MQECN implements the MQ-ECN dynamic per-queue threshold (Bai et al.,
// NSDI'16; paper Eq. 3):
//
//	K_i = min(quantum_i / T_round, C) x RTT x lambda
//
// quantum_i / T_round is queue i's service rate under the round-based
// scheduler; the threshold scales the standard BDP threshold by the
// queue's actual share of the link. When the port has been idle (round
// time 0) the threshold falls back to the full standard threshold so a
// lone queue keeps full throughput.
//
// MQ-ECN requires a round-based scheduler: ShouldMark panics if the
// port's scheduler exposes no RoundInfo, which mirrors the paper's
// limitation that MQ-ECN "only supports round-based schedulers".
type MQECN struct {
	// RTT is the base round-trip time used for threshold sizing.
	RTT time.Duration
	// Lambda is the threshold scale factor of Eq. 1.
	Lambda float64
	// MarkPoint selects enqueue or dequeue marking (default enqueue).
	MarkPoint Point
}

var _ Marker = (*MQECN)(nil)

// Name implements Marker.
func (m *MQECN) Name() string { return "MQ-ECN" }

// Point implements Marker.
func (m *MQECN) Point() Point {
	if m.MarkPoint == 0 {
		return AtEnqueue
	}
	return m.MarkPoint
}

// ShouldMark implements Marker.
func (m *MQECN) ShouldMark(pv PortView, q int, p *pkt.Packet) bool {
	round := pv.Round()
	if round == nil {
		panic("ecn: MQ-ECN requires a round-based scheduler (DWRR/WRR)")
	}
	ki := m.threshold(pv, round, q)
	return pv.QueueBytes(q) >= ki
}

// threshold computes K_i in bytes.
func (m *MQECN) threshold(pv PortView, round RoundInfo, q int) int {
	c := pv.LinkRate()
	standard := StandardThreshold(c, m.RTT, m.Lambda)
	tround := round.RoundTime()
	if tround <= 0 {
		return standard
	}
	// Service rate of queue q in bytes/second, capped at link rate.
	quantum := float64(round.QuantumBytes(q))
	rate := quantum / tround.Seconds()
	capacity := float64(c) / 8
	if rate >= capacity {
		return standard
	}
	return int(rate * m.RTT.Seconds() * m.Lambda)
}

// TCN implements the sojourn-time marker of Bai et al. (CoNEXT'16;
// paper Eq. 4): a packet is marked at dequeue when the time it spent in
// the queue exceeds T = RTT x lambda. TCN supports any scheduler but can
// only observe congestion after a packet has experienced it, which is
// the "cannot deliver congestion information early" limitation the paper
// demonstrates in Figure 5.
type TCN struct {
	// Threshold is the sojourn-time threshold (e.g. 78.2us in the
	// paper's large-scale setup).
	Threshold time.Duration
}

var _ Marker = (*TCN)(nil)

// Name implements Marker.
func (m *TCN) Name() string { return "TCN" }

// Point implements Marker. TCN is inherently dequeue-only: sojourn time
// is unknown at enqueue.
func (m *TCN) Point() Point { return AtDequeue }

// ShouldMark implements Marker.
func (m *TCN) ShouldMark(pv PortView, q int, p *pkt.Packet) bool {
	sojourn := pv.Now() - p.EnqueuedAt
	return sojourn > m.Threshold
}

// TCNThreshold returns the sojourn threshold equivalent to a buffer
// threshold of kBytes on a link of rate c: the time the link needs to
// drain kBytes (used to translate packet thresholds into TCN settings,
// as the paper does: 16 packets at 10G ~ 19.2us).
func TCNThreshold(kBytes int, c units.Rate) time.Duration {
	return units.Serialization(kBytes, c)
}
