package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Nanosecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Nanosecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Nanosecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Nanosecond {
		t.Fatalf("Now() = %v, want 30ns", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(time.Microsecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of FIFO order at %d: %v", i, got[i])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 9*time.Millisecond {
		t.Fatalf("Now() = %v, want 9ms", e.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.Schedule(time.Second, func() { fired = true })
	if !timer.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !timer.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if timer.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := NewEngine()
	timer := e.Schedule(time.Second, func() {})
	e.Run()
	if timer.Active() {
		t.Fatal("fired timer should not be active")
	}
	if timer.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s (clock advances to deadline)", e.Now())
	}
}

// The queue draining before the deadline must not leave the clock at
// the last event: every RunUntil caller that divides by the run window
// (throughput, mark fractions) relies on Now() == deadline afterwards.
func TestRunUntilDrainAdvancesToDeadline(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Millisecond, func() {})
	e.RunUntil(time.Second)
	if e.Now() != time.Second {
		t.Fatalf("Now() after drain = %v, want 1s", e.Now())
	}

	// An empty queue is the degenerate drain: the clock still lands on
	// the deadline.
	e.RunUntil(2 * time.Second)
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() with no events = %v, want 2s", e.Now())
	}
}

// Stop during RunUntil keeps the clock at the stopping event's time —
// the deadline was never reached — and leaves the remaining events
// queued so a later run resumes from that point.
func TestRunUntilStopKeepsClock(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for i := 1; i <= 5; i++ {
		at := time.Duration(i) * time.Millisecond
		e.Schedule(at, func() {
			fired = append(fired, at)
			if at == 3*time.Millisecond {
				e.Stop()
			}
		})
	}
	e.RunUntil(time.Second)
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("Now() after Stop = %v, want 3ms", e.Now())
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events before Stop, want 3", len(fired))
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}

	// Resume: the stopped run left the queue intact.
	e.RunUntil(time.Second)
	if len(fired) != 5 || e.Now() != time.Second {
		t.Fatalf("resume fired %d events, Now() = %v; want 5 events at 1s", len(fired), e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", e.Pending())
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.Schedule(-time.Hour, func() {
			if e.Now() != time.Second {
				t.Fatalf("clamped event ran at %v, want 1s", e.Now())
			}
		})
	})
	e.Run()
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.ScheduleAt(0, func() {
			if e.Now() != time.Second {
				t.Fatalf("past event ran at %v, want 1s", e.Now())
			}
		})
	})
	e.Run()
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i), func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7", e.Processed())
	}
}

// Property: events always execute in nondecreasing time order, no matter
// the insertion order.
func TestPropertyMonotonicExecution(t *testing.T) {
	f := func(delays []uint32) bool {
		e := NewEngine()
		var times []time.Duration
		for _, d := range delays {
			d := time.Duration(d)
			e.Schedule(d, func() { times = append(times, e.Now()) })
		}
		e.Run()
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine executes exactly the non-cancelled events.
func TestPropertyCancellationExact(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		timers := make([]*Timer, n)
		fired := make([]bool, n)
		for i := range timers {
			i := i
			timers[i] = e.Schedule(time.Duration(r.Intn(1000)), func() { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := range timers {
			if r.Intn(2) == 0 {
				timers[i].Cancel()
				cancelled[i] = true
			}
		}
		e.Run()
		for i := range fired {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Nanosecond, func() {})
		}
		e.Run()
	}
}

func BenchmarkNestedEventChain(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		if n < b.N {
			n++
			e.Schedule(time.Nanosecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.Every(time.Millisecond, func() {
		count++
		if count == 5 {
			tk.Stop()
		}
	})
	e.RunUntil(time.Second)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	if e.Now() != time.Second {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	e := NewEngine()
	tk := e.Every(time.Millisecond, func() { t.Fatal("tick after stop") })
	tk.Stop()
	tk.Stop()
	e.RunUntil(10 * time.Millisecond)
}

func TestTickerNonPositiveInterval(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Every(0, func() { fired = true })
	e.RunUntil(time.Second)
	if fired {
		t.Fatal("zero-interval ticker must not fire")
	}
}

func TestTickerCadence(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Every(250*time.Microsecond, func() { times = append(times, e.Now()) })
	e.RunUntil(time.Millisecond)
	want := []time.Duration{250 * time.Microsecond, 500 * time.Microsecond, 750 * time.Microsecond, time.Millisecond}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestTimerHandleInertAfterRecycle(t *testing.T) {
	e := NewEngine()
	t1 := e.Schedule(time.Millisecond, func() {})
	e.Run()
	// t1's event record is recycled; a new event may reuse it.
	fired := false
	t2 := e.Schedule(time.Millisecond, func() { fired = true })
	// Operating on the stale handle must not disturb the new event.
	if t1.Active() || t1.Cancel() || t1.At() != 0 {
		t.Fatal("stale handle must be inert")
	}
	e.Run()
	if !fired {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if t2.Active() {
		t.Fatal("fired timer still active")
	}
}

func TestRecycleKeepsDeterminism(t *testing.T) {
	runOnce := func() []int {
		e := NewEngine()
		var got []int
		for round := 0; round < 5; round++ {
			round := round
			for i := 0; i < 50; i++ {
				i := i
				e.Schedule(time.Duration(i%7)*time.Microsecond, func() {
					got = append(got, round*100+i)
				})
			}
			e.Run()
		}
		return got
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) || len(a) != 250 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recycling broke determinism at %d", i)
		}
	}
}
