package sim

import (
	"fmt"
	"time"
)

// This file implements sharded parallel simulation: several engines
// (one per topology shard) run concurrently inside conservative
// bounded-lag windows and exchange boundary events at barriers.
//
// Protocol. Let L be the lookahead: the minimum propagation delay over
// every cross-shard link (registered via Boundary). Each round the
// coordinator computes T, the earliest pending event time across all
// shards, and lets every shard execute its events in [T, T+L) in
// parallel. Any cross-shard send performed by an event at time u >= T
// arrives at u+delay >= T+L — at or beyond the window end — so no shard
// can receive an event inside the window it is currently executing.
// The barrier then drains every shard's outbox into the destination
// engines and the next round recomputes T. Windows are half-open so an
// arrival exactly at a window end is injected before the events it
// could tie with are run.
//
// Determinism and serial equivalence. The window sequence is a pure
// function of engine states, so a sharded run is deterministic
// regardless of goroutine scheduling. Stronger: it reproduces the
// serial engine's event order exactly, as long as the sort key
// disambiguates. The serial engine orders same-time events by seq,
// which is assigned in scheduling order; because the clock never runs
// backwards, that is equivalent to ordering by (schedAt, seq). A
// cross-shard injection carries its true schedAt (the sending engine's
// clock at send time) and the sender's monotone cross-send seq, so it
// sorts against local events of the destination shard exactly where the
// serial engine would have placed it — except when a local and a remote
// event (or two remote events from different shards) carry the *same*
// (at, schedAt): two causally independent schedules at the same instant
// whose serial order depended on global seq interleaving that no shard
// can reconstruct. The key then falls back to lane order (locals first,
// then by sending shard). Topologies whose shards receive from a single
// peer and whose local scheduling horizons (serialization times,
// timers) never equal a cut-link delay cannot produce such ties, which
// differential_test.go proves byte-for-byte on the dumbbell and
// leaf-spine workloads. See DESIGN.md section 8.
//
// Threading. Each shard owns one worker goroutine; engines are only
// ever touched by their worker (inside a window) or by the coordinator
// (at a barrier), with channel sends establishing the happens-before
// edges between the two. Nothing in the engine grows locks.

// Coordinator synchronizes a set of shard engines. Create one with
// NewCoordinator, add shards with NewShard, declare every cross-shard
// link with Boundary, then drive the whole simulation with RunUntil.
type Coordinator struct {
	shards    []*Shard
	lookahead time.Duration // min registered boundary delay; 0 = none yet
}

// Shard is one engine plus its cross-shard plumbing.
type Shard struct {
	coord *Coordinator
	id    int
	eng   *Engine

	// outbox accumulates cross-shard sends performed during the shard's
	// current window; only the shard's own worker appends, and only the
	// coordinator drains (at a barrier).
	outbox  []remoteEvent
	sendSeq uint64

	// Cached earliest-pending-event time, maintained by runBefore
	// returns and barrier injections so the coordinator never rescans
	// engine queues.
	nextAt  time.Duration
	hasNext bool

	windowCh chan time.Duration
	doneCh   chan struct{}
}

// remoteEvent is one cross-shard delivery waiting at a barrier.
type remoteEvent struct {
	dst    *Shard
	at     time.Duration
	sentAt time.Duration
	seq    uint64
	fn     func(any)
	arg    any
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{}
}

// NewShard adds a shard with a fresh calendar-queue engine.
func (c *Coordinator) NewShard() *Shard {
	s := &Shard{coord: c, id: len(c.shards), eng: NewEngine()}
	c.shards = append(c.shards, s)
	return s
}

// Shards returns the shards in creation order.
func (c *Coordinator) Shards() []*Shard { return c.shards }

// Lookahead returns the current conservative window width: the minimum
// delay among registered boundaries (0 before any registration).
func (c *Coordinator) Lookahead() time.Duration { return c.lookahead }

// Engine returns the shard's engine. Entities placed on this shard must
// schedule exclusively against it.
func (s *Shard) Engine() *Engine { return s.eng }

// ID returns the shard's index in creation order.
func (s *Shard) ID() int { return s.id }

// Boundary declares a directed cross-shard link with the given
// propagation delay and returns the handle its sender uses to deliver
// across the cut. The delay lower-bounds the coordinator's lookahead,
// so it must be positive: a zero-delay cut would make the conservative
// window empty.
func (c *Coordinator) Boundary(from, to *Shard, delay time.Duration) *Boundary {
	if from == to {
		panic("sim: boundary endpoints are the same shard (use a local link)")
	}
	if from.coord != c || to.coord != c {
		panic("sim: boundary shards belong to a different coordinator")
	}
	if delay <= 0 {
		panic(fmt.Sprintf("sim: boundary delay must be positive, got %v", delay))
	}
	if c.lookahead == 0 || delay < c.lookahead {
		c.lookahead = delay
	}
	return &Boundary{from: from, to: to, delay: delay}
}

// Boundary is the sending end of one cross-shard link.
type Boundary struct {
	from, to *Shard
	delay    time.Duration
}

// Delay returns the boundary's propagation delay.
func (b *Boundary) Delay() time.Duration { return b.delay }

// Send schedules fn(arg) on the destination shard one propagation delay
// from now. It must be called from the sending shard's execution
// context (i.e. from an event running on its engine); the delivery is
// parked in the shard's outbox and injected at the next barrier with
// the full deterministic key: arrival time, sending clock, sending
// shard's lane and cross-send sequence.
func (b *Boundary) Send(fn func(any), arg any) {
	s := b.from
	now := s.eng.now
	s.outbox = append(s.outbox, remoteEvent{
		dst:    b.to,
		at:     now + b.delay,
		sentAt: now,
		seq:    s.sendSeq,
		fn:     fn,
		arg:    arg,
	})
	s.sendSeq++
}

// RunUntil executes events with timestamps <= deadline on every shard,
// advancing them in conservative lookahead windows. On return every
// shard's clock is at the deadline (matching Engine.RunUntil's
// advance-on-drain contract). Engine.Stop is not supported under a
// coordinator; a single-shard coordinator degenerates to the serial
// RunUntil.
func (c *Coordinator) RunUntil(deadline time.Duration) {
	switch {
	case len(c.shards) == 0:
		return
	case len(c.shards) == 1:
		c.shards[0].eng.RunUntil(deadline)
		return
	case c.lookahead <= 0:
		// No boundaries: the shards are fully independent simulations.
		for _, s := range c.shards {
			s.eng.RunUntil(deadline)
		}
		return
	}

	// Workers live for the duration of this call: window dispatches and
	// barrier acks ride two unbuffered channels per shard, whose
	// send/receive pairs are the happens-before edges that hand each
	// engine between its worker and the coordinator.
	for _, s := range c.shards {
		s.windowCh = make(chan time.Duration)
		s.doneCh = make(chan struct{})
		ev := s.eng.peek()
		s.hasNext = ev != nil
		if s.hasNext {
			s.nextAt = ev.at
		}
		go s.work()
	}
	defer func() {
		for _, s := range c.shards {
			close(s.windowCh)
		}
	}()

	active := make([]*Shard, 0, len(c.shards))
	for {
		t, ok := c.minNext()
		if !ok || t > deadline {
			break
		}
		// Half-open window [t, w); the final window stretches one
		// nanosecond past the deadline so events exactly at it still run.
		w := t + c.lookahead
		if w > deadline {
			w = deadline + 1
		}
		// Dispatch only to shards with work inside the window — an idle
		// shard's cached nextAt stays valid, and skipping it skips two
		// goroutine wakeups. Dispatch precedes any wait so active shards
		// run concurrently. The dispatched set is remembered explicitly:
		// a worker overwrites its shard's nextAt/hasNext before acking,
		// so re-testing the predicate here would race and could skip the
		// ack a worker is blocked on.
		active = active[:0]
		for _, s := range c.shards {
			if s.hasNext && s.nextAt < w {
				s.windowCh <- w
				active = append(active, s)
			}
		}
		for _, s := range active {
			<-s.doneCh
		}
		c.drainOutboxes()
	}
	for _, s := range c.shards {
		s.eng.advanceTo(deadline)
	}
}

// work is the shard's worker loop: one runBefore per dispatched window.
func (s *Shard) work() {
	for w := range s.windowCh {
		s.nextAt, s.hasNext = s.eng.runBefore(w)
		s.doneCh <- struct{}{}
	}
}

// minNext returns the earliest pending event time across shards.
func (c *Coordinator) minNext() (time.Duration, bool) {
	var min time.Duration
	ok := false
	for _, s := range c.shards {
		if s.hasNext && (!ok || s.nextAt < min) {
			min = s.nextAt
			ok = true
		}
	}
	return min, ok
}

// drainOutboxes injects every parked cross-shard delivery into its
// destination engine. Injection order is irrelevant to the result (the
// queue orders purely by key) but outboxes are drained in shard order
// anyway so the engine's internal layout is reproducible too.
func (c *Coordinator) drainOutboxes() {
	for _, s := range c.shards {
		for i := range s.outbox {
			r := &s.outbox[i]
			r.dst.eng.injectRemote(r.at, r.sentAt, uint32(1+s.id), r.seq, r.fn, r.arg)
			if !r.dst.hasNext || r.at < r.dst.nextAt {
				r.dst.nextAt, r.dst.hasNext = r.at, true
			}
			// Release the callback and payload references immediately;
			// the outbox slice is reused across windows.
			r.fn, r.arg = nil, nil
		}
		s.outbox = s.outbox[:0]
	}
}

// Processed returns the total events executed across all shards. For a
// workload identical to a serial run it equals the serial engine's
// Processed count: sharding moves events between queues but neither
// adds nor removes any.
func (c *Coordinator) Processed() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.eng.processed
	}
	return n
}
