package sim

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// This file implements sharded parallel simulation: several engines
// (one per topology shard) run concurrently inside conservative
// windows and exchange boundary events between windows.
//
// Two protocols implement the windowing (ParMode):
//
// ParChannel (default) keeps one clock per directed shard pair — the
// CMB/null-message discipline, computed centrally. Every registered
// boundary folds into a channel src->dst whose delay is the minimum
// over that pair's cut links. Each shard publishes a lower bound lb on
// the time of any send it may still perform; a shard's window grant is
// then the minimum of lb(src)+delay(src->dst) over *its own* incoming
// channels, not the global minimum cut delay. Idle shards publish null
// advances: lb relaxes through them (lb = min(next local event,
// min over incoming channels of lb(src)+delay)), exactly the
// shortest-path closure min over shards t of nextAt(t)+dist(t->s) — so
// a quiet region of the fabric never gates a busy one, and distant
// shards never wait on the topology's tightest link. There is no full
// barrier: the coordinator grants each shard as soon as its own
// channels allow and collects completions one at a time.
//
// ParGlobal is the original bounded-lag reference: lookahead L = the
// minimum delay over every cut link, one global window [T, T+L) with
// T the earliest pending event across all shards, and a full barrier
// draining every outbox before the next window. It is kept as the A/B
// escape hatch (-par=global) and as the simplest statement of the
// safety argument both protocols share.
//
// Safety invariant (both modes). A shard executing events strictly
// before its window end W must already hold every cross-shard arrival
// with timestamp < W. In ParGlobal that is the classical lookahead
// argument: a send by an event at u >= T arrives at u+delay >= T+L = W.
// In ParChannel: a send from shard j is performed by an event j
// executes, and j never executes anything before its published lb(j) —
// frozen at its window start while a window is in flight, relaxed
// through the channel graph while idle — so the arrival lands at
// >= lb(j)+delay(j->dst) >= grant(dst) = W. Arrivals produced *during*
// a destination's own window are parked (pendingSlabs) and injected
// when that window completes; they are all at or beyond the
// destination's grant, hence beyond everything that window executed. Windows are
// half-open so an arrival exactly at a window end is injected before
// the events it could tie with are run.
//
// Deadlock freedom. Delays are strictly positive, so the shard owning
// the globally earliest pending event m always receives a grant
// > m (every incoming channel contributes >= m + delay > m): some
// shard is always dispatchable while work remains.
//
// Determinism and serial equivalence. Under ParChannel the window
// bounds themselves depend on completion order (the coordinator grants
// as completions arrive), but the *result* does not: an engine executes
// its queue in the strict total key order (at, schedAt, lane, seq), and
// the safety invariant guarantees every injection is queued before
// execution passes its key. Window bounds only partition that fixed
// per-shard sequence, so the executed sequence — and every trace, FCT
// and processed-event count derived from it — is invariant across
// goroutine schedules, across work-stealing, and across ParGlobal vs
// ParChannel at the same shard count. The serial-equivalence argument
// for the key itself is unchanged from the barrier protocol: the serial
// engine orders same-time events by seq, which is assigned in
// scheduling order; because the clock never runs backwards, that is
// equivalent to ordering by (schedAt, seq). A cross-shard injection
// carries its true schedAt (the sending engine's clock at send time)
// and the sender's monotone cross-send seq, so it sorts against the
// destination's local events exactly where the serial engine would have
// placed it — except when a local and a remote event (or two remote
// events from different shards) carry the *same* (at, schedAt): two
// causally independent schedules at the same instant whose serial order
// depended on global seq interleaving no shard can reconstruct. The key
// then falls back to lane order (locals first, then by sending shard).
// differential_test.go proves byte-identity on the dumbbell, leaf-spine
// and fat-tree workloads, for both modes. See DESIGN.md section 8.
//
// Threading. A window is executed by exactly one worker goroutine;
// engines are only ever touched by that worker (inside the window) or
// by the coordinator (between the shard's windows), with channel sends
// establishing the happens-before edges between the two. By default
// each shard owns a dedicated worker; with work-stealing enabled
// (SetWorkStealing) grants go to a shared queue and any idle worker
// runs them, so a skewed load (one hot shard, many idle ones) never
// strands runnable windows behind a busy goroutine. Nothing in the
// engine grows locks.

// ParMode selects the coordinator's window protocol.
type ParMode int

const (
	// ParChannel is the default: per-channel clocks with null advances
	// and no full barrier (see the package comment above).
	ParChannel ParMode = iota
	// ParGlobal is the single-lookahead bounded-lag reference protocol:
	// one global window gated by the minimum cut delay, with a full
	// barrier every window. Byte-identical results to ParChannel at the
	// same shard count; kept as the A/B escape hatch.
	ParGlobal
)

// String names the mode the way the -par CLI flag spells it.
func (m ParMode) String() string {
	switch m {
	case ParChannel:
		return "channel"
	case ParGlobal:
		return "global"
	}
	return fmt.Sprintf("ParMode(%d)", int(m))
}

// ParseParMode maps a -par flag value onto a protocol selection.
// Accepted: "channel" (per-channel clocks), "channel-steal" (the same
// plus work-stealing workers), "global" (barrier reference).
func ParseParMode(s string) (mode ParMode, workStealing bool, err error) {
	switch s {
	case "channel":
		return ParChannel, false, nil
	case "channel-steal":
		return ParChannel, true, nil
	case "global":
		return ParGlobal, false, nil
	}
	return 0, false, fmt.Errorf("sim: unknown parallel mode %q (want channel, channel-steal or global)", s)
}

// timeInf is the channel clocks' "no bound" sentinel. Saturating
// arithmetic (satAdd) keeps delay sums from wrapping past it.
const timeInf = time.Duration(math.MaxInt64)

func satAdd(a, b time.Duration) time.Duration {
	if a >= timeInf-b {
		return timeInf
	}
	return a + b
}

// Coordinator synchronizes a set of shard engines. Create one with
// NewCoordinator, add shards with NewShard, declare every cross-shard
// link with Boundary, then drive the whole simulation with RunUntil.
// The configuration — shards, boundaries, mode, work-stealing — is
// frozen by the first RunUntil call; registering a boundary (or
// switching modes) afterwards panics, because a late registration
// would silently invalidate the channel clocks and lookahead already
// used to admit executed windows.
type Coordinator struct {
	shards    []*Shard
	lookahead time.Duration // min registered boundary delay; 0 = none yet
	mode      ParMode
	stealing  bool
	started   bool

	// chanDelay folds every registered boundary into the per-(src,dst)
	// minimum delay: the channel graph the per-channel clocks run on.
	chanDelay map[[2]int]time.Duration
	// in is the flattened channel graph, per destination shard, built
	// once at the first channel-mode RunUntil.
	in [][]inChan

	// doneCh receives window completions (unbuffered: the handoff is
	// the happens-before edge back to the coordinator). stealCh is the
	// shared grant queue when work-stealing is on. Both are created
	// fresh per RunUntil and handed to workers by value, never read
	// back through these fields from a worker: a worker left over from
	// a previous run (still parked on its closed grant channel) must
	// not race with the next run re-making them.
	doneCh  chan *Shard
	stealCh chan *Shard

	// rt collects runtime self-observation when EnableRuntimeStats was
	// called; mon is the live progress surface when SetMonitor was.
	// Both nil (disabled) by default; frozen at the first RunUntil like
	// the rest of the configuration.
	rt  *runStats
	mon *Monitor

	// slabPool recycles drained event slabs across all shards. Slabs
	// migrate with the traffic matrix (a slab filled by one shard is
	// often drained while another's worker holds the sender busy), so
	// per-shard free lists starve senders into fresh allocations every
	// window; a shared pool keeps the steady-state slab population —
	// and their grown ev backing arrays — in circulation instead.
	slabPool sync.Pool
}

// inChan is one incoming channel of a shard: the sending shard and the
// minimum delay over the boundaries folded into the channel.
type inChan struct {
	src   int
	delay time.Duration
}

// Shard is one engine plus its cross-shard plumbing.
type Shard struct {
	coord *Coordinator
	id    int
	eng   *Engine

	// Cross-shard sends accumulate in per-destination slabs, handed off
	// whole: outboxTo[d] is the slab of this window's sends to shard d
	// (nil until the first send), outDst lists the destinations touched
	// in first-send order so the drain walks only live slabs. Only the
	// worker running the window appends; only the coordinator drains
	// (after receiving the completion) — the same grant/done channel
	// handoff that transfers engine ownership transfers slab ownership.
	// Drained slabs recycle through the coordinator's slabPool
	// (pooled-packet discipline: a slab is owned by exactly one side at
	// a time; the pool only ever holds cleared, unowned slabs).
	outboxTo []*eventSlab
	outDst   []int
	sendSeq  uint64

	// Cached earliest-pending-event time, maintained by runBefore
	// returns and injections so the coordinator never rescans engine
	// queues.
	nextAt  time.Duration
	hasNext bool

	// Channel-clock state, owned by the coordinator goroutine.
	// lb is the published lower bound on the time of any send this
	// shard may still perform: frozen at the window start while a
	// window is in flight, relaxed through the channel graph while
	// idle. pendingSlabs parks whole arrival slabs delivered while a
	// window runs (a pointer swap, not a per-event copy); they are
	// injected when it completes (every event in them is at or beyond
	// the shard's own grant, so nothing executed could have needed
	// them). A parked slab is recycled through the shared slab pool once
	// drained — never into per-shard state that its original owner
	// might be touching.
	running      bool
	lb           time.Duration
	grantEnd     time.Duration
	pendingSlabs []*eventSlab

	grantCh chan struct{}

	// mon is this shard's progress slot when a Monitor is attached (nil
	// otherwise); the worker executing a window publishes into it at the
	// window boundary.
	mon *MonitorShard
}

// remoteEvent is one cross-shard delivery waiting to be injected. The
// destination is carried by the slab holding it, not per event.
type remoteEvent struct {
	at     time.Duration
	sentAt time.Duration
	lane   uint32
	seq    uint64
	fn     func(any)
	arg    any
}

// eventSlab is one window's batch of deliveries from one source shard
// to one destination. The coordinator moves slabs by pointer — park,
// inject, recycle — so cross-shard traffic costs O(slabs), not
// O(events), on the coordinator's critical path. minAt caches the
// earliest arrival so absorbing a slab updates the destination's
// cached next-event time with a single comparison.
type eventSlab struct {
	ev    []remoteEvent
	minAt time.Duration
}

// getSlab takes a recycled slab from the shared pool (or allocates the
// first few). Called from Boundary.Send (worker context); sync.Pool is
// safe there, and the caller fully initializes the slab (minAt on the
// first append), so pool pick order cannot influence results.
func (s *Shard) getSlab() *eventSlab {
	if sl, ok := s.coord.slabPool.Get().(*eventSlab); ok && sl != nil {
		return sl
	}
	return &eventSlab{}
}

// putSlab recycles a drained slab, dropping callback and payload
// references so the delivered events' object graphs can be collected
// while the slab (and its grown backing array) stays in circulation.
// Called only on slabs no shard holds a reference to.
func (s *Shard) putSlab(sl *eventSlab) {
	clear(sl.ev)
	sl.ev = sl.ev[:0]
	s.coord.slabPool.Put(sl)
}

// injectSlab injects a slab's events into the destination engine and
// folds the slab's earliest arrival into the cached next-event time.
func injectSlab(d *Shard, sl *eventSlab) {
	for i := range sl.ev {
		r := &sl.ev[i]
		d.eng.injectRemote(r.at, r.sentAt, r.lane, r.seq, r.fn, r.arg)
	}
	if len(sl.ev) > 0 && (!d.hasNext || sl.minAt < d.nextAt) {
		d.nextAt, d.hasNext = sl.minAt, true
	}
}

// NewCoordinator returns an empty coordinator running the default
// per-channel-clock protocol.
func NewCoordinator() *Coordinator {
	return &Coordinator{chanDelay: make(map[[2]int]time.Duration)}
}

// NewShard adds a shard with a fresh calendar-queue engine.
func (c *Coordinator) NewShard() *Shard {
	if c.started {
		panic("sim: NewShard after RunUntil — the coordinator's shard set is frozen once the first window has run")
	}
	s := &Shard{coord: c, id: len(c.shards), eng: NewEngine()}
	c.shards = append(c.shards, s)
	return s
}

// Shards returns the shards in creation order.
func (c *Coordinator) Shards() []*Shard { return c.shards }

// Lookahead returns the global conservative window width — the minimum
// delay among registered boundaries (0 before any registration). It is
// the window ParGlobal runs; ParChannel grants per-shard windows that
// are never narrower.
func (c *Coordinator) Lookahead() time.Duration { return c.lookahead }

// Mode returns the coordinator's window protocol.
func (c *Coordinator) Mode() ParMode { return c.mode }

// SetMode selects the window protocol. Must be called before the first
// RunUntil; the protocol is frozen once windows have run.
func (c *Coordinator) SetMode(m ParMode) {
	if c.started {
		panic("sim: SetMode after RunUntil — the window protocol is frozen once the first window has run")
	}
	c.mode = m
}

// SetWorkStealing enables (or disables) work-stealing window execution
// under ParChannel: granted windows go to a shared queue and any idle
// worker runs them, instead of each shard owning a dedicated worker.
// Results are byte-identical either way (a window is still executed by
// exactly one goroutine, with the same bounds); stealing only changes
// which goroutine that is, which matters when load is skewed across
// shards. Ignored by ParGlobal. Must be called before the first
// RunUntil.
func (c *Coordinator) SetWorkStealing(on bool) {
	if c.started {
		panic("sim: SetWorkStealing after RunUntil — the worker discipline is frozen once the first window has run")
	}
	c.stealing = on
}

// Engine returns the shard's engine. Entities placed on this shard must
// schedule exclusively against it.
func (s *Shard) Engine() *Engine { return s.eng }

// ID returns the shard's index in creation order.
func (s *Shard) ID() int { return s.id }

// Boundary declares a directed cross-shard link with the given
// propagation delay and returns the handle its sender uses to deliver
// across the cut. The delay lower-bounds the coordinator's lookahead
// and the src->dst channel clock, so it must be positive: a zero-delay
// cut would make the conservative window empty.
//
// Every boundary must be registered before the first RunUntil;
// registering one afterwards panics. Admitting a late boundary would
// be a silent correctness hazard: windows already executed were
// admitted against channel clocks (and a lookahead) that did not
// account for the new link, so a delivery crossing it could land
// inside a window that already ran.
func (c *Coordinator) Boundary(from, to *Shard, delay time.Duration) *Boundary {
	if c.started {
		panic("sim: Boundary registered after RunUntil — cross-shard links are frozen once the first window has run (a late link would invalidate the channel clocks already used to admit executed windows)")
	}
	if from == to {
		panic("sim: boundary endpoints are the same shard (use a local link)")
	}
	if from.coord != c || to.coord != c {
		panic("sim: boundary shards belong to a different coordinator")
	}
	if delay <= 0 {
		panic(fmt.Sprintf("sim: boundary delay must be positive, got %v", delay))
	}
	if c.lookahead == 0 || delay < c.lookahead {
		c.lookahead = delay
	}
	key := [2]int{from.id, to.id}
	if d, ok := c.chanDelay[key]; !ok || delay < d {
		c.chanDelay[key] = delay
	}
	return &Boundary{from: from, to: to, delay: delay}
}

// Boundary is the sending end of one cross-shard link.
type Boundary struct {
	from, to *Shard
	delay    time.Duration
}

// Delay returns the boundary's propagation delay.
func (b *Boundary) Delay() time.Duration { return b.delay }

// SourceEngine returns the sending shard's engine — the clock governing
// everything that transmits across this boundary (a port whose link is
// a boundary link schedules its serialization timers here).
func (b *Boundary) SourceEngine() *Engine { return b.from.eng }

// Send schedules fn(arg) on the destination shard one propagation delay
// from now. It must be called from the sending shard's execution
// context (i.e. from an event running on its engine); the delivery is
// appended to the shard's per-destination slab and handed off whole
// after the window completes, with the full deterministic key: arrival
// time, sending clock, sending shard's lane and cross-send sequence.
func (b *Boundary) Send(fn func(any), arg any) {
	s := b.from
	now := s.eng.now
	at := now + b.delay
	dst := b.to.id
	for len(s.outboxTo) <= dst {
		s.outboxTo = append(s.outboxTo, nil)
	}
	sl := s.outboxTo[dst]
	if sl == nil {
		sl = s.getSlab()
		sl.minAt = at
		s.outboxTo[dst] = sl
		s.outDst = append(s.outDst, dst)
	} else if at < sl.minAt {
		sl.minAt = at
	}
	sl.ev = append(sl.ev, remoteEvent{
		at:     at,
		sentAt: now,
		lane:   uint32(1 + s.id),
		seq:    s.sendSeq,
		fn:     fn,
		arg:    arg,
	})
	s.sendSeq++
}

// RunUntil executes events with timestamps <= deadline on every shard,
// advancing them in conservative windows under the configured ParMode.
// On return every shard's clock is at the deadline (matching
// Engine.RunUntil's advance-on-drain contract). Engine.Stop is not
// supported under a coordinator; a single-shard coordinator degenerates
// to the serial RunUntil. The first call freezes the coordinator's
// configuration (see Boundary).
func (c *Coordinator) RunUntil(deadline time.Duration) {
	c.started = true
	if rt := c.rt; rt != nil {
		rt.size(len(c.shards))
		start := time.Now()
		defer func() { rt.wall += time.Since(start) }()
	}
	if c.mon != nil {
		c.mon.deadline.Store(int64(deadline))
		slots := c.mon.attach(len(c.shards))
		for i, s := range c.shards {
			s.mon = slots[i]
		}
	}
	switch {
	case len(c.shards) == 0:
		return
	case len(c.shards) == 1:
		c.runDegenerate(c.shards[:1], deadline)
		return
	case c.lookahead <= 0:
		// No boundaries: the shards are fully independent simulations.
		c.runDegenerate(c.shards, deadline)
		return
	}

	for _, s := range c.shards {
		ev := s.eng.peek()
		s.hasNext = ev != nil
		if s.hasNext {
			s.nextAt = ev.at
		}
	}
	if c.mode == ParGlobal {
		c.runGlobal(deadline)
	} else {
		c.runChannel(deadline)
	}
	for _, s := range c.shards {
		s.eng.advanceTo(deadline)
		if s.mon != nil {
			s.mon.publish(s.eng.processed, s.eng.now)
		}
	}
}

// runDegenerate runs shards to the deadline serially, for the cases
// that need no windowing (a single shard, or no cross-shard
// boundaries). Instrumentation treats each engine run as one window on
// the shard's own worker slot; the engine publishes live progress
// itself while it runs.
func (c *Coordinator) runDegenerate(shards []*Shard, deadline time.Duration) {
	for _, s := range shards {
		if s.mon != nil {
			s.eng.mon = s.mon
		}
		if rt := c.rt; rt != nil {
			start := time.Now()
			e0 := s.eng.processed
			s.eng.RunUntil(deadline)
			d := int64(time.Since(start))
			sc := &rt.shards[s.id]
			sc.events.Add(s.eng.processed - e0)
			sc.busy.Add(d)
			wc := &rt.workers[s.id]
			wc.windows.Add(1)
			wc.busy.Add(d)
		} else {
			s.eng.RunUntil(deadline)
		}
		if s.mon != nil {
			s.eng.mon = nil
			s.mon.publish(s.eng.processed, s.eng.now)
		}
	}
}

// runGlobal is the bounded-lag reference protocol: one global window
// per round, full barrier, outbox drain.
func (c *Coordinator) runGlobal(deadline time.Duration) {
	// Workers live for the duration of this call: window grants and
	// completion acks ride unbuffered channels whose send/receive pairs
	// are the happens-before edges that hand each engine between its
	// worker and the coordinator.
	c.doneCh = make(chan *Shard)
	for i, s := range c.shards {
		s.grantCh = make(chan struct{})
		go c.work(i, s, s.grantCh, c.doneCh)
	}
	defer func() {
		for _, s := range c.shards {
			close(s.grantCh)
		}
	}()

	rt := c.rt
	for {
		t, ok := c.minNext()
		if !ok || t > deadline {
			return
		}
		// Half-open window [t, w); the final window stretches one
		// nanosecond past the deadline so events exactly at it still run.
		w := t + c.lookahead
		if w > deadline {
			w = deadline + 1
		}
		// Dispatch only to shards with work inside the window — an idle
		// shard's cached nextAt stays valid, and skipping it skips two
		// goroutine wakeups. Dispatch precedes any wait so active shards
		// run concurrently. Only the count of grants is needed to run
		// the barrier: each completion is acknowledged on the shared
		// doneCh regardless of which shard finished first.
		active := 0
		if rt != nil {
			rt.grantCalls++
		}
		for _, s := range c.shards {
			if s.hasNext && s.nextAt < w {
				s.grantEnd = w
				if rt != nil {
					sc := &rt.shards[s.id]
					sc.grants++
					sc.grantWidth += w - s.nextAt
				}
				s.grantCh <- struct{}{}
				active++
			}
		}
		if rt != nil {
			t0 := time.Now()
			for i := 0; i < active; i++ {
				<-c.doneCh
			}
			rt.coordBlocked += time.Since(t0)
		} else {
			for i := 0; i < active; i++ {
				<-c.doneCh
			}
		}
		c.drainOutboxes()
	}
}

// runChannel is the per-channel-clock protocol: per-shard grants, no
// barrier, completions absorbed one at a time.
func (c *Coordinator) runChannel(deadline time.Duration) {
	c.buildChannels()
	c.doneCh = make(chan *Shard)
	if c.stealing {
		// Work-stealing: grants ride one shared queue; any idle worker
		// executes them. len(shards) workers means a grant can never
		// wait behind busy goroutines: when a grant is issued its shard
		// is not running, so at most len(shards)-1 windows are in
		// flight and at least one worker is parked on stealCh.
		c.stealCh = make(chan *Shard)
		for i := range c.shards {
			go c.stealWork(i, c.stealCh, c.doneCh)
		}
		defer close(c.stealCh)
	} else {
		for i, s := range c.shards {
			s.grantCh = make(chan struct{})
			go c.work(i, s, s.grantCh, c.doneCh)
		}
		defer func() {
			for _, s := range c.shards {
				close(s.grantCh)
			}
		}()
	}

	// limit is the exclusive execution bound: one nanosecond past the
	// deadline, so events exactly at the deadline still run.
	limit := deadline + 1
	running := 0
	for {
		running += c.grantWindows(limit, deadline)
		if running == 0 {
			// No window in flight and nothing grantable: the run is
			// complete unless the protocol stalled, which the positive
			// channel delays make impossible (the earliest-event shard
			// is always grantable) — so a leftover is a bug, and
			// silently dropping its events would corrupt results.
			for _, s := range c.shards {
				if s.hasNext && s.nextAt <= deadline {
					panic(fmt.Sprintf("sim: channel-clock coordinator stalled with shard %d pending at %v", s.id, s.nextAt))
				}
			}
			return
		}
		var s *Shard
		if rt := c.rt; rt != nil {
			t0 := time.Now()
			s = <-c.doneCh
			rt.coordBlocked += time.Since(t0)
		} else {
			s = <-c.doneCh
		}
		running--
		c.completeWindow(s)
		// Absorb any other already-finished windows before regranting:
		// completions only widen grants, and folding a batch into one
		// clock relaxation amortizes it. A blocked sender on the
		// unbuffered doneCh makes the receive immediately ready.
		for drained := false; !drained; {
			select {
			case s := <-c.doneCh:
				running--
				c.completeWindow(s)
			default:
				drained = true
			}
		}
	}
}

// grantWindows relaxes the channel clocks and dispatches every idle
// shard whose own incoming channels admit work, returning the number of
// windows granted.
func (c *Coordinator) grantWindows(limit, deadline time.Duration) int {
	c.relaxClocks()
	rt := c.rt
	if rt != nil {
		rt.grantCalls++
	}
	granted := 0
	for _, s := range c.shards {
		if s.running || !s.hasNext || s.nextAt > deadline {
			continue
		}
		g := c.grantFor(s)
		if g > limit {
			g = limit
		}
		if g <= s.nextAt {
			continue
		}
		s.running = true
		// Freeze the published bound at the window start: the window
		// executes events at >= nextAt only, so no send it performs —
		// and nothing parked in its outbox — can precede it.
		s.lb = s.nextAt
		s.grantEnd = g
		granted++
		if rt != nil {
			sc := &rt.shards[s.id]
			sc.grants++
			sc.grantWidth += g - s.nextAt
		}
		if c.stealing {
			c.stealCh <- s
		} else {
			s.grantCh <- struct{}{}
		}
	}
	return granted
}

// relaxClocks publishes every idle shard's lower bound on future sends:
// lb = min(next local event, min over incoming channels of
// lb(src)+delay). Running shards keep the bound frozen at their window
// start (they execute nothing earlier, and chains relayed through them
// can only arrive later). The relaxation is plain Bellman-Ford over
// the channel graph — the centralized form of CMB null messages: a
// shard with no local work still advances its neighbors' clocks by
// its own earliest possible cause plus the channel delay.
func (c *Coordinator) relaxClocks() {
	rt := c.rt
	for _, s := range c.shards {
		if s.running {
			continue
		}
		if s.hasNext {
			s.lb = s.nextAt
		} else {
			s.lb = timeInf
		}
	}
	for {
		changed := false
		if rt != nil {
			rt.relaxRounds++
		}
		for dst, ins := range c.in {
			d := c.shards[dst]
			if d.running {
				continue
			}
			for _, ch := range ins {
				if v := satAdd(c.shards[ch.src].lb, ch.delay); v < d.lb {
					d.lb = v
					changed = true
					if rt != nil {
						rt.shards[dst].nullAdvances++
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// grantFor returns the shard's window grant: the minimum channel clock
// over its incoming channels (timeInf for a shard nothing sends to).
func (c *Coordinator) grantFor(s *Shard) time.Duration {
	g := timeInf
	for _, ch := range c.in[s.id] {
		if v := satAdd(c.shards[ch.src].lb, ch.delay); v < g {
			g = v
		}
	}
	return g
}

// buildChannels flattens the registered boundaries into the per-shard
// incoming channel lists, in (src, dst) creation order so the layout —
// and hence the relaxation's memory access pattern — is reproducible.
func (c *Coordinator) buildChannels() {
	if c.in != nil {
		return
	}
	c.in = make([][]inChan, len(c.shards))
	for _, from := range c.shards {
		for _, to := range c.shards {
			if d, ok := c.chanDelay[[2]int{from.id, to.id}]; ok {
				c.in[to.id] = append(c.in[to.id], inChan{src: from.id, delay: d})
			}
		}
	}
}

// completeWindow absorbs one finished window: the shard's outbox slabs
// are handed to their destinations (injected straight into idle ones;
// parked whole — a pointer append — for running ones, whose engines
// are owned by their workers), its own parked slabs are injected, and
// it returns to the grantable pool.
func (c *Coordinator) completeWindow(s *Shard) {
	s.running = false
	rt := c.rt
	for _, dst := range s.outDst {
		sl := s.outboxTo[dst]
		s.outboxTo[dst] = nil
		d := c.shards[dst]
		if rt != nil {
			rt.shards[s.id].outboxSent += uint64(len(sl.ev))
		}
		if d.running {
			// d's engine is in flight; park the whole slab. Safe: every
			// arrival in it is at or beyond d's grant (that is how d's
			// grant was computed), so nothing d's current window
			// executes could need it. The slab now belongs to d and is
			// recycled into d's free list after injection.
			d.pendingSlabs = append(d.pendingSlabs, sl)
			if rt != nil {
				rt.shards[d.id].parked += uint64(len(sl.ev))
			}
		} else {
			injectSlab(d, sl)
			s.putSlab(sl)
		}
	}
	s.outDst = s.outDst[:0]
	for _, sl := range s.pendingSlabs {
		injectSlab(s, sl)
		s.putSlab(sl)
	}
	s.pendingSlabs = s.pendingSlabs[:0]
}

// work is a dedicated worker: it runs its own shard's granted windows.
// The channels arrive as parameters so the loop never reads coordinator
// fields the next RunUntil will re-make; w is the worker's index for
// wall-time attribution (equal to the shard's id for dedicated
// workers). The blocked charge after the done handoff runs after the
// coordinator may already have moved on — which is why worker-side
// counters are atomics.
func (c *Coordinator) work(w int, s *Shard, grants <-chan struct{}, done chan<- *Shard) {
	mark := time.Now()
	for range grants {
		c.runGrant(w, s, &mark)
		done <- s
		if c.rt != nil {
			c.rt.workerBlocked(w, &mark)
		}
	}
}

// stealWork runs whichever shard's window the grant queue hands worker
// w.
func (c *Coordinator) stealWork(w int, grants <-chan *Shard, done chan<- *Shard) {
	mark := time.Now()
	for s := range grants {
		c.runGrant(w, s, &mark)
		done <- s
		if c.rt != nil {
			c.rt.workerBlocked(w, &mark)
		}
	}
}

// minNext returns the earliest pending event time across shards.
func (c *Coordinator) minNext() (time.Duration, bool) {
	var min time.Duration
	ok := false
	for _, s := range c.shards {
		if s.hasNext && (!ok || s.nextAt < min) {
			min = s.nextAt
			ok = true
		}
	}
	return min, ok
}

// drainOutboxes injects every parked cross-shard slab into its
// destination engine (ParGlobal's barrier drain; every shard is parked
// at the barrier, so nothing is ever mid-window here). Injection order
// is irrelevant to the result (the queue orders purely by key) but
// slabs are drained in (source shard, first-send) order anyway so the
// engine's internal layout is reproducible too.
func (c *Coordinator) drainOutboxes() {
	for _, s := range c.shards {
		for _, dst := range s.outDst {
			sl := s.outboxTo[dst]
			s.outboxTo[dst] = nil
			if c.rt != nil {
				c.rt.shards[s.id].outboxSent += uint64(len(sl.ev))
			}
			injectSlab(c.shards[dst], sl)
			s.putSlab(sl)
		}
		s.outDst = s.outDst[:0]
	}
}

// Processed returns the total events executed across all shards. For a
// workload identical to a serial run it equals the serial engine's
// Processed count: sharding moves events between queues but neither
// adds nor removes any.
func (c *Coordinator) Processed() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.eng.processed
	}
	return n
}
