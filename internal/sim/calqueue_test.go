package sim

import (
	"math/rand"
	"testing"
	"time"
)

// forEachQueue runs a subtest against both scheduler implementations.
func forEachQueue(t *testing.T, fn func(t *testing.T, kind QueueKind)) {
	t.Helper()
	for _, k := range []struct {
		name string
		kind QueueKind
	}{{"calendar", QueueCalendar}, {"heap", QueueHeap}} {
		t.Run(k.name, func(t *testing.T) { fn(t, k.kind) })
	}
}

// traceWorkload drives one engine through a scripted random workload —
// bursts of near and far timers, cancellations, and nested scheduling
// from inside callbacks — and returns the execution trace as
// (time, id) pairs.
func traceWorkload(kind QueueKind, seed int64) []struct {
	at time.Duration
	id int
} {
	type rec = struct {
		at time.Duration
		id int
	}
	rng := rand.New(rand.NewSource(seed))
	e := NewEngineWithQueue(kind)
	var trace []rec
	nextID := 0
	var timers []Timer

	// schedule plants one event; a third of the fired events reschedule
	// a follow-up (exercising record recycling mid-run), driven by the
	// callback's own id so both engines script identically.
	var schedule func(delay time.Duration)
	schedule = func(delay time.Duration) {
		id := nextID
		nextID++
		timers = append(timers, e.ScheduleCall(delay, func(arg any) {
			trace = append(trace, rec{e.Now(), arg.(int)})
			if arg.(int)%3 == 0 {
				schedule(time.Duration(arg.(int)%7) * 100 * time.Nanosecond)
			}
		}, id))
	}

	for i := 0; i < 2000; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // near future: sub-window packet-scale delays
			schedule(time.Duration(rng.Int63n(int64(50 * time.Microsecond))))
		case 5, 6: // same-instant bursts
			d := time.Duration(rng.Int63n(int64(10 * time.Microsecond)))
			for j := 0; j < 3; j++ {
				schedule(d)
			}
		case 7, 8: // far future: overflow-tier residents (RTO/ticker scale)
			schedule(time.Duration(rng.Int63n(int64(50*time.Millisecond))) + 10*time.Millisecond)
		case 9: // cancel a random earlier timer
			if len(timers) > 0 {
				timers[rng.Intn(len(timers))].Cancel()
			}
		}
		// Drain a little as we go, so inserts interleave with pops and
		// the calendar's window slides mid-workload.
		if i%50 == 49 {
			for j := 0; j < 20; j++ {
				e.Step()
			}
		}
	}
	e.Run()
	return trace
}

// TestDifferentialQueues is the white-box determinism proof: the exact
// execution trace of a randomized workload must be identical under the
// calendar queue and the reference heap, across several seeds.
func TestDifferentialQueues(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		heap := traceWorkload(QueueHeap, seed)
		cal := traceWorkload(QueueCalendar, seed)
		if len(heap) != len(cal) {
			t.Fatalf("seed %d: trace lengths differ: heap %d, calendar %d", seed, len(heap), len(cal))
		}
		for i := range heap {
			if heap[i] != cal[i] {
				t.Fatalf("seed %d: traces diverge at %d: heap %v, calendar %v",
					seed, i, heap[i], cal[i])
			}
		}
		// The trace itself must be (time, schedule-order) sorted.
		for i := 1; i < len(cal); i++ {
			if cal[i].at < cal[i-1].at {
				t.Fatalf("seed %d: time went backwards at %d", seed, i)
			}
		}
	}
}

// TestSameTimestampFIFO plants many events at one instant, interleaved
// with enough spread-out events to force calendar rebuilds, and checks
// the same-instant run fires in schedule (seq) order — including after
// rebuilds reinserted the chain.
func TestSameTimestampFIFO(t *testing.T) {
	forEachQueue(t, func(t *testing.T, kind QueueKind) {
		e := NewEngineWithQueue(kind)
		const at = 500 * time.Microsecond
		var got []int
		n := 0
		for i := 0; i < 100; i++ {
			id := n
			n++
			e.ScheduleCall(at, func(arg any) { got = append(got, arg.(int)) }, id)
			// Pressure the geometry: events on both sides of the instant,
			// enough to cross the grow threshold repeatedly.
			for j := 0; j < 5; j++ {
				e.ScheduleCall(time.Duration(i*7+j)*time.Microsecond, func(any) {}, nil)
			}
		}
		e.Run()
		if len(got) != 100 {
			t.Fatalf("fired %d of 100 same-instant events", len(got))
		}
		for i, id := range got {
			if id != i {
				t.Fatalf("same-instant FIFO broken: position %d fired id %d", i, id)
			}
		}
	})
}

// TestCancelRecycleReschedule verifies generation safety under the
// calendar queue: a handle whose record was recycled into a new event
// must stay inert even when that new event sits in a bucket chain.
func TestCancelRecycleReschedule(t *testing.T) {
	forEachQueue(t, func(t *testing.T, kind QueueKind) {
		e := NewEngineWithQueue(kind)
		stale := e.ScheduleCall(time.Microsecond, func(any) {}, nil)
		e.Run() // fires and recycles the record

		fired := 0
		var fresh []Timer
		for i := 0; i < 10; i++ {
			fresh = append(fresh, e.ScheduleCall(time.Duration(i+1)*time.Microsecond,
				func(any) { fired++ }, nil))
		}
		if stale.Cancel() || stale.Active() {
			t.Fatal("stale handle operated on a recycled record")
		}
		if _, ok := stale.When(); ok {
			t.Fatal("stale handle reports a pending time")
		}
		// Cancel-then-reschedule cycles: each Cancel makes the next
		// schedule reuse the record with a bumped generation.
		for i := 0; i < 5; i++ {
			fresh[i].Cancel()
			fresh[i] = e.ScheduleCall(time.Duration(20+i)*time.Microsecond,
				func(any) { fired++ }, nil)
		}
		e.Run()
		if fired != 10 {
			t.Fatalf("fired %d events, want 10 (5 survivors + 5 rescheduled)", fired)
		}
	})
}

// TestOverflowMigration checks the far-timer path end to end: events
// scheduled beyond the calendar window start in the overflow tier, then
// migrate into buckets and fire in exact order as the window slides out
// to them.
func TestOverflowMigration(t *testing.T) {
	e := NewEngineWithQueue(QueueCalendar)
	cq := e.q.(*calQueue)

	var got []time.Duration
	note := func(any) { got = append(got, e.Now()) }
	// Far events first (reverse order, stressing the heap), then near.
	for i := 20; i >= 1; i-- {
		e.ScheduleCall(time.Duration(i)*10*time.Millisecond, note, nil)
	}
	if cq.overflow.len() == 0 {
		t.Fatal("far timers did not land in the overflow tier")
	}
	for i := 0; i < 10; i++ {
		e.ScheduleCall(time.Duration(i)*time.Microsecond, note, nil)
	}
	e.Run()
	if cq.overflow.len() != 0 || cq.count != 0 {
		t.Fatalf("queue not drained: overflow %d, buckets %d", cq.overflow.len(), cq.count)
	}
	if len(got) != 30 {
		t.Fatalf("fired %d of 30", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %v after %v", i, got[i], got[i-1])
		}
	}
	if got[len(got)-1] != 200*time.Millisecond {
		t.Fatalf("last event at %v, want 200ms", got[len(got)-1])
	}
}

// TestRunUntilDeadline pins RunUntil's deadline semantics on both
// queues: events at the deadline run, later ones stay pending, the
// clock lands exactly on the deadline, and a later run resumes.
func TestRunUntilDeadline(t *testing.T) {
	forEachQueue(t, func(t *testing.T, kind QueueKind) {
		e := NewEngineWithQueue(kind)
		var fired []time.Duration
		note := func(any) { fired = append(fired, e.Now()) }
		e.ScheduleCall(time.Millisecond, note, nil)
		e.ScheduleCall(2*time.Millisecond, note, nil) // exactly at deadline
		e.ScheduleCall(2*time.Millisecond+1, note, nil)
		e.ScheduleCall(time.Hour, note, nil) // overflow-tier resident

		e.RunUntil(2 * time.Millisecond)
		if len(fired) != 2 {
			t.Fatalf("fired %d events by deadline, want 2", len(fired))
		}
		if e.Now() != 2*time.Millisecond {
			t.Fatalf("clock at %v, want 2ms", e.Now())
		}
		if e.Pending() != 2 {
			t.Fatalf("pending = %d, want 2", e.Pending())
		}
		// An idle stretch: the clock still advances to the deadline.
		e.RunUntil(3 * time.Millisecond)
		if len(fired) != 3 || e.Now() != 3*time.Millisecond {
			t.Fatalf("after second run: fired %d, now %v", len(fired), e.Now())
		}
		e.Run()
		if len(fired) != 4 || e.Now() != time.Hour {
			t.Fatalf("after drain: fired %d, now %v", len(fired), e.Now())
		}
	})
}

// TestCalendarResizeCycle drives the population up past several grow
// thresholds and back down to force shrinks, checking order the whole
// way — the rebuild path (collect, width choice, reinsert) is the most
// delicate part of the calendar queue.
func TestCalendarResizeCycle(t *testing.T) {
	e := NewEngineWithQueue(QueueCalendar)
	cq := e.q.(*calQueue)
	rng := rand.New(rand.NewSource(7))

	for i := 0; i < 5000; i++ {
		e.ScheduleCall(time.Duration(rng.Int63n(int64(time.Millisecond))), func(any) {}, nil)
	}
	if len(cq.buckets) <= calMinBuckets {
		t.Fatalf("grow never triggered: %d buckets for 5000 events", len(cq.buckets))
	}
	var last time.Duration
	for e.Pending() > 0 {
		if !e.Step() {
			break
		}
		if e.Now() < last {
			t.Fatalf("time went backwards: %v after %v", e.Now(), last)
		}
		last = e.Now()
	}
	if len(cq.buckets) != calMinBuckets {
		t.Fatalf("shrink did not return to the floor: %d buckets", len(cq.buckets))
	}
}

// TestFreeListAdaptiveBound checks the engine's record pool tracks the
// pending high-water mark instead of the old fixed 1024 cap: after a
// drain, a refill to the same population should reuse records rather
// than allocate fresh ones.
func TestFreeListAdaptiveBound(t *testing.T) {
	e := NewEngine()
	const n = 5000
	for i := 0; i < n; i++ {
		e.ScheduleCall(time.Duration(i)*time.Microsecond, func(any) {}, nil)
	}
	e.Run()
	if len(e.free) <= 1024 {
		t.Fatalf("free list capped at %d records; want the %d high-water mark", len(e.free), n)
	}
	if len(e.free) > n {
		t.Fatalf("free list grew past the high-water mark: %d > %d", len(e.free), n)
	}
}

// TestWhenDistinguishesTimeZero is the Timer.At ambiguity fix: a
// genuine time-0 schedule reports (0, true), a recycled handle
// (0, false).
func TestWhenDistinguishesTimeZero(t *testing.T) {
	e := NewEngine()
	tm := e.ScheduleCall(0, func(any) {}, nil)
	if at, ok := tm.When(); !ok || at != 0 {
		t.Fatalf("When() = %v, %v; want 0, true", at, ok)
	}
	e.Run()
	if at, ok := tm.When(); ok || at != 0 {
		t.Fatalf("after firing: When() = %v, %v; want 0, false", at, ok)
	}
}
