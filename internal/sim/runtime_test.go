package sim

import (
	"testing"
	"time"
)

// runInstrumentedRing is runShardedRing with the runtime-introspection
// surface attached: runtime stats enabled, a monitor published, and the
// deadline split into two RunUntil calls so accumulation across calls
// is exercised.
func runInstrumentedRing(n, tokens, hops int, linkDelay, localStep time.Duration,
	mid, deadline time.Duration, mode ParMode, steal bool) ([][]relayRec, *Coordinator, *Monitor) {
	coord := NewCoordinator()
	coord.SetMode(mode)
	coord.SetWorkStealing(steal)
	coord.EnableRuntimeStats()
	mon := NewMonitor()
	coord.SetMonitor(mon)
	shards := make([]*Shard, n)
	for i := range shards {
		shards[i] = coord.NewShard()
	}
	bounds := make([]*Boundary, n)
	for i := range bounds {
		bounds[i] = coord.Boundary(shards[i], shards[(i+1)%n], linkDelay)
	}
	logs := make([][]relayRec, n)
	var deliver func(node, hop int)
	deliver = func(node, hop int) {
		eng := shards[node].Engine()
		logs[node] = append(logs[node], relayRec{At: eng.Now(), Hop: hop})
		if hop >= hops {
			return
		}
		next := (node + 1) % n
		eng.Schedule(localStep, func() {
			eng.Schedule(localStep, func() {
				bounds[node].Send(func(any) { deliver(next, hop+1) }, nil)
			})
		})
	}
	for t := 0; t < tokens; t++ {
		start := (t * (n / tokens)) % n
		t := t
		shards[start].Engine().ScheduleAt(0, func() { deliver(start, t) })
	}
	coord.RunUntil(mid)
	coord.RunUntil(deadline)
	return logs, coord, mon
}

// shardTotals sums the per-shard event counters of a stats snapshot.
func shardTotals(st CoordinatorStats) (events, grants uint64) {
	for _, s := range st.PerShard {
		events += s.Events
		grants += s.Grants
	}
	return
}

// Runtime stats must (a) not perturb results — the instrumented sharded
// ring still matches the uninstrumented serial run — and (b) report
// internally consistent, monotonically accumulated counters under every
// protocol configuration.
func TestRuntimeStatsConsistent(t *testing.T) {
	const (
		n         = 4
		tokens    = 4
		hops      = 120
		linkDelay = 7 * time.Microsecond
		localStep = 3 * time.Microsecond
		mid       = 4 * time.Millisecond
		deadline  = 8 * time.Millisecond
	)
	serial := runSerialRing(n, tokens, hops, linkDelay, localStep, deadline)
	for _, cfg := range parConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			logs, coord, mon := runInstrumentedRing(n, tokens, hops, linkDelay, localStep,
				mid, deadline, cfg.mode, cfg.steal)
			for i := range serial {
				if len(serial[i]) != len(logs[i]) {
					t.Fatalf("node %d: instrumented run diverged (serial %d deliveries, got %d)",
						i, len(serial[i]), len(logs[i]))
				}
			}

			st, ok := coord.RuntimeStats()
			if !ok {
				t.Fatal("RuntimeStats not available after EnableRuntimeStats")
			}
			if st.Mode != cfg.mode.String() || st.Stealing != cfg.steal {
				t.Fatalf("stats identify run as mode=%s steal=%v, want %s/%v",
					st.Mode, st.Stealing, cfg.mode, cfg.steal)
			}
			if len(st.PerShard) != n || len(st.PerWorker) != n {
				t.Fatalf("got %d shard / %d worker stats, want %d/%d",
					len(st.PerShard), len(st.PerWorker), n, n)
			}
			events, grants := shardTotals(st)
			if events != coord.Processed() {
				t.Fatalf("per-shard events sum to %d, coordinator processed %d", events, coord.Processed())
			}
			if grants == 0 || st.GrantCalls == 0 {
				t.Fatalf("no windows recorded (grants=%d grantCalls=%d)", grants, st.GrantCalls)
			}
			if st.Wall <= 0 {
				t.Fatalf("wall time not recorded: %v", st.Wall)
			}
			if st.CoordBlocked < 0 || st.CoordBlocked > st.Wall {
				t.Fatalf("coordinator blocked %v outside [0, wall=%v]", st.CoordBlocked, st.Wall)
			}
			var windows uint64
			for i, w := range st.PerWorker {
				if w.Busy < 0 || w.Blocked < 0 || w.Idle < 0 {
					t.Fatalf("worker %d has negative time component: %+v", i, w)
				}
				windows += w.Windows
			}
			if windows != grants {
				t.Fatalf("worker windows sum to %d, shard grants to %d", windows, grants)
			}
			if cfg.mode == ParChannel && !cfg.steal {
				for i, s := range st.PerShard {
					if s.Steals != 0 {
						t.Fatalf("shard %d records %d steals without work-stealing", i, s.Steals)
					}
				}
			}

			p := mon.Snapshot()
			if p.Events != coord.Processed() {
				t.Fatalf("monitor published %d events, coordinator processed %d", p.Events, coord.Processed())
			}
			if p.Frontier != deadline || p.Lag != 0 {
				t.Fatalf("monitor frontier=%v lag=%v at run end, want %v/0", p.Frontier, p.Lag, deadline)
			}
			if p.Deadline != deadline {
				t.Fatalf("monitor deadline %v, want %v", p.Deadline, deadline)
			}
		})
	}
}

// Successive RunUntil calls accumulate: no counter or duration may
// decrease between snapshots.
func TestRuntimeStatsMonotonic(t *testing.T) {
	for _, cfg := range parConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			coord := NewCoordinator()
			coord.SetMode(cfg.mode)
			coord.SetWorkStealing(cfg.steal)
			coord.EnableRuntimeStats()
			a := coord.NewShard()
			b := coord.NewShard()
			bounds := [2]*Boundary{
				coord.Boundary(a, b, 5*time.Microsecond),
				coord.Boundary(b, a, 5*time.Microsecond),
			}
			shards := [2]*Shard{a, b}
			var bounce func(node, hop int)
			bounce = func(node, hop int) {
				if hop >= 400 {
					return
				}
				shards[node].Engine().Schedule(time.Microsecond, func() {
					bounds[node].Send(func(any) { bounce(1-node, hop+1) }, nil)
				})
			}
			a.Engine().ScheduleAt(0, func() { bounce(0, 0) })

			var prev CoordinatorStats
			for i, deadline := range []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 6 * time.Millisecond} {
				coord.RunUntil(deadline)
				st, ok := coord.RuntimeStats()
				if !ok {
					t.Fatal("RuntimeStats not available")
				}
				if i > 0 {
					if st.Wall < prev.Wall || st.RelaxRounds < prev.RelaxRounds || st.GrantCalls < prev.GrantCalls {
						t.Fatalf("coordinator counters regressed: %+v -> %+v", prev, st)
					}
					for j := range st.PerShard {
						p, c := prev.PerShard[j], st.PerShard[j]
						if c.Events < p.Events || c.Grants < p.Grants || c.Busy < p.Busy ||
							c.NullAdvances < p.NullAdvances || c.OutboxSent < p.OutboxSent {
							t.Fatalf("shard %d counters regressed: %+v -> %+v", j, p, c)
						}
					}
					for j := range st.PerWorker {
						p, c := prev.PerWorker[j], st.PerWorker[j]
						if c.Windows < p.Windows || c.Busy < p.Busy || c.Blocked < p.Blocked || c.Idle < p.Idle {
							t.Fatalf("worker %d time accounting regressed: %+v -> %+v", j, p, c)
						}
					}
				}
				prev = st
			}
		})
	}
}

// Without EnableRuntimeStats the coordinator reports no stats, and a
// degenerate (single-shard) instrumented coordinator still accounts its
// events.
func TestRuntimeStatsAvailability(t *testing.T) {
	plain := NewCoordinator()
	s := plain.NewShard()
	s.Engine().Schedule(time.Microsecond, func() {})
	plain.RunUntil(time.Millisecond)
	if _, ok := plain.RuntimeStats(); ok {
		t.Fatal("RuntimeStats available without EnableRuntimeStats")
	}

	inst := NewCoordinator()
	inst.EnableRuntimeStats()
	d := inst.NewShard()
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 100 {
			d.Engine().Schedule(time.Microsecond, tick)
		}
	}
	d.Engine().ScheduleAt(0, tick)
	inst.RunUntil(time.Millisecond)
	st, ok := inst.RuntimeStats()
	if !ok {
		t.Fatal("RuntimeStats not available on degenerate coordinator")
	}
	events, _ := shardTotals(st)
	if events != inst.Processed() || events == 0 {
		t.Fatalf("degenerate run accounted %d events, processed %d", events, inst.Processed())
	}
}

// EnableRuntimeStats and SetMonitor are construction-time switches: a
// coordinator that has run must reject them.
func TestRuntimeConfigFrozenAfterRun(t *testing.T) {
	coord := NewCoordinator()
	s := coord.NewShard()
	s.Engine().Schedule(time.Microsecond, func() {})
	coord.RunUntil(time.Millisecond)
	for name, fn := range map[string]func(){
		"EnableRuntimeStats": func() { coord.EnableRuntimeStats() },
		"SetMonitor":         func() { coord.SetMonitor(NewMonitor()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after RunUntil did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// A serial engine publishes to an attached monitor, and the published
// snapshot matches the engine's own accounting.
func TestMonitorSerialEngine(t *testing.T) {
	eng := NewEngine()
	mon := NewMonitor()
	eng.SetMonitor(mon)
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 2*monPublishEvery+10 {
			eng.Schedule(time.Nanosecond, tick)
		}
	}
	eng.ScheduleAt(0, tick)
	eng.RunUntil(time.Millisecond)
	p := mon.Snapshot()
	if p.Events != eng.Processed() {
		t.Fatalf("monitor shows %d events, engine processed %d", p.Events, eng.Processed())
	}
	if p.Frontier != time.Millisecond {
		t.Fatalf("monitor frontier %v, want the deadline", p.Frontier)
	}
	if len(p.Shards) != 1 {
		t.Fatalf("serial run published %d shard slots, want 1", len(p.Shards))
	}
	// Detach: the engine must stop publishing.
	eng.SetMonitor(nil)
	before := mon.Snapshot().Events
	n = 0
	eng.RunUntil(2 * time.Millisecond)
	if got := mon.Snapshot().Events; got != before {
		t.Fatalf("detached monitor still advanced: %d -> %d", before, got)
	}
}

// Engine.Stats reports the live self-profile of the scheduler.
func TestEngineStats(t *testing.T) {
	eng := NewEngine()
	for i := 0; i < 500; i++ {
		eng.Schedule(time.Duration(i)*time.Microsecond, func() {})
	}
	eng.RunUntil(time.Millisecond)
	st := eng.Stats()
	if st.Processed != eng.Processed() || st.Now != time.Millisecond {
		t.Fatalf("stats disagree with engine: %+v", st)
	}
	if st.Queue.Kind != "calendar" && st.Queue.Kind != "heap" {
		t.Fatalf("unknown queue kind %q", st.Queue.Kind)
	}
	if st.HiWater <= 0 {
		t.Fatalf("pending high-water not tracked: %+v", st)
	}
}

// The disabled introspection path must stay allocation-free on the
// engine hot loop: no monitor, no runtime stats — Step costs nothing
// extra.
func TestStepZeroAllocWithoutIntrospection(t *testing.T) {
	e := NewEngine()
	nop := func(any) {}
	for i := 0; i < 256; i++ {
		e.ScheduleCall(time.Duration(i)*time.Nanosecond, nop, nil)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleCall(time.Nanosecond, nop, e)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("Step allocates %.2f/op with introspection disabled, want 0", avg)
	}
}

// The monitored engine path also stays allocation-free: publishing is a
// countdown and two atomic stores.
func TestStepZeroAllocWithMonitor(t *testing.T) {
	e := NewEngine()
	e.SetMonitor(NewMonitor())
	nop := func(any) {}
	for i := 0; i < 256; i++ {
		e.ScheduleCall(time.Duration(i)*time.Nanosecond, nop, nil)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleCall(time.Nanosecond, nop, e)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("Step allocates %.2f/op with a monitor attached, want 0", avg)
	}
}
