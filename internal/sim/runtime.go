package sim

import (
	"sync/atomic"
	"time"
)

// This file is the engine's self-observability layer: the coordinator
// and engines observing their own execution, separate from the
// packet-level trace bus in internal/obs. Two surfaces exist:
//
//   - Run-end snapshots (EnableRuntimeStats / RuntimeStats,
//     Engine.Stats): counters and wall-time accounting answering "what
//     did the parallel protocol actually do" — window grants,
//     null-advance relaxations, steals, per-worker busy/blocked/idle
//     time, calendar-queue churn.
//   - A live progress surface (Monitor): per-shard event counts and
//     clocks published through atomics, so a sampler goroutine can
//     stream progress without ever touching an engine.
//
// Both follow the obs nil-probe contract: disabled (the default) they
// cost one nil check per hook, no time.Now() calls and no allocations.
// The determinism argument for the enabled path: instrumentation only
// ever *reads* simulation state and writes to side counters — window
// bounds, event order, and every simulated byte are computed exactly as
// before. The worker-written counters are atomics read by RuntimeStats
// and the sampler; the coordinator-written ones are plain fields,
// written only between the owning shard's windows (the same discipline
// as the channel-clock state itself).

// ShardStats is the run-end self-observation record of one shard.
type ShardStats struct {
	// Grants counts windows granted to this shard.
	Grants uint64 `json:"grants"`
	// GrantWidth is the summed width of those windows (grant end minus
	// the shard's earliest pending event at grant time).
	GrantWidth time.Duration `json:"grantWidth"`
	// NullAdvances counts relaxations of this shard's send lower bound
	// through an incoming channel — the centralized form of CMB null
	// messages it received.
	NullAdvances uint64 `json:"nullAdvances"`
	// Steals counts windows of this shard executed by a foreign worker
	// (work-stealing only).
	Steals uint64 `json:"steals"`
	// OutboxSent counts cross-shard deliveries drained from this
	// shard's outbox slabs.
	OutboxSent uint64 `json:"outboxSent"`
	// Parked counts arrivals parked (slab-wise) at this shard because
	// a window was in flight when they were delivered.
	Parked uint64 `json:"parked"`
	// Events counts events executed inside this shard's windows.
	Events uint64 `json:"events"`
	// Busy is the wall time workers spent executing this shard's
	// windows.
	Busy time.Duration `json:"busy"`
}

// WorkerStats is the wall-time account of one worker goroutine. The
// three durations partition the worker's life inside RunUntil: Busy
// (executing a window), Blocked (holding a finished window, waiting for
// the coordinator to take the completion), Idle (waiting for a grant).
type WorkerStats struct {
	Windows uint64        `json:"windows"`
	Busy    time.Duration `json:"busy"`
	Blocked time.Duration `json:"blocked"`
	Idle    time.Duration `json:"idle"`
}

// CoordinatorStats is the run-end runtime snapshot of a sharded run.
type CoordinatorStats struct {
	// Mode and Stealing echo the protocol configuration.
	Mode     string `json:"mode"`
	Stealing bool   `json:"stealing"`
	// RelaxRounds counts Bellman-Ford sweeps over the channel graph;
	// GrantCalls counts grant-dispatch passes. Their ratio is the
	// null-advance overhead of the protocol.
	RelaxRounds uint64 `json:"relaxRounds"`
	GrantCalls  uint64 `json:"grantCalls"`
	// Wall is wall time spent inside RunUntil; CoordBlocked is the
	// fraction the coordinator spent waiting for a window completion.
	Wall         time.Duration `json:"wall"`
	CoordBlocked time.Duration `json:"coordBlocked"`
	PerShard     []ShardStats  `json:"perShard"`
	PerWorker    []WorkerStats `json:"perWorker"`
}

// shardCounters is the internal per-shard collector. The first group is
// coordinator-owned (written only between the shard's windows, on the
// coordinator goroutine); the second is worker-owned and atomic so the
// run-end snapshot — and a live sampler — can read it race-free while a
// trailing window completes.
type shardCounters struct {
	grants       uint64
	grantWidth   time.Duration
	nullAdvances uint64
	outboxSent   uint64
	parked       uint64

	events atomic.Uint64
	steals atomic.Uint64
	busy   atomic.Int64 // ns
}

// workerCounters is the internal per-worker collector (all
// worker-owned, atomic for the same reason as shardCounters).
type workerCounters struct {
	windows atomic.Uint64
	busy    atomic.Int64 // ns
	blocked atomic.Int64 // ns
	idle    atomic.Int64 // ns
}

// runStats is the coordinator's runtime-stats collector, allocated by
// EnableRuntimeStats. A nil *runStats is the disabled layer.
type runStats struct {
	relaxRounds  uint64
	grantCalls   uint64
	wall         time.Duration
	coordBlocked time.Duration
	shards       []shardCounters
	workers      []workerCounters
}

// size allocates the per-shard and per-worker arrays once the shard
// count is known (at RunUntil); repeated runs keep accumulating.
func (rt *runStats) size(n int) {
	if len(rt.shards) != n {
		rt.shards = make([]shardCounters, n)
		rt.workers = make([]workerCounters, n)
	}
}

// EnableRuntimeStats turns on the coordinator's self-observation layer.
// Must be called before the first RunUntil (instrumentation is frozen
// with the rest of the configuration). The cost when enabled is two
// time.Now() calls per window plus counter arithmetic — irrelevant next
// to a window's event execution; when not enabled every hook is a nil
// check.
func (c *Coordinator) EnableRuntimeStats() {
	if c.started {
		panic("sim: EnableRuntimeStats after RunUntil — instrumentation is frozen once the first window has run")
	}
	c.rt = &runStats{}
}

// RuntimeStats snapshots the accumulated runtime statistics. ok is
// false when EnableRuntimeStats was never called. Safe to call between
// RunUntil invocations or after the last one; counters accumulate
// across calls, so successive snapshots are monotone.
func (c *Coordinator) RuntimeStats() (CoordinatorStats, bool) {
	rt := c.rt
	if rt == nil {
		return CoordinatorStats{}, false
	}
	st := CoordinatorStats{
		Mode:         c.mode.String(),
		Stealing:     c.stealing,
		RelaxRounds:  rt.relaxRounds,
		GrantCalls:   rt.grantCalls,
		Wall:         rt.wall,
		CoordBlocked: rt.coordBlocked,
	}
	for i := range rt.shards {
		sc := &rt.shards[i]
		st.PerShard = append(st.PerShard, ShardStats{
			Grants:       sc.grants,
			GrantWidth:   sc.grantWidth,
			NullAdvances: sc.nullAdvances,
			OutboxSent:   sc.outboxSent,
			Parked:       sc.parked,
			Events:       sc.events.Load(),
			Steals:       sc.steals.Load(),
			Busy:         time.Duration(sc.busy.Load()),
		})
	}
	for i := range rt.workers {
		wc := &rt.workers[i]
		st.PerWorker = append(st.PerWorker, WorkerStats{
			Windows: wc.windows.Load(),
			Busy:    time.Duration(wc.busy.Load()),
			Blocked: time.Duration(wc.blocked.Load()),
			Idle:    time.Duration(wc.idle.Load()),
		})
	}
	return st, true
}

// runGrant executes one granted window on worker w, attributing wall
// time, events and steals when instrumentation is enabled and
// publishing the shard's progress when a monitor is attached. It is the
// shared body of the dedicated and stealing worker loops.
func (c *Coordinator) runGrant(w int, s *Shard, mark *time.Time) {
	rt := c.rt
	if rt == nil {
		s.nextAt, s.hasNext = s.eng.runBefore(s.grantEnd)
	} else {
		start := time.Now()
		wc := &rt.workers[w]
		wc.idle.Add(int64(start.Sub(*mark)))
		e0 := s.eng.processed
		s.nextAt, s.hasNext = s.eng.runBefore(s.grantEnd)
		end := time.Now()
		d := int64(end.Sub(start))
		wc.windows.Add(1)
		wc.busy.Add(d)
		sc := &rt.shards[s.id]
		sc.events.Add(s.eng.processed - e0)
		sc.busy.Add(d)
		if w != s.id {
			sc.steals.Add(1)
		}
		*mark = end
	}
	if s.mon != nil {
		s.mon.publish(s.eng.processed, s.eng.now)
	}
}

// workerBlocked charges the time since mark to worker w's blocked
// account (the doneCh handoff just completed) and advances mark.
func (rt *runStats) workerBlocked(w int, mark *time.Time) {
	now := time.Now()
	rt.workers[w].blocked.Add(int64(now.Sub(*mark)))
	*mark = now
}

// Monitor is the live progress surface: per-shard event counts and
// clocks published through atomics at window boundaries (or every few
// thousand events for a serial engine). A sampler goroutine reads
// snapshots concurrently with the run; it never touches an engine or a
// bus, so sampling cannot perturb the simulation. Attach with
// Coordinator.SetMonitor or Engine.SetMonitor.
type Monitor struct {
	deadline atomic.Int64
	shards   atomic.Pointer[[]*MonitorShard]
}

// MonitorShard is one shard's published progress.
type MonitorShard struct {
	events atomic.Uint64
	now    atomic.Int64
}

func (m *MonitorShard) publish(events uint64, now time.Duration) {
	m.events.Store(events)
	m.now.Store(int64(now))
}

// NewMonitor returns an empty monitor. The per-shard slots are created
// when a coordinator or engine attaches at its next RunUntil.
func NewMonitor() *Monitor { return &Monitor{} }

// attach replaces the published shard slots with n fresh ones and
// returns them. The slice is swapped atomically so a concurrent sampler
// sees either the old run's slots or the new ones, never a mix.
func (m *Monitor) attach(n int) []*MonitorShard {
	s := make([]*MonitorShard, n)
	for i := range s {
		s[i] = &MonitorShard{}
	}
	m.shards.Store(&s)
	return s
}

// ShardProgress is one shard's progress snapshot.
type ShardProgress struct {
	Events uint64
	Now    time.Duration
}

// Progress is a point-in-time view of a monitored run.
type Progress struct {
	// Deadline is the RunUntil deadline of the current run (the ETA
	// target).
	Deadline time.Duration
	// Events is the total published event count across shards.
	Events uint64
	// Frontier is the minimum published shard clock; Lag is the spread
	// between the fastest and slowest shard clocks.
	Frontier time.Duration
	Lag      time.Duration
	Shards   []ShardProgress
}

// Snapshot reads the published progress. Safe to call concurrently
// with the run from any goroutine.
func (m *Monitor) Snapshot() Progress {
	p := Progress{Deadline: time.Duration(m.deadline.Load())}
	sp := m.shards.Load()
	if sp == nil {
		return p
	}
	var minNow, maxNow time.Duration
	for i, s := range *sp {
		e := s.events.Load()
		now := time.Duration(s.now.Load())
		p.Events += e
		p.Shards = append(p.Shards, ShardProgress{Events: e, Now: now})
		if i == 0 || now < minNow {
			minNow = now
		}
		if i == 0 || now > maxNow {
			maxNow = now
		}
	}
	p.Frontier = minNow
	p.Lag = maxNow - minNow
	return p
}

// SetMonitor attaches a progress monitor to the coordinator. Must be
// called before the first RunUntil. Workers publish at window
// boundaries, so the per-event hot path is untouched.
func (c *Coordinator) SetMonitor(m *Monitor) {
	if c.started {
		panic("sim: SetMonitor after RunUntil — instrumentation is frozen once the first window has run")
	}
	c.mon = m
}

// SetMonitor attaches a progress monitor to a serial engine: progress
// is published every monPublishEvery events from Step plus once at
// every RunUntil boundary. SetMonitor(nil) detaches.
func (e *Engine) SetMonitor(m *Monitor) {
	if m == nil {
		e.mon, e.monOwner = nil, nil
		return
	}
	e.monOwner = m
	e.mon = m.attach(1)[0]
}

// monPublishEvery is the serial engine's publication period: rare
// enough that the two atomic stores vanish against thousands of events,
// frequent enough for a sub-second sampler to see motion.
const monPublishEvery = 4096

// QueueStats is the scheduler's self-profile: the calendar queue's
// geometry and churn counters (zero Kind "heap" rows for the reference
// heap, which has no adaptive state to report).
type QueueStats struct {
	// Kind is "calendar" or "heap".
	Kind string `json:"kind"`
	// Buckets and Width are the calendar's current geometry.
	Buckets int           `json:"buckets,omitempty"`
	Width   time.Duration `json:"width,omitempty"`
	// Grows / Shrinks count resize rebuilds in each direction.
	Grows   uint64 `json:"grows,omitempty"`
	Shrinks uint64 `json:"shrinks,omitempty"`
	// Migrations counts events pulled from the overflow heap tier into
	// the bucket window.
	Migrations uint64 `json:"migrations,omitempty"`
}

// EngineStats is a point-in-time self-profile of one engine.
type EngineStats struct {
	Now       time.Duration `json:"now"`
	Processed uint64        `json:"processed"`
	Pending   int           `json:"pending"`
	// HiWater is the maximum pending-event population ever reached;
	// FreeList is the current recycled-record pool size.
	HiWater  int        `json:"hiwater"`
	FreeList int        `json:"freeList"`
	Queue    QueueStats `json:"queue"`
}

// Stats snapshots the engine's self-profile. The churn counters are
// maintained unconditionally: they increment on resize and
// overflow-migration paths, which are rare next to the pops they
// amortize against.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Now:       e.now,
		Processed: e.processed,
		Pending:   e.q.len(),
		HiWater:   e.hiwater,
		FreeList:  len(e.free),
	}
	switch q := e.q.(type) {
	case *calQueue:
		st.Queue = QueueStats{
			Kind:       "calendar",
			Buckets:    len(q.buckets),
			Width:      q.width,
			Grows:      q.grows,
			Shrinks:    q.shrinks,
			Migrations: q.migrations,
		}
	case *heapQueue:
		st.Queue = QueueStats{Kind: "heap"}
	}
	return st
}
