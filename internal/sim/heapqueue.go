package sim

// heapQueue is a 4-ary min-heap on (at, seq): the engine's original
// scheduler, kept both as the overflow tier of the calendar queue and as
// a reference implementation for the differential determinism tests.
// Compared to container/heap this removes the interface round trip
// (method dispatch and the any boxing in Push/Pop) and, with four
// children per node, roughly halves the tree depth — fewer swaps per
// operation on the deep heaps a large fabric builds up. Push and pop
// remain O(log n), which is why the calendar queue (calqueue.go) is the
// engine's default.
type heapQueue struct {
	events []*event
}

func (h *heapQueue) len() int { return len(h.events) }

func (h *heapQueue) peek() *event {
	if len(h.events) == 0 {
		return nil
	}
	return h.events[0]
}

func (h *heapQueue) push(ev *event) {
	s := append(h.events, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	h.events = s
}

func (h *heapQueue) pop() *event {
	s := h.events
	if len(s) == 0 {
		return nil
	}
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	h.events = s
	// Sift the relocated tail element down to its place.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(s[c], s[best]) {
				best = c
			}
		}
		if !eventLess(s[best], s[i]) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}
