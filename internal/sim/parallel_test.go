package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// parConfigs enumerates the coordinator configurations every
// serial-equivalence test must hold under.
var parConfigs = []struct {
	name  string
	mode  ParMode
	steal bool
}{
	{"global", ParGlobal, false},
	{"channel", ParChannel, false},
	{"channel-steal", ParChannel, true},
}

// relayRec is one observed delivery at a node: when it ran and which
// hop count it carried.
type relayRec struct {
	At  time.Duration
	Hop int
}

// runSerialRing simulates nodes 0..n-1 on one engine: node i receives a
// token, records it, does workSteps local events of localStep each, and
// forwards the token to node (i+1)%n after linkDelay. tokens tokens
// start at distinct nodes at t=0; the run stops at deadline. Returns
// the per-node delivery logs.
func runSerialRing(n, tokens, hops int, linkDelay, localStep time.Duration, deadline time.Duration) [][]relayRec {
	eng := NewEngine()
	logs := make([][]relayRec, n)
	var deliver func(node, hop int)
	deliver = func(node, hop int) {
		logs[node] = append(logs[node], relayRec{At: eng.Now(), Hop: hop})
		if hop >= hops {
			return
		}
		// Local busywork: a chain of events before the forward, so the
		// forward's send time depends on local scheduling.
		next := (node + 1) % n
		eng.Schedule(localStep, func() {
			eng.Schedule(localStep, func() {
				eng.ScheduleCall(linkDelay, func(any) { deliver(next, hop+1) }, nil)
			})
		})
	}
	for t := 0; t < tokens; t++ {
		start := t * (n / tokens)
		t := t
		eng.ScheduleAt(0, func() { deliver(start%n, t) })
	}
	eng.RunUntil(deadline)
	return logs
}

// runShardedRing is the same workload with one shard per node and every
// ring link a boundary, under the given protocol configuration.
func runShardedRing(n, tokens, hops int, linkDelay, localStep time.Duration, deadline time.Duration, mode ParMode, steal bool) ([][]relayRec, *Coordinator) {
	coord := NewCoordinator()
	coord.SetMode(mode)
	coord.SetWorkStealing(steal)
	shards := make([]*Shard, n)
	for i := range shards {
		shards[i] = coord.NewShard()
	}
	bounds := make([]*Boundary, n)
	for i := range bounds {
		bounds[i] = coord.Boundary(shards[i], shards[(i+1)%n], linkDelay)
	}
	logs := make([][]relayRec, n)
	var deliver func(node, hop int)
	deliver = func(node, hop int) {
		eng := shards[node].Engine()
		logs[node] = append(logs[node], relayRec{At: eng.Now(), Hop: hop})
		if hop >= hops {
			return
		}
		next := (node + 1) % n
		eng.Schedule(localStep, func() {
			eng.Schedule(localStep, func() {
				bounds[node].Send(func(any) { deliver(next, hop+1) }, nil)
			})
		})
	}
	for t := 0; t < tokens; t++ {
		start := (t * (n / tokens)) % n
		t := t
		shards[start].Engine().ScheduleAt(0, func() { deliver(start, t) })
	}
	coord.RunUntil(deadline)
	return logs, coord
}

// A multi-token relay ring must produce byte-identical per-node
// delivery logs whether it runs on one engine or on one shard per node,
// under every protocol configuration, and the total event count must be
// conserved.
func TestCoordinatorRingMatchesSerial(t *testing.T) {
	const (
		n         = 4
		tokens    = 4
		hops      = 200
		linkDelay = 7 * time.Microsecond
		localStep = 3 * time.Microsecond
		deadline  = 10 * time.Millisecond
	)
	serial := runSerialRing(n, tokens, hops, linkDelay, localStep, deadline)
	for _, cfg := range parConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			sharded, coord := runShardedRing(n, tokens, hops, linkDelay, localStep, deadline, cfg.mode, cfg.steal)
			for i := range serial {
				if !reflect.DeepEqual(serial[i], sharded[i]) {
					t.Fatalf("node %d: sharded log diverges from serial\nserial:  %v\nsharded: %v",
						i, trunc(serial[i]), trunc(sharded[i]))
				}
			}
			if coord.Processed() == 0 {
				t.Fatal("sharded run processed no events")
			}
		})
	}
}

func trunc(r []relayRec) []relayRec {
	if len(r) > 8 {
		return r[:8]
	}
	return r
}

// Two identical sharded runs must be identical to each other
// (goroutine scheduling must not leak into results), under every
// protocol configuration.
func TestCoordinatorDeterministic(t *testing.T) {
	const deadline = 5 * time.Millisecond
	for _, cfg := range parConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			a, ca := runShardedRing(5, 5, 120, 11*time.Microsecond, 2*time.Microsecond, deadline, cfg.mode, cfg.steal)
			b, cb := runShardedRing(5, 5, 120, 11*time.Microsecond, 2*time.Microsecond, deadline, cfg.mode, cfg.steal)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("two identical sharded runs diverged")
			}
			if ca.Processed() != cb.Processed() {
				t.Fatalf("processed counts diverged: %d vs %d", ca.Processed(), cb.Processed())
			}
		})
	}
}

// The two protocols (and the stealing worker discipline) must agree
// with each other, not just each with serial: -par is a pure A/B
// switch at any fixed shard count.
func TestCoordinatorModesAgree(t *testing.T) {
	const deadline = 5 * time.Millisecond
	global, cg := runShardedRing(5, 5, 150, 9*time.Microsecond, 2*time.Microsecond, deadline, ParGlobal, false)
	channel, cc := runShardedRing(5, 5, 150, 9*time.Microsecond, 2*time.Microsecond, deadline, ParChannel, false)
	steal, cs := runShardedRing(5, 5, 150, 9*time.Microsecond, 2*time.Microsecond, deadline, ParChannel, true)
	if !reflect.DeepEqual(global, channel) {
		t.Fatal("global and channel protocols diverged")
	}
	if !reflect.DeepEqual(channel, steal) {
		t.Fatal("dedicated and stealing workers diverged")
	}
	if cg.Processed() != cc.Processed() || cc.Processed() != cs.Processed() {
		t.Fatalf("processed counts diverged: global %d, channel %d, steal %d",
			cg.Processed(), cc.Processed(), cs.Processed())
	}
}

// A ping-pong between two shards exercises the minimal grant cycle:
// exactly one shard active per window.
func TestCoordinatorPingPongMatchesSerial(t *testing.T) {
	serial := runSerialRing(2, 1, 500, 5*time.Microsecond, time.Microsecond, 20*time.Millisecond)
	for _, cfg := range parConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			sharded, _ := runShardedRing(2, 1, 500, 5*time.Microsecond, time.Microsecond, 20*time.Millisecond, cfg.mode, cfg.steal)
			if !reflect.DeepEqual(serial, sharded) {
				t.Fatal("ping-pong sharded log diverges from serial")
			}
			// The token must actually have bounced to the end.
			last := sharded[0][len(sharded[0])-1]
			if last.Hop < 498 {
				t.Fatalf("token stalled at hop %d", last.Hop)
			}
		})
	}
}

// A skewed ring — all tokens start on one node, and only that node does
// local busywork — concentrates nearly all events on one shard. The
// stealing discipline must still match serial exactly (this is the
// load shape work-stealing exists for).
func TestCoordinatorSkewedLoadStealing(t *testing.T) {
	const (
		n         = 6
		hops      = 150
		linkDelay = 5 * time.Microsecond
		localStep = 2 * time.Microsecond
		deadline  = 10 * time.Millisecond
	)
	// One token on a six-shard ring: at any instant exactly one shard
	// has work, the other five idle — the maximal skew, every window a
	// steal.
	serial := runSerialRing(n, 1, hops, linkDelay, localStep, deadline)
	sharded, coord := runShardedRing(n, 1, hops, linkDelay, localStep, deadline, ParChannel, true)
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatal("skewed sharded log diverges from serial")
	}
	if coord.Processed() == 0 {
		t.Fatal("sharded run processed no events")
	}
}

// A coordinator with one shard must behave exactly like that shard's
// engine run serially.
func TestCoordinatorSingleShardDegenerate(t *testing.T) {
	coord := NewCoordinator()
	s := coord.NewShard()
	var fired []time.Duration
	for _, at := range []time.Duration{3, 1, 2, 2, 5} {
		at := at * time.Microsecond
		s.Engine().ScheduleAt(at, func() { fired = append(fired, s.Engine().Now()) })
	}
	coord.RunUntil(4 * time.Microsecond)
	want := []time.Duration{1 * time.Microsecond, 2 * time.Microsecond, 2 * time.Microsecond, 3 * time.Microsecond}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("single-shard run fired %v, want %v", fired, want)
	}
	if now := s.Engine().Now(); now != 4*time.Microsecond {
		t.Fatalf("clock at %v, want deadline 4us", now)
	}
}

// Shards with no boundaries are independent simulations; RunUntil must
// still drive all of them to the deadline.
func TestCoordinatorNoBoundaries(t *testing.T) {
	coord := NewCoordinator()
	var total int
	for i := 0; i < 3; i++ {
		s := coord.NewShard()
		for j := 0; j < 4; j++ {
			s.Engine().Schedule(time.Duration(j)*time.Microsecond, func() { total++ })
		}
	}
	coord.RunUntil(time.Millisecond)
	if total != 12 {
		t.Fatalf("processed %d events, want 12", total)
	}
	if coord.Processed() != 12 {
		t.Fatalf("Processed() = %d, want 12", coord.Processed())
	}
}

// Boundary registration must reject configurations that break the
// conservative protocol.
func TestBoundaryValidation(t *testing.T) {
	coord := NewCoordinator()
	a, b := coord.NewShard(), coord.NewShard()
	other := NewCoordinator().NewShard()
	for name, fn := range map[string]func(){
		"same shard":    func() { coord.Boundary(a, a, time.Microsecond) },
		"zero delay":    func() { coord.Boundary(a, b, 0) },
		"foreign shard": func() { coord.Boundary(a, other, time.Microsecond) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	if coord.Boundary(a, b, 3*time.Microsecond).Delay() != 3*time.Microsecond {
		t.Fatal("boundary delay mangled")
	}
	if coord.Lookahead() != 3*time.Microsecond {
		t.Fatalf("lookahead = %v, want 3us", coord.Lookahead())
	}
	coord.Boundary(b, a, 2*time.Microsecond)
	if coord.Lookahead() != 2*time.Microsecond {
		t.Fatalf("lookahead must fold to the minimum delay, got %v", coord.Lookahead())
	}
}

// The coordinator's configuration freezes at the first RunUntil:
// registering a boundary (or a shard, or flipping the protocol)
// afterwards must panic instead of silently invalidating the channel
// clocks already used to admit executed windows — even between runs.
func TestConfigFrozenAfterRun(t *testing.T) {
	coord := NewCoordinator()
	a, b := coord.NewShard(), coord.NewShard()
	coord.Boundary(a, b, time.Microsecond)
	coord.Boundary(b, a, time.Microsecond)
	a.Engine().Schedule(0, func() {})
	coord.RunUntil(time.Millisecond)

	for name, fn := range map[string]func(){
		"Boundary":        func() { coord.Boundary(b, a, 5*time.Microsecond) },
		"NewShard":        func() { coord.NewShard() },
		"SetMode":         func() { coord.SetMode(ParGlobal) },
		"SetWorkStealing": func() { coord.SetWorkStealing(true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after RunUntil: expected panic", name)
				}
			}()
			fn()
		}()
	}
	// A second run with the frozen configuration must still work.
	b.Engine().ScheduleAt(2*time.Millisecond, func() {})
	coord.RunUntil(3 * time.Millisecond)
}

// TestChannelClockRelaxation pins the null-advance arithmetic on a
// three-shard cycle A->B->C->A: an idle shard (B) must relay its
// neighbor's bound plus the channel delay, and each shard's grant must
// be its own incoming clock — not the global minimum cut delay.
func TestChannelClockRelaxation(t *testing.T) {
	coord := NewCoordinator()
	a, b, c := coord.NewShard(), coord.NewShard(), coord.NewShard()
	coord.Boundary(a, b, 5*time.Microsecond)
	coord.Boundary(b, c, 7*time.Microsecond)
	coord.Boundary(c, a, 50*time.Microsecond)
	coord.buildChannels()

	a.hasNext, a.nextAt = true, 10*time.Microsecond
	b.hasNext = false
	c.hasNext, c.nextAt = true, 100*time.Microsecond
	coord.relaxClocks()

	if a.lb != 10*time.Microsecond {
		t.Errorf("lb(A) = %v, want 10us", a.lb)
	}
	if b.lb != 15*time.Microsecond {
		t.Errorf("lb(B) = %v, want 15us (null advance through idle B)", b.lb)
	}
	if c.lb != 22*time.Microsecond {
		t.Errorf("lb(C) = %v, want 22us (folded against local 100us)", c.lb)
	}
	// Grants: each shard bounded by its own incoming channel, not the
	// 5us global lookahead.
	if g := coord.grantFor(b); g != 15*time.Microsecond {
		t.Errorf("grant(B) = %v, want 15us", g)
	}
	if g := coord.grantFor(c); g != 22*time.Microsecond {
		t.Errorf("grant(C) = %v, want 22us", g)
	}
	if g := coord.grantFor(a); g != 72*time.Microsecond {
		t.Errorf("grant(A) = %v, want 72us — 14x the global lookahead window", g)
	}
	if coord.Lookahead() != 5*time.Microsecond {
		t.Errorf("global lookahead = %v, want 5us", coord.Lookahead())
	}
}

// A frozen (running) shard must contribute its window start, not a
// relaxed value, and must not be relaxed itself.
func TestChannelClockFrozenWhileRunning(t *testing.T) {
	coord := NewCoordinator()
	a, b := coord.NewShard(), coord.NewShard()
	coord.Boundary(a, b, 5*time.Microsecond)
	coord.Boundary(b, a, 5*time.Microsecond)
	coord.buildChannels()

	a.running, a.lb = true, 20*time.Microsecond // window started at 20us
	b.hasNext, b.nextAt = true, 100*time.Microsecond
	coord.relaxClocks()
	if a.lb != 20*time.Microsecond {
		t.Errorf("running shard's lb relaxed to %v, want frozen 20us", a.lb)
	}
	if b.lb != 25*time.Microsecond {
		t.Errorf("lb(B) = %v, want 25us (frozen A bound + delay)", b.lb)
	}
	if g := coord.grantFor(b); g != 25*time.Microsecond {
		t.Errorf("grant(B) = %v, want 25us", g)
	}
}

func TestParseParMode(t *testing.T) {
	cases := []struct {
		in    string
		mode  ParMode
		steal bool
		err   bool
	}{
		{"channel", ParChannel, false, false},
		{"channel-steal", ParChannel, true, false},
		{"global", ParGlobal, false, false},
		{"", 0, false, true},
		{"speculative", 0, false, true},
	}
	for _, c := range cases {
		mode, steal, err := ParseParMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseParMode(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && (mode != c.mode || steal != c.steal) {
			t.Errorf("ParseParMode(%q) = (%v, %v), want (%v, %v)", c.in, mode, steal, c.mode, c.steal)
		}
	}
	if ParChannel.String() != "channel" || ParGlobal.String() != "global" {
		t.Error("ParMode.String does not round-trip the flag spelling")
	}
}

// The extended event key must not disturb serial ordering: for any mix
// of same-time schedules, a serial engine orders by insertion sequence
// exactly as before the (schedAt, lane) extension.
func TestSerialOrderUnchangedByExtendedKey(t *testing.T) {
	eng := NewEngine()
	var order []string
	for i := 0; i < 10; i++ {
		i := i
		eng.ScheduleAt(5*time.Microsecond, func() { order = append(order, fmt.Sprintf("a%d", i)) })
	}
	eng.Schedule(time.Microsecond, func() {
		for i := 0; i < 10; i++ {
			i := i
			eng.ScheduleAt(5*time.Microsecond, func() { order = append(order, fmt.Sprintf("b%d", i)) })
		}
	})
	eng.Run()
	want := []string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9",
		"b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("serial same-time order changed: %v", order)
	}
}
