// Package sim implements the deterministic discrete-event engine that
// drives the packet-level network simulator.
//
// The engine orders pending events by (time, sequence). The sequence
// number breaks ties in FIFO order so a simulation with the same inputs
// always executes events in the same order, which makes every
// experiment in this repository reproducible bit-for-bit. Two
// schedulers implement that contract behind the eventQueue interface: a
// lazy calendar queue (the default — O(1) amortized insert/pop, with an
// overflow heap tier for far-future timers) and the original 4-ary heap
// (O(log n), kept as the reference for differential determinism tests
// and selectable via NewEngineWithQueue).
//
// Two scheduling forms exist. Schedule/ScheduleAt take a plain func()
// closure — convenient, but every call site that captures state
// allocates a closure (and the returned *Timer escapes). The hot paths
// use ScheduleCall/ScheduleCallAt instead: the callback is a func(any)
// shared across calls (typically a package-level function or a field
// bound once at construction) and the per-call state travels in the
// arg word, so steady-state scheduling performs zero allocations.
package sim

import (
	"time"
)

// eventQueue is the engine's pluggable pending-event store. Pop and
// peek must return the exact (at, seq) minimum — the total order every
// implementation is required to reproduce byte-identically.
type eventQueue interface {
	push(ev *event)
	pop() *event  // remove and return the minimum; nil when empty
	peek() *event // the minimum without removing it; nil when empty
	len() int
}

// QueueKind selects the engine's scheduler implementation.
type QueueKind int

const (
	// QueueCalendar is the default: a lazy calendar queue with O(1)
	// amortized insert/pop and a heap overflow tier for far timers.
	QueueCalendar QueueKind = iota
	// QueueHeap is the 4-ary min-heap: O(log n) insert/pop. Kept as the
	// reference implementation for differential determinism tests.
	QueueHeap
)

// Engine is a single-threaded discrete-event scheduler. The zero value
// is not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	q       eventQueue
	seq     uint64
	stopped bool
	// processed counts executed events, useful for progress reporting
	// and benchmarks.
	processed uint64
	// free recycles event records: packet-level simulations schedule
	// millions of events, and reusing the records removes the dominant
	// allocation from the hot loop. Generation tags keep stale Timer
	// handles inert after reuse. The list is bounded by the high-water
	// mark of Pending() (floor 1024), so a large fabric's record
	// population survives drain/refill cycles without re-allocating.
	free    []*event
	hiwater int
}

// NewEngine returns an engine with virtual time zero and no events,
// scheduled by the calendar queue.
func NewEngine() *Engine {
	return NewEngineWithQueue(QueueCalendar)
}

// NewEngineWithQueue returns an engine using the given scheduler
// implementation. Both kinds execute identical workloads in identical
// order; QueueHeap exists for differential tests and A/B benchmarks.
func NewEngineWithQueue(kind QueueKind) *Engine {
	if kind == QueueHeap {
		return &Engine{q: &heapQueue{}}
	}
	return &Engine{q: newCalQueue()}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of scheduled, not-yet-executed events
// (cancelled events count until their time arrives).
func (e *Engine) Pending() int { return e.q.len() }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. A cancelled timer's callback never runs. Handles stay
// valid (but inert) after their event fires, even though the engine
// recycles event records internally. The zero Timer is valid and inert,
// so it can be stored by value and cancelled unconditionally.
type Timer struct {
	ev  *event
	gen uint64
}

// live reports whether the handle still refers to its original event.
func (t *Timer) live() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports
// whether the callback was still pending.
func (t *Timer) Cancel() bool {
	if !t.live() || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Active reports whether the timer's callback is still pending.
func (t *Timer) Active() bool {
	return t.live() && !t.ev.cancelled && !t.ev.fired
}

// When returns the virtual time the timer is scheduled to fire and
// whether the handle still refers to a pending event. It distinguishes
// a real time-0 schedule (0, true) from a fired, cancelled, or recycled
// handle (0, false) — the ambiguity At cannot resolve.
func (t *Timer) When() (time.Duration, bool) {
	if !t.Active() {
		return 0, false
	}
	return t.ev.at, true
}

// At returns the virtual time the timer is scheduled to fire (0 once
// the event record was recycled).
//
// Deprecated: a 0 return is ambiguous — it may be a genuine time-0
// schedule or a recycled handle. Use When, which reports liveness.
func (t *Timer) At() time.Duration {
	if !t.live() {
		return 0
	}
	return t.ev.at
}

// Schedule runs fn after delay. A negative delay is treated as zero
// (the event runs at the current time, after already-queued events for
// that time). It returns a Timer handle that can cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Timer {
	ev := e.insert(at)
	ev.fn = fn
	return &Timer{ev: ev, gen: ev.gen}
}

// ScheduleCall runs fn(arg) after delay. It is the allocation-free
// counterpart of Schedule: fn must not be a per-call closure (use a
// package-level function or one bound once at construction) and the
// per-call state travels in arg. The Timer is returned by value so
// nothing escapes to the heap; the zero Timer a caller might hold
// before the first ScheduleCall is inert.
func (e *Engine) ScheduleCall(delay time.Duration, fn func(any), arg any) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleCallAt(e.now+delay, fn, arg)
}

// ScheduleCallAt runs fn(arg) at absolute virtual time at. Times in the
// past are clamped to the current time.
func (e *Engine) ScheduleCallAt(at time.Duration, fn func(any), arg any) Timer {
	ev := e.insert(at)
	ev.callFn, ev.arg = fn, arg
	return Timer{ev: ev, gen: ev.gen}
}

// insert takes an event record from the free list (or allocates one),
// stamps it with the clamped time and next sequence number, and pushes
// it onto the queue. The caller fills in the callback.
func (e *Engine) insert(at time.Duration) *event {
	if at < e.now {
		at = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled, ev.fired = false, false
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = e.seq
	e.seq++
	e.q.push(ev)
	if n := e.q.len(); n > e.hiwater {
		e.hiwater = n
	}
	return ev
}

// recycle returns an executed or cancelled event record to the pool,
// bumping its generation so outstanding Timer handles go inert. The
// callback and arg are cleared so recycled records don't pin dead
// closures or packets. The pool is bounded by the engine's pending
// high-water mark so it adapts to the fabric's real event population.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.callFn = nil
	ev.arg = nil
	cap := e.hiwater
	if cap < 1024 {
		cap = 1024
	}
	if len(e.free) < cap {
		e.free = append(e.free, ev)
	}
}

// Step executes the single earliest pending event. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	for {
		ev := e.q.pop()
		if ev == nil {
			return false
		}
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.processed++
		fn, callFn, arg := ev.fn, ev.callFn, ev.arg
		e.recycle(ev)
		if callFn != nil {
			callFn(arg)
		} else {
			fn()
		}
		return true
	}
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline (or until Stop).
// On return the clock is at deadline whenever the run was not stopped —
// even when the event queue drained before reaching it — so a caller
// that measures "rate over the run" always divides by the full window.
// When Stop ends the run early, the clock stays at the stopping event's
// time: the deadline was never reached and pretending otherwise would
// stretch every rate and age computed afterwards.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.stopped {
		return
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
// Unfired events stay queued and the clock stays at the stopping
// event's time, so a later Run/RunUntil resumes exactly where the
// simulation left off.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the earliest live event, lazily reaping cancelled ones.
func (e *Engine) peek() *event {
	for {
		ev := e.q.peek()
		if ev == nil {
			return nil
		}
		if ev.cancelled {
			e.recycle(e.q.pop())
			continue
		}
		return ev
	}
}

// Ticker runs a callback at a fixed virtual-time interval until
// stopped; experiments use it for periodic sampling (queue occupancy,
// window traces).
type Ticker struct {
	eng      *sim
	timer    Timer
	stopped  bool
	interval time.Duration
	fn       func()
}

// internal alias so Ticker can hold its engine without exporting a
// second name for it.
type sim = Engine

// Every schedules fn to run every interval, starting one interval from
// now. Stop the returned Ticker to cancel. A non-positive interval is
// rejected by returning a stopped ticker.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{eng: e, interval: interval, fn: fn}
	if interval <= 0 {
		t.stopped = true
		return t
	}
	t.schedule()
	return t
}

// tickerFire is the shared tick trampoline: ticks carry their Ticker in
// the event arg, so a ticker schedules forever without allocating.
func tickerFire(arg any) {
	t := arg.(*Ticker)
	if t.stopped {
		return
	}
	t.fn()
	t.schedule()
}

func (t *Ticker) schedule() {
	t.timer = t.eng.ScheduleCall(t.interval, tickerFire, t)
}

// Stop cancels future ticks. Safe to call repeatedly.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Cancel()
}

// event is a pending-event record. Exactly one of fn / callFn is set.
// next chains events inside a calendar-queue bucket; it is nil whenever
// the event is not resident in a bucket.
type event struct {
	at        time.Duration
	seq       uint64
	gen       uint64
	next      *event
	fn        func()
	callFn    func(any)
	arg       any
	cancelled bool
	fired     bool
}

// eventLess orders events by (time, sequence): a strict total order, so
// the pop sequence — and therefore every simulation — is independent of
// the queue's internal layout.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
