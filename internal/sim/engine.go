// Package sim implements the deterministic discrete-event engine that
// drives the packet-level network simulator.
//
// The engine orders pending events by (time, sequence). The sequence
// number breaks ties in FIFO order so a simulation with the same inputs
// always executes events in the same order, which makes every
// experiment in this repository reproducible bit-for-bit. Two
// schedulers implement that contract behind the eventQueue interface: a
// lazy calendar queue (the default — O(1) amortized insert/pop, with an
// overflow heap tier for far-future timers) and the original 4-ary heap
// (O(log n), kept as the reference for differential determinism tests
// and selectable via NewEngineWithQueue).
//
// Two scheduling forms exist. Schedule/ScheduleAt take a plain func()
// closure — convenient, but every call site that captures state
// allocates a closure (and the returned *Timer escapes). The hot paths
// use ScheduleCall/ScheduleCallAt instead: the callback is a func(any)
// shared across calls (typically a package-level function or a field
// bound once at construction) and the per-call state travels in the
// arg word, so steady-state scheduling performs zero allocations.
package sim

import (
	"time"
)

// eventQueue is the engine's pluggable pending-event store. Pop and
// peek must return the exact (at, seq) minimum — the total order every
// implementation is required to reproduce byte-identically.
type eventQueue interface {
	push(ev *event)
	pop() *event  // remove and return the minimum; nil when empty
	peek() *event // the minimum without removing it; nil when empty
	len() int
}

// QueueKind selects the engine's scheduler implementation.
type QueueKind int

const (
	// QueueCalendar is the default: a lazy calendar queue with O(1)
	// amortized insert/pop and a heap overflow tier for far timers.
	QueueCalendar QueueKind = iota
	// QueueHeap is the 4-ary min-heap: O(log n) insert/pop. Kept as the
	// reference implementation for differential determinism tests.
	QueueHeap
)

// Engine is a single-threaded discrete-event scheduler. The zero value
// is not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	q       eventQueue
	seq     uint64
	stopped bool
	// processed counts executed events, useful for progress reporting
	// and benchmarks.
	processed uint64
	// free recycles event records: packet-level simulations schedule
	// millions of events, and reusing the records removes the dominant
	// allocation from the hot loop. Generation tags keep stale Timer
	// handles inert after reuse. The list is bounded by the high-water
	// mark of Pending() (floor 1024), so a large fabric's record
	// population survives drain/refill cycles without re-allocating.
	free    []*event
	hiwater int
	// mon is the live progress slot when a Monitor is attached (serial
	// engines via SetMonitor, degenerate coordinator runs directly); nil
	// — one pointer test in Step — when disabled. monOwner holds the
	// attached Monitor so RunUntil can publish its deadline; monCount
	// counts down to the next periodic publication.
	mon      *MonitorShard
	monOwner *Monitor
	monCount int
}

// NewEngine returns an engine with virtual time zero and no events,
// scheduled by the calendar queue.
func NewEngine() *Engine {
	return NewEngineWithQueue(QueueCalendar)
}

// NewEngineWithQueue returns an engine using the given scheduler
// implementation. Both kinds execute identical workloads in identical
// order; QueueHeap exists for differential tests and A/B benchmarks.
func NewEngineWithQueue(kind QueueKind) *Engine {
	if kind == QueueHeap {
		return &Engine{q: &heapQueue{}}
	}
	return &Engine{q: newCalQueue()}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of scheduled, not-yet-executed events
// (cancelled events count until their time arrives).
func (e *Engine) Pending() int { return e.q.len() }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. A cancelled timer's callback never runs. Handles stay
// valid (but inert) after their event fires, even though the engine
// recycles event records internally. The zero Timer is valid and inert,
// so it can be stored by value and cancelled unconditionally.
type Timer struct {
	ev  *event
	gen uint64
}

// live reports whether the handle still refers to its original event.
func (t *Timer) live() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports
// whether the callback was still pending.
func (t *Timer) Cancel() bool {
	if !t.live() || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Active reports whether the timer's callback is still pending.
func (t *Timer) Active() bool {
	return t.live() && !t.ev.cancelled && !t.ev.fired
}

// When returns the virtual time the timer is scheduled to fire and
// whether the handle still refers to a pending event. It distinguishes
// a real time-0 schedule (0, true) from a fired, cancelled, or recycled
// handle (0, false) — the ambiguity At cannot resolve.
func (t *Timer) When() (time.Duration, bool) {
	if !t.Active() {
		return 0, false
	}
	return t.ev.at, true
}

// At returns the virtual time the timer is scheduled to fire (0 once
// the event record was recycled).
//
// Deprecated: a 0 return is ambiguous — it may be a genuine time-0
// schedule or a recycled handle. Use When, which reports liveness.
func (t *Timer) At() time.Duration {
	if !t.live() {
		return 0
	}
	return t.ev.at
}

// Schedule runs fn after delay. A negative delay is treated as zero
// (the event runs at the current time, after already-queued events for
// that time). It returns a Timer handle that can cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Timer {
	ev := e.insert(at)
	ev.fn = fn
	return &Timer{ev: ev, gen: ev.gen}
}

// ScheduleCall runs fn(arg) after delay. It is the allocation-free
// counterpart of Schedule: fn must not be a per-call closure (use a
// package-level function or one bound once at construction) and the
// per-call state travels in arg. The Timer is returned by value so
// nothing escapes to the heap; the zero Timer a caller might hold
// before the first ScheduleCall is inert.
func (e *Engine) ScheduleCall(delay time.Duration, fn func(any), arg any) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleCallAt(e.now+delay, fn, arg)
}

// ScheduleCallAt runs fn(arg) at absolute virtual time at. Times in the
// past are clamped to the current time.
func (e *Engine) ScheduleCallAt(at time.Duration, fn func(any), arg any) Timer {
	ev := e.insert(at)
	ev.callFn, ev.arg = fn, arg
	return Timer{ev: ev, gen: ev.gen}
}

// insert takes an event record from the free list (or allocates one),
// stamps it with the clamped time and next sequence number, and pushes
// it onto the queue. The caller fills in the callback.
func (e *Engine) insert(at time.Duration) *event {
	if at < e.now {
		at = e.now
	}
	ev := e.newEvent()
	ev.at = at
	ev.schedAt = e.now
	ev.lane = 0
	ev.seq = e.seq
	e.seq++
	e.push(ev)
	return ev
}

// newEvent takes a blank record from the free list (or allocates one).
func (e *Engine) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled, ev.fired = false, false
		return ev
	}
	return &event{}
}

func (e *Engine) push(ev *event) {
	e.q.push(ev)
	if n := e.q.len(); n > e.hiwater {
		e.hiwater = n
	}
}

// injectRemote enqueues an event scheduled by another shard's engine.
// The caller supplies the full sort key: the arrival time, the sending
// engine's clock at send time (schedAt), a nonzero lane identifying the
// sending shard, and that shard's monotone cross-send sequence number.
// The local seq counter is not consumed, so injections leave the order
// of local events untouched. Only the shard coordinator may call this,
// and only at a window barrier (between runBefore windows), so the
// engine is never executing concurrently.
func (e *Engine) injectRemote(at, schedAt time.Duration, lane uint32, seq uint64,
	fn func(any), arg any) {
	if at < e.now {
		// The conservative window protocol guarantees arrivals land at or
		// beyond the receiving shard's clock; clamp defensively anyway so
		// a misuse degrades like a late local schedule instead of
		// corrupting the queue's monotonicity.
		at = e.now
	}
	ev := e.newEvent()
	ev.at = at
	ev.schedAt = schedAt
	ev.lane = lane
	ev.seq = seq
	ev.callFn, ev.arg = fn, arg
	e.push(ev)
}

// recycle returns an executed or cancelled event record to the pool,
// bumping its generation so outstanding Timer handles go inert. The
// callback and arg are cleared so recycled records don't pin dead
// closures or packets. The pool is bounded by the engine's pending
// high-water mark so it adapts to the fabric's real event population.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.callFn = nil
	ev.arg = nil
	cap := e.hiwater
	if cap < 1024 {
		cap = 1024
	}
	if len(e.free) < cap {
		e.free = append(e.free, ev)
	}
}

// Step executes the single earliest pending event. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	for {
		ev := e.q.pop()
		if ev == nil {
			return false
		}
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.processed++
		if e.mon != nil {
			if e.monCount--; e.monCount <= 0 {
				e.monCount = monPublishEvery
				e.mon.publish(e.processed, e.now)
			}
		}
		fn, callFn, arg := ev.fn, ev.callFn, ev.arg
		e.recycle(ev)
		if callFn != nil {
			callFn(arg)
		} else {
			fn()
		}
		return true
	}
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline (or until Stop).
// On return the clock is at deadline whenever the run was not stopped —
// even when the event queue drained before reaching it — so a caller
// that measures "rate over the run" always divides by the full window.
// When Stop ends the run early, the clock stays at the stopping event's
// time: the deadline was never reached and pretending otherwise would
// stretch every rate and age computed afterwards.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	if e.monOwner != nil {
		e.monOwner.deadline.Store(int64(deadline))
	}
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.stopped {
		return
	}
	if e.now < deadline {
		e.now = deadline
	}
	if e.mon != nil {
		e.mon.publish(e.processed, e.now)
	}
}

// runBefore executes every event with at < limit (strictly), leaving
// the clock at the last executed event. It returns the time of the
// earliest remaining event, with ok=false when the queue drained. The
// shard coordinator uses the exclusive bound to run one conservative
// window [T, T+lookahead): events exactly at the window end belong to
// the next window, after the barrier has injected any cross-shard
// arrivals that could tie with them.
func (e *Engine) runBefore(limit time.Duration) (next time.Duration, ok bool) {
	for {
		ev := e.peek()
		if ev == nil {
			return 0, false
		}
		if ev.at >= limit {
			return ev.at, true
		}
		e.Step()
	}
}

// advanceTo moves the clock forward to t if it lags behind (the sharded
// counterpart of RunUntil's advance-to-deadline-on-drain semantics).
func (e *Engine) advanceTo(t time.Duration) {
	if e.now < t {
		e.now = t
	}
}

// Stop makes Run/RunUntil return after the current event completes.
// Unfired events stay queued and the clock stays at the stopping
// event's time, so a later Run/RunUntil resumes exactly where the
// simulation left off.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the earliest live event, lazily reaping cancelled ones.
func (e *Engine) peek() *event {
	for {
		ev := e.q.peek()
		if ev == nil {
			return nil
		}
		if ev.cancelled {
			e.recycle(e.q.pop())
			continue
		}
		return ev
	}
}

// Ticker runs a callback at a fixed virtual-time interval until
// stopped; experiments use it for periodic sampling (queue occupancy,
// window traces).
type Ticker struct {
	eng      *sim
	timer    Timer
	stopped  bool
	interval time.Duration
	fn       func()
}

// internal alias so Ticker can hold its engine without exporting a
// second name for it.
type sim = Engine

// Every schedules fn to run every interval, starting one interval from
// now. Stop the returned Ticker to cancel. A non-positive interval is
// rejected by returning a stopped ticker.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{eng: e, interval: interval, fn: fn}
	if interval <= 0 {
		t.stopped = true
		return t
	}
	t.schedule()
	return t
}

// tickerFire is the shared tick trampoline: ticks carry their Ticker in
// the event arg, so a ticker schedules forever without allocating.
func tickerFire(arg any) {
	t := arg.(*Ticker)
	if t.stopped {
		return
	}
	t.fn()
	t.schedule()
}

func (t *Ticker) schedule() {
	t.timer = t.eng.ScheduleCall(t.interval, tickerFire, t)
}

// Stop cancels future ticks. Safe to call repeatedly.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Cancel()
}

// event is a pending-event record. Exactly one of fn / callFn is set.
// next chains events inside a calendar-queue bucket; it is nil whenever
// the event is not resident in a bucket.
// event records are pooled and compared in the queue hot paths, so the
// layout matters: every field the sort key reads (at, schedAt, lane,
// seq) plus the chain pointer sits in the first 64 bytes, and the only
// field dispatch alone needs (arg) takes the overflow slot — a
// comparison or chain walk touches exactly one cache line per record.
type event struct {
	at time.Duration
	// schedAt is the virtual time the event was scheduled at (the
	// engine's clock when insert ran, or the sending shard's clock for a
	// cross-shard injection). It participates in the sort key so a
	// sharded run can reproduce the serial engine's tie-break exactly:
	// locally, seq order already implies schedAt order (the clock never
	// runs backwards), so adding it changes nothing — but it lets an
	// injected remote event slot into the same position it would have
	// held in a single serial queue.
	schedAt time.Duration
	seq     uint64
	gen     uint64
	next    *event
	fn      func()
	callFn  func(any)
	// lane identifies the event's scheduling domain: 0 for local
	// schedules, 1+shardID for events injected from another shard. seq
	// values are only comparable within one lane; the lane field keeps
	// the order total across them.
	lane      uint32
	cancelled bool
	fired     bool
	arg       any
}

// eventLess orders events by (time, schedule time, lane, sequence): a
// strict total order, so the pop sequence — and therefore every
// simulation — is independent of the queue's internal layout.
//
// For a purely local (serial) run this is exactly the historical
// (time, sequence) order: every lane is 0, and for two events with
// equal at, seq_a < seq_b implies schedAt_a <= schedAt_b because seq is
// assigned in scheduling order and the clock is nondecreasing — so the
// (schedAt, lane, seq) suffix ranks by seq alone. The extra fields only
// discriminate when a shard coordinator injects events scheduled by
// another engine (see parallel.go).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.lane != b.lane {
		return a.lane < b.lane
	}
	return a.seq < b.seq
}
