// Package sim implements the deterministic discrete-event engine that
// drives the packet-level network simulator.
//
// The engine keeps a 4-ary heap of pending events ordered by
// (time, sequence). The sequence number breaks ties in FIFO order so a
// simulation with the same inputs always executes events in the same
// order, which makes every experiment in this repository reproducible
// bit-for-bit.
//
// Two scheduling forms exist. Schedule/ScheduleAt take a plain func()
// closure — convenient, but every call site that captures state
// allocates a closure (and the returned *Timer escapes). The hot paths
// use ScheduleCall/ScheduleCallAt instead: the callback is a func(any)
// shared across calls (typically a package-level function or a field
// bound once at construction) and the per-call state travels in the
// arg word, so steady-state scheduling performs zero allocations.
package sim

import (
	"time"
)

// Engine is a single-threaded discrete-event scheduler. The zero value
// is not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	events  []*event // 4-ary min-heap on (at, seq)
	seq     uint64
	stopped bool
	// processed counts executed events, useful for progress reporting
	// and benchmarks.
	processed uint64
	// free recycles event records: packet-level simulations schedule
	// millions of events, and reusing the records removes the dominant
	// allocation from the hot loop. Generation tags keep stale Timer
	// handles inert after reuse.
	free []*event
}

// NewEngine returns an engine with virtual time zero and no events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. A cancelled timer's callback never runs. Handles stay
// valid (but inert) after their event fires, even though the engine
// recycles event records internally. The zero Timer is valid and inert,
// so it can be stored by value and cancelled unconditionally.
type Timer struct {
	ev  *event
	gen uint64
}

// live reports whether the handle still refers to its original event.
func (t *Timer) live() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports
// whether the callback was still pending.
func (t *Timer) Cancel() bool {
	if !t.live() || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Active reports whether the timer's callback is still pending.
func (t *Timer) Active() bool {
	return t.live() && !t.ev.cancelled && !t.ev.fired
}

// At returns the virtual time the timer is scheduled to fire (0 once
// the event record was recycled).
func (t *Timer) At() time.Duration {
	if !t.live() {
		return 0
	}
	return t.ev.at
}

// Schedule runs fn after delay. A negative delay is treated as zero
// (the event runs at the current time, after already-queued events for
// that time). It returns a Timer handle that can cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Timer {
	ev := e.insert(at)
	ev.fn = fn
	return &Timer{ev: ev, gen: ev.gen}
}

// ScheduleCall runs fn(arg) after delay. It is the allocation-free
// counterpart of Schedule: fn must not be a per-call closure (use a
// package-level function or one bound once at construction) and the
// per-call state travels in arg. The Timer is returned by value so
// nothing escapes to the heap; the zero Timer a caller might hold
// before the first ScheduleCall is inert.
func (e *Engine) ScheduleCall(delay time.Duration, fn func(any), arg any) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleCallAt(e.now+delay, fn, arg)
}

// ScheduleCallAt runs fn(arg) at absolute virtual time at. Times in the
// past are clamped to the current time.
func (e *Engine) ScheduleCallAt(at time.Duration, fn func(any), arg any) Timer {
	ev := e.insert(at)
	ev.callFn, ev.arg = fn, arg
	return Timer{ev: ev, gen: ev.gen}
}

// insert takes an event record from the free list (or allocates one),
// stamps it with the clamped time and next sequence number, and pushes
// it onto the heap. The caller fills in the callback.
func (e *Engine) insert(at time.Duration) *event {
	if at < e.now {
		at = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.cancelled, ev.fired = false, false
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = e.seq
	e.seq++
	e.push(ev)
	return ev
}

// recycle returns an executed or cancelled event record to the pool,
// bumping its generation so outstanding Timer handles go inert. The
// callback and arg are cleared so recycled records don't pin dead
// closures or packets.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.callFn = nil
	ev.arg = nil
	if len(e.free) < 1024 {
		e.free = append(e.free, ev)
	}
}

// Step executes the single earliest pending event. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.pop()
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.processed++
		fn, callFn, arg := ev.fn, ev.callFn, ev.arg
		e.recycle(ev)
		if callFn != nil {
			callFn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline (or until Stop).
// On return the clock is at deadline whenever the run was not stopped —
// even when the event queue drained before reaching it — so a caller
// that measures "rate over the run" always divides by the full window.
// When Stop ends the run early, the clock stays at the stopping event's
// time: the deadline was never reached and pretending otherwise would
// stretch every rate and age computed afterwards.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.stopped {
		return
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
// Unfired events stay queued and the clock stays at the stopping
// event's time, so a later Run/RunUntil resumes exactly where the
// simulation left off.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		if e.events[0].cancelled {
			e.recycle(e.pop())
			continue
		}
		return e.events[0]
	}
	return nil
}

// Ticker runs a callback at a fixed virtual-time interval until
// stopped; experiments use it for periodic sampling (queue occupancy,
// window traces).
type Ticker struct {
	eng      *sim
	timer    Timer
	stopped  bool
	interval time.Duration
	fn       func()
}

// internal alias so Ticker can hold its engine without exporting a
// second name for it.
type sim = Engine

// Every schedules fn to run every interval, starting one interval from
// now. Stop the returned Ticker to cancel. A non-positive interval is
// rejected by returning a stopped ticker.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{eng: e, interval: interval, fn: fn}
	if interval <= 0 {
		t.stopped = true
		return t
	}
	t.schedule()
	return t
}

// tickerFire is the shared tick trampoline: ticks carry their Ticker in
// the event arg, so a ticker schedules forever without allocating.
func tickerFire(arg any) {
	t := arg.(*Ticker)
	if t.stopped {
		return
	}
	t.fn()
	t.schedule()
}

func (t *Ticker) schedule() {
	t.timer = t.eng.ScheduleCall(t.interval, tickerFire, t)
}

// Stop cancels future ticks. Safe to call repeatedly.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Cancel()
}

// event is a heap node. Exactly one of fn / callFn is set.
type event struct {
	at        time.Duration
	seq       uint64
	gen       uint64
	fn        func()
	callFn    func(any)
	arg       any
	cancelled bool
	fired     bool
}

// eventLess orders events by (time, sequence): a strict total order, so
// the pop sequence — and therefore every simulation — is independent of
// the heap's internal layout.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push and pop maintain a 4-ary min-heap directly on the event slice.
// Compared to container/heap this removes the interface round trip
// (method dispatch and the any boxing in Push/Pop) and, with four
// children per node, roughly halves the tree depth — fewer swaps per
// operation on the deep heaps a large fabric builds up.
func (e *Engine) push(ev *event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.events = h
}

func (e *Engine) pop() *event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.events = h
	// Sift the relocated tail element down to its place.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h[c], h[best]) {
				best = c
			}
		}
		if !eventLess(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}
