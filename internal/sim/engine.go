// Package sim implements the deterministic discrete-event engine that
// drives the packet-level network simulator.
//
// The engine keeps a binary heap of pending events ordered by
// (time, sequence). The sequence number breaks ties in FIFO order so a
// simulation with the same inputs always executes events in the same
// order, which makes every experiment in this repository reproducible
// bit-for-bit.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a single-threaded discrete-event scheduler. The zero value
// is not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	stopped bool
	// processed counts executed events, useful for progress reporting
	// and benchmarks.
	processed uint64
	// free recycles event records: packet-level simulations schedule
	// millions of events, and reusing the records removes the dominant
	// allocation from the hot loop. Generation tags keep stale Timer
	// handles inert after reuse.
	free []*event
}

// NewEngine returns an engine with virtual time zero and no events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return len(e.events) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. A cancelled timer's callback never runs. Handles stay
// valid (but inert) after their event fires, even though the engine
// recycles event records internally.
type Timer struct {
	ev  *event
	gen uint64
}

// live reports whether the handle still refers to its original event.
func (t *Timer) live() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op. It reports
// whether the callback was still pending.
func (t *Timer) Cancel() bool {
	if !t.live() || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Active reports whether the timer's callback is still pending.
func (t *Timer) Active() bool {
	return t.live() && !t.ev.cancelled && !t.ev.fired
}

// At returns the virtual time the timer is scheduled to fire (0 once
// the event record was recycled).
func (t *Timer) At() time.Duration {
	if !t.live() {
		return 0
	}
	return t.ev.at
}

// Schedule runs fn after delay. A negative delay is treated as zero
// (the event runs at the current time, after already-queued events for
// that time). It returns a Timer handle that can cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Timer {
	if at < e.now {
		at = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.fn = at, fn
		ev.cancelled, ev.fired = false, false
	} else {
		ev = &event{at: at, fn: fn}
	}
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev, gen: ev.gen}
}

// recycle returns an executed or cancelled event record to the pool,
// bumping its generation so outstanding Timer handles go inert.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	if len(e.free) < 1024 {
		e.free = append(e.free, ev)
	}
}

// Step executes the single earliest pending event. It reports whether
// an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.processed++
		fn := ev.fn
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline (or until Stop).
// On return the clock is at deadline whenever the run was not stopped —
// even when the event queue drained before reaching it — so a caller
// that measures "rate over the run" always divides by the full window.
// When Stop ends the run early, the clock stays at the stopping event's
// time: the deadline was never reached and pretending otherwise would
// stretch every rate and age computed afterwards.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.stopped {
		return
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
// Unfired events stay queued and the clock stays at the stopping
// event's time, so a later Run/RunUntil resumes exactly where the
// simulation left off.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		if e.events[0].cancelled {
			e.recycle(heap.Pop(&e.events).(*event))
			continue
		}
		return e.events[0]
	}
	return nil
}

// Ticker runs a callback at a fixed virtual-time interval until
// stopped; experiments use it for periodic sampling (queue occupancy,
// window traces).
type Ticker struct {
	eng      *sim
	timer    *Timer
	stopped  bool
	interval time.Duration
	fn       func()
}

// internal alias so Ticker can hold its engine without exporting a
// second name for it.
type sim = Engine

// Every schedules fn to run every interval, starting one interval from
// now. Stop the returned Ticker to cancel. A non-positive interval is
// rejected by returning a stopped ticker.
func (e *Engine) Every(interval time.Duration, fn func()) *Ticker {
	t := &Ticker{eng: e, interval: interval, fn: fn}
	if interval <= 0 {
		t.stopped = true
		return t
	}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.eng.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		t.schedule()
	})
}

// Stop cancels future ticks. Safe to call repeatedly.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Cancel()
	}
}

type event struct {
	at        time.Duration
	seq       uint64
	gen       uint64
	fn        func()
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
