package sim

import (
	"math/rand"
	"testing"
	"time"
)

// ScheduleCall and Schedule must interleave in strict (time, insertion)
// order: the arg-carrying form is a different calling convention, not a
// different scheduling discipline.
func TestScheduleCallOrderingVsSchedule(t *testing.T) {
	e := NewEngine()
	var got []int
	record := func(arg any) { got = append(got, arg.(int)) }
	e.ScheduleCall(20*time.Nanosecond, record, 4)
	e.Schedule(10*time.Nanosecond, func() { got = append(got, 1) })
	e.ScheduleCall(10*time.Nanosecond, record, 2) // same time, inserted after 1
	e.Schedule(10*time.Nanosecond, func() { got = append(got, 3) })
	e.ScheduleCall(30*time.Nanosecond, record, 5)
	e.Run()
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// The two forms must produce identical execution traces run-to-run,
// including when event records are recycled between rounds.
func TestScheduleCallDeterminism(t *testing.T) {
	runOnce := func() []int {
		e := NewEngine()
		var got []int
		record := func(arg any) { got = append(got, arg.(int)) }
		for round := 0; round < 4; round++ {
			for i := 0; i < 40; i++ {
				v := round*1000 + i
				if i%2 == 0 {
					e.ScheduleCall(time.Duration(i%5)*time.Microsecond, record, v)
				} else {
					e.Schedule(time.Duration(i%5)*time.Microsecond, func() { got = append(got, v) })
				}
			}
			e.Run()
		}
		return got
	}
	a, b := runOnce(), runOnce()
	if len(a) != 160 || len(b) != 160 {
		t.Fatalf("lengths %d/%d, want 160", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism broke at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestScheduleCallTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.ScheduleCall(time.Second, func(any) { fired = true }, nil)
	if !timer.Active() {
		t.Fatal("timer should be active")
	}
	if at, ok := timer.When(); !ok || at != time.Second {
		t.Fatalf("When() = %v, %v, want 1s, true", at, ok)
	}
	if timer.At() != time.Second { // deprecated accessor still works
		t.Fatalf("At() = %v, want 1s", timer.At())
	}
	if !timer.Cancel() {
		t.Fatal("Cancel should report true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled ScheduleCall fired")
	}
}

// The zero Timer (held by value before any ScheduleCall) must be inert.
func TestZeroTimerInert(t *testing.T) {
	var timer Timer
	if timer.Active() || timer.Cancel() || timer.At() != 0 {
		t.Fatal("zero Timer must be inert")
	}
	if _, ok := timer.When(); ok {
		t.Fatal("zero Timer must report no pending time")
	}
}

// Heap property under churn: schedule events at pseudo-random times,
// cancel a third of them, re-schedule from inside callbacks (forcing
// record recycling mid-run), and verify the fire sequence is sorted by
// (time, insertion order).
func TestHeapChurnOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	e := NewEngine()
	type firing struct {
		at  time.Duration
		seq int
	}
	var fired []firing
	seq := 0
	var add func(depth int)
	add = func(depth int) {
		at := time.Duration(r.Intn(500)) * time.Microsecond
		s := seq
		seq++
		timer := e.ScheduleCall(at, func(any) {
			fired = append(fired, firing{e.Now(), s})
			if depth > 0 && r.Intn(2) == 0 {
				add(depth - 1) // recycle churn: schedule from a callback
			}
		}, nil)
		if r.Intn(3) == 0 {
			timer.Cancel()
		}
	}
	for i := 0; i < 500; i++ {
		add(2)
	}
	e.Run()
	if len(fired) == 0 {
		t.Fatal("nothing fired")
	}
	for i := 1; i < len(fired); i++ {
		if fired[i].at < fired[i-1].at {
			t.Fatalf("fire %d at %v before %v: heap order violated", i, fired[i].at, fired[i-1].at)
		}
		// Same-time events created outside callbacks fire in insertion
		// order (events spawned mid-run get later engine sequence numbers
		// by construction, so monotone seq implies FIFO tie-breaking).
		if fired[i].at == fired[i-1].at && fired[i].seq == fired[i-1].seq {
			t.Fatalf("fire %d duplicated seq %d", i, fired[i].seq)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Run, want 0", e.Pending())
	}
}

// Cancelled-and-recycled records must not corrupt the heap: interleave
// cancels with pops and verify the survivor set is exactly right.
func TestHeapCancelRecycleExactness(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		n := 200
		timers := make([]Timer, n)
		firedBy := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			timers[i] = e.ScheduleCall(time.Duration(r.Intn(50))*time.Microsecond,
				func(any) { firedBy[i] = true }, nil)
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				timers[i].Cancel()
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if firedBy[i] == cancelled[i] {
				t.Fatalf("trial %d event %d: fired=%v cancelled=%v", trial, i, firedBy[i], cancelled[i])
			}
		}
	}
}

// The engine's scheduling hot path must be allocation-free at steady
// state: event records come from the free list, the 4-ary heap slice is
// warm, and the value Timer never escapes. This is the regression guard
// for the zero-allocation property the simulator's throughput depends
// on.
func TestScheduleCallZeroAlloc(t *testing.T) {
	e := NewEngine()
	nop := func(any) {}
	// Warm up: grow the heap slice and the free list.
	for i := 0; i < 256; i++ {
		e.ScheduleCall(time.Duration(i)*time.Nanosecond, nop, nil)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleCall(time.Nanosecond, nop, e)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("ScheduleCall+Step allocates %.2f/op at steady state, want 0", avg)
	}
}
