package sim

import "time"

// calQueue is a lazy calendar queue: the engine's default scheduler.
//
// Near-future events live in an array of buckets, each covering one
// `width`-wide slice of virtual time; the active window spans
// len(buckets) consecutive slices starting at the bucket currently
// being drained. Insert hashes the event's time to its bucket and chains
// it into a (at, seq)-sorted intrusive list — O(1) for the common
// time-ordered arrival (tail append), O(chain) otherwise, with resizing
// keeping chains short. Pop drains the current bucket, then advances
// slice by slice; each advance slides the window forward one slice and
// lazily migrates due events in from the overflow tier.
//
// Far-future events — RTOs, tickers, anything scheduled beyond the
// window — go to an overflow 4-ary heap (heapQueue) and pay one
// O(log n) push+pop when they migrate in, typically long after the
// timers they model were cancelled. This keeps the window dense, so the
// amortized per-event cost of the bucket tier stays O(1) no matter how
// many far timers are pending.
//
// Determinism: pop returns the exact (at, seq) minimum, byte-identical
// to heapQueue's order. The argument (see DESIGN.md §6): buckets
// partition time into slices scanned in increasing order, each chain is
// kept sorted by (at, seq) on insert, and the overflow tier only holds
// events at or beyond the window end — strictly later than anything the
// scan can return. TestDifferentialQueues and the netsim workload
// differential in differential_test.go verify this against heapQueue.
type calQueue struct {
	buckets []calBucket // power-of-two length
	// width is the time slice per bucket: always 1<<shift nanoseconds,
	// so the at->bucket hash is a shift instead of a 64-bit division
	// (the division showed up at ~15% of the forwarding hot path).
	width time.Duration
	shift uint
	count int // events resident in buckets (overflow excluded)

	cur       int           // bucket currently being drained
	bucketTop time.Duration // end of cur's time slice (multiple of width)
	winEnd    time.Duration // end of the active window; events >= winEnd overflow
	lastAt    time.Duration // time of the last popped event (monotone)

	overflow heapQueue
	scratch  []*event // rebuild workspace, reused across resizes

	// Churn counters for Engine.Stats, maintained unconditionally: they
	// live on the rebuild and overflow-migration paths, which amortize
	// against many pops, never on the per-pop fast path.
	grows      uint64
	shrinks    uint64
	migrations uint64
}

// calBucket chains events whose time hashes to this slice, sorted
// ascending by (at, seq). The tail pointer makes the dominant
// append-at-end insertion O(1), including long same-timestamp runs.
type calBucket struct {
	head, tail *event
}

const (
	// calMinBuckets bounds shrinking so small simulations don't thrash
	// resize; 64 near-empty buckets cost one pointer check each to skip.
	calMinBuckets = 64
	// calInitShift is the slice width exponent before the first resize
	// computes a data-driven one: 2^10 ns ~= 1us (packet-level workloads
	// cluster around microsecond-scale serialization deltas).
	calInitShift = 10
)

func newCalQueue() *calQueue {
	c := &calQueue{
		buckets: make([]calBucket, calMinBuckets),
		shift:   calInitShift,
		width:   1 << calInitShift,
	}
	c.anchor(0)
	return c
}

func (c *calQueue) len() int { return c.count + c.overflow.len() }

// span is the width of the active window.
func (c *calQueue) span() time.Duration {
	return c.width * time.Duration(len(c.buckets))
}

// anchor positions the window so the slice containing time at is the
// current bucket. Callers must migrate (or reinsert) afterwards if
// overflow events may now fall inside the window.
func (c *calQueue) anchor(at time.Duration) {
	d := at >> c.shift
	c.cur = int(uint64(d) & uint64(len(c.buckets)-1))
	c.bucketTop = (d + 1) << c.shift
	c.winEnd = c.bucketTop + c.width*time.Duration(len(c.buckets)-1)
}

// push inserts ev, routing far-future events to the overflow tier. The
// grow trigger counts both tiers: the window must widen with the total
// pending population, or a long-horizon workload would pool in the
// overflow heap and pay its O(log n) on every event.
func (c *calQueue) push(ev *event) {
	if ev.at >= c.winEnd {
		c.overflow.push(ev)
	} else {
		if ev.at < c.bucketTop-c.width {
			// The event lands in a slice behind the scan cursor. Serial
			// scheduling can't do this (insert clamps to the clock, which
			// never trails the slice under scan), but a cross-shard
			// injection can: the window may have anchored ahead — to the
			// overflow minimum after a transient drain, or across an empty
			// gap — while the shard's clock, which lower-bounds injected
			// arrival times, lags behind it. Rewind the window so the scan
			// revisits the event's slice. Events left in the de-windowed
			// top slices alias harmlessly: pop and peek admit a bucket's
			// head only when its time falls inside the slice under scan, so
			// they simply wait until the window advances back over them.
			c.anchor(ev.at)
		}
		c.insertBucket(ev)
		c.count++
	}
	if c.count+c.overflow.len() > 2*len(c.buckets) {
		c.rebuild(2 * len(c.buckets))
	}
}

// insertBucket chains ev into its slice's sorted list.
func (c *calQueue) insertBucket(ev *event) {
	b := &c.buckets[int(uint64(ev.at>>c.shift)&uint64(len(c.buckets)-1))]
	switch {
	case b.tail == nil:
		ev.next = nil
		b.head, b.tail = ev, ev
	case !eventLess(ev, b.tail):
		// Time-ordered arrival (and every same-timestamp run, since seq
		// grows monotonically): append at the tail.
		ev.next = nil
		b.tail.next = ev
		b.tail = ev
	case eventLess(ev, b.head):
		ev.next = b.head
		b.head = ev
	default:
		p := b.head
		for !eventLess(ev, p.next) {
			p = p.next
		}
		ev.next = p.next
		p.next = ev
	}
}

// pop removes and returns the (at, seq)-minimum event, or nil when the
// queue is empty.
func (c *calQueue) pop() *event {
	if c.count == 0 {
		o := c.overflow.peek()
		if o == nil {
			return nil
		}
		// The window drained: jump it to the overflow minimum and pull
		// the now-due tier in.
		c.anchor(o.at)
		c.migrate()
	}
	steps := 0
	for {
		b := &c.buckets[c.cur]
		if ev := b.head; ev != nil && ev.at < c.bucketTop {
			b.head = ev.next
			if b.head == nil {
				b.tail = nil
			}
			ev.next = nil
			c.count--
			c.lastAt = ev.at
			if c.count+c.overflow.len() < len(c.buckets)/4 && len(c.buckets) > calMinBuckets {
				c.rebuild(len(c.buckets) / 2)
			}
			return ev
		}
		// Empty slice: slide the window one slice forward. If the scan
		// has crossed half the buckets the next event sits across a wide
		// empty gap — long-jump straight to it instead of creeping
		// (amortized: the jump's O(buckets) search is paid for by the
		// O(buckets) of skipping we just avoided).
		if steps++; steps > len(c.buckets)/2 {
			// Jump to the true minimum across both tiers: after a rewind
			// (see push) the bucket tier may hold de-windowed events that
			// sort after the overflow minimum, and anchoring past it would
			// make migrate land it behind the cursor.
			m := c.directMin()
			if o := c.overflow.peek(); o != nil && eventLess(o, m) {
				m = o
			}
			c.anchor(m.at)
			c.migrate()
			steps = 0
			continue
		}
		c.advance()
	}
}

// peek returns the (at, seq)-minimum event without removing it, or nil.
// It never mutates the queue, so interleaved peeks and pushes stay safe.
func (c *calQueue) peek() *event {
	var cand *event
	if c.count > 0 {
		cur, top := c.cur, c.bucketTop
		for i := 0; i <= len(c.buckets); i++ {
			b := &c.buckets[cur]
			if ev := b.head; ev != nil && ev.at < top {
				cand = ev
				break
			}
			top += c.width
			if cur++; cur == len(c.buckets) {
				cur = 0
			}
		}
		if cand == nil {
			// Unreachable if the window invariant holds; fall back to an
			// exact search rather than report an empty queue.
			cand = c.directMin()
		}
	}
	if o := c.overflow.peek(); o != nil && (cand == nil || eventLess(o, cand)) {
		return o
	}
	return cand
}

// advance moves the scan to the next slice, sliding the window forward
// and migrating overflow events that just became near-future.
func (c *calQueue) advance() {
	if c.cur++; c.cur == len(c.buckets) {
		c.cur = 0
	}
	c.bucketTop += c.width
	c.winEnd += c.width
	c.migrate()
}

// migrate pulls overflow events that now fall inside the window into
// their buckets.
func (c *calQueue) migrate() {
	for {
		o := c.overflow.peek()
		if o == nil || o.at >= c.winEnd {
			return
		}
		c.insertBucket(c.overflow.pop())
		c.count++
		c.migrations++
	}
}

// directMin finds the earliest bucket event by comparing chain heads
// (each chain is sorted, so its head is its minimum). Only valid with
// count > 0.
func (c *calQueue) directMin() *event {
	var min *event
	for i := range c.buckets {
		if ev := c.buckets[i].head; ev != nil && (min == nil || eventLess(ev, min)) {
			min = ev
		}
	}
	return min
}

// rebuild resizes to nb buckets, recomputing the slice width from the
// live events (both tiers) so the common case spreads across the window
// with O(1) expected chain length and only genuine outliers return to
// overflow. Runs in O(len); triggered only when the population crosses
// a power-of-two threshold, so the cost amortizes to O(1) per operation.
func (c *calQueue) rebuild(nb int) {
	evs := c.collect()
	for {
		if nb > len(c.buckets) {
			c.grows++
		} else if nb < len(c.buckets) {
			c.shrinks++
		}
		c.layout(nb, evs)
		if c.count+c.overflow.len() <= 2*nb {
			return
		}
		// The window left more of the population in overflow than the
		// target chain length budgets for; grow again.
		evs = c.collect()
		nb *= 2
	}
}

// collect drains every bucket chain and the overflow tier into the
// scratch slice.
func (c *calQueue) collect() []*event {
	evs := c.scratch[:0]
	for i := range c.buckets {
		for ev := c.buckets[i].head; ev != nil; {
			next := ev.next
			ev.next = nil
			evs = append(evs, ev)
			ev = next
		}
		c.buckets[i] = calBucket{}
	}
	// The heap's internal layout is irrelevant here — layout reinserts
	// by timestamp — so take its slice verbatim instead of popping in
	// order.
	o := c.overflow.events
	for i, ev := range o {
		evs = append(evs, ev)
		o[i] = nil
	}
	c.overflow.events = o[:0]
	c.scratch = evs
	return evs
}

// layout applies a new geometry and reinserts evs (events now beyond
// the window spill back to overflow).
func (c *calQueue) layout(nb int, evs []*event) {
	c.shift = chooseShift(c.shift, nb, evs)
	c.width = 1 << c.shift
	if len(c.buckets) != nb {
		c.buckets = make([]calBucket, nb)
	}
	c.anchor(c.lastAt)
	c.count = 0
	for _, ev := range evs {
		if ev.at >= c.winEnd {
			c.overflow.push(ev)
		} else {
			c.insertBucket(ev)
			c.count++
		}
	}
	c.migrate()
}

// chooseShift picks the slice width exponent (width = 2^shift ns) for
// nb buckets from an *effective* span: four times the events' mean
// offset past their minimum, capped at the true span. For a uniform
// spread that is ~2x the span, so the window covers every event at
// ~0.5 per bucket; for a skewed population (a dense near-future cluster
// plus a few far tickers or RTOs) the mean keeps the window sized for
// the cluster while the outliers return to the overflow tier — using
// the raw span there would stretch the slices until the whole cluster
// crowded into one chain. The width rounds up to a power of two so the
// at->bucket hash stays a shift. Degenerate spans (fewer than two
// events, or all at one instant) keep the previous width: any width
// drains a point cluster in O(1) per pop once the scan reaches it. The
// choice depends only on queue content, never on wall-clock state, so
// identical runs resize identically (determinism).
func chooseShift(old uint, nb int, evs []*event) uint {
	if len(evs) < 2 {
		return old
	}
	lo, hi := evs[0].at, evs[0].at
	for _, ev := range evs[1:] {
		if ev.at < lo {
			lo = ev.at
		}
		if ev.at > hi {
			hi = ev.at
		}
	}
	if hi == lo {
		return old
	}
	var sum time.Duration
	for _, ev := range evs {
		sum += ev.at - lo
	}
	span := 4 * (sum / time.Duration(len(evs)))
	if span > hi-lo || span <= 0 {
		span = hi - lo
	}
	width := span/time.Duration(nb) + 1
	var shift uint
	for time.Duration(1)<<shift < width {
		shift++
	}
	return shift
}
