package schemes

import (
	"testing"
	"time"

	"pmsb/internal/sim"
	"pmsb/internal/units"
)

func TestSchedulerNames(t *testing.T) {
	eng := sim.NewEngine()
	for _, name := range SchedulerNames() {
		f, err := Scheduler(name, eng)
		if err != nil || f == nil {
			t.Fatalf("Scheduler(%q): %v", name, err)
		}
		s := f([]float64{1, 1})
		if s == nil || s.NumQueues() != 2 && name != "fifo" {
			t.Fatalf("factory %q built a bad scheduler", name)
		}
	}
	if _, err := Scheduler("bogus", eng); err == nil {
		t.Fatal("unknown scheduler must error")
	}
	// Case-insensitive.
	if _, err := Scheduler("DWRR", eng); err != nil {
		t.Fatal("scheduler names must be case-insensitive")
	}
}

func TestMarkerNames(t *testing.T) {
	cfg := MarkerConfig{
		KBytes:       units.Packets(12),
		Rate:         10 * units.Gbps,
		RTTThreshold: 40 * time.Microsecond,
	}
	for _, name := range MarkerNames() {
		mf, ff, err := Marker(name, cfg)
		if err != nil {
			t.Fatalf("Marker(%q): %v", name, err)
		}
		switch name {
		case "none":
			if mf != nil {
				t.Fatal("none must have no marker factory")
			}
		case "pmsbe":
			if mf == nil || ff == nil {
				t.Fatal("pmsbe needs marker and filter")
			}
			if f := ff(); f == nil || !f.Accept(time.Second, true) {
				t.Fatal("pmsbe filter must accept slow-RTT marks")
			}
		default:
			if mf == nil || ff != nil {
				t.Fatalf("%s: unexpected factories", name)
			}
			if m := mf(); m == nil {
				t.Fatalf("%s built nil marker", name)
			}
		}
	}
	if _, _, err := Marker("bogus", cfg); err == nil {
		t.Fatal("unknown marker must error")
	}
}

func TestMarkerDequeuePoint(t *testing.T) {
	mf, _, err := Marker("pmsb", MarkerConfig{KBytes: 1, Rate: units.Gbps, Dequeue: true})
	if err != nil {
		t.Fatal(err)
	}
	if mf().Point().String() != "dequeue" {
		t.Fatal("Dequeue flag not honoured")
	}
}

func TestRoundBased(t *testing.T) {
	if !RoundBased("mqecn") || !RoundBased("MQECN") {
		t.Fatal("mqecn is round-based")
	}
	if RoundBased("pmsb") || RoundBased("tcn") {
		t.Fatal("only mqecn is round-based")
	}
}
