// Package schemes maps user-facing names ("pmsb", "tcn", "dwrr", ...)
// to the library's schedulers, markers and transport filters. The CLIs
// (cmd/pmsbflow, cmd/pmsbtrace) share it so flags behave identically.
package schemes

import (
	"fmt"
	"strings"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// SchedulerNames lists the accepted scheduler names.
func SchedulerNames() []string {
	return []string{"fifo", "wrr", "dwrr", "wfq", "sp", "spwfq"}
}

// MarkerNames lists the accepted marking-scheme names.
func MarkerNames() []string {
	return []string{"none", "perqueue", "fractional", "perport", "mqecn", "tcn", "red", "pmsb", "pmsbe"}
}

// Scheduler returns the factory for the named discipline. Round-based
// schedulers are wired to the engine clock so MQ-ECN works on them.
func Scheduler(name string, eng *sim.Engine) (topo.SchedFactory, error) {
	switch strings.ToLower(name) {
	case "fifo":
		return topo.FIFOFactory(), nil
	case "wrr":
		return topo.WRRFactory(eng), nil
	case "dwrr":
		return topo.DWRRFactory(eng), nil
	case "wfq":
		return topo.WFQFactory(), nil
	case "sp":
		return topo.SPFactory(), nil
	case "spwfq":
		return topo.SPWFQFactory(1), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q (want one of %v)", name, SchedulerNames())
	}
}

// MarkerConfig parametrizes the marker families.
type MarkerConfig struct {
	// KBytes is the port/standard threshold in bytes.
	KBytes int
	// Rate is the link rate (for MQ-ECN/TCN time conversions).
	Rate units.Rate
	// Dequeue selects dequeue-point marking where configurable.
	Dequeue bool
	// RTTThreshold is PMSB(e)'s accept boundary.
	RTTThreshold time.Duration
}

// Marker returns the marker factory for the named scheme plus the
// end-host filter factory when the scheme includes one (pmsbe), or
// nil factories for "none".
func Marker(name string, cfg MarkerConfig) (topo.MarkerFactory, func() transport.Filter, error) {
	point := ecn.AtEnqueue
	if cfg.Dequeue {
		point = ecn.AtDequeue
	}
	k := cfg.KBytes
	switch strings.ToLower(name) {
	case "none":
		return nil, nil, nil
	case "perqueue":
		return func() ecn.Marker { return &ecn.PerQueueStandard{K: k, MarkPoint: point} }, nil, nil
	case "fractional":
		return func() ecn.Marker { return &ecn.PerQueueFractional{PortK: k, MarkPoint: point} }, nil, nil
	case "perport":
		return func() ecn.Marker { return &ecn.PerPort{K: k, MarkPoint: point} }, nil, nil
	case "mqecn":
		return func() ecn.Marker {
			return &ecn.MQECN{RTT: units.Serialization(k, cfg.Rate), Lambda: 1, MarkPoint: point}
		}, nil, nil
	case "tcn":
		return func() ecn.Marker { return &ecn.TCN{Threshold: units.Serialization(k, cfg.Rate)} }, nil, nil
	case "red":
		return func() ecn.Marker { return &ecn.RED{MinK: k / 2, MaxK: k, MaxP: 1, MarkPoint: point} }, nil, nil
	case "pmsb":
		return func() ecn.Marker { return &core.PMSB{PortK: k, MarkPoint: point} }, nil, nil
	case "pmsbe":
		filter := func() transport.Filter { return &core.PMSBe{RTTThreshold: cfg.RTTThreshold} }
		return func() ecn.Marker { return &ecn.PerPort{K: k, MarkPoint: point} }, filter, nil
	default:
		return nil, nil, fmt.Errorf("unknown marker %q (want one of %v)", name, MarkerNames())
	}
}

// RoundBased reports whether the named scheme requires a round-based
// scheduler (MQ-ECN's limitation).
func RoundBased(marker string) bool {
	return strings.ToLower(marker) == "mqecn"
}
