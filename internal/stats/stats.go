// Package stats provides the measurement primitives the experiments
// need: percentile summaries (FCT, RTT), CDF extraction for
// distribution plots, time-binned throughput series, and event-driven
// occupancy traces for queue-length-versus-time figures.
package stats

import (
	"math"
	"sort"
	"time"

	"pmsb/internal/units"
)

// Summary accumulates scalar samples and answers order statistics.
// The zero value is ready to use.
type Summary struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add appends a sample.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
}

// AddDuration appends a duration sample in seconds.
func (s *Summary) AddDuration(d time.Duration) {
	s.Add(d.Seconds())
}

// Count returns the number of samples.
func (s *Summary) Count() int { return len(s.samples) }

// Mean returns the arithmetic mean (0 with no samples).
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[len(s.samples)-1]
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation between the two closest ranks: the sorted samples are
// treated as quantiles at rank i/(n-1), and p falling between two ranks
// blends them proportionally (the same rule as numpy's default). p <= 0
// yields the minimum, p >= 100 the maximum, and a single sample answers
// every p. Returns 0 with no samples or a NaN p.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 || math.IsNaN(p) {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.samples[lo]
	}
	frac := rank - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Samples returns a copy of the raw samples (for pooling summaries).
func (s *Summary) Samples() []float64 {
	out := make([]float64, len(s.samples))
	copy(out, s.samples)
	return out
}

// CDFPoint is one (value, cumulative probability) pair.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns points evenly spaced quantiles of the sample set, from
// the minimum (P=0) to the maximum (P=1) inclusive. It returns nil with
// no samples or fewer than 2 requested points (a CDF needs both ends);
// a single sample yields a degenerate vertical CDF at that value.
func (s *Summary) CDF(points int) []CDFPoint {
	if len(s.samples) == 0 || points < 2 {
		return nil
	}
	s.sort()
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		p := float64(i) / float64(points-1)
		out = append(out, CDFPoint{X: s.Percentile(p * 100), P: p})
	}
	return out
}

func (s *Summary) sort() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// TimeSeries accumulates a value (e.g. bytes) into fixed-width time
// bins; Rate converts a byte bin into an average rate.
type TimeSeries struct {
	bin  time.Duration
	bins []float64
}

// NewTimeSeries returns a series with the given bin width.
func NewTimeSeries(bin time.Duration) *TimeSeries {
	if bin <= 0 {
		bin = time.Millisecond
	}
	return &TimeSeries{bin: bin}
}

// Add accumulates v into the bin containing time t.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	i := int(t / ts.bin)
	for len(ts.bins) <= i {
		ts.bins = append(ts.bins, 0)
	}
	ts.bins[i] += v
}

// Bins returns the number of bins touched so far.
func (ts *TimeSeries) Bins() int { return len(ts.bins) }

// Value returns the accumulated value of bin i (0 if untouched).
func (ts *TimeSeries) Value(i int) float64 {
	if i < 0 || i >= len(ts.bins) {
		return 0
	}
	return ts.bins[i]
}

// BinWidth returns the bin width.
func (ts *TimeSeries) BinWidth() time.Duration { return ts.bin }

// Rate interprets bin i as bytes and returns the average rate.
func (ts *TimeSeries) Rate(i int) units.Rate {
	return units.RateOf(int64(ts.Value(i)), ts.bin)
}

// MeanRate interprets bins [from, to) as bytes and returns the average
// rate across them.
func (ts *TimeSeries) MeanRate(from, to int) units.Rate {
	if to > len(ts.bins) {
		to = len(ts.bins)
	}
	if from < 0 {
		from = 0
	}
	if from >= to {
		return 0
	}
	var sum float64
	for i := from; i < to; i++ {
		sum += ts.bins[i]
	}
	return units.RateOf(int64(sum), ts.bin*time.Duration(to-from))
}

// JainIndex returns Jain's fairness index of the given allocations:
// (sum x)^2 / (n * sum x^2), in (0, 1] with 1 meaning perfectly equal.
// Zero-length or all-zero input yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// WeightedJainIndex normalizes each allocation by its weight before
// computing Jain's index, measuring conformance to weighted fair
// sharing (the paper's scheduling-policy metric).
func WeightedJainIndex(xs, weights []float64) float64 {
	if len(xs) != len(weights) {
		return 0
	}
	norm := make([]float64, len(xs))
	for i := range xs {
		if weights[i] <= 0 {
			return 0
		}
		norm[i] = xs[i] / weights[i]
	}
	return JainIndex(norm)
}

// TracePoint is one (time, value) observation.
type TracePoint struct {
	T time.Duration
	V float64
}

// Trace records a value over time (queue occupancy, window size).
type Trace struct {
	points []TracePoint
}

// Record appends an observation.
func (tr *Trace) Record(t time.Duration, v float64) {
	tr.points = append(tr.points, TracePoint{T: t, V: v})
}

// Points returns all observations in record order.
func (tr *Trace) Points() []TracePoint { return tr.points }

// Max returns the largest recorded value (0 when empty).
func (tr *Trace) Max() float64 {
	m := 0.0
	for _, p := range tr.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// MaxAfter returns the largest value recorded at or after t.
func (tr *Trace) MaxAfter(t time.Duration) float64 {
	m := 0.0
	for _, p := range tr.points {
		if p.T >= t && p.V > m {
			m = p.V
		}
	}
	return m
}

// MinAfter returns the smallest value recorded at or after t (0 when
// nothing was recorded there).
func (tr *Trace) MinAfter(t time.Duration) float64 {
	m := math.Inf(1)
	found := false
	for _, p := range tr.points {
		if p.T >= t && p.V < m {
			m = p.V
			found = true
		}
	}
	if !found {
		return 0
	}
	return m
}

// MeanAfter returns the mean value recorded at or after t.
func (tr *Trace) MeanAfter(t time.Duration) float64 {
	var sum float64
	var n int
	for _, p := range tr.points {
		if p.T >= t {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
