package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"pmsb/internal/units"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("zero-value Summary should answer zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	// Interpolated percentile.
	if got := s.Percentile(25); got != 2 {
		t.Fatalf("P25 = %v, want 2", got)
	}
}

func TestSummaryAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Fatalf("Mean = %v, want 1.5s", s.Mean())
	}
}

func TestSummaryAddAfterPercentile(t *testing.T) {
	var s Summary
	s.Add(1)
	_ = s.Percentile(50)
	s.Add(100)
	if s.Max() != 100 {
		t.Fatal("Add after sort must re-sort")
	}
}

func TestCDF(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].P != 0 || cdf[10].P != 1 {
		t.Fatal("CDF endpoints wrong")
	}
	if cdf[0].X != 1 || cdf[10].X != 100 {
		t.Fatalf("CDF X endpoints = %v, %v", cdf[0].X, cdf[10].X)
	}
	if s.CDF(1) != nil {
		t.Fatal("CDF with <2 points should be nil")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, v := range raw {
			s.Add(v)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return pa <= pb && pa >= s.Min() && pb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond)
	ts.Add(0, 1000)
	ts.Add(500*time.Microsecond, 500)
	ts.Add(2500*time.Microsecond, 250)
	if ts.Bins() != 3 {
		t.Fatalf("Bins = %d", ts.Bins())
	}
	if ts.Value(0) != 1500 || ts.Value(1) != 0 || ts.Value(2) != 250 {
		t.Fatalf("bin values %v %v %v", ts.Value(0), ts.Value(1), ts.Value(2))
	}
	if ts.Value(-1) != 0 || ts.Value(100) != 0 {
		t.Fatal("out-of-range bins must be 0")
	}
	// 1500 bytes in 1ms = 12 Mbps.
	if got := ts.Rate(0); got != 12*units.Mbps {
		t.Fatalf("Rate(0) = %v", got)
	}
	// MeanRate across 3 bins: 1750B over 3ms.
	want := units.RateOf(1750, 3*time.Millisecond)
	if got := ts.MeanRate(0, 3); got != want {
		t.Fatalf("MeanRate = %v, want %v", got, want)
	}
	if ts.BinWidth() != time.Millisecond {
		t.Fatal("BinWidth mismatch")
	}
}

func TestTimeSeriesDefaultBin(t *testing.T) {
	ts := NewTimeSeries(0)
	if ts.BinWidth() != time.Millisecond {
		t.Fatal("zero bin width should default to 1ms")
	}
}

func TestTrace(t *testing.T) {
	var tr Trace
	if tr.Max() != 0 || tr.MeanAfter(0) != 0 {
		t.Fatal("empty trace should answer zeros")
	}
	tr.Record(0, 10)
	tr.Record(time.Second, 50)
	tr.Record(2*time.Second, 30)
	if tr.Max() != 50 {
		t.Fatalf("Max = %v", tr.Max())
	}
	if tr.MaxAfter(1500*time.Millisecond) != 30 {
		t.Fatalf("MaxAfter = %v", tr.MaxAfter(1500*time.Millisecond))
	}
	if tr.MeanAfter(time.Second) != 40 {
		t.Fatalf("MeanAfter = %v", tr.MeanAfter(time.Second))
	}
	if len(tr.Points()) != 3 {
		t.Fatal("Points length wrong")
	}
}

// Property: TimeSeries.MeanRate over the whole series equals RateOf the
// total bytes.
func TestPropertyMeanRateTotal(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		ts := NewTimeSeries(time.Millisecond)
		var total int64
		for i, v := range vals {
			ts.Add(time.Duration(i)*time.Millisecond, float64(v))
			total += int64(v)
		}
		want := units.RateOf(total, time.Duration(len(vals))*time.Millisecond)
		return ts.MeanRate(0, len(vals)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero = %v", got)
	}
	if got := JainIndex([]float64{5, 5, 5}); got != 1 {
		t.Fatalf("equal allocations = %v, want 1", got)
	}
	// One user hogging everything among n users: index = 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); got != 0.25 {
		t.Fatalf("single hog = %v, want 0.25", got)
	}
}

func TestWeightedJainIndex(t *testing.T) {
	// Allocations exactly proportional to weights: index 1.
	if got := WeightedJainIndex([]float64{2, 4, 6}, []float64{1, 2, 3}); got != 1 {
		t.Fatalf("proportional = %v, want 1", got)
	}
	if got := WeightedJainIndex([]float64{1, 2}, []float64{1}); got != 0 {
		t.Fatal("length mismatch must return 0")
	}
	if got := WeightedJainIndex([]float64{1, 2}, []float64{1, 0}); got != 0 {
		t.Fatal("non-positive weight must return 0")
	}
	// Violated weighted sharing scores below equal-share compliance.
	violated := WeightedJainIndex([]float64{2.5, 7.5}, []float64{1, 1})
	if violated >= 1 {
		t.Fatalf("violation should score < 1, got %v", violated)
	}
}

// Property: Jain index is scale-invariant and within (0, 1].
func TestPropertyJainBounds(t *testing.T) {
	f := func(raw []uint8, scaleRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		positive := false
		for _, v := range raw {
			xs = append(xs, float64(v))
			if v > 0 {
				positive = true
			}
		}
		if !positive || len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		if j <= 0 || j > 1+1e-12 {
			return false
		}
		scale := float64(scaleRaw%9) + 1
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * scale
		}
		return math.Abs(JainIndex(scaled)-j) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceMinAfter(t *testing.T) {
	var tr Trace
	if tr.MinAfter(0) != 0 {
		t.Fatal("empty trace MinAfter should be 0")
	}
	tr.Record(0, 50)
	tr.Record(time.Second, 10)
	tr.Record(2*time.Second, 30)
	if tr.MinAfter(0) != 10 {
		t.Fatalf("MinAfter(0) = %v", tr.MinAfter(0))
	}
	if tr.MinAfter(1500*time.Millisecond) != 30 {
		t.Fatalf("MinAfter(1.5s) = %v", tr.MinAfter(1500*time.Millisecond))
	}
	if tr.MinAfter(time.Hour) != 0 {
		t.Fatal("MinAfter past the trace should be 0")
	}
}

func TestSummarySamplesCopy(t *testing.T) {
	var s Summary
	s.Add(3)
	s.Add(1)
	got := s.Samples()
	if len(got) != 2 {
		t.Fatalf("Samples = %v", got)
	}
	got[0] = 99 // must not corrupt the summary
	if s.Max() == 99 {
		t.Fatal("Samples must return a copy")
	}
}

// TestPercentileEdgeCases pins the documented interpolation rule and
// its boundary behaviour: empty and NaN inputs answer 0, a single
// sample answers every p, p=0/p=100 answer min/max exactly, and
// interior percentiles interpolate linearly between the closest ranks.
func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{"empty", nil, 50, 0},
		{"empty p0", nil, 0, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"nan p", []float64{1, 2, 3}, math.NaN(), 0},
		{"negative p clamps to min", []float64{1, 2, 3}, -10, 1},
		{"p over 100 clamps to max", []float64{1, 2, 3}, 250, 3},
		{"p0 is min", []float64{3, 1, 2}, 0, 1},
		{"p100 is max", []float64{3, 1, 2}, 100, 3},
		{"median of two interpolates", []float64{10, 20}, 50, 15},
		{"p25 of two interpolates", []float64{10, 20}, 25, 12.5},
		{"median of odd count is exact rank", []float64{1, 2, 9}, 50, 2},
		{"p75 of four", []float64{1, 2, 3, 4}, 75, 3.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Summary
			for _, v := range tc.samples {
				s.Add(v)
			}
			got := s.Percentile(tc.p)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Percentile(%v) of %v = %v, want %v", tc.p, tc.samples, got, tc.want)
			}
		})
	}
}

// TestCDFEdgeCases: a CDF needs both ends, so degenerate requests
// return nil; one sample yields a vertical CDF.
func TestCDFEdgeCases(t *testing.T) {
	var empty Summary
	if got := empty.CDF(11); got != nil {
		t.Fatalf("empty CDF = %v, want nil", got)
	}
	var s Summary
	s.Add(5)
	if got := s.CDF(1); got != nil {
		t.Fatalf("CDF(1) = %v, want nil", got)
	}
	if got := s.CDF(0); got != nil {
		t.Fatalf("CDF(0) = %v, want nil", got)
	}
	pts := s.CDF(3)
	if len(pts) != 3 {
		t.Fatalf("CDF(3) has %d points", len(pts))
	}
	for _, p := range pts {
		if p.X != 5 {
			t.Fatalf("single-sample CDF point %+v, want X=5", p)
		}
	}
	if pts[0].P != 0 || pts[2].P != 1 {
		t.Fatalf("CDF must span P=0..1, got %+v", pts)
	}
}

// TestTimeSeriesValueBounds: out-of-range bins answer 0 instead of
// panicking, and Add grows the bin slice monotonically.
func TestTimeSeriesValueBounds(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond)
	if got := ts.Value(-1); got != 0 {
		t.Fatalf("Value(-1) = %v", got)
	}
	if got := ts.Value(99); got != 0 {
		t.Fatalf("Value(99) = %v", got)
	}
	ts.Add(2500*time.Microsecond, 10) // bin 2
	if ts.Bins() != 3 {
		t.Fatalf("Bins() = %d, want 3", ts.Bins())
	}
	if got := ts.Value(2); got != 10 {
		t.Fatalf("Value(2) = %v, want 10", got)
	}
	if got := ts.Value(0); got != 0 {
		t.Fatalf("Value(0) = %v, want 0 (untouched bin)", got)
	}
}

// TestTraceAfterHelpers covers the warmup-windowed trace reductions.
func TestTraceAfterHelpers(t *testing.T) {
	var tr Trace
	if tr.Max() != 0 || tr.MeanAfter(0) != 0 || tr.MinAfter(0) != 0 {
		t.Fatal("empty trace reductions must be 0")
	}
	tr.Record(1*time.Millisecond, 5)
	tr.Record(2*time.Millisecond, 9)
	tr.Record(3*time.Millisecond, 3)
	if got := tr.MaxAfter(2 * time.Millisecond); got != 9 {
		t.Fatalf("MaxAfter = %v, want 9", got)
	}
	if got := tr.MinAfter(2 * time.Millisecond); got != 3 {
		t.Fatalf("MinAfter = %v, want 3", got)
	}
	if got := tr.MeanAfter(2 * time.Millisecond); got != 6 {
		t.Fatalf("MeanAfter = %v, want 6", got)
	}
	if got := tr.MeanAfter(10 * time.Millisecond); got != 0 {
		t.Fatalf("MeanAfter past end = %v, want 0", got)
	}
}
