package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"pmsb/internal/units"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("zero-value Summary should answer zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	// Interpolated percentile.
	if got := s.Percentile(25); got != 2 {
		t.Fatalf("P25 = %v, want 2", got)
	}
}

func TestSummaryAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Fatalf("Mean = %v, want 1.5s", s.Mean())
	}
}

func TestSummaryAddAfterPercentile(t *testing.T) {
	var s Summary
	s.Add(1)
	_ = s.Percentile(50)
	s.Add(100)
	if s.Max() != 100 {
		t.Fatal("Add after sort must re-sort")
	}
}

func TestCDF(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(11)
	if len(cdf) != 11 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].P != 0 || cdf[10].P != 1 {
		t.Fatal("CDF endpoints wrong")
	}
	if cdf[0].X != 1 || cdf[10].X != 100 {
		t.Fatalf("CDF X endpoints = %v, %v", cdf[0].X, cdf[10].X)
	}
	if s.CDF(1) != nil {
		t.Fatal("CDF with <2 points should be nil")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, v := range raw {
			s.Add(v)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return pa <= pb && pa >= s.Min() && pb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Millisecond)
	ts.Add(0, 1000)
	ts.Add(500*time.Microsecond, 500)
	ts.Add(2500*time.Microsecond, 250)
	if ts.Bins() != 3 {
		t.Fatalf("Bins = %d", ts.Bins())
	}
	if ts.Value(0) != 1500 || ts.Value(1) != 0 || ts.Value(2) != 250 {
		t.Fatalf("bin values %v %v %v", ts.Value(0), ts.Value(1), ts.Value(2))
	}
	if ts.Value(-1) != 0 || ts.Value(100) != 0 {
		t.Fatal("out-of-range bins must be 0")
	}
	// 1500 bytes in 1ms = 12 Mbps.
	if got := ts.Rate(0); got != 12*units.Mbps {
		t.Fatalf("Rate(0) = %v", got)
	}
	// MeanRate across 3 bins: 1750B over 3ms.
	want := units.RateOf(1750, 3*time.Millisecond)
	if got := ts.MeanRate(0, 3); got != want {
		t.Fatalf("MeanRate = %v, want %v", got, want)
	}
	if ts.BinWidth() != time.Millisecond {
		t.Fatal("BinWidth mismatch")
	}
}

func TestTimeSeriesDefaultBin(t *testing.T) {
	ts := NewTimeSeries(0)
	if ts.BinWidth() != time.Millisecond {
		t.Fatal("zero bin width should default to 1ms")
	}
}

func TestTrace(t *testing.T) {
	var tr Trace
	if tr.Max() != 0 || tr.MeanAfter(0) != 0 {
		t.Fatal("empty trace should answer zeros")
	}
	tr.Record(0, 10)
	tr.Record(time.Second, 50)
	tr.Record(2*time.Second, 30)
	if tr.Max() != 50 {
		t.Fatalf("Max = %v", tr.Max())
	}
	if tr.MaxAfter(1500*time.Millisecond) != 30 {
		t.Fatalf("MaxAfter = %v", tr.MaxAfter(1500*time.Millisecond))
	}
	if tr.MeanAfter(time.Second) != 40 {
		t.Fatalf("MeanAfter = %v", tr.MeanAfter(time.Second))
	}
	if len(tr.Points()) != 3 {
		t.Fatal("Points length wrong")
	}
}

// Property: TimeSeries.MeanRate over the whole series equals RateOf the
// total bytes.
func TestPropertyMeanRateTotal(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		ts := NewTimeSeries(time.Millisecond)
		var total int64
		for i, v := range vals {
			ts.Add(time.Duration(i)*time.Millisecond, float64(v))
			total += int64(v)
		}
		want := units.RateOf(total, time.Duration(len(vals))*time.Millisecond)
		return ts.MeanRate(0, len(vals)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero = %v", got)
	}
	if got := JainIndex([]float64{5, 5, 5}); got != 1 {
		t.Fatalf("equal allocations = %v, want 1", got)
	}
	// One user hogging everything among n users: index = 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); got != 0.25 {
		t.Fatalf("single hog = %v, want 0.25", got)
	}
}

func TestWeightedJainIndex(t *testing.T) {
	// Allocations exactly proportional to weights: index 1.
	if got := WeightedJainIndex([]float64{2, 4, 6}, []float64{1, 2, 3}); got != 1 {
		t.Fatalf("proportional = %v, want 1", got)
	}
	if got := WeightedJainIndex([]float64{1, 2}, []float64{1}); got != 0 {
		t.Fatal("length mismatch must return 0")
	}
	if got := WeightedJainIndex([]float64{1, 2}, []float64{1, 0}); got != 0 {
		t.Fatal("non-positive weight must return 0")
	}
	// Violated weighted sharing scores below equal-share compliance.
	violated := WeightedJainIndex([]float64{2.5, 7.5}, []float64{1, 1})
	if violated >= 1 {
		t.Fatalf("violation should score < 1, got %v", violated)
	}
}

// Property: Jain index is scale-invariant and within (0, 1].
func TestPropertyJainBounds(t *testing.T) {
	f := func(raw []uint8, scaleRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		positive := false
		for _, v := range raw {
			xs = append(xs, float64(v))
			if v > 0 {
				positive = true
			}
		}
		if !positive || len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		if j <= 0 || j > 1+1e-12 {
			return false
		}
		scale := float64(scaleRaw%9) + 1
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * scale
		}
		return math.Abs(JainIndex(scaled)-j) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceMinAfter(t *testing.T) {
	var tr Trace
	if tr.MinAfter(0) != 0 {
		t.Fatal("empty trace MinAfter should be 0")
	}
	tr.Record(0, 50)
	tr.Record(time.Second, 10)
	tr.Record(2*time.Second, 30)
	if tr.MinAfter(0) != 10 {
		t.Fatalf("MinAfter(0) = %v", tr.MinAfter(0))
	}
	if tr.MinAfter(1500*time.Millisecond) != 30 {
		t.Fatalf("MinAfter(1.5s) = %v", tr.MinAfter(1500*time.Millisecond))
	}
	if tr.MinAfter(time.Hour) != 0 {
		t.Fatal("MinAfter past the trace should be 0")
	}
}

func TestSummarySamplesCopy(t *testing.T) {
	var s Summary
	s.Add(3)
	s.Add(1)
	got := s.Samples()
	if len(got) != 2 {
		t.Fatalf("Samples = %v", got)
	}
	got[0] = 99 // must not corrupt the summary
	if s.Max() == 99 {
		t.Fatal("Samples must return a copy")
	}
}
