# Convenience targets for the PMSB reproduction.

GO ?= go

.PHONY: all build vet test test-short bench reproduce quick-reproduce examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One benchmark per paper table/figure plus engine micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem .

# Regenerate every table and figure at full fidelity (~10 minutes).
reproduce:
	$(GO) run ./cmd/pmsbsim -all > results_full.txt
	@echo "results written to results_full.txt"

# The same sweep with reduced durations (~1 minute).
quick-reproduce:
	$(GO) run ./cmd/pmsbsim -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiservice
	$(GO) run ./examples/schedulers
	$(GO) run ./examples/deadlines
	$(GO) run ./examples/leafspine

clean:
	$(GO) clean ./...
