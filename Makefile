# Convenience targets for the PMSB reproduction.

GO ?= go

.PHONY: all build vet test test-short bench ci reproduce quick-reproduce examples clean

all: build vet test

# Everything .github/workflows/ci.yml runs, in the same order.
ci:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -race -run TestJobsDeterminism -count=1 ./cmd/pmsbsim

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One benchmark per paper table/figure plus engine micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem .

# Regenerate every table and figure at full fidelity (~10 minutes).
reproduce:
	$(GO) run ./cmd/pmsbsim -all > results_full.txt
	@echo "results written to results_full.txt"

# The same sweep with reduced durations (~1 minute).
quick-reproduce:
	$(GO) run ./cmd/pmsbsim -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiservice
	$(GO) run ./examples/schedulers
	$(GO) run ./examples/deadlines
	$(GO) run ./examples/leafspine

clean:
	$(GO) clean ./...
