# Convenience targets for the PMSB reproduction.

GO ?= go

.PHONY: all build vet test test-short bench bench-all ci reproduce quick-reproduce examples clean

all: build vet test

# Everything .github/workflows/ci.yml runs, in the same order. The
# trace-codec fuzz pass is fail-soft: ten seconds of coverage-guided
# decoding catches framing bugs early, but a fuzz-capable toolchain is
# not required to pass CI.
ci:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -race -run TestJobsDeterminism -count=1 ./cmd/pmsbsim
	-$(GO) test -run '^$$' -fuzz FuzzReadBinary -fuzztime 10s ./internal/obs/
	# Runtime-introspection smoke: a sharded run with live progress and a
	# self-profile dump, rendered back through pmsbstat -runtime.
	$(GO) run ./cmd/pmsbsim -experiment fattree-incast -quick -shards 4 -par channel-steal \
		-progress=100ms -runtimestats ci_runtime.rtstats > /dev/null
	$(GO) run ./cmd/pmsbstat -runtime ci_runtime.rtstats > /dev/null
	@rm -f ci_runtime.rtstats
	# k=32 smoke: the arena-backed 49k-port fabric builds with zero slab
	# overflow, wires correctly, and a short sharded horizon stays
	# byte-identical to the serial run.
	$(GO) test -race -count=1 -run 'TestFatTree32' ./internal/topo/
	$(GO) test -race -count=1 -run TestDifferentialFatTree32ShortHorizon .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Key hot-path benchmarks, recorded as JSON so the perf trajectory is
# tracked from PR to PR (BENCH_1.json was the first point, BENCH_9.json
# the current one; benchjson prints the delta against BENCH_BASE but
# never fails the build — timings on shared machines are a trend line,
# not a gate). Each benchmark runs BENCHCOUNT times and benchjson keeps
# the fastest run: min-of-N suppresses one-off scheduler noise, which
# routinely inflates single runs by 5-15% on shared machines — deltas
# under ~5% between min-of-3 reports are still noise, not signal.
# Parallel speedups additionally depend on the machine's core count:
# numbers recorded on a single-core runner understate every sharded
# row. BENCHTIME trades precision for wall time — CI uses a short
# value. Run `make bench-all` for every paper table/figure. The regex
# is anchored, so the sharded fat-tree and traced benchmarks must be
# listed on their own — the BenchmarkFatTree alternative does not
# cover them.
KEY_BENCHES ?= ^(BenchmarkPacketForwarding|BenchmarkDCTCPFlow|BenchmarkLeafSpineFlows|BenchmarkFatTree|BenchmarkFatTreeSharded|BenchmarkFatTree16Sharded|BenchmarkFatTree32Sharded|BenchmarkFatTreeTraced|BenchmarkFlowSimFatTree|BenchmarkFatTreeBuild|BenchmarkTraceEncodeJSONL|BenchmarkTraceEncodeBinary|BenchmarkEngineChurn|BenchmarkPMSBDecision|BenchmarkMQECNDecision)$$
BENCHTIME ?= 1s
BENCHCOUNT ?= 3
BENCH_OUT ?= BENCH_9.json
BENCH_BASE ?= BENCH_8.json

bench:
	$(GO) test -run '^$$' -bench "$(KEY_BENCHES)" -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -baseline $(BENCH_BASE)
	# Fail-soft: record the sharded fat-tree's runtime self-profile next
	# to the benchmark numbers, so perf regressions come with the
	# coordinator's own accounting of where the time went.
	-$(GO) run ./cmd/pmsbsim -experiment fattree -shards 4 -par channel-steal \
		-runtimestats BENCH_9.rtstats > /dev/null && \
		$(GO) run ./cmd/pmsbstat -runtime BENCH_9.rtstats

# Every benchmark (one per paper table/figure plus engine micro-benches).
bench-all:
	$(GO) test -bench . -benchmem .

# Regenerate every table and figure at full fidelity (~10 minutes).
reproduce:
	$(GO) run ./cmd/pmsbsim -all > results_full.txt
	@echo "results written to results_full.txt"

# The same sweep with reduced durations (~1 minute).
quick-reproduce:
	$(GO) run ./cmd/pmsbsim -all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multiservice
	$(GO) run ./examples/schedulers
	$(GO) run ./examples/deadlines
	$(GO) run ./examples/leafspine

clean:
	$(GO) clean ./...
