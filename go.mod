module pmsb

go 1.22
