// Deadlines: D2TCP (the paper's reference [16]) running over a
// PMSB-marked multi-queue bottleneck. Two batches of equal-size flows
// compete; one batch carries tight deadlines. With plain DCTCP both
// batches finish together and half the tight deadlines are missed; with
// D2TCP's deadline-aware back-off the urgent batch finishes first and
// meets its deadlines, at a modest cost to the background batch.
//
//	go run ./examples/deadlines
package main

import (
	"fmt"
	"os"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

const (
	urgentFlows     = 4
	backgroundFlows = 2
	flowSize        = int64(2_000_000)
	// The fair-share completion time of 8x2MB over 10G is ~12.8ms;
	// give the urgent batch a deadline well under it.
	deadline = 9 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("%d urgent + %d background flows of %dMB over one 10G port (deadline %v)\n\n",
		urgentFlows, backgroundFlows, flowSize/1_000_000, deadline)
	for _, d2tcp := range []bool{false, true} {
		worst, urgentAvg, bgAvg := runBatch(d2tcp)
		name := "DCTCP (deadline-blind)"
		if d2tcp {
			name = "D2TCP (deadline-aware)"
		}
		fmt.Printf("%s\n", name)
		fmt.Printf("  urgent avg FCT:       %6.2f ms\n", urgentAvg.Seconds()*1e3)
		fmt.Printf("  urgent worst FCT:     %6.2f ms (miss margin %+.2f ms)\n",
			worst.Seconds()*1e3, (worst-deadline).Seconds()*1e3)
		fmt.Printf("  background avg FCT:   %6.2f ms\n\n", bgAvg.Seconds()*1e3)
	}
	fmt.Println("D2TCP flows with imminent deadlines back off less per mark (gamma = alpha^d),")
	fmt.Println("pulling the urgent batch toward its deadline at the background batch's expense.")
	return nil
}

// runBatch simulates one comparison run and returns the urgent batch's
// worst FCT and the two batches' average FCTs.
func runBatch(d2tcp bool) (worst, urgentAvg, bgAvg time.Duration) {
	eng := sim.NewEngine()
	// All flows share one queue: deadline awareness redistributes
	// bandwidth through congestion control within the queue (a
	// scheduler would pin per-queue shares and mask the effect).
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{
		Senders: urgentFlows + backgroundFlows,
		Bottleneck: topo.PortProfile{
			Weights:   topo.EqualWeights(1),
			NewSched:  topo.FIFOFactory(),
			NewMarker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
		},
	})

	var fid transport.FlowIDGen
	var urgent, background []*transport.Sender
	for i := 0; i < urgentFlows+backgroundFlows; i++ {
		cfg := transport.Config{}
		isUrgent := i < urgentFlows
		if isUrgent && d2tcp {
			cfg.Deadline = deadline
		}
		f := transport.NewFlow(eng, d.Senders[i], d.Recv, fid.Next(), 0, flowSize, cfg, nil)
		f.Sender.Start()
		if isUrgent {
			urgent = append(urgent, f.Sender)
		} else {
			background = append(background, f.Sender)
		}
	}
	eng.RunUntil(time.Second)

	for _, s := range urgent {
		urgentAvg += s.FCT()
		if s.FCT() > worst {
			worst = s.FCT()
		}
	}
	for _, s := range background {
		bgAvg += s.FCT()
	}
	return worst, urgentAvg / urgentFlows, bgAvg / backgroundFlows
}
