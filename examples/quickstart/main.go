// Quickstart: build a two-queue bottleneck, run per-port ECN marking and
// PMSB side by side, and watch PMSB repair the weighted-fair-sharing
// violation while keeping the link full.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("PMSB quickstart: 1 flow in queue 1 vs 8 flows in queue 2 (weights 1:1)")
	fmt.Println()

	portK := units.Packets(16)
	for _, scheme := range []struct {
		name   string
		marker ecn.Marker
	}{
		{"per-port ECN (current practice)", &ecn.PerPort{K: portK}},
		{"PMSB (selective blindness)", &core.PMSB{PortK: portK}},
	} {
		q1, q2, total := measure(scheme.marker)
		fmt.Printf("%s\n", scheme.name)
		fmt.Printf("  queue 1 (1 flow):  %5.2f Gbps\n", q1)
		fmt.Printf("  queue 2 (8 flows): %5.2f Gbps\n", q2)
		fmt.Printf("  total:             %5.2f Gbps, queue-1 share %.2f (fair = 0.50)\n\n",
			total, q1/total)
	}
	fmt.Println("PMSB protects the victim flow in queue 1 without sacrificing utilization.")
	return nil
}

// measure runs one 60ms simulation and returns per-queue and total Gbps.
func measure(marker ecn.Marker) (q1, q2, total float64) {
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{
		Senders: 9,
		Bottleneck: topo.PortProfile{
			Weights:   topo.EqualWeights(2),
			NewSched:  topo.WFQFactory(),
			NewMarker: func() ecn.Marker { return marker },
		},
	})

	series := []*stats.TimeSeries{
		stats.NewTimeSeries(time.Millisecond),
		stats.NewTimeSeries(time.Millisecond),
	}
	d.Bottleneck.OnDequeue(func(p *pkt.Packet, q int) {
		series[q].Add(eng.Now(), float64(p.Size))
	})

	var fid transport.FlowIDGen
	for i := 0; i < 9; i++ {
		service := 0
		if i > 0 {
			service = 1 // flows 1..8 into queue 2
		}
		f := transport.NewFlow(eng, d.Senders[i], d.Recv, fid.Next(), service, 0,
			transport.Config{}, nil)
		f.Sender.Start()
	}
	eng.RunUntil(60 * time.Millisecond)

	// Average rates over the steady last 40ms.
	r1 := float64(series[0].MeanRate(20, 60)) / float64(units.Gbps)
	r2 := float64(series[1].MeanRate(20, 60)) / float64(units.Gbps)
	return r1, r2, r1 + r2
}
