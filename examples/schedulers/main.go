// Schedulers: demonstrates the paper's Section VI-A.3 claim that PMSB
// works over generic packet schedulers. The same PMSB marker runs over
// SP, WFQ and hierarchical SP+WFQ, with staged flow arrivals; the
// printed per-phase throughputs match the scheduling policy exactly
// (5/3/2 for SP, 5/5 for WFQ, 5/2.5/2.5 for SP+WFQ).
//
//	go run ./examples/schedulers
package main

import (
	"fmt"
	"os"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

type group struct {
	service int
	count   int
	limit   units.Rate
	start   time.Duration
}

type scenario struct {
	name     string
	factory  topo.SchedFactory
	queues   int
	groups   []group
	expected []float64
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	t1, t2 := 40*time.Millisecond, 80*time.Millisecond
	dur := 120 * time.Millisecond

	scenarios := []scenario{
		{
			name: "SP (q1 > q2 > q3)", factory: topo.SPFactory(), queues: 3,
			groups: []group{
				{0, 1, 5 * units.Gbps, 0},
				{1, 1, 3 * units.Gbps, t1},
				{2, 1, 0, t2},
			},
			expected: []float64{5, 3, 2},
		},
		{
			name: "WFQ (1:1)", factory: topo.WFQFactory(), queues: 2,
			groups: []group{
				{0, 1, 0, 0},
				{1, 4, 0, t1},
			},
			expected: []float64{5, 5},
		},
		{
			name: "SP+WFQ (q1 strict; q2,q3 1:1)", factory: topo.SPWFQFactory(1), queues: 3,
			groups: []group{
				{0, 1, 5 * units.Gbps, 0},
				{1, 1, 0, t1},
				{2, 4, 0, t2},
			},
			expected: []float64{5, 2.5, 2.5},
		},
	}

	for _, sc := range scenarios {
		fmt.Printf("== PMSB over %s ==\n", sc.name)
		rates := simulate(sc, dur)
		for q, r := range rates {
			fmt.Printf("  queue %d: %5.2f Gbps (policy expects %.1f)\n", q+1, r, sc.expected[q])
		}
		fmt.Println()
	}
	return nil
}

// simulate runs one scenario and returns final-phase per-queue Gbps.
func simulate(sc scenario, dur time.Duration) []float64 {
	eng := sim.NewEngine()
	senders := 0
	for _, g := range sc.groups {
		senders += g.count
	}
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{
		Senders: senders,
		Bottleneck: topo.PortProfile{
			Weights:   topo.EqualWeights(sc.queues),
			NewSched:  sc.factory,
			NewMarker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
		},
	})

	series := make([]*stats.TimeSeries, sc.queues)
	for i := range series {
		series[i] = stats.NewTimeSeries(time.Millisecond)
	}
	d.Bottleneck.OnDequeue(func(p *pkt.Packet, q int) {
		series[q].Add(eng.Now(), float64(p.Size))
	})

	var fid transport.FlowIDGen
	host := 0
	for _, g := range sc.groups {
		for i := 0; i < g.count; i++ {
			f := transport.NewFlow(eng, d.Senders[host], d.Recv, fid.Next(), g.service, 0,
				transport.Config{RateLimit: g.limit}, nil)
			eng.ScheduleAt(g.start, f.Sender.Start)
			host++
		}
	}
	eng.RunUntil(dur)

	// Measure the last 30ms (all groups active, converged).
	from, to := int((dur-30*time.Millisecond)/time.Millisecond), int(dur/time.Millisecond)
	out := make([]float64, sc.queues)
	for q := range out {
		out[q] = float64(series[q].MeanRate(from, to)) / float64(units.Gbps)
	}
	return out
}
