// Multiservice: the paper's motivating scenario. A datacenter operator
// isolates 8 services into 8 switch queues with weighted fair sharing.
// Under plain per-port ECN, a latency-sensitive service sharing a port
// with bulk services becomes a marking victim and loses its weighted
// share; PMSB's selective blindness restores it.
//
//	go run ./examples/multiservice
package main

import (
	"fmt"
	"os"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// Eight services with mixed weights: service 0 is the premium service
// (weight 4), services 1-3 standard (2), services 4-7 best effort (1).
var (
	weights = []float64{4, 2, 2, 2, 1, 1, 1, 1}
	// flowsPerService: the premium service runs one connection; the
	// best-effort services pile on many.
	flowsPerService = []int{1, 2, 2, 2, 6, 6, 6, 6}
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	weightSum := 0.0
	for _, w := range weights {
		weightSum += w
	}
	portK := units.Packets(16)

	fmt.Println("8 services, weights 4:2:2:2:1:1:1:1, one 10G port")
	fmt.Printf("%-10s %8s %10s %10s %10s\n", "service", "weight", "fair_gbps", "perport", "pmsb")

	perPort := measure(&ecn.PerPort{K: portK})
	pmsb := measure(&core.PMSB{PortK: portK})

	for s := range weights {
		fair := weights[s] / weightSum * 10
		fmt.Printf("service-%d  %8.0f %10.2f %10.2f %10.2f\n",
			s, weights[s], fair, perPort[s], pmsb[s])
	}

	fmt.Println()
	fmt.Printf("premium service (weight 4) fair share: %.2f Gbps\n", weights[0]/weightSum*10)
	fmt.Printf("  under per-port marking: %.2f Gbps (victimized)\n", perPort[0])
	fmt.Printf("  under PMSB:             %.2f Gbps (protected)\n", pmsb[0])
	return nil
}

// measure returns each service's steady throughput in Gbps under the
// given marker.
func measure(marker ecn.Marker) []float64 {
	eng := sim.NewEngine()
	total := 0
	for _, n := range flowsPerService {
		total += n
	}
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{
		Senders: total,
		Bottleneck: topo.PortProfile{
			Weights:   weights,
			NewSched:  topo.WFQFactory(),
			NewMarker: func() ecn.Marker { return marker },
		},
	})

	series := make([]*stats.TimeSeries, len(weights))
	for i := range series {
		series[i] = stats.NewTimeSeries(time.Millisecond)
	}
	d.Bottleneck.OnDequeue(func(p *pkt.Packet, q int) {
		series[q].Add(eng.Now(), float64(p.Size))
	})

	var fid transport.FlowIDGen
	host := 0
	for s, n := range flowsPerService {
		for i := 0; i < n; i++ {
			f := transport.NewFlow(eng, d.Senders[host], d.Recv, fid.Next(), s, 0,
				transport.Config{}, nil)
			f.Sender.Start()
			host++
		}
	}
	eng.RunUntil(80 * time.Millisecond)

	out := make([]float64, len(weights))
	for q := range out {
		out[q] = float64(series[q].MeanRate(30, 80)) / float64(units.Gbps)
	}
	return out
}
