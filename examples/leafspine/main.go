// Leafspine: a condensed version of the paper's large-scale evaluation.
// A 48-host leaf-spine fabric runs a web-search workload at 50% load
// under four multi-queue ECN schemes; the example prints small-flow and
// overall FCT statistics per scheme (the quantities behind Figures
// 16-21).
//
//	go run ./examples/leafspine
package main

import (
	"fmt"
	"os"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/sim"
	"pmsb/internal/stats"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
	"pmsb/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type scheme struct {
	name   string
	marker topo.MarkerFactory
	filter func() transport.Filter
}

func run() error {
	portK := units.Packets(12)
	schemes := []scheme{
		{"pmsb", func() ecn.Marker { return &core.PMSB{PortK: portK} }, nil},
		{"pmsb(e)", func() ecn.Marker { return &ecn.PerPort{K: portK} },
			func() transport.Filter { return &core.PMSBe{RTTThreshold: 85200 * time.Nanosecond} }},
		{"mq-ecn", func() ecn.Marker {
			return &ecn.MQECN{RTT: units.Serialization(units.Packets(65), 10*units.Gbps), Lambda: 1}
		}, nil},
		{"tcn", func() ecn.Marker { return &ecn.TCN{Threshold: 78200 * time.Nanosecond} }, nil},
	}

	fmt.Println("48-host leaf-spine, DWRR x8 queues, web-search workload, load 0.5, 300 flows")
	fmt.Printf("%-10s %14s %14s %14s %12s\n",
		"scheme", "small_avg_ms", "small_p99_ms", "overall_avg_ms", "completed")

	for _, sc := range schemes {
		small, all, completed, total := simulate(sc)
		fmt.Printf("%-10s %14.3f %14.3f %14.3f %9d/%d\n",
			sc.name, small.Mean()*1e3, small.Percentile(99)*1e3, all.Mean()*1e3, completed, total)
	}
	fmt.Println("\nExpected shape: PMSB lowest small-flow FCT; TCN highest; overall averages close.")
	return nil
}

func simulate(sc scheme) (small, all *stats.Summary, completed, total int) {
	eng := sim.NewEngine()
	ls := topo.NewLeafSpine(eng, topo.LeafSpineConfig{
		Ports: topo.PortProfile{
			Weights:     topo.EqualWeights(8),
			NewSched:    topo.DWRRFactory(eng),
			NewMarker:   sc.marker,
			BufferBytes: units.Packets(250),
		},
	})

	specs := workload.Poisson(workload.PoissonConfig{
		Load:     0.5,
		LinkRate: 10 * units.Gbps,
		Hosts:    ls.NumHosts(),
		Dist:     workload.WebSearch(),
		Services: 8,
		NumFlows: 300,
		Seed:     1,
	})

	small, all = &stats.Summary{}, &stats.Summary{}
	var fid transport.FlowIDGen
	var lastStart time.Duration
	done := 0
	for _, spec := range specs {
		cfg := transport.Config{InitWindow: 16}
		if sc.filter != nil {
			cfg.Filter = sc.filter()
		}
		f := transport.NewFlow(eng, ls.Host(spec.Src), ls.Host(spec.Dst), fid.Next(),
			spec.Service, spec.Size, cfg, func(s *transport.Sender) {
				done++
				all.Add(s.FCT().Seconds())
				if workload.Classify(s.Size()) == workload.Small {
					small.Add(s.FCT().Seconds())
				}
			})
		eng.ScheduleAt(spec.Start, f.Sender.Start)
		lastStart = spec.Start
	}
	eng.RunUntil(lastStart + 2*time.Second)
	return small, all, done, len(specs)
}
