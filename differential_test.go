package pmsb_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"pmsb/internal/core"
	"pmsb/internal/ecn"
	"pmsb/internal/obs"
	"pmsb/internal/sim"
	"pmsb/internal/topo"
	"pmsb/internal/transport"
	"pmsb/internal/units"
)

// These tests are the scheduler acceptance gate: two real netsim
// workloads, each run once under the calendar queue and once under the
// reference heap, must produce byte-identical observability traces
// (every enqueue, dequeue, mark, and flow event, in sequence), identical
// FCTs, and identical processed-event counts. Any divergence in event
// execution order — however slight — shows up here, because the trace
// records the order side effects actually happened in.

// workloadResult captures everything a workload run exposes.
type workloadResult struct {
	trace     []byte
	fcts      []time.Duration
	processed uint64
}

// runDumbbellWorkload is recorded workload 1: four DCTCP senders
// sharing a PMSB-marked dumbbell bottleneck, with per-port tracing on
// the bottleneck switch.
func runDumbbellWorkload(t *testing.T, kind sim.QueueKind) workloadResult {
	t.Helper()
	eng := sim.NewEngineWithQueue(kind)
	bus := obs.NewBus(1 << 16)
	d := topo.NewDumbbell(eng, topo.DumbbellConfig{
		Senders: 4,
		Bottleneck: topo.PortProfile{
			Weights:   topo.EqualWeights(4),
			NewSched:  topo.DWRRFactory(eng),
			NewMarker: func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
		},
	})
	d.Switch.Observe(bus)

	var fid transport.FlowIDGen
	var flows []*transport.Flow
	for i := 0; i < 4; i++ {
		f := transport.NewFlow(eng, d.Senders[i], d.Recv, fid.Next(), i%4, 400_000,
			transport.Config{Obs: bus}, nil)
		eng.ScheduleAt(time.Duration(i)*20*time.Microsecond, f.Sender.Start)
		flows = append(flows, f)
	}
	eng.RunUntil(100 * time.Millisecond)

	res := workloadResult{processed: eng.Processed()}
	for _, f := range flows {
		if !f.Sender.Finished() {
			t.Fatalf("dumbbell flow %d did not finish", f.Sender.Flow())
		}
		res.fcts = append(res.fcts, f.Sender.FCT())
	}
	var buf bytes.Buffer
	if err := bus.Ring().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	res.trace = buf.Bytes()
	return res
}

// runLeafSpineWorkload is recorded workload 2: 40 staggered flows over
// the 48-host leaf-spine fabric with DWRR + PMSB on every port, tracing
// one leaf and one spine (enough to fingerprint the fabric's entire
// event order without a gigantic ring).
func runLeafSpineWorkload(t *testing.T, kind sim.QueueKind) workloadResult {
	t.Helper()
	eng := sim.NewEngineWithQueue(kind)
	bus := obs.NewBus(1 << 16)
	ls := topo.NewLeafSpine(eng, topo.LeafSpineConfig{
		Ports: topo.PortProfile{
			Weights:     topo.EqualWeights(8),
			NewSched:    topo.DWRRFactory(eng),
			NewMarker:   func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
			BufferBytes: units.Packets(250),
		},
	})
	ls.Leaves[0].Observe(bus)
	ls.Spines[0].Observe(bus)

	var fid transport.FlowIDGen
	var flows []*transport.Flow
	for i := 0; i < 40; i++ {
		src, dst := i%48, (i*13+5)%48
		if src == dst {
			dst = (dst + 1) % 48
		}
		f := transport.NewFlow(eng, ls.Host(src), ls.Host(dst), fid.Next(), i%8, 100_000,
			transport.Config{InitWindow: 16, Obs: bus}, nil)
		eng.ScheduleAt(time.Duration(i)*30*time.Microsecond, f.Sender.Start)
		flows = append(flows, f)
	}
	eng.RunUntil(200 * time.Millisecond)

	res := workloadResult{processed: eng.Processed()}
	for _, f := range flows {
		if !f.Sender.Finished() {
			t.Fatalf("leafspine flow %d did not finish", f.Sender.Flow())
		}
		res.fcts = append(res.fcts, f.Sender.FCT())
	}
	var buf bytes.Buffer
	if err := bus.Ring().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	res.trace = buf.Bytes()
	return res
}

func assertIdenticalRuns(t *testing.T, name string, heap, cal workloadResult) {
	t.Helper()
	if heap.processed != cal.processed {
		t.Errorf("%s: processed events differ: heap %d, calendar %d",
			name, heap.processed, cal.processed)
	}
	if len(heap.fcts) != len(cal.fcts) {
		t.Fatalf("%s: FCT counts differ", name)
	}
	for i := range heap.fcts {
		if heap.fcts[i] != cal.fcts[i] {
			t.Errorf("%s: flow %d FCT differs: heap %v, calendar %v",
				name, i, heap.fcts[i], cal.fcts[i])
		}
	}
	if !bytes.Equal(heap.trace, cal.trace) {
		// Locate the first diverging line for a useful failure message.
		hl := bytes.Split(heap.trace, []byte("\n"))
		cl := bytes.Split(cal.trace, []byte("\n"))
		n := len(hl)
		if len(cl) < n {
			n = len(cl)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(hl[i], cl[i]) {
				t.Fatalf("%s: traces diverge at line %d:\n  heap:     %s\n  calendar: %s",
					name, i, hl[i], cl[i])
			}
		}
		t.Fatalf("%s: trace lengths differ: heap %d lines, calendar %d lines",
			name, len(hl), len(cl))
	}
}

// The sharded differential gate: the same workloads, run once serially
// and once split across coordinator shards, must be byte-identical —
// same observability traces, same FCTs, same total processed events.
// Two buses are used instead of one: obs.Bus assigns sequence numbers
// in emission order and is unsynchronized, so each bus must only ever
// be fed from one shard. The switch bus hears the observed switches
// (fabric shard) and the host bus hears every transport endpoint (host
// shard); the serial baseline uses the same two-bus split so the traces
// are comparable line by line.

// parVariant names one coordinator protocol configuration. Every
// variant must produce byte-identical results; the sweep below is the
// proof.
type parVariant struct {
	name  string
	mode  sim.ParMode
	steal bool
}

var parVariants = []parVariant{
	{"global", sim.ParGlobal, false},
	{"channel", sim.ParChannel, false},
	{"channel-steal", sim.ParChannel, true},
}

// runShardedDumbbell runs the dumbbell differential workload. shards ==
// 0 is the serial reference (plain engine, serial builder); shards >= 1
// builds through the coordinator with the variant's protocol.
func runShardedDumbbell(t *testing.T, shards int, v parVariant) workloadResult {
	t.Helper()
	switchBus := obs.NewBus(1 << 16)
	hostBus := obs.NewBus(1 << 16)
	cfg := topo.DumbbellConfig{
		Senders: 4,
		Bottleneck: topo.PortProfile{
			Weights:      topo.EqualWeights(4),
			NewSchedWith: topo.DWRRSched,
			NewMarker:    func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
		},
	}
	var (
		d     *topo.Dumbbell
		eng   *sim.Engine
		coord *sim.Coordinator
	)
	if shards == 0 {
		eng = sim.NewEngine()
		d = topo.NewDumbbell(eng, cfg)
	} else {
		coord = sim.NewCoordinator()
		coord.SetMode(v.mode)
		coord.SetWorkStealing(v.steal)
		d, _ = topo.NewDumbbellSharded(coord, cfg, shards)
	}
	d.Switch.Observe(switchBus)

	var fid transport.FlowIDGen
	var flows []*transport.Flow
	for i := 0; i < 4; i++ {
		f := transport.NewFlow(d.Eng, d.Senders[i], d.Recv, fid.Next(), i%4, 400_000,
			transport.Config{Obs: hostBus}, nil)
		f.Sender.StartAt(time.Duration(i) * 20 * time.Microsecond)
		flows = append(flows, f)
	}
	var res workloadResult
	if coord != nil {
		coord.RunUntil(100 * time.Millisecond)
		res.processed = coord.Processed()
	} else {
		eng.RunUntil(100 * time.Millisecond)
		res.processed = eng.Processed()
	}
	for _, f := range flows {
		if !f.Sender.Finished() {
			t.Fatalf("dumbbell flow %d did not finish", f.Sender.Flow())
		}
		res.fcts = append(res.fcts, f.Sender.FCT())
	}
	res.trace = twoBusTrace(t, switchBus, hostBus)
	return res
}

// runShardedLeafSpine runs the leaf-spine differential workload (same
// convention: shards == 0 is the serial reference).
func runShardedLeafSpine(t *testing.T, shards int, v parVariant) workloadResult {
	t.Helper()
	switchBus := obs.NewBus(1 << 16)
	hostBus := obs.NewBus(1 << 16)
	cfg := topo.LeafSpineConfig{
		// A fabric delay different from the host-link delay keeps every
		// same-instant arrival pair at a leaf distinguishable by its send
		// time, so the sharded key's schedAt component reproduces the
		// serial order exactly (see the tie discussion in
		// internal/sim/parallel.go).
		FabricDelay: 4 * time.Microsecond,
		Ports: topo.PortProfile{
			Weights:      topo.EqualWeights(8),
			NewSchedWith: topo.DWRRSched,
			NewMarker:    func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
			BufferBytes:  units.Packets(250),
		},
	}
	var (
		ls    *topo.LeafSpine
		eng   *sim.Engine
		coord *sim.Coordinator
	)
	if shards == 0 {
		eng = sim.NewEngine()
		ls = topo.NewLeafSpine(eng, cfg)
	} else {
		coord = sim.NewCoordinator()
		coord.SetMode(v.mode)
		coord.SetWorkStealing(v.steal)
		ls, _ = topo.NewLeafSpineSharded(coord, cfg, shards)
	}
	ls.Leaves[0].Observe(switchBus)
	ls.Spines[0].Observe(switchBus)

	var fid transport.FlowIDGen
	var flows []*transport.Flow
	for i := 0; i < 40; i++ {
		src, dst := i%48, (i*13+5)%48
		if src == dst {
			dst = (dst + 1) % 48
		}
		f := transport.NewFlow(ls.Eng, ls.Host(src), ls.Host(dst), fid.Next(), i%8, 100_000,
			transport.Config{InitWindow: 16, Obs: hostBus}, nil)
		f.Sender.StartAt(time.Duration(i) * 30 * time.Microsecond)
		flows = append(flows, f)
	}
	var res workloadResult
	if coord != nil {
		coord.RunUntil(200 * time.Millisecond)
		res.processed = coord.Processed()
	} else {
		eng.RunUntil(200 * time.Millisecond)
		res.processed = eng.Processed()
	}
	for _, f := range flows {
		if !f.Sender.Finished() {
			t.Fatalf("leafspine flow %d did not finish", f.Sender.Flow())
		}
		res.fcts = append(res.fcts, f.Sender.FCT())
	}
	res.trace = twoBusTrace(t, switchBus, hostBus)
	return res
}

// twoBusTrace serializes both buses into one labeled byte stream so the
// existing line-level divergence reporting covers them.
func twoBusTrace(t *testing.T, switchBus, hostBus *obs.Bus) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("# switch bus\n")
	if err := switchBus.Ring().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("# host bus\n")
	if err := hostBus.Ring().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// multiBusTrace serializes a slice of buses (one per pod) into one
// labeled byte stream, same convention as twoBusTrace.
func multiBusTrace(t *testing.T, buses []*obs.Bus) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, b := range buses {
		fmt.Fprintf(&buf, "# bus %d\n", i)
		if err := b.Ring().WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// A dumbbell split hosts-vs-switch must be byte-identical to the serial
// run under every windowing protocol: same switch trace, same transport
// trace, same FCTs, same total event count. The 1-shard build is the
// degenerate check that the sharded wiring itself changes nothing.
func TestDifferentialShardedDumbbell(t *testing.T) {
	serial := runShardedDumbbell(t, 0, parVariant{})
	if len(serial.trace) == 0 {
		t.Fatal("empty trace: the workload recorded nothing")
	}
	assertIdenticalRuns(t, "dumbbell serial-vs-1shard", serial,
		runShardedDumbbell(t, 1, parVariants[0]))
	for _, v := range parVariants {
		assertIdenticalRuns(t, "dumbbell serial-vs-2shard/"+v.name, serial,
			runShardedDumbbell(t, 2, v))
	}
}

// Same gate for the leaf-spine fabric split hosts-vs-fabric. Run under
// -race in CI, this doubles as the shard coordinator's race check on a
// real workload.
func TestDifferentialShardedLeafSpine(t *testing.T) {
	serial := runShardedLeafSpine(t, 0, parVariant{})
	if len(serial.trace) == 0 {
		t.Fatal("empty trace: the workload recorded nothing")
	}
	assertIdenticalRuns(t, "leafspine serial-vs-1shard", serial,
		runShardedLeafSpine(t, 1, parVariants[0]))
	for _, v := range parVariants {
		assertIdenticalRuns(t, "leafspine serial-vs-2shard/"+v.name, serial,
			runShardedLeafSpine(t, 2, v))
	}
}

// Sharded runs must also be self-deterministic: two identical 2-shard
// runs may not diverge no matter how goroutines are scheduled.
func TestDifferentialShardedDeterminism(t *testing.T) {
	v := parVariants[2] // channel-steal: the most schedule-sensitive path
	a := runShardedLeafSpine(t, 2, v)
	b := runShardedLeafSpine(t, 2, v)
	assertIdenticalRuns(t, "leafspine 2shard-vs-2shard", a, b)
}

// runShardedFatTree runs a k=8 fat-tree workload with cross-pod
// traffic. Observability uses one bus per pod: a pod's hosts, edge and
// aggregation switches always share one shard (pods are
// block-partitioned and never split), so each bus is single-shard-fed
// and its event order is comparable across serial and every shard
// count. Core switches are not observed — their shard assignment moves
// with the shard count. flows returns the flow set so workloads can
// vary; each spec is (src host, dst host, size).
func runShardedFatTree(t *testing.T, shards int, v parVariant,
	specs [][3]int, until time.Duration) workloadResult {
	t.Helper()
	podBus := make([]*obs.Bus, 8)
	for p := range podBus {
		podBus[p] = obs.NewBus(1 << 14)
	}
	res := driveShardedFatTree(t, shards, v, specs, until, podBus)
	res.trace = multiBusTrace(t, podBus)
	return res
}

// driveShardedFatTree is the workload core of runShardedFatTree with
// the observability buses supplied by the caller (one per pod), so
// spill-backed and plain-ring runs share the exact same simulation.
// Optional setup hooks run after construction, before RunUntil — the
// runtime-introspection differential uses them to attach monitors and
// enable stats (exactly one of coord/eng is non-nil).
func driveShardedFatTree(t *testing.T, shards int, v parVariant,
	specs [][3]int, until time.Duration, podBus []*obs.Bus,
	setup ...func(coord *sim.Coordinator, eng *sim.Engine)) workloadResult {
	t.Helper()
	const k = 8
	hostsPerPod := (k / 2) * (k / 2) // 16
	cfg := topo.FatTreeConfig{
		K: k,
		// Unique fabric cable lengths keep every same-instant cross-shard
		// arrival pair distinguishable by (at, schedAt), the precondition
		// for the sharded key to reproduce serial tie-breaks (see
		// FatTreeConfig.FabricDelaySkew).
		FabricDelaySkew: time.Nanosecond,
		Ports: topo.PortProfile{
			Weights:      topo.EqualWeights(4),
			NewSchedWith: topo.DWRRSched,
			NewMarker:    func() ecn.Marker { return &core.PMSB{PortK: units.Packets(12)} },
			BufferBytes:  units.Packets(250),
		},
	}
	var (
		ft    *topo.FatTree
		eng   *sim.Engine
		coord *sim.Coordinator
	)
	if shards == 0 {
		eng = sim.NewEngine()
		ft = topo.NewFatTree(eng, cfg)
	} else {
		coord = sim.NewCoordinator()
		coord.SetMode(v.mode)
		coord.SetWorkStealing(v.steal)
		ft, _ = topo.NewFatTreeSharded(coord, cfg, shards)
	}

	// Fingerprint switch-level order in two pods (first and last): their
	// edge and agg switches are pod-local on every partition.
	for _, p := range []int{0, len(podBus) - 1} {
		half := k / 2
		ft.Edges[p*half].Observe(podBus[p])
		ft.Aggs[p*half].Observe(podBus[p])
	}

	var fid transport.FlowIDGen
	var flows []*transport.Flow
	for i, spec := range specs {
		src, dst, size := spec[0], spec[1], spec[2]
		f := transport.NewFlow(ft.Eng, ft.Hosts[src], ft.Hosts[dst], fid.Next(), i%4,
			int64(size), transport.Config{InitWindow: 16, Obs: podBus[src/hostsPerPod]}, nil)
		f.Sender.StartAt(time.Duration(i) * 4 * time.Microsecond)
		flows = append(flows, f)
	}
	for _, fn := range setup {
		fn(coord, eng)
	}
	var res workloadResult
	if coord != nil {
		coord.RunUntil(until)
		res.processed = coord.Processed()
	} else {
		eng.RunUntil(until)
		res.processed = eng.Processed()
	}
	for _, f := range flows {
		if !f.Sender.Finished() {
			t.Fatalf("fattree flow %d did not finish", f.Sender.Flow())
		}
		res.fcts = append(res.fcts, f.Sender.FCT())
	}
	return res
}

// fatTreeCrossPodSpecs spreads senders over every pod with cross-pod
// destinations, so traffic exercises the agg<->core cut links on every
// partition.
func fatTreeCrossPodSpecs() [][3]int {
	const hosts, hostsPerPod = 128, 16
	var specs [][3]int
	for i := 0; i < 64; i++ {
		src := (i * 7) % hosts
		dst := (src + hostsPerPod + i*11) % hosts
		if dst/hostsPerPod == src/hostsPerPod {
			dst = (dst + hostsPerPod) % hosts
		}
		specs = append(specs, [3]int{src, dst, 50_000})
	}
	return specs
}

// The k=8 fat-tree differential gate: serial vs the per-channel-clock
// coordinator at 4 and 8 shards, and vs the global-window reference, on
// cross-pod traffic. This is the topology where channel clocks actually
// diverge from the global protocol (distinct shard pairs, multi-hop
// shard graph), so byte-identity here is the tentpole's correctness
// proof.
func TestDifferentialShardedFatTree(t *testing.T) {
	specs := fatTreeCrossPodSpecs()
	const until = 50 * time.Millisecond
	serial := runShardedFatTree(t, 0, parVariant{}, specs, until)
	if len(serial.trace) == 0 {
		t.Fatal("empty trace: the workload recorded nothing")
	}
	assertIdenticalRuns(t, "fattree serial-vs-global@4", serial,
		runShardedFatTree(t, 4, parVariants[0], specs, until))
	assertIdenticalRuns(t, "fattree serial-vs-channel@4", serial,
		runShardedFatTree(t, 4, parVariants[1], specs, until))
	assertIdenticalRuns(t, "fattree serial-vs-channel@8", serial,
		runShardedFatTree(t, 8, parVariants[1], specs, until))
}

// Skewed-load gate: an incast concentrated in pod 0 leaves seven of
// eight shards idle most of the time — exactly the shape work-stealing
// is for. Stolen windows must still produce byte-identical results.
func TestDifferentialShardedFatTreeIncast(t *testing.T) {
	const hostsPerPod = 16
	var specs [][3]int
	for p := 1; p < 8; p++ { // 4 senders per non-target pod -> host 0
		for j := 0; j < 4; j++ {
			specs = append(specs, [3]int{p*hostsPerPod + j*3, 0, 30_000})
		}
	}
	const until = 50 * time.Millisecond
	serial := runShardedFatTree(t, 0, parVariant{}, specs, until)
	if len(serial.trace) == 0 {
		t.Fatal("empty trace: the workload recorded nothing")
	}
	assertIdenticalRuns(t, "incast serial-vs-steal@8", serial,
		runShardedFatTree(t, 8, parVariants[2], specs, until))
	assertIdenticalRuns(t, "incast serial-vs-channel@8", serial,
		runShardedFatTree(t, 8, parVariants[1], specs, until))
}

// Spill-merge gate: a sharded fat-tree run whose per-pod buses spill
// tiny rings into binary sinks must reproduce, stream for stream and
// event for event, a serial run that retained everything in memory —
// and the time-ordered merge of the spilled streams must equal the
// merge of the serial streams. This is the tentpole's lossless claim:
// spilling changes where events live, never what was recorded.
func TestDifferentialShardedSpillMerge(t *testing.T) {
	specs := fatTreeCrossPodSpecs()
	const until = 50 * time.Millisecond
	const pods = 8

	// Serial reference: rings big enough to retain the full run.
	ref := make([]*obs.Bus, pods)
	for p := range ref {
		ref[p] = obs.NewBus(1 << 18)
	}
	driveShardedFatTree(t, 0, parVariant{}, specs, until, ref)
	refStreams := make([][]obs.Event, pods)
	for p, bus := range ref {
		if d := bus.Ring().Dropped(); d != 0 {
			t.Fatalf("serial reference pod %d overflowed its ring (%d dropped); grow the reference ring", p, d)
		}
		refStreams[p] = bus.Ring().Events()
	}
	refMerged := obs.MergeEvents(refStreams...)
	if len(refMerged) == 0 {
		t.Fatal("empty reference trace: the workload recorded nothing")
	}

	for _, run := range []struct {
		name   string
		shards int
		v      parVariant
	}{
		{"channel@4", 4, parVariants[1]},
		{"channel-steal@8", 8, parVariants[2]},
	} {
		// Spill-backed buses: 256-event rings force hundreds of flushes
		// per pod, so chunk framing is exercised across many batch
		// shapes. Trace-only buses match `pmsbsim -tracefile`.
		buses := make([]*obs.Bus, pods)
		sinks := make([]*bytes.Buffer, pods)
		spills := make([]*obs.SpillWriter, pods)
		for p := range buses {
			sinks[p] = &bytes.Buffer{}
			spills[p] = obs.NewSpillWriter(sinks[p], obs.FormatBinary)
			buses[p] = obs.NewTraceBus(256)
			buses[p].Ring().SetSpill(spills[p])
		}
		driveShardedFatTree(t, run.shards, run.v, specs, until, buses)
		streams := make([][]obs.Event, pods)
		for p := range buses {
			if err := buses[p].Ring().FlushSpill(); err != nil {
				t.Fatalf("%s pod %d: flush spill: %v", run.name, p, err)
			}
			if err := spills[p].Close(); err != nil {
				t.Fatalf("%s pod %d: close spill: %v", run.name, p, err)
			}
			if d := buses[p].Ring().Dropped(); d != 0 {
				t.Fatalf("%s pod %d: %d events dropped despite spill", run.name, p, d)
			}
			got, err := obs.ReadBinary(bytes.NewReader(sinks[p].Bytes()))
			if err != nil {
				t.Fatalf("%s pod %d: read spilled trace: %v", run.name, p, err)
			}
			if !reflect.DeepEqual(got, refStreams[p]) {
				t.Errorf("%s pod %d: spilled stream diverges from serial reference (%d vs %d events)",
					run.name, p, len(got), len(refStreams[p]))
			}
			streams[p] = got
		}
		if merged := obs.MergeEvents(streams...); !reflect.DeepEqual(merged, refMerged) {
			t.Errorf("%s: merged spill trace diverges from merged serial trace (%d vs %d events)",
				run.name, len(merged), len(refMerged))
		}
	}
}

// Format gate: a real workload's JSONL trace survives the round trip
// through the binary codec with every field intact, and re-encoding
// the decoded events reproduces the original bytes exactly — in both
// directions.
func TestDifferentialTraceFormats(t *testing.T) {
	res := runDumbbellWorkload(t, sim.QueueCalendar)
	events, err := obs.ReadJSONL(bytes.NewReader(res.trace))
	if err != nil {
		t.Fatalf("parse workload JSONL trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty workload trace")
	}

	var bin bytes.Buffer
	if err := obs.WriteBinary(&bin, events); err != nil {
		t.Fatalf("encode binary: %v", err)
	}
	decoded, err := obs.ReadBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("decode binary: %v", err)
	}
	if !reflect.DeepEqual(decoded, events) {
		t.Fatalf("binary round trip changed the events (%d vs %d)", len(decoded), len(events))
	}

	// Decoded events, re-encoded as JSONL through a ring, must equal
	// the original byte stream; re-encoding the binary must too.
	ring := obs.NewRing(len(decoded))
	for _, ev := range decoded {
		ring.Append(ev)
	}
	var jsonl bytes.Buffer
	if err := ring.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonl.Bytes(), res.trace) {
		t.Error("JSONL re-encode of binary-decoded events differs from the original trace")
	}
	var bin2 bytes.Buffer
	if err := obs.WriteBinary(&bin2, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bin2.Bytes(), bin.Bytes()) {
		t.Error("binary re-encode is not byte-stable")
	}
}

func TestDifferentialDumbbellWorkload(t *testing.T) {
	heap := runDumbbellWorkload(t, sim.QueueHeap)
	cal := runDumbbellWorkload(t, sim.QueueCalendar)
	if len(heap.trace) == 0 {
		t.Fatal("empty trace: the workload recorded nothing")
	}
	assertIdenticalRuns(t, "dumbbell", heap, cal)
}

func TestDifferentialLeafSpineWorkload(t *testing.T) {
	heap := runLeafSpineWorkload(t, sim.QueueHeap)
	cal := runLeafSpineWorkload(t, sim.QueueCalendar)
	if len(heap.trace) == 0 {
		t.Fatal("empty trace: the workload recorded nothing")
	}
	assertIdenticalRuns(t, "leafspine", heap, cal)
}

// runFatTree32 drives a short-horizon workload on the k=32 (8192-host,
// ~49k-port) arena-built fabric: 64 cross-pod flows, 2 ms horizon. The
// port profile is the memory-lean one the fattree32 experiment and the
// k=32 benchmarks use — slab-carved DWRR, one shared stateless marker —
// so this gate covers the exact construction path the scale target
// ships. Full-length differentials stay at k <= 16; at this size the
// build dominates and a short horizon already fingerprints the event
// order across serial and sharded runs (observability: edge+agg of the
// first and last pod, both pod-local on every partition).
func runFatTree32(t *testing.T, shards int, v parVariant) workloadResult {
	t.Helper()
	const k, pods = 32, 32
	hostsPerPod := (k / 2) * (k / 2) // 256
	nHosts := k * k * k / 4
	cfg := topo.FatTreeConfig{
		K:               k,
		FabricDelaySkew: time.Nanosecond,
		Ports: topo.PortProfile{
			Weights:       topo.EqualWeights(4),
			NewSchedBlock: topo.DWRRBlocks(),
			SharedMarker:  &core.PMSB{PortK: units.Packets(12)},
			BufferBytes:   units.Packets(250),
		},
	}
	var (
		ft    *topo.FatTree
		eng   *sim.Engine
		coord *sim.Coordinator
	)
	if shards == 0 {
		eng = sim.NewEngine()
		ft = topo.NewFatTree(eng, cfg)
	} else {
		coord = sim.NewCoordinator()
		coord.SetMode(v.mode)
		coord.SetWorkStealing(v.steal)
		ft, _ = topo.NewFatTreeSharded(coord, cfg, shards)
	}
	if n := ft.ArenaOverflow(); n != 0 {
		t.Fatalf("k=32 arena overflowed by %d objects: the spec under-reserves", n)
	}

	busA, busB := obs.NewBus(1<<14), obs.NewBus(1<<14)
	half := k / 2
	ft.Edges[0].Observe(busA)
	ft.Aggs[0].Observe(busA)
	ft.Edges[(pods-1)*half].Observe(busB)
	ft.Aggs[(pods-1)*half].Observe(busB)

	var fid transport.FlowIDGen
	var flows []*transport.Flow
	for i := 0; i < 64; i++ {
		src := (i * 7 * hostsPerPod / 4) % nHosts
		dst := (src + hostsPerPod + i*11) % nHosts
		if dst/hostsPerPod == src/hostsPerPod {
			dst = (dst + hostsPerPod) % nHosts
		}
		f := transport.NewFlow(ft.Eng, ft.Hosts[src], ft.Hosts[dst], fid.Next(), i%4,
			30_000, transport.Config{InitWindow: 16}, nil)
		f.Sender.StartAt(time.Duration(i) * 2 * time.Microsecond)
		flows = append(flows, f)
	}
	var res workloadResult
	if coord != nil {
		coord.RunUntil(2 * time.Millisecond)
		res.processed = coord.Processed()
	} else {
		eng.RunUntil(2 * time.Millisecond)
		res.processed = eng.Processed()
	}
	for _, f := range flows {
		if !f.Sender.Finished() {
			t.Fatalf("fattree32 flow %d did not finish inside the horizon", f.Sender.Flow())
		}
		res.fcts = append(res.fcts, f.Sender.FCT())
	}
	res.trace = twoBusTrace(t, busA, busB)
	return res
}

// The k=32 short-horizon gate: the arena-built fabric must be
// byte-identical serial vs 8-way pod-sharded (the batched slab handoff
// path), and self-deterministic across two identical work-stealing
// runs.
func TestDifferentialFatTree32ShortHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("k=32 fabric build is too heavy for -short")
	}
	serial := runFatTree32(t, 0, parVariant{})
	if len(serial.trace) == 0 {
		t.Fatal("empty trace: the workload recorded nothing")
	}
	assertIdenticalRuns(t, "fattree32 serial-vs-channel@8", serial,
		runFatTree32(t, 8, parVariants[1]))
	a := runFatTree32(t, 8, parVariants[2])
	assertIdenticalRuns(t, "fattree32 steal-vs-steal@8", a,
		runFatTree32(t, 8, parVariants[2]))
}
