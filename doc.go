// Package pmsb is a from-scratch Go reproduction of "Support ECN in
// Multi-Queue Datacenter Networks via per-Port Marking with Selective
// Blindness" (ICDCS 2018).
//
// The repository contains a deterministic packet-level datacenter
// network simulator (internal/sim, internal/netsim), multi-queue packet
// schedulers (internal/sched), every ECN marking scheme the paper
// compares (internal/ecn), the PMSB and PMSB(e) algorithms with their
// steady-state analysis (internal/core), a DCTCP transport
// (internal/transport), dumbbell and leaf-spine topologies
// (internal/topo), datacenter workloads (internal/workload), and a
// harness that regenerates every table and figure of the paper's
// evaluation (internal/experiment, cmd/pmsbsim).
//
// See README.md for a guided tour and EXPERIMENTS.md for
// paper-vs-measured results.
package pmsb
