package pmsb_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"pmsb/internal/obs"
	obsrt "pmsb/internal/obs/runtime"
	"pmsb/internal/pkt"
	"pmsb/internal/sim"
)

// The runtime-introspection differential gate: enabling every
// self-observation surface at once — coordinator runtime stats, a live
// progress monitor with a fast sampler attached, and pool stats — must
// leave the simulation byte-identical to an uninstrumented run. The
// instrumented runs cover serial, channel@4, and channel-steal@8 on the
// k=8 fat-tree workload: trace, FCTs, and processed-event counts are
// compared line by line, and the harvested stats are checked for the
// signals pmsbstat -runtime reports on.
func TestDifferentialRuntimeIntrospection(t *testing.T) {
	specs := fatTreeCrossPodSpecs()
	const until = 50 * time.Millisecond
	baseline := runShardedFatTree(t, 0, parVariant{}, specs, until)
	if len(baseline.trace) == 0 {
		t.Fatal("empty trace: the workload recorded nothing")
	}

	pkt.EnablePoolStats(true)
	defer pkt.EnablePoolStats(false)

	// instrumented runs runShardedFatTree's workload with the full
	// introspection surface attached and returns the harvested stats.
	instrumented := func(shards int, v parVariant) (workloadResult, obsrt.Snapshot) {
		podBus := make([]*obs.Bus, 8)
		for p := range podBus {
			podBus[p] = obs.NewBus(1 << 14)
		}
		mon := sim.NewMonitor()
		// A deliberately fast sampler maximizes concurrent snapshot reads
		// while the run executes; its output is discarded.
		sampler := obsrt.StartSampler(io.Discard, mon, 100*time.Microsecond)
		defer sampler.Stop()
		coll := obsrt.NewCollector()
		var gotCoord *sim.Coordinator
		var gotEng *sim.Engine
		res := driveShardedFatTree(t, shards, v, specs, until, podBus,
			func(coord *sim.Coordinator, eng *sim.Engine) {
				gotCoord, gotEng = coord, eng
				if coord != nil {
					coord.SetMonitor(mon)
					coord.EnableRuntimeStats()
				} else {
					eng.SetMonitor(mon)
				}
			})
		res.trace = multiBusTrace(t, podBus)
		sampler.Stop()
		if gotCoord != nil {
			coll.ObserveCoordinator(gotCoord)
		} else {
			coll.ObserveSerial(gotEng)
		}
		return res, coll.Snapshot()
	}

	for _, run := range []struct {
		name   string
		shards int
		v      parVariant
	}{
		{"serial", 0, parVariant{}},
		{"channel@4", 4, parVariants[1]},
		{"channel-steal@8", 8, parVariants[2]},
	} {
		res, snap := instrumented(run.shards, run.v)
		assertIdenticalRuns(t, "introspected-"+run.name, baseline, res)
		if run.shards == 0 {
			if snap.Engines[0].Processed != baseline.processed {
				t.Errorf("%s: collector saw %d events, run processed %d",
					run.name, snap.Engines[0].Processed, baseline.processed)
			}
			continue
		}
		if snap.Coord == nil {
			t.Fatalf("%s: no coordinator stats collected", run.name)
		}
		var events, grants, steals uint64
		for _, s := range snap.Coord.PerShard {
			events += s.Events
			grants += s.Grants
			steals += s.Steals
		}
		if events != baseline.processed {
			t.Errorf("%s: per-shard events sum to %d, run processed %d",
				run.name, events, baseline.processed)
		}
		if grants == 0 {
			t.Errorf("%s: no windows recorded", run.name)
		}
		if run.v.steal && steals == 0 {
			t.Errorf("%s: work-stealing run recorded no steals", run.name)
		}
		if !run.v.steal && steals != 0 {
			t.Errorf("%s: %d steals recorded without work-stealing", run.name, steals)
		}
		var busy time.Duration
		for _, w := range snap.Coord.PerWorker {
			busy += w.Busy
		}
		if busy <= 0 {
			t.Errorf("%s: no worker busy time accounted", run.name)
		}
	}
}

// Two instrumented runs are as self-deterministic as two bare runs: the
// schedule-sensitive channel-steal path with monitors and stats on must
// reproduce itself byte for byte.
func TestDifferentialRuntimeSelfDeterminism(t *testing.T) {
	specs := fatTreeCrossPodSpecs()
	const until = 50 * time.Millisecond
	run := func() workloadResult {
		podBus := make([]*obs.Bus, 8)
		for p := range podBus {
			podBus[p] = obs.NewBus(1 << 14)
		}
		mon := sim.NewMonitor()
		sampler := obsrt.StartSampler(io.Discard, mon, 200*time.Microsecond)
		defer sampler.Stop()
		res := driveShardedFatTree(t, 8, parVariants[2], specs, until, podBus,
			func(coord *sim.Coordinator, eng *sim.Engine) {
				coord.SetMonitor(mon)
				coord.EnableRuntimeStats()
			})
		res.trace = multiBusTrace(t, podBus)
		return res
	}
	a := run()
	b := run()
	assertIdenticalRuns(t, "introspected steal@8 repeat", a, b)
	if !bytes.Equal(a.trace, b.trace) {
		t.Fatal("instrumented repeats diverged")
	}
}
